/// \file exp_mapreduce.cpp
/// \brief Experiment T-MR-1 (paper §2): the word-count warm-up across
/// rank counts, with the shuffle volume ablation (local combine) that
/// previews the kNN assignment's communication lesson.

#include <iostream>

#include "mapreduce/mapreduce.hpp"
#include "mapreduce/wordcount.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto words = cli.get<std::size_t>("words", 200000, "corpus words");
  const auto chunks = cli.get<std::size_t>("chunks", 32, "map tasks");
  const auto seed = cli.get<std::uint64_t>("seed", 3, "corpus seed");
  cli.finish();

  const auto corpus = peachy::mapreduce::synthetic_corpus(words, seed);
  const auto oracle = peachy::mapreduce::word_count_serial(corpus);
  std::cout << "T-MR-1 — word count (" << corpus.size() << " bytes, " << words << " words, "
            << oracle.size() << " distinct, " << chunks << " map tasks):\n\n";

  peachy::support::Table table;
  table.header({"ranks", "local combine", "pairs into shuffle", "shuffle bytes", "ms",
                "== serial"});
  for (const int ranks : {1, 2, 4, 8}) {
    for (const bool combine : {false, true}) {
      // Run the engine directly to read shuffle stats.
      const auto pieces = peachy::mapreduce::split_corpus(corpus, chunks);
      std::uint64_t pairs = 0, bytes = 0;
      std::vector<peachy::mapreduce::WordCount> result;
      peachy::support::Stopwatch sw;
      peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
        peachy::mapreduce::WordCountOptions opts;
        opts.chunks = chunks;
        opts.local_combine = combine;
        auto got = peachy::mapreduce::word_count(comm, corpus, opts);
        if (comm.rank() == 0) result = std::move(got);
      });
      const double ms = sw.elapsed_ms();
      // Measure shuffle volume with an instrumented pass.
      peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
        peachy::mapreduce::MapReduce mr{comm};
        mr.map(pieces.size(), [&](std::size_t t, peachy::mapreduce::KvEmitter& out) {
          for (const auto& wc : peachy::mapreduce::word_count_serial(pieces[t])) {
            for (std::uint64_t i = 0; i < wc.count; ++i) {
              out.emit_record<std::uint64_t>(wc.word, 1);
            }
          }
        });
        if (combine) {
          mr.combine([](const std::string& key, std::span<const std::string> values,
                        peachy::mapreduce::KvEmitter& out) {
            std::uint64_t total = 0;
            for (const auto& v : values) {
              total += peachy::mapreduce::unpack_record<std::uint64_t>(v);
            }
            out.emit_record<std::uint64_t>(key, total);
          });
        }
        mr.collate();
        if (comm.rank() == 0) {
          pairs = mr.shuffle_stats().pairs_before;
          bytes = mr.shuffle_stats().bytes_sent;
        }
      });
      table.row({static_cast<std::int64_t>(ranks), std::string{combine ? "yes" : "no"},
                 static_cast<std::int64_t>(pairs), static_cast<std::int64_t>(bytes), ms,
                 std::string{result == oracle ? "yes" : "NO"}});
    }
  }
  table.print();
  std::cout << "\nexpected shape: without combining, ~1 pair per corpus word enters the\n"
               "shuffle; combining collapses that to <= distinct-words x map-tasks —\n"
               "the load-balancing-through-hashing lesson of MapReduce (paper §2).\n";
  return 0;
}
