/// \file exp_kmeans.cpp
/// \brief Experiment T-KM-1 (paper §3): the OpenMP parallelization
/// strategy's stages — critical regions → atomics → reductions →
/// cache-aware reductions — across thread counts.
///
/// "The parallelization strategy for this code in OpenMP has four
/// stages: (1) Detect potential race conditions ... (2) Solve them with
/// critical regions; (3) Improve efficiency by substituting them with
/// atomic operations; and (4) Detect situations where a reduction can
/// eliminate a race condition."

#include <iostream>

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n = cli.get<std::size_t>("n", 60000, "points");
  const auto d = cli.get<std::size_t>("d", 4, "dimensions");
  const auto k = cli.get<std::size_t>("k", 20, "clusters");
  const auto iters = cli.get<std::size_t>("iters", 10, "fixed iteration count");
  const auto seed = cli.get<std::uint64_t>("seed", 13, "seed");
  cli.finish();

  peachy::data::BlobsSpec spec;
  spec.classes = k;
  spec.points_per_class = n / k;
  spec.dims = d;
  spec.spread = 2.0;
  spec.seed = seed;
  const auto points = peachy::data::gaussian_blobs(spec).points;

  peachy::kmeans::Options opts;
  opts.k = k;
  opts.max_iterations = iters;
  opts.min_changes = 0;
  opts.move_tolerance = 0.0;  // fixed work: always run `iters` iterations
  opts.seed = seed;

  std::cout << "T-KM-1 — k-means strategy stages (n=" << points.size() << ", d=" << d
            << ", k=" << k << ", " << iters << " iterations):\n\n";

  double seq_ms = 0.0;
  {
    peachy::support::Stopwatch sw;
    const auto res = peachy::kmeans::cluster_sequential(points, opts);
    seq_ms = sw.elapsed_ms();
    std::cout << "sequential reference: " << seq_ms << " ms, inertia " << res.inertia
              << "\n\n";
  }

  peachy::support::ThreadPool pool{8};
  peachy::support::Table table;
  table.header({"variant", "threads", "ms", "vs sequential"});
  for (const auto variant :
       {peachy::kmeans::Variant::kCritical, peachy::kmeans::Variant::kAtomic,
        peachy::kmeans::Variant::kReduction, peachy::kmeans::Variant::kReductionPadded}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      peachy::support::Stopwatch sw;
      (void)peachy::kmeans::cluster_parallel(points, opts, variant, pool, threads);
      const double ms = sw.elapsed_ms();
      table.row({peachy::kmeans::to_string(variant), static_cast<std::int64_t>(threads), ms,
                 std::to_string(seq_ms / ms) + "x"});
    }
  }
  table.print();
  std::cout << "\nexpected shape: critical < atomic < reduction in throughput at every\n"
               "thread count (the strategy's stages); padding matters once threads\n"
               "share cache lines.  NOTE: on a single-core host the absolute\n"
               "speedups collapse to ~1x but the variant ordering (synchronization\n"
               "overhead) remains visible.\n";
  return 0;
}
