/// \file exp_traffic.cpp
/// \brief Experiments T-TR-1 and T-TR-2 (paper §5, Fig. 3).
///
/// T-TR-1: the reproducible parallel simulation — bit-identity for every
/// thread count, with the PRNG fast-forward count (the serial overhead
/// the paper says limits scaling) reported per configuration.
///
/// T-TR-2: the grid vs agent representation trade-off across densities —
/// Θ(L) vs Θ(N) per step.
///
/// Also prints the fundamental diagram (density → flow), the model's
/// classic validation curve.

#include <iostream>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "traffic/diagram.hpp"
#include "traffic/grid.hpp"
#include "traffic/mpi_traffic.hpp"
#include "traffic/traffic.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto cars = cli.get<std::size_t>("cars", 20000, "cars (scaling study)");
  const auto length = cli.get<std::size_t>("length", 100000, "road cells (scaling study)");
  const auto steps = cli.get<std::size_t>("steps", 100, "time steps");
  const auto seed = cli.get<std::uint64_t>("seed", 31, "seed");
  cli.finish();

  // ---- T-TR-1: reproducibility + fast-forward cost ------------------------
  {
    peachy::traffic::Spec spec;
    spec.cars = cars;
    spec.road_length = length;
    spec.seed = seed;
    std::cout << "T-TR-1 — reproducible parallel NaSch (" << cars << " cars, road " << length
              << ", " << steps << " steps):\n\n";

    peachy::support::Stopwatch ssw;
    const auto serial = peachy::traffic::run_serial(spec, steps);
    const double serial_ms = ssw.elapsed_ms();

    peachy::support::ThreadPool pool{8};
    peachy::support::Table table;
    table.header({"threads", "ms", "vs serial", "PRNG fast-forwards", "bit-identical"});
    table.row({std::int64_t{0}, serial_ms, std::string{"(serial)"}, std::int64_t{0},
               std::string{"-"}});
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      peachy::traffic::ParallelStats stats;
      const auto parallel = peachy::traffic::run_parallel(spec, steps, pool, threads, &stats);
      table.row({static_cast<std::int64_t>(threads), stats.seconds * 1e3,
                 std::to_string(serial_ms / (stats.seconds * 1e3)) + "x",
                 static_cast<std::int64_t>(stats.fast_forwards),
                 std::string{parallel == serial ? "yes" : "NO"}});
    }
    table.print();
    std::cout << "\nexpected shape: identical output at every thread count; fast-forward\n"
                 "calls grow as threads x steps — the serial fraction that bounds the\n"
                 "achievable speedup (\"depends highly on how well they reduced the\n"
                 "cost of fast-forwarding\").  Absolute speedup needs >1 physical core.\n";
  }

  // ---- the paper's MPI variation -------------------------------------------------
  {
    peachy::traffic::Spec spec;
    spec.cars = 2000;
    spec.road_length = 10000;
    spec.seed = seed;
    const auto serial = peachy::traffic::run_serial(spec, steps);
    std::cout << "\ndistributed-memory variation (\"implement a distributed-memory\n"
                 "parallel code using MPI\"): 2000 cars, road 10000, " << steps
              << " steps:\n\n";
    peachy::support::Table table;
    table.header({"ranks", "ms", "messages", "bytes", "bit-identical"});
    for (const int ranks : {1, 2, 4, 8}) {
      peachy::traffic::MpiTrafficStats stats;
      peachy::traffic::State result;
      peachy::support::Stopwatch sw;
      peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
        peachy::traffic::MpiTrafficStats local;  // stats are rank-local
        auto got = peachy::traffic::run_mpi(comm, spec, steps, &local);
        if (comm.rank() == 0) {
          result = std::move(got);
          stats = local;
        }
      });
      table.row({static_cast<std::int64_t>(ranks), sw.elapsed_ms(),
                 static_cast<std::int64_t>(stats.messages),
                 static_cast<std::int64_t>(stats.bytes),
                 std::string{result == serial ? "yes" : "NO"}});
    }
    table.print();
    std::cout << "\nexpected shape: the replicated-state student solution moves O(N)\n"
                 "bytes per step (ring allgather) while computing O(N/P) per rank —\n"
                 "the communication/computation trade-off to discuss in class.\n";
  }

  // ---- T-TR-2: representation trade-off ----------------------------------------
  {
    std::cout << "\nT-TR-2 — grid vs agent representation (road 20000 cells, " << steps
              << " steps):\n\n";
    peachy::support::Table table;
    table.header({"density", "cars", "agent ms", "grid ms", "identical"});
    for (const double density : {0.05, 0.2, 0.5, 0.9}) {
      peachy::traffic::Spec spec;
      spec.road_length = 20000;
      spec.cars = static_cast<std::size_t>(density * 20000);
      spec.seed = seed;
      peachy::support::Stopwatch asw;
      const auto agent = peachy::traffic::run_serial(spec, steps);
      const double agent_ms = asw.elapsed_ms();
      peachy::support::Stopwatch gsw;
      const auto grid = peachy::traffic::run_grid(spec, steps);
      const double grid_ms = gsw.elapsed_ms();
      table.row({density, static_cast<std::int64_t>(spec.cars), agent_ms, grid_ms,
                 std::string{agent == grid ? "yes" : "NO"}});
    }
    table.print();
    std::cout << "\nexpected shape: the agent representation's Theta(N) step wins at low\n"
                 "density; the gap closes as density -> 1 where N -> L.\n";
  }

  // ---- fundamental diagram (model validation) ----------------------------------
  {
    std::cout << "\nfundamental diagram (road 2000, 400 steps, p=0.13, v_max=5):\n\n";
    peachy::traffic::Spec spec;
    spec.road_length = 2000;
    spec.seed = seed;
    const auto points = peachy::traffic::fundamental_diagram(
        spec, {0.02, 0.05, 0.08, 0.12, 0.17, 0.25, 0.4, 0.6, 0.8}, 400);
    peachy::support::Table table;
    table.header({"density", "mean velocity", "flow"});
    for (const auto& pt : points) table.row({pt.density, pt.mean_velocity, pt.flow});
    table.print();
    std::cout << "\nexpected shape: flow rises ~linearly in free flow, peaks near the\n"
                 "critical density ~1/(v_max+1+p), then collapses in the jammed phase.\n";
  }
  return 0;
}
