/// \file exp_knn_mapreduce.cpp
/// \brief Experiment T-kNN-3 (paper §2): the communication-cost ablation.
///
/// "It also shows how architectural knowledge can help design faster
/// code since adding local reductions at each rank and again at each
/// multicore node noticeably improves the communication cost."
///
/// The harness classifies the same instance three ways — naive all-pairs
/// emission, per-task top-k pre-selection, and rank-level local combine —
/// and reports pairs/bytes entering the shuffle plus mini-MPI messages.

#include <iostream>

#include "data/points.hpp"
#include "knn/knn.hpp"
#include "knn/mapreduce_knn.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n = cli.get<std::size_t>("n", 2000, "database points");
  const auto q = cli.get<std::size_t>("q", 300, "query points");
  const auto d = cli.get<std::size_t>("d", 10, "dimensions");
  const auto k = cli.get<std::size_t>("k", 5, "neighbors");
  const auto seed = cli.get<std::uint64_t>("seed", 9, "seed");
  cli.finish();

  peachy::data::BlobsSpec spec;
  spec.classes = 4;
  spec.points_per_class = n / 4;
  spec.dims = d;
  spec.spread = 1.5;
  spec.seed = seed;
  const auto db = peachy::data::gaussian_blobs(spec);
  const auto queries = peachy::data::uniform_points(q, d, -12, 12, seed + 1);

  peachy::knn::ClassifyOptions serial_opts;
  serial_opts.k = k;
  const auto reference = peachy::knn::classify(db, queries, serial_opts);

  std::cout << "T-kNN-3 — MapReduce kNN shuffle volume (n=" << db.size() << ", q=" << q
            << ", d=" << d << ", k=" << k << "):\n\n";

  peachy::support::Table table;
  table.header({"ranks", "emission", "pairs shuffled", "bytes shuffled", "messages",
                "ms", "== serial"});

  for (const int ranks : {2, 4, 8}) {
    struct Mode {
      const char* name;
      peachy::knn::EmitMode emit;
      bool combine;
    };
    const Mode modes[] = {
        {"all pairs (naive)", peachy::knn::EmitMode::kAllPairs, false},
        {"top-k per task", peachy::knn::EmitMode::kTopKPerTask, false},
        {"top-k + rank combine", peachy::knn::EmitMode::kTopKPerTask, true},
    };
    for (const Mode& mode : modes) {
      peachy::knn::MrKnnOptions opts;
      opts.k = k;
      opts.map_tasks = static_cast<std::size_t>(ranks) * 2;
      opts.emit = mode.emit;
      opts.local_combine = mode.combine;
      peachy::knn::MrKnnStats stats;
      std::vector<std::int32_t> pred;
      peachy::support::Stopwatch sw;
      peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
        peachy::knn::MrKnnStats local;  // stats are rank-local
        auto got = peachy::knn::mapreduce_classify(comm, db, queries, opts, &local);
        if (comm.rank() == 0) {
          pred = std::move(got);
          stats = local;
        }
      });
      table.row({static_cast<std::int64_t>(ranks), std::string{mode.name},
                 static_cast<std::int64_t>(stats.pairs_shuffled),
                 static_cast<std::int64_t>(stats.bytes_shuffled),
                 static_cast<std::int64_t>(stats.messages), sw.elapsed_ms(),
                 std::string{pred == reference ? "yes" : "NO"}});
    }
  }
  table.print();
  std::cout << "\nexpected shape: each local-reduction level cuts shuffled pairs by an\n"
               "order of magnitude (n/task -> k/task -> k/rank per query) with\n"
               "identical predictions — the paper's \"noticeably improves the\n"
               "communication cost\".\n";
  return 0;
}
