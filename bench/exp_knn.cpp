/// \file exp_knn.cpp
/// \brief Experiments T-kNN-1 and T-kNN-2 (paper §2).
///
/// T-kNN-1 — the paper's sizing claim: "a 40-dimensional test case with
/// 5,000 database points and 5,000 queries takes about 5 seconds
/// sequentially."  The harness measures a scaled instance by default
/// (fits a small CI box) and extrapolates to the paper's size by the
/// Θ(nqd) model; run with --paper-scale to measure the full instance.
///
/// T-kNN-2 — the complexity discussion: full-sort selection Θ(n log n)
/// vs bounded-heap Θ(n log k) vs the k-d tree adaptation, swept over n.

#include <cmath>
#include <iostream>

#include "data/points.hpp"
#include "knn/kdtree.hpp"
#include "knn/knn.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

peachy::data::LabeledPoints make_db(std::size_t n, std::size_t d, std::uint64_t seed) {
  peachy::data::BlobsSpec spec;
  spec.classes = 10;
  spec.points_per_class = n / 10 + 1;
  spec.dims = d;
  spec.spread = 2.0;
  spec.seed = seed;
  auto all = peachy::data::gaussian_blobs(spec);
  // Trim to exactly n.
  peachy::data::LabeledPoints db;
  for (std::size_t i = 0; i < n; ++i) {
    db.points.push_back(all.points.point(i));
    db.labels.push_back(all.labels[i]);
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const bool paper_scale =
      cli.flag("paper-scale", "run the full 5000x5000 d=40 instance (~seconds)");
  const auto k = cli.get<std::size_t>("k", 15, "neighbors");
  const auto seed = cli.get<std::uint64_t>("seed", 1, "dataset seed");
  cli.finish();

  // ---- T-kNN-1: the 5-second sizing claim ---------------------------------
  {
    const std::size_t n = paper_scale ? 5000 : 1000;
    const std::size_t q = paper_scale ? 5000 : 1000;
    constexpr std::size_t d = 40;
    const auto db = make_db(n, d, seed);
    const auto queries = peachy::data::uniform_points(q, d, -12, 12, seed + 1);

    peachy::knn::ClassifyOptions opts;
    opts.k = k;
    opts.selection = peachy::knn::Selection::kHeap;
    peachy::knn::ClassifyStats stats;
    (void)peachy::knn::classify(db, queries, opts, nullptr, &stats);

    std::cout << "T-kNN-1 — paper: \"40-dimensional, 5,000 database points and 5,000\n"
                 "queries takes about 5 seconds sequentially\"\n\n";
    peachy::support::Table t;
    t.header({"n (db)", "q", "d", "k", "seconds", "distance evals"});
    t.row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(q), std::int64_t{d},
           static_cast<std::int64_t>(k), stats.seconds,
           static_cast<std::int64_t>(stats.distance_evals)});
    if (!paper_scale) {
      // Θ(nqd) extrapolation to the paper's instance.
      const double scale = (5000.0 * 5000.0) / (static_cast<double>(n) * static_cast<double>(q));
      t.row({std::int64_t{5000}, std::int64_t{5000}, std::int64_t{d},
             static_cast<std::int64_t>(k), stats.seconds * scale,
             static_cast<std::int64_t>(5000LL * 5000)});
      std::cout << "(second row extrapolated by the Theta(nqd) cost model; pass\n"
                   " --paper-scale to measure it directly)\n\n";
    }
    t.print();
  }

  // ---- T-kNN-2: selection-strategy sweep -----------------------------------
  {
    std::cout << "\nT-kNN-2 — selection strategies over database size (q=200, d=8, k=" << k
              << "):\n\n";
    peachy::support::Table t;
    t.header({"n", "sort ms", "heap ms", "kdtree ms", "kdtree evals", "brute evals"});
    for (const std::size_t n : {1000u, 4000u, 16000u}) {
      const auto db = make_db(n, 8, seed);
      const auto queries = peachy::data::uniform_points(200, 8, -12, 12, seed + 2);
      peachy::knn::ClassifyOptions opts;
      opts.k = k;
      double ms[3];
      std::uint64_t tree_evals = 0;
      int idx = 0;
      for (const auto sel : {peachy::knn::Selection::kSort, peachy::knn::Selection::kHeap,
                             peachy::knn::Selection::kKdTree}) {
        opts.selection = sel;
        peachy::knn::ClassifyStats stats;
        (void)peachy::knn::classify(db, queries, opts, nullptr, &stats);
        ms[idx++] = stats.seconds * 1e3;
        if (sel == peachy::knn::Selection::kKdTree) tree_evals = stats.distance_evals;
      }
      t.row({static_cast<std::int64_t>(n), ms[0], ms[1], ms[2],
             static_cast<std::int64_t>(tree_evals),
             static_cast<std::int64_t>(n * queries.size())});
    }
    t.print();
    std::cout << "\nexpected shape: heap <= sort at every n (log k vs log n selection);\n"
                 "the k-d tree wins in low dimension via pruned distance evaluations.\n";
  }

  // ---- the "more challenging" extension: building the tree in parallel ------
  {
    std::cout << "\nparallel k-d tree construction (the paper's Data Structures\n"
                 "extension: \"More challenging would be to build the tree in\n"
                 "parallel\"), n=100000, d=6:\n\n";
    const auto db = make_db(100000, 6, seed);
    peachy::support::ThreadPool pool{4};
    std::size_t seq_nodes = 0, par_nodes = 0;
    const double seq_ms =
        peachy::support::time_once([&] { seq_nodes = peachy::knn::KdTree{db, 16}.node_count(); }) *
        1e3;
    const double par_ms = peachy::support::time_once([&] {
                            par_nodes = peachy::knn::KdTree{db, 16, &pool}.node_count();
                          }) * 1e3;
    peachy::support::Table t;
    t.header({"build", "ms", "nodes"});
    t.row({std::string{"sequential"}, seq_ms, static_cast<std::int64_t>(seq_nodes)});
    t.row({std::string{"parallel (4 workers)"}, par_ms, static_cast<std::int64_t>(par_nodes)});
    t.print();
    std::cout << "\n(identical trees and query results; wall-clock gain needs >1\n"
                 " physical core — the structure is what the extension teaches)\n";
  }
  return 0;
}
