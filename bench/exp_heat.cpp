/// \file exp_heat.cpp
/// \brief Experiments T-HT-1 and T-HT-2 (paper §6).
///
/// T-HT-1: Part 1 (forall per step: fresh tasks, implicit communication)
/// vs Part 2 (persistent coforall tasks + barrier + halo exchange) —
/// "create a more efficient solver by reducing overhead".  The harness
/// reports task spawns, remote accesses, and wall time per configuration.
///
/// T-HT-2: Block-distribution layout across locale counts.

#include <iostream>

#include "chapel/chapel.hpp"
#include "heat/heat.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto nx = cli.get<std::size_t>("nx", 200001, "grid points");
  const auto nt = cli.get<std::size_t>("nt", 200, "time steps");
  const auto seed_mode = cli.get<int>("mode", 1, "initial sine mode");
  cli.finish();

  peachy::heat::Spec spec;
  spec.nx = nx;
  spec.nt = nt;
  const auto initial = peachy::heat::sine_mode(seed_mode);

  std::cout << "T-HT-1 — forall (Part 1) vs coforall (Part 2), nx=" << nx << ", nt=" << nt
            << ":\n\n";
  const auto serial = peachy::heat::solve_serial(spec, initial);

  peachy::support::Table table;
  table.header({"solver", "locales x tpl", "ms", "tasks spawned", "remote accesses",
                "max|err| vs serial"});
  for (const std::size_t locales : {2u, 4u, 8u}) {
    {
      peachy::chapel::LocaleGrid grid{locales, 1};
      peachy::heat::SolveStats stats;
      const auto got = peachy::heat::solve_forall(spec, initial, grid, &stats);
      table.row({std::string{"part 1: forall"}, std::to_string(locales) + " x 1",
                 stats.seconds * 1e3, static_cast<std::int64_t>(stats.tasks_spawned),
                 static_cast<std::int64_t>(stats.remote_accesses),
                 peachy::heat::max_abs_diff(got, serial)});
    }
    {
      peachy::chapel::LocaleGrid grid{locales, 1};
      peachy::heat::SolveStats stats;
      const auto got = peachy::heat::solve_coforall(spec, initial, grid, &stats);
      table.row({std::string{"part 2: coforall"}, std::to_string(locales) + " x 1",
                 stats.seconds * 1e3, static_cast<std::int64_t>(stats.tasks_spawned),
                 static_cast<std::int64_t>(stats.remote_accesses),
                 peachy::heat::max_abs_diff(got, serial)});
    }
  }
  table.print();
  std::cout << "\nexpected shape: part 1 spawns nt x locales tasks, issues implicit\n"
               "remote reads at block edges each step, and pays the distributed\n"
               "array's global-index translation on every element; part 2 spawns\n"
               "`locales` persistent tasks that compute on raw local arrays and\n"
               "communicate only the explicit halos — both overhead reductions the\n"
               "assignment's Part 2 (and Chapel's Example2) is about.\n";

  // ---- T-HT-2: block distribution layout --------------------------------------
  std::cout << "\nT-HT-2 — Block distribution of " << 1000003 << " elements:\n\n";
  peachy::support::Table layout;
  layout.header({"locales", "min block", "max block", "imbalance"});
  for (const std::size_t locales : {1u, 2u, 3u, 4u, 8u, 16u}) {
    peachy::chapel::LocaleGrid grid{locales, 1};
    peachy::chapel::BlockDist1D<double> arr{grid, 1000003};
    std::size_t min_b = 1000003, max_b = 0;
    for (std::size_t l = 0; l < locales; ++l) {
      const auto sub = arr.local_subdomain(l);
      min_b = std::min(min_b, sub.size());
      max_b = std::max(max_b, sub.size());
    }
    layout.row({static_cast<std::int64_t>(locales), static_cast<std::int64_t>(min_b),
                static_cast<std::int64_t>(max_b),
                std::to_string(max_b - min_b) + " element(s)"});
  }
  layout.print();
  std::cout << "\nexpected shape: contiguous near-even blocks; sizes differ by at most\n"
               "one element (Chapel's Block distribution rule).\n";
  return 0;
}
