/// \file exp_hpo.cpp
/// \brief Experiment T-HPO-1 (paper §7): "how to distribute independent
/// tasks to different nodes in MPI when the number of nodes is not evenly
/// divisible by the number of tasks" — block vs cyclic vs dynamic
/// master–worker, measured by tasks-per-rank spread, busy-time imbalance,
/// and makespan.  Uncertainty quality of the resulting ensemble is also
/// reported (the Fig. 4 numbers).

#include <iostream>

#include "hpo/halving.hpp"
#include "hpo/hpo.hpp"
#include "nn/digits.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto tasks = cli.get<std::size_t>("tasks", 13, "task count (13: never divisible)");
  const auto train_n = cli.get<std::size_t>("train", 500, "training samples");
  const auto val_n = cli.get<std::size_t>("val", 150, "validation samples");
  const auto seed = cli.get<std::uint64_t>("seed", 37, "seed");
  cli.finish();

  const peachy::nn::SyntheticDigits digits;
  const auto train = digits.make_dataset(train_n, seed);
  const auto val = digits.make_dataset(val_n, seed + 1);

  // Heterogeneous task sizes (hidden widths differ) make balance matter.
  std::vector<peachy::nn::TrainConfig> configs;
  for (std::size_t i = 0; i < tasks; ++i) {
    peachy::nn::TrainConfig cfg;
    cfg.hidden = {8 + 8 * (i % 4)};  // 8..32 wide: ~4x cost spread
    cfg.learning_rate = 0.1 + 0.05 * static_cast<double>(i % 3);
    cfg.momentum = 0.9;
    cfg.epochs = 6;
    cfg.seed = seed + i;
    configs.push_back(std::move(cfg));
  }

  std::cout << "T-HPO-1 — scheduling " << tasks << " uneven training tasks:\n\n";
  peachy::support::Table table;
  table.header({"ranks", "schedule", "tasks/rank", "busy imbalance (cv)", "makespan ms"});
  std::vector<peachy::hpo::TaskResult> results;
  for (const int ranks : {2, 3, 4, 5}) {
    for (const auto schedule : {peachy::hpo::Schedule::kBlock, peachy::hpo::Schedule::kCyclic,
                                peachy::hpo::Schedule::kDynamic}) {
      peachy::hpo::RunStats stats;
      peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
        peachy::hpo::RunStats local;  // stats are rank-local
        auto got = peachy::hpo::distributed_search(comm, train, val, configs, schedule, &local);
        if (comm.rank() == 0) {
          results = std::move(got);
          stats = std::move(local);
        }
      });
      std::string spread;
      for (std::size_t r = 0; r < stats.tasks_per_rank.size(); ++r) {
        spread += (r ? "/" : "") + std::to_string(stats.tasks_per_rank[r]);
      }
      table.row({static_cast<std::int64_t>(ranks), peachy::hpo::to_string(schedule), spread,
                 stats.imbalance_cv, stats.makespan_seconds * 1e3});
    }
  }
  table.print();
  std::cout << "\nexpected shape: with tasks % ranks != 0 and uneven task costs, the\n"
               "dynamic master-worker schedule spreads busy time most evenly (lowest\n"
               "cv); block is worst because consecutive tasks have correlated sizes.\n"
               "(The dynamic rows use ranks-1 workers: rank 0 only coordinates.)\n";

  // ---- Fig. 4 numbers from the search's ensemble ----------------------------
  const auto ens = peachy::hpo::build_ensemble(train, configs, results, 5);
  peachy::rng::SplitMix64 gen{seed + 2};
  peachy::nn::Matrix probe{2, digits.features()};
  const auto clean = digits.render(4, gen);
  const auto morph = digits.render_morph(4, 9, 0.5, gen);
  std::copy(clean.begin(), clean.end(), probe.row(0).begin());
  std::copy(morph.begin(), morph.end(), probe.row(1).begin());
  const auto preds = ens.predict_uncertain(probe);
  std::cout << "\nFig. 4 — ensemble uncertainty (5 members, val acc " << ens.accuracy(val)
            << "):\n";
  peachy::support::Table fig4;
  fig4.header({"input", "prediction", "mean prob", "uncertainty (sigma)", "entropy"});
  fig4.row({std::string{"clean '4'"}, static_cast<std::int64_t>(preds[0].label),
            preds[0].mean_probability, preds[0].uncertainty, preds[0].entropy});
  fig4.row({std::string{"4/9 morph"}, static_cast<std::int64_t>(preds[1].label),
            preds[1].mean_probability, preds[1].uncertainty, preds[1].entropy});
  fig4.print();

  // ---- the paper's "kill the lowest performers" variation ---------------------
  peachy::support::ThreadPool pool{4};
  const auto halving =
      peachy::hpo::successive_halving(train, val, configs, 3, 2, pool);
  std::cout << "\nsuccessive halving (the suggested variation): " << configs.size()
            << " configs -> " << halving.final_ranking.size() << " survivors in "
            << halving.rounds << " rounds, " << halving.total_epochs_trained
            << " model-epochs total (vs " << configs.size() * 3 * 2
            << " without killing underperformers)\n";
  return 0;
}
