/// \file exp_kmeans_simt.cpp
/// \brief Experiment T-KM-3 (paper §3): the CUDA-structured k-means —
/// "they then determine the situations when atomic operations or
/// reductions are more profitable" — swept over block sizes and the two
/// reduction schemes, with global-atomic counts exposed.

#include <iostream>

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "kmeans/simt_kmeans.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n = cli.get<std::size_t>("n", 40000, "points");
  const auto d = cli.get<std::size_t>("d", 4, "dimensions");
  const auto k = cli.get<std::size_t>("k", 16, "clusters");
  const auto iters = cli.get<std::size_t>("iters", 8, "fixed iteration count");
  const auto seed = cli.get<std::uint64_t>("seed", 23, "seed");
  cli.finish();

  peachy::data::BlobsSpec spec;
  spec.classes = k;
  spec.points_per_class = n / k;
  spec.dims = d;
  spec.spread = 2.0;
  spec.seed = seed;
  const auto points = peachy::data::gaussian_blobs(spec).points;

  peachy::kmeans::Options opts;
  opts.k = k;
  opts.max_iterations = iters;
  opts.min_changes = 0;
  opts.move_tolerance = 0.0;
  opts.seed = seed;

  const auto reference = peachy::kmeans::cluster_sequential(points, opts);
  peachy::support::ThreadPool pool{4};

  std::cout << "T-KM-3 — SIMT k-means: global atomics vs block-shared reduction\n"
            << "(n=" << points.size() << ", d=" << d << ", k=" << k << ", " << iters
            << " iterations):\n\n";

  peachy::support::Table table;
  table.header({"reduce scheme", "block size", "ms", "global atomic RMWs", "matches serial"});
  for (const auto reduce :
       {peachy::kmeans::SimtReduce::kGlobalAtomic, peachy::kmeans::SimtReduce::kBlockShared}) {
    for (const std::size_t block : {32u, 128u, 512u}) {
      peachy::kmeans::SimtConfig cfg;
      cfg.reduce = reduce;
      cfg.block_size = block;
      peachy::kmeans::SimtStats stats;
      peachy::support::Stopwatch sw;
      const auto res = peachy::kmeans::cluster_simt(points, opts, cfg, pool, &stats);
      table.row({std::string{reduce == peachy::kmeans::SimtReduce::kGlobalAtomic
                                 ? "global atomics"
                                 : "block-shared + merge"},
                 static_cast<std::int64_t>(block), sw.elapsed_ms(),
                 static_cast<std::int64_t>(stats.global_atomic_updates),
                 std::string{res.assignment == reference.assignment ? "yes" : "NO"}});
    }
  }
  table.print();
  std::cout << "\nexpected shape: block-shared reduction cuts global atomic traffic by\n"
               "~block_size/k (each block merges once instead of once per point) —\n"
               "the canonical CUDA reduction trade-off; larger blocks amortize more.\n";
  return 0;
}
