/// \file exp_kmeans_mpi.cpp
/// \brief Experiment T-KM-2 (paper §3): the distributed-memory k-means —
/// scattered data, per-iteration distributed reductions, collective
/// result gathering — with the mini-MPI traffic counters exposed.

#include <iostream>

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "kmeans/mpi_kmeans.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n = cli.get<std::size_t>("n", 40000, "points");
  const auto d = cli.get<std::size_t>("d", 4, "dimensions");
  const auto k = cli.get<std::size_t>("k", 16, "clusters");
  const auto iters = cli.get<std::size_t>("iters", 8, "fixed iteration count");
  const auto seed = cli.get<std::uint64_t>("seed", 17, "seed");
  cli.finish();

  peachy::data::BlobsSpec spec;
  spec.classes = k;
  spec.points_per_class = n / k;
  spec.dims = d;
  spec.spread = 2.0;
  spec.seed = seed;
  const auto points = peachy::data::gaussian_blobs(spec).points;

  peachy::kmeans::Options opts;
  opts.k = k;
  opts.max_iterations = iters;
  opts.min_changes = 0;
  opts.move_tolerance = 0.0;
  opts.seed = seed;

  const auto reference = peachy::kmeans::cluster_sequential(points, opts);
  std::cout << "T-KM-2 — distributed k-means (n=" << points.size() << ", d=" << d
            << ", k=" << k << ", " << iters << " iterations):\n\n";

  peachy::support::Table table;
  table.header({"ranks", "ms", "messages", "bytes", "bytes/iter/rank", "matches serial"});
  for (const int ranks : {1, 2, 4, 8}) {
    peachy::kmeans::MpiKmeansStats stats;
    peachy::kmeans::Result res;
    peachy::support::Stopwatch sw;
    peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
      peachy::kmeans::MpiKmeansStats local;  // stats are rank-local
      auto got = peachy::kmeans::cluster_mpi(
          comm, comm.rank() == 0 ? points : peachy::data::PointSet{}, opts, &local);
      if (comm.rank() == 0) {
        res = std::move(got);
        stats = local;
      }
    });
    const double per_iter_rank = static_cast<double>(stats.bytes) /
                                 static_cast<double>(iters) / static_cast<double>(ranks);
    table.row({static_cast<std::int64_t>(ranks), sw.elapsed_ms(),
               static_cast<std::int64_t>(stats.messages),
               static_cast<std::int64_t>(stats.bytes), per_iter_rank,
               std::string{res.assignment == reference.assignment ? "yes" : "NO"}});
  }
  table.print();
  std::cout << "\nexpected shape: communication is O(k*d) per iteration per rank —\n"
               "independent of n (only centroids travel) — which is why the paper\n"
               "calls this assignment \"easier in MPI\": one distributed reduction\n"
               "replaces all the shared-memory race handling.\n";
  return 0;
}
