/// \file bench_spark.cpp
/// \brief Experiment T-SPK-1: the spark-like engine's narrow vs wide
/// operation costs — the stage/shuffle structure the pipeline assignment
/// teaches students to reason about.

#include <benchmark/benchmark.h>

#include "spark/pair_rdd.hpp"
#include "spark/rdd.hpp"

namespace {

std::vector<std::pair<int, int>> pair_data(std::size_t n) {
  std::vector<std::pair<int, int>> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.emplace_back(static_cast<int>(i % 100), static_cast<int>(i));
  }
  return data;
}

void BM_Spark_MapFilterChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto ctx = peachy::spark::Context::create(4, 8);
  std::vector<int> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<int>(i);
  for (auto _ : state) {
    auto rdd = peachy::spark::parallelize(ctx, data)
                   .map([](const int& x) { return x * 3; })
                   .filter([](const int& x) { return x % 2 == 0; });
    benchmark::DoNotOptimize(rdd.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Spark_MapFilterChain)->Arg(1 << 14)->Arg(1 << 18)->UseRealTime();

void BM_Spark_ReduceByKey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto ctx = peachy::spark::Context::create(4, 8);
  const auto data = pair_data(n);
  for (auto _ : state) {
    auto reduced = peachy::spark::reduce_by_key(peachy::spark::parallelize(ctx, data),
                                                std::plus<>{});
    benchmark::DoNotOptimize(reduced.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["shuffled"] = static_cast<double>(ctx->stats().shuffle_records);
}
BENCHMARK(BM_Spark_ReduceByKey)->Arg(1 << 14)->Arg(1 << 17)->UseRealTime();

void BM_Spark_Join(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto ctx = peachy::spark::Context::create(4, 8);
  const auto left = pair_data(n);
  std::vector<std::pair<int, double>> right;
  for (int k = 0; k < 100; ++k) right.emplace_back(k, k * 1.5);
  for (auto _ : state) {
    auto joined = peachy::spark::join(peachy::spark::parallelize(ctx, left),
                                      peachy::spark::parallelize(ctx, right));
    benchmark::DoNotOptimize(joined.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Spark_Join)->Arg(1 << 14)->Arg(1 << 16)->UseRealTime();

void BM_Spark_SortBy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto ctx = peachy::spark::Context::create(4, 8);
  std::vector<int> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<int>((i * 2654435761u) % 1000000);
  }
  for (auto _ : state) {
    auto sorted =
        peachy::spark::parallelize(ctx, data).sort_by([](const int& x) { return x; });
    benchmark::DoNotOptimize(sorted.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Spark_SortBy)->Arg(1 << 14)->Arg(1 << 17)->UseRealTime();

/// Cache effectiveness: the same lineage evaluated twice, cached vs not.
void BM_Spark_RecomputeVsCache(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  auto ctx = peachy::spark::Context::create(4, 8);
  std::vector<int> data(1 << 15);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i);
  for (auto _ : state) {
    auto rdd = peachy::spark::parallelize(ctx, data).map([](const int& x) {
      double acc = x;
      for (int k = 0; k < 20; ++k) acc = acc * 1.01 + 1.0;  // some real work
      return acc;
    });
    if (cached) rdd.cache();
    benchmark::DoNotOptimize(rdd.count());
    benchmark::DoNotOptimize(rdd.count());  // second action
  }
  state.SetLabel(cached ? "cached" : "recomputed");
}
BENCHMARK(BM_Spark_RecomputeVsCache)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
