/// \file exp_pipeline.cpp
/// \brief Figure 2 / Table 1 companion experiment (paper §4): the crime
/// pipeline's per-stage cost profile and its scaling over spark
/// partitions and worker threads.
///
/// (Table 1 itself is classroom survey data — archived verbatim in
/// EXPERIMENTS.md; this harness covers the section's computational
/// content: the pipeline the surveyed students built.)

#include <iostream>

#include "pipeline/crime.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto historic = cli.get<std::size_t>("historic", 60000, "historic arrests");
  const auto current = cli.get<std::size_t>("current", 30000, "current-year arrests");
  const auto seed = cli.get<std::uint64_t>("seed", 7, "seed");
  cli.finish();

  peachy::pipeline::CrimeConfig base;
  base.historic_arrests = historic;
  base.current_arrests = current;
  base.seed = seed;

  // ---- per-stage profile at the default configuration ------------------------
  {
    const auto report = peachy::pipeline::run_crime_pipeline(base);
    std::cout << "Fig. 2 pipeline — stage profile (" << historic + current << " arrests, "
              << base.city.rows * base.city.cols << " NTAs, " << base.partitions
              << " partitions, " << base.threads << " threads):\n\n";
    peachy::support::Table stages;
    stages.header({"stage", "ms", "% of total"});
    double total = 0;
    for (const auto& t : report.stage_timings) total += t.seconds;
    for (const auto& t : report.stage_timings) {
      stages.row({t.name, t.seconds * 1e3, 100.0 * t.seconds / total});
    }
    stages.print();
    std::cout << "\nengine: " << report.engine.tasks << " partition tasks, "
              << report.engine.shuffles << " shuffles, " << report.engine.shuffle_records
              << " records shuffled; " << report.events_located << "/"
              << report.events_in_target_year << " events located\n";

    // Validate against the serial oracle.
    const auto oracle = peachy::pipeline::crime_rates_serial(base);
    bool match = report.rates.size() == oracle.size();
    for (std::size_t i = 0; match && i < oracle.size(); ++i) {
      match = report.rates[i].nta == oracle[i].nta &&
              report.rates[i].arrests == oracle[i].arrests;
    }
    std::cout << "distributed result == serial oracle: " << (match ? "yes" : "NO") << "\n";
  }

  // ---- partitions x threads sweep ----------------------------------------------
  {
    std::cout << "\npartitions x threads sweep (total pipeline ms):\n\n";
    peachy::support::Table sweep;
    sweep.header({"partitions", "threads=1", "threads=2", "threads=4"});
    for (const std::size_t partitions : {1u, 4u, 16u}) {
      std::vector<peachy::support::Table::Cell> row{
          static_cast<std::int64_t>(partitions)};
      for (const std::size_t threads : {1u, 2u, 4u}) {
        peachy::pipeline::CrimeConfig cfg = base;
        cfg.partitions = partitions;
        cfg.threads = threads;
        peachy::support::Stopwatch sw;
        (void)peachy::pipeline::run_crime_pipeline(cfg);
        row.emplace_back(sw.elapsed_ms());
      }
      sweep.row(std::move(row));
    }
    sweep.print();
    std::cout << "\nexpected shape: more partitions help until per-partition overhead\n"
                 "dominates; thread scaling requires >1 physical core (flat here on a\n"
                 "single-core host, but the partition-count trends remain).\n";
  }
  return 0;
}
