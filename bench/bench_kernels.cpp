/// \file bench_kernels.cpp
/// \brief Kernel-layer regression harness: times every peachy::kernels
/// primitive against its scalar reference twin and emits the results as
/// machine-readable JSON (schema "peachy-bench/1") so each PR has a perf
/// trajectory to compare against.
///
/// Usage:
///   bench_kernels [--tiny] [--repeat N] [--out FILE]
///
/// --tiny shrinks every workload to smoke-test size (for scripts/check.sh
/// bench-smoke: validates the wiring and the JSON schema, not the
/// numbers).  Default output file: BENCH_kernels.json in the CWD.
///
/// Method: best-of-R wall time per benchmark (minimum is the standard
/// noise-robust microbenchmark estimator), identical buffers and sizes
/// for the scalar and dispatched runs, results accumulated into a sink
/// that is printed so the optimizer cannot delete the work.  --repeat N
/// runs the whole suite N times and keeps the per-row minimum: on shared
/// or frequency-scaled hosts, interference arrives in bursts that can
/// swallow all reps of a single pass, so passes spaced over the full
/// suite duration are needed for the minimum to reach the machine's
/// quiet-state floor (what the committed baseline and the <2% CI gates
/// are defined against).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/points.hpp"
#include "kernels/kernels.hpp"
#include "rng/lcg.hpp"
#include "rng/distributions.hpp"
#include "support/aligned.hpp"
#include "support/timer.hpp"

namespace {

namespace pk = peachy::kernels;
namespace ps = peachy::support;
namespace rng = peachy::rng;

double g_sink = 0.0;  // defeats dead-code elimination; printed at the end

struct Row {
  std::string name;
  std::string shape;
  std::uint64_t items;  // elements of useful work per run (for context)
  double scalar_ns;
  double kernel_ns;
  double speedup;
};

std::vector<Row> g_rows;

/// Time scalar vs dispatched variants of one workload and record a row.
/// Each timed rep runs the workload `inner` times (amortizes clock
/// granularity and scheduler noise for sub-100us workloads); reported
/// nanoseconds are per single run.
template <typename ScalarFn, typename KernelFn>
void bench(const std::string& name, const std::string& shape, std::uint64_t items, int reps,
           int inner, ScalarFn&& scalar, KernelFn&& kernel) {
  const double s = ps::time_best_of(reps, [&] {
                     for (int r = 0; r < inner; ++r) scalar();
                   }) *
                   1e9 / inner;
  const double v = ps::time_best_of(reps, [&] {
                     for (int r = 0; r < inner; ++r) kernel();
                   }) *
                   1e9 / inner;
  for (Row& row : g_rows) {
    if (row.name == name) {  // later --repeat pass: keep the per-row minimum
      row.scalar_ns = std::min(row.scalar_ns, s);
      row.kernel_ns = std::min(row.kernel_ns, v);
      row.speedup = row.scalar_ns / row.kernel_ns;
      return;
    }
  }
  g_rows.push_back({name, shape, items, s, v, s / v});
  std::printf("%-28s %-22s scalar %12.0f ns   kernel %12.0f ns   speedup %5.2fx\n",
              name.c_str(), shape.c_str(), s, v, s / v);
}

ps::aligned_vector<double> random_buffer(std::size_t n, std::uint64_t seed) {
  rng::Lcg64 gen{seed};
  ps::aligned_vector<double> buf(n);
  for (double& x : buf) x = rng::uniform_real(gen, -1.0, 1.0);
  return buf;
}

void run_all(bool tiny) {
  const int reps = tiny ? 1 : 11;

  // Batched point-to-centroid distances (the k-means/kNN hot path) at
  // the assignment-typical and acceptance-criterion dimensions.
  for (const std::size_t d : {2ul, 8ul, 32ul}) {
    const std::size_t n = tiny ? 64 : 20000;
    const std::size_t k = tiny ? 5 : 64;
    peachy::data::PointSet pts{n, d};
    {
      auto buf = random_buffer(n * d, 11);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) pts.at(i, j) = buf[i * d + j];
      }
    }
    peachy::data::PointSet cents{k, d};
    {
      auto buf = random_buffer(k * d, 13);
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t j = 0; j < d; ++j) cents.at(c, j) = buf[c * d + j];
      }
    }
    const auto panel = cents.transposed_panel();
    ps::aligned_vector<double> out(n * k);
    const std::string shape =
        "n=" + std::to_string(n) + " k=" + std::to_string(k) + " d=" + std::to_string(d);
    bench(
        "batch_distances_d" + std::to_string(d), shape, n * k, reps, 1,
        [&] {
          pk::ref::squared_distances_tile(pts.values().data(), n, d, panel.data(), k,
                                          panel.padded, out.data());
          g_sink += out[n * k - 1];
        },
        [&] {
          pk::squared_distances_tile(pts.values().data(), n, d, panel.data(), k, panel.padded,
                                     out.data());
          g_sink += out[n * k - 1];
        });

    // Fused assignment step over the same data (sums/counts + argmin).
    std::vector<std::int32_t> assign(n, -1);
    ps::aligned_vector<double> sums(k * d);
    std::vector<std::int64_t> counts(k);
    bench(
        "argmin_assign_d" + std::to_string(d), shape, n, reps, 1,
        [&] {
          std::fill(sums.begin(), sums.end(), 0.0);
          std::fill(counts.begin(), counts.end(), 0);
          g_sink += static_cast<double>(pk::ref::argmin_assign(
              pts.values().data(), n, d, panel.data(), k, panel.padded, assign.data(),
              sums.data(), counts.data()));
        },
        [&] {
          std::fill(sums.begin(), sums.end(), 0.0);
          std::fill(counts.begin(), counts.end(), 0);
          g_sink += static_cast<double>(pk::argmin_assign(pts.values().data(), n, d,
                                                          panel.data(), k, panel.padded,
                                                          assign.data(), sums.data(),
                                                          counts.data()));
        });
  }

  // Pairwise distances, row-batched (kNN brute force; kmeans++ seeding).
  {
    const std::size_t n = tiny ? 64 : 50000;
    const std::size_t d = 16;
    const auto pts = random_buffer(n * d, 17);
    const auto q = random_buffer(d, 19);
    ps::aligned_vector<double> out(n);
    const std::string shape = "n=" + std::to_string(n) + " d=" + std::to_string(d);
    bench(
        "rows_distances_d16", shape, n, reps, tiny ? 1 : 16,
        [&] {
          pk::ref::squared_distances_rows(pts.data(), n, d, q.data(), out.data());
          g_sink += out[n - 1];
        },
        [&] {
          pk::squared_distances_rows(pts.data(), n, d, q.data(), out.data());
          g_sink += out[n - 1];
        });
  }

  // Heat stencil row (the explicit update of §6).  Cache-resident size:
  // the experiment grids are at most a few 10^4 cells, and far beyond the
  // LLC the kernel is DRAM-bandwidth-bound (vectorization can't help a
  // 2 doubles/elem streaming loop there).
  {
    const std::size_t n = tiny ? 128 : (1u << 16);
    const auto src = random_buffer(n + 2, 23);
    ps::aligned_vector<double> dst(n + 2);
    const std::string shape = "n=" + std::to_string(n);
    bench(
        "stencil_row", shape, n, reps, tiny ? 1 : 16,
        [&] {
          pk::ref::stencil_row(dst.data() + 1, src.data() + 1, n, 0.25);
          g_sink += dst[n];
        },
        [&] {
          pk::stencil_row(dst.data() + 1, src.data() + 1, n, 0.25);
          g_sink += dst[n];
        });
  }

  // Register-tiled matmul (the MLP forward/backward product of §7).
  {
    const std::size_t n = tiny ? 12 : 192;
    const auto a = random_buffer(n * n, 29);
    const auto b = random_buffer(n * n, 31);
    ps::aligned_vector<double> c(n * n);
    const std::string shape =
        std::to_string(n) + "x" + std::to_string(n) + "x" + std::to_string(n);
    bench(
        "gemm_block", shape, n * n * n, reps, 1,
        [&] {
          std::fill(c.begin(), c.end(), 0.0);
          pk::ref::gemm_block(a.data(), b.data(), c.data(), n, n, n);
          g_sink += c[n * n - 1];
        },
        [&] {
          std::fill(c.begin(), c.end(), 0.0);
          pk::gemm_block(a.data(), b.data(), c.data(), n, n, n);
          g_sink += c[n * n - 1];
        });
  }

  // Dot product / axpy (backprop's a_bt product and SGD update).
  {
    const std::size_t n = tiny ? 100 : 100000;
    const auto a = random_buffer(n, 37);
    const auto b = random_buffer(n, 41);
    ps::aligned_vector<double> y(n, 0.0);
    const std::string shape = "n=" + std::to_string(n);
    bench(
        "dot", shape, n, reps, tiny ? 1 : 16, [&] { g_sink += pk::ref::dot(a.data(), b.data(), n); },
        [&] { g_sink += pk::dot(a.data(), b.data(), n); });
    bench(
        "axpy", shape, n, reps, tiny ? 1 : 16,
        [&] {
          pk::ref::axpy(y.data(), a.data(), 0.5, n);
          g_sink += y[n - 1];
        },
        [&] {
          pk::axpy(y.data(), a.data(), 0.5, n);
          g_sink += y[n - 1];
        });
  }
}

void write_json(const std::string& path, bool tiny) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernels: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"peachy-bench/1\",\n");
  std::fprintf(f, "  \"harness\": \"bench_kernels\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n", pk::isa_name(pk::active_isa()));
  std::fprintf(f, "  \"tiny\": %s,\n", tiny ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"items\": %llu, "
                 "\"scalar_ns\": %.1f, \"kernel_ns\": %.1f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), static_cast<unsigned long long>(r.items),
                 r.scalar_ns, r.kernel_ns, r.speedup, i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu benchmarks, isa=%s)\n", path.c_str(), g_rows.size(),
              pk::isa_name(pk::active_isa()));
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  int repeat = 1;
  std::string out = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) {
        std::fprintf(stderr, "bench_kernels: --repeat wants a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_kernels [--tiny] [--repeat N] [--out FILE]\n");
      return 2;
    }
  }
  std::printf("bench_kernels: active isa = %s%s\n", pk::isa_name(pk::active_isa()),
              tiny ? " (tiny smoke sizes)" : "");
  for (int pass = 0; pass < repeat; ++pass) {
    if (repeat > 1) std::printf("-- pass %d/%d --\n", pass + 1, repeat);
    run_all(tiny);
  }
  write_json(out, tiny);
  std::printf("sink=%g\n", g_sink);
  return 0;
}
