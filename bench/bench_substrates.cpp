/// \file bench_substrates.cpp
/// \brief Microbenchmarks of the substrates every assignment runs on:
/// thread-pool task dispatch, parallel_for overhead, barriers, mini-MPI
/// point-to-point and collectives, and the MapReduce shuffle.
///
/// These quantify the constant factors behind the experiment harnesses
/// (e.g. the per-task overhead that T-HT-1's forall-vs-coforall contrast
/// is made of).

#include <benchmark/benchmark.h>

#include <atomic>

#include "mapreduce/mapreduce.hpp"
#include "mpi/mpi.hpp"
#include "support/barrier.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

namespace {

void BM_ThreadPool_SubmitDrain(benchmark::State& state) {
  peachy::support::ThreadPool pool{4};
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      pool.submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ThreadPool_SubmitDrain)->Arg(16)->Arg(256)->UseRealTime();

void BM_ParallelFor_Overhead(benchmark::State& state) {
  peachy::support::ThreadPool pool{4};
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> data(n, 1.0);
  for (auto _ : state) {
    // Grain 0: this benchmark measures dispatch overhead itself, so the
    // small-n inline shortcut must not kick in.
    peachy::support::parallel_for(
        pool, 0, n, [&](std::size_t i) { data[i] *= 1.0000001; }, /*grain=*/0);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelFor_Overhead)->Arg(1 << 10)->Arg(1 << 16)->UseRealTime();

void BM_CyclicBarrier_Phase(benchmark::State& state) {
  // Single-party barrier isolates the mutex/cv cost per phase.
  peachy::support::CyclicBarrier bar{1};
  for (auto _ : state) benchmark::DoNotOptimize(bar.arrive_and_wait());
}
BENCHMARK(BM_CyclicBarrier_Phase)->UseRealTime();

void BM_Mpi_PingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    peachy::mpi::run(2, [bytes](peachy::mpi::Comm& comm) {
      const std::vector<std::byte> payload(bytes, std::byte{1});
      constexpr int kRounds = 50;
      for (int r = 0; r < kRounds; ++r) {
        if (comm.rank() == 0) {
          comm.send_bytes(1, 0, payload);
          (void)comm.recv_bytes(1, 0);
        } else {
          (void)comm.recv_bytes(0, 0);
          comm.send_bytes(0, 0, payload);
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 100 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Mpi_PingPong)->Arg(64)->Arg(1 << 16)->UseRealTime();

void BM_Mpi_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto stats = peachy::mpi::run(ranks, [](peachy::mpi::Comm& comm) {
      std::vector<double> local(256, 1.0);
      for (int round = 0; round < 20; ++round) {
        local = comm.allreduce<double>(local, std::plus<>{});
      }
    });
    state.counters["msgs"] = static_cast<double>(stats.messages);
  }
}
BENCHMARK(BM_Mpi_Allreduce)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Mpi_Allreduce_Checked(benchmark::State& state) {
  // Same workload as BM_Mpi_Allreduce but at CheckLevel::full: the delta
  // between the two is the cost of the deadlock / collective-matching
  // checker (the default CheckLevel::off path stays untouched).
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto stats = peachy::mpi::run(
        ranks,
        [](peachy::mpi::Comm& comm) {
          std::vector<double> local(256, 1.0);
          for (int round = 0; round < 20; ++round) {
            local = comm.allreduce<double>(local, std::plus<>{});
          }
        },
        peachy::analysis::CheckLevel::full);
    state.counters["msgs"] = static_cast<double>(stats.messages);
  }
}
BENCHMARK(BM_Mpi_Allreduce_Checked)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Mpi_Alltoall(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto stats = peachy::mpi::run(ranks, [](peachy::mpi::Comm& comm) {
      std::vector<std::vector<int>> send(comm.size(), std::vector<int>(128, comm.rank()));
      for (int round = 0; round < 20; ++round) {
        benchmark::DoNotOptimize(comm.alltoall(send));
      }
    });
    state.counters["msgs"] = static_cast<double>(stats.messages);
  }
}
BENCHMARK(BM_Mpi_Alltoall)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_MapReduce_ShuffleGroup(benchmark::State& state) {
  const auto pairs_per_rank = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    peachy::mpi::run(4, [pairs_per_rank](peachy::mpi::Comm& comm) {
      peachy::mapreduce::MapReduce mr{comm};
      mr.map(4, [pairs_per_rank](std::size_t task, peachy::mapreduce::KvEmitter& out) {
        for (std::size_t i = 0; i < pairs_per_rank; ++i) {
          out.emit_record<std::uint64_t>("key" + std::to_string((task * 7 + i) % 100), i);
        }
      });
      mr.collate();
      mr.reduce([](const std::string& k, std::span<const std::string> values,
                   peachy::mapreduce::KvEmitter& out) {
        out.emit_record<std::uint64_t>(k, values.size());
      });
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(pairs_per_rank));
}
BENCHMARK(BM_MapReduce_ShuffleGroup)->Arg(1000)->Arg(10000)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
