/// \file bench_substrates.cpp
/// \brief Transport-substrate regression harness: times the pooled
/// zero-copy mini-MPI collectives and the MapReduce-style shuffle
/// exchange against bench-local *legacy twins* — faithful
/// re-implementations of the pre-pool transport algorithms (per-message
/// allocation, copying sends, double-copy typed receives,
/// vector-of-vectors assembly) run with slab reuse disabled.  Results
/// are emitted as machine-readable JSON (schema "peachy-bench/1", same
/// shape as BENCH_kernels.json) so each PR has a perf trajectory to
/// compare against; `scalar_ns` is the legacy twin, `kernel_ns` the
/// shipped path.
///
/// Usage:
///   bench_substrates [--tiny] [--out FILE] [--profile FILE]
///                    [--transport=inproc|shm|socket]
///
/// --tiny shrinks every workload to smoke-test size (for scripts/check.sh
/// bench-substrates-smoke: validates the wiring and the JSON schema, not
/// the numbers).  Default output file: BENCH_substrates.json in the CWD.
///
/// Besides the legacy-twin rows, the harness sweeps the collective
/// *algorithm* space (op × p × message size): for every cell it times
/// each algorithm variant and records the full per-algorithm timing map
/// (the crossover record), with `scalar_ns` = the compiled-in default
/// algorithm and `kernel_ns` = whatever the profile given by --profile
/// selects (no profile: the defaults again, speedup ~1).  This is the
/// sweep scripts/check.sh tune-smoke gates tuned-vs-default speedups on.
///
/// Method: best-of-R wall time per benchmark; each timed run executes
/// many collective rounds inside one mpi::run so buffer traffic, not
/// thread spawn, dominates.  Identical payload sizes and round counts
/// for both twins, results accumulated into a printed sink.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "mapreduce/mapreduce.hpp"
#include "mpi/buffer_pool.hpp"
#include "mpi/mpi.hpp"
#include "support/timer.hpp"
#include "tune/tune.hpp"

namespace {

namespace pm = peachy::mpi;
namespace ps = peachy::support;
namespace mr = peachy::mapreduce;

double g_sink = 0.0;  // defeats dead-code elimination; printed at the end

/// Which backend every mpi::run in the sweep rides (--transport=...).
/// kDefault keeps the historical behavior: PEACHY_TRANSPORT or inproc.
pm::TransportKind g_transport = pm::TransportKind::kDefault;

/// mpi::run with the sweep-wide transport applied — every bench body
/// goes through here so --transport=shm|socket times the same workloads
/// over a real wire.
template <typename Fn>
void run_world(int ranks, Fn&& fn) {
  pm::RunOptions opts;
  opts.transport = g_transport;
  peachy::mpi::run(ranks, std::forward<Fn>(fn), opts);
}

struct Row {
  std::string name;
  std::string shape;
  std::uint64_t items;  // elements exchanged per run (for context)
  double scalar_ns;     // legacy twin (pre-pool transport algorithms)
  double kernel_ns;     // shipped pooled / zero-copy path
  double speedup;
  std::string extra;  // raw JSON appended to the row ("" or ", \"k\": v...")
};

std::vector<Row> g_rows;

/// Restore-on-exit guard that disables slab reuse, putting the transport
/// back on the pre-pool allocate-per-message regime for the legacy twin.
struct PoolingOff {
  bool was;
  PoolingOff() : was(pm::BufferPool::instance().pooling()) {
    pm::BufferPool::instance().set_pooling(false);
  }
  ~PoolingOff() { pm::BufferPool::instance().set_pooling(was); }
  PoolingOff(const PoolingOff&) = delete;
  PoolingOff& operator=(const PoolingOff&) = delete;
};

/// Time legacy twin vs shipped path and record a row.  Reported
/// nanoseconds are per full run (all rounds).
template <typename LegacyFn, typename NewFn>
void bench(const std::string& name, const std::string& shape, std::uint64_t items, int reps,
           LegacyFn&& legacy, NewFn&& fresh) {
  const double s = ps::time_best_of(reps, [&] {
                     const PoolingOff off;
                     legacy();
                   }) *
                   1e9;
  const double v = ps::time_best_of(reps, [&] { fresh(); }) * 1e9;
  g_rows.push_back({name, shape, items, s, v, s / v, ""});
  std::printf("%-18s %-34s legacy %12.0f ns   pooled %12.0f ns   speedup %5.2fx\n",
              name.c_str(), shape.c_str(), s, v, s / v);
}

// ---------------------------------------------------------------------------
// Legacy twins.  These reproduce the pre-pool transport algorithms out of
// public point-to-point primitives: sends copy out of caller storage, a
// typed receive lands in a fresh byte vector and is then memcpy'd into a
// fresh typed vector (the old double copy), and every collective
// materializes intermediate vectors instead of forwarding pooled blocks.

constexpr int kTag = 7;

template <typename T>
std::vector<T> legacy_recv(pm::Comm& comm, int source) {
  const std::vector<std::byte> bytes = comm.recv_bytes(source, kTag);
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

template <typename T>
void legacy_send(pm::Comm& comm, int dest, const std::vector<T>& data) {
  comm.send<T>(dest, kTag, std::span<const T>{data});
}

/// Binomial broadcast from rank 0, allocating a fresh vector per hop.
template <typename T>
void legacy_broadcast0(pm::Comm& comm, std::vector<T>& data) {
  const int p = comm.size();
  const int me = comm.rank();
  int high = 0;
  if (me != 0) {
    high = 1;
    while (high * 2 <= me) high *= 2;
    data = legacy_recv<T>(comm, me - high);
  }
  for (int d = (high == 0 ? 1 : high * 2); me + d < p; d *= 2) {
    legacy_send<T>(comm, me + d, data);
  }
}

/// Binomial reduce-to-0 + broadcast, every step through fresh vectors.
template <typename T, typename Op>
std::vector<T> legacy_allreduce(pm::Comm& comm, const std::vector<T>& local, Op op) {
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<T> acc = local;
  for (int dist = 1; dist < p; dist *= 2) {
    if (me % (2 * dist) == 0) {
      if (me + dist < p) {
        const std::vector<T> part = legacy_recv<T>(comm, me + dist);
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = op(acc[i], part[i]);
      }
    } else {
      legacy_send<T>(comm, me - dist, acc);
      break;
    }
  }
  legacy_broadcast0<T>(comm, acc);
  return acc;
}

/// Ring allgather that stores every block as its own vector, re-sending
/// (re-copying) the forwarded block each step, then concatenates.
template <typename T>
std::vector<T> legacy_allgather(pm::Comm& comm, const std::vector<T>& local) {
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<std::vector<T>> blocks(static_cast<std::size_t>(p));
  blocks[static_cast<std::size_t>(me)] = local;
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s + 1 < p; ++s) {
    const auto send_b = static_cast<std::size_t>(((me - s) % p + p) % p);
    const auto recv_b = static_cast<std::size_t>(((me - s - 1) % p + p) % p);
    legacy_send<T>(comm, right, blocks[send_b]);
    blocks[recv_b] = legacy_recv<T>(comm, left);
  }
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  std::vector<T> all;
  all.reserve(total);
  for (const auto& b : blocks) all.insert(all.end(), b.begin(), b.end());
  return all;
}

/// Personalized exchange that copies the self bucket and sends copies of
/// every outgoing bucket.
template <typename T>
std::vector<std::vector<T>> legacy_alltoall(pm::Comm& comm,
                                            const std::vector<std::vector<T>>& sendbufs) {
  const int p = comm.size();
  const int me = comm.rank();
  std::vector<std::vector<T>> recvbufs(static_cast<std::size_t>(p));
  recvbufs[static_cast<std::size_t>(me)] = sendbufs[static_cast<std::size_t>(me)];
  for (int off = 1; off < p; ++off) {
    const int dest = (me + off) % p;
    legacy_send<T>(comm, dest, sendbufs[static_cast<std::size_t>(dest)]);
  }
  for (int off = 1; off < p; ++off) {
    const int src = (me + p - off) % p;
    recvbufs[static_cast<std::size_t>(src)] = legacy_recv<T>(comm, src);
  }
  return recvbufs;
}

// ---------------------------------------------------------------------------
// Workloads.

void bench_allreduce(int ranks, std::size_t n, int rounds, int reps) {
  const std::string shape =
      "p=" + std::to_string(ranks) + " n=" + std::to_string(n) + " f64 rounds=" + std::to_string(rounds);
  const auto items = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(rounds);
  bench(
      "allreduce_p" + std::to_string(ranks), shape, items, reps,
      [&] {
        run_world(ranks, [n, rounds](pm::Comm& comm) {
          std::vector<double> data(n, 1.0 + 1e-9 * comm.rank());
          for (int r = 0; r < rounds; ++r) {
            data = legacy_allreduce<double>(comm, data, std::plus<>{});
            for (double& x : data) x = x * 1e-3 + 1.0;  // keep magnitudes O(1)
          }
          if (comm.rank() == 0) g_sink += data[0];
        });
      },
      [&] {
        run_world(ranks, [n, rounds](pm::Comm& comm) {
          std::vector<double> data(n, 1.0 + 1e-9 * comm.rank());
          for (int r = 0; r < rounds; ++r) {
            comm.allreduce_inplace<double>(std::span<double>{data}, std::plus<>{});
            for (double& x : data) x = x * 1e-3 + 1.0;
          }
          if (comm.rank() == 0) g_sink += data[0];
        });
      });
}

void bench_allgather(int ranks, std::size_t block, int rounds, int reps) {
  const std::string shape = "p=" + std::to_string(ranks) + " block=" + std::to_string(block) +
                            " i64 rounds=" + std::to_string(rounds);
  const auto items =
      static_cast<std::uint64_t>(block) * static_cast<std::uint64_t>(ranks) * rounds;
  bench(
      "allgather_p" + std::to_string(ranks), shape, items, reps,
      [&] {
        run_world(ranks, [block, rounds](pm::Comm& comm) {
          const std::vector<std::int64_t> local(block, comm.rank());
          for (int r = 0; r < rounds; ++r) {
            const auto all = legacy_allgather<std::int64_t>(comm, local);
            g_sink += static_cast<double>(all.back());
          }
        });
      },
      [&] {
        run_world(ranks, [block, rounds](pm::Comm& comm) {
          const std::vector<std::int64_t> local(block, comm.rank());
          std::vector<std::int64_t> all(block * static_cast<std::size_t>(comm.size()));
          for (int r = 0; r < rounds; ++r) {
            comm.allgather_into<std::int64_t>(local, std::span<std::int64_t>{all});
            g_sink += static_cast<double>(all.back());
          }
        });
      });
}

void bench_alltoall(int ranks, std::size_t bucket, int rounds, int reps) {
  const std::string shape = "p=" + std::to_string(ranks) + " bucket=" + std::to_string(bucket) +
                            " i64 rounds=" + std::to_string(rounds);
  const auto items =
      static_cast<std::uint64_t>(bucket) * static_cast<std::uint64_t>(ranks) * rounds;
  // Both twins rebuild the send buckets every round — the shuffle usage
  // pattern, and required anyway on the new path because the rvalue
  // overload consumes them.
  const auto fill = [bucket](pm::Comm& comm) {
    std::vector<std::vector<std::int64_t>> sendbufs(static_cast<std::size_t>(comm.size()));
    for (auto& b : sendbufs) b.assign(bucket, comm.rank());
    return sendbufs;
  };
  bench(
      "alltoall_p" + std::to_string(ranks), shape, items, reps,
      [&] {
        run_world(ranks, [rounds, fill](pm::Comm& comm) {
          for (int r = 0; r < rounds; ++r) {
            auto sendbufs = fill(comm);
            const auto recvbufs = legacy_alltoall<std::int64_t>(comm, sendbufs);
            g_sink += static_cast<double>(recvbufs.back().back());
          }
        });
      },
      [&] {
        run_world(ranks, [rounds, fill](pm::Comm& comm) {
          for (int r = 0; r < rounds; ++r) {
            auto sendbufs = fill(comm);
            const auto recvbufs = comm.alltoall(std::move(sendbufs));
            g_sink += static_cast<double>(recvbufs.back().back());
          }
        });
      });
}

/// The MapReduce shuffle exchange in isolation: partition key/value
/// records by destination, serialize per destination, alltoall the byte
/// buffers, deserialize.  The legacy twin copies the serialized buffers
/// into the transport and double-copies them out; the shipped path moves
/// them end to end (serialized exactly once).
void bench_shuffle(int ranks, std::size_t pairs, std::size_t value_bytes, int rounds, int reps) {
  const std::string shape = "p=" + std::to_string(ranks) + " pairs=" + std::to_string(pairs) +
                            " val=" + std::to_string(value_bytes) +
                            "B rounds=" + std::to_string(rounds);
  const auto items =
      static_cast<std::uint64_t>(pairs) * static_cast<std::uint64_t>(ranks) * rounds;

  const auto make_pairs = [pairs, value_bytes](int rank) {
    std::vector<mr::KeyValue> kvs(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      kvs[i].key = "key" + std::to_string((static_cast<std::size_t>(rank) * 131 + i * 7) % 997);
      kvs[i].value.assign(value_bytes, static_cast<char>('a' + i % 26));
    }
    return kvs;
  };
  // Partition + serialize, one byte buffer per destination rank.
  const auto serialize_buckets = [](const std::vector<mr::KeyValue>& kvs, int p) {
    std::vector<std::vector<mr::KeyValue>> parts(static_cast<std::size_t>(p));
    for (const auto& kv : kvs) {
      parts[std::hash<std::string>{}(kv.key) % static_cast<std::size_t>(p)].push_back(kv);
    }
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(p));
    for (std::size_t r = 0; r < parts.size(); ++r) bufs[r] = mr::serialize_pairs(parts[r]);
    return bufs;
  };
  const auto consume = [](const std::vector<std::vector<std::byte>>& recvbufs) {
    std::size_t got = 0;
    for (const auto& buf : recvbufs) got += mr::deserialize_pairs(buf).size();
    return got;
  };

  bench(
      "mr_shuffle_p" + std::to_string(ranks), shape, items, reps,
      [&] {
        run_world(ranks, [&](pm::Comm& comm) {
          const auto kvs = make_pairs(comm.rank());
          for (int r = 0; r < rounds; ++r) {
            auto sendbufs = serialize_buckets(kvs, comm.size());
            const auto recvbufs = legacy_alltoall<std::byte>(comm, sendbufs);
            g_sink += static_cast<double>(consume(recvbufs));
          }
        });
      },
      [&] {
        run_world(ranks, [&](pm::Comm& comm) {
          const auto kvs = make_pairs(comm.rank());
          for (int r = 0; r < rounds; ++r) {
            auto sendbufs = serialize_buckets(kvs, comm.size());
            const auto recvbufs = comm.alltoall(std::move(sendbufs));
            g_sink += static_cast<double>(consume(recvbufs));
          }
        });
      });
}

// ---------------------------------------------------------------------------
// Collective-algorithm sweep (op × p × message size).

namespace pt = peachy::tune;

/// A Tunables snapshot that forces `algo` for `op` at every (p, bytes) —
/// the knob the sweep turns to time one variant in isolation.
pt::Tunables force_algo(pt::CollOp op, pt::CollAlgo algo) {
  pt::Tunables t;
  pt::CollRule rule;
  rule.op = op;
  rule.algo = algo;
  t.coll_rules.push_back(rule);
  return t;
}

/// Time `rounds` back-to-back collectives of `op` on p ranks with n
/// doubles (per-rank block for allgather), under the given tunables.
double time_coll(pt::CollOp op, int ranks, std::size_t n, int rounds, int reps,
                 const pt::Tunables& tun) {
  pm::RunOptions opts;
  opts.tunables = &tun;
  const double secs = ps::time_best_of(reps, [&] {
    peachy::mpi::run(
        ranks,
        [op, n, rounds](pm::Comm& comm) {
          std::vector<double> data(n, 1.0 + 1e-9 * comm.rank());
          std::vector<double> all;
          if (op == pt::CollOp::kAllgather) {
            all.resize(n * static_cast<std::size_t>(comm.size()));
          }
          for (int r = 0; r < rounds; ++r) {
            switch (op) {
              case pt::CollOp::kBroadcast:
                comm.broadcast_into<double>(std::span<double>{data}, 0);
                break;
              case pt::CollOp::kReduce:
                comm.reduce_inplace<double>(std::span<double>{data}, std::plus<>{}, 0);
                for (double& x : data) x = x * 1e-3 + 1.0;  // keep magnitudes O(1)
                break;
              case pt::CollOp::kAllreduce:
                comm.allreduce_inplace<double>(std::span<double>{data}, std::plus<>{});
                for (double& x : data) x = x * 1e-3 + 1.0;
                break;
              case pt::CollOp::kAllgather:
                comm.allgather_into<double>(std::span<const double>{data},
                                            std::span<double>{all});
                break;
            }
          }
          g_sink += op == pt::CollOp::kAllgather ? all.back() : data[0];
        },
        opts);
  });
  return secs * 1e9;
}

/// Algorithm variants worth timing per op.  kAuto is always first (it is
/// the compiled-in default = the `scalar_ns` side); duplicates of the
/// default path (binomial broadcast, ring allgather) are skipped, and
/// recursive doubling only applies at power-of-two p.
std::vector<pt::CollAlgo> sweep_algos(pt::CollOp op, int ranks) {
  const bool pow2 = (ranks & (ranks - 1)) == 0;
  std::vector<pt::CollAlgo> algos{pt::CollAlgo::kAuto, pt::CollAlgo::kLinear};
  switch (op) {
    case pt::CollOp::kBroadcast:
      algos.push_back(pt::CollAlgo::kRing);  // pipeline chain
      break;
    case pt::CollOp::kReduce:
      algos.push_back(pt::CollAlgo::kRing);
      break;
    case pt::CollOp::kAllreduce:
      algos.push_back(pt::CollAlgo::kRing);
      if (pow2) algos.push_back(pt::CollAlgo::kRecDouble);
      break;
    case pt::CollOp::kAllgather:
      if (pow2) algos.push_back(pt::CollAlgo::kRecDouble);
      break;
  }
  return algos;
}

/// One sweep cell: time every variant, emit a row whose scalar_ns is the
/// default algorithm, kernel_ns the profile-selected one, and whose
/// "algos" map records the whole crossover picture.
void bench_coll(pt::CollOp op, int ranks, std::size_t n, int rounds, int reps,
                const pt::Tunables& profile) {
  const std::string name =
      std::string{"coll_"} + pt::coll_op_name(op) + "_p" + std::to_string(ranks);
  const std::string shape = "p=" + std::to_string(ranks) + " n=" + std::to_string(n) +
                            " f64 rounds=" + std::to_string(rounds);
  const auto items = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(rounds);

  std::string algos_json = "\"algos\": {";
  double default_ns = 0.0;
  for (const pt::CollAlgo algo : sweep_algos(op, ranks)) {
    const pt::Tunables forced = force_algo(op, algo);
    const double ns = time_coll(op, ranks, n, rounds, reps, forced);
    if (algo == pt::CollAlgo::kAuto) default_ns = ns;
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s\"%s\": %.1f",
                  algo == pt::CollAlgo::kAuto ? "" : ", ", pt::coll_algo_name(algo), ns);
    algos_json += buf;
  }
  algos_json += "}";

  // What the profile actually selects for this cell (byte size = the
  // sized-variant contract bytes, matching what Comm passes at runtime).
  const double tuned_ns = time_coll(op, ranks, n, rounds, reps, profile);
  const pt::CollAlgo picked =
      profile.coll_algo(op, ranks, static_cast<std::int64_t>(n * sizeof(double)));

  g_rows.push_back({name, shape, items, default_ns, tuned_ns, default_ns / tuned_ns,
                    ", " + algos_json + ", \"picked\": \"" + pt::coll_algo_name(picked) + "\""});
  std::printf("%-18s %-34s default %11.0f ns   tuned [%s] %11.0f ns   speedup %5.2fx\n",
              name.c_str(), shape.c_str(), default_ns, pt::coll_algo_name(picked), tuned_ns,
              default_ns / tuned_ns);
}

/// One k-means-style assign+update step per rank — the paper's
/// representative substrate mix: a distance-panel scan (exercises
/// distance_block_rows), a local accumulate, and an allreduce of the
/// centroid sums (exercises the collective rules).  Times the compiled-in
/// defaults against the profile, so the row measures what the *whole*
/// tuned configuration buys an end-to-end workload at this rank count.
void bench_mix(int ranks, bool tiny, int reps, const pt::Tunables& profile) {
  namespace pk = peachy::kernels;
  const std::size_t n = tiny ? 32 : 1024;  // points per rank
  const std::size_t d = 16;
  const std::size_t k = tiny ? 8 : 512;
  const int iters = tiny ? 1 : 4;
  const std::size_t kp = pk::padded_count(k);

  const auto run_once = [&](const pt::Tunables& tun) {
    pm::RunOptions opts;
    opts.tunables = &tun;
    opts.transport = g_transport;
    peachy::mpi::run(
        ranks,
        [&](pm::Comm& comm) {
          std::vector<double> pts(n * d);
          for (std::size_t i = 0; i < pts.size(); ++i) {
            pts[i] = 0.01 * static_cast<double>((i * 7 + comm.rank()) % 97);
          }
          std::vector<double> panel(kp * d, 0.0);
          for (std::size_t i = 0; i < panel.size(); ++i) {
            panel[i] = 0.02 * static_cast<double>(i % 89);
          }
          std::vector<double> dist(n * k);
          std::vector<double> acc(k * d + k);  // sums then counts
          for (int it = 0; it < iters; ++it) {
            pk::squared_distances_tile(pts.data(), n, d, panel.data(), k, kp, dist.data());
            std::fill(acc.begin(), acc.end(), 0.0);
            for (std::size_t i = 0; i < n; ++i) {
              const double* row = dist.data() + i * k;
              std::size_t best = 0;
              for (std::size_t c = 1; c < k; ++c) {
                if (row[c] < row[best]) best = c;
              }
              for (std::size_t j = 0; j < d; ++j) acc[best * d + j] += pts[i * d + j];
              acc[k * d + best] += 1.0;
            }
            comm.allreduce_inplace<double>(std::span<double>{acc}, std::plus<>{});
            for (std::size_t c = 0; c < k; ++c) {
              const double cnt = acc[k * d + c];
              if (cnt == 0.0) continue;
              const std::size_t g = c / pk::kPanelLane, lane = c % pk::kPanelLane;
              for (std::size_t j = 0; j < d; ++j) {
                panel[(g * d + j) * pk::kPanelLane + lane] = acc[c * d + j] / cnt;
              }
            }
          }
          g_sink += panel[0];
        },
        opts);
  };

  const pt::Tunables defaults;
  const double default_ns = ps::time_best_of(reps, [&] { run_once(defaults); }) * 1e9;
  const double tuned_ns = ps::time_best_of(reps, [&] { run_once(profile); }) * 1e9;

  const std::string name = "mix_kmeans_p" + std::to_string(ranks);
  const std::string shape = "p=" + std::to_string(ranks) + " n/rank=" + std::to_string(n) +
                            " k=" + std::to_string(k) + " d=" + std::to_string(d) +
                            " iters=" + std::to_string(iters);
  g_rows.push_back({name, shape,
                    static_cast<std::uint64_t>(n) * k * static_cast<std::uint64_t>(iters),
                    default_ns, tuned_ns, default_ns / tuned_ns, ""});
  std::printf("%-18s %-34s default %11.0f ns   tuned %11.0f ns   speedup %5.2fx\n",
              name.c_str(), shape.c_str(), default_ns, tuned_ns, default_ns / tuned_ns);
}

void run_all(bool tiny, const pt::Tunables& profile) {
  const int reps = tiny ? 1 : 7;
  const int rounds = tiny ? 1 : 20;
  for (const int p : {2, 4, 8}) {
    bench_allreduce(p, tiny ? 64 : 16384, rounds, reps);
  }
  for (const int p : {2, 4, 8}) {
    bench_allgather(p, tiny ? 64 : 16384, rounds, reps);
  }
  for (const int p : {2, 4, 8}) {
    bench_alltoall(p, tiny ? 64 : 8192, tiny ? 1 : 10, reps);
  }
  bench_shuffle(4, tiny ? 32 : 2000, tiny ? 8 : 256, tiny ? 1 : 5, reps);

  // Collective-algorithm sweep: op × p × {small, large} message sizes.
  const int coll_reps = tiny ? 1 : 5;
  const int coll_rounds = tiny ? 1 : 20;
  const std::vector<std::size_t> sizes =
      tiny ? std::vector<std::size_t>{64} : std::vector<std::size_t>{256, 32768};
  for (const pt::CollOp op : {pt::CollOp::kBroadcast, pt::CollOp::kReduce,
                              pt::CollOp::kAllreduce, pt::CollOp::kAllgather}) {
    for (const int p : {2, 4, 8}) {
      for (const std::size_t n : sizes) {
        bench_coll(op, p, n, coll_rounds, coll_reps, profile);
      }
    }
  }

  // End-to-end substrate mix per rank count: kernels + collectives under
  // the whole profile at once.
  for (const int p : {2, 4, 8}) {
    bench_mix(p, tiny, coll_reps, profile);
  }
}

void write_json(const std::string& path, bool tiny) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_substrates: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"peachy-bench/1\",\n");
  std::fprintf(f, "  \"harness\": \"bench_substrates\",\n");
  std::fprintf(f, "  \"isa\": \"%s\",\n", peachy::kernels::isa_name(peachy::kernels::active_isa()));
  std::fprintf(f, "  \"tiny\": %s,\n", tiny ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"items\": %llu, "
                 "\"scalar_ns\": %.1f, \"kernel_ns\": %.1f, \"speedup\": %.3f%s}%s\n",
                 r.name.c_str(), r.shape.c_str(), static_cast<unsigned long long>(r.items),
                 r.scalar_ns, r.kernel_ns, r.speedup, r.extra.c_str(),
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu benchmarks)\n", path.c_str(), g_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string out = "BENCH_substrates.json";
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      try {
        g_transport = pm::parse_transport(argv[i] + 12);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_substrates: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_substrates [--tiny] [--out FILE] [--profile FILE]"
                   " [--transport=inproc|shm|socket]\n");
      return 2;
    }
  }
  // The sweep's tuned side: the named profile's tunables, or (no/bad
  // profile) the compiled-in defaults, so speedup degrades to ~1 instead
  // of the harness failing.
  pt::Tunables profile = pt::defaults();
  if (!profile_path.empty()) {
    const pt::LoadResult lr = pt::load_profile_file(profile_path);
    for (const std::string& w : lr.warnings) {
      std::fprintf(stderr, "bench_substrates: %s\n", w.c_str());
    }
    if (lr.ok) {
      profile = lr.profile.tunables;
    } else {
      std::fprintf(stderr, "bench_substrates: profile rejected, sweeping with defaults\n");
    }
  }
  std::printf("bench_substrates: legacy transport twins vs pooled zero-copy path%s"
              " (transport=%s)\n",
              tiny ? " (tiny smoke sizes)" : "", pm::transport_name(g_transport));
  run_all(tiny, profile);
  write_json(out, tiny);
  std::printf("sink=%g\n", g_sink);
  return 0;
}
