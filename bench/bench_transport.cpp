/// \file bench_transport.cpp
/// \brief Cross-process wire regression harness: times ping-pong round-trip
/// latency, one-way streaming throughput, and the tuned collectives on every
/// transport backend (inproc / shm / socket) across the payload sizes that
/// matter to the wire — below the shm inline-slot limit, at the boundary, and
/// on the spill path.  Results are emitted as machine-readable JSON (schema
/// "peachy-bench/1", same shape as BENCH_substrates.json) so each PR has a
/// wire-perf trajectory to compare against.
///
/// Column semantics: `kernel_ns` is the backend under test, `scalar_ns` is
/// the pooled in-process path timed on the identical shape — the "speed of
/// not having a wire" reference — so `speedup` reads as inproc-vs-this-wire
/// (inproc rows are ~1 by construction).  scripts/bench_compare.py gates on
/// `kernel_ns` across runs regardless.
///
/// Usage:
///   bench_transport [--tiny] [--out FILE] [--repeat N]
///
/// --tiny shrinks every workload to smoke-test size (for scripts/check.sh
/// transport-bench-smoke: validates the wiring and the JSON schema on all
/// three backends, not the numbers).  --repeat overrides the best-of count
/// (default 5; the check.sh regression gate uses a higher value so a fresh
/// run's floor estimate is at least as tight as the committed baseline's).
/// Default output: BENCH_transport.json.
///
/// The harness runs unlaunched (one OS process): wire backends serialize
/// even same-process traffic through the full frame path — shm frames cross
/// the slot ring, socket frames cross a real loopback TCP connection — so a
/// single-process sweep measures the real per-message wire cost without
/// multi-process timer skew.  Method: best-of-R wall time, many rounds per
/// mpi::run so frame traffic, not thread spawn, dominates.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "support/timer.hpp"
#include "tune/tune.hpp"

namespace {

namespace pm = peachy::mpi;
namespace ps = peachy::support;
namespace pt = peachy::tune;

double g_sink = 0.0;  // defeats dead-code elimination; printed at the end

struct Row {
  std::string name;
  std::string shape;
  std::uint64_t items;  // payload bytes per message (for context)
  double scalar_ns;     // inproc reference on the identical shape
  double kernel_ns;     // the backend under test
  double speedup;
  std::string extra;  // raw JSON appended to the row ("" or ", \"k\": v...")
};

std::vector<Row> g_rows;

constexpr pm::TransportKind kBackends[] = {
    pm::TransportKind::kInproc, pm::TransportKind::kShm, pm::TransportKind::kSocket};

const char* backend_name(pm::TransportKind k) {
  switch (k) {
    case pm::TransportKind::kInproc: return "inproc";
    case pm::TransportKind::kShm: return "shm";
    case pm::TransportKind::kSocket: return "socket";
    default: return "default";
  }
}

constexpr int kTag = 11;

/// Ping-pong: rank 0 sends `bytes` to rank 1, rank 1 echoes it back,
/// `rounds` times.  Returns best-of-reps nanoseconds per round trip.
double time_pingpong(pm::TransportKind k, std::size_t bytes, int rounds, int reps) {
  pm::RunOptions opts;
  opts.transport = k;
  const double secs = ps::time_best_of(reps, [&] {
    pm::run(
        2,
        [bytes, rounds](pm::Comm& comm) {
          std::vector<std::byte> buf(bytes, std::byte{0x5A});
          for (int r = 0; r < rounds; ++r) {
            if (comm.rank() == 0) {
              comm.send_bytes(1, kTag, std::span<const std::byte>{buf});
              (void)comm.recv_bytes_into(std::span<std::byte>{buf}, 1, kTag);
            } else {
              (void)comm.recv_bytes_into(std::span<std::byte>{buf}, 0, kTag);
              comm.send_bytes(0, kTag, std::span<const std::byte>{buf});
            }
          }
          g_sink += static_cast<double>(std::to_integer<int>(buf[0]));
        },
        opts);
  });
  return secs * 1e9 / rounds;
}

/// One-way stream: rank 0 posts `count` messages of `bytes` back to back,
/// rank 1 drains them and acks once.  Returns nanoseconds per message.
double time_stream(pm::TransportKind k, std::size_t bytes, int count, int reps) {
  pm::RunOptions opts;
  opts.transport = k;
  const double secs = ps::time_best_of(reps, [&] {
    pm::run(
        2,
        [bytes, count](pm::Comm& comm) {
          if (comm.rank() == 0) {
            std::vector<std::byte> buf(bytes, std::byte{0x5A});
            for (int i = 0; i < count; ++i) {
              comm.send_bytes(1, kTag, std::span<const std::byte>{buf});
            }
            int done = comm.recv_value<int>(1, kTag + 1);
            g_sink += done;
          } else {
            std::vector<std::byte> buf(bytes);
            for (int i = 0; i < count; ++i) {
              (void)comm.recv_bytes_into(std::span<std::byte>{buf}, 0, kTag);
            }
            comm.send_value<int>(0, kTag + 1, 1);
            g_sink += static_cast<double>(std::to_integer<int>(buf[0]));
          }
        },
        opts);
  });
  return secs * 1e9 / count;
}

/// Tuned collective under the default (kAuto) tunables: `rounds` rounds of
/// `op` over `n` doubles on `ranks` ranks.  Returns ns per round.
double time_coll(pm::TransportKind k, pt::CollOp op, int ranks, std::size_t n, int rounds,
                 int reps) {
  pm::RunOptions opts;
  opts.transport = k;
  const double secs = ps::time_best_of(reps, [&] {
    pm::run(
        ranks,
        [op, n, rounds](pm::Comm& comm) {
          std::vector<double> data(n, 1.0 + 1e-9 * comm.rank());
          std::vector<double> all;
          if (op == pt::CollOp::kAllgather) {
            all.resize(n * static_cast<std::size_t>(comm.size()));
          }
          for (int r = 0; r < rounds; ++r) {
            switch (op) {
              case pt::CollOp::kAllreduce:
                comm.allreduce_inplace<double>(std::span<double>{data}, std::plus<>{});
                for (double& x : data) x = x * 1e-3 + 1.0;  // keep magnitudes O(1)
                break;
              case pt::CollOp::kAllgather:
                comm.allgather_into<double>(std::span<const double>{data},
                                            std::span<double>{all});
                break;
              default:
                break;
            }
          }
          g_sink += op == pt::CollOp::kAllgather ? all.back() : data[0];
        },
        opts);
  });
  return secs * 1e9 / rounds;
}

std::string size_tag(std::size_t bytes) {
  char buf[32];
  if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof buf, "%zuk", bytes / 1024);
  } else {
    std::snprintf(buf, sizeof buf, "%zu", bytes);
  }
  return buf;
}

void run_all(bool tiny, int repeat_override) {
  // Sizes straddle the shm inline-slot limit (1 KiB): 8/256 are pure
  // slot-ring traffic, 1024 is the boundary, 4k/64k ride the spill arena
  // (and the socket writev payload iovec).
  const std::vector<std::size_t> pp_sizes =
      tiny ? std::vector<std::size_t>{8, 4096}
           : std::vector<std::size_t>{8, 256, 1024, 4096, 65536};
  const int reps = repeat_override > 0 ? repeat_override : (tiny ? 1 : 5);

  // --- Ping-pong round-trip latency, p=2 ------------------------------
  for (const std::size_t bytes : pp_sizes) {
    const int rounds = tiny ? 4 : (bytes >= 65536 ? 200 : 1000);
    const std::string shape = "pp p=2 b=" + size_tag(bytes);
    double ref = 0.0;
    for (const pm::TransportKind k : kBackends) {
      const double ns = time_pingpong(k, bytes, rounds, reps);
      if (k == pm::TransportKind::kInproc) ref = ns;
      const std::string name = std::string("pp_") + backend_name(k) + "_" + size_tag(bytes);
      g_rows.push_back({name, shape, bytes, ref, ns, ref / ns, ""});
      std::printf("%-22s %-20s rtt %10.0f ns   (inproc ref %10.0f ns)\n", name.c_str(),
                  shape.c_str(), ns, ref);
    }
  }

  // --- One-way stream throughput, p=2 ---------------------------------
  for (const std::size_t bytes : pp_sizes) {
    const int count = tiny ? 8 : (bytes >= 65536 ? 400 : 4000);
    const std::string shape = "bw p=2 b=" + size_tag(bytes);
    double ref = 0.0;
    for (const pm::TransportKind k : kBackends) {
      const double ns = time_stream(k, bytes, count, reps);
      if (k == pm::TransportKind::kInproc) ref = ns;
      const double mbs = static_cast<double>(bytes) * 1e3 / ns;  // MB/s
      char extra[64];
      std::snprintf(extra, sizeof extra, ", \"mb_s\": %.1f", mbs);
      const std::string name = std::string("bw_") + backend_name(k) + "_" + size_tag(bytes);
      g_rows.push_back({name, shape, bytes, ref, ns, ref / ns, extra});
      std::printf("%-22s %-20s per-msg %8.0f ns   %10.1f MB/s\n", name.c_str(), shape.c_str(),
                  ns, mbs);
    }
  }

  // --- Tuned collectives, p=4 -----------------------------------------
  const std::vector<std::size_t> coll_n =
      tiny ? std::vector<std::size_t>{32} : std::vector<std::size_t>{256, 8192};
  const int coll_rounds = tiny ? 2 : 50;
  for (const pt::CollOp op : {pt::CollOp::kAllreduce, pt::CollOp::kAllgather}) {
    const char* opname = op == pt::CollOp::kAllreduce ? "allreduce" : "allgather";
    for (const std::size_t n : coll_n) {
      const std::string shape =
          std::string(opname) + " p=4 n=" + std::to_string(n) + " f64";
      double ref = 0.0;
      for (const pm::TransportKind k : kBackends) {
        const double ns = time_coll(k, op, 4, n, coll_rounds, reps);
        if (k == pm::TransportKind::kInproc) ref = ns;
        const std::string name =
            std::string("coll_") + opname + "_" + backend_name(k) + "_" + std::to_string(n);
        g_rows.push_back({name, shape, n * sizeof(double), ref, ns, ref / ns, ""});
        std::printf("%-28s %-24s %10.0f ns/round\n", name.c_str(), shape.c_str(), ns);
      }
    }
  }
}

void write_json(const std::string& path, bool tiny) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_transport: cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"peachy-bench/1\",\n");
  std::fprintf(f, "  \"harness\": \"bench_transport\",\n");
  std::fprintf(f, "  \"isa\": \"none\",\n");
  std::fprintf(f, "  \"tiny\": %s,\n", tiny ? "true" : "false");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", \"items\": %llu, "
                 "\"scalar_ns\": %.1f, \"kernel_ns\": %.1f, \"speedup\": %.3f%s}%s\n",
                 r.name.c_str(), r.shape.c_str(), static_cast<unsigned long long>(r.items),
                 r.scalar_ns, r.kernel_ns, r.speedup, r.extra.c_str(),
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu benchmarks)\n", path.c_str(), g_rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  int repeat = 0;
  std::string out = "BENCH_transport.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_transport [--tiny] [--out FILE] [--repeat N]\n");
      return 2;
    }
  }
  std::printf("bench_transport: wire cost per backend (inproc reference)%s\n",
              tiny ? " (tiny smoke sizes)" : "");
  run_all(tiny, repeat);
  write_json(out, tiny);
  std::printf("sink=%g\n", g_sink);
  return 0;
}
