/// \file bench_rng.cpp
/// \brief Experiment T-RNG-1: PRNG costs, and the O(log n) fast-forward
/// that makes the traffic assignment's reproducible parallelism viable.
///
/// Paper §5: "several random number generators have algorithms for
/// quickly 'moving ahead' ... the assignment starter code implements a
/// fast-forward algorithm for one of the C++ linearly congruent
/// generators."  The sweep shows discard(n) staying flat (logarithmic)
/// while manual stepping grows linearly, and Philox's O(1) counter jump.

#include <benchmark/benchmark.h>

#include "rng/lcg.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix.hpp"

namespace {

void BM_Lcg64_Next(benchmark::State& state) {
  peachy::rng::Lcg64 gen{42};
  for (auto _ : state) benchmark::DoNotOptimize(gen.next_u64());
}
BENCHMARK(BM_Lcg64_Next);

void BM_Minstd_Next(benchmark::State& state) {
  peachy::rng::Minstd gen{42};
  for (auto _ : state) benchmark::DoNotOptimize(gen.next_u32());
}
BENCHMARK(BM_Minstd_Next);

void BM_Philox_Next(benchmark::State& state) {
  peachy::rng::Philox4x32 gen{42};
  for (auto _ : state) benchmark::DoNotOptimize(gen.next_u32());
}
BENCHMARK(BM_Philox_Next);

void BM_SplitMix_Next(benchmark::State& state) {
  peachy::rng::SplitMix64 gen{42};
  for (auto _ : state) benchmark::DoNotOptimize(gen.next_u64());
}
BENCHMARK(BM_SplitMix_Next);

/// The paper's primitive: LCG fast-forward across jump distances.  The
/// O(log n) scaling shows as near-flat time while the range covers 2^8
/// to 2^24.
void BM_Lcg64_FastForward(benchmark::State& state) {
  const auto jump = static_cast<std::uint64_t>(state.range(0));
  peachy::rng::Lcg64 gen{42};
  for (auto _ : state) {
    gen.discard(jump);
    benchmark::DoNotOptimize(gen.state());
  }
  state.SetLabel("O(log n) jump");
}
BENCHMARK(BM_Lcg64_FastForward)->Range(1 << 8, 1 << 24);

/// The naive alternative: stepping one draw at a time — O(n).
void BM_Lcg64_ManualStepping(benchmark::State& state) {
  const auto jump = static_cast<std::uint64_t>(state.range(0));
  peachy::rng::Lcg64 gen{42};
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < jump; ++i) benchmark::DoNotOptimize(gen.next_u64());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jump));
  state.SetLabel("O(n) stepping");
}
BENCHMARK(BM_Lcg64_ManualStepping)->Range(1 << 8, 1 << 16);

/// Minstd jump via modular exponentiation — also O(log n).
void BM_Minstd_FastForward(benchmark::State& state) {
  const auto jump = static_cast<std::uint64_t>(state.range(0));
  peachy::rng::Minstd gen{42};
  for (auto _ : state) {
    gen.discard(jump);
    benchmark::DoNotOptimize(gen.state());
  }
}
BENCHMARK(BM_Minstd_FastForward)->Range(1 << 8, 1 << 24);

/// Philox: positioning is O(1) — set the counter.
void BM_Philox_SetIndex(benchmark::State& state) {
  const auto jump = static_cast<std::uint64_t>(state.range(0));
  peachy::rng::Philox4x32 gen{42};
  std::uint64_t pos = 0;
  for (auto _ : state) {
    pos += jump;
    gen.set_index(pos);
    benchmark::DoNotOptimize(gen.next_u32());
  }
  state.SetLabel("O(1) counter jump");
}
BENCHMARK(BM_Philox_SetIndex)->Range(1 << 8, 1 << 24);

}  // namespace

BENCHMARK_MAIN();
