#!/usr/bin/env python3
"""Compare a fresh bench_kernels run against the committed baseline.

Both inputs are "peachy-bench/1" JSON documents.  Rows are matched by
(name, shape); for each match the ratio fresh_kernel_ns / base_kernel_ns
is computed, and the gate is the *geometric mean* of those ratios —
individual rows are noisy at small sizes, but the geomean over the whole
suite is stable, so a real regression (e.g. a hook that stopped being
branch-predicted away) moves it while scheduler jitter does not.

Exit codes: 0 pass, 1 regression beyond tolerance, 2 usage/input error.
"""

import argparse
import json
import math
import re
import sys


def fail(msg):
    """Input/usage error: named message on stderr, exit 2 (never a traceback)."""
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(f"{path}: no such file — run the bench harness first, or check "
             "that the committed baseline path is right")
    except IsADirectoryError:
        fail(f"{path}: is a directory, expected a peachy-bench/1 JSON file")
    except json.JSONDecodeError as e:
        fail(f"{path}: malformed JSON at line {e.lineno}, column {e.colno}: {e.msg}")
    except OSError as e:
        fail(f"{path}: {e.strerror or e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value is {type(doc).__name__}, expected an object")
    if doc.get("schema") != "peachy-bench/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, expected 'peachy-bench/1'")
    rows = {}
    for row in doc.get("benchmarks", []):
        if not isinstance(row, dict) or "name" not in row or "shape" not in row:
            fail(f"{path}: benchmark row missing name/shape: {row!r}")
        rows[(row["name"], row["shape"])] = row
    if not rows:
        fail(f"{path}: no benchmark rows")
    return doc, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("fresh", help="freshly produced JSON")
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="allowed geomean slowdown, fractional "
                         "(default 0.02 = 2%%)")
    ap.add_argument("--row-tolerance", type=float, default=0.25,
                    help="per-row slowdown that triggers a warning, "
                         "fractional (default 0.25); informational only")
    ap.add_argument("--filter", default=None,
                    help="only compare rows whose name matches this "
                         "regex (e.g. 'coll_.*_p4' for one rank count "
                         "of the collective sweep)")
    args = ap.parse_args()

    base_doc, base = load(args.baseline)
    fresh_doc, fresh = load(args.fresh)

    if base_doc.get("tiny") != fresh_doc.get("tiny"):
        fail("baseline and fresh runs used different sizes "
             f"(tiny={base_doc.get('tiny')} vs {fresh_doc.get('tiny')}); "
             "ratios would be meaningless")
    if base_doc.get("isa") != fresh_doc.get("isa"):
        print(f"warning: ISA differs (baseline={base_doc.get('isa')}, "
              f"fresh={fresh_doc.get('isa')}); comparing anyway",
              file=sys.stderr)

    common = sorted(base.keys() & fresh.keys())
    if args.filter is not None:
        try:
            pattern = re.compile(args.filter)
        except re.error as e:
            fail(f"--filter {args.filter!r} is not a valid regex: {e}")
        common = [key for key in common if pattern.search(key[0])]
        if not common:
            fail(f"no common rows match --filter {args.filter!r}")
    if not common:
        fail("no common (name, shape) rows between the two runs")
    for key in sorted(base.keys() - fresh.keys()):
        print(f"warning: baseline-only row skipped: {key}", file=sys.stderr)
    for key in sorted(fresh.keys() - base.keys()):
        print(f"warning: fresh-only row skipped: {key}", file=sys.stderr)

    log_sum = 0.0
    worst = (1.0, None)
    print(f"{'benchmark':<28} {'base ns':>12} {'fresh ns':>12} {'ratio':>7}")
    for key in common:
        b, f = base[key].get("kernel_ns"), fresh[key].get("kernel_ns")
        if not isinstance(b, (int, float)) or not isinstance(f, (int, float)) \
                or b <= 0 or f <= 0:
            fail(f"missing or non-positive kernel_ns for {key}")
        ratio = f / b
        log_sum += math.log(ratio)
        if ratio > worst[0]:
            worst = (ratio, key)
        flag = ""
        if ratio > 1.0 + args.row_tolerance:
            flag = "  <-- slow (informational)"
        print(f"{key[0]:<28} {b:>12.0f} {f:>12.0f} {ratio:>7.3f}{flag}")

    geomean = math.exp(log_sum / len(common))
    limit = 1.0 + args.tolerance
    print(f"\ngeomean ratio over {len(common)} rows: {geomean:.4f} "
          f"(limit {limit:.4f})")
    if worst[1] is not None:
        print(f"worst row: {worst[1][0]} at {worst[0]:.3f}x")

    if geomean > limit:
        print(f"FAIL: geomean slowdown {100 * (geomean - 1):.1f}% exceeds "
              f"{100 * args.tolerance:.1f}% tolerance", file=sys.stderr)
        return 1
    print("PASS: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
