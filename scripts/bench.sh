#!/usr/bin/env bash
# Kernel benchmark runner — builds the Release bench tree and runs the
# bench_kernels harness at full sizes, writing BENCH_kernels.json at the
# repo root (the committed perf-regression baseline).
#
# Usage: scripts/bench.sh [extra bench_kernels args...]
#   e.g. scripts/bench.sh --tiny            # smoke sizes
#        scripts/bench.sh --out /tmp/b.json # alternate output path

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
DIR="$ROOT/build-bench"

cmake -B "$DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
cmake --build "$DIR" --target bench_kernels -j "$JOBS"

if [ "$#" -gt 0 ]; then
  exec "$DIR/bench/bench_kernels" "$@"
fi
exec "$DIR/bench/bench_kernels" --out "$ROOT/BENCH_kernels.json"
