#!/usr/bin/env bash
# Kernel benchmark runner — builds the Release bench tree, runs the
# bench_kernels harness at full sizes, and *compares* the fresh numbers
# against the committed baseline (BENCH_kernels.json at the repo root)
# with a tolerance band, failing on regression.
#
# Usage: scripts/bench.sh                   # run + compare vs baseline
#        scripts/bench.sh --update          # refresh the committed baseline
#        scripts/bench.sh --tolerance 0.05  # widen the geomean band to 5%
#        scripts/bench.sh -- [args...]      # raw passthrough to bench_kernels
#   e.g. scripts/bench.sh -- --tiny         # smoke sizes, no comparison

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
DIR="$ROOT/build-bench"
BASELINE="$ROOT/BENCH_kernels.json"

UPDATE=0
TOLERANCE=0.02
PASSTHROUGH=()
while [ "$#" -gt 0 ]; do
  case "$1" in
    --update) UPDATE=1; shift ;;
    --tolerance) TOLERANCE="$2"; shift 2 ;;
    --) shift; PASSTHROUGH=("$@"); break ;;
    *) echo "unknown arg '$1' (use -- to pass args to bench_kernels)" >&2; exit 2 ;;
  esac
done

cmake -B "$DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
cmake --build "$DIR" --target bench_kernels -j "$JOBS"

if [ "${#PASSTHROUGH[@]}" -gt 0 ]; then
  exec "$DIR/bench/bench_kernels" "${PASSTHROUGH[@]}"
fi

if [ "$UPDATE" -eq 1 ]; then
  "$DIR/bench/bench_kernels" --out "$BASELINE"
  echo "baseline refreshed: $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "no committed baseline at $BASELINE — run 'scripts/bench.sh --update' first" >&2
  exit 2
fi

FRESH="$DIR/bench/BENCH_kernels_fresh.json"
"$DIR/bench/bench_kernels" --out "$FRESH"
python3 "$ROOT/scripts/bench_compare.py" "$BASELINE" "$FRESH" --tolerance "$TOLERANCE"
