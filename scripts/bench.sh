#!/usr/bin/env bash
# Benchmark runner — builds the Release bench tree, runs the JSON
# regression harnesses at full sizes, and *compares* the fresh numbers
# against the committed baselines at the repo root with a tolerance
# band, failing on regression.  Two suites:
#
#   kernels     bench_kernels    vs BENCH_kernels.json     (2% band)
#   substrates  bench_substrates vs BENCH_substrates.json  (10% band)
#
# The kernels suite is CPU-bound and quiet; the substrates suite times
# multi-threaded mini-MPI runs, so individual rows jitter — its wider
# default band still gates real regressions because the compared
# quantity is the geomean over all rows, which is stable.
#
# Usage: scripts/bench.sh                      # both suites: run + compare
#        scripts/bench.sh --suite substrates   # one suite only
#        scripts/bench.sh --update             # refresh the committed baseline(s)
#        scripts/bench.sh --tolerance 0.05     # override the band for all suites
#        scripts/bench.sh -- [args...]         # raw passthrough to the harness(es)
#   e.g. scripts/bench.sh --suite kernels -- --tiny   # smoke sizes, no comparison

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
DIR="$ROOT/build-bench"

SUITE=all
UPDATE=0
TOLERANCE=""
PASSTHROUGH=()
HAVE_PASSTHROUGH=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --suite) SUITE="$2"; shift 2 ;;
    --update) UPDATE=1; shift ;;
    --tolerance) TOLERANCE="$2"; shift 2 ;;
    --) shift; PASSTHROUGH=("$@"); HAVE_PASSTHROUGH=1; break ;;
    *) echo "unknown arg '$1' (use -- to pass args to the harness)" >&2; exit 2 ;;
  esac
done

case "$SUITE" in
  kernels) SUITES=(kernels) ;;
  substrates) SUITES=(substrates) ;;
  all) SUITES=(kernels substrates) ;;
  *) echo "unknown suite '$SUITE' (expected: kernels, substrates, all)" >&2; exit 2 ;;
esac

cmake -B "$DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
for s in "${SUITES[@]}"; do
  cmake --build "$DIR" --target "bench_$s" -j "$JOBS"
done

default_tolerance() {
  case "$1" in
    kernels) echo 0.02 ;;
    substrates) echo 0.10 ;;
  esac
}

status=0
for s in "${SUITES[@]}"; do
  BIN="$DIR/bench/bench_$s"
  BASELINE="$ROOT/BENCH_$s.json"

  # The substrates harness sweeps collective algorithms against the
  # committed tuning profile; run and baseline must use the same profile
  # or the tuned-vs-default delta would read as a regression.
  EXTRA=()
  if [ "$s" = substrates ] && [ -f "$ROOT/TUNE_profile.json" ]; then
    EXTRA=(--profile "$ROOT/TUNE_profile.json")
  fi

  if [ "$HAVE_PASSTHROUGH" -eq 1 ]; then
    echo "==== [$s] passthrough ===="
    "$BIN" "${PASSTHROUGH[@]}" || status=$?
    continue
  fi

  if [ "$UPDATE" -eq 1 ]; then
    "$BIN" --out "$BASELINE" "${EXTRA[@]}"
    echo "baseline refreshed: $BASELINE"
    continue
  fi

  if [ ! -f "$BASELINE" ]; then
    echo "no committed baseline at $BASELINE — run 'scripts/bench.sh --update' first" >&2
    exit 2
  fi

  FRESH="$DIR/bench/BENCH_${s}_fresh.json"
  "$BIN" --out "$FRESH" "${EXTRA[@]}"
  TOL="${TOLERANCE:-$(default_tolerance "$s")}"
  echo "==== [$s] compare (tolerance $TOL) ===="
  python3 "$ROOT/scripts/bench_compare.py" "$BASELINE" "$FRESH" --tolerance "$TOL" || status=$?
done
exit "$status"
