#!/usr/bin/env bash
# Sanitizer + analysis matrix — the CI entry point for correctness builds.
#
# Runs the full test suite under three configurations, each in its own
# build tree (the options are mutually exclusive per tree):
#
#   asan-ubsan — AddressSanitizer + UndefinedBehaviorSanitizer
#                (memory errors, UB in the numeric kernels)
#   tsan       — ThreadSanitizer
#                (physical data races across the thread pool / mini-MPI)
#   analysis   — -DPEACHY_ANALYSIS=ON grading build: every mpi::run()
#                executes at CheckLevel::full, proving the checker raises
#                zero false positives on the whole suite
#
# Usage: scripts/check.sh [config ...]     (default: all three)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"
  shift
  local dir="$ROOT/build-check-$name"
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_EXAMPLES=OFF \
    "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "==== [$name] OK ===="
}

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(asan-ubsan tsan analysis)
fi

for cfg in "${configs[@]}"; do
  case "$cfg" in
    asan-ubsan) run_config asan-ubsan -DPEACHY_SANITIZE=ON ;;
    tsan)       run_config tsan -DPEACHY_TSAN=ON ;;
    analysis)   run_config analysis -DPEACHY_ANALYSIS=ON ;;
    *) echo "unknown config '$cfg' (expected: asan-ubsan, tsan, analysis)" >&2; exit 2 ;;
  esac
done

echo "all configurations passed"
