#!/usr/bin/env bash
# Sanitizer + analysis matrix — the CI entry point for correctness builds.
#
# Runs the full test suite under three configurations, each in its own
# build tree (the options are mutually exclusive per tree):
#
#   asan-ubsan — AddressSanitizer + UndefinedBehaviorSanitizer
#                (memory errors, UB in the numeric kernels)
#   tsan       — ThreadSanitizer
#                (physical data races across the thread pool / mini-MPI)
#   analysis   — -DPEACHY_ANALYSIS=ON grading build: every mpi::run()
#                executes at CheckLevel::full, proving the checker raises
#                zero false positives on the whole suite
#
# plus two perf-infrastructure smokes:
#
#   bench-smoke — Release build of the bench tree only; runs bench_kernels
#                 at tiny sizes and validates the emitted JSON against the
#                 "peachy-bench/1" schema (wiring check, not a perf gate)
#   bench-substrates-smoke
#               — same for bench_substrates (legacy-twin vs pooled
#                 transport), then a full-size run gated against the
#                 committed BENCH_substrates.json via bench_compare.py
#                 at a 15% geomean band — the pooled-transport perf
#                 contract
#   obs-smoke   — Release build of examples + bench; runs kmeans_cluster
#                 under PEACHY_TRACE and validates the "peachy-trace/1"
#                 document (>=4 substrate categories, well-formed per-thread
#                 span nesting), then runs bench_kernels with tracing
#                 *disabled* and gates it at <2% geomean slowdown against
#                 the committed baseline — the obs overhead contract
#   faults-smoke
#               — Release build of tests + examples + bench; runs the
#                 fault-injection test matrix (test_faults), proves seeded
#                 replay determinism (fault_demo --print-events twice,
#                 fired-event logs must be byte-identical), runs both
#                 fault_demo recovery modes end to end, then runs
#                 bench_kernels with faults *disabled* and gates it at
#                 <2% geomean slowdown against the committed baseline —
#                 the zero-cost-when-off contract
#   lint-smoke  — Release build of peachy-lint + test_lint; runs the rule
#                 engine tests, requires the fixture corpus to produce
#                 findings (the rules demonstrably fire), requires *zero*
#                 findings over src/ + examples/ (the clean-tree gate),
#                 and validates the peachy-lint/1 JSON document
#
# Usage: scripts/check.sh [config ...]     (default: all eight)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"
  shift
  local dir="$ROOT/build-check-$name"
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_EXAMPLES=OFF \
    "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "==== [$name] OK ===="
}

run_bench_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [bench-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [bench-smoke] build ===="
  cmake --build "$dir" --target bench_kernels -j "$JOBS"
  echo "==== [bench-smoke] run ===="
  local json="$dir/bench/BENCH_kernels_smoke.json"
  "$dir/bench/bench_kernels" --tiny --out "$json"
  echo "==== [bench-smoke] validate JSON ===="
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1", doc.get("schema")
assert doc["harness"] == "bench_kernels"
assert isinstance(doc["isa"], str) and doc["isa"]
assert isinstance(doc["benchmarks"], list) and doc["benchmarks"]
for row in doc["benchmarks"]:
    for key in ("name", "shape", "items", "scalar_ns", "kernel_ns", "speedup"):
        assert key in row, (row, key)
    assert row["scalar_ns"] > 0 and row["kernel_ns"] > 0
print(f"schema OK: {len(doc['benchmarks'])} benchmarks, isa={doc['isa']}")
EOF
  echo "==== [bench-smoke] OK ===="
}

run_bench_substrates_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [bench-substrates-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [bench-substrates-smoke] build ===="
  cmake --build "$dir" --target bench_substrates -j "$JOBS"
  echo "==== [bench-substrates-smoke] run (tiny) ===="
  local json="$dir/bench/BENCH_substrates_smoke.json"
  "$dir/bench/bench_substrates" --tiny --out "$json"
  echo "==== [bench-substrates-smoke] validate JSON ===="
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1", doc.get("schema")
assert doc["harness"] == "bench_substrates"
assert isinstance(doc["isa"], str) and doc["isa"]
assert isinstance(doc["benchmarks"], list) and doc["benchmarks"]
names = {row["name"] for row in doc["benchmarks"]}
for want in ("allreduce", "allgather", "alltoall"):
    for p in (2, 4, 8):
        assert f"{want}_p{p}" in names, (want, p, names)
assert any(n.startswith("mr_shuffle") for n in names), names
for row in doc["benchmarks"]:
    for key in ("name", "shape", "items", "scalar_ns", "kernel_ns", "speedup"):
        assert key in row, (row, key)
    assert row["scalar_ns"] > 0 and row["kernel_ns"] > 0
print(f"schema OK: {len(doc['benchmarks'])} benchmarks")
EOF
  echo "==== [bench-substrates-smoke] full-size perf gate ===="
  local fresh="$dir/bench/BENCH_substrates_fresh.json"
  "$dir/bench/bench_substrates" --out "$fresh"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_substrates.json" "$fresh" --tolerance 0.15
  echo "==== [bench-substrates-smoke] OK ===="
}

run_obs_smoke() {
  local dir="$ROOT/build-check-obs-smoke"
  echo "==== [obs-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=ON
  echo "==== [obs-smoke] build ===="
  cmake --build "$dir" --target kmeans_cluster bench_kernels -j "$JOBS"
  echo "==== [obs-smoke] trace run ===="
  local trace="$dir/trace.json"
  PEACHY_TRACE="$trace" "$dir/examples/kmeans_cluster" --ppm='' >/dev/null
  echo "==== [obs-smoke] validate trace ===="
  python3 - "$trace" <<'EOF'
import collections, json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-trace/1", doc.get("schema")
events = doc["traceEvents"]
assert events, "empty traceEvents"
cats = {e["cat"] for e in events if e["ph"] == "X"}
# The kmeans example drives the pool, parallel_for, mini-MPI, and
# MapReduce substrates at minimum.
assert len(cats) >= 4, f"expected spans from >=4 substrates, got {cats}"
# Per-thread span nesting must be well formed: sorted by start (ties:
# longer first), every span either nests inside or starts after the
# innermost open span on its thread.
by_tid = collections.defaultdict(list)
for e in events:
    if e["ph"] == "X":
        by_tid[e["tid"]].append((e["ts"], -e["dur"], e))
for tid, spans in by_tid.items():
    spans.sort(key=lambda t: (t[0], t[1]))
    stack = []
    for ts, negdur, e in spans:
        end = ts + e["dur"]
        while stack and ts >= stack[-1]:
            stack.pop()
        assert not stack or end <= stack[-1] + 1e-6, \
            f"tid {tid}: span {e['name']} overlaps its parent"
        stack.append(end)
assert doc["counters"], "no counters recorded"
print(f"trace OK: {len(events)} events, substrates={sorted(cats)}, "
      f"{len(doc['counters'])} counters")
EOF
  echo "==== [obs-smoke] disabled-mode overhead gate ===="
  local fresh="$dir/bench/BENCH_kernels_obs.json"
  "$dir/bench/bench_kernels" --repeat 5 --out "$fresh"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_kernels.json" "$fresh" --tolerance 0.02
  echo "==== [obs-smoke] OK ===="
}

run_faults_smoke() {
  local dir="$ROOT/build-check-faults-smoke"
  echo "==== [faults-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=ON
  echo "==== [faults-smoke] build ===="
  cmake --build "$dir" --target test_faults fault_demo bench_kernels -j "$JOBS"
  echo "==== [faults-smoke] fault-injection test matrix ===="
  "$dir/tests/test_faults"
  echo "==== [faults-smoke] seeded replay determinism ===="
  local run_a="$dir/fault_events_a.txt" run_b="$dir/fault_events_b.txt"
  "$dir/examples/fault_demo" --mode=traffic --seed=7 --print-events \
    | sed -n '/^fault events:$/,/^end events$/p' > "$run_a"
  "$dir/examples/fault_demo" --mode=traffic --seed=7 --print-events \
    | sed -n '/^fault events:$/,/^end events$/p' > "$run_b"
  # The extracted block must be non-trivial (markers + at least one event)
  # and byte-identical across the two runs.
  [ "$(wc -l < "$run_a")" -ge 3 ] || { echo "replay check: no fault events fired" >&2; exit 1; }
  diff -u "$run_a" "$run_b"
  echo "replay OK: $(($(wc -l < "$run_a") - 2)) events, logs byte-identical"
  echo "==== [faults-smoke] recovery end-to-end (kmeans) ===="
  "$dir/examples/fault_demo" --mode=kmeans
  echo "==== [faults-smoke] disabled-mode overhead gate ===="
  local fresh="$dir/bench/BENCH_kernels_faults.json"
  "$dir/bench/bench_kernels" --repeat 5 --out "$fresh"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_kernels.json" "$fresh" --tolerance 0.02
  echo "==== [faults-smoke] OK ===="
}

run_lint_smoke() {
  local dir="$ROOT/build-check-lint-smoke"
  echo "==== [lint-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [lint-smoke] build ===="
  cmake --build "$dir" --target peachy-lint test_lint -j "$JOBS"
  echo "==== [lint-smoke] rule-engine tests ===="
  "$dir/tests/test_lint"
  echo "==== [lint-smoke] fixture corpus must produce findings ===="
  if "$dir/tools/peachy-lint" --quiet "$ROOT/tests/lint_fixtures" >/dev/null; then
    echo "lint-smoke: fixture corpus produced no findings — the rules are dead" >&2
    exit 1
  fi
  echo "==== [lint-smoke] zero-findings gate on src/ + examples/ ===="
  "$dir/tools/peachy-lint" "$ROOT/src" "$ROOT/examples"
  echo "==== [lint-smoke] validate peachy-lint/1 JSON ===="
  local lint_json="$dir/lint_clean.json"
  "$dir/tools/peachy-lint" --json "$ROOT/src" "$ROOT/examples" > "$lint_json"
  python3 - "$lint_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-lint/1", doc.get("schema")
assert doc["findings"] == [], doc["findings"]
assert doc["files_scanned"] > 50, doc["files_scanned"]
print(f"lint JSON OK: {doc['files_scanned']} files scanned, clean")
EOF
  echo "==== [lint-smoke] OK ===="
}

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(asan-ubsan tsan analysis bench-smoke bench-substrates-smoke obs-smoke faults-smoke lint-smoke)
fi

for cfg in "${configs[@]}"; do
  case "$cfg" in
    asan-ubsan)  run_config asan-ubsan -DPEACHY_SANITIZE=ON ;;
    tsan)        run_config tsan -DPEACHY_TSAN=ON ;;
    analysis)    run_config analysis -DPEACHY_ANALYSIS=ON ;;
    bench-smoke) run_bench_smoke ;;
    bench-substrates-smoke) run_bench_substrates_smoke ;;
    obs-smoke)   run_obs_smoke ;;
    faults-smoke) run_faults_smoke ;;
    lint-smoke)  run_lint_smoke ;;
    *) echo "unknown config '$cfg' (expected: asan-ubsan, tsan, analysis, bench-smoke, bench-substrates-smoke, obs-smoke, faults-smoke, lint-smoke)" >&2; exit 2 ;;
  esac
done

echo "all configurations passed"
