#!/usr/bin/env bash
# Sanitizer + analysis matrix — the CI entry point for correctness builds.
#
# Runs the full test suite under three configurations, each in its own
# build tree (the options are mutually exclusive per tree):
#
#   asan-ubsan — AddressSanitizer + UndefinedBehaviorSanitizer
#                (memory errors, UB in the numeric kernels)
#   tsan       — ThreadSanitizer
#                (physical data races across the thread pool / mini-MPI)
#   analysis   — -DPEACHY_ANALYSIS=ON grading build: every mpi::run()
#                executes at CheckLevel::full, proving the checker raises
#                zero false positives on the whole suite
#
# plus two perf-infrastructure smokes:
#
#   bench-smoke — Release build of the bench tree only; runs bench_kernels
#                 at tiny sizes and validates the emitted JSON against the
#                 "peachy-bench/1" schema (wiring check, not a perf gate)
#   bench-substrates-smoke
#               — same for bench_substrates (legacy-twin vs pooled
#                 transport), then a full-size run gated against the
#                 committed BENCH_substrates.json via bench_compare.py
#                 at a 15% geomean band — the pooled-transport perf
#                 contract
#   obs-smoke   — Release build of examples + bench; runs kmeans_cluster
#                 under PEACHY_TRACE and validates the "peachy-trace/1"
#                 document (>=4 substrate categories, well-formed per-thread
#                 span nesting), then runs bench_kernels with tracing
#                 *disabled* and gates it at <2% geomean slowdown against
#                 the committed baseline — the obs overhead contract
#   faults-smoke
#               — Release build of tests + examples + bench; runs the
#                 fault-injection test matrix (test_faults), proves seeded
#                 replay determinism (fault_demo --print-events twice,
#                 fired-event logs must be byte-identical), runs both
#                 fault_demo recovery modes end to end, then runs
#                 bench_kernels with faults *disabled* and gates it at
#                 <2% geomean slowdown against the committed baseline —
#                 the zero-cost-when-off contract
#   transport-smoke
#               — Release tests + examples tree; runs the cross-backend
#                 conformance suite (test_transport) and the shm-ring
#                 stress suite (test_transport_stress: wraparound +
#                 spill exhaustion under concurrent posters, crashed
#                 producer mid-slot), forces the full mpi/faults test
#                 matrix onto the shm and socket wires via
#                 PEACHY_TRANSPORT, re-runs both suites under ASan, and
#                 drives the genuinely multi-process fault demo (a real
#                 SIGKILL of a rank process over each wire transport,
#                 plus a peachy-launch end-to-end run)
#   transport-bench-smoke
#               — Release bench tree; schema-validates the committed
#                 BENCH_transport.json baseline, runs bench_transport at
#                 tiny sizes over all three backends (wiring check),
#                 then a full-size run gated on the *inproc* rows at <2%
#                 geomean regression vs the committed baseline — the
#                 wire fast paths must not tax the in-process backend
#   chaos-smoke — chaos-hardened wires (DESIGN.md §17): the conformance
#                 suite stays green under a seeded wire-fault plan
#                 (Release + ASan), fault_demo survives corruption +
#                 drops + a real SIGKILL over both wires with durable-
#                 checkpoint restore, a wedged (SIGSTOPped) rank is
#                 detected by the heartbeat layer, the seeded wire plan
#                 replays byte-identically, and the injection-disabled
#                 CRC+heartbeat cost gates at <2% geomean on
#                 bench_transport vs the committed baseline
#   lint-smoke  — Release build of peachy-lint + test_lint; runs the rule
#                 engine tests, requires the fixture corpus to produce
#                 findings (the rules demonstrably fire), requires *zero*
#                 findings over src/ + examples/ (the clean-tree gate),
#                 and validates the peachy-lint/1 JSON document
#   tune-smoke  — Release bench tree; runs a tiny peachy-tune session,
#                 validates the emitted peachy-tune/1 profile schema,
#                 reloads the profile through the PEACHY_TUNE startup
#                 path (no loader warnings allowed), then gates the
#                 *no-profile* default path at <2% geomean slowdown vs
#                 the committed kernel baseline — the tuning substrate
#                 must cost nothing when unused
#
# plus one opt-in (not in the default matrix; full-size sweeps):
#
#   tune-gate   — the committed TUNE_profile.json must deliver >=1.2x
#                 geomean over compiled-in defaults on the collective
#                 sweep at two or more rank counts
#
# Usage: scripts/check.sh [config ...]     (default: all twelve)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"
  shift
  local dir="$ROOT/build-check-$name"
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_EXAMPLES=OFF \
    "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "==== [$name] OK ===="
}

run_bench_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [bench-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [bench-smoke] build ===="
  cmake --build "$dir" --target bench_kernels -j "$JOBS"
  echo "==== [bench-smoke] run ===="
  local json="$dir/bench/BENCH_kernels_smoke.json"
  "$dir/bench/bench_kernels" --tiny --out "$json"
  echo "==== [bench-smoke] validate JSON ===="
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1", doc.get("schema")
assert doc["harness"] == "bench_kernels"
assert isinstance(doc["isa"], str) and doc["isa"]
assert isinstance(doc["benchmarks"], list) and doc["benchmarks"]
for row in doc["benchmarks"]:
    for key in ("name", "shape", "items", "scalar_ns", "kernel_ns", "speedup"):
        assert key in row, (row, key)
    assert row["scalar_ns"] > 0 and row["kernel_ns"] > 0
print(f"schema OK: {len(doc['benchmarks'])} benchmarks, isa={doc['isa']}")
EOF
  echo "==== [bench-smoke] OK ===="
}

run_bench_substrates_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [bench-substrates-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [bench-substrates-smoke] build ===="
  cmake --build "$dir" --target bench_substrates -j "$JOBS"
  echo "==== [bench-substrates-smoke] run (tiny) ===="
  local json="$dir/bench/BENCH_substrates_smoke.json"
  "$dir/bench/bench_substrates" --tiny --out "$json"
  echo "==== [bench-substrates-smoke] validate JSON ===="
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1", doc.get("schema")
assert doc["harness"] == "bench_substrates"
assert isinstance(doc["isa"], str) and doc["isa"]
assert isinstance(doc["benchmarks"], list) and doc["benchmarks"]
names = {row["name"] for row in doc["benchmarks"]}
for want in ("allreduce", "allgather", "alltoall"):
    for p in (2, 4, 8):
        assert f"{want}_p{p}" in names, (want, p, names)
assert any(n.startswith("mr_shuffle") for n in names), names
for row in doc["benchmarks"]:
    for key in ("name", "shape", "items", "scalar_ns", "kernel_ns", "speedup"):
        assert key in row, (row, key)
    assert row["scalar_ns"] > 0 and row["kernel_ns"] > 0
print(f"schema OK: {len(doc['benchmarks'])} benchmarks")
EOF
  echo "==== [bench-substrates-smoke] full-size perf gate ===="
  local fresh="$dir/bench/BENCH_substrates_fresh.json"
  # Same tuning profile as the committed baseline, so the collective
  # sweep compares tuned-vs-tuned (see scripts/bench.sh).
  local profile_args=()
  if [ -f "$ROOT/TUNE_profile.json" ]; then
    profile_args=(--profile "$ROOT/TUNE_profile.json")
  fi
  "$dir/bench/bench_substrates" --out "$fresh" "${profile_args[@]}"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_substrates.json" "$fresh" --tolerance 0.15
  echo "==== [bench-substrates-smoke] OK ===="
}

run_tune_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [tune-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [tune-smoke] build ===="
  cmake --build "$dir" --target peachy-tune bench_kernels -j "$JOBS"
  echo "==== [tune-smoke] tiny tuning session ===="
  local profile="$dir/tune_quick.json"
  "$dir/tools/peachy-tune" --quick --out "$profile"
  echo "==== [tune-smoke] validate peachy-tune/1 JSON ===="
  python3 - "$profile" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-tune/1", doc.get("schema")
assert isinstance(doc["isa"], str) and doc["isa"]
t = doc["tunables"]
for key in ("parallel_for_grain", "gemm_mr", "gemm_nr",
            "distance_block_rows", "pool_max_parked"):
    assert key in t and isinstance(t[key], int) and t[key] >= 0, (key, t)
assert (t["gemm_mr"], t["gemm_nr"]) in {(4, 8), (2, 8), (4, 4), (8, 4)}, t
ops = {"broadcast", "reduce", "allreduce", "allgather"}
algos = {"auto", "linear", "binomial", "ring", "recdouble"}
for rule in doc.get("collectives", []):
    assert rule["op"] in ops and rule["algo"] in algos, rule
print(f"profile OK: {len(doc.get('collectives', []))} collective rules, "
      f"isa={doc['isa']}")
EOF
  echo "==== [tune-smoke] reload through PEACHY_TUNE ===="
  # The startup loader must accept its own output silently; any named
  # fallback warning on stderr fails the round-trip.
  local reload_err="$dir/tune_reload_err.txt"
  PEACHY_TUNE="$profile" "$dir/bench/bench_kernels" --tiny \
    --out "$dir/BENCH_kernels_tunesmoke.json" 2> "$reload_err"
  if grep -q "peachy-tune" "$reload_err"; then
    echo "tune-smoke: loader warned on its own emitted profile:" >&2
    cat "$reload_err" >&2
    exit 1
  fi
  echo "reload OK: no loader warnings"
  echo "==== [tune-smoke] no-profile default-path overhead gate ===="
  local fresh="$dir/bench/BENCH_kernels_tune.json"
  "$dir/bench/bench_kernels" --repeat 5 --out "$fresh"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_kernels.json" "$fresh" --tolerance 0.02
  echo "==== [tune-smoke] OK ===="
}

run_tune_gate() {
  # Acceptance gate for the committed tuning profile (opt-in: full-size
  # collective sweeps, minutes of runtime): the profile must deliver a
  # >=1.2x geomean speedup over the compiled-in defaults on the
  # collective-algorithm sweep at two or more rank counts.
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [tune-gate] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [tune-gate] build ===="
  cmake --build "$dir" --target bench_substrates -j "$JOBS"
  echo "==== [tune-gate] sweep: compiled-in defaults ===="
  local base="$dir/bench/BENCH_substrates_default.json"
  "$dir/bench/bench_substrates" --out "$base"
  echo "==== [tune-gate] sweep: committed profile ===="
  local tuned="$dir/bench/BENCH_substrates_tuned.json"
  "$dir/bench/bench_substrates" --out "$tuned" --profile "$ROOT/TUNE_profile.json"
  echo "==== [tune-gate] >=1.2x geomean at >=2 rank counts ===="
  local wins=0
  for p in 2 4 8; do
    # tolerance -0.167: fresh/base geomean must be <= 1/1.2 (a speedup
    # gate, not a regression band).
    if python3 "$ROOT/scripts/bench_compare.py" "$base" "$tuned" \
         --filter "(coll|mix)_.*_p$p\$" --tolerance -0.167; then
      echo "[tune-gate] p=$p: tuned >=1.2x"
      wins=$((wins + 1))
    else
      echo "[tune-gate] p=$p: below 1.2x (allowed at one rank count)"
    fi
  done
  if [ "$wins" -lt 2 ]; then
    echo "tune-gate: profile reached 1.2x at only $wins rank count(s), need 2" >&2
    exit 1
  fi
  echo "==== [tune-gate] OK ($wins/3 rank counts) ===="
}

run_obs_smoke() {
  local dir="$ROOT/build-check-obs-smoke"
  echo "==== [obs-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=ON
  echo "==== [obs-smoke] build ===="
  cmake --build "$dir" --target kmeans_cluster bench_kernels -j "$JOBS"
  echo "==== [obs-smoke] trace run ===="
  local trace="$dir/trace.json"
  PEACHY_TRACE="$trace" "$dir/examples/kmeans_cluster" --ppm='' >/dev/null
  echo "==== [obs-smoke] validate trace ===="
  python3 - "$trace" <<'EOF'
import collections, json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-trace/1", doc.get("schema")
events = doc["traceEvents"]
assert events, "empty traceEvents"
cats = {e["cat"] for e in events if e["ph"] == "X"}
# The kmeans example drives the pool, parallel_for, mini-MPI, and
# MapReduce substrates at minimum.
assert len(cats) >= 4, f"expected spans from >=4 substrates, got {cats}"
# Per-thread span nesting must be well formed: sorted by start (ties:
# longer first), every span either nests inside or starts after the
# innermost open span on its thread.
by_tid = collections.defaultdict(list)
for e in events:
    if e["ph"] == "X":
        by_tid[e["tid"]].append((e["ts"], -e["dur"], e))
for tid, spans in by_tid.items():
    spans.sort(key=lambda t: (t[0], t[1]))
    stack = []
    for ts, negdur, e in spans:
        end = ts + e["dur"]
        while stack and ts >= stack[-1]:
            stack.pop()
        assert not stack or end <= stack[-1] + 1e-6, \
            f"tid {tid}: span {e['name']} overlaps its parent"
        stack.append(end)
assert doc["counters"], "no counters recorded"
print(f"trace OK: {len(events)} events, substrates={sorted(cats)}, "
      f"{len(doc['counters'])} counters")
EOF
  echo "==== [obs-smoke] disabled-mode overhead gate ===="
  local fresh="$dir/bench/BENCH_kernels_obs.json"
  "$dir/bench/bench_kernels" --repeat 5 --out "$fresh"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_kernels.json" "$fresh" --tolerance 0.02
  echo "==== [obs-smoke] OK ===="
}

run_faults_smoke() {
  local dir="$ROOT/build-check-faults-smoke"
  echo "==== [faults-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=ON
  echo "==== [faults-smoke] build ===="
  cmake --build "$dir" --target test_faults fault_demo bench_kernels -j "$JOBS"
  echo "==== [faults-smoke] fault-injection test matrix ===="
  "$dir/tests/test_faults"
  echo "==== [faults-smoke] seeded replay determinism ===="
  local run_a="$dir/fault_events_a.txt" run_b="$dir/fault_events_b.txt"
  "$dir/examples/fault_demo" --mode=traffic --seed=7 --print-events \
    | sed -n '/^fault events:$/,/^end events$/p' > "$run_a"
  "$dir/examples/fault_demo" --mode=traffic --seed=7 --print-events \
    | sed -n '/^fault events:$/,/^end events$/p' > "$run_b"
  # The extracted block must be non-trivial (markers + at least one event)
  # and byte-identical across the two runs.
  [ "$(wc -l < "$run_a")" -ge 3 ] || { echo "replay check: no fault events fired" >&2; exit 1; }
  diff -u "$run_a" "$run_b"
  echo "replay OK: $(($(wc -l < "$run_a") - 2)) events, logs byte-identical"
  echo "==== [faults-smoke] recovery end-to-end (kmeans) ===="
  "$dir/examples/fault_demo" --mode=kmeans
  echo "==== [faults-smoke] disabled-mode overhead gate ===="
  local fresh="$dir/bench/BENCH_kernels_faults.json"
  "$dir/bench/bench_kernels" --repeat 5 --out "$fresh"
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_kernels.json" "$fresh" --tolerance 0.02
  echo "==== [faults-smoke] OK ===="
}

run_transport_smoke() {
  # The transport matrix: the cross-backend conformance suite, the full
  # mpi + faults test binaries forced onto each wire backend via
  # PEACHY_TRANSPORT, the conformance suite under ASan (the shm ring and
  # socket reassembly are the repo's only hand-rolled binary protocols),
  # and the genuinely multi-process fault demo — a real SIGKILL of a rank
  # process over each wire, recovered state verified bit-identical to the
  # same serial reference the in-process run is held to.
  local dir="$ROOT/build-check-transport-smoke"
  echo "==== [transport-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=ON
  echo "==== [transport-smoke] build ===="
  cmake --build "$dir" --target test_transport test_transport_stress test_mpi test_faults \
    fault_demo peachy-launch -j "$JOBS"
  echo "==== [transport-smoke] cross-backend conformance suite ===="
  "$dir/tests/test_transport"
  echo "==== [transport-smoke] shm ring stress suite (fast + locked) ===="
  "$dir/tests/test_transport_stress"
  echo "==== [transport-smoke] full mpi + faults matrix on each wire backend ===="
  for transport in shm socket; do
    echo "---- PEACHY_TRANSPORT=$transport ----"
    PEACHY_TRANSPORT="$transport" "$dir/tests/test_mpi"
    PEACHY_TRANSPORT="$transport" "$dir/tests/test_faults"
  done
  echo "==== [transport-smoke] conformance suite under ASan ===="
  local asan="$ROOT/build-check-transport-asan"
  cmake -B "$asan" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPEACHY_SANITIZE=ON \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=OFF
  cmake --build "$asan" --target test_transport test_transport_stress -j "$JOBS"
  "$asan/tests/test_transport"
  "$asan/tests/test_transport_stress"
  echo "==== [transport-smoke] multi-process SIGKILL recovery (shm + socket) ===="
  # The in-process run and each wire run verify against the same serial
  # reference (same seed), so three green verdicts == same final answer.
  "$dir/examples/fault_demo" --mode=traffic --seed=11
  for transport in shm socket; do
    "$dir/examples/fault_demo" --mode=traffic --seed=11 --transport="$transport"
  done
  echo "==== [transport-smoke] peachy-launch end-to-end ===="
  # Exit 1 is the expected verdict: one rank died to the injected SIGKILL
  # (that is the demo working); the launched survivors must all exit 0.
  local launch_out="$dir/launch_out.txt"
  if "$dir/tools/peachy-launch" -n 4 --transport=socket -- \
       "$dir/examples/fault_demo" --mode=traffic --transport=socket > "$launch_out" 2>&1; then
    echo "transport-smoke: peachy-launch reported all-clean, but one rank must die" >&2
    cat "$launch_out" >&2
    exit 1
  fi
  grep -q "killed by signal 9" "$launch_out"
  [ "$(grep -c "bit-identical to serial reference" "$launch_out")" -eq 3 ]
  echo "launch OK: 3/4 survivors recovered bit-identically"
  echo "==== [transport-smoke] OK ===="
}

run_transport_bench_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [transport-bench-smoke] validate committed baseline schema ===="
  python3 - "$ROOT/BENCH_transport.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1", doc.get("schema")
assert doc["harness"] == "bench_transport"
assert doc["tiny"] is False, "committed baseline must be a full-size run"
assert isinstance(doc["benchmarks"], list) and doc["benchmarks"]
names = {row["name"] for row in doc["benchmarks"]}
for backend in ("inproc", "shm", "socket"):
    assert f"pp_{backend}_8" in names, (backend, names)
    assert f"bw_{backend}_8" in names, (backend, names)
    assert f"coll_allreduce_{backend}_256" in names, (backend, names)
for row in doc["benchmarks"]:
    for key in ("name", "shape", "items", "scalar_ns", "kernel_ns", "speedup"):
        assert key in row, (row, key)
    assert row["scalar_ns"] > 0 and row["kernel_ns"] > 0
    if row["name"].startswith("bw_"):
        assert row.get("mb_s", 0) > 0, row
print(f"baseline schema OK: {len(doc['benchmarks'])} benchmarks, "
      f"all three backends present")
EOF
  echo "==== [transport-bench-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [transport-bench-smoke] build ===="
  cmake --build "$dir" --target bench_transport -j "$JOBS"
  echo "==== [transport-bench-smoke] tiny sweep on all three backends ===="
  local json="$dir/bench/BENCH_transport_smoke.json"
  "$dir/bench/bench_transport" --tiny --out "$json"
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1" and doc["harness"] == "bench_transport"
assert doc["tiny"] is True
backends = {n.split("_")[1] for n in (row["name"] for row in doc["benchmarks"])
            if n.startswith(("pp_", "bw_"))}
assert backends == {"inproc", "shm", "socket"}, backends
print(f"tiny sweep OK: {len(doc['benchmarks'])} benchmarks over {sorted(backends)}")
EOF
  echo "==== [transport-bench-smoke] inproc regression gate ===="
  # Full-size runs, gated on the inproc rows only: the wire fast paths
  # ride the same seam the in-process backend does, and must cost it
  # nothing.  (The shm/socket rows are tracked in EXPERIMENTS.md T-TRN-1,
  # not gated — wire timings on shared CI hosts are too noisy for 2%.)
  # The gate compares floor estimates, and on a busy 1-core host the
  # floor of a SINGLE sweep drifts ±10-20% per row on minutes timescales
  # (measured: no inproc row stays within ±2% across five back-to-back
  # best-of-9 sweeps, but the per-row min of any three consecutive
  # sweeps does).  So: three sweeps, per-row min-merge, then the 2%
  # geomean — the bench_kernels --repeat min-merge trick, applied across
  # whole runs because the drift here outlives any one run.  A real
  # regression shifts every sweep's floor and still trips the gate.
  local fresh="$dir/bench/BENCH_transport_fresh.json"
  for i in 1 2 3; do
    "$dir/bench/bench_transport" --out "$dir/bench/BENCH_transport_fresh.$i.json" --repeat 9
  done
  python3 - "$fresh" "$dir"/bench/BENCH_transport_fresh.[123].json <<'EOF'
import json, sys
out_path, paths = sys.argv[1], sys.argv[2:]
docs = [json.load(open(p)) for p in paths]
merged = docs[0]
for row in merged["benchmarks"]:
    for d in docs[1:]:
        other = next(r for r in d["benchmarks"] if r["name"] == row["name"])
        row["kernel_ns"] = min(row["kernel_ns"], other["kernel_ns"])
with open(out_path, "w") as f:
    json.dump(merged, f)
print(f"min-merged {len(paths)} sweeps -> {out_path}")
EOF
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_transport.json" "$fresh" --filter '_inproc' --tolerance 0.02
  echo "==== [transport-bench-smoke] OK ===="
}

run_chaos_smoke() {
  # Chaos-hardened wires (DESIGN.md §17).  Four gates: (1) the
  # cross-backend conformance suite must stay green while a seeded wire
  # plan delays frames under every test, in Release and under ASan;
  # (2) fault_demo must survive real chaos — frame corruption + drops +
  # one SIGKILL — over both wires and restore the dead rank's snapshot
  # from the durable checkpoint store, bit-identical to the serial
  # reference; (3) a delay-only plan must replay byte-identically
  # (drop/corrupt recovery points are timing-dependent; delay is the
  # determinism gate); (4) a wedged rank — SIGSTOPped, so the launcher
  # sees no exit — must be confirmed dead by the heartbeat layer alone.
  # Then the payoff contract: with no plan armed, the always-on header
  # CRC + heartbeat machinery must cost <2% geomean on bench_transport.
  local dir="$ROOT/build-check-transport-smoke"
  local plan='seed=11; wire_delay@prob=0.05,ns=200000'
  echo "==== [chaos-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=ON
  echo "==== [chaos-smoke] build ===="
  cmake --build "$dir" --target test_transport fault_demo peachy-launch -j "$JOBS"
  echo "==== [chaos-smoke] conformance under a seeded wire plan ===="
  PEACHY_FAULTS="$plan" "$dir/tests/test_transport"
  echo "==== [chaos-smoke] conformance under the plan, ASan ===="
  local asan="$ROOT/build-check-transport-asan"
  cmake -B "$asan" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPEACHY_SANITIZE=ON \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=OFF
  cmake --build "$asan" --target test_transport -j "$JOBS"
  PEACHY_FAULTS="$plan" "$asan/tests/test_transport"
  echo "==== [chaos-smoke] chaos survival + durable restore (shm + socket) ===="
  for transport in shm socket; do
    "$dir/examples/fault_demo" --mode=traffic --transport="$transport" \
      --chaos=full --durable --seed=11 --timeout-ms=1500
  done
  echo "==== [chaos-smoke] byte-identical replay of the seeded wire plan ===="
  local ev="$dir/chaos_events"
  rm -f "$ev".a.* "$ev".b.*
  "$dir/examples/fault_demo" --mode=traffic --transport=shm --chaos=delay \
    --seed=11 --events-out="$ev.a"
  "$dir/examples/fault_demo" --mode=traffic --transport=shm --chaos=delay \
    --seed=11 --events-out="$ev.b"
  local nrank=0 fired=0
  for a in "$ev".a.*; do
    diff -u "$a" "${a/.a./.b.}"
    nrank=$((nrank + 1))
    [ -s "$a" ] && fired=$((fired + 1))
  done
  [ "$fired" -ge 1 ] || { echo "chaos-smoke: no wire events fired" >&2; exit 1; }
  echo "replay OK: $nrank per-rank event logs byte-identical ($fired non-empty)"
  echo "==== [chaos-smoke] wedged-rank heartbeat detection (shm + socket) ===="
  # SIGSTOP, not SIGKILL: the launcher sees no exit, so only peer-to-peer
  # heartbeats can notice.  fault_demo expects exactly the wedged rank to
  # be confirmed dead and the survivors to recover bit-identically.
  for transport in shm socket; do
    "$dir/examples/fault_demo" --mode=traffic --transport="$transport" \
      --wedge-rank=2 --steps=20000 --seed=5
  done
  echo "==== [chaos-smoke] injection-disabled CRC+heartbeat overhead gate ===="
  local bdir="$ROOT/build-check-bench-smoke"
  cmake -B "$bdir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  cmake --build "$bdir" --target bench_transport -j "$JOBS"
  # Same three-sweep per-row min-merge as transport-bench-smoke: single
  # sweeps drift 10-20% per row on a busy host; the min of three does not.
  local fresh="$bdir/bench/BENCH_transport_chaos.json"
  for i in 1 2 3; do
    "$bdir/bench/bench_transport" --out "$bdir/bench/BENCH_transport_chaos.$i.json" --repeat 9
  done
  python3 - "$fresh" "$bdir"/bench/BENCH_transport_chaos.[123].json <<'EOF'
import json, sys
out_path, paths = sys.argv[1], sys.argv[2:]
docs = [json.load(open(p)) for p in paths]
merged = docs[0]
for row in merged["benchmarks"]:
    for d in docs[1:]:
        other = next(r for r in d["benchmarks"] if r["name"] == row["name"])
        row["kernel_ns"] = min(row["kernel_ns"], other["kernel_ns"])
with open(out_path, "w") as f:
    json.dump(merged, f)
print(f"min-merged {len(paths)} sweeps -> {out_path}")
EOF
  python3 "$ROOT/scripts/bench_compare.py" \
    "$ROOT/BENCH_transport.json" "$fresh" --tolerance 0.02
  echo "==== [chaos-smoke] OK ===="
}

run_lint_smoke() {
  local dir="$ROOT/build-check-lint-smoke"
  echo "==== [lint-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_TESTS=ON -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [lint-smoke] build ===="
  cmake --build "$dir" --target peachy-lint test_lint -j "$JOBS"
  echo "==== [lint-smoke] rule-engine tests ===="
  "$dir/tests/test_lint"
  echo "==== [lint-smoke] fixture corpus must produce findings ===="
  if "$dir/tools/peachy-lint" --quiet "$ROOT/tests/lint_fixtures" >/dev/null; then
    echo "lint-smoke: fixture corpus produced no findings — the rules are dead" >&2
    exit 1
  fi
  echo "==== [lint-smoke] zero-findings gate on src/ + examples/ ===="
  "$dir/tools/peachy-lint" "$ROOT/src" "$ROOT/examples"
  echo "==== [lint-smoke] validate peachy-lint/1 JSON ===="
  local lint_json="$dir/lint_clean.json"
  "$dir/tools/peachy-lint" --json "$ROOT/src" "$ROOT/examples" > "$lint_json"
  python3 - "$lint_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-lint/1", doc.get("schema")
assert doc["findings"] == [], doc["findings"]
assert doc["files_scanned"] > 50, doc["files_scanned"]
print(f"lint JSON OK: {doc['files_scanned']} files scanned, clean")
EOF
  echo "==== [lint-smoke] OK ===="
}

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(asan-ubsan tsan analysis bench-smoke bench-substrates-smoke obs-smoke faults-smoke lint-smoke tune-smoke transport-smoke transport-bench-smoke chaos-smoke)
fi

for cfg in "${configs[@]}"; do
  case "$cfg" in
    asan-ubsan)  run_config asan-ubsan -DPEACHY_SANITIZE=ON ;;
    tsan)        run_config tsan -DPEACHY_TSAN=ON ;;
    analysis)    run_config analysis -DPEACHY_ANALYSIS=ON ;;
    bench-smoke) run_bench_smoke ;;
    bench-substrates-smoke) run_bench_substrates_smoke ;;
    obs-smoke)   run_obs_smoke ;;
    faults-smoke) run_faults_smoke ;;
    lint-smoke)  run_lint_smoke ;;
    transport-smoke) run_transport_smoke ;;
    transport-bench-smoke) run_transport_bench_smoke ;;
    chaos-smoke) run_chaos_smoke ;;
    tune-smoke)  run_tune_smoke ;;
    tune-gate)   run_tune_gate ;;
    *) echo "unknown config '$cfg' (expected: asan-ubsan, tsan, analysis, bench-smoke, bench-substrates-smoke, obs-smoke, faults-smoke, lint-smoke, tune-smoke, transport-smoke, transport-bench-smoke, chaos-smoke, tune-gate)" >&2; exit 2 ;;
  esac
done

echo "all configurations passed"
