#!/usr/bin/env bash
# Sanitizer + analysis matrix — the CI entry point for correctness builds.
#
# Runs the full test suite under three configurations, each in its own
# build tree (the options are mutually exclusive per tree):
#
#   asan-ubsan — AddressSanitizer + UndefinedBehaviorSanitizer
#                (memory errors, UB in the numeric kernels)
#   tsan       — ThreadSanitizer
#                (physical data races across the thread pool / mini-MPI)
#   analysis   — -DPEACHY_ANALYSIS=ON grading build: every mpi::run()
#                executes at CheckLevel::full, proving the checker raises
#                zero false positives on the whole suite
#
# plus one perf-infrastructure smoke:
#
#   bench-smoke — Release build of the bench tree only; runs bench_kernels
#                 at tiny sizes and validates the emitted JSON against the
#                 "peachy-bench/1" schema (wiring check, not a perf gate)
#
# Usage: scripts/check.sh [config ...]     (default: all four)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"
  shift
  local dir="$ROOT/build-check-$name"
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPEACHY_BUILD_BENCH=OFF -DPEACHY_BUILD_EXAMPLES=OFF \
    "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  echo "==== [$name] OK ===="
}

run_bench_smoke() {
  local dir="$ROOT/build-check-bench-smoke"
  echo "==== [bench-smoke] configure ===="
  cmake -B "$dir" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DPEACHY_BUILD_BENCH=ON -DPEACHY_BUILD_TESTS=OFF -DPEACHY_BUILD_EXAMPLES=OFF
  echo "==== [bench-smoke] build ===="
  cmake --build "$dir" --target bench_kernels -j "$JOBS"
  echo "==== [bench-smoke] run ===="
  local json="$dir/bench/BENCH_kernels_smoke.json"
  "$dir/bench/bench_kernels" --tiny --out "$json"
  echo "==== [bench-smoke] validate JSON ===="
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "peachy-bench/1", doc.get("schema")
assert doc["harness"] == "bench_kernels"
assert isinstance(doc["isa"], str) and doc["isa"]
assert isinstance(doc["benchmarks"], list) and doc["benchmarks"]
for row in doc["benchmarks"]:
    for key in ("name", "shape", "items", "scalar_ns", "kernel_ns", "speedup"):
        assert key in row, (row, key)
    assert row["scalar_ns"] > 0 and row["kernel_ns"] > 0
print(f"schema OK: {len(doc['benchmarks'])} benchmarks, isa={doc['isa']}")
EOF
  echo "==== [bench-smoke] OK ===="
}

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(asan-ubsan tsan analysis bench-smoke)
fi

for cfg in "${configs[@]}"; do
  case "$cfg" in
    asan-ubsan)  run_config asan-ubsan -DPEACHY_SANITIZE=ON ;;
    tsan)        run_config tsan -DPEACHY_TSAN=ON ;;
    analysis)    run_config analysis -DPEACHY_ANALYSIS=ON ;;
    bench-smoke) run_bench_smoke ;;
    *) echo "unknown config '$cfg' (expected: asan-ubsan, tsan, analysis, bench-smoke)" >&2; exit 2 ;;
  esac
done

echo "all configurations passed"
