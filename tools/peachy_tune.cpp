/// \file peachy_tune.cpp
/// \brief peachy-tune — offline autotuner for the peachy::tune profile.
///
/// Benchmarks the tunable-constant and collective-algorithm space on the
/// host it runs on and persists the winners as a versioned peachy-tune/1
/// JSON profile (loaded at startup via PEACHY_TUNE=<file>, or per run
/// via mpi::RunOptions::tunables).
///
/// The search engine is peachy::hpo's successive halving — the same
/// kill-the-bottom-half economics the HPO assignment teaches, pointed at
/// configurations instead of models: every round re-measures the
/// survivors with twice the repetitions, so cheap noisy screening
/// eliminates losers early and the deep low-variance timings are spent
/// only on finalists.  Scalar dimensions (parallel_for grain, gemm
/// register tile, distance panel blocking, buffer-pool parking bound)
/// are tuned by coordinate descent — one halving run per dimension, each
/// against the best-so-far snapshot; collective algorithms are tuned per
/// (op, p, size band) cell and emitted as selection rules.
///
/// Usage:
///   peachy-tune [--out FILE] [--p LIST] [--rounds N] [--reps N]
///               [--quick] [--note STR]
///
///   --out FILE   output profile path (default: peachy-tune.json)
///   --p LIST     comma-separated rank counts to tune collectives for
///                (default: 2,4,8)
///   --rounds N   halving rounds per dimension (default: 3)
///   --reps N     round-0 repetitions; round r uses reps<<r (default: 2)
///   --quick      smoke-test sizes: tiny workloads, 2 rounds, 1 rep
///                (what scripts/check.sh tune-smoke runs)
///   --note STR   free-text stored as the profile's tuned_for field

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hpo/halving.hpp"
#include "kernels/kernels.hpp"
#include "mpi/mpi.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "tune/tune.hpp"

namespace {

namespace pt = peachy::tune;
namespace pk = peachy::kernels;
namespace ps = peachy::support;
namespace pm = peachy::mpi;
namespace ph = peachy::hpo;

double g_sink = 0.0;  // defeats dead-code elimination; printed at the end

struct Options {
  std::string out = "peachy-tune.json";
  std::vector<int> ranks{2, 4, 8};
  std::size_t rounds = 3;
  std::size_t base_reps = 2;
  bool quick = false;
  std::string note;
};

/// Margin a challenger must clear over the compiled-in default before it
/// displaces it: anything within 10% is treated as a tie and the default
/// is kept.  This hysteresis keeps noise and bistable cells (whose
/// ranking flips run to run) from churning the committed profile with
/// rules that buy nothing — a wrong "improvement" costs every future run,
/// while a forgone 5% win costs almost nothing.
constexpr double kKeepDefaultMargin = 0.9;

/// Run one successive-halving search over `labels.size()` candidates and
/// return the winning index.  `workload(i)` runs candidate i once; the
/// score is best-of-reps wall nanoseconds.  A winner other than
/// `default_index` must then confirm in a fresh head-to-head against the
/// default at the deepest rep budget (both sides timed back to back, so
/// they see the same machine conditions) and clear kKeepDefaultMargin —
/// otherwise the default is kept.
std::size_t tune_dimension(const char* what, const std::vector<std::string>& labels,
                           std::size_t rounds, std::size_t base_reps, std::size_t default_index,
                           const std::function<void(std::size_t)>& workload) {
  const ph::MeasuredHalvingResult r = ph::successive_halving_measured(
      labels.size(), rounds, base_reps, [&](std::size_t i, std::size_t reps) {
        return ps::time_best_of(reps, [&] { workload(i); }) * 1e9;
      });
  std::size_t best = r.final_ranking.front();
  const char* note = "";
  if (best != default_index) {
    const std::size_t reps = base_reps << (r.rounds - 1);
    const double challenger = ps::time_best_of(reps, [&] { workload(best); }) * 1e9;
    const double incumbent = ps::time_best_of(reps, [&] { workload(default_index); }) * 1e9;
    if (challenger > kKeepDefaultMargin * incumbent) {
      best = default_index;
      note = "  [kept default: within noise margin]";
    }
  }
  std::printf("  %-22s -> %-12s (", what, labels[best].c_str());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto& scores = r.history[i].score_per_round;
    std::printf("%s%s %.0fns", i == 0 ? "" : ", ", labels[i].c_str(),
                scores.empty() ? 0.0 : scores.back());
  }
  std::printf(")%s\n", note);
  return best;
}

// ---------------------------------------------------------------------------
// Scalar dimensions.  Each workload installs its candidate into the
// process-wide active snapshot (how the substrate reads these knobs at
// runtime), runs a representative kernel, and restores nothing: the next
// candidate overwrites it, and the winner is re-installed at the end.

void tune_parallel_for_grain(pt::Tunables& best, const Options& opt) {
  const std::vector<std::size_t> cand{512, 1024, 2048, 4096, 8192};
  std::vector<std::string> labels;
  for (const std::size_t g : cand) labels.push_back(std::to_string(g));
  // Mix of loop lengths straddling the dispatch crossover, with a body
  // cheap enough that dispatch overhead is what the grain decides.
  const std::vector<std::size_t> loop_ns =
      opt.quick ? std::vector<std::size_t>{128, 1024} : std::vector<std::size_t>{128, 512, 2048, 8192};
  std::vector<double> data(8192, 1.0);
  ps::ThreadPool& pool = ps::ThreadPool::shared();
  const std::size_t default_i = 2;  // 2048 == tune::defaults().parallel_for_grain
  const std::size_t best_i = tune_dimension(
      "parallel_for_grain", labels, opt.rounds, opt.base_reps, default_i, [&](std::size_t i) {
        pt::Tunables t = best;
        t.parallel_for_grain = cand[i];
        pt::set_active(t);
        double acc = 0.0;
        for (const std::size_t n : loop_ns) {
          ps::parallel_for(pool, 0, n, [&](std::size_t j) { data[j] = data[j] * 0.5 + 1.0; });
          acc += data[n / 2];
        }
        g_sink += acc;
      });
  best.parallel_for_grain = cand[best_i];
}

void tune_gemm_tile(pt::Tunables& best, const Options& opt) {
  const std::vector<std::pair<int, int>> cand{{4, 8}, {2, 8}, {4, 4}, {8, 4}};
  std::vector<std::string> labels;
  for (const auto& [mr, nr] : cand) {
    labels.push_back(std::to_string(mr) + "x" + std::to_string(nr));
  }
  const std::size_t n = opt.quick ? 64 : 160;
  std::vector<double> a(n * n, 1.0 / 3.0), b(n * n, 1.0 / 7.0), c(n * n, 0.0);
  const std::size_t best_i = tune_dimension(
      "gemm_tile", labels, opt.rounds, opt.base_reps, /*default_index=*/0, [&](std::size_t i) {
        pt::Tunables t = best;
        t.gemm_mr = cand[i].first;
        t.gemm_nr = cand[i].second;
        pt::set_active(t);
        pk::gemm_block(a.data(), b.data(), c.data(), n, n, n);
        g_sink += c[0];
      });
  best.gemm_mr = cand[best_i].first;
  best.gemm_nr = cand[best_i].second;
}

void tune_distance_block(pt::Tunables& best, const Options& opt) {
  const std::vector<std::size_t> cand{0, 16, 32, 64, 128};
  std::vector<std::string> labels;
  for (const std::size_t r : cand) labels.push_back(r == 0 ? "unblocked" : std::to_string(r));
  // Big panel (k centroids × d coords) so blocking has cache pressure to
  // relieve; row count large enough to expose the reuse.
  const std::size_t n = opt.quick ? 128 : 1024;
  const std::size_t d = 16;
  const std::size_t k = opt.quick ? 64 : 512;
  const std::size_t kp = pk::padded_count(k);
  std::vector<double> pts(n * d, 0.25), panel(kp * d, 0.75), out(n * k, 0.0);
  const std::size_t best_i = tune_dimension(
      "distance_block_rows", labels, opt.rounds, opt.base_reps, /*default_index=*/0,
      [&](std::size_t i) {
        pt::Tunables t = best;
        t.distance_block_rows = cand[i];
        pt::set_active(t);
        pk::squared_distances_tile(pts.data(), n, d, panel.data(), k, kp, out.data());
        g_sink += out[0];
      });
  best.distance_block_rows = cand[best_i];
}

void tune_pool_parking(pt::Tunables& best, const Options& opt) {
  const std::vector<std::size_t> cand{8, 16, 32, 64, 128};
  std::vector<std::string> labels;
  for (const std::size_t m : cand) labels.push_back(std::to_string(m));
  // Bursty exchange: every rank posts a window of medium messages before
  // draining, so the per-class freelists see real parking pressure.
  const int rounds = opt.quick ? 2 : 12;
  const std::size_t msg = opt.quick ? 256 : 4096;
  const std::size_t default_i = 3;  // 64 == tune::defaults().pool_max_parked
  const std::size_t best_i = tune_dimension(
      "pool_max_parked", labels, opt.rounds, opt.base_reps, default_i, [&](std::size_t i) {
        pt::Tunables t = best;
        t.pool_max_parked = cand[i];
        pt::set_active(t);
        pm::run(2, [rounds, msg](pm::Comm& comm) {
          const int peer = 1 - comm.rank();
          const std::vector<double> block(msg, 1.0);
          for (int r = 0; r < rounds; ++r) {
            for (int w = 0; w < 4; ++w) {
              comm.send<double>(peer, 11 + w, std::span<const double>{block});
            }
            for (int w = 0; w < 4; ++w) {
              const auto got = comm.recv<double>(peer, 11 + w);
              g_sink += got.back();
            }
          }
        });
      });
  best.pool_max_parked = cand[best_i];
}

// ---------------------------------------------------------------------------
// Collective algorithms, per (op, p, size band).

/// Candidate algorithms for an op at a rank count (kAuto = the
/// compiled-in default path, always a candidate; duplicates of it are
/// not re-timed; recursive doubling needs power-of-two p).
std::vector<pt::CollAlgo> coll_candidates(pt::CollOp op, int ranks) {
  const bool pow2 = (ranks & (ranks - 1)) == 0;
  std::vector<pt::CollAlgo> algos{pt::CollAlgo::kAuto, pt::CollAlgo::kLinear};
  switch (op) {
    case pt::CollOp::kBroadcast:
    case pt::CollOp::kReduce:
      algos.push_back(pt::CollAlgo::kRing);
      break;
    case pt::CollOp::kAllreduce:
      algos.push_back(pt::CollAlgo::kRing);
      if (pow2) algos.push_back(pt::CollAlgo::kRecDouble);
      break;
    case pt::CollOp::kAllgather:
      if (pow2) algos.push_back(pt::CollAlgo::kRecDouble);
      break;
  }
  return algos;
}

/// Run `rounds` collectives of `op` on `ranks` ranks with n doubles under
/// a tunables snapshot that forces `algo` for the op (passed through
/// RunOptions — no global state involved, unlike the scalar knobs).
void run_coll_once(pt::CollOp op, pt::CollAlgo algo, int ranks, std::size_t n, int rounds) {
  pt::Tunables t;
  pt::CollRule rule;
  rule.op = op;
  rule.algo = algo;
  t.coll_rules.push_back(rule);
  pm::RunOptions opts;
  opts.tunables = &t;
  pm::run(
      ranks,
      [op, n, rounds](pm::Comm& comm) {
        std::vector<double> data(n, 1.0 + 1e-9 * comm.rank());
        std::vector<double> all;
        if (op == pt::CollOp::kAllgather) {
          all.resize(n * static_cast<std::size_t>(comm.size()));
        }
        for (int r = 0; r < rounds; ++r) {
          switch (op) {
            case pt::CollOp::kBroadcast:
              comm.broadcast_into<double>(std::span<double>{data}, 0);
              break;
            case pt::CollOp::kReduce:
              comm.reduce_inplace<double>(std::span<double>{data}, std::plus<>{}, 0);
              for (double& x : data) x = x * 1e-3 + 1.0;
              break;
            case pt::CollOp::kAllreduce:
              comm.allreduce_inplace<double>(std::span<double>{data}, std::plus<>{});
              for (double& x : data) x = x * 1e-3 + 1.0;
              break;
            case pt::CollOp::kAllgather:
              comm.allgather_into<double>(std::span<const double>{data}, std::span<double>{all});
              break;
          }
        }
        g_sink += op == pt::CollOp::kAllgather ? all.back() : data[0];
      },
      opts);
}

/// Byte band split: rules below tune small (<= 16 KiB) and large
/// messages separately — the latency/bandwidth crossover every MPI
/// implementation's algorithm tables encode.
constexpr std::int64_t kSmallBytesMax = 16 * 1024;

void tune_collectives(pt::Tunables& best, const Options& opt) {
  const int rounds_per_run = opt.quick ? 2 : 20;
  // Representative sizes per band (doubles): 2 KiB and 256 KiB.
  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{64} : std::vector<std::size_t>{256, 32768};
  for (const pt::CollOp op : {pt::CollOp::kBroadcast, pt::CollOp::kReduce,
                              pt::CollOp::kAllreduce, pt::CollOp::kAllgather}) {
    for (const int p : opt.ranks) {
      for (const std::size_t n : sizes) {
        const std::vector<pt::CollAlgo> cand = coll_candidates(op, p);
        std::vector<std::string> labels;
        for (const pt::CollAlgo a : cand) labels.push_back(pt::coll_algo_name(a));
        const std::string what = std::string{pt::coll_op_name(op)} + " p=" +
                                 std::to_string(p) + " n=" + std::to_string(n);
        const std::size_t best_i = tune_dimension(
            what.c_str(), labels, opt.rounds, opt.base_reps, /*default_index=*/0,
            [&](std::size_t i) { run_coll_once(op, cand[i], p, n, rounds_per_run); });
        if (cand[best_i] == pt::CollAlgo::kAuto) continue;  // default wins: no rule
        pt::CollRule rule;
        rule.op = op;
        rule.algo = cand[best_i];
        rule.p_min = p;
        rule.p_max = p;
        const bool small = static_cast<std::int64_t>(n * sizeof(double)) <= kSmallBytesMax;
        if (sizes.size() > 1) {  // quick mode tunes one size: leave bytes open
          if (small) {
            rule.bytes_max = kSmallBytesMax;
          } else {
            rule.bytes_min = kSmallBytesMax + 1;
          }
        }
        best.coll_rules.push_back(rule);
      }
    }
  }
}

// ---------------------------------------------------------------------------

void usage() {
  std::fprintf(stderr,
               "usage: peachy-tune [--out FILE] [--p LIST] [--rounds N] [--reps N] "
               "[--quick] [--note STR]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "peachy-tune: %s needs a value\n", flag);
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      opt.out = next("--out");
    } else if (std::strcmp(argv[i], "--p") == 0) {
      opt.ranks.clear();
      const std::string list = next("--p");
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int p = std::atoi(tok.c_str());
        if (p < 1) {
          std::fprintf(stderr, "peachy-tune: bad rank count '%s'\n", tok.c_str());
          return 2;
        }
        opt.ranks.push_back(p);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (opt.ranks.empty()) {
        std::fprintf(stderr, "peachy-tune: --p list is empty\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      opt.rounds = static_cast<std::size_t>(std::atoi(next("--rounds")));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      opt.base_reps = static_cast<std::size_t>(std::atoi(next("--reps")));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      opt.rounds = 2;
      opt.base_reps = 1;
    } else if (std::strcmp(argv[i], "--note") == 0) {
      opt.note = next("--note");
    } else {
      usage();
      return 2;
    }
  }
  if (opt.rounds < 1 || opt.base_reps < 1) {
    std::fprintf(stderr, "peachy-tune: --rounds and --reps must be >= 1\n");
    return 2;
  }

  const char* isa = pk::isa_name(pk::active_isa());
  std::printf("peachy-tune: successive-halving autotune (isa=%s%s)\n", isa,
              opt.quick ? ", quick" : "");

  pt::Tunables best = pt::defaults();
  std::printf("tunable constants:\n");
  tune_parallel_for_grain(best, opt);
  tune_gemm_tile(best, opt);
  tune_distance_block(best, opt);
  tune_pool_parking(best, opt);
  std::printf("collective algorithms:\n");
  tune_collectives(best, opt);

  // Leave the process-wide snapshot on the winner (the scalar-dimension
  // workloads left the last candidate installed).
  pt::set_active(best);

  pt::Profile profile;
  profile.isa = isa;
  if (!opt.note.empty()) {
    profile.tuned_for = opt.note;
  } else {
    std::string ranks;
    for (std::size_t i = 0; i < opt.ranks.size(); ++i) {
      ranks += (i == 0 ? "" : ",") + std::to_string(opt.ranks[i]);
    }
    profile.tuned_for = std::string{"f64 collectives p="} + ranks + " on " + isa;
  }
  profile.tunables = best;
  if (!pt::write_profile_file(profile, opt.out)) {
    return 1;
  }
  std::printf("wrote %s (%zu collective rules)\n", opt.out.c_str(), best.coll_rules.size());
  std::printf("sink=%g\n", g_sink);
  return 0;
}
