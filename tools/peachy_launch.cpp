/// \file peachy_launch.cpp
/// \brief The peachy-launch command-line tool: mpirun for the mini-MPI.
///
///   peachy-launch -n 4 [--transport=socket|shm] -- ./my_program args...
///
/// Forks/execs one OS process per rank, wires the wire-transport
/// rendezvous (mpi/launch.hpp), and reaps.  Each child sees PEACHY_RANK /
/// PEACHY_NRANKS / PEACHY_TRANSPORT and — when it calls peachy::mpi::run —
/// hosts exactly its own rank, talking to its peers over the launched
/// transport.  A rank process dying to a signal is tolerated and reported
/// (that is the fault-tolerance story, not a launcher error).
///
/// Exit status:
///   0 — every rank process exited 0
///   1 — at least one rank exited nonzero or died to a signal
///   2 — usage error or launch failure

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "mpi/launch.hpp"
#include "mpi/transport.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: peachy-launch -n <ranks> [--transport=socket|shm] -- <command> [args...]\n"
               "\n"
               "Run <command> as one process per rank over a wire transport.\n"
               "  -n <ranks>            number of rank processes (default 2)\n"
               "  --transport=<kind>    socket (default) or shm\n"
               "Everything after `--` is the rank program and its arguments.\n");
}

}  // namespace

int main(int argc, char** argv) {
  namespace pm = peachy::mpi;
  pm::LaunchOptions opts;
  std::vector<std::string> cmd;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--") {
      for (int j = i + 1; j < argc; ++j) cmd.emplace_back(argv[j]);
      break;
    }
    if (arg == "-n" || arg == "--n") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      opts.nranks = std::atoi(argv[++i]);
    } else if (arg.rfind("-n=", 0) == 0) {
      opts.nranks = std::atoi(arg.c_str() + 3);
    } else if (arg.rfind("--transport=", 0) == 0) {
      try {
        opts.kind = pm::parse_transport(arg.substr(std::strlen("--transport=")));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "peachy-launch: %s\n", e.what());
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "peachy-launch: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (opts.nranks < 1 || cmd.empty()) {
    usage();
    return 2;
  }

  pm::LaunchResult res;
  try {
    res = pm::launch(opts, cmd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "peachy-launch: %s\n", e.what());
    return 2;
  }

  for (const pm::ProcStatus& ps : res.procs) {
    if (ps.signaled) {
      std::fprintf(stderr, "peachy-launch: rank %d (pid %ld) killed by signal %d\n", ps.rank,
                   static_cast<long>(ps.pid), ps.sig);
    } else if (ps.exit_code != 0) {
      std::fprintf(stderr, "peachy-launch: rank %d (pid %ld) exited %d\n", ps.rank,
                   static_cast<long>(ps.pid), ps.exit_code);
    }
  }
  return res.all_clean() ? 0 : 1;
}
