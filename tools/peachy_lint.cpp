/// \file peachy_lint.cpp
/// \brief The peachy-lint command-line tool.
///
///   peachy-lint [--json] [--rules=L1,L3] [--quiet] <path>...
///
/// Paths may be files or directories (directories recurse over
/// .cpp/.cc/.hpp/.h).  Exit status is the contract the autograder keys on:
///   0 — clean (no findings)
///   1 — findings reported
///   2 — usage or I/O error

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "support/check.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: peachy-lint [--json] [--rules=L1,L2,...] [--quiet] <path>...\n"
               "\n"
               "Static analyzer for parallel-correctness mistakes in peachy\n"
               "assignment code.  Rules:\n"
               "  L1 capture-race           by-& capture mutated in a parallel body\n"
               "  L2 collective-divergence  collective under a rank-dependent branch\n"
               "  L3 use-after-move         pooled buffer read after send_move/post_move\n"
               "  L4 unbounded-recv         untimed recv in fault-tolerant code\n"
               "  L5 magic-tag              raw tag literal / tag reused across types\n"
               "  L6 ignored-result         try_peek/probe/shrink result discarded\n"
               "\n"
               "Suppress a finding with: // peachy-lint: allow(L2)\n"
               "Exit: 0 clean, 1 findings, 2 usage/IO error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quiet = false;
  peachy::lint::Options opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--rules=", 0) == 0) {
      for (bool& e : opts.enabled) e = false;
      std::string id;
      const auto flush = [&] {
        peachy::lint::Rule r{};
        if (!id.empty()) {
          if (!peachy::lint::parse_rule(id, r)) {
            std::fprintf(stderr, "peachy-lint: unknown rule '%s'\n", id.c_str());
            std::exit(2);
          }
          opts.enabled[static_cast<std::size_t>(r)] = true;
        }
        id.clear();
      };
      for (const char c : arg.substr(8)) {
        if (c == ',') {
          flush();
        } else {
          id.push_back(c);
        }
      }
      flush();
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "peachy-lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (paths.empty()) {
    usage();
    return 2;
  }

  peachy::lint::Result all;
  try {
    for (const std::string& p : paths) {
      all.merge(peachy::lint::lint_path(p, opts));
    }
  } catch (const peachy::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (json) {
    std::cout << peachy::lint::to_json(all);
  } else if (!quiet || !all.clean()) {
    std::cout << peachy::lint::to_text(all);
  }
  return all.clean() ? 0 : 1;
}
