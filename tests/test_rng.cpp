// Unit + property tests for peachy::rng — the reproducibility substrate of
// the traffic assignment (paper §5).  The central property: discard(n) must
// be exactly equivalent to n sequential steps, for every generator.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/lcg.hpp"
#include "rng/philox.hpp"
#include "rng/selftest.hpp"
#include "rng/shared_stream.hpp"
#include "rng/splitmix.hpp"

namespace pr = peachy::rng;

// ---- fast-forward equivalence (the paper's key primitive) -------------------

// Property sweep: for many jump distances, discard(n) == n manual steps.
class FastForward : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastForward, Lcg64DiscardEqualsStepping) {
  const std::uint64_t n = GetParam();
  pr::Lcg64 jumped{12345}, stepped{12345};
  jumped.discard(n);
  for (std::uint64_t i = 0; i < n; ++i) (void)stepped.next_u64();
  EXPECT_EQ(jumped.state(), stepped.state()) << "n=" << n;
}

TEST_P(FastForward, MinstdDiscardEqualsStepping) {
  const std::uint64_t n = GetParam();
  pr::Minstd jumped{777}, stepped{777};
  jumped.discard(n);
  for (std::uint64_t i = 0; i < n; ++i) (void)stepped.next_u32();
  EXPECT_EQ(jumped.state(), stepped.state()) << "n=" << n;
}

TEST_P(FastForward, PhiloxDiscardEqualsStepping) {
  const std::uint64_t n = GetParam();
  pr::Philox4x32 jumped{42}, stepped{42};
  jumped.discard(n);
  for (std::uint64_t i = 0; i < n; ++i) (void)stepped.next_u32();
  EXPECT_EQ(jumped.next_u32(), stepped.next_u32()) << "n=" << n;
}

TEST_P(FastForward, SplitMixDiscardEqualsStepping) {
  const std::uint64_t n = GetParam();
  pr::SplitMix64 jumped{9}, stepped{9};
  jumped.discard(n);
  for (std::uint64_t i = 0; i < n; ++i) (void)stepped.next_u64();
  EXPECT_EQ(jumped.next_u64(), stepped.next_u64()) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(JumpDistances, FastForward,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 3ULL, 7ULL, 64ULL, 1000ULL, 4097ULL,
                                           65536ULL, 99991ULL));

TEST(FastForwardLarge, LcgHugeJumpIsComposable) {
  // discard(a); discard(b) == discard(a+b) — affine composition property,
  // checkable even for jumps too large to step manually.
  pr::Lcg64 a{5}, b{5};
  a.discard(0x123456789ULL);
  a.discard(0x987654321ULL);
  b.discard(0x123456789ULL + 0x987654321ULL);
  EXPECT_EQ(a.state(), b.state());
}

TEST(FastForwardLarge, MinstdHugeJumpIsComposable) {
  pr::Minstd a{5}, b{5};
  a.discard(1ULL << 40);
  a.discard(12345);
  b.discard((1ULL << 40) + 12345);
  EXPECT_EQ(a.state(), b.state());
}

// ---- Minstd matches the C++ standard library --------------------------------

TEST(Minstd, MatchesStdMinstdRand) {
  pr::Minstd ours{1};
  std::minstd_rand theirs{1};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(ours.next_u32(), static_cast<std::uint32_t>(theirs()));
  }
}

TEST(Minstd, TenThousandthValueIsKnown) {
  // The C++ standard requires minstd_rand's 10000th value from seed 1.
  pr::Minstd g{1};
  std::uint32_t v = 0;
  for (int i = 0; i < 10000; ++i) v = g.next_u32();
  EXPECT_EQ(v, 399268537u);
}

TEST(Minstd, ZeroSeedIsSanitized) {
  pr::Minstd g{0};
  EXPECT_NE(g.state(), 0u);
  (void)g.next_u32();
  EXPECT_NE(g.state(), 0u);
}

// ---- determinism & checkpointing --------------------------------------------

TEST(Lcg64, SameSeedSameSequence) {
  pr::Lcg64 a{99}, b{99};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Lcg64, CheckpointRestore) {
  pr::Lcg64 g{4};
  (void)g.next_u64();
  const auto saved = g.state();
  const auto v1 = g.next_u64();
  g.set_state(saved);
  EXPECT_EQ(g.next_u64(), v1);
}

TEST(Philox, AtIsPureAndPositionIndependent) {
  pr::Philox4x32 g{7};
  const auto v5 = g.at(5);
  for (int i = 0; i < 5; ++i) (void)g.next_u32();
  EXPECT_EQ(g.next_u32(), v5);
  EXPECT_EQ(g.at(5), v5);  // at() did not disturb position
}

TEST(Philox, IndexTracksDraws) {
  pr::Philox4x32 g{7};
  EXPECT_EQ(g.index(), 0u);
  for (int i = 0; i < 9; ++i) (void)g.next_u32();
  EXPECT_EQ(g.index(), 9u);
  g.set_index(100);
  EXPECT_EQ(g.index(), 100u);
}

TEST(Philox, DistinctKeysDistinctStreams) {
  pr::Philox4x32 a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 4);
}

// ---- distributions -----------------------------------------------------------

TEST(Distributions, Uniform01InRange) {
  pr::Lcg64 g{1};
  for (int i = 0; i < 10000; ++i) {
    const double u = pr::uniform01(g);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Distributions, UniformBelowInRange) {
  pr::Lcg64 g{2};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(pr::uniform_below(g, 17), 17u);
}

TEST(Distributions, UniformBelowCoversAllValues) {
  pr::Lcg64 g{3};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(pr::uniform_below(g, 5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Distributions, UniformIntInclusiveBounds) {
  pr::Lcg64 g{4};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = pr::uniform_int(g, -3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Distributions, BernoulliMatchesProbability) {
  pr::Lcg64 g{5};
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += pr::bernoulli(g, 0.13);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.13, 0.01);
}

TEST(Distributions, BernoulliDegenerateProbabilities) {
  pr::Lcg64 g{6};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(pr::bernoulli(g, 0.0));
    EXPECT_TRUE(pr::bernoulli(g, 1.0));
  }
}

TEST(Distributions, NormalMoments) {
  pr::Lcg64 g{7};
  double sum = 0, ss = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto [x, y] = pr::normal_pair(g);
    sum += x + y;
    ss += x * x + y * y;
  }
  const double m = sum / (2 * n);
  const double var = ss / (2 * n) - m * m;
  EXPECT_NEAR(m, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Distributions, RejectsBadParameters) {
  pr::Lcg64 g{8};
  EXPECT_THROW((void)pr::uniform_below(g, 0), peachy::Error);
  EXPECT_THROW((void)pr::uniform_real(g, 2.0, 1.0), peachy::Error);
  EXPECT_THROW((void)pr::bernoulli(g, 1.5), peachy::Error);
  EXPECT_THROW((void)pr::normal(g, 0.0, -1.0), peachy::Error);
}

TEST(Distributions, FixedDrawBudget) {
  // The traffic model's fast-forward arithmetic relies on exactly one draw
  // per bernoulli / uniform call.
  // One "logical draw" = one next_double()/next_u64() = two 32-bit Philox
  // ticks.  The budget must be constant per call, whatever its value.
  pr::Philox4x32 g{11};
  (void)pr::bernoulli(g, 0.5);
  EXPECT_EQ(g.index(), 2u);
  (void)pr::uniform_below(g, 10);
  EXPECT_EQ(g.index(), 4u);
  (void)pr::normal(g);  // documented: exactly 2 logical draws
  EXPECT_EQ(g.index(), 8u);
}

// ---- shared stream ------------------------------------------------------------

TEST(SharedStream, CursorMatchesSerialConsumption) {
  pr::SharedStream<pr::Lcg64> stream{2024};
  pr::Lcg64 serial{2024};
  std::vector<double> expect(100);
  for (auto& x : expect) x = serial.next_double();

  // Consume the same logical sequence from 4 simulated "threads".
  for (int t = 0; t < 4; ++t) {
    const std::uint64_t lo = t * 25, hi = lo + 25;
    auto cur = stream.cursor(lo);
    for (std::uint64_t i = lo; i < hi; ++i) {
      EXPECT_DOUBLE_EQ(cur.next_double(), expect[i]) << "i=" << i;
    }
  }
  EXPECT_EQ(stream.ff_calls(), 4u);
}

TEST(SharedStream, ValueAtIsConsistent) {
  pr::SharedStream<pr::Lcg64> stream{5};
  auto cur = stream.cursor(41);
  EXPECT_DOUBLE_EQ(stream.value_at(41), cur.next_double());
}

TEST(LeapfrogView, LanesPartitionTheSequence) {
  constexpr std::uint64_t kLanes = 3;
  pr::Lcg64 serial{88};
  std::vector<std::uint64_t> expect(30);
  for (auto& x : expect) x = serial.next_u64();

  for (std::uint64_t lane = 0; lane < kLanes; ++lane) {
    pr::LeapfrogView<pr::Lcg64> view{88, lane, kLanes};
    for (std::uint64_t k = lane; k < expect.size(); k += kLanes) {
      EXPECT_EQ(view.next_u64(), expect[k]) << "lane=" << lane << " k=" << k;
    }
  }
}

// ---- seed derivation ----------------------------------------------------------

TEST(DeriveSeed, DistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(pr::derive_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(pr::derive_seed(1, 0), pr::derive_seed(2, 0));
}

// ---- statistical battery ---------------------------------------------------------

TEST(SelfTest, Lcg64PassesBattery) {
  pr::Lcg64 g{20230712};
  const auto rep = pr::self_test(g, 1u << 16);
  EXPECT_TRUE(rep.all_pass()) << rep.to_string();
}

TEST(SelfTest, MinstdPassesBattery) {
  pr::Minstd g{20230712};
  const auto rep = pr::self_test(g, 1u << 16);
  EXPECT_TRUE(rep.all_pass()) << rep.to_string();
}

TEST(SelfTest, PhiloxPassesBattery) {
  pr::Philox4x32 g{20230712};
  const auto rep = pr::self_test(g, 1u << 16);
  EXPECT_TRUE(rep.all_pass()) << rep.to_string();
}

TEST(SelfTest, SplitMixPassesBattery) {
  pr::SplitMix64 g{20230712};
  const auto rep = pr::self_test(g, 1u << 16);
  EXPECT_TRUE(rep.all_pass()) << rep.to_string();
}

TEST(SelfTest, CatchesConstantGenerator) {
  // A degenerate "generator" must fail the battery — guards against the
  // battery accepting anything.
  struct Constant {
    double next_double() { return 0.5; }
  } g;
  const auto rep = pr::self_test(g, 4096);
  EXPECT_FALSE(rep.all_pass());
}

TEST(SelfTest, RejectsTinySamples) {
  pr::Lcg64 g{1};
  EXPECT_THROW((void)pr::self_test(g, 16), peachy::Error);
}
