// Tests for peachy::analysis: the mini-MPI correctness checker (deadlock /
// collective-matching / message-leak detection) and the lockset race
// detector.  The true-positive fixtures are the four classic student bugs
// the graders care about — each must be *detected and named*; the clean
// fixtures prove representative correct programs produce zero findings at
// CheckLevel::full.

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <span>
#include <vector>

#include "analysis/race.hpp"
#include "chapel/chapel.hpp"
#include "mpi/mpi.hpp"
#include "support/barrier.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

namespace pa = peachy::analysis;
namespace pm = peachy::mpi;
namespace ps = peachy::support;

// ---- deadlock detection ----------------------------------------------------------

TEST(AnalysisDeadlock, HeadToHeadRecvIsDetectedAndNamed) {
  // The canonical bug: both ranks receive first, nobody has sent.
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    (void)c.recv<int>(1 - c.rank(), 7);
  });
  EXPECT_FALSE(res.report.clean());
  EXPECT_EQ(res.report.count(pa::FindingKind::deadlock), 1u);
  EXPECT_TRUE(res.report.mentions("cyclic recv dependency among ranks {0, 1}"))
      << res.report.to_string();
  EXPECT_TRUE(res.report.mentions("rank 0 blocked in recv(src=1, tag=7)"));
  EXPECT_TRUE(res.report.mentions("rank 1 blocked in recv(src=0, tag=7)"));
}

TEST(AnalysisDeadlock, WaitOnFinishedRankIsDetected) {
  // Rank 1 expects two messages; rank 0 only ever sends one and exits.
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 3, 42);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 3), 42);
      (void)c.recv_value<int>(0, 3);  // never satisfied
    }
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::deadlock), 1u);
  EXPECT_TRUE(res.report.mentions("rank 1 blocked in recv(src=0, tag=3)"))
      << res.report.to_string();
  EXPECT_TRUE(res.report.mentions("has already finished"));
}

TEST(AnalysisDeadlock, AllRanksBlockedOnWildcardsIsDetected) {
  // Wildcard waits have edges to every live rank, so no cycle exists; the
  // whole-machine rule must catch the stall instead.
  const auto res = pm::run_checked(3, [](pm::Comm& c) {
    if (c.rank() == 0) {
      (void)c.recv_bytes(pm::kAnySource, pm::kAnyTag);
    } else {
      (void)c.recv_bytes(pm::kAnySource, 5);
    }
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::deadlock), 1u);
  EXPECT_TRUE(res.report.mentions("all 3 still-running rank(s)")) << res.report.to_string();
  EXPECT_TRUE(res.report.mentions("rank 0 blocked in recv(src=any, tag=any)"));
  EXPECT_TRUE(res.report.mentions("rank 1 blocked in recv(src=any, tag=5)"));
}

TEST(AnalysisDeadlock, SelfRecvWithoutSendIsDetected) {
  const auto res = pm::run_checked(1, [](pm::Comm& c) {
    (void)c.recv_bytes(0, 0);
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::deadlock), 1u);
  EXPECT_TRUE(res.report.mentions("rank 0 blocked in recv(src=0, tag=0)"))
      << res.report.to_string();
}

TEST(AnalysisDeadlock, UncheckedRunThrowsCheckFailure) {
  // Without run_checked() the diagnosis surfaces as an exception, so the
  // hang still turns into a hard failure instead of a stuck process.
  EXPECT_THROW(pm::run(
                   2, [](pm::Comm& c) { (void)c.recv_bytes(1 - c.rank(), 0); },
                   pa::CheckLevel::deadlock),
               peachy::Error);
}

// ---- collective matching ----------------------------------------------------------

TEST(AnalysisCollective, OperationMismatchIsDetectedAndNamed) {
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.barrier();
    } else {
      (void)c.allreduce_value(1, std::plus<>{});
    }
  });
  EXPECT_FALSE(res.report.clean());
  EXPECT_EQ(res.report.count(pa::FindingKind::collective_mismatch), 1u);
  EXPECT_TRUE(res.report.mentions("collective mismatch at position 0 (operation differs)"))
      << res.report.to_string();
  EXPECT_TRUE(res.report.mentions("barrier"));
  EXPECT_TRUE(res.report.mentions("reduce"));
}

TEST(AnalysisCollective, RootMismatchIsDetected) {
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    std::vector<int> v{c.rank()};
    c.broadcast(v, /*root=*/c.rank());  // each rank names itself root
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::collective_mismatch), 1u);
  EXPECT_TRUE(res.report.mentions("root differs")) << res.report.to_string();
}

TEST(AnalysisCollective, ElementSizeMismatchIsDetected) {
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      (void)c.allreduce_value(1, std::plus<>{});  // int
    } else {
      (void)c.allreduce_value(1.0, std::plus<>{});  // double
    }
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::collective_mismatch), 1u);
  EXPECT_TRUE(res.report.mentions("element size differs")) << res.report.to_string();
}

TEST(AnalysisCollective, ContributionLengthMismatchIsDetected) {
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    const std::vector<int> local(c.rank() == 0 ? 1 : 2, 5);
    (void)c.allreduce<int>(local, std::plus<>{});
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::collective_mismatch), 1u);
  EXPECT_TRUE(res.report.mentions("contribution length differs")) << res.report.to_string();
}

// ---- message leaks ----------------------------------------------------------------

TEST(AnalysisLeak, UnreceivedMessageIsReportedAtExit) {
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    if (c.rank() == 0) c.send_value<int>(1, 7, 99);  // rank 1 never receives
  });
  EXPECT_FALSE(res.report.clean());
  EXPECT_EQ(res.report.count(pa::FindingKind::message_leak), 1u);
  EXPECT_TRUE(res.report.mentions("message from rank 0 to rank 1 (tag=7, 4 bytes)"))
      << res.report.to_string();
  EXPECT_TRUE(res.report.mentions("never received"));
}

TEST(AnalysisLeak, UncheckedRunTurnsLeakIntoHardFailure) {
  EXPECT_THROW(pm::run(
                   2, [](pm::Comm& c) {
                     if (c.rank() == 0) c.send_value<int>(1, 7, 99);
                   },
                   pa::CheckLevel::full),
               pa::CheckFailure);
}

// ---- zero false positives ---------------------------------------------------------

TEST(AnalysisClean, CorrectProgramUsingEverythingRunsClean) {
  // A representative correct program: ring p2p, wildcard fan-in, and every
  // collective.  CheckLevel::full must report nothing at all.
  const auto res = pm::run_checked(4, [](pm::Comm& c) {
    const int p = c.size();
    const int me = c.rank();

    c.send_value<int>((me + 1) % p, 1, me);
    EXPECT_EQ(c.recv_value<int>((me - 1 + p) % p, 1), (me - 1 + p) % p);

    if (me == 0) {
      int sum = 0;
      for (int i = 1; i < p; ++i) sum += c.recv_value<int>(pm::kAnySource, 2);
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      c.send_value<int>(0, 2, me);
    }

    c.barrier();
    EXPECT_EQ(c.broadcast_value(me == 2 ? 99 : 0, /*root=*/2), 99);
    EXPECT_EQ(c.allreduce_value(me + 1, std::plus<>{}), 10);

    const std::vector<int> mine{me, me};
    const auto gathered = c.gather<int>(mine, /*root=*/1);
    if (me == 1) {
      EXPECT_EQ(gathered.size(), 8u);
    }
    EXPECT_EQ(c.allgather<int>(mine).size(), 8u);

    std::vector<int> src(8);
    std::iota(src.begin(), src.end(), 0);
    EXPECT_EQ(c.scatter_blocks<int>(src, /*root=*/0).size(), 2u);

    std::vector<std::vector<int>> outs(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) outs[static_cast<std::size_t>(r)] = {me * 10 + r};
    const auto ins = c.alltoall(outs);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(ins[static_cast<std::size_t>(r)], (std::vector<int>{r * 10 + me}));
    }
  });
  EXPECT_TRUE(res.report.clean()) << res.report.to_string();
  EXPECT_TRUE(res.report.findings().empty()) << res.report.to_string();
}

TEST(AnalysisClean, UserExceptionStillPropagatesWhenReportIsClean) {
  // run_checked() swallows *echo* exceptions of diagnosed findings, never
  // genuine user bugs the checker has nothing to say about.
  try {
    (void)pm::run_checked(2, [](pm::Comm& c) {
      if (c.rank() == 0) throw peachy::Error{"user bug"};
    });
    FAIL() << "expected throw";
  } catch (const peachy::Error& e) {
    EXPECT_NE(std::string{e.what()}.find("user bug"), std::string::npos);
  }
}

// ---- race detector: true positives ------------------------------------------------

TEST(AnalysisRace, RacingParallelForAccumulatorIsDetectedAndNamed) {
  ps::ThreadPool pool{4};
  pa::SharedArray<int> sum{"global_sum", 1};
  // Four blocks, each read-modify-writing element 0 with no lock: the
  // classic reduction-written-as-a-loop bug.
  ps::parallel_for(pool, 0, 4, [&](std::size_t) { sum.update(0, [](int v) { return v + 1; }); });
  const pa::Report rep = sum.report();
  EXPECT_FALSE(rep.clean());
  EXPECT_GE(rep.count(pa::FindingKind::data_race), 1u);
  EXPECT_TRUE(rep.mentions("data race on 'global_sum'")) << rep.to_string();
  EXPECT_TRUE(rep.mentions("no common lock"));
  // The detector is schedule-independent: this run may well have produced
  // the correct answer (storage is internally serialized), yet the logical
  // race is still reported.
  EXPECT_EQ(sum.values()[0], 4);
}

TEST(AnalysisRace, WriterRacingReadersIsDetected) {
  ps::ThreadPool pool{4};
  pa::SharedArray<int> arr{"arr", 8};
  ps::parallel_for(pool, 0, 4, [&](std::size_t i) {
    if (i == 0) {
      arr.write(5, 1);
    } else {
      (void)arr.read(5);
    }
  });
  const pa::Report rep = arr.report();
  EXPECT_GE(rep.count(pa::FindingKind::data_race), 1u);
  EXPECT_TRUE(rep.mentions("wrote [5, 6)")) << rep.to_string();
  EXPECT_TRUE(rep.mentions("read [5, 6)"));
}

TEST(AnalysisRace, ChapelForallRaceIsDetected) {
  peachy::chapel::LocaleGrid grid{2, 2};
  pa::SharedArray<double> acc{"acc", 1};
  grid.forall({0, 64}, [&](std::size_t) { acc.update(0, [](double v) { return v + 1.0; }); });
  const pa::Report rep = acc.report();
  EXPECT_GE(rep.count(pa::FindingKind::data_race), 1u);
  EXPECT_TRUE(rep.mentions("data race on 'acc'")) << rep.to_string();
}

TEST(AnalysisRace, RawThreadPoolTasksRaceAmongThemselves) {
  // Unstructured submits carry no join information, so they form one
  // shared pseudo-epoch.  The barrier forces the two tasks onto distinct
  // workers, giving them distinct identities.
  ps::ThreadPool pool{2};
  ps::CyclicBarrier rendezvous{2};
  pa::SharedArray<int> x{"x", 1};
  for (int t = 0; t < 2; ++t) {
    pool.submit([&] {
      rendezvous.arrive_and_wait();
      x.update(0, [](int v) { return v + 1; });
    });
  }
  pool.wait_idle();
  EXPECT_GE(x.report().count(pa::FindingKind::data_race), 1u) << x.report().to_string();
}

TEST(AnalysisRace, SiblingNestedRegionsRaceIsDetected) {
  // Two sibling tasks of an outer region each open an *inner* region that
  // updates the same element.  The inner regions get distinct epochs, but
  // no join separates them — the parent-chain model must still flag the
  // race (a flat same-epoch rule would silently drop it).
  ps::ThreadPool pool{2};
  pa::SharedArray<int> sum{"nested_sum", 1};
  ps::parallel_for_threads(pool, 2, 2, [&](std::size_t, std::size_t, std::size_t) {
    ps::parallel_for_threads(pool, 1, 1, [&](std::size_t, std::size_t, std::size_t) {
      sum.update(0, [](int v) { return v + 1; });
    });
  });
  const pa::Report rep = sum.report();
  EXPECT_GE(rep.count(pa::FindingKind::data_race), 1u) << rep.to_string();
  EXPECT_TRUE(rep.mentions("concurrent nested parallel regions")) << rep.to_string();
  EXPECT_EQ(sum.values()[0], 2);
}

TEST(AnalysisRace, SequentiallyNestedRegionsAreClean) {
  // One task opens two inner regions back to back; the first inner join
  // orders them, so identical ranges touched in both rounds are not a
  // race.  (The inner blocks are dispatched to the pool: the parent chain
  // is captured at the fork, not from the executing thread.)
  ps::ThreadPool pool{2};
  pa::SharedArray<int> arr{"arr", 8};
  ps::parallel_for_threads(pool, 8, 1, [&](std::size_t, std::size_t, std::size_t) {
    for (int round = 0; round < 2; ++round) {
      ps::parallel_for_threads(pool, 8, 2, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) arr.write(i, round);
      });
    }
  });
  const pa::Report rep = arr.report();
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(arr.values()[i], 1);
}

TEST(AnalysisRace, ManualScopesOverlapPartiallyAndReset) {
  pa::RaceDetector det{"buf"};
  const std::uint64_t epoch = pa::begin_parallel_region();
  {
    const pa::TaskScope t0{0, epoch};
    det.record_write(0, 8);
  }
  {
    const pa::TaskScope t1{1, epoch};
    det.record_write(4, 12);
  }
  const pa::Report rep = det.report();
  EXPECT_EQ(rep.count(pa::FindingKind::data_race), 1u);
  EXPECT_TRUE(rep.mentions("overlapping range [4, 8)")) << rep.to_string();
  EXPECT_EQ(det.recorded(), 2u);
  det.reset();
  EXPECT_EQ(det.recorded(), 0u);
  EXPECT_TRUE(det.report().clean());
}

// ---- race detector: no false positives --------------------------------------------

TEST(AnalysisRace, DisjointWritesAreClean) {
  ps::ThreadPool pool{4};
  pa::SharedArray<int> arr{"arr", 256};
  arr.write(0, -1);  // serial-phase access must not conflict with anything
  ps::parallel_for(pool, 0, 256, [&](std::size_t i) { arr.write(i, static_cast<int>(i)); });
  arr.write(0, 0);
  const pa::Report rep = arr.report();
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_TRUE(rep.findings().empty());
  for (std::size_t i = 1; i < 256; ++i) EXPECT_EQ(arr.values()[i], static_cast<int>(i));
}

TEST(AnalysisRace, CommonTrackedMutexSuppressesTheRace) {
  // The canonical student *fix*: same racy update, now under a mutex the
  // detector can see.  The Eraser rule must declare it benign.
  ps::ThreadPool pool{4};
  pa::TrackedMutex mu;
  pa::SharedArray<int> sum{"global_sum", 1};
  ps::parallel_for(pool, 0, 4, [&](std::size_t) {
    const std::lock_guard lock{mu};
    sum.update(0, [](int v) { return v + 1; });
  });
  const pa::Report rep = sum.report();
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(sum.values()[0], 4);
}

TEST(AnalysisRace, ConsecutiveRegionsDoNotConflict) {
  // The same ranges touched in back-to-back parallel_for calls are
  // separated by the join — different epochs, no race.
  ps::ThreadPool pool{4};
  pa::SharedArray<int> arr{"arr", 64};
  for (int round = 0; round < 3; ++round) {
    ps::parallel_for(pool, 0, 64, [&](std::size_t i) { arr.write(i, round); });
  }
  const pa::Report rep = arr.report();
  EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST(AnalysisRace, ConcurrentReadsAreClean) {
  ps::ThreadPool pool{4};
  pa::SharedArray<int> arr{"arr", 8};
  arr.write(3, 17);
  ps::parallel_for(pool, 0, 4, [&](std::size_t) { EXPECT_EQ(arr.read(3), 17); });
  EXPECT_TRUE(arr.report().clean()) << arr.report().to_string();
}

// ---- grading-build default --------------------------------------------------------

TEST(AnalysisDefaults, DefaultCheckLevelMatchesBuildConfiguration) {
#if defined(PEACHY_ANALYSIS) && PEACHY_ANALYSIS
  EXPECT_EQ(pm::default_check_level(), pa::CheckLevel::full);
#else
  EXPECT_EQ(pm::default_check_level(), pa::CheckLevel::off);
#endif
}

TEST(AnalysisDefaults, ReportRendersKindAndSeverity) {
  pa::Report rep;
  rep.add(pa::Finding{pa::FindingKind::deadlock, pa::Severity::error, "m", {"d1", "d2"}});
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.mentions("d2"));
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("deadlock"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  pa::Report info_only;
  info_only.add(pa::Finding{pa::FindingKind::data_race, pa::Severity::info, "note", {}});
  EXPECT_TRUE(info_only.clean());  // info/warning findings don't fail a run
}
