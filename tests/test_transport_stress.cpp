// Stress coverage for the shm slot-ring protocols (DESIGN.md §15/§16)
// at the ring-operation level, below the transport seam: slot-ring
// wraparound FIFO under concurrent posters, spill-arena exhaustion with
// producers blocked on the free list, the give-up path, and — fast mode
// only — a producer SIGKILLed between claiming a slot and publishing it
// (driven from a forked child via test_hooks), whose hole the consumer
// must prove dead and skip.  Every multi-producer case runs under both
// ring protocols (PEACHY_SHM_RING=fast|locked), and the whole file is
// part of the asan/tsan matrix in scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mpi/shm_ring.hpp"
#include "mpi/wire.hpp"
#include "support/check.hpp"

namespace pd = peachy::mpi::detail;

namespace {

/// A fresh anonymous-named segment in the requested ring mode.  The
/// name is unlinked immediately (the mapping stays alive), so a test
/// abort can't leak /dev/shm entries.
pd::ShmView make_segment(const char* mode, int nprocs, std::size_t spill_bytes) {
  static std::atomic<int> counter{0};
  setenv("PEACHY_SHM_RING", mode, 1);
  const std::string name = "/peachy.test." + std::to_string(getpid()) + "." +
                           std::to_string(counter.fetch_add(1));
  pd::ShmView view = pd::shm_create(name, nprocs, spill_bytes);
  shm_unlink(name.c_str());
  unsetenv("PEACHY_SHM_RING");
  return view;
}

pd::FrameHeader data_header(int source, int tag, std::uint64_t bytes) {
  pd::FrameHeader h;
  h.kind = static_cast<std::uint8_t>(pd::WireKind::kData);
  h.source = source;
  h.tag = tag;
  h.bytes = bytes;
  return h;
}

class ShmRingStress : public ::testing::TestWithParam<const char*> {};

}  // namespace

// The ring has 64 slots; push an order of magnitude more through it with
// the consumer running concurrently, so head/tail wrap the slot array
// many times and every slot is recycled under load.  Inline payloads
// carry (producer, index) so the consumer can verify exact per-producer
// FIFO and zero loss/duplication.
TEST_P(ShmRingStress, WraparoundFifoUnderConcurrentPosters) {
  static constexpr int kProducers = 4;
  static constexpr int kPerProducer = 600;  // 2400 frames through 64 slots
  pd::ShmView view = make_segment(GetParam(), kProducers + 1, 64 << 10);

  std::thread consumer{[&view] {
    std::atomic<bool> stop{false};
    std::vector<int> next(kProducers, 0);
    pd::FrameHeader h;
    std::vector<std::byte> payload;
    for (int got = 0; got < kProducers * kPerProducer; ++got) {
      ASSERT_TRUE(pd::ring_pop(view, 0, h, payload, stop));
      ASSERT_EQ(payload.size(), 2 * sizeof(std::uint32_t));
      std::uint32_t vals[2];
      std::memcpy(vals, payload.data(), sizeof vals);
      const int src = static_cast<int>(vals[0]);
      ASSERT_GE(src, 1);
      ASSERT_LE(src, kProducers);
      // Per-producer FIFO: producer src's frames arrive in push order.
      EXPECT_EQ(static_cast<int>(vals[1]), next[src - 1]);
      EXPECT_EQ(h.tag, static_cast<int>(vals[1]));
      ++next[src - 1];
    }
  }};

  std::vector<std::thread> producers;
  for (int p = 1; p <= kProducers; ++p) {
    producers.emplace_back([&view, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint32_t vals[2] = {static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(i)};
        const pd::FrameHeader h = data_header(p, i, sizeof vals);
        ASSERT_TRUE(pd::ring_push(view, 0, p, h,
                                  reinterpret_cast<const std::byte*>(vals)));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  consumer.join();
  pd::shm_detach(view);
}

// Spill payloads (> kShmInlineBytes) against an arena sized for only a
// couple of blocks: producers must block on arena exhaustion and resume
// as the consumer frees, with total traffic ~100x the arena.  Contents
// are verified end to end, so a double-allocated or early-freed spill
// block shows up as corruption, not just a crash.
TEST_P(ShmRingStress, SpillArenaExhaustionUnderConcurrentPosters) {
  static constexpr int kProducers = 3;
  static constexpr int kPerProducer = 60;
  static constexpr std::size_t kPayload = 12 << 10;  // 12 KiB, always spilled
  // Room for ~5 blocks (+ free-list headers), so exhaustion is constant.
  pd::ShmView view = make_segment(GetParam(), kProducers + 1, 64 << 10);

  std::thread consumer{[&view] {
    std::atomic<bool> stop{false};
    pd::FrameHeader h;
    std::vector<std::byte> payload;
    for (int got = 0; got < kProducers * kPerProducer; ++got) {
      ASSERT_TRUE(pd::ring_pop(view, 0, h, payload, stop));
      ASSERT_EQ(payload.size(), kPayload);
      const auto expect = static_cast<std::byte>((h.source * 31 + h.tag) & 0xff);
      EXPECT_EQ(payload.front(), expect);
      EXPECT_EQ(payload.back(), expect);
      EXPECT_EQ(payload[kPayload / 2], expect);
    }
  }};

  std::vector<std::thread> producers;
  for (int p = 1; p <= kProducers; ++p) {
    producers.emplace_back([&view, p] {
      std::vector<std::byte> payload(kPayload);
      for (int i = 0; i < kPerProducer; ++i) {
        std::memset(payload.data(), (p * 31 + i) & 0xff, payload.size());
        const pd::FrameHeader h = data_header(p, i, kPayload);
        ASSERT_TRUE(pd::ring_push(view, 0, p, h, payload.data()));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  consumer.join();
  pd::shm_detach(view);
}

// A sender must bail out of a full ring (and of arena exhaustion) when
// its give_up flag trips — the path that stops survivors from piling
// frames into a dead process's never-drained ring.
TEST_P(ShmRingStress, GiveUpAbandonsFullRing) {
  pd::ShmView view = make_segment(GetParam(), 2, 64 << 10);
  const pd::FrameHeader h = data_header(1, 0, sizeof(int));
  const int v = 7;
  const auto* bytes = reinterpret_cast<const std::byte*>(&v);
  for (std::size_t i = 0; i < pd::kShmRingSlots; ++i) {
    ASSERT_TRUE(pd::ring_push(view, 0, 1, h, bytes));
  }
  std::atomic<bool> give_up{true};
  EXPECT_FALSE(pd::ring_push(view, 0, 1, h, bytes, &give_up));

  // Same bail-out from spill-arena exhaustion: one giant block holds the
  // arena, so the next spill push can only wait — or give up.
  pd::ShmView view2 = make_segment(GetParam(), 2, 64 << 10);
  std::vector<std::byte> big(48 << 10);
  ASSERT_TRUE(pd::ring_push(view2, 0, 1, data_header(1, 1, big.size()), big.data()));
  EXPECT_FALSE(pd::ring_push(view2, 0, 1, data_header(1, 2, big.size()), big.data(), &give_up));

  pd::shm_detach(view);
  pd::shm_detach(view2);
}

INSTANTIATE_TEST_SUITE_P(Modes, ShmRingStress, ::testing::Values("fast", "locked"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string{info.param};
                         });

// Worlds wider than the claim register auto-select the locked protocol,
// whose pushes never index the register — so a rank past
// kShmLauncherProc must be accepted there (rank 65's first send in a
// 66-proc shm launch), and rejected only under the fast protocol.
TEST(ShmRingModes, LockedModeAcceptsWidePusherIndex) {
  const int wide_nprocs = pd::kShmMaxFastProcs + 2;
  pd::ShmView wide = make_segment("fast", wide_nprocs, 4 << 10);
  ASSERT_EQ(wide.header()->mode, pd::ShmRingMode::kLocked);  // auto-fallback won

  const int v = 41;
  const auto* bytes = reinterpret_cast<const std::byte*>(&v);
  const int widest_rank = wide_nprocs - 1;  // 65 > kShmLauncherProc
  ASSERT_TRUE(pd::ring_push(wide, 0, widest_rank, data_header(widest_rank, 7, sizeof v), bytes));

  std::atomic<bool> stop{false};
  pd::FrameHeader h;
  std::vector<std::byte> payload;
  ASSERT_TRUE(pd::ring_pop(wide, 0, h, payload, stop));
  EXPECT_EQ(h.tag, 7);
  EXPECT_EQ(h.source, widest_rank);
  pd::shm_detach(wide);

  // The fast protocol still enforces the register bound.
  pd::ShmView fast = make_segment("fast", 2, 4 << 10);
  ASSERT_EQ(fast.header()->mode, pd::ShmRingMode::kFast);
  EXPECT_THROW(
      pd::ring_push(fast, 0, pd::kShmLauncherProc + 1, data_header(1, 8, sizeof v), bytes),
      peachy::Error);
  pd::shm_detach(fast);
}

// A typo in PEACHY_SHM_RING must not silently select the fast protocol
// when the user asked for the robustness fallback: anything other than
// fast|locked is a named error, raised before the segment is created.
TEST(ShmRingModes, RejectsUnknownRingModeEnv) {
  const std::string name = "/peachy.test.badmode." + std::to_string(getpid());
  setenv("PEACHY_SHM_RING", "lock", 1);
  EXPECT_THROW((void)pd::shm_create(name, 2, 4 << 10), peachy::Error);
  unsetenv("PEACHY_SHM_RING");
  shm_unlink(name.c_str());  // must be a no-op: nothing was created
}

#if defined(__linux__)
// The fast protocol's crash window: a forked child claims a slot (head
// CAS done, claim register set) and is SIGKILLed before publishing seq.
// The consumer sees head past an unpublished slot — a hole it may skip
// only once the launcher marks the child dead.  Frames published on
// either side of the hole must still arrive, in order.
TEST(ShmRingCrash, DeadProducerHoleIsSkippedInFastMode) {
  pd::ShmView view = make_segment("fast", 2, 64 << 10);
  ASSERT_EQ(view.header()->mode, pd::ShmRingMode::kFast);

  const int a = 1;
  ASSERT_TRUE(pd::ring_push(view, 0, 0, data_header(0, 10, sizeof a),
                            reinterpret_cast<const std::byte*>(&a)));

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: die exactly between claim and publish.
    pd::test_hooks::g_die_between_claim_and_publish.store(true);
    const int c = 99;
    (void)pd::ring_push(view, 0, 1, data_header(1, 11, sizeof c),
                        reinterpret_cast<const std::byte*>(&c));
    _exit(0);  // unreachable — the hook raises SIGKILL
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const int b = 2;
  ASSERT_TRUE(pd::ring_push(view, 0, 0, data_header(0, 12, sizeof b),
                            reinterpret_cast<const std::byte*>(&b)));
  // head moved past the child's claimed slot; the slot is unpublished.
  ASSERT_EQ(view.ring(0)->head.load(), 3u);
  ASSERT_EQ(view.ring(0)->claim[1].load(), 1u);

  // What the launcher does on reaping the death — without it the
  // consumer would wait on the hole forever.
  pd::shm_mark_dead(view, 1);

  std::atomic<bool> stop{false};
  pd::FrameHeader h;
  std::vector<std::byte> payload;
  ASSERT_TRUE(pd::ring_pop(view, 0, h, payload, stop));
  EXPECT_EQ(h.tag, 10);
  ASSERT_TRUE(pd::ring_pop(view, 0, h, payload, stop));  // skips the hole
  EXPECT_EQ(h.tag, 12);
  EXPECT_EQ(view.ring(0)->tail.load(), 3u);

  // The recycled slot is reusable: fill a full lap and drain it.
  for (int i = 0; i < static_cast<int>(pd::kShmRingSlots); ++i) {
    ASSERT_TRUE(pd::ring_push(view, 0, 0, data_header(0, 100 + i, sizeof i),
                              reinterpret_cast<const std::byte*>(&i)));
  }
  for (int i = 0; i < static_cast<int>(pd::kShmRingSlots); ++i) {
    ASSERT_TRUE(pd::ring_pop(view, 0, h, payload, stop));
    EXPECT_EQ(h.tag, 100 + i);
  }
  pd::shm_detach(view);
}
#endif  // __linux__
