// Tests for the neural-network module: matrix algebra against hand
// references, gradient checking (finite differences vs backprop), training
// convergence, determinism, the ensemble uncertainty decomposition, and
// the synthetic digits generator.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/digits.hpp"
#include "nn/ensemble.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "rng/splitmix.hpp"
#include "support/check.hpp"

namespace pn = peachy::nn;

// ---- matrix --------------------------------------------------------------------

TEST(Matrix, MatmulHandReference) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  pn::Matrix a{2, 2, {1, 2, 3, 4}};
  pn::Matrix b{2, 2, {5, 6, 7, 8}};
  const auto c = pn::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, TransposedProductsMatchExplicit) {
  pn::Matrix a{3, 2, {1, 2, 3, 4, 5, 6}};
  pn::Matrix b{3, 2, {7, 8, 9, 10, 11, 12}};
  // AᵀB: 2x2.
  const auto atb = pn::matmul_at_b(a, b);
  EXPECT_DOUBLE_EQ(atb(0, 0), 1 * 7 + 3 * 9 + 5 * 11);
  EXPECT_DOUBLE_EQ(atb(1, 1), 2 * 8 + 4 * 10 + 6 * 12);
  // ABᵀ: 3x3.
  const auto abt = pn::matmul_a_bt(a, b);
  EXPECT_DOUBLE_EQ(abt(0, 0), 1 * 7 + 2 * 8);
  EXPECT_DOUBLE_EQ(abt(2, 1), 5 * 9 + 6 * 10);
}

TEST(Matrix, ShapeChecks) {
  pn::Matrix a{2, 3};
  pn::Matrix b{2, 3};
  EXPECT_THROW((void)pn::matmul(a, b), peachy::Error);
  EXPECT_THROW((void)a(2, 0), peachy::Error);
  EXPECT_THROW((pn::Matrix{2, 2, {1.0}}), peachy::Error);
}

TEST(Matrix, Axpy) {
  pn::Matrix a{1, 2, {1, 2}};
  pn::Matrix b{1, 2, {10, 20}};
  pn::axpy(a, b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 6);
  EXPECT_DOUBLE_EQ(a(0, 1), 12);
}

// ---- softmax & loss ---------------------------------------------------------------

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  pn::Matrix logits{2, 3, {1.0, 2.0, 3.0, -5.0, 0.0, 5.0}};
  const auto p = pn::softmax_rows(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < 3; ++j) sum += p(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p(0, 2), p(0, 1));
  EXPECT_GT(p(0, 1), p(0, 0));
}

TEST(Softmax, NumericallyStableForHugeLogits) {
  pn::Matrix logits{1, 2, {1000.0, 999.0}};
  const auto p = pn::softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_GT(p(0, 0), p(0, 1));
}

TEST(CrossEntropy, KnownValue) {
  pn::Matrix p{1, 2, {0.25, 0.75}};
  const std::vector<std::int32_t> y{1};
  EXPECT_NEAR(pn::cross_entropy(p, y), -std::log(0.75), 1e-12);
}

TEST(CrossEntropy, RejectsBadLabels) {
  pn::Matrix p{1, 2, {0.5, 0.5}};
  const std::vector<std::int32_t> y{5};
  EXPECT_THROW((void)pn::cross_entropy(p, y), peachy::Error);
}

// ---- gradient check ---------------------------------------------------------------

TEST(Mlp, BackpropMatchesFiniteDifferences) {
  // One SGD step on a tiny net must decrease loss in the direction
  // predicted by finite differences.  We verify the *loss decrease* under
  // a single tiny-LR step matches lr * ||grad||² to first order.
  pn::TrainConfig cfg;
  cfg.hidden = {5};
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.seed = 3;
  constexpr double kLr = 1e-4;
  cfg.learning_rate = kLr;

  pn::Dataset data;
  data.classes = 3;
  data.x = pn::Matrix{8, 4};
  data.y = {0, 1, 2, 0, 1, 2, 0, 1};
  peachy::rng::SplitMix64 gen{7};
  for (double& v : data.x.values()) v = gen.next_double();

  pn::Mlp net{4, 3, cfg};
  const double before = net.loss(data);
  (void)net.train(data);
  const double after = net.loss(data);
  // A gradient step with small LR must strictly decrease the loss.
  EXPECT_LT(after, before);
  // And the decrease must be tiny (first-order in lr), not catastrophic.
  EXPECT_GT(after, before - 1.0);
}

TEST(Mlp, LearnsLinearlySeparableProblem) {
  // Two well separated Gaussian point clouds in 2-D.
  pn::Dataset data;
  data.classes = 2;
  constexpr std::size_t kN = 200;
  data.x = pn::Matrix{kN, 2};
  data.y.resize(kN);
  peachy::rng::SplitMix64 gen{11};
  for (std::size_t i = 0; i < kN; ++i) {
    const int cls = static_cast<int>(i % 2);
    data.x(i, 0) = (cls ? 2.0 : -2.0) + gen.next_double();
    data.x(i, 1) = (cls ? -2.0 : 2.0) + gen.next_double();
    data.y[i] = cls;
  }
  pn::TrainConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 30;
  cfg.learning_rate = 0.1;
  cfg.seed = 5;
  pn::Mlp net{2, 2, cfg};
  (void)net.train(data);
  EXPECT_GT(net.accuracy(data), 0.97);
}

TEST(Mlp, TrainingIsDeterministicForFixedSeed) {
  pn::DigitsSpec dspec;
  const pn::SyntheticDigits digits{dspec};
  const auto data = digits.make_dataset(100, 9);
  pn::TrainConfig cfg;
  cfg.hidden = {16};
  cfg.epochs = 2;
  cfg.seed = 42;
  pn::Mlp a{data.features(), 10, cfg};
  pn::Mlp b{data.features(), 10, cfg};
  EXPECT_DOUBLE_EQ(a.train(data), b.train(data));
  EXPECT_DOUBLE_EQ(a.loss(data), b.loss(data));
}

TEST(Mlp, MomentumAcceleratesOnThisProblem) {
  // Sanity: momentum changes the trajectory (not a performance claim).
  pn::DigitsSpec dspec;
  const pn::SyntheticDigits digits{dspec};
  const auto data = digits.make_dataset(60, 13);
  pn::TrainConfig cfg;
  cfg.hidden = {12};
  cfg.epochs = 3;
  cfg.seed = 4;
  pn::Mlp plain{data.features(), 10, cfg};
  cfg.momentum = 0.9;
  pn::Mlp mom{data.features(), 10, cfg};
  const double l_plain = plain.train(data);
  const double l_mom = mom.train(data);
  EXPECT_NE(l_plain, l_mom);
}

TEST(Mlp, RejectsInvalidConfigs) {
  pn::TrainConfig cfg;
  cfg.learning_rate = 0.0;
  EXPECT_THROW((pn::Mlp{4, 2, cfg}), peachy::Error);
  cfg = {};
  cfg.momentum = 1.0;
  EXPECT_THROW((pn::Mlp{4, 2, cfg}), peachy::Error);
  cfg = {};
  cfg.hidden = {0};
  EXPECT_THROW((pn::Mlp{4, 2, cfg}), peachy::Error);
  EXPECT_THROW((pn::Mlp{0, 2, pn::TrainConfig{}}), peachy::Error);
  EXPECT_THROW((pn::Mlp{4, 1, pn::TrainConfig{}}), peachy::Error);
}

TEST(TrainConfig, DescribesItself) {
  pn::TrainConfig cfg;
  cfg.hidden = {32, 16};
  cfg.learning_rate = 0.05;
  const auto s = cfg.to_string();
  EXPECT_NE(s.find("h=[32,16]"), std::string::npos);
  EXPECT_NE(s.find("lr=0.05"), std::string::npos);
}

// ---- digits ----------------------------------------------------------------------

TEST(Digits, TemplatesAreDistinct) {
  const pn::SyntheticDigits digits;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      EXPECT_NE(digits.clean_template(a), digits.clean_template(b)) << a << " vs " << b;
    }
  }
}

TEST(Digits, RenderIsNoisyButRecognizable) {
  // Shift disabled: a 1-pixel translation defeats naive template matching
  // (strokes are 1 px wide at side=16) — translation robustness is the
  // classifier's job, not this test's.
  pn::DigitsSpec spec;
  spec.max_shift = 0;
  const pn::SyntheticDigits digits{spec};
  peachy::rng::SplitMix64 gen{1};
  const auto img = digits.render(8, gen);
  EXPECT_EQ(img.size(), digits.features());
  for (double px : img) {
    EXPECT_GE(px, 0.0);
    EXPECT_LE(px, 1.0);
  }
  // A rendered 8 must be nearest (L2) to the 8 template among all
  // templates.
  double best = 1e300;
  int best_digit = -1;
  for (int d = 0; d < 10; ++d) {
    const auto tpl = digits.clean_template(d);
    double dist = 0;
    for (std::size_t i = 0; i < img.size(); ++i) {
      dist += (img[i] - tpl[i]) * (img[i] - tpl[i]);
    }
    if (dist < best) {
      best = dist;
      best_digit = d;
    }
  }
  EXPECT_EQ(best_digit, 8);
}

TEST(Digits, MorphInterpolates) {
  pn::DigitsSpec spec;
  spec.noise = 0.0;
  spec.max_shift = 0;
  spec.stroke_jitter = 0.0;
  const pn::SyntheticDigits digits{spec};
  peachy::rng::SplitMix64 gen{2};
  const auto pure_a = digits.render_morph(4, 9, 0.0, gen);
  EXPECT_EQ(pure_a, digits.clean_template(4));
  const auto pure_b = digits.render_morph(4, 9, 1.0, gen);
  EXPECT_EQ(pure_b, digits.clean_template(9));
  EXPECT_THROW((void)digits.render_morph(4, 9, 1.5, gen), peachy::Error);
}

TEST(Digits, DatasetBalancedAndLearnable) {
  const pn::SyntheticDigits digits;
  const auto data = digits.make_dataset(200, 3);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.classes, 10u);
  std::vector<int> counts(10, 0);
  for (auto y : data.y) ++counts[y];
  for (int c : counts) EXPECT_EQ(c, 20);

  pn::TrainConfig cfg;
  cfg.hidden = {24};
  cfg.epochs = 15;
  cfg.learning_rate = 0.2;
  cfg.seed = 8;
  pn::Mlp net{data.features(), 10, cfg};
  (void)net.train(data);
  EXPECT_GT(net.accuracy(data), 0.9);
}

TEST(Digits, AsciiArtShape) {
  const pn::SyntheticDigits digits;
  const auto art = pn::SyntheticDigits::ascii_art(digits.clean_template(1), digits.side());
  // side rows of side chars + newlines.
  EXPECT_EQ(art.size(), digits.side() * (digits.side() + 1));
  EXPECT_THROW((void)pn::SyntheticDigits::ascii_art(std::vector<double>(3), 4), peachy::Error);
}

TEST(Digits, RejectsBadSpecs) {
  pn::DigitsSpec bad;
  bad.side = 4;
  EXPECT_THROW((pn::SyntheticDigits{bad}), peachy::Error);
  const pn::SyntheticDigits ok;
  peachy::rng::SplitMix64 gen{1};
  EXPECT_THROW((void)ok.render(10, gen), peachy::Error);
}

// ---- ensemble -----------------------------------------------------------------------

namespace {

pn::EnsembleClassifier make_trained_ensemble(const pn::Dataset& data, std::size_t members) {
  pn::EnsembleClassifier ens;
  for (std::size_t m = 0; m < members; ++m) {
    pn::TrainConfig cfg;
    cfg.hidden = {24};
    cfg.epochs = 12;
    cfg.learning_rate = 0.2;
    cfg.seed = 100 + m;  // independent initializations, same data
    auto net = std::make_shared<pn::Mlp>(data.features(), data.classes, cfg);
    (void)net->train(data);
    ens.add(std::move(net));
  }
  return ens;
}

}  // namespace

TEST(Ensemble, MeanProbabilitiesAreValid) {
  const pn::SyntheticDigits digits;
  const auto data = digits.make_dataset(150, 21);
  const auto ens = make_trained_ensemble(data, 3);
  const auto p = ens.predict_proba(data.x);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GE(p(i, j), 0.0);
      sum += p(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GT(ens.accuracy(data), 0.85);
}

TEST(Ensemble, AmbiguousInputHasHigherUncertainty) {
  // The Fig. 4 reproduction property: a clean digit gets low ensemble
  // uncertainty; a 4/9 morph gets clearly higher uncertainty.
  const pn::SyntheticDigits digits;
  const auto data = digits.make_dataset(400, 33);
  const auto ens = make_trained_ensemble(data, 5);

  peachy::rng::SplitMix64 gen{9};
  pn::Matrix clean{1, digits.features()};
  const auto c = digits.render(4, gen);
  std::copy(c.begin(), c.end(), clean.row(0).begin());
  pn::Matrix morph{1, digits.features()};
  const auto m = digits.render_morph(4, 9, 0.5, gen);
  std::copy(m.begin(), m.end(), morph.row(0).begin());

  const auto clean_pred = ens.predict_uncertain(clean).front();
  const auto morph_pred = ens.predict_uncertain(morph).front();
  EXPECT_EQ(clean_pred.label, 4);
  EXPECT_GT(clean_pred.mean_probability, 0.8);
  EXPECT_GT(morph_pred.entropy, clean_pred.entropy);
}

TEST(Ensemble, UncertaintyFieldsConsistent) {
  const pn::SyntheticDigits digits;
  const auto data = digits.make_dataset(100, 5);
  const auto ens = make_trained_ensemble(data, 3);
  const auto preds = ens.predict_uncertain(data.x);
  ASSERT_EQ(preds.size(), 100u);
  for (const auto& p : preds) {
    EXPECT_GE(p.label, 0);
    EXPECT_LT(p.label, 10);
    EXPECT_GE(p.mean_probability, 0.0);
    EXPECT_LE(p.mean_probability, 1.0);
    EXPECT_GE(p.uncertainty, 0.0);
    EXPECT_GE(p.entropy, 0.0);
    EXPECT_LE(p.entropy, std::log(10.0) + 1e-9);
    EXPECT_GE(p.mutual_information, 0.0);
    EXPECT_EQ(p.member_votes.size(), 3u);
  }
}

TEST(Ensemble, RejectsShapeMismatchAndEmpty) {
  pn::EnsembleClassifier ens;
  EXPECT_THROW((void)ens.predict_proba(pn::Matrix{1, 4}), peachy::Error);
  pn::TrainConfig cfg;
  ens.add(std::make_shared<pn::Mlp>(4, 2, cfg));
  EXPECT_THROW(ens.add(std::make_shared<pn::Mlp>(5, 2, cfg)), peachy::Error);
  EXPECT_THROW(ens.add(nullptr), peachy::Error);
  EXPECT_EQ(ens.size(), 1u);
  EXPECT_THROW((void)ens.member(3), peachy::Error);
}
