// Edge-case and stress tests across modules: boundary parameters, empty
// and degenerate inputs, wildcard messaging under load, and behaviours at
// the limits the assignments' specs allow.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "data/points.hpp"
#include "heat/heat.hpp"
#include "kmeans/kmeans.hpp"
#include "mpi/mpi.hpp"
#include "nn/mlp.hpp"
#include "rng/lcg.hpp"
#include "rng/philox.hpp"
#include "rng/shared_stream.hpp"
#include "spark/pair_rdd.hpp"
#include "spark/rdd.hpp"
#include "support/check.hpp"
#include "traffic/traffic.hpp"

namespace pm = peachy::mpi;

// ---- mini-MPI under load --------------------------------------------------------

TEST(MpiStress, ManyInterleavedTagsAndSources) {
  // 4 ranks flood rank 0 with tagged messages; rank 0 drains them with
  // wildcard source but specific tags, in a tag order different from the
  // send order.
  pm::run(4, [](pm::Comm& c) {
    constexpr int kPerTag = 25;
    if (c.rank() != 0) {
      for (int t = 0; t < 4; ++t) {
        for (int i = 0; i < kPerTag; ++i) {
          c.send_value<int>(0, t, c.rank() * 1000 + t * 100 + i);
        }
      }
    } else {
      for (int t = 3; t >= 0; --t) {  // reverse tag order
        for (int i = 0; i < 3 * kPerTag; ++i) {
          const int v = c.recv_value<int>(pm::kAnySource, t);
          EXPECT_EQ((v / 100) % 10, t);  // tag encoded in the payload
        }
      }
      EXPECT_FALSE(c.probe(pm::kAnySource, pm::kAnyTag));  // all drained
    }
  });
}

TEST(MpiStress, LargePayloadBroadcast) {
  pm::run(4, [](pm::Comm& c) {
    std::vector<double> data;
    if (c.rank() == 0) data.assign(1 << 18, 1.25);  // 2 MB
    c.broadcast(data, 0);
    ASSERT_EQ(data.size(), 1u << 18);
    EXPECT_DOUBLE_EQ(data.front(), 1.25);
    EXPECT_DOUBLE_EQ(data.back(), 1.25);
  });
}

TEST(MpiEdge, EmptyPayloadsTravel) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 0, std::span<const int>{});
    } else {
      EXPECT_TRUE(c.recv<int>(0, 0).empty());
    }
    // Collectives with empty contributions.
    const auto all = c.allgather<int>(std::span<const int>{});
    EXPECT_TRUE(all.empty());
    std::vector<int> empty;
    const auto mine = c.scatter_blocks<int>(empty, 0);
    EXPECT_TRUE(mine.empty());
  });
}

TEST(MpiEdge, AnyTagReceivesInPostOrder) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 5, 50);
      c.send_value<int>(1, 9, 90);
    } else {
      pm::Status st;
      EXPECT_EQ(c.recv_value<int>(0, pm::kAnyTag, &st), 50);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(c.recv_value<int>(0, pm::kAnyTag, &st), 90);
      EXPECT_EQ(st.tag, 9);
    }
  });
}

// ---- rng at the limits ------------------------------------------------------------

TEST(RngEdge, SharedStreamHugePositions) {
  // Positions beyond 2^40 must still be consistent with composition.
  const peachy::rng::SharedStream<peachy::rng::Lcg64> stream{7};
  auto a = stream.cursor((1ULL << 40) + 12345);
  peachy::rng::Lcg64 b{7};
  b.discard(1ULL << 40);
  b.discard(12345);
  EXPECT_EQ(a.state(), b.state());
}

TEST(RngEdge, PhiloxIndexBeyond32Bits) {
  peachy::rng::Philox4x32 g{3};
  const std::uint64_t pos = (1ULL << 36) + 5;
  g.set_index(pos);
  EXPECT_EQ(g.index(), pos);
  EXPECT_EQ(g.next_u32(), g.at(pos));
}

TEST(RngEdge, LeapfrogSingleLaneIsIdentity) {
  peachy::rng::LeapfrogView<peachy::rng::Lcg64> view{11, 0, 1};
  peachy::rng::Lcg64 plain{11};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(view.next_u64(), plain.next_u64());
}

// ---- k-means boundary parameters -----------------------------------------------------

TEST(KmeansEdge, KEqualsOneAndKEqualsN) {
  peachy::data::BlobsSpec spec;
  spec.points_per_class = 10;
  spec.classes = 2;
  spec.dims = 2;
  const auto points = peachy::data::gaussian_blobs(spec).points;

  peachy::kmeans::Options opts;
  opts.k = 1;
  const auto one = peachy::kmeans::cluster_sequential(points, opts);
  for (auto a : one.assignment) EXPECT_EQ(a, 0);
  // The single centroid is the global mean.
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0;
    for (std::size_t i = 0; i < points.size(); ++i) mean += points.at(i, j);
    mean /= static_cast<double>(points.size());
    EXPECT_NEAR(one.centroids.at(0, j), mean, 1e-9);
  }

  opts.k = points.size();
  const auto all = peachy::kmeans::cluster_sequential(points, opts);
  // Every point its own cluster: inertia 0 (centroids are the points).
  EXPECT_NEAR(all.inertia, 0.0, 1e-18);
}

TEST(KmeansEdge, EmptyClusterKeepsItsCentroid) {
  // Two far-apart points, k=2 with seeds that place both centroids; then
  // force a degenerate case: three identical points with k=2 — one
  // cluster must go empty and its centroid must not move to NaN.
  peachy::data::PointSet points{3, 1, {5.0, 5.0, 5.0}};
  peachy::kmeans::Options opts;
  opts.k = 2;
  opts.max_iterations = 5;
  const auto res = peachy::kmeans::cluster_sequential(points, opts);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_FALSE(std::isnan(res.centroids.at(c, 0)));
  }
  EXPECT_NEAR(res.inertia, 0.0, 1e-18);
}

// ---- heat boundary parameters ----------------------------------------------------------

TEST(HeatEdge, StabilityBoundaryAlphaHalf) {
  peachy::heat::Spec spec;
  spec.nx = 51;
  spec.nt = 2000;
  spec.alpha = 0.5;  // the stability limit: still non-divergent
  const auto u = peachy::heat::solve_serial(spec, peachy::heat::sine_mode(1));
  for (double v : u) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::fabs(v), 1.0 + 1e-9);
  }
}

TEST(HeatEdge, ZeroStepsReturnsInitialConditions) {
  peachy::heat::Spec spec;
  spec.nx = 11;
  spec.nt = 0;
  const auto u = peachy::heat::solve_serial(spec, [](double s) { return s; });
  EXPECT_DOUBLE_EQ(u[5], 0.5);
  EXPECT_DOUBLE_EQ(u.front(), spec.left_bc);
}

TEST(HeatEdge, MinimumGridThreePoints) {
  peachy::heat::Spec spec;
  spec.nx = 3;
  spec.nt = 10;
  spec.left_bc = 1.0;
  spec.right_bc = 3.0;
  spec.alpha = 0.5;
  const auto u = peachy::heat::solve_serial(spec, [](double) { return 0.0; });
  // One interior point relaxes to the average of the boundaries.
  EXPECT_NEAR(u[1], 2.0, 1e-9);
}

// ---- traffic boundary parameters ----------------------------------------------------------

TEST(TrafficEdge, AlwaysSlowdownStillValid) {
  peachy::traffic::Spec spec;
  spec.road_length = 100;
  spec.cars = 30;
  spec.p_slow = 1.0;  // every car brakes every step
  std::vector<peachy::traffic::State> snaps;
  (void)peachy::traffic::run_serial(spec, 50, &snaps);
  // p=1 caps achievable speed at v_max-1 (accelerate then always slow).
  for (const auto& st : snaps) {
    for (int v : st.vel) EXPECT_LE(v, spec.v_max - 1);
  }
}

TEST(TrafficEdge, VmaxOneBehavesLikeASEP) {
  // v_max=1 reduces NaSch to the asymmetric exclusion process: cars only
  // hop one cell into empty space.
  peachy::traffic::Spec spec;
  spec.road_length = 60;
  spec.cars = 20;
  spec.v_max = 1;
  std::vector<peachy::traffic::State> snaps;
  (void)peachy::traffic::run_serial(spec, 40, &snaps);
  for (const auto& st : snaps) {
    for (int v : st.vel) EXPECT_LE(v, 1);
  }
}

// ---- spark degenerate shapes --------------------------------------------------------------

TEST(SparkEdge, MorePartitionsThanRecords) {
  auto ctx = peachy::spark::Context::create(2, 4);
  auto rdd = peachy::spark::parallelize(ctx, std::vector<int>{1, 2}, 16);
  EXPECT_EQ(rdd.partitions(), 16u);
  EXPECT_EQ(rdd.collect(), (std::vector<int>{1, 2}));
  EXPECT_EQ(rdd.map([](const int& x) { return x + 1; }).count(), 2u);
}

TEST(SparkEdge, FlatMapToNothing) {
  auto ctx = peachy::spark::Context::create(2, 2);
  auto rdd = peachy::spark::parallelize(ctx, std::vector<int>{1, 2, 3})
                 .flat_map([](const int&) { return std::vector<int>{}; });
  EXPECT_EQ(rdd.count(), 0u);
}

TEST(SparkEdge, ReduceByKeyAllSameKey) {
  auto ctx = peachy::spark::Context::create(2, 4);
  std::vector<std::pair<int, int>> data(100, {7, 1});
  const auto out =
      peachy::spark::reduce_by_key(peachy::spark::parallelize(ctx, data), std::plus<>{})
          .collect();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 7);
  EXPECT_EQ(out[0].second, 100);
}

TEST(SparkEdge, JoinWithEmptySideIsEmpty) {
  auto ctx = peachy::spark::Context::create(2, 3);
  std::vector<std::pair<int, int>> left{{1, 10}, {2, 20}};
  std::vector<std::pair<int, double>> right;
  const auto joined =
      peachy::spark::join(peachy::spark::parallelize(ctx, left),
                          peachy::spark::parallelize(ctx, right, 3));
  EXPECT_EQ(joined.count(), 0u);
}

// ---- nn degenerate shapes --------------------------------------------------------------------

TEST(NnEdge, BatchSizeLargerThanDataset) {
  peachy::nn::Dataset data;
  data.classes = 2;
  data.x = peachy::nn::Matrix{5, 3};
  data.y = {0, 1, 0, 1, 0};
  peachy::rng::Lcg64 gen{2};
  for (double& v : data.x.values()) v = gen.next_double();
  peachy::nn::TrainConfig cfg;
  cfg.hidden = {4};
  cfg.batch_size = 100;  // larger than n: a single batch per epoch
  cfg.epochs = 3;
  peachy::nn::Mlp net{3, 2, cfg};
  EXPECT_NO_THROW((void)net.train(data));
  EXPECT_EQ(net.predict(data.x).size(), 5u);
}

TEST(NnEdge, SingleExampleTraining) {
  peachy::nn::Dataset data;
  data.classes = 2;
  data.x = peachy::nn::Matrix{1, 2, {0.5, -0.5}};
  data.y = {1};
  peachy::nn::TrainConfig cfg;
  cfg.hidden = {3};
  cfg.epochs = 50;
  cfg.learning_rate = 0.5;
  peachy::nn::Mlp net{2, 2, cfg};
  (void)net.train(data);
  EXPECT_EQ(net.predict(data.x)[0], 1);  // memorizes the one example
}

// ---- data split determinism across sizes ---------------------------------------------------

TEST(DataEdge, SplitAlwaysKeepsBothSidesNonEmpty) {
  peachy::data::BlobsSpec spec;
  spec.points_per_class = 2;
  spec.classes = 1;
  spec.dims = 1;
  const auto tiny = peachy::data::gaussian_blobs(spec);  // 2 points
  for (double frac : {0.01, 0.5, 0.99}) {
    const auto split = peachy::data::train_test_split(tiny, frac, 1);
    EXPECT_GE(split.train.size(), 1u) << frac;
    EXPECT_GE(split.test.size(), 1u) << frac;
  }
}
