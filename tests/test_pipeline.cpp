// Tests for the data-science-pipeline assignment: the generic stage
// runner's contract, and the Fig. 2 crime workflow against its serial
// oracle — including partition-count invariance and the three analysis
// problems' cross-consistency.

#include <gtest/gtest.h>

#include <numeric>

#include "pipeline/crime.hpp"
#include "pipeline/pipeline.hpp"
#include "support/check.hpp"

namespace pp = peachy::pipeline;

// ---- stage runner -------------------------------------------------------------

TEST(Pipeline, RunsStagesInOrderAndTimesThem) {
  pp::Pipeline pipe;
  std::vector<int> order;
  pipe.stage("first", [&] { order.push_back(1); })
      .stage("second", [&] { order.push_back(2); })
      .stage("third", [&] { order.push_back(3); });
  pipe.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  ASSERT_EQ(pipe.timings().size(), 3u);
  EXPECT_EQ(pipe.timings()[1].name, "second");
  EXPECT_GE(pipe.total_seconds(), 0.0);
  EXPECT_NE(pipe.report().find("second"), std::string::npos);
}

TEST(Pipeline, FailurePropagatesWithStageName) {
  pp::Pipeline pipe;
  pipe.stage("ok", [] {}).stage("boom", [] { throw std::runtime_error{"bad data"}; });
  try {
    pipe.run();
    FAIL() << "expected throw";
  } catch (const peachy::Error& e) {
    EXPECT_NE(std::string{e.what()}.find("boom"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("bad data"), std::string::npos);
  }
}

TEST(Pipeline, GuardsMisuse) {
  pp::Pipeline empty;
  EXPECT_THROW(empty.run(), peachy::Error);
  pp::Pipeline pipe;
  pipe.stage("a", [] {});
  pipe.run();
  EXPECT_THROW(pipe.run(), peachy::Error);
  EXPECT_THROW(pipe.stage("late", [] {}), peachy::Error);
  pp::Pipeline bad;
  EXPECT_THROW(bad.stage("", [] {}), peachy::Error);
}

// ---- crime workflow ------------------------------------------------------------

namespace {

pp::CrimeConfig small_config() {
  pp::CrimeConfig cfg;
  cfg.city.rows = 4;
  cfg.city.cols = 4;
  cfg.historic_arrests = 3000;
  cfg.current_arrests = 2000;
  cfg.partitions = 4;
  cfg.threads = 2;
  cfg.raster_width = 32;
  cfg.raster_height = 24;
  return cfg;
}

}  // namespace

TEST(Crime, MatchesSerialOracle) {
  const auto cfg = small_config();
  const auto report = pp::run_crime_pipeline(cfg);
  const auto oracle = pp::crime_rates_serial(cfg);
  ASSERT_EQ(report.rates.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(report.rates[i].nta, oracle[i].nta) << i;
    EXPECT_EQ(report.rates[i].arrests, oracle[i].arrests);
    EXPECT_EQ(report.rates[i].population, oracle[i].population);
    EXPECT_DOUBLE_EQ(report.rates[i].per_100k, oracle[i].per_100k);
  }
}

TEST(Crime, PartitionCountDoesNotChangeResults) {
  auto cfg = small_config();
  const auto base = pp::run_crime_pipeline(cfg);
  cfg.partitions = 1;
  cfg.threads = 1;
  const auto single = pp::run_crime_pipeline(cfg);
  ASSERT_EQ(base.rates.size(), single.rates.size());
  for (std::size_t i = 0; i < base.rates.size(); ++i) {
    EXPECT_EQ(base.rates[i].nta, single.rates[i].nta);
    EXPECT_EQ(base.rates[i].arrests, single.rates[i].arrests);
  }
  EXPECT_EQ(base.offenses, single.offenses);
  EXPECT_EQ(base.borough_by_year, single.borough_by_year);
}

TEST(Crime, CountsAreInternallyConsistent) {
  const auto report = pp::run_crime_pipeline(small_config());
  const auto cfg = small_config();
  EXPECT_EQ(report.events_ingested, cfg.historic_arrests + cfg.current_arrests);
  // All current-year events carry the target year.
  EXPECT_EQ(report.events_in_target_year, cfg.current_arrests);
  // Locator may drop boundary-edge events but nearly all must match.
  EXPECT_GE(report.events_located, report.events_in_target_year * 99 / 100);

  // Problem 1 totals == located events.
  std::int64_t rate_total = 0;
  for (const auto& r : report.rates) rate_total += r.arrests;
  EXPECT_EQ(static_cast<std::size_t>(rate_total), report.events_located);

  // Problem 2 totals == target-year events.
  std::int64_t offense_total = 0;
  for (const auto& [off, c] : report.offenses) offense_total += c;
  EXPECT_EQ(static_cast<std::size_t>(offense_total), report.events_in_target_year);

  // Problem 3: the target-year borough slice must sum to the located count.
  std::int64_t borough_year_total = 0;
  for (const auto& [borough, years] : report.borough_by_year) {
    const auto it = years.find(cfg.target_year);
    if (it != years.end()) borough_year_total += it->second;
  }
  EXPECT_EQ(static_cast<std::size_t>(borough_year_total), report.events_located);
}

TEST(Crime, RatesSortedDescending) {
  const auto report = pp::run_crime_pipeline(small_config());
  ASSERT_GT(report.rates.size(), 2u);
  for (std::size_t i = 1; i < report.rates.size(); ++i) {
    EXPECT_GE(report.rates[i - 1].per_100k, report.rates[i].per_100k);
  }
  for (const auto& r : report.rates) {
    EXPECT_GT(r.population, 0);
    EXPECT_NEAR(r.per_100k, 1e5 * static_cast<double>(r.arrests) /
                                static_cast<double>(r.population), 1e-9);
  }
}

TEST(Crime, HeatMapRendered) {
  const auto cfg = small_config();
  const auto report = pp::run_crime_pipeline(cfg);
  EXPECT_EQ(report.heat_map_pgm.rfind("P5\n32 24\n255\n", 0), 0u);
  // ASCII map has height rows and visible ink.
  EXPECT_EQ(std::count(report.heat_map_ascii.begin(), report.heat_map_ascii.end(), '\n'),
            static_cast<std::ptrdiff_t>(cfg.raster_height));
  EXPECT_NE(report.heat_map_ascii.find_first_not_of(" \n"), std::string::npos);
}

TEST(Crime, TelemetryPopulated) {
  const auto report = pp::run_crime_pipeline(small_config());
  EXPECT_EQ(report.stage_timings.size(), 7u);
  EXPECT_GT(report.engine.tasks, 0u);
  EXPECT_GT(report.engine.shuffles, 0u);  // reduce_by_key + join stages
  EXPECT_GT(report.engine.shuffle_records, 0u);
}

TEST(Crime, DeterministicForSeed) {
  const auto a = pp::run_crime_pipeline(small_config());
  const auto b = pp::run_crime_pipeline(small_config());
  ASSERT_EQ(a.rates.size(), b.rates.size());
  for (std::size_t i = 0; i < a.rates.size(); ++i) {
    EXPECT_EQ(a.rates[i].nta, b.rates[i].nta);
    EXPECT_EQ(a.rates[i].arrests, b.rates[i].arrests);
  }
  EXPECT_EQ(a.offenses, b.offenses);
}

TEST(Crime, ValidatesConfig) {
  auto cfg = small_config();
  cfg.partitions = 0;
  EXPECT_THROW((void)pp::run_crime_pipeline(cfg), peachy::Error);
}
