// Tests for the spark-like RDD engine: laziness, narrow/wide semantics,
// partition-count independence (the key correctness property of a shuffle
// engine), pair operations against serial oracles, caching, and lineage.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <set>
#include <string>

#include "spark/pair_rdd.hpp"
#include "spark/rdd.hpp"
#include "support/check.hpp"

namespace sp = peachy::spark;

namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

}  // namespace

// ---- sources & actions --------------------------------------------------------

TEST(Rdd, ParallelizeCollectRoundTrips) {
  auto ctx = sp::Context::create(2, 4);
  const auto data = iota_vec(100);
  auto rdd = sp::parallelize(ctx, data);
  EXPECT_EQ(rdd.collect(), data);
  EXPECT_EQ(rdd.count(), 100u);
  EXPECT_EQ(rdd.partitions(), 4u);
}

TEST(Rdd, ParallelizeHonorsExplicitPartitions) {
  auto ctx = sp::Context::create(2);
  auto rdd = sp::parallelize(ctx, iota_vec(10), 7);
  EXPECT_EQ(rdd.partitions(), 7u);
  EXPECT_EQ(rdd.collect(), iota_vec(10));
}

TEST(Rdd, EmptyDatasetWorks) {
  auto ctx = sp::Context::create(2, 3);
  auto rdd = sp::parallelize(ctx, std::vector<int>{});
  EXPECT_EQ(rdd.count(), 0u);
  EXPECT_TRUE(rdd.collect().empty());
  EXPECT_THROW((void)rdd.reduce(std::plus<>{}), peachy::Error);
}

TEST(Rdd, ReduceAndTake) {
  auto ctx = sp::Context::create(2, 4);
  auto rdd = sp::parallelize(ctx, iota_vec(101));
  EXPECT_EQ(rdd.reduce(std::plus<>{}), 101 * 100 / 2);
  EXPECT_EQ(rdd.take(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rdd.take(1000).size(), 101u);
}

// ---- laziness --------------------------------------------------------------------

TEST(Rdd, TransformationsAreLazy) {
  auto ctx = sp::Context::create(2, 2);
  auto counter = std::make_shared<std::atomic<int>>(0);
  auto rdd = sp::parallelize(ctx, iota_vec(10)).map([counter](const int& x) {
    counter->fetch_add(1);
    return x * 2;
  });
  EXPECT_EQ(counter->load(), 0);  // nothing ran yet
  (void)rdd.collect();
  EXPECT_EQ(counter->load(), 10);
}

TEST(Rdd, CacheAvoidsRecomputation) {
  auto ctx = sp::Context::create(2, 2);
  auto counter = std::make_shared<std::atomic<int>>(0);
  auto rdd = sp::parallelize(ctx, iota_vec(10)).map([counter](const int& x) {
    counter->fetch_add(1);
    return x;
  });
  rdd.cache();
  (void)rdd.collect();
  (void)rdd.collect();
  (void)rdd.count();
  EXPECT_EQ(counter->load(), 10);  // computed exactly once
}

TEST(Rdd, WithoutCacheEachActionRecomputes) {
  auto ctx = sp::Context::create(2, 2);
  auto counter = std::make_shared<std::atomic<int>>(0);
  auto rdd = sp::parallelize(ctx, iota_vec(10)).map([counter](const int& x) {
    counter->fetch_add(1);
    return x;
  });
  (void)rdd.collect();
  (void)rdd.collect();
  EXPECT_EQ(counter->load(), 20);
}

// ---- narrow transformations ---------------------------------------------------------

TEST(Rdd, MapFilterFlatMapChain) {
  auto ctx = sp::Context::create(2, 3);
  auto result = sp::parallelize(ctx, iota_vec(10))
                    .map([](const int& x) { return x * 10; })
                    .filter([](const int& x) { return x >= 30; })
                    .flat_map([](const int& x) { return std::vector<int>{x, x + 1}; })
                    .collect();
  std::vector<int> expect;
  for (int x = 30; x <= 90; x += 10) {
    expect.push_back(x);
    expect.push_back(x + 1);
  }
  EXPECT_EQ(result, expect);
}

TEST(Rdd, MapChangesElementType) {
  auto ctx = sp::Context::create(2, 2);
  auto strs = sp::parallelize(ctx, iota_vec(3))
                  .map([](const int& x) { return std::to_string(x); })
                  .collect();
  EXPECT_EQ(strs, (std::vector<std::string>{"0", "1", "2"}));
}

TEST(Rdd, UnionConcatenates) {
  auto ctx = sp::Context::create(2, 2);
  auto a = sp::parallelize(ctx, std::vector<int>{1, 2});
  auto b = sp::parallelize(ctx, std::vector<int>{3, 4, 5});
  auto u = a.union_with(b);
  EXPECT_EQ(u.partitions(), 4u);
  EXPECT_EQ(u.collect(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Rdd, SampleFractionBounds) {
  auto ctx = sp::Context::create(2, 4);
  auto rdd = sp::parallelize(ctx, iota_vec(2000));
  EXPECT_EQ(rdd.sample(0.0, 1).count(), 0u);
  EXPECT_EQ(rdd.sample(1.0, 1).count(), 2000u);
  const auto half = rdd.sample(0.5, 1).count();
  EXPECT_GT(half, 800u);
  EXPECT_LT(half, 1200u);
  EXPECT_THROW((void)rdd.sample(1.5, 1), peachy::Error);
}

TEST(Rdd, SampleIsDeterministic) {
  auto ctx = sp::Context::create(2, 4);
  auto rdd = sp::parallelize(ctx, iota_vec(500));
  EXPECT_EQ(rdd.sample(0.3, 9).collect(), rdd.sample(0.3, 9).collect());
}

// ---- wide transformations -------------------------------------------------------------

TEST(Rdd, DistinctRemovesDuplicates) {
  auto ctx = sp::Context::create(2, 3);
  auto rdd = sp::parallelize(ctx, std::vector<int>{5, 1, 5, 2, 1, 5});
  auto out = rdd.distinct().collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 5}));
}

TEST(Rdd, RepartitionPreservesMultiset) {
  auto ctx = sp::Context::create(2, 2);
  auto rdd = sp::parallelize(ctx, iota_vec(50)).repartition(7);
  EXPECT_EQ(rdd.partitions(), 7u);
  auto out = rdd.collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, iota_vec(50));
}

TEST(Rdd, SortByOrdersGlobally) {
  auto ctx = sp::Context::create(2, 4);
  std::vector<int> data{9, 3, 7, 1, 8, 2, 6, 0, 5, 4};
  auto asc = sp::parallelize(ctx, data).sort_by([](const int& x) { return x; }).collect();
  EXPECT_EQ(asc, iota_vec(10));
  auto desc =
      sp::parallelize(ctx, data).sort_by([](const int& x) { return x; }, true).collect();
  std::vector<int> expect = iota_vec(10);
  std::reverse(expect.begin(), expect.end());
  EXPECT_EQ(desc, expect);
}

// The shuffle-correctness property: results must not depend on the
// partition count.
class PartitionCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionCounts, ReduceByKeyIndependentOfPartitioning) {
  const std::size_t nparts = GetParam();
  auto ctx = sp::Context::create(3, nparts);
  std::vector<std::pair<std::string, int>> data;
  for (int i = 0; i < 200; ++i) data.emplace_back("k" + std::to_string(i % 7), i);
  std::map<std::string, int> oracle;
  for (const auto& [k, v] : data) oracle[k] += v;

  auto rdd = sp::reduce_by_key(sp::parallelize(ctx, data), std::plus<>{});
  std::map<std::string, int> got;
  for (const auto& [k, v] : rdd.collect()) {
    EXPECT_FALSE(got.contains(k)) << "duplicate key " << k;
    got[k] = v;
  }
  EXPECT_EQ(got, oracle);
}

TEST_P(PartitionCounts, GroupByKeyCollectsAllValues) {
  const std::size_t nparts = GetParam();
  auto ctx = sp::Context::create(3, nparts);
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 60; ++i) data.emplace_back(i % 5, i);

  auto grouped = sp::group_by_key(sp::parallelize(ctx, data));
  std::map<int, std::multiset<int>> got;
  for (const auto& [k, vs] : grouped.collect()) {
    got[k] = std::multiset<int>(vs.begin(), vs.end());
  }
  std::map<int, std::multiset<int>> oracle;
  for (const auto& [k, v] : data) oracle[k].insert(v);
  EXPECT_EQ(got, oracle);
}

TEST_P(PartitionCounts, JoinMatchesSerialOracle) {
  const std::size_t nparts = GetParam();
  auto ctx = sp::Context::create(3, nparts);
  std::vector<std::pair<std::string, int>> arrests;
  std::vector<std::pair<std::string, int>> population;
  for (int i = 0; i < 30; ++i) arrests.emplace_back("nta" + std::to_string(i % 10), i);
  for (int i = 0; i < 8; ++i) population.emplace_back("nta" + std::to_string(i), 1000 * (i + 1));

  auto joined = sp::join(sp::parallelize(ctx, arrests), sp::parallelize(ctx, population));
  std::multiset<std::string> got;
  for (const auto& [k, vv] : joined.collect()) {
    got.insert(k + ":" + std::to_string(vv.first) + ":" + std::to_string(vv.second));
  }
  std::multiset<std::string> oracle;
  for (const auto& [ka, va] : arrests) {
    for (const auto& [kp, vp] : population) {
      if (ka == kp) oracle.insert(ka + ":" + std::to_string(va) + ":" + std::to_string(vp));
    }
  }
  EXPECT_EQ(got, oracle);  // keys nta8/nta9 have no population → dropped
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionCounts, ::testing::Values(1u, 2u, 3u, 5u, 16u));

// ---- pair conveniences -----------------------------------------------------------------

TEST(PairRdd, KeysValuesMapValues) {
  auto ctx = sp::Context::create(2, 2);
  std::vector<std::pair<std::string, int>> data{{"a", 1}, {"b", 2}};
  auto rdd = sp::parallelize(ctx, data);
  EXPECT_EQ(sp::keys(rdd).collect(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(sp::values(rdd).collect(), (std::vector<int>{1, 2}));
  auto doubled = sp::map_values(rdd, [](const int& v) { return v * 2.5; }).collect();
  EXPECT_DOUBLE_EQ(doubled[1].second, 5.0);
}

TEST(PairRdd, CountByKey) {
  auto ctx = sp::Context::create(2, 3);
  std::vector<std::pair<std::string, int>> data{
      {"x", 1}, {"y", 2}, {"x", 3}, {"x", 4}, {"z", 5}};
  const auto counts = sp::count_by_key(sp::parallelize(ctx, data));
  EXPECT_EQ(counts.at("x"), 3u);
  EXPECT_EQ(counts.at("y"), 1u);
  EXPECT_EQ(counts.at("z"), 1u);
}

// ---- lineage & telemetry ---------------------------------------------------------------

TEST(Rdd, LineageRecordsOperatorChain) {
  auto ctx = sp::Context::create(2, 2);
  auto rdd = sp::parallelize(ctx, iota_vec(4))
                 .map([](const int& x) { return std::pair<int, int>{x % 2, x}; });
  auto reduced = sp::reduce_by_key(rdd, std::plus<>{});
  const std::string lin = reduced.lineage();
  EXPECT_NE(lin.find("parallelize"), std::string::npos);
  EXPECT_NE(lin.find("map"), std::string::npos);
  EXPECT_NE(lin.find("reduce_by_key (shuffle)"), std::string::npos);
}

TEST(Context, CountsTasksAndShuffles) {
  auto ctx = sp::Context::create(2, 4);
  auto rdd = sp::parallelize(ctx, iota_vec(40))
                 .map([](const int& x) { return std::pair<int, int>{x % 3, x}; });
  const auto before = ctx->stats();
  EXPECT_EQ(before.shuffles, 0u);
  (void)sp::reduce_by_key(rdd, std::plus<>{}).collect();
  const auto after = ctx->stats();
  EXPECT_EQ(after.shuffles, 1u);
  EXPECT_EQ(after.shuffle_records, 40u);
  EXPECT_GT(after.tasks, 0u);
  ctx->reset_stats();
  EXPECT_EQ(ctx->stats().tasks, 0u);
}

TEST(Rdd, UnionAcrossContextsRejected) {
  auto ctx1 = sp::Context::create(1, 2);
  auto ctx2 = sp::Context::create(1, 2);
  auto a = sp::parallelize(ctx1, iota_vec(3));
  auto b = sp::parallelize(ctx2, iota_vec(3));
  EXPECT_THROW((void)a.union_with(b), peachy::Error);
}

// ---- exception propagation ---------------------------------------------------------------

TEST(Rdd, UserFunctionExceptionPropagatesFromAction) {
  auto ctx = sp::Context::create(2, 4);
  auto rdd = sp::parallelize(ctx, iota_vec(10)).map([](const int& x) {
    if (x == 7) throw std::runtime_error{"bad record"};
    return x;
  });
  EXPECT_THROW((void)rdd.collect(), std::runtime_error);
}
