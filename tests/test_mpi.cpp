// Tests for the mini-MPI runtime: point-to-point semantics, every
// collective against a serial reference, wildcards, probe, error
// propagation, and traffic accounting.  Collectives are property-tested
// across rank counts (TEST_P) because the tree/ring algorithms take
// different code paths at p = 1, 2, 3, 4, 5, 8.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <future>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include "mpi/mpi.hpp"

namespace pm = peachy::mpi;

// ---- point to point ----------------------------------------------------------

TEST(MpiP2P, SendRecvRoundTrip) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> payload{1.5, 2.5, 3.5};
      c.send<double>(1, 7, payload);
    } else {
      pm::Status st;
      const auto got = c.recv<double>(0, 7, &st);
      EXPECT_EQ(got, (std::vector<double>{1.5, 2.5, 3.5}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 3 * sizeof(double));
    }
  });
}

TEST(MpiP2P, MessagesFromSameSenderArriveInOrder) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 100; ++i) c.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(c.recv_value<int>(0, 3), i);
    }
  });
}

TEST(MpiP2P, TagMatchingSelectsCorrectMessage) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 10, 111);
      c.send_value<int>(1, 20, 222);
    } else {
      // Receive in reverse tag order: matching must skip the tag-10 message.
      EXPECT_EQ(c.recv_value<int>(0, 20), 222);
      EXPECT_EQ(c.recv_value<int>(0, 10), 111);
    }
  });
}

TEST(MpiP2P, AnySourceReceivesFromEveryone) {
  pm::run(4, [](pm::Comm& c) {
    if (c.rank() == 0) {
      std::multiset<int> got;
      for (int i = 0; i < 3; ++i) {
        pm::Status st;
        got.insert(c.recv_value<int>(pm::kAnySource, 5, &st));
        EXPECT_GE(st.source, 1);
      }
      EXPECT_EQ(got, (std::multiset<int>{10, 20, 30}));
    } else {
      c.send_value<int>(0, 5, c.rank() * 10);
    }
  });
}

TEST(MpiP2P, SelfSendIsAllowed) {
  pm::run(1, [](pm::Comm& c) {
    c.send_value<int>(0, 1, 42);
    EXPECT_EQ(c.recv_value<int>(0, 1), 42);
  });
}

TEST(MpiP2P, ProbeSeesPendingMessage) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 9, 5);
      c.barrier();
    } else {
      c.barrier();  // after the barrier the message must be in our mailbox
      pm::Status st;
      EXPECT_TRUE(c.probe(0, 9, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_FALSE(c.probe(0, 999));
      EXPECT_EQ(c.recv_value<int>(0, 9), 5);
      EXPECT_FALSE(c.probe(0, 9));  // consumed
    }
  });
}

TEST(MpiP2P, RejectsBadDestinationAndTag) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      EXPECT_THROW(c.send_value<int>(5, 0, 1), peachy::Error);
      EXPECT_THROW(c.send_value<int>(1, -3, 1), peachy::Error);
    }
  });
}

TEST(MpiP2P, PostRejectsBadSourceRank) {
  // Symmetric with the recv-side check: a source outside [0, nranks)
  // would flow into Message::source and the checker's wait-for graph
  // (on_post indexes by source).  Comm always passes its own rank, so the
  // hazard is direct Machine::post use — validate at the machine surface.
  pm::detail::Machine machine{2};
  const std::byte token{0};
  const std::span<const std::byte> payload{&token, 1};
  EXPECT_NO_THROW(machine.post(1, 0, 7, payload));
  try {
    machine.post(-1, 0, 7, payload);
    FAIL() << "expected peachy::Error";
  } catch (const peachy::Error& e) {
    EXPECT_NE(std::string{e.what()}.find("post: bad source rank"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(machine.post(2, 0, 7, payload), peachy::Error);
  // The valid message is still deliverable after the rejected ones.
  pm::Status st;
  EXPECT_TRUE(machine.try_peek(0, 1, 7, st));
  EXPECT_EQ(st.source, 1);
}

TEST(MpiP2P, RejectsBadRecvAndProbeSource) {
  // A recv/probe source outside [0, nranks) is the student bug the
  // grading layer exists to diagnose: it must be a named error up front,
  // not a silent hang (unchecked) or an out-of-range wait-for-graph
  // index (checked).
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      EXPECT_THROW((void)c.recv_bytes(2, 0), peachy::Error);
      EXPECT_THROW((void)c.recv_bytes(-7, 0), peachy::Error);
      EXPECT_THROW((void)c.probe(2, 0), peachy::Error);
    }
  });
  EXPECT_THROW(pm::run(
                   2,
                   [](pm::Comm& c) {
                     if (c.rank() == 0) (void)c.recv_bytes(2, 0);
                   },
                   peachy::analysis::CheckLevel::full),
               peachy::Error);
}

TEST(MpiP2P, SizeMismatchedRecvValueThrows) {
  EXPECT_THROW(pm::run(2,
                       [](pm::Comm& c) {
                         if (c.rank() == 0) {
                           const std::vector<int> two{1, 2};
                           c.send<int>(1, 0, two);
                         } else {
                           (void)c.recv_value<int>(0, 0);  // expects exactly 1
                         }
                       }),
               peachy::Error);
}

TEST(MpiP2P, FullWildcardRecvDrainsSenderInOrder) {
  // src=any + tag=any must match the *oldest* waiting message, so a
  // single sender's stream is drained in posting order even when the
  // tags vary.
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 10, 1);
      c.send_value<int>(1, 20, 2);
      c.send_value<int>(1, 10, 3);
    } else {
      pm::Status st;
      EXPECT_EQ(c.recv_value<int>(pm::kAnySource, pm::kAnyTag, &st), 1);
      EXPECT_EQ(st.tag, 10);
      EXPECT_EQ(c.recv_value<int>(pm::kAnySource, pm::kAnyTag, &st), 2);
      EXPECT_EQ(st.tag, 20);
      EXPECT_EQ(c.recv_value<int>(pm::kAnySource, pm::kAnyTag, &st), 3);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(MpiP2P, AnyTagFromSpecificSourceSkipsOtherSources) {
  // Both messages are queued before rank 0 receives (their sends
  // happen-before the barrier tokens), so matching must *skip* rank 1's
  // older message to satisfy recv(src=2, tag=any).
  pm::run(3, [](pm::Comm& c) {
    if (c.rank() == 1) c.send_value<int>(0, 5, 111);
    if (c.rank() == 2) c.send_value<int>(0, 6, 222);
    c.barrier();
    if (c.rank() == 0) {
      pm::Status st;
      EXPECT_EQ(c.recv_value<int>(2, pm::kAnyTag, &st), 222);
      EXPECT_EQ(st.source, 2);
      EXPECT_EQ(st.tag, 6);
      EXPECT_EQ(c.recv_value<int>(pm::kAnySource, pm::kAnyTag, &st), 111);
      EXPECT_EQ(st.source, 1);
    }
  });
}

TEST(MpiP2P, ProbeThenRecvIsConsistentUnderConcurrentTraffic) {
  // The receiver polls with wildcards and immediately receives what it
  // probed while two senders keep posting.  Since only the owner removes
  // messages from its mailbox, a successful probe can never be
  // invalidated by the racing sends.
  pm::run(3, [](pm::Comm& c) {
    constexpr int kEach = 25;
    if (c.rank() > 0) {
      for (int i = 0; i < kEach; ++i) c.send_value<int>(0, c.rank(), i);
    } else {
      int got = 0;
      std::vector<int> next(3, 0);  // per-sender expected sequence number
      while (got < 2 * kEach) {
        pm::Status st;
        if (!c.probe(pm::kAnySource, pm::kAnyTag, &st)) continue;
        pm::Status rst;
        const int v = c.recv_value<int>(st.source, st.tag, &rst);
        EXPECT_EQ(rst.source, st.source);
        EXPECT_EQ(rst.tag, st.tag);
        EXPECT_EQ(rst.bytes, st.bytes);
        EXPECT_EQ(v, next[static_cast<std::size_t>(st.source)]++);
        ++got;
      }
    }
  });
}

TEST(MpiP2P, PayloadNotAMultipleOfElementSizeThrows) {
  // recv<T> must reject a byte payload whose length is not divisible by
  // sizeof(T), instead of silently truncating.
  EXPECT_THROW(pm::run(2,
                       [](pm::Comm& c) {
                         if (c.rank() == 0) {
                           const std::array<std::byte, 5> odd{};
                           c.send_bytes(1, 0, odd);
                         } else {
                           (void)c.recv<double>(0, 0);
                         }
                       }),
               peachy::Error);
}

// ---- error propagation ----------------------------------------------------------

TEST(MpiRun, RankExceptionPropagatesAndUnblocksReceivers) {
  // Rank 1 blocks forever in recv; rank 0 throws.  run() must not hang and
  // must rethrow rank 0's error.
  try {
    pm::run(2, [](pm::Comm& c) {
      if (c.rank() == 0) throw peachy::Error{"deliberate failure"};
      (void)c.recv_bytes(0, 0);
    });
    FAIL() << "expected throw";
  } catch (const peachy::Error& e) {
    EXPECT_NE(std::string{e.what()}.find("deliberate"), std::string::npos);
  }
}

TEST(MpiRun, AbortWakesEveryBlockedReceiverAndNamesTheReason) {
  // Rank 0 fails while three other ranks sit in receives that will never
  // be satisfied.  abort() must reliably wake *all* of them (the join
  // completing at all proves it), and the rethrown error must carry rank
  // 0's original reason, not a bare "machine aborted".
  try {
    pm::run(4, [](pm::Comm& c) {
      if (c.rank() == 0) throw peachy::Error{"boom at rank 0"};
      (void)c.recv_bytes(0, 42);
    });
    FAIL() << "expected throw";
  } catch (const peachy::Error& e) {
    EXPECT_NE(std::string{e.what()}.find("boom at rank 0"), std::string::npos);
  }
}

TEST(MpiRun, RejectsZeroRanks) {
  EXPECT_THROW(pm::run(0, [](pm::Comm&) {}), peachy::Error);
}

// ---- collectives, property-tested over rank counts -------------------------------

class MpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MpiCollectives, BarrierSeparatesPhases) {
  const int p = GetParam();
  std::atomic<int> phase1_arrivals{0};
  std::atomic<bool> violation{false};
  pm::run(p, [&](pm::Comm& c) {
    phase1_arrivals.fetch_add(1);
    c.barrier();
    if (phase1_arrivals.load() != p) violation.store(true);
  });
  EXPECT_FALSE(violation.load());
}

TEST_P(MpiCollectives, BroadcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    pm::run(p, [&](pm::Comm& c) {
      std::vector<int> data;
      if (c.rank() == root) data = {root * 100, root * 100 + 1, root * 100 + 2};
      c.broadcast(data, root);
      EXPECT_EQ(data, (std::vector<int>{root * 100, root * 100 + 1, root * 100 + 2}));
    });
  }
}

TEST_P(MpiCollectives, BroadcastValue) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    const double v = c.broadcast_value(c.rank() == 0 ? 3.25 : -1.0, 0);
    EXPECT_DOUBLE_EQ(v, 3.25);
  });
}

TEST_P(MpiCollectives, ReduceSumMatchesSerial) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    pm::run(p, [&](pm::Comm& c) {
      const std::vector<std::int64_t> local{c.rank() + 1, 10 * (c.rank() + 1)};
      const auto got = c.reduce<std::int64_t>(local, std::plus<>{}, root);
      if (c.rank() == root) {
        const std::int64_t s = static_cast<std::int64_t>(p) * (p + 1) / 2;
        EXPECT_EQ(got, (std::vector<std::int64_t>{s, 10 * s}));
      } else {
        EXPECT_TRUE(got.empty());
      }
    });
  }
}

TEST_P(MpiCollectives, ReduceMinMax) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    const int r = c.rank();
    const auto mins =
        c.allreduce<int>(std::span<const int>{&r, 1}, [](int a, int b) { return std::min(a, b); });
    const auto maxs =
        c.allreduce<int>(std::span<const int>{&r, 1}, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(mins.front(), 0);
    EXPECT_EQ(maxs.front(), p - 1);
  });
}

TEST_P(MpiCollectives, AllreduceEveryRankGetsTotal) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    const double mine = 1.0;
    EXPECT_DOUBLE_EQ(c.allreduce_value(mine, std::plus<>{}), static_cast<double>(p));
  });
}

TEST_P(MpiCollectives, GatherConcatenatesInRankOrder) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    // Variable-size contributions: rank r contributes r+1 copies of r.
    std::vector<int> local(c.rank() + 1, c.rank());
    const auto all = c.gather<int>(local, 0);
    if (c.rank() == 0) {
      std::vector<int> expect;
      for (int r = 0; r < p; ++r) expect.insert(expect.end(), r + 1, r);
      EXPECT_EQ(all, expect);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(MpiCollectives, AllgatherEveryRankGetsConcatenation) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    std::vector<int> local{c.rank(), c.rank() + 1000};
    const auto all = c.allgather<int>(local);
    ASSERT_EQ(all.size(), 2u * p);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[2 * r], r);
      EXPECT_EQ(all[2 * r + 1], r + 1000);
    }
  });
}

TEST_P(MpiCollectives, ScatterBlocksMatchesStaticPartition) {
  const int p = GetParam();
  constexpr int kN = 103;
  pm::run(p, [&](pm::Comm& c) {
    std::vector<int> all;
    if (c.rank() == 0) {
      all.resize(kN);
      std::iota(all.begin(), all.end(), 0);
    }
    const auto mine = c.scatter_blocks<int>(all, 0);
    const auto blk =
        peachy::support::static_block(kN, p, static_cast<std::size_t>(c.rank()));
    ASSERT_EQ(mine.size(), blk.end - blk.begin);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i], static_cast<int>(blk.begin + i));
    }
  });
}

TEST_P(MpiCollectives, AlltoallTransposesBuffers) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    // sendbufs[d] = {rank*1000 + d} repeated (d+1) times — variable sizes.
    std::vector<std::vector<int>> send(p);
    for (int d = 0; d < p; ++d) send[d].assign(d + 1, c.rank() * 1000 + d);
    const auto recv = c.alltoall(send);
    ASSERT_EQ(static_cast<int>(recv.size()), p);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(recv[s].size(), static_cast<std::size_t>(c.rank() + 1));
      for (int v : recv[s]) EXPECT_EQ(v, s * 1000 + c.rank());
    }
  });
}

TEST_P(MpiCollectives, ConsecutiveCollectivesDoNotCrossTalk) {
  const int p = GetParam();
  pm::run(p, [&](pm::Comm& c) {
    for (int round = 0; round < 20; ++round) {
      const int total = c.allreduce_value(1, std::plus<>{});
      EXPECT_EQ(total, p);
      c.barrier();
      const int v = c.broadcast_value(c.rank() == 0 ? round : -1, 0);
      EXPECT_EQ(v, round);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiCollectives, ::testing::Values(1, 2, 3, 4, 5, 8));

// ---- traffic accounting -----------------------------------------------------------

TEST(MpiTraffic, CountsMessagesAndBytes) {
  const auto stats = pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> payload(100, 1.0);
      c.send<double>(1, 0, payload);
    } else {
      (void)c.recv<double>(0, 0);
    }
  });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 100 * sizeof(double));
}

TEST(MpiTraffic, TreeReduceSendsP_Minus_1_Messages) {
  // A binomial-tree reduce moves exactly p-1 payload messages.
  for (int p : {2, 4, 8}) {
    const auto stats = pm::run(p, [](pm::Comm& c) {
      const double x = 1.0;
      (void)c.reduce<double>(std::span<const double>{&x, 1}, std::plus<>{}, 0);
    });
    EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(p - 1)) << "p=" << p;
  }
}

// ---- internal collective tag sequencing -------------------------------------------

TEST(MpiCollectiveTags, SequencePastOldWrapBoundaryDoesNotAlias) {
  // Regression: the internal tag sequence used to wrap at 2^20, so
  // collective #k and collective #(k + 2^20) shared a tag and could
  // cross-match in a long run.  Jump the counter to just below the old
  // boundary and drive collectives across it: results must stay correct
  // and the sequence must keep growing monotonically.
  pm::run(3, [](pm::Comm& c) {
    c.debug_set_collective_seq((std::uint64_t{1} << 20) - 3);
    for (int round = 0; round < 8; ++round) {
      EXPECT_EQ(c.allreduce_value(1, std::plus<>{}), 3);
      EXPECT_EQ(c.broadcast_value(c.rank() == 0 ? round : -1, 0), round);
    }
    EXPECT_GT(c.collective_seq(), std::uint64_t{1} << 20);
  });
}

TEST(MpiCollectiveTags, ExhaustionIsAHardErrorNotSilentAliasing) {
  // The full 2^30 tag values above the base are available; running out is
  // diagnosed instead of wrapping onto live tags.
  EXPECT_THROW(pm::run(1,
                       [](pm::Comm& c) {
                         c.debug_set_collective_seq(std::uint64_t{1} << 30);
                         c.barrier();
                       }),
               peachy::Error);
}

// ---- timeout argument validation --------------------------------------------

TEST(MpiTimeouts, NegativeOpTimeoutIsANamedErrorNotForever) {
  // Regression: a negative duration cast to the unsigned nanosecond field
  // used to become "no deadline" — the exact opposite of what a caller
  // computing `deadline - now` under clock skew asked for.
  pm::run(1, [](pm::Comm& c) {
    try {
      c.set_op_timeout(std::chrono::milliseconds{-5});
      FAIL() << "negative timeout accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("set_op_timeout"), std::string::npos);
      EXPECT_NE(std::string{e.what()}.find("negative timeout"), std::string::npos);
    }
    // The communicator is unharmed: a valid timeout still takes effect.
    c.set_op_timeout(std::chrono::milliseconds{50});
    EXPECT_EQ(c.op_timeout(), std::chrono::milliseconds{50});
  });
}

TEST(MpiTimeouts, NegativeTimedRecvIsANamedErrorNotForever) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 1) {
      try {
        (void)c.recv<int>(0, 4, std::chrono::nanoseconds{-1});
        FAIL() << "negative recv timeout accepted";
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("negative timeout"), std::string::npos);
      }
      try {
        (void)c.recv_bytes(0, 4, std::chrono::seconds{-2});
        FAIL() << "negative recv_bytes timeout accepted";
      } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string{e.what()}.find("negative timeout"), std::string::npos);
      }
      // The real message is still receivable afterwards.
      EXPECT_EQ(c.recv_value<int>(0, 4), 77);
    } else {
      c.send_value<int>(1, 4, 77);
    }
  });
}

// ---- machine teardown with blocked receivers --------------------------------

TEST(MpiTeardown, DestroyingMachineWakesBlockedReceiversWithNamedReason) {
  // Regression: destroying a Machine while a rank was still blocked in
  // recv used to tear the mailboxes out from under the sleeping thread.
  // The destructor now poisons every mailbox (named abort), waits for the
  // waiters to drain, and only then frees — so the blocked thread exits
  // through a catchable error, not UB.
  std::string caught;
  std::thread receiver;
  {
    auto machine = std::make_unique<pm::detail::Machine>(2);
    pm::Comm comm{*machine, 1};
    std::promise<void> entered;
    receiver = std::thread{[&comm, &caught, &entered] {
      entered.set_value();
      try {
        (void)comm.recv_value<int>(0, 0);  // no sender exists: blocks forever
        caught = "recv unexpectedly returned";
      } catch (const peachy::Error& e) {
        caught = e.what();
      }
    }};
    entered.get_future().wait();
    // Give the receiver time to actually enter the mailbox wait before
    // the machine is destroyed under it.
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    machine.reset();  // ~Machine: poison, wake, wait for drain
  }
  receiver.join();
  EXPECT_NE(caught.find("machine destroyed while ranks were still blocked in recv"),
            std::string::npos)
      << "actual: " << caught;
}
