// Cross-backend conformance for the mini-MPI transport seam: every
// user-visible behavior — point-to-point semantics, wildcards, every
// tuned collective algorithm, fault injection + shrink recovery, the
// recv_into size contract, and op timeouts — must be identical over
// inproc, shm, and socket (TEST_P over the three kinds).  The wire
// backends route even same-process messages through full frame
// serialization, so a single-process test binary exercises the real
// wire path; multi-process coverage is scripts/check.sh transport-smoke
// (peachy-launch + fault_demo --transport=...).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "faults/faults.hpp"
#include "faults/plan.hpp"
#include "mpi/mpi.hpp"
#include "obs/obs.hpp"
#include "traffic/mpi_traffic.hpp"
#include "tune/tune.hpp"

namespace pm = peachy::mpi;
namespace pf = peachy::faults;
namespace pt = peachy::tune;

namespace {

class Transports : public ::testing::TestWithParam<pm::TransportKind> {
 protected:
  [[nodiscard]] pm::RunOptions opts() const {
    pm::RunOptions o;
    o.transport = GetParam();
    return o;
  }
};

/// Tunables forcing `algo` for `op` everywhere (test_tune.cpp's helper).
pt::Tunables forced(pt::CollOp op, pt::CollAlgo algo) {
  pt::Tunables t;
  pt::CollRule rule;
  rule.op = op;
  rule.algo = algo;
  t.coll_rules.push_back(rule);
  return t;
}

}  // namespace

// ---- point to point ---------------------------------------------------------

TEST_P(Transports, SendRecvRoundTrip) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> payload{1.5, 2.5, 3.5};
      c.send<double>(1, 7, payload);
    } else {
      pm::Status st;
      const auto got = c.recv<double>(0, 7, &st);
      EXPECT_EQ(got, (std::vector<double>{1.5, 2.5, 3.5}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 3 * sizeof(double));
    }
  }, opts());
}

TEST_P(Transports, LargeMessagesSpanReadChunks) {
  // Payloads wider than the socket pump's 256 KiB staging chunk force a
  // frame to arrive across several read() wakes — the partial-tail
  // reassembly path — and overflow the shm inline slot capacity — the
  // spill path.  Odd element counts move the chunk boundary around so it
  // also lands inside a frame header; the small chaser after each large
  // frame must still parse in place, in order.
  pm::run(2, [](pm::Comm& c) {
    constexpr std::size_t kBig = (std::size_t{256} << 10) / sizeof(int) + 12345;
    if (c.rank() == 0) {
      for (int round = 0; round < 3; ++round) {
        std::vector<int> payload(kBig + static_cast<std::size_t>(round) * 7919);
        std::iota(payload.begin(), payload.end(), round);
        c.send<int>(1, round, payload);
        c.send_value<int>(1, 100 + round, round * 11);
      }
    } else {
      for (int round = 0; round < 3; ++round) {
        pm::Status st;
        const auto got = c.recv<int>(0, round, &st);
        ASSERT_EQ(got.size(), kBig + static_cast<std::size_t>(round) * 7919);
        std::vector<int> want(got.size());
        std::iota(want.begin(), want.end(), round);
        EXPECT_EQ(got, want);
        EXPECT_EQ(c.recv_value<int>(0, 100 + round), round * 11);
      }
    }
  }, opts());
}

TEST_P(Transports, PerSourceOrderingHolds) {
  // The wire pump must preserve per-connection order end to end.
  pm::run(3, [](pm::Comm& c) {
    if (c.rank() < 2) {
      for (int i = 0; i < 200; ++i) c.send_value<int>(2, c.rank(), i * 3 + c.rank());
    } else {
      for (int src = 0; src < 2; ++src) {
        for (int i = 0; i < 200; ++i) {
          EXPECT_EQ(c.recv_value<int>(src, src), i * 3 + src);
        }
      }
    }
  }, opts());
}

TEST_P(Transports, WildcardReceivesFromEveryone) {
  pm::run(4, [](pm::Comm& c) {
    if (c.rank() == 0) {
      std::multiset<int> got;
      for (int i = 0; i < 3; ++i) {
        pm::Status st;
        got.insert(c.recv_value<int>(pm::kAnySource, 5, &st));
        EXPECT_EQ(st.tag, 5);
      }
      EXPECT_EQ(got, (std::multiset<int>{100, 200, 300}));
    } else {
      c.send_value<int>(0, 5, c.rank() * 100);
    }
  }, opts());
}

TEST_P(Transports, LargePayloadSurvivesTheWire) {
  // Larger than the shm ring's inline slot: forces the spillover region
  // (shm) and multi-read reassembly (socket).
  std::vector<std::int64_t> big(100'000);
  std::iota(big.begin(), big.end(), 0);
  pm::run(2, [&](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send<std::int64_t>(1, 1, big);
    } else {
      EXPECT_EQ(c.recv<std::int64_t>(0, 1), big);
    }
  }, opts());
}

// ---- collectives ------------------------------------------------------------

TEST_P(Transports, CollectivesMatchSerialAtEveryRankCount) {
  for (int p : {1, 2, 3, 4, 5, 8}) {
    std::vector<long> allreduce_out(static_cast<std::size_t>(p), -1);
    std::vector<std::vector<int>> allgather_out(static_cast<std::size_t>(p));
    pm::run(p, [&](pm::Comm& c) {
      c.barrier();
      // broadcast: every rank ends with root's value.
      const int v = c.broadcast_value(c.rank() == 0 ? 424242 : -1, 0);
      EXPECT_EQ(v, 424242);
      // allreduce: sum of 0..p-1.
      allreduce_out[static_cast<std::size_t>(c.rank())] =
          c.allreduce_value<long>(c.rank(), std::plus<>{});
      // allgather: concatenation in rank order.
      const std::vector<int> mine{c.rank(), c.rank() * 10};
      allgather_out[static_cast<std::size_t>(c.rank())] = c.allgather<int>(mine);
    }, opts());
    const long expect = static_cast<long>(p) * (p - 1) / 2;
    std::vector<int> cat;
    for (int r = 0; r < p; ++r) {
      cat.push_back(r);
      cat.push_back(r * 10);
    }
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(allreduce_out[static_cast<std::size_t>(r)], expect) << "p=" << p;
      EXPECT_EQ(allgather_out[static_cast<std::size_t>(r)], cat) << "p=" << p;
    }
  }
}

TEST_P(Transports, EveryTunedAlgorithmAgreesOnEveryBackend) {
  // Each forced collective algorithm must produce the same bytes over
  // every transport — the seam moves messages, never reorders math.
  constexpr pt::CollAlgo kAlgos[] = {pt::CollAlgo::kAuto, pt::CollAlgo::kLinear,
                                     pt::CollAlgo::kBinomial, pt::CollAlgo::kRing,
                                     pt::CollAlgo::kRecDouble};
  constexpr pt::CollOp kOps[] = {pt::CollOp::kBroadcast, pt::CollOp::kReduce,
                                 pt::CollOp::kAllreduce, pt::CollOp::kAllgather};
  for (const pt::CollOp op : kOps) {
    for (const pt::CollAlgo algo : kAlgos) {
      const pt::Tunables t = forced(op, algo);
      pm::RunOptions o = opts();
      o.tunables = &t;
      const int p = 4;  // power of two: every algorithm (incl. recdouble) is eligible
      std::vector<double> sums(p, 0.0);
      std::vector<std::vector<float>> gathered(p);
      pm::run(p, [&](pm::Comm& c) {
        std::vector<double> data{1.25 * c.rank(), -2.5, 3.75};
        c.broadcast(data, 0);
        EXPECT_EQ(data, (std::vector<double>{0.0, -2.5, 3.75}));
        sums[static_cast<std::size_t>(c.rank())] =
            c.allreduce_value<double>(0.5 * c.rank(), std::plus<>{});
        const std::vector<float> mine{static_cast<float>(c.rank())};
        gathered[static_cast<std::size_t>(c.rank())] = c.allgather<float>(mine);
      }, o);
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(sums[static_cast<std::size_t>(r)], 3.0)
            << "op=" << static_cast<int>(op) << " algo=" << static_cast<int>(algo);
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)],
                  (std::vector<float>{0.f, 1.f, 2.f, 3.f}));
      }
    }
  }
}

// ---- determinism across backends -------------------------------------------

TEST_P(Transports, TrafficSimulationIsBitIdenticalToSerial) {
  // The end-to-end determinism pin: the Nagel–Schreckenberg solver must
  // produce the serial reference's exact state over every backend.
  peachy::traffic::Spec spec;
  spec.cars = 60;
  spec.road_length = 300;
  spec.seed = 1234;
  const std::size_t steps = 50;
  const auto reference = peachy::traffic::run_serial(spec, steps);
  std::vector<peachy::traffic::State> finals(3);
  pm::run(3, [&](pm::Comm& c) {
    finals[static_cast<std::size_t>(c.rank())] =
        peachy::traffic::run_mpi(c, spec, steps, nullptr, {});
  }, opts());
  for (const auto& st : finals) EXPECT_TRUE(st == reference);
}

// ---- fault injection + recovery --------------------------------------------

TEST_P(Transports, InjectedCrashSurfacesAsRankFailedAndShrinkRecovers) {
  pf::FaultPlan plan;
  plan.set_seed(7);
  plan.add({.kind = pf::FaultKind::crash, .rank = 1, .step = 3});
  pm::RunOptions o = opts();
  o.plan = &plan;
  o.op_timeout_ns = 5'000'000'000ULL;
  std::vector<int> shrunken_sum(3, -1);
  pm::run(3, [&](pm::Comm& world) {
    pm::Comm comm = world;
    for (;;) {
      try {
        int total = 0;
        for (int round = 0; round < 10; ++round) {
          total = comm.allreduce_value<int>(1, std::plus<>{});
        }
        shrunken_sum[static_cast<std::size_t>(world.rank())] = total;
        return;
      } catch (const pf::CommRevokedError&) {
      } catch (const pf::RankFailedError&) {
        comm.revoke();
      }
      comm = comm.shrink();
    }
  }, o);
  // Rank 1 died; the survivors' final allreduce ran on the 2-rank comm.
  EXPECT_EQ(shrunken_sum[0], 2);
  EXPECT_EQ(shrunken_sum[1], -1);
  EXPECT_EQ(shrunken_sum[2], 2);
}

// ---- recv_into size contract ------------------------------------------------

TEST_P(Transports, SizeMismatchedRecvIntoLeavesMessageQueued) {
  // A size-mismatched frame must not be half-consumed on ANY backend:
  // the error escapes, the message stays queued (probe still sees it),
  // and a correctly-sized receive then drains it intact.
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 9, std::vector<int>{10, 20, 30});
    } else {
      // Wait until the frame has actually crossed the wire: on shm and
      // socket delivery is asynchronous, and the contract under test is
      // about a *queued* message.
      while (!c.probe(0, 9)) {
      }
      std::vector<int> two(2);
      EXPECT_THROW(c.recv_into<int>(two, 0, 9), peachy::Error);
      EXPECT_TRUE(c.probe(0, 9));  // still there, byte-for-byte
      std::vector<int> three(3);
      const pm::Status st = c.recv_into<int>(three, 0, 9);
      EXPECT_EQ(three, (std::vector<int>{10, 20, 30}));
      EXPECT_EQ(st.bytes, 3 * sizeof(int));
      EXPECT_FALSE(c.probe(0, 9));
    }
  }, opts());
}

// ---- timeouts ---------------------------------------------------------------

TEST_P(Transports, RecvTimeoutFiresOnEveryBackend) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 1) {
      EXPECT_THROW((void)c.recv<int>(0, 99, std::chrono::milliseconds{20}),
                   pf::TimeoutError);
      c.send_value<int>(0, 1, 1);  // unblock rank 0's plain recv below
    } else {
      (void)c.recv_value<int>(1, 1);
    }
  }, opts());
}

INSTANTIATE_TEST_SUITE_P(Backends, Transports,
                         ::testing::Values(pm::TransportKind::kInproc,
                                           pm::TransportKind::kShm,
                                           pm::TransportKind::kSocket),
                         [](const ::testing::TestParamInfo<pm::TransportKind>& info) {
                           return pm::transport_name(info.param);
                         });

// ---- selection plumbing -----------------------------------------------------

TEST(TransportSelect, NamesRoundTrip) {
  EXPECT_STREQ(pm::transport_name(pm::TransportKind::kInproc), "inproc");
  EXPECT_STREQ(pm::transport_name(pm::TransportKind::kShm), "shm");
  EXPECT_STREQ(pm::transport_name(pm::TransportKind::kSocket), "socket");
  EXPECT_EQ(pm::parse_transport("inproc"), pm::TransportKind::kInproc);
  EXPECT_EQ(pm::parse_transport("shm"), pm::TransportKind::kShm);
  EXPECT_EQ(pm::parse_transport("socket"), pm::TransportKind::kSocket);
}

TEST(TransportSelect, UnknownNameIsANamedErrorNotAFallback) {
  EXPECT_THROW((void)pm::parse_transport("tcp"), peachy::Error);
  EXPECT_THROW((void)pm::parse_transport(""), peachy::Error);
}

TEST(TransportSelect, EnvSelectionResolvesAndRejectsTypos) {
  const char* saved = std::getenv("PEACHY_TRANSPORT");
  const std::string restore = saved != nullptr ? saved : "";
  unsetenv("PEACHY_TRANSPORT");
  EXPECT_EQ(pm::transport_from_env(), pm::TransportKind::kInproc);
  setenv("PEACHY_TRANSPORT", "shm", 1);
  EXPECT_EQ(pm::transport_from_env(), pm::TransportKind::kShm);
  setenv("PEACHY_TRANSPORT", "sockets", 1);
  EXPECT_THROW((void)pm::transport_from_env(), peachy::Error);
  if (saved != nullptr) {
    setenv("PEACHY_TRANSPORT", restore.c_str(), 1);
  } else {
    unsetenv("PEACHY_TRANSPORT");
  }
}

TEST(TransportSelect, RunOptionsBeatEnvironment) {
  const char* saved = std::getenv("PEACHY_TRANSPORT");
  const std::string restore = saved != nullptr ? saved : "";
  setenv("PEACHY_TRANSPORT", "inproc", 1);
  pm::RunOptions o;
  o.transport = pm::TransportKind::kShm;
  pm::run(2, [](pm::Comm& c) {
    EXPECT_EQ(c.transport_kind(), pm::TransportKind::kShm);
    EXPECT_FALSE(c.spans_processes());  // un-launched: one process
  }, o);
  if (saved != nullptr) {
    setenv("PEACHY_TRANSPORT", restore.c_str(), 1);
  } else {
    unsetenv("PEACHY_TRANSPORT");
  }
}

// ---- wire fault injection ---------------------------------------------------
//
// The wire backends route even same-process frames through full
// serialization, so seeded wire faults (drop / dup / corrupt / delay,
// DESIGN.md §17) and the CRC32C integrity check are unit-testable here
// without launching processes.  The checker is off: wire chaos breaks the
// send/recv bookkeeping it audits by design (a dropped frame IS a leak).

namespace {

class WireChaos : public ::testing::TestWithParam<pm::TransportKind> {
 protected:
  [[nodiscard]] pm::RunOptions opts(const pf::FaultPlan& plan) const {
    pm::RunOptions o;
    o.transport = GetParam();
    o.plan = &plan;
    o.check = peachy::analysis::CheckLevel::off;
    o.op_timeout_ns = 5'000'000'000;  // tests must fail, not hang
    return o;
  }
};

}  // namespace

TEST_P(WireChaos, DroppedFrameVanishesLaterTrafficFlows) {
  // Rank 0's first data frame is eaten below the machine; per-source
  // ordering means the second still arrives and matches its own tag.
  const auto plan = pf::FaultPlan::parse("wire_drop@rank=0,step=0");
  std::string log;
  auto o = opts(plan);
  o.fault_log = &log;
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 1, 111);  // dropped on the wire
      c.send_value<int>(1, 2, 222);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 2), 222);
    }
  }, o);
  EXPECT_NE(log.find("wire_drop rank=0 step=0"), std::string::npos);
}

TEST_P(WireChaos, DuplicatedFrameIsDeliveredTwice) {
  const auto plan = pf::FaultPlan::parse("wire_dup@rank=0,step=0");
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 7, 31);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 7), 31);
      EXPECT_EQ(c.recv_value<int>(0, 7), 31);  // the wire-level twin
    }
  }, opts(plan));
}

TEST_P(WireChaos, CorruptFrameFailsCrcAndIsCountedNotDelivered) {
  // The injector flips a payload byte *after* the CRC seal; the receive
  // side must catch it, count it, and treat the frame as lost.
  const auto plan = pf::FaultPlan::parse("wire_corrupt@rank=0,step=0");
  peachy::obs::reset();
  peachy::obs::enable();
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send<double>(1, 1, std::vector<double>(256, 1.25));  // corrupted
      c.send_value<int>(1, 2, 99);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 2), 99);
    }
  }, opts(plan));
  EXPECT_EQ(peachy::obs::counter("faults.wire.corrupt").value(), 1);
  EXPECT_GE(peachy::obs::counter("mpi.transport.crc_fail").value(), 1);
  peachy::obs::disable();
  peachy::obs::reset();
}

TEST_P(WireChaos, DelayedFrameArrivesIntactAndReplaysByteIdentically) {
  // Delay is the one wire fault that perturbs timing without losing
  // anything — the canonical fired-event log must be byte-identical
  // across reruns (the chaos-smoke replay gate, in miniature).
  const auto drive = [this] {
    const auto plan =
        pf::FaultPlan::parse("seed=13; wire_delay@rank=0,step=1,ns=1000000");
    std::string log;
    auto o = opts(plan);
    o.fault_log = &log;
    pm::run(2, [](pm::Comm& c) {
      if (c.rank() == 0) {
        c.send<double>(1, 3, std::vector<double>{2.5, -0.5});
        c.send<double>(1, 4, std::vector<double>{8.0});  // step 1: delayed
      } else {
        EXPECT_EQ(c.recv<double>(0, 3), (std::vector<double>{2.5, -0.5}));
        EXPECT_EQ(c.recv<double>(0, 4), (std::vector<double>{8.0}));
      }
    }, o);
    return log;
  };
  const std::string first = drive();
  EXPECT_NE(first.find("wire_delay rank=0 step=1"), std::string::npos);
  EXPECT_EQ(first, drive());
}

INSTANTIATE_TEST_SUITE_P(WireBackends, WireChaos,
                         ::testing::Values(pm::TransportKind::kShm,
                                           pm::TransportKind::kSocket),
                         [](const ::testing::TestParamInfo<pm::TransportKind>& p) {
                           return pm::transport_name(p.param);
                         });

TEST(WireChaosShm, TruncatedFrameZerosTheTailAndFailsCrc) {
  // The shm ring has no short writes: "truncated" means the tail never
  // made it (zeros where content should be), and only the CRC can tell.
  // (The socket twin desyncs the byte stream instead — that teardown path
  // is exercised by scripts/check.sh chaos-smoke, not in-process.)
  const auto plan = pf::FaultPlan::parse("wire_truncate@rank=0,step=0");
  pm::RunOptions o;
  o.transport = pm::TransportKind::kShm;
  o.plan = &plan;
  o.check = peachy::analysis::CheckLevel::off;
  o.op_timeout_ns = 5'000'000'000;
  peachy::obs::reset();
  peachy::obs::enable();
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send<int>(1, 1, std::vector<int>(64, 7));  // truncated on the wire
      c.send_value<int>(1, 2, 5);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 2), 5);
    }
  }, o);
  EXPECT_EQ(peachy::obs::counter("faults.wire.truncate").value(), 1);
  EXPECT_GE(peachy::obs::counter("mpi.transport.crc_fail").value(), 1);
  peachy::obs::disable();
  peachy::obs::reset();
}
