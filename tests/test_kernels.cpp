// Tests for peachy::kernels: the bit-reproducibility contract between
// the scalar reference twins and the dispatched (AVX2) paths, argmin
// semantics (tie-breaks, NaN, +inf padding lanes), panel construction,
// and ISA dispatch controls.  Equivalence is asserted on *bits*, not
// within a tolerance — the kernel contract is exact.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "data/points.hpp"
#include "kernels/crc32c.hpp"
#include "kernels/kernels.hpp"
#include "rng/lcg.hpp"
#include "rng/distributions.hpp"
#include "support/aligned.hpp"
#include "support/check.hpp"

namespace pk = peachy::kernels;
namespace pd = peachy::data;
namespace ps = peachy::support;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ps::aligned_vector<double> random_values(std::size_t n, std::uint64_t seed) {
  peachy::rng::Lcg64 gen{seed};
  ps::aligned_vector<double> v(n);
  for (double& x : v) x = peachy::rng::uniform_real(gen, -3.0, 3.0);
  return v;
}

/// Bit-exact double comparison that also treats matching NaN payloads as
/// equal (EXPECT_EQ on doubles fails for NaN == NaN).
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

/// Build a panel from k centroids given as row-major k×d values.
pd::TransposedPanel make_panel(const std::vector<double>& rows, std::size_t k, std::size_t d) {
  pd::PointSet set{k, d, rows};
  return set.transposed_panel();
}

bool have_avx2() { return pk::isa_available(pk::Isa::kAvx2); }

// The shapes every sweep runs: primes, lane boundaries, d=1, and sizes
// with every possible tail length against the 4-wide vector width.
const std::vector<std::size_t> kDims = {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 16, 31, 32, 100};
const std::vector<std::size_t> kCounts = {1, 2, 3, 4, 5, 7, 8, 9, 16, 17};

}  // namespace

// ---- dispatch controls ------------------------------------------------------------

TEST(KernelsIsa, ScalarAlwaysAvailable) {
  EXPECT_TRUE(pk::isa_available(pk::Isa::kScalar));
  EXPECT_STREQ(pk::isa_name(pk::Isa::kScalar), "scalar");
  EXPECT_STREQ(pk::isa_name(pk::Isa::kAvx2), "avx2");
}

TEST(KernelsIsa, ForceScalarPinsDispatch) {
  {
    pk::ScopedIsa pin{pk::Isa::kScalar};
    EXPECT_EQ(pk::active_isa(), pk::Isa::kScalar);
  }
  // After the scope ends, automatic selection resumes.
  EXPECT_TRUE(pk::active_isa() == pk::Isa::kScalar || pk::active_isa() == pk::Isa::kAvx2);
}

TEST(KernelsIsa, ForcingUnavailableIsaThrows) {
  if (have_avx2()) GTEST_SKIP() << "AVX2 available; cannot exercise the failure path";
  EXPECT_THROW(pk::force_isa(pk::Isa::kAvx2), peachy::Error);
}

TEST(KernelsIsa, PaddedCountRoundsToLaneGroups) {
  EXPECT_EQ(pk::padded_count(1), 4u);
  EXPECT_EQ(pk::padded_count(4), 4u);
  EXPECT_EQ(pk::padded_count(5), 8u);
  EXPECT_EQ(pk::padded_count(8), 8u);
}

// ---- panel construction -----------------------------------------------------------

TEST(KernelsPanel, LayoutAndInfinitePadding) {
  const std::size_t k = 5, d = 3;
  auto vals = std::vector<double>(k * d);
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<double>(i);
  const auto panel = make_panel(vals, k, d);
  ASSERT_EQ(panel.count, k);
  ASSERT_EQ(panel.padded, 8u);
  ASSERT_EQ(panel.values.size(), panel.padded * d);
  for (std::size_t c = 0; c < panel.padded; ++c) {
    const std::size_t g = c / pk::kPanelLane, lane = c % pk::kPanelLane;
    for (std::size_t j = 0; j < d; ++j) {
      const double got = panel.values[(g * d + j) * pk::kPanelLane + lane];
      if (c < k) {
        EXPECT_EQ(got, vals[c * d + j]);
      } else {
        EXPECT_EQ(got, kInf);  // padding lanes can never win an argmin
      }
    }
  }
}

// ---- scalar-vs-vector bit equivalence ---------------------------------------------

TEST(KernelsEquivalence, SquaredDistanceAndDotAllDims) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  for (const std::size_t d : kDims) {
    // +1 offset: deliberately misaligned inputs (kernels take any pointers).
    const auto a = random_values(d + 1, 7 * d + 1);
    const auto b = random_values(d + 1, 9 * d + 2);
    const double rs = pk::ref::squared_distance(a.data() + 1, b.data() + 1, d);
    const double rd = pk::ref::dot(a.data() + 1, b.data() + 1, d);
    pk::ScopedIsa pin{pk::Isa::kAvx2};
    EXPECT_TRUE(bits_equal(rs, pk::squared_distance(a.data() + 1, b.data() + 1, d))) << "d=" << d;
    EXPECT_TRUE(bits_equal(rd, pk::dot(a.data() + 1, b.data() + 1, d))) << "d=" << d;
  }
}

TEST(KernelsEquivalence, RowsDistancesUnalignedTails) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  for (const std::size_t d : {1ul, 3ul, 8ul, 13ul}) {
    const std::size_t n = 23;
    const auto pts = random_values(n * d, 31 * d);
    const auto q = random_values(d, 37 * d);
    std::vector<double> want(n), got(n);
    pk::ref::squared_distances_rows(pts.data(), n, d, q.data(), want.data());
    pk::ScopedIsa pin{pk::Isa::kAvx2};
    pk::squared_distances_rows(pts.data(), n, d, q.data(), got.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(bits_equal(want[i], got[i])) << i;
  }
}

TEST(KernelsEquivalence, BatchAndTileDistancesAllShapes) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  for (const std::size_t k : kCounts) {
    for (const std::size_t d : {1ul, 2ul, 5ul, 8ul, 13ul}) {
      const auto cent = random_values(k * d, 11 * k + d);
      const auto panel = make_panel({cent.begin(), cent.end()}, k, d);
      const std::size_t n = 9;
      const auto pts = random_values(n * d, 13 * k + d);
      std::vector<double> want(n * k), got(n * k);
      pk::ref::squared_distances_tile(pts.data(), n, d, panel.data(), k, panel.padded,
                                      want.data());
      pk::ScopedIsa pin{pk::Isa::kAvx2};
      pk::squared_distances_tile(pts.data(), n, d, panel.data(), k, panel.padded, got.data());
      for (std::size_t i = 0; i < n * k; ++i) {
        EXPECT_TRUE(bits_equal(want[i], got[i])) << "k=" << k << " d=" << d << " i=" << i;
      }
      // Single-query form agrees with row 0 of the tile.
      std::vector<double> one(k);
      pk::squared_distances_batch(pts.data(), d, panel.data(), k, panel.padded, one.data());
      for (std::size_t c = 0; c < k; ++c) EXPECT_TRUE(bits_equal(want[c], one[c]));
    }
  }
}

TEST(KernelsEquivalence, ArgminAssignFullState) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  for (const std::size_t k : {1ul, 3ul, 4ul, 7ul, 16ul}) {
    const std::size_t d = 5, n = 57;
    const auto cent = random_values(k * d, 3 * k);
    const auto panel = make_panel({cent.begin(), cent.end()}, k, d);
    const auto pts = random_values(n * d, 5 * k);

    std::vector<std::int32_t> assign_r(n, -1), assign_v(n, -1);
    std::vector<double> sums_r(k * d, 0.0), sums_v(k * d, 0.0);
    std::vector<std::int64_t> counts_r(k, 0), counts_v(k, 0);
    const std::size_t changes_r =
        pk::ref::argmin_assign(pts.data(), n, d, panel.data(), k, panel.padded, assign_r.data(),
                               sums_r.data(), counts_r.data());
    std::size_t changes_v = 0;
    {
      pk::ScopedIsa pin{pk::Isa::kAvx2};
      changes_v = pk::argmin_assign(pts.data(), n, d, panel.data(), k, panel.padded,
                                    assign_v.data(), sums_v.data(), counts_v.data());
    }
    EXPECT_EQ(changes_r, changes_v) << "k=" << k;
    EXPECT_EQ(assign_r, assign_v) << "k=" << k;
    EXPECT_EQ(counts_r, counts_v) << "k=" << k;
    for (std::size_t i = 0; i < k * d; ++i) {
      EXPECT_TRUE(bits_equal(sums_r[i], sums_v[i])) << "k=" << k << " i=" << i;
    }
  }
}

TEST(KernelsEquivalence, StencilOddLengthsAndOffsets) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  for (const std::size_t n : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul, 31ul, 1000ul}) {
    for (const std::size_t off : {0ul, 1ul, 3ul}) {
      const auto src = random_values(n + 2 + off, 17 * n + off);
      std::vector<double> want(n + 2 + off, 0.0), got(n + 2 + off, 0.0);
      pk::ref::stencil_row(want.data() + 1 + off, src.data() + 1 + off, n, 0.1);
      pk::ScopedIsa pin{pk::Isa::kAvx2};
      pk::stencil_row(got.data() + 1 + off, src.data() + 1 + off, n, 0.1);
      for (std::size_t i = 0; i < n + 2 + off; ++i) {
        EXPECT_TRUE(bits_equal(want[i], got[i])) << "n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(KernelsEquivalence, GemmAllTailShapes) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  // Cover every i-tail (n mod 4) and j-tail (m mod 8) combination.
  for (const std::size_t n : {1ul, 2ul, 4ul, 5ul, 7ul, 12ul}) {
    for (const std::size_t m : {1ul, 3ul, 8ul, 9ul, 17ul}) {
      const std::size_t k = 6;
      const auto a = random_values(n * k, n + 41);
      const auto b = random_values(k * m, m + 43);
      // C starts nonzero: gemm accumulates (C += A·B).
      auto want = random_values(n * m, n * m + 47);
      std::vector<double> got(want.begin(), want.end());
      pk::ref::gemm_block(a.data(), b.data(), want.data(), n, k, m);
      pk::ScopedIsa pin{pk::Isa::kAvx2};
      pk::gemm_block(a.data(), b.data(), got.data(), n, k, m);
      for (std::size_t i = 0; i < n * m; ++i) {
        EXPECT_TRUE(bits_equal(want[i], got[i])) << "n=" << n << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(KernelsEquivalence, AxpyTails) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  for (const std::size_t n : {1ul, 4ul, 5ul, 127ul}) {
    const auto x = random_values(n, n + 3);
    auto want = random_values(n, n + 5);
    std::vector<double> got(want.begin(), want.end());
    pk::ref::axpy(want.data(), x.data(), -0.75, n);
    pk::ScopedIsa pin{pk::Isa::kAvx2};
    pk::axpy(got.data(), x.data(), -0.75, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(bits_equal(want[i], got[i])) << i;
  }
}

TEST(KernelsEquivalence, NanInputsPropagateIdentically) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 path in this build/CPU";
  const std::size_t d = 7;
  auto a = random_values(d, 1);
  auto b = random_values(d, 2);
  a[3] = kNan;
  const double want = pk::ref::squared_distance(a.data(), b.data(), d);
  EXPECT_TRUE(std::isnan(want));
  pk::ScopedIsa pin{pk::Isa::kAvx2};
  EXPECT_TRUE(bits_equal(want, pk::squared_distance(a.data(), b.data(), d)));
}

// ---- argmin semantics (both paths) ------------------------------------------------

class KernelsArgmin : public ::testing::TestWithParam<pk::Isa> {
 protected:
  void SetUp() override {
    if (!pk::isa_available(GetParam())) GTEST_SKIP() << "isa unavailable";
  }
};

TEST_P(KernelsArgmin, TieBreaksToLowestIndex) {
  pk::ScopedIsa pin{GetParam()};
  // Centroids 1 and 2 are identical and equidistant winners.
  const std::vector<double> cent = {5.0, 5.0, 1.0, 1.0, 1.0, 1.0, 9.0, 9.0};
  const auto panel = make_panel(cent, 4, 2);
  const std::vector<double> q = {1.0, 1.0};
  double best = -1.0;
  EXPECT_EQ(pk::argmin_batch(q.data(), 2, panel.data(), 4, panel.padded, &best), 1u);
  EXPECT_EQ(best, 0.0);
}

TEST_P(KernelsArgmin, NanCentroidNeverWins) {
  pk::ScopedIsa pin{GetParam()};
  const std::vector<double> cent = {kNan, kNan, 2.0, 2.0, 100.0, 100.0};
  const auto panel = make_panel(cent, 3, 2);
  const std::vector<double> q = {0.0, 0.0};
  EXPECT_EQ(pk::argmin_batch(q.data(), 2, panel.data(), 3, panel.padded), 1u);
}

TEST_P(KernelsArgmin, AllNanReturnsIndexZeroWithInfiniteDistance) {
  pk::ScopedIsa pin{GetParam()};
  const std::vector<double> cent = {kNan, kNan, kNan, kNan};
  const auto panel = make_panel(cent, 2, 2);
  const std::vector<double> q = {0.0, 0.0};
  double best = 0.0;
  // NaN distances never beat the +inf starting best under strict <, so
  // the fallback index 0 is reported with the untouched +inf distance.
  EXPECT_EQ(pk::argmin_batch(q.data(), 2, panel.data(), 2, panel.padded, &best), 0u);
  EXPECT_EQ(best, kInf);
}

TEST_P(KernelsArgmin, PaddingLanesNeverSelected) {
  pk::ScopedIsa pin{GetParam()};
  // k=5 pads to 8; make the real centroids enormous so the padded +inf
  // lanes are "closest" to losing — they must still never be selected.
  std::vector<double> cent(5 * 3, 1e300);
  cent[4 * 3] = cent[4 * 3 + 1] = cent[4 * 3 + 2] = 0.5;  // centroid 4 wins
  const auto panel = make_panel(cent, 5, 3);
  const std::vector<double> q = {0.0, 0.0, 0.0};
  EXPECT_EQ(pk::argmin_batch(q.data(), 3, panel.data(), 5, panel.padded), 4u);
}

INSTANTIATE_TEST_SUITE_P(BothIsas, KernelsArgmin,
                         ::testing::Values(pk::Isa::kScalar, pk::Isa::kAvx2),
                         [](const ::testing::TestParamInfo<pk::Isa>& param_info) {
                           return pk::isa_name(param_info.param);
                         });

// ---- degenerate shapes ------------------------------------------------------------

TEST(KernelsEdge, ZeroLengthInputs) {
  EXPECT_EQ(pk::squared_distance(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(pk::dot(nullptr, nullptr, 0), 0.0);
  pk::stencil_row(nullptr, nullptr, 0, 0.5);  // no-op, must not crash
  pk::axpy(nullptr, nullptr, 2.0, 0);
}

// ---- crc32c (wire frame + durable checkpoint checksum) ----------------------------

TEST(KernelsCrc32c, KnownVector) {
  // The canonical CRC32C check value: "123456789" -> 0xE3069283
  // (RFC 3720 appendix B / every iSCSI test suite).
  const char* s = "123456789";
  EXPECT_EQ(pk::ref::crc32c(0, s, 9), 0xE3069283u);
  EXPECT_EQ(pk::crc32c(0, s, 9), 0xE3069283u);
}

TEST(KernelsCrc32c, EmptyInputIsSeed) {
  EXPECT_EQ(pk::ref::crc32c(0, nullptr, 0), 0u);
  EXPECT_EQ(pk::ref::crc32c(0x12345678u, nullptr, 0), 0x12345678u);
}

TEST(KernelsCrc32c, HardwareMatchesScalarBitExactly) {
  if (!pk::crc32c_hw_available()) GTEST_SKIP() << "no SSE4.2 path in this build/CPU";
  peachy::rng::Lcg64 gen{7};
  std::vector<unsigned char> buf(1024);
  for (auto& b : buf) b = static_cast<unsigned char>(gen.next_u32() & 0xFF);
  // Every length 0..~1k and every alignment offset 0..7: the hw path's
  // align-to-8 prologue and u64 word loop must agree with the table twin
  // on all tails.
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{15},
                          std::size_t{16}, std::size_t{63}, std::size_t{64}, std::size_t{65},
                          std::size_t{255}, std::size_t{1000}}) {
    for (std::size_t off = 0; off < 8 && off + len <= buf.size(); ++off) {
      EXPECT_EQ(pk::detail::crc32c_sse42(0xDEADBEEFu, buf.data() + off, len),
                pk::ref::crc32c(0xDEADBEEFu, buf.data() + off, len))
          << "len=" << len << " off=" << off;
    }
  }
}

TEST(KernelsCrc32c, ChainsAcrossSplits) {
  // crc(a+b) == crc(crc(a), b): the frame checksum chains header then
  // payload without concatenating them.
  const char* s = "peachy parallel assignments";
  const std::size_t n = 27;
  const std::uint32_t whole = pk::crc32c(0, s, n);
  for (std::size_t cut = 0; cut <= n; ++cut) {
    EXPECT_EQ(pk::crc32c(pk::crc32c(0, s, cut), s + cut, n - cut), whole) << "cut=" << cut;
  }
}

TEST(KernelsCrc32c, ForceScalarHookDispatches) {
  const char* s = "123456789";
  pk::force_crc32c_scalar(true);
  EXPECT_EQ(pk::crc32c(0, s, 9), 0xE3069283u);
  pk::force_crc32c_scalar(false);
  EXPECT_EQ(pk::crc32c(0, s, 9), 0xE3069283u);
}
