// Unit tests for peachy::support — pool, barrier, parallel loops, stats,
// hashing, CLI, and table rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

#include "support/barrier.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/hash.hpp"
#include "support/parallel_for.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace ps = peachy::support;

// ---- check -----------------------------------------------------------------

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(PEACHY_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    PEACHY_CHECK(2 < 1, "two is not less than one");
    FAIL() << "expected throw";
  } catch (const peachy::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, ThrowsWithoutMessage) { EXPECT_THROW(PEACHY_CHECK(false), peachy::Error); }

// ---- hash ------------------------------------------------------------------

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(ps::fnv1a64(""), 0xcbf29ce484222325ULL);
  // Published vector: fnv1a64("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(ps::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, StableAcrossCalls) {
  EXPECT_EQ(ps::stable_hash(std::string{"query17"}), ps::stable_hash(std::string{"query17"}));
  EXPECT_EQ(ps::stable_hash(12345), ps::stable_hash(12345));
  EXPECT_NE(ps::stable_hash(12345), ps::stable_hash(12346));
}

TEST(Hash, Mix64IsInjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(ps::mix64(i));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Hash, PairHashing) {
  const auto a = ps::stable_hash(std::pair<int, int>{1, 2});
  const auto b = ps::stable_hash(std::pair<int, int>{2, 1});
  EXPECT_NE(a, b);
}

// ---- static_block ----------------------------------------------------------

TEST(StaticBlock, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 101u}) {
    for (std::size_t parts : {1u, 2u, 3u, 8u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t t = 0; t < parts; ++t) {
        const auto r = ps::static_block(n, parts, t);
        EXPECT_EQ(r.begin, prev_end);
        covered += r.end - r.begin;
        prev_end = r.end;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(StaticBlock, NearEven) {
  // 10 over 4 → sizes 3,3,2,2.
  EXPECT_EQ(ps::static_block(10, 4, 0).end - ps::static_block(10, 4, 0).begin, 3u);
  EXPECT_EQ(ps::static_block(10, 4, 3).end - ps::static_block(10, 4, 3).begin, 2u);
}

TEST(StaticBlock, RejectsBadArgs) {
  EXPECT_THROW((void)ps::static_block(10, 0, 0), peachy::Error);
  EXPECT_THROW((void)ps::static_block(10, 2, 2), peachy::Error);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, ExecutesAllTasks) {
  ps::ThreadPool pool{4};
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_GE(pool.tasks_executed(), 100u);
}

TEST(ThreadPool, FuturePropagatesValue) {
  ps::ThreadPool pool{2};
  auto f = pool.submit_future([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, FuturePropagatesException) {
  ps::ThreadPool pool{2};
  auto f = pool.submit_future([]() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, NestedSubmission) {
  ps::ThreadPool pool{2};
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 10; ++j) pool.submit([&count] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerIndexVisibleInsideTasks) {
  ps::ThreadPool pool{3};
  auto f = pool.submit_future([&pool] { return pool.worker_index(); });
  const std::size_t idx = f.get();
  EXPECT_LT(idx, 3u);
  EXPECT_EQ(pool.worker_index(), static_cast<std::size_t>(-1));  // caller is not a worker
}

TEST(ThreadPool, RejectsNullTask) {
  ps::ThreadPool pool{1};
  EXPECT_THROW(pool.submit(ps::ThreadPool::Task{}), peachy::Error);
}

// ---- barrier ---------------------------------------------------------------

TEST(CyclicBarrier, SynchronizesPhases) {
  constexpr std::size_t kParties = 4;
  constexpr int kPhases = 25;
  ps::CyclicBarrier bar{kParties};
  std::vector<int> progress(kParties, 0);
  std::atomic<bool> out_of_step{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&, t] {
      for (int ph = 0; ph < kPhases; ++ph) {
        progress[t] = ph;
        bar.arrive_and_wait();
        // After the barrier every participant must have recorded phase ph.
        for (std::size_t o = 0; o < kParties; ++o) {
          if (progress[o] < ph) out_of_step.store(true);
        }
        bar.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(out_of_step.load());
}

TEST(CyclicBarrier, ReturnsMonotonicPhase) {
  ps::CyclicBarrier bar{1};
  EXPECT_EQ(bar.arrive_and_wait(), 0u);
  EXPECT_EQ(bar.arrive_and_wait(), 1u);
  EXPECT_EQ(bar.arrive_and_wait(), 2u);
}

TEST(CyclicBarrier, RejectsZeroParties) { EXPECT_THROW(ps::CyclicBarrier{0}, peachy::Error); }

// ---- parallel_for ----------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ps::ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  ps::parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ps::ThreadPool pool{2};
  int calls = 0;
  ps::parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  ps::parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForThreads, StaticScheduleMatchesBlockRule) {
  ps::ThreadPool pool{4};
  std::mutex mu;
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> blocks;
  ps::parallel_for_threads(pool, 103, 4, [&](std::size_t t, std::size_t lo, std::size_t hi) {
    std::lock_guard lock{mu};
    blocks[t] = {lo, hi};
  });
  ASSERT_EQ(blocks.size(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    const auto expect = ps::static_block(103, 4, t);
    EXPECT_EQ(blocks[t].first, expect.begin);
    EXPECT_EQ(blocks[t].second, expect.end);
  }
}

TEST(ParallelReduce, SumsCorrectly) {
  ps::ThreadPool pool{4};
  const auto total = ps::parallel_reduce(
      pool, 0, 10001, std::int64_t{0}, std::plus<>{},
      [](std::size_t i) { return static_cast<std::int64_t>(i); });
  EXPECT_EQ(total, 10001LL * 10000 / 2);
}

TEST(ParallelReduce, DeterministicForFixedThreadCount) {
  ps::ThreadPool pool{3};
  auto run = [&] {
    return ps::parallel_reduce(pool, 0, 5000, 0.0, std::plus<>{},
                               [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); });
  };
  EXPECT_EQ(run(), run());  // bitwise equal: partials combined in thread order
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, MeanVariancePercentile) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ps::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(ps::variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(ps::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ps::percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ps::percentile(xs, 0.5), 3.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs{4, 1, 3, 2};
  const auto s = ps::summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW((void)ps::mean(empty), peachy::Error);
  EXPECT_THROW((void)ps::summarize(empty), peachy::Error);
  EXPECT_THROW((void)ps::percentile(empty, 0.5), peachy::Error);
}

TEST(Stats, PercentileRejectsBadQ) {
  const std::vector<double> xs{1, 2};
  EXPECT_THROW((void)ps::percentile(xs, -0.1), peachy::Error);
  EXPECT_THROW((void)ps::percentile(xs, 1.1), peachy::Error);
}

TEST(Stats, ChiSquaredUniformOnPerfectHistogram) {
  const std::vector<std::uint64_t> h(16, 100);
  EXPECT_DOUBLE_EQ(ps::chi_squared_uniform(h), 0.0);
}

TEST(Stats, LoadImbalance) {
  const std::vector<double> balanced{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(ps::load_imbalance_cv(balanced), 0.0);
  const std::vector<double> skewed{10, 0, 0, 0};
  EXPECT_GT(ps::load_imbalance_cv(skewed), 1.0);
}

// ---- cli -------------------------------------------------------------------

TEST(Cli, ParsesTypedDefaultsAndOverrides) {
  const char* argv[] = {"prog", "--n=42", "--rate", "0.5", "--verbose"};
  ps::Cli cli{5, argv};
  EXPECT_EQ(cli.get<int>("n", 7), 42);
  EXPECT_DOUBLE_EQ(cli.get<double>("rate", 0.1), 0.5);
  EXPECT_EQ(cli.get<int>("missing", 9), 9);
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_FALSE(cli.flag("quiet"));
  EXPECT_NO_THROW(cli.finish());
}

TEST(Cli, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--bogus=1"};
  ps::Cli cli{2, argv};
  EXPECT_THROW(cli.finish(), peachy::Error);
}

TEST(Cli, RejectsMalformedValue) {
  const char* argv[] = {"prog", "--n=notanumber"};
  ps::Cli cli{2, argv};
  EXPECT_THROW((void)cli.get<int>("n", 0), peachy::Error);
}

TEST(Cli, StringValuesPassThrough) {
  const char* argv[] = {"prog", "--name=hello world"};
  ps::Cli cli{2, argv};
  EXPECT_EQ(cli.get<std::string>("name", ""), "hello world");
}

// ---- table -----------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  ps::Table t;
  t.header({"name", "value"});
  t.row({std::string{"alpha"}, 1.5});
  t.row({std::string{"b"}, std::int64_t{42}});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  ps::Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({std::string{"only-one"}}), peachy::Error);
}

// ---- timer -----------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsedTime) {
  ps::Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_GE(sw.elapsed_ms(), 5.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 5.0);
}

TEST(Timer, TimeBestOfRunsAllReps) {
  int runs = 0;
  (void)ps::time_best_of(5, [&] { ++runs; });
  EXPECT_EQ(runs, 5);
}
