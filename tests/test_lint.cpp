/// \file test_lint.cpp
/// \brief peachy::lint — tokenizer, rule engine, goldens, and the
/// zero-findings gate on the repository's own sources.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace lint = peachy::lint;

namespace {

std::string fixture(const std::string& name) {
  return std::string{PEACHY_LINT_FIXTURE_DIR} + "/" + name;
}

/// "L1:17" keys, sorted — the golden-file currency.
std::vector<std::string> keys_of(const lint::Result& r) {
  std::vector<std::string> keys;
  keys.reserve(r.findings.size());
  for (const lint::Finding& f : r.findings) {
    keys.push_back(std::string{lint::rule_id(f.rule)} + ":" + std::to_string(f.line));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> read_expected(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::vector<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) keys.push_back(line);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expect_golden(const std::string& stem) {
  const lint::Result r = lint::lint_file(fixture(stem + ".cpp"));
  EXPECT_EQ(keys_of(r), read_expected(fixture(stem + ".expected"))) << lint::to_text(r);
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, TokenizesIdentifiersNumbersAndPuncts) {
  const auto ts = lint::tokenize("int x = 1'000 + 0x1F;");
  std::vector<std::string> texts;
  for (const auto& t : ts.tokens) texts.push_back(t.text);
  const std::vector<std::string> want{"int", "x", "=", "1'000", "+", "0x1F", ";"};
  EXPECT_EQ(texts, want);
}

TEST(LintLexer, KeepsChronoSuffixAttached) {
  const auto ts = lint::tokenize("c.recv<double>(0, 7, 200ms);");
  bool found = false;
  for (const auto& t : ts.tokens) {
    if (t.text == "200ms") found = t.kind == lint::TokKind::number;
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, CollapsesStringsAndRawStrings) {
  const auto ts = lint::tokenize(R"SRC(auto s = R"(if (rank) c.barrier();)"; auto q = "x";)SRC");
  for (const auto& t : ts.tokens) {
    EXPECT_NE(t.text, "barrier");  // quoted text must not leak into the stream
  }
  int strings = 0;
  for (const auto& t : ts.tokens) {
    if (t.kind == lint::TokKind::string_lit) ++strings;
  }
  EXPECT_EQ(strings, 2);
}

TEST(LintLexer, CollectsCommentsSeparately) {
  const auto ts = lint::tokenize("int a; // peachy-lint: allow(L2)\n/* block\ncomment */int b;");
  ASSERT_EQ(ts.comments.size(), 2u);
  EXPECT_NE(ts.comments[0].text.find("allow(L2)"), std::string::npos);
  EXPECT_EQ(ts.comments[0].line, 1);
  EXPECT_EQ(ts.comments[1].line, 2);
  EXPECT_EQ(ts.comments[1].end_line, 3);
  for (const auto& t : ts.tokens) EXPECT_NE(t.text, "comment");
}

TEST(LintLexer, SkipsPreprocessorLines) {
  const auto ts = lint::tokenize("#include <vector>\n#define FOO \\\n  barrier\nint x;");
  for (const auto& t : ts.tokens) {
    EXPECT_NE(t.text, "include");
    EXPECT_NE(t.text, "barrier");  // continuation line is still the directive
  }
  EXPECT_EQ(ts.tokens.size(), 3u);  // int x ;
}

TEST(LintLexer, TracksLinesAndColumns) {
  const auto ts = lint::tokenize("a\n  bb\n");
  ASSERT_EQ(ts.tokens.size(), 2u);
  EXPECT_EQ(ts.tokens[1].line, 2);
  EXPECT_EQ(ts.tokens[1].col, 3);
}

// ---------------------------------------------------------------------------
// Rule API
// ---------------------------------------------------------------------------

TEST(LintApi, RuleIdsRoundTrip) {
  for (std::size_t k = 0; k < lint::kRuleCount; ++k) {
    const auto r = static_cast<lint::Rule>(k);
    lint::Rule parsed{};
    ASSERT_TRUE(lint::parse_rule(lint::rule_id(r), parsed));
    EXPECT_EQ(parsed, r);
  }
  lint::Rule r{};
  EXPECT_FALSE(lint::parse_rule("L7", r));
  EXPECT_FALSE(lint::parse_rule("", r));
  EXPECT_FALSE(lint::parse_rule("X1", r));
}

TEST(LintApi, RuleFilterDisablesRules) {
  lint::Options only_l6;
  for (bool& e : only_l6.enabled) e = false;
  only_l6.enabled[static_cast<std::size_t>(lint::Rule::L6_ignored_result)] = true;
  const lint::Result r = lint::lint_file(fixture("l6_ignored_results.cpp"), only_l6);
  EXPECT_EQ(r.findings.size(), r.count(lint::Rule::L6_ignored_result));
  EXPECT_GT(r.findings.size(), 0u);

  lint::Options no_l2;
  no_l2.enabled[static_cast<std::size_t>(lint::Rule::L2_collective_divergence)] = false;
  const lint::Result r2 = lint::lint_file(fixture("l2_divergence.cpp"), no_l2);
  EXPECT_EQ(r2.count(lint::Rule::L2_collective_divergence), 0u);
}

TEST(LintApi, MissingPathThrows) {
  EXPECT_THROW((void)lint::lint_path(fixture("no_such_file.cpp")), peachy::Error);
}

// ---------------------------------------------------------------------------
// Golden fixtures: every seeded violation, no more, no less.
// ---------------------------------------------------------------------------

TEST(LintGolden, L1CaptureRace) { expect_golden("l1_race"); }
TEST(LintGolden, L2CollectiveDivergence) { expect_golden("l2_divergence"); }
TEST(LintGolden, L3UseAfterMove) { expect_golden("l3_use_after_move"); }
TEST(LintGolden, L4UnboundedRecv) { expect_golden("l4_unbounded_recv"); }
TEST(LintGolden, L5MagicTag) { expect_golden("l5_magic_tag"); }
TEST(LintGolden, L6IgnoredResult) { expect_golden("l6_ignored_results"); }
TEST(LintGolden, CleanFixtureIsClean) { expect_golden("clean"); }

TEST(LintGolden, SuppressionsHonored) {
  const lint::Result r = lint::lint_file(fixture("suppressed.cpp"));
  EXPECT_EQ(keys_of(r), read_expected(fixture("suppressed.expected"))) << lint::to_text(r);
  EXPECT_EQ(r.suppressed, 2u);
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

TEST(LintOutput, TextFormat) {
  const lint::Result r = lint::lint_file(fixture("l2_divergence.cpp"));
  const std::string text = lint::to_text(r);
  EXPECT_NE(text.find("[L2]"), std::string::npos);
  EXPECT_NE(text.find("l2_divergence.cpp:12:"), std::string::npos);
  EXPECT_NE(text.find("finding(s)"), std::string::npos);
}

TEST(LintOutput, JsonSchema) {
  const lint::Result r = lint::lint_file(fixture("l5_magic_tag.cpp"));
  const std::string json = lint::to_json(r);
  EXPECT_NE(json.find("\"schema\": \"peachy-lint/1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"L5\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"magic-tag\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
}

TEST(LintOutput, JsonEscapesSpecials) {
  const lint::Result r =
      lint::lint_source("we\"ird\\path.cpp", "void f(peachy::mpi::Comm& c) { c.shrink(); }");
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string json = lint::to_json(r);
  EXPECT_NE(json.find("we\\\"ird\\\\path.cpp"), std::string::npos);
}

TEST(LintOutput, EmptyJsonIsWellFormed) {
  const std::string json = lint::to_json(lint::Result{});
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

TEST(LintOutput, AnalysisReportBridge) {
  const lint::Result r = lint::lint_file(fixture("l1_race.cpp"));
  const peachy::analysis::Report rep = lint::to_analysis_report(r);
  EXPECT_EQ(rep.count(peachy::analysis::FindingKind::lint), r.findings.size());
  EXPECT_TRUE(rep.mentions("[L1]"));
  EXPECT_TRUE(rep.mentions("l1_race.cpp:17"));
  // Static findings are warnings: they advise the grader, they do not fail
  // the execution-level verdict by themselves.
  EXPECT_TRUE(rep.clean());
}

// ---------------------------------------------------------------------------
// The gate: the repository's own sources and examples stay lint-clean.
// ---------------------------------------------------------------------------

TEST(LintGate, RepositorySourcesAreClean) {
  lint::Result all = lint::lint_path(std::string{PEACHY_SOURCE_DIR} + "/src");
  all.merge(lint::lint_path(std::string{PEACHY_SOURCE_DIR} + "/examples"));
  EXPECT_TRUE(all.clean()) << lint::to_text(all);
  EXPECT_GT(all.files_scanned, 50u);
}

TEST(LintGate, DirectoryScanFindsFixtures) {
  const lint::Result all = lint::lint_path(std::string{PEACHY_LINT_FIXTURE_DIR});
  EXPECT_EQ(all.files_scanned, 8u);
  EXPECT_FALSE(all.clean());
  for (std::size_t k = 0; k < lint::kRuleCount; ++k) {
    EXPECT_GT(all.count(static_cast<lint::Rule>(k)), 0u)
        << "rule " << lint::rule_id(static_cast<lint::Rule>(k))
        << " found nothing across the corpus";
  }
}
