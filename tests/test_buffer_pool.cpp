// Tests for the pooled zero-copy transport: BufferPool slab reuse and
// adoption semantics, cross-thread acquire/share/release (the TSan
// fixture for the refcount and freelist paths), the recv_into exact-size
// contract, post_move payload integrity under wildcard matching, the
// checker's view of pooled + moved messages, and the exact TrafficStats
// regression pinning the distributed experiments' message/byte counts to
// their pre-pool values — the transport rewrite must be invisible to the
// counters.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "data/points.hpp"
#include "kmeans/mpi_kmeans.hpp"
#include "mpi/buffer_pool.hpp"
#include "mpi/mpi.hpp"
#include "obs/obs.hpp"
#include "traffic/mpi_traffic.hpp"

namespace pa = peachy::analysis;
namespace pm = peachy::mpi;

namespace {

/// True iff `what()` of a thrown peachy::Error contains `needle`.
template <typename Fn>
testing::AssertionResult throws_mentioning(Fn&& fn, const std::string& needle) {
  try {
    fn();
  } catch (const peachy::Error& e) {
    if (std::string{e.what()}.find(needle) != std::string::npos) {
      return testing::AssertionSuccess();
    }
    return testing::AssertionFailure() << "error did not mention \"" << needle
                                       << "\": " << e.what();
  }
  return testing::AssertionFailure() << "no peachy::Error thrown";
}

}  // namespace

// ---- pool mechanics ---------------------------------------------------------------

TEST(BufferPool, SlabReuseIsAHitAndLiveGaugeBalances) {
  auto& pool = pm::BufferPool::instance();
  pool.trim();
  const auto before = pool.stats();
  {
    auto a = pool.acquire(1000);
    EXPECT_EQ(a.size(), 1000u);
    EXPECT_EQ(pool.stats().live, before.live + 1);
  }  // released -> parked
  const auto mid = pool.stats();
  EXPECT_EQ(mid.live, before.live);
  EXPECT_GT(mid.free_bytes, 0u);
  {
    auto b = pool.acquire(900);  // same power-of-two class as 1000
    EXPECT_EQ(b.size(), 900u);
  }
  const auto after = pool.stats();
  EXPECT_EQ(after.hits, mid.hits + 1);
  EXPECT_EQ(after.acquires, before.acquires + 2);
  pool.trim();
  EXPECT_EQ(pool.stats().free_bytes, 0u);
}

TEST(BufferPool, PayloadIsMaxAlignedForInPlaceTypedReads) {
  auto& pool = pm::BufferPool::instance();
  for (const std::size_t n : {1u, 17u, 255u, 4096u, 100000u, (5u << 20)}) {
    const auto buf = pool.acquire(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % alignof(std::max_align_t), 0u)
        << "size " << n;
  }
}

TEST(BufferPool, AdoptedByteVectorIsZeroCopyInAndOut) {
  auto& pool = pm::BufferPool::instance();
  std::vector<std::byte> v(4096, std::byte{0x5a});
  const std::byte* heap = v.data();
  auto buf = pool.adopt(std::move(v));
  EXPECT_EQ(buf.data(), heap) << "adopt must not copy";
  EXPECT_EQ(buf.size(), 4096u);
  const auto back = buf.release_bytes();
  EXPECT_EQ(back.data(), heap) << "unique adopted byte vector must be stolen back";
  EXPECT_EQ(buf.size(), 0u);  // handle consumed
}

TEST(BufferPool, SharedBufferIsCopiedOutNotStolen) {
  auto& pool = pm::BufferPool::instance();
  std::vector<std::byte> v(64, std::byte{9});
  auto buf = pool.adopt(std::move(v));
  auto alias = buf.share();
  EXPECT_EQ(alias.data(), buf.data());
  auto out = buf.release_bytes();  // refcount 2: must copy, not steal
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out[0], std::byte{9});
  ASSERT_EQ(alias.size(), 64u);  // the other reference still sees the bytes
  EXPECT_EQ(alias.data()[63], std::byte{9});
}

TEST(BufferPool, AdoptTypedPreservesBytesWithoutCopy) {
  auto& pool = pm::BufferPool::instance();
  std::vector<double> v{1.5, -2.5, 3.25};
  const auto* heap = reinterpret_cast<const std::byte*>(v.data());
  const auto buf = pool.adopt_typed(std::move(v));
  EXPECT_EQ(buf.data(), heap);
  ASSERT_EQ(buf.size(), 3 * sizeof(double));
  double got[3];
  std::memcpy(got, buf.data(), sizeof(got));
  EXPECT_EQ(got[1], -2.5);
}

TEST(BufferPool, DisabledPoolingNeverReuses) {
  auto& pool = pm::BufferPool::instance();
  pool.trim();
  pool.set_pooling(false);
  const auto before = pool.stats();
  { auto a = pool.acquire(512); }
  { auto b = pool.acquire(512); }
  const auto after = pool.stats();
  EXPECT_EQ(after.hits, before.hits);  // no reuse
  EXPECT_EQ(after.misses, before.misses + 2);
  EXPECT_EQ(pool.stats().free_bytes, 0u);  // nothing parked
  pool.set_pooling(true);
}

// The TSan fixture: producers acquire/adopt, fill, and hand buffers (plus
// shared aliases) to consumers over a queue; consumers verify contents
// and drop the last references concurrently with producer releases, so
// refcount decrements and freelist push/pop race on every size class.
TEST(BufferPoolConcurrency, CrossThreadAcquireShareReleaseIsRaceFree) {
  auto& pool = pm::BufferPool::instance();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<pm::PayloadBuffer, std::byte>> queue;  // buffer + expected fill
  int producers_left = kProducers;

  std::vector<std::thread> consumers;
  std::atomic<int> verified{0};
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::pair<pm::PayloadBuffer, std::byte> item;
        {
          std::unique_lock lk{mu};
          cv.wait(lk, [&] { return !queue.empty() || producers_left == 0; });
          if (queue.empty()) return;
          item = std::move(queue.front());
          queue.pop_front();
        }
        const auto& buf = item.first;
        ASSERT_GT(buf.size(), 0u);
        EXPECT_EQ(buf.data()[0], item.second);
        EXPECT_EQ(buf.data()[buf.size() - 1], item.second);
        verified.fetch_add(1, std::memory_order_relaxed);
      }  // buffer dropped here, racing the producers' own releases
    });
  }

  std::vector<std::thread> producers;
  for (int id = 0; id < kProducers; ++id) {
    producers.emplace_back([&, id] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto fill = static_cast<std::byte>((id * 31 + i) % 251);
        const std::size_t n = 64u << (i % 8);  // spread across size classes
        pm::PayloadBuffer buf;
        if (i % 3 == 0) {
          buf = pm::BufferPool::instance().adopt(std::vector<std::byte>(n, fill));
        } else {
          buf = pool.acquire(n);
          std::memset(buf.mutable_data(), static_cast<int>(fill), n);
        }
        auto alias = buf.share();  // producer keeps a reference...
        {
          std::lock_guard lk{mu};
          queue.emplace_back(std::move(buf), fill);
        }
        cv.notify_one();
        EXPECT_EQ(alias.data()[n / 2], fill);  // ...and reads it concurrently
      }
      {
        std::lock_guard lk{mu};
        if (--producers_left == 0) cv.notify_all();
      }
    });
  }
  for (auto& t : producers) t.join();
  cv.notify_all();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(verified.load(), kProducers * kPerProducer);
}

// ---- recv_into exact-size contract ------------------------------------------------

TEST(TransportRecvInto, LandsInCallerStorageWithStatus) {
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      const std::vector<std::int32_t> payload{10, 20, 30, 40};
      c.send<std::int32_t>(1, 4, payload);
    } else {
      std::vector<std::int32_t> out(4, -1);
      const pm::Status st = c.recv_into<std::int32_t>(std::span<std::int32_t>{out}, 0, 4);
      EXPECT_EQ(out, (std::vector<std::int32_t>{10, 20, 30, 40}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.bytes, 4 * sizeof(std::int32_t));
    }
  });
}

TEST(TransportRecvInto, OversizedMessageIsANamedTruncationError) {
  EXPECT_TRUE(throws_mentioning(
      [] {
        pm::run(2, [](pm::Comm& c) {
          if (c.rank() == 0) {
            c.send<std::int32_t>(1, 1, std::vector<std::int32_t>{1, 2, 3, 4});
          } else {
            std::int32_t two[2];
            (void)c.recv_into<std::int32_t>(std::span<std::int32_t>{two}, 0, 1);
          }
        });
      },
      "would be truncated into"));
}

TEST(TransportRecvInto, ShortMessageIsANamedError) {
  EXPECT_TRUE(throws_mentioning(
      [] {
        pm::run(2, [](pm::Comm& c) {
          if (c.rank() == 0) {
            c.send<std::int32_t>(1, 1, std::vector<std::int32_t>{1});
          } else {
            std::int32_t four[4];
            (void)c.recv_into<std::int32_t>(std::span<std::int32_t>{four}, 0, 1);
          }
        });
      },
      "is shorter than"));
}

// ---- moved payloads ---------------------------------------------------------------

TEST(TransportMove, MovedByteSendIsZeroCopyEndToEnd) {
  pm::run(1, [](pm::Comm& c) {
    std::vector<std::byte> payload(10000, std::byte{0x2b});
    const std::byte* heap = payload.data();
    c.send_bytes_move(0, 3, std::move(payload));
    const auto got = c.recv_bytes(0, 3);
    ASSERT_EQ(got.size(), 10000u);
    EXPECT_EQ(got.data(), heap) << "receiver must steal the adopted vector, not copy it";
  });
}

TEST(TransportMove, PostMovePayloadsSurviveWildcardMatching) {
  pm::run(4, [](pm::Comm& c) {
    if (c.rank() == 0) {
      std::uint64_t seen_mask = 0;
      for (int i = 0; i < 3; ++i) {
        pm::Status st;
        const auto got = c.recv<std::uint64_t>(pm::kAnySource, pm::kAnyTag, &st);
        ASSERT_EQ(got.size(), 1024u);
        // Every element encodes its sender: integrity across the
        // adopt -> mailbox -> wildcard-match -> steal path.
        for (std::size_t j = 0; j < got.size(); ++j) {
          ASSERT_EQ(got[j], static_cast<std::uint64_t>(st.source) * 1000 + j % 7);
        }
        EXPECT_EQ(st.tag, 40 + st.source);
        seen_mask |= std::uint64_t{1} << st.source;
      }
      EXPECT_EQ(seen_mask, 0b1110u);
    } else {
      std::vector<std::uint64_t> payload(1024);
      for (std::size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<std::uint64_t>(c.rank()) * 1000 + j % 7;
      }
      c.send_move<std::uint64_t>(0, 40 + c.rank(), std::move(payload));
    }
  });
}

TEST(TransportMove, CopiedAndMovedSendsCountIdentically) {
  // The counters describe messages, not transport mechanics: a moved send
  // must be indistinguishable from a copied one.
  const auto count = [](bool moved) {
    return pm::run(2, [moved](pm::Comm& c) {
      if (c.rank() == 0) {
        std::vector<double> payload(500, 1.0);
        if (moved) {
          c.send_move<double>(1, 2, std::move(payload));
        } else {
          c.send<double>(1, 2, payload);
        }
      } else {
        (void)c.recv<double>(0, 2);
      }
    });
  };
  const auto copied = count(false);
  const auto m = count(true);
  EXPECT_EQ(copied.messages, m.messages);
  EXPECT_EQ(copied.bytes, m.bytes);
  EXPECT_EQ(copied.bytes, 500 * sizeof(double));
}

// ---- checker still sees pooled + moved messages -----------------------------------

TEST(TransportChecker, LeakedMovedMessageIsReportedWithItsSize) {
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_move<std::int32_t>(1, 7, std::vector<std::int32_t>{1, 2, 3});  // never received
    }
  });
  EXPECT_FALSE(res.report.clean());
  EXPECT_EQ(res.report.count(pa::FindingKind::message_leak), 1u);
  EXPECT_TRUE(res.report.mentions("message from rank 0 to rank 1 (tag=7, 12 bytes)"))
      << res.report.to_string();
}

TEST(TransportChecker, DeadlockDetectionUnaffectedByMovedTraffic) {
  // Moved messages flow on tag 1 and sit unmatched in the mailboxes; the
  // deadlock (everyone stuck on tag 9, which nobody sends) must still be
  // detected through them.  (Leaks are only scanned on normal exit, so
  // the unreceived tag-1 messages do not additionally show up here.)
  const auto res = pm::run_checked(2, [](pm::Comm& c) {
    c.send_bytes_move(1 - c.rank(), 1, std::vector<std::byte>(64, std::byte{1}));
    (void)c.recv_bytes(1 - c.rank(), 9);
  });
  EXPECT_EQ(res.report.count(pa::FindingKind::deadlock), 1u);
  EXPECT_TRUE(res.report.mentions("cyclic recv dependency among ranks {0, 1}"))
      << res.report.to_string();
}

// ---- TrafficStats regression: bit-identical to the pre-pool transport -------------

// These exact counts were captured from the experiment workloads *before*
// the pooled transport landed (see DESIGN.md §11); the rewrite contract
// is that message shapes and sizes are unchanged, so any drift here means
// an algorithm changed what it sends, not just how.

TEST(TransportRegression, KmeansMpiTrafficCountsAreUnchanged) {
  peachy::data::BlobsSpec spec;
  spec.classes = 8;
  spec.points_per_class = 2000 / 8;
  spec.dims = 4;
  spec.spread = 2.0;
  spec.seed = 17;
  const auto points = peachy::data::gaussian_blobs(spec).points;

  peachy::kmeans::Options opts;
  opts.k = 8;
  opts.max_iterations = 5;
  opts.min_changes = 0;
  opts.move_tolerance = 0.0;
  opts.seed = 17;

  const struct {
    int ranks;
    std::uint64_t messages, bytes;
  } expected[] = {{2, 37, 43568}, {4, 117, 82704}, {8, 301, 136976}};
  for (const auto& e : expected) {
    const auto stats = pm::run(e.ranks, [&](pm::Comm& comm) {
      (void)peachy::kmeans::cluster_mpi(
          comm, comm.rank() == 0 ? points : peachy::data::PointSet{}, opts, nullptr);
    });
    EXPECT_EQ(stats.messages, e.messages) << "p=" << e.ranks;
    EXPECT_EQ(stats.bytes, e.bytes) << "p=" << e.ranks;
  }
}

TEST(TransportRegression, TrafficSimTrafficCountsAreUnchanged) {
  peachy::traffic::Spec spec;
  spec.cars = 500;
  spec.road_length = 4000;
  spec.seed = 31;

  const struct {
    int ranks;
    std::uint64_t messages, bytes;
  } expected[] = {{2, 80, 120000}, {4, 480, 360000}, {8, 2240, 840000}};
  for (const auto& e : expected) {
    const auto stats = pm::run(e.ranks, [&](pm::Comm& comm) {
      (void)peachy::traffic::run_mpi(comm, spec, 20, nullptr);
    });
    EXPECT_EQ(stats.messages, e.messages) << "p=" << e.ranks;
    EXPECT_EQ(stats.bytes, e.bytes) << "p=" << e.ranks;
  }
}

// ---- obs integration --------------------------------------------------------------

TEST(TransportObs, PoolCountersAndByteSplitAreRecorded) {
  peachy::obs::reset();
  peachy::obs::enable();
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send<double>(1, 1, std::vector<double>(64, 1.0));                  // copied
      c.send_move<double>(1, 2, std::vector<double>(64, 2.0));             // moved
    } else {
      (void)c.recv<double>(0, 1);
      (void)c.recv<double>(0, 2);
    }
  });
  const std::int64_t copied = peachy::obs::counter("mpi.bytes_copied").value();
  const std::int64_t moved = peachy::obs::counter("mpi.bytes_moved").value();
  const std::int64_t acquires = peachy::obs::counter("mpi.pool.hits").value() +
                                peachy::obs::counter("mpi.pool.misses").value();
  peachy::obs::disable();
  peachy::obs::reset();
  EXPECT_GE(copied, static_cast<std::int64_t>(64 * sizeof(double)));
  EXPECT_GE(moved, static_cast<std::int64_t>(64 * sizeof(double)));
  EXPECT_GT(acquires, 0);
}
