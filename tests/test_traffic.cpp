// Tests for the Nagel–Schreckenberg assignment.  The centerpiece is the
// paper's reproducibility requirement: the parallel simulation must be
// bit-identical to the serial one for every thread count, while the
// per-thread-seed shortcut must NOT be.  Model physics (no collisions,
// no overtaking, jams emerge only with randomness) are property-tested.

#include <gtest/gtest.h>

#include <set>

#include "support/check.hpp"
#include "traffic/diagram.hpp"
#include "traffic/grid.hpp"
#include "traffic/traffic.hpp"

namespace tr = peachy::traffic;

namespace {

tr::Spec fig3_spec() {
  tr::Spec spec;  // defaults are exactly Fig. 3's caption
  spec.seed = 20230712;
  return spec;
}

/// Model invariant: distinct positions, all within the road, velocities
/// within [0, v_max].
void check_valid(const tr::Spec& spec, const tr::State& st) {
  std::set<std::int64_t> seen;
  for (std::size_t i = 0; i < st.pos.size(); ++i) {
    ASSERT_GE(st.pos[i], 0);
    ASSERT_LT(st.pos[i], static_cast<std::int64_t>(spec.road_length));
    ASSERT_TRUE(seen.insert(st.pos[i]).second) << "collision at " << st.pos[i];
    ASSERT_GE(st.vel[i], 0);
    ASSERT_LE(st.vel[i], spec.v_max);
  }
}

}  // namespace

// ---- initial state -----------------------------------------------------------------

TEST(TrafficInit, ValidSortedAndDeterministic) {
  const auto spec = fig3_spec();
  const auto st = tr::initial_state(spec);
  EXPECT_EQ(st.pos.size(), spec.cars);
  check_valid(spec, st);
  EXPECT_TRUE(std::is_sorted(st.pos.begin(), st.pos.end()));
  for (int v : st.vel) EXPECT_EQ(v, 0);
  EXPECT_EQ(tr::initial_state(spec), st);
}

TEST(TrafficInit, FullRoadAllowed) {
  tr::Spec spec;
  spec.road_length = 10;
  spec.cars = 10;
  const auto st = tr::initial_state(spec);
  check_valid(spec, st);
  // Bumper to bumper: every gap is zero.
  for (std::size_t i = 0; i < spec.cars; ++i) EXPECT_EQ(tr::gap_ahead(spec, st, i), 0);
}

TEST(TrafficInit, RejectsBadSpecs) {
  tr::Spec spec;
  spec.cars = spec.road_length + 1;
  EXPECT_THROW((void)tr::initial_state(spec), peachy::Error);
  spec = {};
  spec.p_slow = 1.5;
  EXPECT_THROW((void)tr::initial_state(spec), peachy::Error);
  spec = {};
  spec.v_max = 0;
  EXPECT_THROW((void)tr::initial_state(spec), peachy::Error);
}

TEST(TrafficGap, WrapAroundComputed) {
  tr::Spec spec;
  spec.road_length = 100;
  spec.cars = 2;
  tr::State st;
  st.pos = {10, 90};
  st.vel = {0, 0};
  EXPECT_EQ(tr::gap_ahead(spec, st, 0), 79);  // 10 -> 90
  EXPECT_EQ(tr::gap_ahead(spec, st, 1), 19);  // 90 -> 10 (wrap)
}

// ---- physics ------------------------------------------------------------------------

TEST(TrafficModel, InvariantsHoldOverManySteps) {
  const auto spec = fig3_spec();
  std::vector<tr::State> snaps;
  (void)tr::run_serial(spec, 200, &snaps);
  for (const auto& st : snaps) check_valid(spec, st);
}

TEST(TrafficModel, NoOvertaking) {
  // In canonical form positions are always sorted ascending.
  const auto spec = fig3_spec();
  std::vector<tr::State> snaps;
  (void)tr::run_serial(spec, 150, &snaps);
  for (const auto& st : snaps) {
    EXPECT_TRUE(std::is_sorted(st.pos.begin(), st.pos.end()));
  }
}

TEST(TrafficModel, WithoutRandomnessNoJamsAtLowDensity) {
  // "Without randomness, these [jams] do not occur": with p = 0 and
  // density below 1/(v_max+1), traffic reaches free flow — every car at
  // v_max, none stopped.
  tr::Spec spec = fig3_spec();
  spec.p_slow = 0.0;
  spec.cars = 100;  // density 0.1 < 1/6
  std::vector<tr::State> snaps;
  (void)tr::run_serial(spec, 400, &snaps);
  const auto& final_state = snaps.back();
  EXPECT_EQ(tr::stopped_cars(final_state), 0u);
  EXPECT_DOUBLE_EQ(tr::mean_velocity(final_state), spec.v_max);
}

TEST(TrafficModel, WithRandomnessJamsEmerge) {
  // Fig. 3's phenomenon: at the same density, p = 0.13 produces stopped
  // cars (jams) that persist through the run.
  const tr::Spec spec = fig3_spec();  // density 0.2, p = 0.13
  std::vector<tr::State> snaps;
  (void)tr::run_serial(spec, 400, &snaps);
  // Average the second half to skip the transient.
  std::vector<tr::State> tail(snaps.begin() + 200, snaps.end());
  EXPECT_GT(tr::jam_fraction(tail), 0.02);
}

TEST(TrafficModel, SingleCarReachesFreeFlow) {
  tr::Spec spec;
  spec.road_length = 50;
  spec.cars = 1;
  spec.p_slow = 0.0;
  const auto st = tr::run_serial(spec, 20);
  EXPECT_EQ(st.vel[0], spec.v_max);
}

// ---- reproducibility (the assignment's core requirement) ------------------------------

class TrafficThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrafficThreads, ParallelBitIdenticalToSerial) {
  const std::size_t threads = GetParam();
  const auto spec = fig3_spec();
  const auto serial = tr::run_serial(spec, 120);
  peachy::support::ThreadPool pool{4};
  const auto parallel = tr::run_parallel(spec, 120, pool, threads);
  EXPECT_EQ(parallel, serial) << "threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TrafficThreads,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 16u));

TEST(TrafficRepro, SnapshotsAlsoIdentical) {
  const auto spec = fig3_spec();
  std::vector<tr::State> serial_snaps, parallel_snaps;
  (void)tr::run_serial(spec, 60, &serial_snaps);
  peachy::support::ThreadPool pool{3};
  (void)tr::run_parallel(spec, 60, pool, 3, nullptr, &parallel_snaps);
  EXPECT_EQ(parallel_snaps, serial_snaps);
}

TEST(TrafficRepro, IndependentSeedsAreNotReproducible) {
  // The paper's warned-against shortcut: thread-private generators give
  // thread-count-dependent trajectories.
  const auto spec = fig3_spec();
  peachy::support::ThreadPool pool{4};
  const auto t1 = tr::run_parallel_independent_rngs(spec, 80, pool, 1);
  const auto t4 = tr::run_parallel_independent_rngs(spec, 80, pool, 4);
  EXPECT_NE(t1, t4);
  // Same thread count still reproduces (it is deterministic, just not
  // thread-count invariant).
  EXPECT_EQ(tr::run_parallel_independent_rngs(spec, 80, pool, 4), t4);
}

TEST(TrafficRepro, FastForwardCountScalesWithThreadsAndSteps) {
  const auto spec = fig3_spec();
  peachy::support::ThreadPool pool{4};
  tr::ParallelStats stats2, stats4;
  (void)tr::run_parallel(spec, 50, pool, 2, &stats2);
  (void)tr::run_parallel(spec, 50, pool, 4, &stats4);
  EXPECT_EQ(stats2.fast_forwards, 50u * 2);
  EXPECT_EQ(stats4.fast_forwards, 50u * 4);
}

TEST(TrafficRepro, DifferentSeedsDifferentTrajectories) {
  tr::Spec a = fig3_spec();
  tr::Spec b = fig3_spec();
  b.seed = a.seed + 1;
  EXPECT_NE(tr::run_serial(a, 50), tr::run_serial(b, 50));
}

// ---- grid representation ----------------------------------------------------------------

class GridSteps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GridSteps, GridMatchesAgentExactly) {
  const std::size_t steps = GetParam();
  tr::Spec spec = fig3_spec();
  spec.road_length = 300;
  spec.cars = 90;
  EXPECT_EQ(tr::run_grid(spec, steps), tr::run_serial(spec, steps));
}

INSTANTIATE_TEST_SUITE_P(StepCounts, GridSteps, ::testing::Values(0u, 1u, 10u, 100u));

TEST(Grid, HighDensityStillMatches) {
  tr::Spec spec = fig3_spec();
  spec.road_length = 120;
  spec.cars = 100;  // dense: heavy braking and wraps
  EXPECT_EQ(tr::run_grid(spec, 80), tr::run_serial(spec, 80));
}

// ---- diagrams & measurements ---------------------------------------------------------------

TEST(Diagram, AsciiShapeAndMarkers) {
  const auto spec = fig3_spec();
  std::vector<tr::State> snaps;
  (void)tr::run_serial(spec, 40, &snaps);
  const auto art = tr::spacetime_ascii(spec, snaps, 4);
  // 40 rows of road_length/4 chars.
  EXPECT_EQ(art.size(), 40u * (spec.road_length / 4 + 1));
  EXPECT_NE(art.find('#'), std::string::npos);  // jams visible
}

TEST(Diagram, PgmHeader) {
  const auto spec = fig3_spec();
  std::vector<tr::State> snaps;
  (void)tr::run_serial(spec, 5, &snaps);
  const auto pgm = tr::spacetime_pgm(spec, snaps);
  EXPECT_EQ(pgm.rfind("P5\n1000 5\n255\n", 0), 0u);
}

TEST(FundamentalDiagram, FreeFlowThenCongestionCollapse) {
  tr::Spec spec = fig3_spec();
  spec.road_length = 500;
  const auto points = tr::fundamental_diagram(spec, {0.05, 0.12, 0.5, 0.8}, 300);
  ASSERT_EQ(points.size(), 4u);
  // Low density: near free flow (v close to v_max, lowered by p).
  EXPECT_GT(points[0].mean_velocity, 3.5);
  // Flow peaks near the critical density then collapses at high density.
  EXPECT_GT(points[1].flow, points[0].flow);
  EXPECT_LT(points[3].flow, points[1].flow);
  EXPECT_LT(points[3].mean_velocity, 0.5);
}

TEST(FundamentalDiagram, ValidatesInput) {
  const auto spec = fig3_spec();
  EXPECT_THROW((void)tr::fundamental_diagram(spec, {}, 10), peachy::Error);
  EXPECT_THROW((void)tr::fundamental_diagram(spec, {1.5}, 10), peachy::Error);
}

// ---- distributed-memory variation (paper §5: "using MPI") --------------------

#include "traffic/mpi_traffic.hpp"

class TrafficMpiRanks : public ::testing::TestWithParam<int> {};

TEST_P(TrafficMpiRanks, BitIdenticalToSerialForAnyRankCount) {
  const int ranks = GetParam();
  tr::Spec spec = fig3_spec();
  spec.road_length = 400;
  spec.cars = 80;
  const auto serial = tr::run_serial(spec, 60);
  peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
    const auto got = tr::run_mpi(comm, spec, 60);
    EXPECT_EQ(got, serial) << "ranks=" << ranks;
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TrafficMpiRanks, ::testing::Values(1, 2, 3, 5, 8));

TEST(TrafficMpi, ReportsTrafficAndFastForwards) {
  tr::Spec spec = fig3_spec();
  spec.road_length = 200;
  spec.cars = 40;
  peachy::mpi::run(4, [&](peachy::mpi::Comm& comm) {
    tr::MpiTrafficStats stats;
    (void)tr::run_mpi(comm, spec, 30, &stats);
    if (comm.rank() == 0) {
      EXPECT_GT(stats.messages, 0u);
      EXPECT_GT(stats.bytes, 0u);
      EXPECT_EQ(stats.fast_forwards, 30u);  // one jump per step per rank
    }
  });
}

TEST(TrafficMpi, MoreRanksThanCarsStillCorrect) {
  tr::Spec spec = fig3_spec();
  spec.road_length = 40;
  spec.cars = 5;
  const auto serial = tr::run_serial(spec, 25);
  peachy::mpi::run(8, [&](peachy::mpi::Comm& comm) {
    EXPECT_EQ(tr::run_mpi(comm, spec, 25), serial);
  });
}
