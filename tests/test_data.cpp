// Tests for peachy::data — CSV round trips, PointSet invariants, dataset
// generators, train/test splitting, normalization, and the Frame
// mini-dataframe's relational operators.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/csv.hpp"
#include "data/frame.hpp"
#include "data/points.hpp"
#include "support/check.hpp"

namespace pd = peachy::data;

// ---- csv --------------------------------------------------------------------

TEST(Csv, ParsesSimpleRows) {
  const auto rows = pd::read_csv_string("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (pd::CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (pd::CsvRow{"1", "2", "3"}));
}

TEST(Csv, HandlesQuotedFields) {
  const auto rows = pd::read_csv_string("\"hello, world\",\"say \"\"hi\"\"\",plain\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "hello, world");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST(Csv, HandlesEmbeddedNewlineInQuotes) {
  const auto rows = pd::read_csv_string("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto rows = pd::read_csv_string("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (pd::CsvRow{"a", "", "c"}));
  EXPECT_EQ(rows[1], (pd::CsvRow{"", "", ""}));
}

TEST(Csv, LastLineWithoutNewline) {
  const auto rows = pd::read_csv_string("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (pd::CsvRow{"c", "d"}));
}

TEST(Csv, CrLfTolerated) {
  const auto rows = pd::read_csv_string("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (pd::CsvRow{"a", "b"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW((void)pd::read_csv_string("\"oops\n"), peachy::Error);
}

TEST(Csv, GarbageAfterClosingQuoteThrows) {
  // `"a"b` used to parse silently as `ab`; now it is a named error that
  // points at the offending line.
  EXPECT_THROW((void)pd::read_csv_string("\"a\"b,c\n"), peachy::Error);
  try {
    (void)pd::read_csv_string("ok,row\n\"a\"b\n");
    FAIL() << "expected peachy::Error";
  } catch (const peachy::Error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string{e.what()}.find("garbage after closing quote"),
              std::string::npos)
        << e.what();
  }
  // A new quote opening right after a closed field is the same defect
  // (`"a" "b"` — note the separator-less space, caught as garbage).
  EXPECT_THROW((void)pd::read_csv_string("\"a\" \"b\",c\n"), peachy::Error);
  // But an escaped quote inside the field stays legal.
  EXPECT_EQ(pd::read_csv_string("\"a\"\"b\",c\n"),
            (std::vector<pd::CsvRow>{{"a\"b", "c"}}));
}

TEST(Csv, QuotedCrlfFieldRoundTrips) {
  const std::vector<pd::CsvRow> original{{"crlf\r\ninside", "plain"}};
  const auto text = pd::write_csv_string(original);
  EXPECT_EQ(pd::read_csv_string(text), original);
  // And parsing an explicit quoted CRLF keeps both characters.
  const auto rows = pd::read_csv_string("\"a\r\nb\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (pd::CsvRow{"a\r\nb", "c"}));
}

TEST(Csv, RoundTripsTrickyContent) {
  const std::vector<pd::CsvRow> original{
      {"plain", "with,comma", "with\"quote"},
      {"multi\nline", "", "trailing space "},
  };
  const auto text = pd::write_csv_string(original);
  EXPECT_EQ(pd::read_csv_string(text), original);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW((void)pd::read_csv_file("/nonexistent/nope.csv"), peachy::Error);
}

// ---- point set ------------------------------------------------------------------

TEST(PointSet, ConstructAndAccess) {
  pd::PointSet p{3, 2};
  p.at(1, 0) = 5.0;
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.dims(), 2u);
  EXPECT_DOUBLE_EQ(p.point(1)[0], 5.0);
  EXPECT_DOUBLE_EQ(p.point(1)[1], 0.0);
}

TEST(PointSet, FromValuesValidatesSize) {
  EXPECT_NO_THROW((pd::PointSet{2, 2, {1, 2, 3, 4}}));
  EXPECT_THROW((pd::PointSet{2, 2, {1, 2, 3}}), peachy::Error);
}

TEST(PointSet, PushBackFixesDimension) {
  pd::PointSet p;
  const double a[] = {1.0, 2.0, 3.0};
  p.push_back(a);
  EXPECT_EQ(p.dims(), 3u);
  const double b[] = {4.0, 5.0};
  EXPECT_THROW(p.push_back(b), peachy::Error);
}

TEST(PointSet, SquaredDistance) {
  pd::PointSet p{1, 2, {0.0, 0.0}};
  const double q[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.squared_distance(0, q), 25.0);
}

TEST(PointSet, OutOfRangeThrows) {
  pd::PointSet p{2, 2};
  EXPECT_THROW((void)p.point(2), peachy::Error);
  EXPECT_THROW((void)p.at(0, 5), peachy::Error);
}

// ---- generators ------------------------------------------------------------------

TEST(Generators, GaussianBlobsShapeAndLabels) {
  pd::BlobsSpec spec;
  spec.points_per_class = 50;
  spec.classes = 4;
  spec.dims = 3;
  const auto data = pd::gaussian_blobs(spec);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.dims(), 3u);
  EXPECT_EQ(data.num_classes(), 4u);
}

TEST(Generators, GaussianBlobsReproducible) {
  pd::BlobsSpec spec;
  spec.seed = 7;
  const auto a = pd::gaussian_blobs(spec);
  const auto b = pd::gaussian_blobs(spec);
  EXPECT_EQ(a.points.values(), b.points.values());
  spec.seed = 8;
  const auto c = pd::gaussian_blobs(spec);
  EXPECT_NE(a.points.values(), c.points.values());
}

TEST(Generators, TightBlobsAreSeparable) {
  // With tiny spread, every point must be far closer to its own class
  // centroid than to any other — the k-means/kNN ground truth.
  pd::BlobsSpec spec;
  spec.points_per_class = 30;
  spec.classes = 3;
  spec.spread = 0.01;
  spec.seed = 3;
  const auto data = pd::gaussian_blobs(spec);
  // Compute per-class centroids.
  std::vector<std::vector<double>> centroid(3, std::vector<double>(data.dims(), 0.0));
  std::vector<int> count(3, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = data.labels[i];
    ++count[c];
    for (std::size_t j = 0; j < data.dims(); ++j) centroid[c][j] += data.points.at(i, j);
  }
  for (int c = 0; c < 3; ++c) {
    for (auto& x : centroid[c]) x /= count[c];
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto own = data.labels[i];
    const double down = data.points.squared_distance(i, centroid[own]);
    for (int c = 0; c < 3; ++c) {
      if (c == own) continue;
      EXPECT_LT(down, data.points.squared_distance(i, centroid[c]));
    }
  }
}

TEST(Generators, TwoMoonsShape) {
  const auto data = pd::two_moons(100, 0.05, 5);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.dims(), 2u);
  EXPECT_EQ(data.num_classes(), 2u);
}

TEST(Generators, UniformPointsInBox) {
  const auto p = pd::uniform_points(500, 3, -2.0, 2.0, 11);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(p.at(i, j), -2.0);
      EXPECT_LT(p.at(i, j), 2.0);
    }
  }
}

TEST(Generators, RejectsBadSpecs) {
  pd::BlobsSpec bad;
  bad.classes = 0;
  EXPECT_THROW((void)pd::gaussian_blobs(bad), peachy::Error);
  EXPECT_THROW((void)pd::two_moons(0, 0.1, 1), peachy::Error);
  EXPECT_THROW((void)pd::uniform_points(5, 0, 0, 1, 1), peachy::Error);
}

// ---- split & normalize ------------------------------------------------------------

TEST(Split, PartitionsWithoutLossOrDuplication) {
  pd::BlobsSpec spec;
  spec.points_per_class = 40;
  spec.classes = 2;
  spec.dims = 1;
  spec.seed = 13;
  const auto all = pd::gaussian_blobs(spec);
  const auto split = pd::train_test_split(all, 0.25, 99);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 60u);
  // Every original coordinate value appears exactly once across the split
  // (1-D values are almost surely distinct).
  std::multiset<double> orig(all.points.values().begin(), all.points.values().end());
  std::multiset<double> both;
  for (double v : split.train.points.values()) both.insert(v);
  for (double v : split.test.points.values()) both.insert(v);
  EXPECT_EQ(orig, both);
}

TEST(Split, RejectsDegenerateFractions) {
  pd::BlobsSpec spec;
  const auto all = pd::gaussian_blobs(spec);
  EXPECT_THROW((void)pd::train_test_split(all, 0.0, 1), peachy::Error);
  EXPECT_THROW((void)pd::train_test_split(all, 1.0, 1), peachy::Error);
}

TEST(Normalize, ZscoreGivesZeroMeanUnitVariance) {
  auto p = pd::uniform_points(1000, 2, 5.0, 9.0, 3);
  pd::zscore_normalize(p);
  for (std::size_t j = 0; j < 2; ++j) {
    double sum = 0, ss = 0;
    for (std::size_t i = 0; i < p.size(); ++i) sum += p.at(i, j);
    const double m = sum / static_cast<double>(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) ss += (p.at(i, j) - m) * (p.at(i, j) - m);
    EXPECT_NEAR(m, 0.0, 1e-9);
    EXPECT_NEAR(ss / static_cast<double>(p.size()), 1.0, 1e-9);
  }
}

TEST(Normalize, AppliesTrainStatsToTest) {
  pd::PointSet train{2, 1, {0.0, 2.0}};   // mean 1, sd 1
  pd::PointSet test{1, 1, {3.0}};
  pd::zscore_normalize(train, &test);
  EXPECT_DOUBLE_EQ(test.at(0, 0), 2.0);  // (3-1)/1
}

TEST(Normalize, ConstantDimensionLeftAlone) {
  pd::PointSet p{3, 1, {4.0, 4.0, 4.0}};
  pd::zscore_normalize(p);
  EXPECT_DOUBLE_EQ(p.at(1, 0), 4.0);
}

// ---- labeled csv round trip ----------------------------------------------------------

TEST(LabeledCsv, RoundTripsExactly) {
  pd::BlobsSpec spec;
  spec.points_per_class = 10;
  spec.classes = 2;
  spec.dims = 4;
  const auto data = pd::gaussian_blobs(spec);
  const auto back = pd::from_csv(pd::to_csv(data));
  EXPECT_EQ(back.labels, data.labels);
  ASSERT_EQ(back.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < data.dims(); ++j) {
      EXPECT_DOUBLE_EQ(back.points.at(i, j), data.points.at(i, j));
    }
  }
}

TEST(LabeledCsv, RejectsMalformedInput) {
  EXPECT_THROW((void)pd::from_csv({{"x0", "label"}}), peachy::Error);  // no data
  EXPECT_THROW((void)pd::from_csv({{"x0", "label"}, {"abc", "0"}}), peachy::Error);
  EXPECT_THROW((void)pd::from_csv({{"x0", "label"}, {"1.0", "zero"}}), peachy::Error);
  EXPECT_THROW((void)pd::from_csv({{"x0", "label"}, {"1.0", "0"}, {"2.0"}}), peachy::Error);
}

// ---- frame -------------------------------------------------------------------------

namespace {

pd::Frame sample_frame() {
  pd::Frame f{{"nta", "borough", "arrests"},
              {pd::ColType::kString, pd::ColType::kString, pd::ColType::kInt}};
  f.push_row({std::string{"BK01"}, std::string{"Brooklyn"}, std::int64_t{10}});
  f.push_row({std::string{"BK02"}, std::string{"Brooklyn"}, std::int64_t{30}});
  f.push_row({std::string{"MN01"}, std::string{"Manhattan"}, std::int64_t{20}});
  return f;
}

}  // namespace

TEST(Frame, SchemaValidation) {
  EXPECT_THROW((pd::Frame{{"a", "a"}, {pd::ColType::kInt, pd::ColType::kInt}}), peachy::Error);
  EXPECT_THROW((pd::Frame{{"a"}, {}}), peachy::Error);
  auto f = sample_frame();
  EXPECT_THROW(f.push_row({std::string{"X"}, std::string{"Y"}}), peachy::Error);
  EXPECT_THROW(f.push_row({std::string{"X"}, std::string{"Y"}, 1.5}), peachy::Error);
}

TEST(Frame, SelectReordersColumns) {
  const auto f = sample_frame().select({"arrests", "nta"});
  EXPECT_EQ(f.names(), (std::vector<std::string>{"arrests", "nta"}));
  EXPECT_EQ(f.integer(1, "arrests"), 30);
  EXPECT_THROW((void)sample_frame().select({"missing"}), peachy::Error);
}

TEST(Frame, FilterKeepsMatchingRows) {
  const auto f = sample_frame();
  const auto brooklyn = f.filter([&](std::size_t r) { return f.str(r, "borough") == "Brooklyn"; });
  EXPECT_EQ(brooklyn.rows(), 2u);
  EXPECT_EQ(brooklyn.str(1, "nta"), "BK02");
}

TEST(Frame, GroupByCountAndSum) {
  const auto f = sample_frame();
  const auto counts = f.group_by("borough", pd::Frame::Agg::kCount, "borough");
  ASSERT_EQ(counts.rows(), 2u);
  EXPECT_EQ(counts.str(0, "borough"), "Brooklyn");
  EXPECT_EQ(counts.integer(0, "count"), 2);
  EXPECT_EQ(counts.integer(1, "count"), 1);

  const auto sums = f.group_by("borough", pd::Frame::Agg::kSum, "arrests");
  EXPECT_DOUBLE_EQ(sums.num(0, "sum_arrests"), 40.0);
  EXPECT_DOUBLE_EQ(sums.num(1, "sum_arrests"), 20.0);
}

TEST(Frame, GroupByMeanMinMax) {
  const auto f = sample_frame();
  EXPECT_DOUBLE_EQ(
      f.group_by("borough", pd::Frame::Agg::kMean, "arrests").num(0, "mean_arrests"), 20.0);
  EXPECT_DOUBLE_EQ(f.group_by("borough", pd::Frame::Agg::kMin, "arrests").num(0, "min_arrests"),
                   10.0);
  EXPECT_DOUBLE_EQ(f.group_by("borough", pd::Frame::Agg::kMax, "arrests").num(0, "max_arrests"),
                   30.0);
}

TEST(Frame, GroupByRejectsStringAggregate) {
  const auto f = sample_frame();
  EXPECT_THROW((void)f.group_by("borough", pd::Frame::Agg::kSum, "nta"), peachy::Error);
}

TEST(Frame, JoinMatchesOnKey) {
  const auto f = sample_frame();
  pd::Frame pop{{"nta", "population"}, {pd::ColType::kString, pd::ColType::kInt}};
  pop.push_row({std::string{"BK01"}, std::int64_t{50000}});
  pop.push_row({std::string{"MN01"}, std::int64_t{80000}});
  pop.push_row({std::string{"QN01"}, std::int64_t{70000}});  // unmatched

  const auto joined = f.join(pop, "nta");
  ASSERT_EQ(joined.rows(), 2u);  // BK02 has no population row; QN01 no arrests
  EXPECT_EQ(joined.str(0, "nta"), "BK01");
  EXPECT_EQ(joined.integer(0, "population"), 50000);
  EXPECT_EQ(joined.integer(1, "population"), 80000);
}

TEST(Frame, JoinRejectsDuplicateColumns) {
  const auto f = sample_frame();
  EXPECT_THROW((void)f.join(sample_frame(), "nta"), peachy::Error);
}

TEST(Frame, SortByNumericAndString) {
  const auto by_arrests = sample_frame().sort_by("arrests", /*desc=*/true);
  EXPECT_EQ(by_arrests.integer(0, "arrests"), 30);
  EXPECT_EQ(by_arrests.integer(2, "arrests"), 10);
  const auto by_name = sample_frame().sort_by("nta");
  EXPECT_EQ(by_name.str(0, "nta"), "BK01");
  EXPECT_EQ(by_name.str(2, "nta"), "MN01");
}

TEST(Frame, HeadTruncates) {
  EXPECT_EQ(sample_frame().head(2).rows(), 2u);
  EXPECT_EQ(sample_frame().head(99).rows(), 3u);
}

TEST(Frame, CsvRoundTripInfersTypes) {
  const auto csv = sample_frame().to_csv();
  const auto back = pd::Frame::from_csv(csv);
  EXPECT_EQ(back.types()[0], pd::ColType::kString);
  EXPECT_EQ(back.types()[2], pd::ColType::kInt);
  EXPECT_EQ(back.integer(1, "arrests"), 30);
}

TEST(Frame, FromCsvInfersDoubleForMixedNumeric) {
  const auto f = pd::Frame::from_csv({{"v"}, {"1"}, {"2.5"}});
  EXPECT_EQ(f.types()[0], pd::ColType::kDouble);
  EXPECT_DOUBLE_EQ(f.num(1, "v"), 2.5);
}
