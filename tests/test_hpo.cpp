// Tests for the HPO assignment: search-space enumeration, the three
// schedulers (schedule-invariant results, correct task placement for
// uneven task/rank ratios — the assignment's core concept), ensemble
// assembly, and the successive-halving extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hpo/halving.hpp"
#include "hpo/hpo.hpp"
#include "nn/digits.hpp"
#include "support/check.hpp"

namespace ph = peachy::hpo;
namespace pn = peachy::nn;
namespace pm = peachy::mpi;

namespace {

/// A tiny, fast search problem: small digits dataset, short configs.
struct Problem {
  pn::Dataset train;
  pn::Dataset val;
  std::vector<pn::TrainConfig> configs;
};

Problem tiny_problem(std::size_t nconfigs = 6) {
  const pn::SyntheticDigits digits;
  Problem p;
  p.train = digits.make_dataset(120, 41);
  p.val = digits.make_dataset(60, 43);
  for (std::size_t i = 0; i < nconfigs; ++i) {
    pn::TrainConfig cfg;
    cfg.hidden = {8 + 4 * (i % 3)};
    cfg.learning_rate = 0.05 + 0.05 * static_cast<double>(i % 2);
    cfg.epochs = 2;
    cfg.seed = 100 + i;
    p.configs.push_back(std::move(cfg));
  }
  return p;
}

}  // namespace

// ---- search space ------------------------------------------------------------------

TEST(SearchSpace, EnumeratesCartesianProductWithDistinctSeeds) {
  ph::SearchSpace space;
  const auto configs = space.enumerate();
  EXPECT_EQ(configs.size(), 3u * 3 * 2);
  std::set<std::uint64_t> seeds;
  for (const auto& cfg : configs) seeds.insert(cfg.seed);
  EXPECT_EQ(seeds.size(), configs.size());
  EXPECT_EQ(configs.front().hidden, (std::vector<std::size_t>{16}));
  EXPECT_EQ(configs.back().hidden, (std::vector<std::size_t>{32, 16}));
}

TEST(SearchSpace, RejectsEmptyAxis) {
  ph::SearchSpace space;
  space.learning_rates.clear();
  EXPECT_THROW((void)space.enumerate(), peachy::Error);
}

// ---- static owner maps ----------------------------------------------------------------

TEST(StaticOwner, CyclicWrapsAndBlockChunks) {
  // 13 tasks over 4 ranks: the "not evenly divisible" case.
  for (std::size_t t = 0; t < 13; ++t) {
    EXPECT_EQ(ph::static_owner(ph::Schedule::kCyclic, t, 13, 4), static_cast<int>(t % 4));
  }
  // Block: sizes 4,3,3,3.
  EXPECT_EQ(ph::static_owner(ph::Schedule::kBlock, 0, 13, 4), 0);
  EXPECT_EQ(ph::static_owner(ph::Schedule::kBlock, 3, 13, 4), 0);
  EXPECT_EQ(ph::static_owner(ph::Schedule::kBlock, 4, 13, 4), 1);
  EXPECT_EQ(ph::static_owner(ph::Schedule::kBlock, 12, 13, 4), 3);
  EXPECT_THROW((void)ph::static_owner(ph::Schedule::kDynamic, 0, 4, 2), peachy::Error);
}

// ---- distributed search -------------------------------------------------------------------

class HpoSchedules : public ::testing::TestWithParam<std::tuple<ph::Schedule, int>> {};

TEST_P(HpoSchedules, ResultsMatchSerialOracleExactly) {
  const auto [schedule, ranks] = GetParam();
  const auto prob = tiny_problem(7);  // 7 tasks: uneven over every rank count
  const auto oracle = ph::serial_search(prob.train, prob.val, prob.configs);

  pm::run(ranks, [&](pm::Comm& comm) {
    const auto got =
        ph::distributed_search(comm, prob.train, prob.val, prob.configs, schedule);
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t t = 0; t < got.size(); ++t) {
      EXPECT_EQ(got[t].task, oracle[t].task);
      // Determinism of training: identical accuracy wherever it ran.
      EXPECT_DOUBLE_EQ(got[t].val_accuracy, oracle[t].val_accuracy);
      EXPECT_DOUBLE_EQ(got[t].train_loss, oracle[t].train_loss);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndRanks, HpoSchedules,
    ::testing::Combine(::testing::Values(ph::Schedule::kBlock, ph::Schedule::kCyclic,
                                         ph::Schedule::kDynamic),
                       ::testing::Values(1, 2, 3, 4)));

TEST(HpoDistributed, StaticPlacementFollowsOwnerMap) {
  const auto prob = tiny_problem(7);
  for (const auto schedule : {ph::Schedule::kBlock, ph::Schedule::kCyclic}) {
    pm::run(3, [&](pm::Comm& comm) {
      const auto got =
          ph::distributed_search(comm, prob.train, prob.val, prob.configs, schedule);
      for (const auto& r : got) {
        EXPECT_EQ(r.rank, ph::static_owner(schedule, r.task, prob.configs.size(), 3));
      }
    });
  }
}

TEST(HpoDistributed, DynamicMasterDoesNotTrain) {
  const auto prob = tiny_problem(5);
  pm::run(3, [&](pm::Comm& comm) {
    ph::RunStats stats;
    const auto got = ph::distributed_search(comm, prob.train, prob.val, prob.configs,
                                            ph::Schedule::kDynamic, &stats);
    for (const auto& r : got) EXPECT_NE(r.rank, 0);  // workers only
    EXPECT_EQ(stats.tasks_per_rank[0], 0u);
    EXPECT_EQ(stats.tasks_per_rank[1] + stats.tasks_per_rank[2], 5u);
  });
}

TEST(HpoDistributed, StatsShapeAndBalance) {
  const auto prob = tiny_problem(8);
  pm::run(4, [&](pm::Comm& comm) {
    ph::RunStats stats;
    (void)ph::distributed_search(comm, prob.train, prob.val, prob.configs,
                                 ph::Schedule::kCyclic, &stats);
    ASSERT_EQ(stats.busy_seconds.size(), 4u);
    ASSERT_EQ(stats.tasks_per_rank.size(), 4u);
    // 8 tasks cyclic over 4 ranks = 2 each.
    for (auto c : stats.tasks_per_rank) EXPECT_EQ(c, 2u);
    EXPECT_GT(stats.makespan_seconds, 0.0);
    EXPECT_GE(stats.imbalance_cv, 0.0);
  });
}

TEST(HpoDistributed, ValidatesInputs) {
  const auto prob = tiny_problem(2);
  pm::run(1, [&](pm::Comm& comm) {
    EXPECT_THROW((void)ph::distributed_search(comm, prob.train, prob.val, {},
                                              ph::Schedule::kBlock),
                 peachy::Error);
    pn::Dataset empty;
    EXPECT_THROW((void)ph::distributed_search(comm, empty, prob.val, prob.configs,
                                              ph::Schedule::kBlock),
                 peachy::Error);
  });
}

// ---- ensemble assembly ------------------------------------------------------------------

TEST(HpoEnsemble, TopModelsByAccuracyFormTheEnsemble) {
  const auto prob = tiny_problem(5);
  auto results = ph::serial_search(prob.train, prob.val, prob.configs);
  const auto ens = ph::build_ensemble(prob.train, prob.configs, results, 3);
  EXPECT_EQ(ens.size(), 3u);
  // Ensemble members should individually match their recorded accuracies
  // (deterministic re-materialization).
  std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
    if (a.val_accuracy != b.val_accuracy) return a.val_accuracy > b.val_accuracy;
    return a.task < b.task;
  });
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(ens.member(i).accuracy(prob.val), results[i].val_accuracy);
  }
}

TEST(HpoEnsemble, Validates) {
  const auto prob = tiny_problem(3);
  const auto results = ph::serial_search(prob.train, prob.val, prob.configs);
  EXPECT_THROW((void)ph::build_ensemble(prob.train, prob.configs, results, 0), peachy::Error);
  EXPECT_THROW((void)ph::build_ensemble(prob.train, prob.configs, results, 9), peachy::Error);
}

// ---- successive halving ---------------------------------------------------------------------

TEST(Halving, HalvesPopulationEachRound) {
  const auto prob = tiny_problem(8);
  peachy::support::ThreadPool pool{2};
  const auto res =
      ph::successive_halving(prob.train, prob.val, prob.configs, 3, 1, pool);
  EXPECT_EQ(res.rounds, 3u);
  // 8 -> 4 -> 2 survivors.
  EXPECT_EQ(res.final_ranking.size(), 2u);
  // Budget: 8 + 4 + 2 = 14 model-rounds of 1 epoch.
  EXPECT_EQ(res.total_epochs_trained, 14u);
  // History arity tracks survival: everyone has round 1, survivors more.
  std::size_t with_three = 0;
  for (const auto& h : res.history) {
    EXPECT_GE(h.accuracy_per_round.size(), 1u);
    with_three += h.accuracy_per_round.size() == 3;
  }
  EXPECT_EQ(with_three, 2u);
}

TEST(Halving, SurvivorsAreTheBestOfFinalRound) {
  const auto prob = tiny_problem(4);
  peachy::support::ThreadPool pool{2};
  const auto res =
      ph::successive_halving(prob.train, prob.val, prob.configs, 2, 1, pool);
  ASSERT_EQ(res.final_ranking.size(), 2u);
  const auto& best = res.history[res.final_ranking[0]];
  const auto& second = res.history[res.final_ranking[1]];
  EXPECT_GE(best.accuracy_per_round.back(), second.accuracy_per_round.back());
  EXPECT_TRUE(best.survived_to_end);
}

TEST(Halving, DeterministicAcrossPoolSizes) {
  const auto prob = tiny_problem(6);
  peachy::support::ThreadPool pool1{1};
  peachy::support::ThreadPool pool4{4};
  const auto a = ph::successive_halving(prob.train, prob.val, prob.configs, 2, 1, pool1);
  const auto b = ph::successive_halving(prob.train, prob.val, prob.configs, 2, 1, pool4);
  EXPECT_EQ(a.final_ranking, b.final_ranking);
  for (std::size_t c = 0; c < a.history.size(); ++c) {
    EXPECT_EQ(a.history[c].accuracy_per_round, b.history[c].accuracy_per_round);
  }
}

TEST(Halving, SingleConfigSurvives) {
  const auto prob = tiny_problem(1);
  peachy::support::ThreadPool pool{2};
  const auto res =
      ph::successive_halving(prob.train, prob.val, prob.configs, 3, 1, pool);
  EXPECT_EQ(res.final_ranking, (std::vector<std::size_t>{0}));
}

TEST(Halving, Validates) {
  const auto prob = tiny_problem(2);
  peachy::support::ThreadPool pool{1};
  EXPECT_THROW((void)ph::successive_halving(prob.train, prob.val, {}, 2, 1, pool),
               peachy::Error);
  EXPECT_THROW((void)ph::successive_halving(prob.train, prob.val, prob.configs, 0, 1, pool),
               peachy::Error);
}
