// Tests for the k-means assignment: sequential reference behaviour,
// termination thresholds, equivalence of the four OpenMP-strategy
// variants, the distributed version for every rank count, and the
// SIMT-style version's two reduction schemes.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "kmeans/mpi_kmeans.hpp"
#include "kmeans/simt_kmeans.hpp"
#include "support/check.hpp"

namespace km = peachy::kmeans;
namespace pd = peachy::data;
namespace pm = peachy::mpi;

namespace {

pd::PointSet blobs(std::size_t per_class = 80, std::size_t classes = 3, std::size_t dims = 2,
                   double spread = 0.4, std::uint64_t seed = 5) {
  pd::BlobsSpec spec;
  spec.points_per_class = per_class;
  spec.classes = classes;
  spec.dims = dims;
  spec.spread = spread;
  spec.seed = seed;
  return pd::gaussian_blobs(spec).points;
}

km::Options default_opts(std::size_t k = 3) {
  km::Options opts;
  opts.k = k;
  opts.max_iterations = 100;
  opts.seed = 17;
  return opts;
}

/// Do two clusterings induce the same partition (up to cluster renaming)?
bool same_partition(std::span<const std::int32_t> a, std::span<const std::int32_t> b) {
  if (a.size() != b.size()) return false;
  std::map<std::int32_t, std::int32_t> fwd, bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto [f, fnew] = fwd.try_emplace(a[i], b[i]);
    if (!fnew && f->second != b[i]) return false;
    const auto [g, gnew] = bwd.try_emplace(b[i], a[i]);
    if (!gnew && g->second != a[i]) return false;
  }
  return true;
}

}  // namespace

// ---- sequential reference -----------------------------------------------------------

TEST(KmeansSeq, RecoversWellSeparatedBlobs) {
  pd::BlobsSpec spec;
  spec.points_per_class = 60;
  spec.classes = 3;
  spec.dims = 2;
  spec.spread = 0.2;
  spec.seed = 9;
  const auto truth = pd::gaussian_blobs(spec);
  const auto res = km::cluster_sequential(truth.points, default_opts(3));
  // The induced partition must equal the generator's class structure.
  EXPECT_TRUE(same_partition(res.assignment, truth.labels));
  EXPECT_LE(res.changes_per_iteration.back(), 0u + 0u);
}

TEST(KmeansSeq, InertiaDecreasesMonotonically) {
  const auto points = blobs();
  km::Options opts = default_opts();
  // Run iteration-by-iteration by capping max_iterations.
  double prev = 1e300;
  for (std::size_t iters = 1; iters <= 8; ++iters) {
    opts.max_iterations = iters;
    const auto res = km::cluster_sequential(points, opts);
    EXPECT_LE(res.inertia, prev + 1e-9) << "iters=" << iters;
    prev = res.inertia;
  }
}

TEST(KmeansSeq, TerminatesOnMinChanges) {
  const auto points = blobs();
  km::Options opts = default_opts();
  opts.min_changes = points.size();  // any iteration satisfies the threshold
  const auto res = km::cluster_sequential(points, opts);
  EXPECT_EQ(res.iterations, 1u);
  EXPECT_EQ(res.termination, km::Termination::kMinChanges);
}

TEST(KmeansSeq, TerminatesOnMaxIterations) {
  const auto points = blobs();
  km::Options opts = default_opts();
  opts.max_iterations = 2;
  opts.min_changes = 0;
  opts.move_tolerance = 0.0;
  const auto res = km::cluster_sequential(points, opts);
  EXPECT_LE(res.iterations, 2u);
}

TEST(KmeansSeq, ConvergedRunReportsCentroidTermination) {
  const auto points = blobs(40, 2, 2, 0.1, 3);
  km::Options opts = default_opts(2);
  opts.min_changes = 0;
  const auto res = km::cluster_sequential(points, opts);
  // A well-separated instance converges long before 100 iterations, via
  // the zero-changes → zero-movement chain.
  EXPECT_LT(res.iterations, 50u);
  EXPECT_NE(res.termination, km::Termination::kMaxIterations);
}

TEST(KmeansSeq, DeterministicForSeed) {
  const auto points = blobs();
  const auto a = km::cluster_sequential(points, default_opts());
  const auto b = km::cluster_sequential(points, default_opts());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids.values(), b.centroids.values());
}

TEST(KmeansSeq, ValidatesOptions) {
  const auto points = blobs(10, 2, 2);
  km::Options opts = default_opts(0);
  EXPECT_THROW((void)km::cluster_sequential(points, opts), peachy::Error);
  opts = default_opts(points.size() + 1);
  EXPECT_THROW((void)km::cluster_sequential(points, opts), peachy::Error);
  EXPECT_THROW((void)km::cluster_sequential(pd::PointSet{}, default_opts()), peachy::Error);
}

TEST(KmeansInit, RandomPointsAreDistinctDataPoints) {
  const auto points = blobs(20, 2, 3);
  km::Options opts = default_opts(5);
  const auto centroids = km::initial_centroids(points, opts);
  EXPECT_EQ(centroids.size(), 5u);
  std::set<std::vector<double>> unique;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const auto p = centroids.point(c);
    unique.insert(std::vector<double>(p.begin(), p.end()));
  }
  EXPECT_EQ(unique.size(), 5u);
}

TEST(KmeansInit, PlusPlusSpreadsCentroids) {
  // On three tight blobs, k-means++ should pick centroids in distinct
  // blobs nearly always (D² sampling), giving immediate recovery.
  pd::BlobsSpec spec;
  spec.points_per_class = 50;
  spec.classes = 3;
  spec.spread = 0.05;
  spec.seed = 4;
  const auto truth = pd::gaussian_blobs(spec);
  km::Options opts = default_opts(3);
  opts.init = km::Init::kPlusPlus;
  const auto res = km::cluster_sequential(truth.points, opts);
  EXPECT_TRUE(same_partition(res.assignment, truth.labels));
}

TEST(KmeansSeq, NearestCentroidTieBreaksLow) {
  pd::PointSet centroids{2, 1, {1.0, 3.0}};
  const double mid[] = {2.0};
  EXPECT_EQ(km::nearest_centroid(centroids, mid), 0u);
}

// ---- threaded variants -----------------------------------------------------------------

class KmeansVariants
    : public ::testing::TestWithParam<std::tuple<km::Variant, std::size_t>> {};

TEST_P(KmeansVariants, MatchesSequentialTrajectory) {
  const auto [variant, threads] = GetParam();
  const auto points = blobs(70, 3, 3, 0.5, 23);
  const km::Options opts = default_opts();
  const auto expect = km::cluster_sequential(points, opts);
  peachy::support::ThreadPool pool{4};
  const auto got = km::cluster_parallel(points, opts, variant, pool, threads);
  // Assignments and iteration count must match exactly; centroid values
  // may differ in the last bits for non-deterministic summation orders
  // (critical/atomic), so compare positions with a tight tolerance.
  EXPECT_EQ(got.assignment, expect.assignment)
      << km::to_string(variant) << " threads=" << threads;
  EXPECT_EQ(got.iterations, expect.iterations);
  EXPECT_EQ(got.changes_per_iteration, expect.changes_per_iteration);
  ASSERT_EQ(got.centroids.values().size(), expect.centroids.values().size());
  for (std::size_t i = 0; i < got.centroids.values().size(); ++i) {
    EXPECT_NEAR(got.centroids.values()[i], expect.centroids.values()[i], 1e-9);
  }
  EXPECT_NEAR(got.inertia, expect.inertia, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyStages, KmeansVariants,
    ::testing::Combine(::testing::Values(km::Variant::kCritical, km::Variant::kAtomic,
                                         km::Variant::kReduction,
                                         km::Variant::kReductionPadded),
                       ::testing::Values(1u, 2u, 4u, 7u)));

TEST(KmeansVariantsExtra, ReductionIsBitIdenticalToSequential) {
  // The reduction variant merges partials in thread order; with one
  // thread the arithmetic is the sequential order exactly.
  const auto points = blobs();
  const km::Options opts = default_opts();
  peachy::support::ThreadPool pool{2};
  const auto seq = km::cluster_sequential(points, opts);
  const auto red = km::cluster_parallel(points, opts, km::Variant::kReduction, pool, 1);
  EXPECT_EQ(red.centroids.values(), seq.centroids.values());
  EXPECT_EQ(red.inertia, seq.inertia);
}

TEST(KmeansVariantsExtra, ThreadedRunsAreBitIdenticalAcrossRepeats) {
  // Determinism contract: for a fixed thread count, repeated threaded
  // runs produce bit-identical centroids — the reduction variant merges
  // fixed static blocks in thread order, and the kernels layer promises
  // identical arithmetic regardless of which ISA path dispatch picks.
  const auto points = blobs(70, 3, 3, 0.5, 23);
  const km::Options opts = default_opts();
  peachy::support::ThreadPool pool{4};
  for (const auto variant : {km::Variant::kReduction, km::Variant::kReductionPadded}) {
    const auto first = km::cluster_parallel(points, opts, variant, pool, 4);
    for (int run = 0; run < 3; ++run) {
      const auto again = km::cluster_parallel(points, opts, variant, pool, 4);
      EXPECT_EQ(again.centroids.values(), first.centroids.values())
          << km::to_string(variant) << " run=" << run;
      EXPECT_EQ(again.assignment, first.assignment);
      EXPECT_EQ(again.inertia, first.inertia);
      EXPECT_EQ(again.iterations, first.iterations);
    }
  }
}

// ---- distributed -------------------------------------------------------------------------

class KmeansMpiRanks : public ::testing::TestWithParam<int> {};

TEST_P(KmeansMpiRanks, MatchesSequentialPartition) {
  const int p = GetParam();
  const auto points = blobs(60, 3, 2, 0.4, 29);
  const km::Options opts = default_opts();
  const auto expect = km::cluster_sequential(points, opts);
  pm::run(p, [&](pm::Comm& comm) {
    // Only root supplies the data (as if it parsed the input file).
    const auto res =
        km::cluster_mpi(comm, comm.rank() == 0 ? points : pd::PointSet{}, opts);
    EXPECT_EQ(res.assignment, expect.assignment) << "ranks=" << p;
    EXPECT_EQ(res.iterations, expect.iterations);
    EXPECT_NEAR(res.inertia, expect.inertia, 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, KmeansMpiRanks, ::testing::Values(1, 2, 3, 4, 6));

TEST(KmeansMpi, ReportsTraffic) {
  const auto points = blobs(40, 2, 2);
  const km::Options opts = default_opts(2);
  km::MpiKmeansStats stats;
  pm::run(3, [&](pm::Comm& comm) {
    km::MpiKmeansStats local;  // stats objects are rank-local (each rank fills its own)
    (void)km::cluster_mpi(comm, comm.rank() == 0 ? points : pd::PointSet{}, opts, &local);
    if (comm.rank() == 0) stats = local;
  });
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.iterations, 0u);
}

// ---- SIMT ---------------------------------------------------------------------------------

class KmeansSimtConfigs
    : public ::testing::TestWithParam<std::tuple<km::SimtReduce, std::size_t>> {};

TEST_P(KmeansSimtConfigs, MatchesSequentialPartition) {
  const auto [reduce, block_size] = GetParam();
  const auto points = blobs(50, 3, 2, 0.4, 31);
  const km::Options opts = default_opts();
  const auto expect = km::cluster_sequential(points, opts);
  peachy::support::ThreadPool pool{4};
  km::SimtConfig cfg;
  cfg.reduce = reduce;
  cfg.block_size = block_size;
  const auto got = km::cluster_simt(points, opts, cfg, pool);
  EXPECT_EQ(got.assignment, expect.assignment);
  EXPECT_EQ(got.iterations, expect.iterations);
  EXPECT_NEAR(got.inertia, expect.inertia, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, KmeansSimtConfigs,
    ::testing::Combine(::testing::Values(km::SimtReduce::kGlobalAtomic,
                                         km::SimtReduce::kBlockShared),
                       ::testing::Values(1u, 32u, 1024u)));

TEST(KmeansSimt, BlockSharedIssuesFewerGlobalAtomics) {
  const auto points = blobs(100, 4, 3, 0.6, 37);
  const km::Options opts = default_opts(4);
  peachy::support::ThreadPool pool{4};

  km::SimtConfig cfg;
  cfg.block_size = 64;
  cfg.reduce = km::SimtReduce::kGlobalAtomic;
  km::SimtStats atomic_stats;
  (void)km::cluster_simt(points, opts, cfg, pool, &atomic_stats);

  cfg.reduce = km::SimtReduce::kBlockShared;
  km::SimtStats shared_stats;
  (void)km::cluster_simt(points, opts, cfg, pool, &shared_stats);

  EXPECT_GT(atomic_stats.global_atomic_updates, 4 * shared_stats.global_atomic_updates);
  EXPECT_EQ(atomic_stats.blocks_launched, shared_stats.blocks_launched);
}

TEST(KmeansSimt, ValidatesConfig) {
  const auto points = blobs(10, 2, 2);
  peachy::support::ThreadPool pool{2};
  km::SimtConfig cfg;
  cfg.block_size = 0;
  EXPECT_THROW((void)km::cluster_simt(points, default_opts(2), cfg, pool), peachy::Error);
}
