// Tests for the MapReduce engine: phase discipline, serialization, shuffle
// placement, the local-combine optimization (experiment T-kNN-3's
// mechanism), and the word-count reference app vs its serial oracle.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mapreduce/mapreduce.hpp"
#include "mapreduce/wordcount.hpp"

namespace pmr = peachy::mapreduce;
namespace pm = peachy::mpi;

// ---- serialization -----------------------------------------------------------

TEST(PairSerialization, RoundTripsBinaryContent) {
  std::vector<pmr::KeyValue> pairs{
      {"key1", "value1"},
      {std::string{"bin\0key", 7}, std::string{"\0\1\2", 3}},
      {"", ""},
  };
  const auto bytes = pmr::serialize_pairs(pairs);
  EXPECT_EQ(pmr::deserialize_pairs(bytes), pairs);
}

TEST(PairSerialization, RejectsCorruptBuffer) {
  std::vector<pmr::KeyValue> pairs{{"abc", "def"}};
  auto bytes = pmr::serialize_pairs(pairs);
  bytes.pop_back();
  EXPECT_THROW((void)pmr::deserialize_pairs(bytes), peachy::Error);
}

TEST(RecordPacking, RoundTripsTrivialTypes) {
  std::vector<pmr::KeyValue> sink;
  pmr::KvEmitter out{sink};
  struct Rec {
    double d;
    std::int32_t c;
  };
  out.emit_record("k", Rec{2.5, 7});
  const auto rec = pmr::unpack_record<Rec>(sink[0].value);
  EXPECT_DOUBLE_EQ(rec.d, 2.5);
  EXPECT_EQ(rec.c, 7);
  EXPECT_THROW((void)pmr::unpack_record<double>(std::string{"xx"}), peachy::Error);
}

// ---- engine phases -------------------------------------------------------------

class MapReduceRanks : public ::testing::TestWithParam<int> {};

TEST_P(MapReduceRanks, MapRunsEveryTaskExactlyOnce) {
  const int p = GetParam();
  pm::run(p, [](pm::Comm& c) {
    pmr::MapReduce mr{c};
    const auto total = mr.map(37, [](std::size_t task, pmr::KvEmitter& out) {
      out.emit("task" + std::to_string(task), "x");
    });
    EXPECT_EQ(total, 37u);
    mr.collate();
    mr.reduce([](const std::string&, std::span<const std::string> values, pmr::KvEmitter& out) {
      EXPECT_EQ(values.size(), 1u);  // each task key emitted once globally
      out.emit("seen", "1");
    });
  });
}

TEST_P(MapReduceRanks, CollatePlacesKeysByHashOwner) {
  const int p = GetParam();
  pm::run(p, [](pm::Comm& c) {
    pmr::MapReduce mr{c};
    mr.map(40, [](std::size_t task, pmr::KvEmitter& out) {
      out.emit("key" + std::to_string(task % 10), std::to_string(task));
    });
    mr.collate();
    // After collate every local key must hash to this rank.
    mr.reduce([&](const std::string& key, std::span<const std::string>, pmr::KvEmitter&) {
      EXPECT_EQ(mr.owner_of(key), c.rank());
    });
  });
}

TEST_P(MapReduceRanks, ReduceSeesAllValuesOfAKey) {
  const int p = GetParam();
  pm::run(p, [](pm::Comm& c) {
    pmr::MapReduce mr{c};
    // 60 tasks emit into 6 keys, 10 values each.
    mr.map(60, [](std::size_t task, pmr::KvEmitter& out) {
      out.emit("k" + std::to_string(task % 6), std::to_string(task));
    });
    const auto nkeys = mr.collate();
    EXPECT_EQ(nkeys, 6u);
    mr.reduce([](const std::string&, std::span<const std::string> values, pmr::KvEmitter& out) {
      EXPECT_EQ(values.size(), 10u);
      out.emit("ok", "1");
    });
  });
}

TEST_P(MapReduceRanks, GatherReturnsAllPairsAtRoot) {
  const int p = GetParam();
  pm::run(p, [](pm::Comm& c) {
    pmr::MapReduce mr{c};
    mr.map(12, [](std::size_t task, pmr::KvEmitter& out) {
      out.emit("t" + std::to_string(task), std::to_string(task * task));
    });
    const auto pairs = mr.gather(0);
    if (c.rank() == 0) {
      ASSERT_EQ(pairs.size(), 12u);
      std::map<std::string, std::string> by_key;
      for (const auto& kv : pairs) by_key[kv.key] = kv.value;
      EXPECT_EQ(by_key.at("t5"), "25");
    } else {
      EXPECT_TRUE(pairs.empty());
    }
  });
}

TEST_P(MapReduceRanks, ChainedMapReduceRounds) {
  // reduce output can be collated and reduced again (multi-round MR).
  const int p = GetParam();
  pm::run(p, [](pm::Comm& c) {
    pmr::MapReduce mr{c};
    mr.map(20, [](std::size_t task, pmr::KvEmitter& out) {
      out.emit_record<std::uint64_t>("g" + std::to_string(task % 4), 1);
    });
    mr.collate();
    // Round 1: count per group, re-key everything to one key.
    mr.reduce([](const std::string&, std::span<const std::string> values, pmr::KvEmitter& out) {
      out.emit_record<std::uint64_t>("total", values.size());
    });
    mr.collate();
    std::uint64_t total = 0;
    mr.reduce([&](const std::string&, std::span<const std::string> values, pmr::KvEmitter& out) {
      for (const auto& v : values) total += pmr::unpack_record<std::uint64_t>(v);
      out.emit("done", "1");
    });
    const auto grand = c.allreduce_value<std::uint64_t>(total, std::plus<>{});
    EXPECT_EQ(grand, 20u);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MapReduceRanks, ::testing::Values(1, 2, 3, 5));

TEST(MapReducePhases, EnforcesPhaseOrder) {
  pm::run(1, [](pm::Comm& c) {
    pmr::MapReduce mr{c};
    const pmr::MapReduce::ReduceFn nop = [](const std::string&, std::span<const std::string>,
                                            pmr::KvEmitter&) {};
    EXPECT_THROW(mr.collate(), peachy::Error);          // before map
    EXPECT_THROW(mr.reduce(nop), peachy::Error);        // before collate
    mr.map(1, [](std::size_t, pmr::KvEmitter& out) { out.emit("k", "v"); });
    EXPECT_THROW(mr.reduce(nop), peachy::Error);        // skipping collate
    mr.collate();
    EXPECT_THROW(mr.combine(nop), peachy::Error);       // combine after collate
    EXPECT_THROW(mr.collate(), peachy::Error);          // double collate
  });
}

// ---- local combine (the paper's communication optimization) ---------------------

TEST(LocalCombine, ReducesShuffledPairsWithoutChangingResult) {
  constexpr int kRanks = 4;
  const std::string corpus = pmr::synthetic_corpus(4000, 7);
  std::vector<pmr::WordCount> plain, combined;
  std::uint64_t pairs_plain = 0, pairs_combined = 0;

  pm::run(kRanks, [&](pm::Comm& c) {
    pmr::WordCountOptions opts;
    opts.local_combine = false;
    auto r1 = pmr::word_count(c, corpus, opts);
    pmr::MapReduce probe{c};  // re-run manually to read shuffle stats
    if (c.rank() == 0) plain = r1;

    opts.local_combine = true;
    auto r2 = pmr::word_count(c, corpus, opts);
    if (c.rank() == 0) combined = r2;
    EXPECT_EQ(r1, r2);
  });

  // Measure shuffle volume directly with the engine.
  pm::run(kRanks, [&](pm::Comm& c) {
    const auto chunks = pmr::split_corpus(corpus, 16);
    for (bool combine : {false, true}) {
      pmr::MapReduce mr{c};
      mr.map(chunks.size(), [&](std::size_t t, pmr::KvEmitter& out) {
        std::string word;
        for (char ch : chunks[t]) {
          if (std::isalnum(static_cast<unsigned char>(ch))) {
            word.push_back(ch);
          } else if (!word.empty()) {
            out.emit_record<std::uint64_t>(word, 1);
            word.clear();
          }
        }
        if (!word.empty()) out.emit_record<std::uint64_t>(word, 1);
      });
      if (combine) {
        mr.combine([](const std::string& k, std::span<const std::string> vs, pmr::KvEmitter& out) {
          std::uint64_t total = 0;
          for (const auto& v : vs) total += pmr::unpack_record<std::uint64_t>(v);
          out.emit_record<std::uint64_t>(k, total);
        });
      }
      mr.collate();
      if (c.rank() == 0) {
        (combine ? pairs_combined : pairs_plain) = mr.shuffle_stats().pairs_before;
      }
    }
  });

  EXPECT_EQ(plain, combined);
  EXPECT_GT(pairs_plain, 0u);
  // The whole point: combining slashes the pair volume entering the shuffle.
  EXPECT_LT(pairs_combined, pairs_plain / 2);
}

// ---- word count vs serial oracle ----------------------------------------------

TEST(WordCount, SplitCorpusPreservesWords) {
  const std::string text = "alpha beta gamma delta epsilon zeta eta theta";
  for (std::size_t chunks : {1u, 2u, 3u, 8u, 20u}) {
    const auto parts = pmr::split_corpus(text, chunks);
    EXPECT_EQ(parts.size(), chunks);
    std::string joined;
    for (const auto& p : parts) joined += p;
    EXPECT_EQ(joined, text);
    // No chunk boundary may split a word: each part must not start or end
    // mid-token relative to neighbors (verified via serial counts below).
    auto whole = pmr::word_count_serial(text);
    std::map<std::string, std::uint64_t> merged;
    for (const auto& p : parts) {
      for (const auto& wc : pmr::word_count_serial(p)) merged[wc.word] += wc.count;
    }
    ASSERT_EQ(merged.size(), whole.size());
    for (const auto& wc : whole) EXPECT_EQ(merged[wc.word], wc.count);
  }
}

TEST(WordCount, SerialOracleBasics) {
  const auto counts = pmr::word_count_serial("The cat and the dog. The END!");
  std::map<std::string, std::uint64_t> m;
  for (const auto& wc : counts) m[wc.word] = wc.count;
  EXPECT_EQ(m.at("the"), 3u);
  EXPECT_EQ(m.at("cat"), 1u);
  EXPECT_EQ(m.at("end"), 1u);
  EXPECT_EQ(m.size(), 5u);
}

class WordCountRanks : public ::testing::TestWithParam<int> {};

TEST_P(WordCountRanks, DistributedMatchesSerialForAnyRankCount) {
  const int p = GetParam();
  const std::string corpus = pmr::synthetic_corpus(2000, 42);
  const auto expect = pmr::word_count_serial(corpus);
  pm::run(p, [&](pm::Comm& c) {
    const auto got = pmr::word_count(c, corpus);
    EXPECT_EQ(got, expect);  // on every rank (result is broadcast)
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, WordCountRanks, ::testing::Values(1, 2, 3, 4, 6));

TEST(WordCount, EmptyCorpus) {
  pm::run(2, [](pm::Comm& c) {
    const auto got = pmr::word_count(c, "");
    EXPECT_TRUE(got.empty());
  });
}

TEST(SyntheticCorpus, DeterministicAndSkewed) {
  const auto a = pmr::synthetic_corpus(1000, 5);
  EXPECT_EQ(a, pmr::synthetic_corpus(1000, 5));
  const auto counts = pmr::word_count_serial(a);
  // Zipf skew: the most common word must dominate the median word.
  std::vector<std::uint64_t> freqs;
  for (const auto& wc : counts) freqs.push_back(wc.count);
  std::sort(freqs.rbegin(), freqs.rend());
  EXPECT_GT(freqs.front(), 10 * freqs[freqs.size() / 2]);
}
