// Tests for the kNN assignment: strategy equivalence (sort ≡ heap ≡
// kd-tree), vote determinism, parallel-loop identity, the MapReduce
// version against the serial oracle for every rank count, and the
// local-combine communication ablation.

#include <gtest/gtest.h>

#include <numeric>

#include "data/points.hpp"
#include "knn/kdtree.hpp"
#include "knn/knn.hpp"
#include "knn/mapreduce_knn.hpp"
#include "support/check.hpp"

namespace pk = peachy::knn;
namespace pd = peachy::data;
namespace pm = peachy::mpi;

namespace {

pd::LabeledPoints small_db() {
  // 1-D database with known neighbor structure.
  pd::LabeledPoints db;
  db.points = pd::PointSet{6, 1, {0.0, 1.0, 2.0, 10.0, 11.0, 12.0}};
  db.labels = {0, 0, 0, 1, 1, 1};
  return db;
}

pd::LabeledPoints blob_db(std::size_t per_class = 60, std::size_t dims = 5,
                          std::uint64_t seed = 7) {
  pd::BlobsSpec spec;
  spec.points_per_class = per_class;
  spec.classes = 3;
  spec.dims = dims;
  spec.spread = 1.2;
  spec.seed = seed;
  return pd::gaussian_blobs(spec);
}

}  // namespace

// ---- single-query strategies ----------------------------------------------------

TEST(Query, SortFindsExactNeighbors) {
  const auto db = small_db();
  const double q[] = {1.4};
  const auto nbs = pk::query_sort(db, q, 3);
  ASSERT_EQ(nbs.size(), 3u);
  EXPECT_EQ(nbs[0].index, 1u);  // 1.0 is nearest to 1.4
  EXPECT_EQ(nbs[1].index, 2u);
  EXPECT_EQ(nbs[2].index, 0u);
  EXPECT_DOUBLE_EQ(nbs[0].dist2, 0.4 * 0.4);
}

TEST(Query, HeapMatchesSortExactly) {
  const auto db = blob_db();
  const auto queries = pd::uniform_points(50, db.dims(), -12, 12, 3);
  for (std::size_t k : {1u, 5u, 17u, 200u}) {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(pk::query_heap(db, queries.point(qi), k),
                pk::query_sort(db, queries.point(qi), k))
          << "k=" << k << " qi=" << qi;
    }
  }
}

TEST(Query, KLargerThanDatabaseReturnsAll) {
  const auto db = small_db();
  const double q[] = {5.0};
  EXPECT_EQ(pk::query_sort(db, q, 100).size(), 6u);
  EXPECT_EQ(pk::query_heap(db, q, 100).size(), 6u);
}

TEST(Query, ValidatesInputs) {
  const auto db = small_db();
  const double q1[] = {1.0, 2.0};  // wrong dims
  EXPECT_THROW((void)pk::query_sort(db, q1, 3), peachy::Error);
  const double q2[] = {1.0};
  EXPECT_THROW((void)pk::query_heap(db, q2, 0), peachy::Error);
}

// ---- kd tree ---------------------------------------------------------------------

TEST(KdTree, MatchesBruteForceExactly) {
  const auto db = blob_db(80, 3);
  const pk::KdTree tree{db, 8};
  const auto queries = pd::uniform_points(100, 3, -12, 12, 5);
  for (std::size_t k : {1u, 4u, 15u}) {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      EXPECT_EQ(tree.query(queries.point(qi), k), pk::query_heap(db, queries.point(qi), k))
          << "k=" << k << " qi=" << qi;
    }
  }
}

TEST(KdTree, PrunesDistanceEvaluations) {
  // On clustered low-dimensional data the tree must evaluate far fewer
  // distances than brute force.
  const auto db = blob_db(400, 2, 13);
  const pk::KdTree tree{db, 16};
  const auto queries = pd::uniform_points(50, 2, -12, 12, 9);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) (void)tree.query(queries.point(qi), 5);
  const auto brute = static_cast<std::uint64_t>(db.size()) * queries.size();
  EXPECT_LT(tree.distance_evals(), brute / 2);
}

TEST(KdTree, HandlesDuplicatePoints) {
  pd::LabeledPoints db;
  db.points = pd::PointSet{5, 2, {1, 1, 1, 1, 1, 1, 1, 1, 2, 2}};
  db.labels = {0, 0, 0, 0, 1};
  const pk::KdTree tree{db, 2};
  const double q[] = {1.0, 1.0};
  const auto nbs = tree.query(q, 4);
  ASSERT_EQ(nbs.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(nbs[i].dist2, 0.0);
  // Deterministic tie order: ascending index.
  EXPECT_EQ(nbs[0].index, 0u);
  EXPECT_EQ(nbs[3].index, 3u);
}

TEST(KdTree, SingleLeafDegenerateTree) {
  const auto db = small_db();
  const pk::KdTree tree{db, 100};  // leaf_size > n: one leaf
  EXPECT_EQ(tree.node_count(), 1u);
  const double q[] = {1.4};
  EXPECT_EQ(tree.query(q, 3), pk::query_sort(db, q, 3));
}

// ---- vote -------------------------------------------------------------------------

TEST(Vote, SimpleMajority) {
  const std::vector<pk::Neighbor> nbs{{1.0, 0, 7}, {2.0, 1, 7}, {3.0, 2, 9}};
  EXPECT_EQ(pk::majority_vote(nbs), 7);
}

TEST(Vote, TieBreaksTowardNearest) {
  const std::vector<pk::Neighbor> nbs{{1.0, 0, 5}, {2.0, 1, 3}, {3.0, 2, 3}, {4.0, 3, 5}};
  // 2-2 tie; class 5 has the nearest member (dist 1.0).
  EXPECT_EQ(pk::majority_vote(nbs), 5);
}

TEST(Vote, EmptyThrows) {
  EXPECT_THROW((void)pk::majority_vote(std::vector<pk::Neighbor>{}), peachy::Error);
}

// ---- batch classification -----------------------------------------------------------

TEST(Classify, HighAccuracyOnSeparableBlobs) {
  pd::BlobsSpec spec;
  spec.points_per_class = 100;
  spec.classes = 3;
  spec.dims = 4;
  spec.spread = 0.5;
  spec.seed = 21;
  const auto all = pd::gaussian_blobs(spec);
  const auto split = pd::train_test_split(all, 0.25, 3);
  pk::ClassifyOptions opts;
  opts.k = 7;
  const auto pred = pk::classify(split.train, split.test.points, opts);
  EXPECT_GT(pk::accuracy(pred, split.test.labels), 0.95);
}

TEST(Classify, AllStrategiesAgree) {
  const auto db = blob_db();
  const auto queries = pd::uniform_points(40, db.dims(), -12, 12, 17);
  pk::ClassifyOptions opts;
  opts.k = 9;
  opts.selection = pk::Selection::kSort;
  const auto by_sort = pk::classify(db, queries, opts);
  opts.selection = pk::Selection::kHeap;
  const auto by_heap = pk::classify(db, queries, opts);
  opts.selection = pk::Selection::kKdTree;
  const auto by_tree = pk::classify(db, queries, opts);
  EXPECT_EQ(by_sort, by_heap);
  EXPECT_EQ(by_sort, by_tree);
}

TEST(Classify, ParallelEqualsSerialForAnyThreadCount) {
  const auto db = blob_db();
  const auto queries = pd::uniform_points(60, db.dims(), -12, 12, 23);
  pk::ClassifyOptions opts;
  opts.k = 5;
  const auto serial = pk::classify(db, queries, opts);
  peachy::support::ThreadPool pool{4};
  for (std::size_t threads : {2u, 3u, 4u, 7u}) {
    opts.threads = threads;
    EXPECT_EQ(pk::classify(db, queries, opts, &pool), serial) << "threads=" << threads;
  }
}

TEST(Classify, StatsReportDistanceEvals) {
  const auto db = blob_db(30, 2);
  const auto queries = pd::uniform_points(10, 2, -12, 12, 2);
  pk::ClassifyOptions opts;
  pk::ClassifyStats stats;
  (void)pk::classify(db, queries, opts, nullptr, &stats);
  EXPECT_EQ(stats.distance_evals, db.size() * queries.size());
  EXPECT_GT(stats.seconds, 0.0);

  opts.selection = pk::Selection::kKdTree;
  pk::ClassifyStats tree_stats;
  (void)pk::classify(db, queries, opts, nullptr, &tree_stats);
  EXPECT_LT(tree_stats.distance_evals, stats.distance_evals);
}

TEST(Classify, RequiresPoolForParallel) {
  const auto db = small_db();
  const auto queries = pd::uniform_points(4, 1, 0, 12, 1);
  pk::ClassifyOptions opts;
  opts.threads = 4;
  EXPECT_THROW((void)pk::classify(db, queries, opts, nullptr), peachy::Error);
}

TEST(Accuracy, CountsMatches) {
  const std::vector<std::int32_t> pred{1, 2, 3, 4};
  const std::vector<std::int32_t> truth{1, 2, 0, 4};
  EXPECT_DOUBLE_EQ(pk::accuracy(pred, truth), 0.75);
  EXPECT_THROW((void)pk::accuracy(pred, std::vector<std::int32_t>{1}), peachy::Error);
}

// ---- MapReduce version ---------------------------------------------------------------

class MrKnnRanks : public ::testing::TestWithParam<int> {};

TEST_P(MrKnnRanks, MatchesSerialHeapClassifier) {
  const int p = GetParam();
  const auto db = blob_db(40, 3, 31);
  const auto queries = pd::uniform_points(25, 3, -12, 12, 7);
  pk::ClassifyOptions serial_opts;
  serial_opts.k = 5;
  const auto expect = pk::classify(db, queries, serial_opts);

  for (const bool combine : {false, true}) {
    for (const auto emit : {pk::EmitMode::kAllPairs, pk::EmitMode::kTopKPerTask}) {
      pm::run(p, [&](pm::Comm& comm) {
        pk::MrKnnOptions opts;
        opts.k = 5;
        opts.map_tasks = 6;
        opts.emit = emit;
        opts.local_combine = combine;
        const auto got = pk::mapreduce_classify(comm, db, queries, opts);
        EXPECT_EQ(got, expect) << "ranks=" << p << " combine=" << combine;
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MrKnnRanks, ::testing::Values(1, 2, 3, 5));

TEST(MrKnn, LocalCombineCutsShuffleVolume) {
  const auto db = blob_db(60, 3, 37);
  const auto queries = pd::uniform_points(20, 3, -12, 12, 11);
  std::uint64_t pairs_plain = 0, pairs_combined = 0, pairs_naive = 0;
  pm::run(4, [&](pm::Comm& comm) {
    pk::MrKnnOptions opts;
    opts.k = 5;
    opts.map_tasks = 8;

    opts.emit = pk::EmitMode::kAllPairs;
    pk::MrKnnStats naive;
    (void)pk::mapreduce_classify(comm, db, queries, opts, &naive);

    opts.emit = pk::EmitMode::kTopKPerTask;
    pk::MrKnnStats plain;
    (void)pk::mapreduce_classify(comm, db, queries, opts, &plain);

    opts.local_combine = true;
    pk::MrKnnStats combined;
    (void)pk::mapreduce_classify(comm, db, queries, opts, &combined);

    if (comm.rank() == 0) {
      pairs_naive = naive.pairs_shuffled;
      pairs_plain = plain.pairs_shuffled;
      pairs_combined = combined.pairs_shuffled;
    }
  });
  // naive: n per query; per-task top-k: tasks*k per query; combined: ranks*k.
  EXPECT_EQ(pairs_naive, db.size() * queries.size());
  EXPECT_EQ(pairs_plain, 8u * 5 * queries.size());
  EXPECT_EQ(pairs_combined, 4u * 5 * queries.size());
}

TEST(MrKnn, ValidatesOptions) {
  const auto db = small_db();
  const auto queries = pd::uniform_points(2, 1, 0, 12, 1);
  pm::run(1, [&](pm::Comm& comm) {
    pk::MrKnnOptions opts;
    opts.k = 0;
    EXPECT_THROW((void)pk::mapreduce_classify(comm, db, queries, opts), peachy::Error);
    opts = {};
    opts.map_tasks = 0;
    EXPECT_THROW((void)pk::mapreduce_classify(comm, db, queries, opts), peachy::Error);
  });
}

// ---- parallel tree construction (the paper's "more challenging" extension) ----

TEST(KdTreeParallel, QueriesIdenticalToSequentialBuild) {
  const auto db = blob_db(300, 3, 41);
  const pk::KdTree seq_tree{db, 8};
  peachy::support::ThreadPool pool{4};
  const pk::KdTree par_tree{db, 8, &pool};
  EXPECT_EQ(par_tree.node_count(), seq_tree.node_count());
  const auto queries = pd::uniform_points(80, 3, -12, 12, 19);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(par_tree.query(queries.point(qi), 7), seq_tree.query(queries.point(qi), 7))
        << "qi=" << qi;
  }
}

TEST(KdTreeParallel, SmallInputsFallBackToSequential) {
  const auto db = blob_db(4, 2, 5);  // 12 points < 4*leaf_size
  peachy::support::ThreadPool pool{4};
  const pk::KdTree tree{db, 8, &pool};
  const double q[] = {0.0, 0.0};
  EXPECT_EQ(tree.query(q, 3), pk::query_heap(db, q, 3));
}

TEST(KdTreeParallel, DuplicateHeavyDataStillCorrect) {
  // Many identical points: skeleton splitting stalls (zero-width boxes)
  // and must terminate with leaf tasks.
  pd::LabeledPoints db;
  for (int i = 0; i < 200; ++i) {
    const double v[] = {static_cast<double>(i % 3), 1.0};
    db.points.push_back(v);
    db.labels.push_back(i % 3);
  }
  peachy::support::ThreadPool pool{4};
  const pk::KdTree tree{db, 4, &pool};
  const double q[] = {1.1, 1.0};
  EXPECT_EQ(tree.query(q, 5), pk::query_heap(db, q, 5));
}
