// Cross-module integration tests: the same computation expressed through
// different peachy engines must agree — spark vs MapReduce word count,
// Frame vs spark aggregation, kNN through CSV files and MapReduce vs the
// k-d tree, k-means over the synthetic city's events, and the ensemble
// uncertainty curve over a morph sweep.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>

#include "data/csv.hpp"
#include "data/frame.hpp"
#include "data/points.hpp"
#include "geo/city.hpp"
#include "hpo/hpo.hpp"
#include "kmeans/kmeans.hpp"
#include "knn/kdtree.hpp"
#include "knn/knn.hpp"
#include "knn/mapreduce_knn.hpp"
#include "mapreduce/wordcount.hpp"
#include "nn/digits.hpp"
#include "spark/pair_rdd.hpp"
#include "spark/rdd.hpp"
#include "support/check.hpp"
#include "traffic/traffic.hpp"

namespace {

/// Word count on the spark engine (flat_map → reduce_by_key).
std::map<std::string, std::uint64_t> spark_word_count(const std::string& corpus) {
  auto ctx = peachy::spark::Context::create(3, 6);
  // Split into lines as the parallel records.
  std::vector<std::string> lines;
  std::string line;
  for (char c : corpus) {
    if (c == '\n') {
      lines.push_back(std::move(line));
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) lines.push_back(std::move(line));

  auto words = peachy::spark::parallelize(ctx, lines)
                   .flat_map([](const std::string& l) {
                     std::vector<std::pair<std::string, std::uint64_t>> out;
                     std::string word;
                     for (char c : l) {
                       if (std::isalnum(static_cast<unsigned char>(c))) {
                         word.push_back(static_cast<char>(
                             std::tolower(static_cast<unsigned char>(c))));
                       } else if (!word.empty()) {
                         out.emplace_back(std::move(word), 1);
                         word.clear();
                       }
                     }
                     if (!word.empty()) out.emplace_back(std::move(word), 1);
                     return out;
                   });
  std::map<std::string, std::uint64_t> result;
  for (const auto& [w, c] : peachy::spark::reduce_by_key(words, std::plus<>{}).collect()) {
    result[w] = c;
  }
  return result;
}

}  // namespace

// ---- spark vs MapReduce: two engines, one answer --------------------------------

TEST(Integration, SparkAndMapReduceWordCountsAgree) {
  const auto corpus = peachy::mapreduce::synthetic_corpus(3000, 17);
  const auto via_spark = spark_word_count(corpus);

  std::map<std::string, std::uint64_t> via_mr;
  peachy::mpi::run(3, [&](peachy::mpi::Comm& comm) {
    for (const auto& wc : peachy::mapreduce::word_count(comm, corpus)) {
      if (comm.rank() == 0) via_mr[wc.word] = wc.count;
    }
  });
  EXPECT_EQ(via_spark, via_mr);
}

// ---- Frame vs spark aggregation ---------------------------------------------------

TEST(Integration, FrameGroupByMatchesSparkReduceByKey) {
  // Same borough→arrest aggregation through the dataframe and the RDD
  // engine.
  std::vector<std::pair<std::string, std::int64_t>> records;
  peachy::data::Frame frame{{"borough", "arrests"},
                            {peachy::data::ColType::kString, peachy::data::ColType::kInt}};
  const char* boroughs[] = {"BK", "MN", "QN", "BX"};
  for (int i = 0; i < 200; ++i) {
    const std::string b = boroughs[i % 4];
    const std::int64_t v = (i * 7) % 23;
    records.emplace_back(b, v);
    frame.push_row({b, v});
  }
  const auto grouped = frame.group_by("borough", peachy::data::Frame::Agg::kSum, "arrests");
  std::map<std::string, double> via_frame;
  for (std::size_t r = 0; r < grouped.rows(); ++r) {
    via_frame[grouped.str(r, "borough")] = grouped.num(r, "sum_arrests");
  }

  auto ctx = peachy::spark::Context::create(2, 5);
  std::map<std::string, double> via_spark;
  for (const auto& [k, v] :
       peachy::spark::reduce_by_key(peachy::spark::parallelize(ctx, records), std::plus<>{})
           .collect()) {
    via_spark[k] = static_cast<double>(v);
  }
  EXPECT_EQ(via_frame, via_spark);
}

// ---- kNN end-to-end through the filesystem -----------------------------------------

TEST(Integration, KnnFromCsvFileThroughMapReduce) {
  // Write a dataset to an actual CSV file, read it back, classify with
  // MapReduce over 3 ranks, validate against the k-d tree.
  peachy::data::BlobsSpec spec;
  spec.points_per_class = 40;
  spec.classes = 3;
  spec.dims = 4;
  spec.spread = 0.8;
  spec.seed = 77;
  const auto dataset = peachy::data::gaussian_blobs(spec);

  const auto path =
      (std::filesystem::temp_directory_path() / "peachy_knn_integration.csv").string();
  peachy::data::write_csv_file(path, peachy::data::to_csv(dataset));
  const auto loaded = peachy::data::from_csv(peachy::data::read_csv_file(path));
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), dataset.size());

  const auto split = peachy::data::train_test_split(loaded, 0.25, 5);
  // Serial oracle via the k-d tree.
  peachy::knn::ClassifyOptions tree_opts;
  tree_opts.k = 5;
  tree_opts.selection = peachy::knn::Selection::kKdTree;
  const auto oracle = peachy::knn::classify(split.train, split.test.points, tree_opts);

  peachy::mpi::run(3, [&](peachy::mpi::Comm& comm) {
    peachy::knn::MrKnnOptions opts;
    opts.k = 5;
    opts.local_combine = true;
    const auto got =
        peachy::knn::mapreduce_classify(comm, split.train, split.test.points, opts);
    EXPECT_EQ(got, oracle);
  });
  EXPECT_GT(peachy::knn::accuracy(oracle, split.test.labels), 0.9);
}

// ---- k-means over the city's arrest events -------------------------------------------

TEST(Integration, KmeansFindsCityHotspots) {
  // Cluster raw arrest coordinates; with k = NTA count the per-cluster
  // spread must be far below the city scale (clusters latch onto the
  // intensity hotspots).
  peachy::geo::CitySpec cspec;
  cspec.rows = 3;
  cspec.cols = 3;
  const peachy::geo::SyntheticCity city{cspec};
  const auto events = city.generate_arrests(3000, 21);

  peachy::data::PointSet points(events.size(), 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    points.at(i, 0) = events[i].location.x;
    points.at(i, 1) = events[i].location.y;
  }
  peachy::kmeans::Options opts;
  opts.k = 9;
  opts.seed = 3;
  opts.init = peachy::kmeans::Init::kPlusPlus;
  const auto res = peachy::kmeans::cluster_sequential(points, opts);
  // Mean within-cluster distance << city width (10): inertia/n is the
  // mean squared distance to the assigned centroid.
  EXPECT_LT(res.inertia / static_cast<double>(points.size()), 4.0);
  // All centroids are inside the city.
  for (std::size_t c = 0; c < res.centroids.size(); ++c) {
    EXPECT_GE(res.centroids.at(c, 0), 0.0);
    EXPECT_LE(res.centroids.at(c, 0), 10.0);
  }
}

// ---- ensemble uncertainty as a function of ambiguity ------------------------------------

class MorphSweep : public ::testing::TestWithParam<double> {};

TEST_P(MorphSweep, EntropyGrowsTowardMaximalAmbiguity) {
  // Property: predictive entropy at morph level alpha is at least the
  // clean-digit entropy (alpha in {0, 1} are clean digits).
  static const auto shared = [] {
    struct Shared {
      peachy::nn::SyntheticDigits digits;
      peachy::hpo::SearchSpace space;
      peachy::nn::Dataset train;
      std::vector<peachy::nn::TrainConfig> configs;
      peachy::nn::EnsembleClassifier ens;
    };
    auto s = std::make_shared<Shared>();
    s->train = s->digits.make_dataset(400, 51);
    s->space.hidden_layouts = {{24}};
    s->space.learning_rates = {0.1, 0.2};
    s->space.momenta = {0.0, 0.9};
    s->space.epochs = 10;
    s->space.base_seed = 51;
    s->configs = s->space.enumerate();
    const auto results = peachy::hpo::serial_search(s->train, s->train, s->configs);
    s->ens = peachy::hpo::build_ensemble(s->train, s->configs, results, 4);
    return s;
  }();

  const double alpha = GetParam();
  peachy::rng::SplitMix64 gen{99};
  peachy::nn::Matrix batch{2, shared->digits.features()};
  const auto clean = shared->digits.render_morph(4, 9, 0.0, gen);
  const auto morph = shared->digits.render_morph(4, 9, alpha, gen);
  std::copy(clean.begin(), clean.end(), batch.row(0).begin());
  std::copy(morph.begin(), morph.end(), batch.row(1).begin());
  const auto preds = shared->ens.predict_uncertain(batch);
  // Mid-morphs must be at least as uncertain as the clean digit (allow a
  // small slack for noise).
  EXPECT_GE(preds[1].entropy, preds[0].entropy - 0.05) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, MorphSweep, ::testing::Values(0.3, 0.5, 0.7));

// ---- the full Fig. 3 configuration actually jams ------------------------------------------

TEST(Integration, Fig3ConfigurationProducesJams) {
  // Paper Fig. 3: 200 cars, length 1000, p=0.13, v_max=5.  Density 0.2 is
  // above critical (~1/6), so jams must persist.
  peachy::traffic::Spec spec;  // defaults == Fig. 3
  spec.seed = 1234;
  std::vector<peachy::traffic::State> snaps;
  (void)peachy::traffic::run_serial(spec, 500, &snaps);
  std::size_t steps_with_jams = 0;
  for (std::size_t s = 250; s < snaps.size(); ++s) {
    steps_with_jams += peachy::traffic::stopped_cars(snaps[s]) > 0;
  }
  // Jams present in the vast majority of steady-state steps.
  EXPECT_GT(steps_with_jams, 200u);
}
