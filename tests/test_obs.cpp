// Tests for peachy::obs: span recording and per-thread nesting, counters
// and histograms, trace JSON output, the disabled-mode contract, and the
// cross-checks the ISSUE's bugfixes are validated through (obs counters vs
// TrafficStats, thread-pool dispatch latency).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "faults/detect.hpp"
#include "faults/plan.hpp"
#include "mpi/mpi.hpp"
#include "obs/obs.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

namespace po = peachy::obs;
namespace ps = peachy::support;
namespace pm = peachy::mpi;

namespace {

/// RAII: enable obs for one test, restore disabled + watermark after.
struct ScopedTrace {
  ScopedTrace() {
    po::reset();
    po::enable();
  }
  ~ScopedTrace() {
    po::disable();
    po::reset();
  }
};

std::vector<po::EventView> spans_only(const std::vector<po::EventView>& evs) {
  std::vector<po::EventView> out;
  for (const auto& e : evs) {
    if (e.kind == po::EventView::Kind::kSpan) out.push_back(e);
  }
  return out;
}

}  // namespace

// ---- spans -------------------------------------------------------------------

TEST(ObsSpans, RecordsCategoryNameAndArg) {
  ScopedTrace trace;
  { const po::SpanScope s{"test", "outer", "n", 42}; }
  const auto spans = spans_only(po::snapshot_events());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].cat, "test");
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].arg_key, "n");
  EXPECT_EQ(spans[0].arg_val, 42);
}

TEST(ObsSpans, ArgCanBeSetAtScopeEnd) {
  ScopedTrace trace;
  {
    po::SpanScope s{"test", "late"};
    s.arg("result", 7);
  }
  const auto spans = spans_only(po::snapshot_events());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg_key, "result");
  EXPECT_EQ(spans[0].arg_val, 7);
}

TEST(ObsSpans, NestingIsWellFormedPerThread) {
  ScopedTrace trace;
  ps::ThreadPool pool{4};
  // Nested regions from many threads: outer span on each task, inner spans
  // within, plus parallel_for's own region spans.
  ps::parallel_for(
      pool, 0, 64,
      [&](std::size_t i) {
        const po::SpanScope outer{"test", "outer"};
        for (int j = 0; j < 3; ++j) {
          const po::SpanScope inner{"test", "inner", "i",
                                    static_cast<std::int64_t>(i)};
        }
      },
      /*grain=*/0);
  pool.wait_idle();

  std::map<std::uint32_t, std::vector<po::EventView>> by_tid;
  for (const auto& e : spans_only(po::snapshot_events())) {
    by_tid[e.tid].push_back(e);
  }
  ASSERT_FALSE(by_tid.empty());
  for (auto& [tid, spans] : by_tid) {
    // Within one thread, spans must form a forest: any two either nest
    // fully or don't overlap at all (RAII scopes guarantee it; this checks
    // the recorded timestamps preserve it).
    std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
      return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.dur_ns > b.dur_ns;
    });
    std::vector<std::uint64_t> stack;  // open span end times
    for (const auto& s : spans) {
      while (!stack.empty() && s.ts_ns >= stack.back()) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(s.ts_ns + s.dur_ns, stack.back())
            << "span [" << s.cat << ":" << s.name << "] on tid " << tid
            << " partially overlaps an enclosing span";
      }
      stack.push_back(s.ts_ns + s.dur_ns);
    }
  }
}

TEST(ObsSpans, DisabledModeRecordsNothing) {
  po::disable();
  po::reset();
  { const po::SpanScope s{"test", "ghost"}; }
  po::gauge("test.gauge", 1);
  EXPECT_TRUE(po::snapshot_events().empty());
}

TEST(ObsSpans, ResetHidesOlderEvents) {
  ScopedTrace trace;
  { const po::SpanScope s{"test", "before"}; }
  po::reset();
  { const po::SpanScope s{"test", "after"}; }
  const auto spans = spans_only(po::snapshot_events());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "after");
}

// ---- counters / histograms ---------------------------------------------------

TEST(ObsCounters, AccumulateAndReadBack) {
  ScopedTrace trace;
  po::Counter& c = po::counter("test.counter");
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12);
  EXPECT_EQ(po::counter_value("test.counter"), 12);
  EXPECT_EQ(po::counter_value("test.never_registered"), 0);
}

TEST(ObsHistogram, PercentileBoundsBracketTheData) {
  ScopedTrace trace;
  po::Histogram& h = po::histogram("test.hist");
  // 99 small values and one large outlier.
  for (int i = 0; i < 99; ++i) h.note(100);
  h.note(1'000'000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 1'000'000u);
  EXPECT_GE(h.percentile_upper_bound(0.50), 100u);
  EXPECT_LT(h.percentile_upper_bound(0.50), 256u);   // 100 lives in [64,128)
  EXPECT_GE(h.percentile_upper_bound(0.999), 1'000'000u);
  EXPECT_EQ(po::histogram("test.hist").count(), 100u);  // same object
}

TEST(ObsCounters, SummaryTextListsNonZeroEntries) {
  ScopedTrace trace;
  po::counter("test.summary_counter").add(3);
  po::histogram("test.summary_hist").note(1000);
  const std::string s = po::summary_text();
  EXPECT_NE(s.find("test.summary_counter = 3"), std::string::npos);
  EXPECT_NE(s.find("test.summary_hist"), std::string::npos);
}

// ---- gauges ------------------------------------------------------------------

TEST(ObsGauges, RecordTimestampedValues) {
  ScopedTrace trace;
  po::gauge("test.depth", 3);
  po::gauge("test.depth", 1);
  std::vector<std::int64_t> vals;
  for (const auto& e : po::snapshot_events()) {
    if (e.kind == po::EventView::Kind::kGauge && e.name == "test.depth") {
      vals.push_back(e.arg_val);
    }
  }
  EXPECT_EQ(vals, (std::vector<std::int64_t>{3, 1}));
}

// ---- trace JSON --------------------------------------------------------------

TEST(ObsTrace, WritesSchemaTaggedChromeJson) {
  ScopedTrace trace;
  { const po::SpanScope s{"test", "traced \"span\"", "bytes", 17}; }
  po::gauge("test.gauge", 9);
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(po::write_trace(path));
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"schema\": \"peachy-trace/1\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\\\"span\\\""), std::string::npos);  // quotes escaped
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy; scripts/check.sh
  // parses a real trace with a real JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsTrace, UnwritablePathReturnsFalse) {
  ScopedTrace trace;
  EXPECT_FALSE(po::write_trace("/nonexistent-dir/trace.json"));
}

// ---- substrate integration ---------------------------------------------------

TEST(ObsIntegration, MpiCountersMatchTrafficStats) {
  ScopedTrace trace;
  // Checked allreduce run: every post goes through the instrumented path,
  // so the obs counters must agree exactly with the machine's TrafficStats.
  const auto run = pm::run_checked(4, [](pm::Comm& c) {
    const double v = static_cast<double>(c.rank() + 1);
    const double total = c.allreduce_value<double>(v, std::plus<>{});
    EXPECT_DOUBLE_EQ(total, 10.0);
  });
  EXPECT_TRUE(run.report.clean()) << run.report.to_string();
  EXPECT_EQ(po::counter_value("mpi.messages"),
            static_cast<std::int64_t>(run.stats.messages));
  EXPECT_EQ(po::counter_value("mpi.bytes"),
            static_cast<std::int64_t>(run.stats.bytes));
  EXPECT_GT(run.stats.messages, 0u);
}

TEST(ObsIntegration, MpiSpansAndQueueGaugesRecorded) {
  ScopedTrace trace;
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 0, 99);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 0), 99);
    }
  });
  bool saw_post = false, saw_recv = false, saw_gauge = false;
  for (const auto& e : po::snapshot_events()) {
    if (e.kind == po::EventView::Kind::kSpan && e.cat == "mpi") {
      saw_post |= e.name == "post";
      saw_recv |= e.name == "recv";
    }
    if (e.kind == po::EventView::Kind::kGauge &&
        e.name.rfind("mpi.queue[", 0) == 0) {
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_post);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_gauge);
}

TEST(ObsIntegration, PoolDwellHistogramPopulated) {
  ScopedTrace trace;
  ps::ThreadPool pool{2};
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_GE(po::histogram("pool.dwell_ns").count(), 32u);
}

// ---- bugfix regression: dispatch latency -------------------------------------

TEST(PoolDispatch, BurstOfTinySubmitsHasSubMillisecondP99) {
  // Regression test for the submit/wait missed-notify race: submit()
  // published work and called notify_one() without holding idle_mu_, so a
  // worker between "scanned empty" and "wait" missed the notify and slept
  // out the old 1 ms poll.  With the ticket published under idle_mu_ and a
  // plain predicated wait, dispatch latency is bounded by OS wakeup time.
  ps::ThreadPool pool{2};
  constexpr int kBurst = 400;
  std::vector<double> latency_ms(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    std::atomic<bool> done{false};
    const auto t0 = std::chrono::steady_clock::now();
    pool.submit([&done] { done.store(true, std::memory_order_release); });
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    latency_ms[static_cast<std::size_t>(i)] =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  t0)
            .count();
    // Let the workers drain back to the idle wait, so every iteration
    // exercises the sleeping-worker wakeup path (where the race lived).
    if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::microseconds{200});
  }
  std::sort(latency_ms.begin(), latency_ms.end());
  const double p99 = latency_ms[static_cast<std::size_t>(kBurst * 99 / 100)];
  EXPECT_LT(p99, 1.0) << "p99 dispatch latency " << p99
                      << " ms — sleeping workers are missing submit wakeups";
}

// ---- wire fault / heartbeat counter cross-checks (DESIGN.md §17) ------------

TEST(ObsIntegration, WireFaultCountersMatchTheInjectorLogExactly) {
  // Deterministic step-scoped wire events: the plan fires a known number
  // of times, so `faults.wire.*` and `mpi.transport.crc_fail` must equal
  // the injector's canonical log line-for-line, not merely be nonzero.
  ScopedTrace trace;
  const auto plan = peachy::faults::FaultPlan::parse(
      "wire_dup@rank=0,step=0; wire_delay@rank=1,step=0,ns=100000; "
      "wire_corrupt@rank=0,step=2");
  std::string log;
  pm::RunOptions o;
  o.transport = pm::TransportKind::kShm;
  o.plan = &plan;
  o.check = peachy::analysis::CheckLevel::off;
  o.op_timeout_ns = 5'000'000'000;
  o.fault_log = &log;
  pm::run(2, [](pm::Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 1, 10);                  // step 0: duplicated
      c.send_value<int>(1, 2, 20);                  // step 1: clean
      c.send<int>(1, 3, std::vector<int>(32, 3));   // step 2: corrupted → lost
      EXPECT_EQ(c.recv_value<int>(1, 9), 90);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 1), 10);
      EXPECT_EQ(c.recv_value<int>(0, 1), 10);  // the duplicate's twin
      EXPECT_EQ(c.recv_value<int>(0, 2), 20);
      c.send_value<int>(0, 9, 90);  // rank 1 step 0: delayed, then delivered
    }
  }, o);

  const auto lines_with = [&log](const char* needle) {
    std::int64_t n = 0;
    for (std::size_t at = log.find(needle); at != std::string::npos;
         at = log.find(needle, at + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(lines_with("wire_dup"), 1);
  EXPECT_EQ(lines_with("wire_delay"), 1);
  EXPECT_EQ(lines_with("wire_corrupt"), 1);
  EXPECT_EQ(po::counter("faults.wire.dup").value(), lines_with("wire_dup"));
  EXPECT_EQ(po::counter("faults.wire.delay").value(), lines_with("wire_delay"));
  EXPECT_EQ(po::counter("faults.wire.corrupt").value(), lines_with("wire_corrupt"));
  // Every corrupted frame — and nothing else in this plan — trips the
  // receive-side CRC check.
  EXPECT_EQ(po::counter("mpi.transport.crc_fail").value(), lines_with("wire_corrupt"));
  EXPECT_EQ(po::counter("faults.wire.drop").value(), 0);
  EXPECT_EQ(po::counter("faults.wire.truncate").value(), 0);
}

TEST(ObsIntegration, HeartbeatCountersMatchMonitorTransitions) {
  // Drive the failure-detector state machine directly and tally its
  // verdicts; the exported counters must agree transition-for-transition.
  ScopedTrace trace;
  using V = peachy::faults::HeartbeatMonitor::Verdict;
  peachy::faults::HeartbeatMonitor mon{2, peachy::faults::HeartbeatConfig{100'000'000}};
  const std::uint64_t t0 = 1'000'000'000;
  mon.alive(0, t0);
  mon.alive(1, t0);

  std::int64_t suspected = 0;
  std::int64_t confirmed = 0;
  const auto tally = [&](V v) {
    if (v == V::kSuspected) ++suspected;
    if (v == V::kConfirmed) ++confirmed;
  };
  tally(mon.check(0, t0 + 120'000'000));  // peer 0: suspected
  tally(mon.check(0, t0 + 160'000'000));  // ... confirmed
  tally(mon.check(1, t0 + 120'000'000));  // peer 1: suspected
  mon.alive(1, t0 + 130'000'000);         // ... rehabilitated
  tally(mon.check(1, t0 + 140'000'000));
  tally(mon.check(1, t0 + 250'000'000));  // ... suspected again (fresh ladder)

  EXPECT_EQ(suspected, 3);
  EXPECT_EQ(confirmed, 1);
  EXPECT_EQ(po::counter("mpi.transport.heartbeat.suspected").value(), suspected);
  EXPECT_EQ(po::counter("mpi.transport.heartbeat.confirmed").value(), confirmed);
}
