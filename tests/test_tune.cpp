/// \file test_tune.cpp
/// \brief peachy::tune — profile parsing/fallback, selection rules, and
/// the correctness contracts of the algorithmic collectives and tunable
/// kernel constants.
///
/// The two load-bearing guarantees under test:
///
///  1. *Algorithm choice never changes integer results and never makes
///     float results nondeterministic.*  Integer reductions are
///     bit-identical across every algorithm; float reductions have a
///     fixed deterministic combine order per algorithm, so the same
///     (algorithm, p) always produces the same bytes — including under
///     fault injection (delays/stalls reorder wall-clock, never the
///     combine order).
///
///  2. *A bad profile can cost performance, never correctness.*
///     Corrupt, missing, version-mismatched, or partially-specified
///     profiles fall back to compiled-in defaults with named warnings —
///     no crash, no half-applied state.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "faults/plan.hpp"
#include "kernels/kernels.hpp"
#include "mpi/buffer_pool.hpp"
#include "mpi/mpi.hpp"
#include "support/parallel_for.hpp"
#include "tune/tune.hpp"

namespace pt = peachy::tune;
namespace pm = peachy::mpi;
namespace pk = peachy::kernels;
namespace pf = peachy::faults;

namespace {

/// Restore the process-wide active snapshot (to the environment-resolved
/// state, i.e. pure defaults in the test runner) when a test scope ends.
struct ActiveGuard {
  ActiveGuard() = default;
  ~ActiveGuard() { pt::reset_active(); }
  ActiveGuard(const ActiveGuard&) = delete;
  ActiveGuard& operator=(const ActiveGuard&) = delete;
};

/// Tunables forcing `algo` for `op` everywhere.
pt::Tunables forced(pt::CollOp op, pt::CollAlgo algo) {
  pt::Tunables t;
  pt::CollRule rule;
  rule.op = op;
  rule.algo = algo;
  t.coll_rules.push_back(rule);
  return t;
}

constexpr pt::CollAlgo kAllAlgos[] = {pt::CollAlgo::kAuto, pt::CollAlgo::kLinear,
                                      pt::CollAlgo::kBinomial, pt::CollAlgo::kRing,
                                      pt::CollAlgo::kRecDouble};

}  // namespace

// ---------------------------------------------------------------------------
// Selection rules.

TEST(TuneSelect, DefaultsAreAutoEverywhere) {
  const pt::Tunables t;
  for (const pt::CollOp op : {pt::CollOp::kBroadcast, pt::CollOp::kReduce,
                              pt::CollOp::kAllreduce, pt::CollOp::kAllgather}) {
    EXPECT_EQ(t.coll_algo(op, 4, 1024), pt::CollAlgo::kAuto);
    EXPECT_EQ(t.coll_algo(op, 4, pt::kBytesUnknown), pt::CollAlgo::kAuto);
  }
}

TEST(TuneSelect, FirstMatchWins) {
  pt::Tunables t;
  pt::CollRule narrow;
  narrow.op = pt::CollOp::kAllreduce;
  narrow.p_min = 4;
  narrow.p_max = 4;
  narrow.algo = pt::CollAlgo::kRing;
  pt::CollRule broad;
  broad.op = pt::CollOp::kAllreduce;
  broad.algo = pt::CollAlgo::kLinear;
  t.coll_rules.push_back(narrow);
  t.coll_rules.push_back(broad);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kAllreduce, 4, 64), pt::CollAlgo::kRing);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kAllreduce, 8, 64), pt::CollAlgo::kLinear);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kBroadcast, 4, 64), pt::CollAlgo::kAuto);
}

TEST(TuneSelect, ByteBandsApplyOnlyToSizedQueries) {
  pt::Tunables t;
  pt::CollRule large;
  large.op = pt::CollOp::kReduce;
  large.bytes_min = 4096;
  large.algo = pt::CollAlgo::kRing;
  t.coll_rules.push_back(large);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kReduce, 4, 8192), pt::CollAlgo::kRing);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kReduce, 4, 100), pt::CollAlgo::kAuto);
  // Unknown payload size must not match a byte-constrained rule: ranks
  // could disagree, and selection must be communication-free.
  EXPECT_EQ(t.coll_algo(pt::CollOp::kReduce, 4, pt::kBytesUnknown), pt::CollAlgo::kAuto);
}

TEST(TuneSelect, UnconstrainedRuleMatchesUnknownBytes) {
  const pt::Tunables t = forced(pt::CollOp::kBroadcast, pt::CollAlgo::kLinear);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kBroadcast, 4, pt::kBytesUnknown), pt::CollAlgo::kLinear);
}

TEST(TuneSelect, RecDoubleDemotedAtNonPowerOfTwo) {
  const pt::Tunables t = forced(pt::CollOp::kAllreduce, pt::CollAlgo::kRecDouble);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kAllreduce, 8, 64), pt::CollAlgo::kRecDouble);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kAllreduce, 6, 64), pt::CollAlgo::kAuto);
  EXPECT_EQ(t.coll_algo(pt::CollOp::kAllreduce, 1, 64), pt::CollAlgo::kRecDouble);
}

TEST(TuneSelect, GrainDefaultMatchesCompiledInConstant) {
  EXPECT_EQ(pt::defaults().parallel_for_grain, peachy::support::kInlineGrain);
  EXPECT_EQ(pt::defaults().pool_max_parked, 64u);
  EXPECT_EQ(pt::defaults().distance_block_rows, 0u);
  EXPECT_TRUE(pt::gemm_tile_supported(pt::defaults().gemm_mr, pt::defaults().gemm_nr));
}

// ---------------------------------------------------------------------------
// Integer collectives: bit-identical across every algorithm.

TEST(TuneCollectives, IntegerReductionsIdenticalAcrossAlgorithms) {
  for (const int p : {2, 3, 4, 5, 8}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::int64_t> expect_all(n);
      for (std::size_t i = 0; i < n; ++i) {
        // sum over ranks r of (r*31 + i): p*31*(p-1)/2 ... computed below
        std::int64_t s = 0;
        for (int r = 0; r < p; ++r) s += static_cast<std::int64_t>(r) * 31 + static_cast<std::int64_t>(i);
        expect_all[i] = s;
      }
      for (const pt::CollAlgo algo : kAllAlgos) {
        const pt::Tunables ar = forced(pt::CollOp::kAllreduce, algo);
        pm::RunOptions opts;
        opts.tunables = &ar;
        pm::run(
            p,
            [&](pm::Comm& comm) {
              std::vector<std::int64_t> data(n);
              for (std::size_t i = 0; i < n; ++i) {
                data[i] = static_cast<std::int64_t>(comm.rank()) * 31 +
                          static_cast<std::int64_t>(i);
              }
              comm.allreduce_inplace<std::int64_t>(std::span<std::int64_t>{data},
                                                   std::plus<>{});
              ASSERT_EQ(data, expect_all) << "allreduce algo="
                                          << pt::coll_algo_name(algo) << " p=" << p;
            },
            opts);

        const pt::Tunables rd = forced(pt::CollOp::kReduce, algo);
        opts.tunables = &rd;
        pm::run(
            p,
            [&](pm::Comm& comm) {
              std::vector<std::int64_t> data(n);
              for (std::size_t i = 0; i < n; ++i) {
                data[i] = static_cast<std::int64_t>(comm.rank()) * 31 +
                          static_cast<std::int64_t>(i);
              }
              comm.reduce_inplace<std::int64_t>(std::span<std::int64_t>{data},
                                                std::plus<>{}, 0);
              if (comm.rank() == 0) {
                ASSERT_EQ(data, expect_all) << "reduce algo=" << pt::coll_algo_name(algo)
                                            << " p=" << p;
              }
            },
            opts);
      }
    }
  }
}

TEST(TuneCollectives, BroadcastAndAllgatherIdenticalAcrossAlgorithms) {
  for (const int p : {2, 3, 4, 8}) {
    for (const pt::CollAlgo algo : kAllAlgos) {
      const pt::Tunables bc = forced(pt::CollOp::kBroadcast, algo);
      pm::RunOptions opts;
      opts.tunables = &bc;
      pm::run(
          p,
          [&](pm::Comm& comm) {
            std::vector<std::int32_t> data(257);
            if (comm.rank() == 1) {
              std::iota(data.begin(), data.end(), 42);
            }
            comm.broadcast_into<std::int32_t>(std::span<std::int32_t>{data}, 1);
            ASSERT_EQ(data.front(), 42);
            ASSERT_EQ(data.back(), 42 + 256);
            // The unsized variant must work under the same forced rule
            // (byte-unconstrained, so it applies to unknown sizes too).
            std::vector<std::int32_t> var;
            if (comm.rank() == 0) var.assign(13, comm.size());
            comm.broadcast<std::int32_t>(var, 0);
            ASSERT_EQ(var.size(), 13u);
            ASSERT_EQ(var.front(), comm.size());
          },
          opts);

      const pt::Tunables ag = forced(pt::CollOp::kAllgather, algo);
      opts.tunables = &ag;
      pm::run(
          p,
          [&](pm::Comm& comm) {
            const std::size_t block = 33;
            std::vector<std::int64_t> mine(block);
            for (std::size_t i = 0; i < block; ++i) {
              mine[i] = comm.rank() * 1000 + static_cast<std::int64_t>(i);
            }
            std::vector<std::int64_t> all(block * static_cast<std::size_t>(comm.size()));
            comm.allgather_into<std::int64_t>(std::span<const std::int64_t>{mine},
                                              std::span<std::int64_t>{all});
            for (int r = 0; r < comm.size(); ++r) {
              for (std::size_t i = 0; i < block; ++i) {
                ASSERT_EQ(all[static_cast<std::size_t>(r) * block + i],
                          r * 1000 + static_cast<std::int64_t>(i))
                    << "allgather algo=" << pt::coll_algo_name(algo) << " p=" << p;
              }
            }
            // Variable-size variant (unknown bytes → default path under
            // byte-banded profiles, the forced rule here is unbanded).
            const auto cat = comm.allgather<std::int64_t>(std::span<const std::int64_t>{mine});
            ASSERT_EQ(cat, all);
          },
          opts);
    }
  }
}

// ---------------------------------------------------------------------------
// Float determinism: same (algorithm, p) ⇒ same bytes, run after run,
// with and without fault injection.

namespace {

/// One allreduce over magnitude-skewed doubles; returns rank 0's result
/// bytes.  FP addition is not associative, so different algorithms MAY
/// differ — the contract is that one algorithm never differs from itself.
std::vector<double> float_allreduce_once(int p, pt::CollAlgo algo, const pf::FaultPlan* plan) {
  const pt::Tunables t = forced(pt::CollOp::kAllreduce, algo);
  pm::RunOptions opts;
  opts.tunables = &t;
  opts.plan = plan;
  std::vector<double> out;
  std::vector<std::vector<double>> per_rank(static_cast<std::size_t>(p));
  pm::run(
      p,
      [&](pm::Comm& comm) {
        std::vector<double> data(512);
        for (std::size_t i = 0; i < data.size(); ++i) {
          // Exponent-staggered contributions make the combine order
          // visible in the low mantissa bits.
          data[i] = std::ldexp(1.0 + 1e-3 * comm.rank() + 1e-6 * static_cast<double>(i),
                               comm.rank() % 3 - 1);
        }
        comm.allreduce_inplace<double>(std::span<double>{data}, std::plus<>{});
        per_rank[static_cast<std::size_t>(comm.rank())] = data;
        if (comm.rank() == 0) out = data;
      },
      opts);
  // Every rank of one run must already agree bit-for-bit.
  for (const auto& r : per_rank) {
    EXPECT_EQ(0, std::memcmp(r.data(), out.data(), out.size() * sizeof(double)))
        << "ranks disagree, algo=" << pt::coll_algo_name(algo) << " p=" << p;
  }
  return out;
}

}  // namespace

TEST(TuneCollectives, FloatAllreduceRepeatDeterministicPerAlgorithm) {
  for (const int p : {2, 3, 4, 8}) {
    for (const pt::CollAlgo algo : kAllAlgos) {
      const std::vector<double> a = float_allreduce_once(p, algo, nullptr);
      const std::vector<double> b = float_allreduce_once(p, algo, nullptr);
      ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
          << "repeat divergence, algo=" << pt::coll_algo_name(algo) << " p=" << p;
    }
  }
}

TEST(TuneCollectives, FloatDeterminismHoldsUnderFaultInjection) {
  // Delays and stalls perturb wall-clock interleaving but must not
  // perturb the combine order: results with and without the plan are
  // bit-identical.
  const pf::FaultPlan plan = pf::FaultPlan::parse(
      "seed=11; delay@rank=1,prob=0.5,ns=200000; stall@rank=0,prob=0.25,ns=100000");
  for (const pt::CollAlgo algo :
       {pt::CollAlgo::kAuto, pt::CollAlgo::kRing, pt::CollAlgo::kRecDouble}) {
    const std::vector<double> clean = float_allreduce_once(4, algo, nullptr);
    const std::vector<double> faulty = float_allreduce_once(4, algo, &plan);
    ASSERT_EQ(0, std::memcmp(clean.data(), faulty.data(), clean.size() * sizeof(double)))
        << "faults changed bytes, algo=" << pt::coll_algo_name(algo);
  }
}

TEST(TuneCollectives, FloatReduceRepeatDeterministicPerAlgorithm) {
  for (const pt::CollAlgo algo :
       {pt::CollAlgo::kAuto, pt::CollAlgo::kLinear, pt::CollAlgo::kRing}) {
    std::vector<double> first;
    for (int run = 0; run < 2; ++run) {
      const pt::Tunables t = forced(pt::CollOp::kReduce, algo);
      pm::RunOptions opts;
      opts.tunables = &t;
      std::vector<double> got;
      pm::run(
          5,
          [&](pm::Comm& comm) {
            std::vector<double> data(128);
            for (std::size_t i = 0; i < data.size(); ++i) {
              data[i] = std::ldexp(1.0 + 1e-4 * comm.rank(),
                                   static_cast<int>(i % 5) + comm.rank() % 2);
            }
            comm.reduce_inplace<double>(std::span<double>{data}, std::plus<>{}, 2);
            if (comm.rank() == 2) got = data;
          },
          opts);
      if (run == 0) {
        first = got;
      } else {
        ASSERT_EQ(0, std::memcmp(first.data(), got.data(), got.size() * sizeof(double)))
            << "reduce repeat divergence, algo=" << pt::coll_algo_name(algo);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Profile parsing: corrupt input degrades to defaults with named
// warnings, never a crash; good input round-trips exactly.

TEST(TuneProfile, CorruptInputsRejectedWithWarnings) {
  for (const char* bad : {"", "not json", "{", "[1,2,3]", "42", "\"peachy\"",
                          "{\"schema\": \"peachy-tune/1\"", "{\"no_schema\": true}"}) {
    const pt::LoadResult r = pt::parse_profile(bad);
    EXPECT_FALSE(r.ok) << bad;
    ASSERT_FALSE(r.warnings.empty()) << bad;
    // Defaults, fully intact.
    EXPECT_EQ(r.profile.tunables.parallel_for_grain, pt::defaults().parallel_for_grain);
    EXPECT_TRUE(r.profile.tunables.coll_rules.empty());
  }
}

TEST(TuneProfile, VersionMismatchRejected) {
  const pt::LoadResult r =
      pt::parse_profile(R"({"schema": "peachy-tune/2", "tunables": {"gemm_mr": 2}})");
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_NE(r.warnings.front().find("peachy-tune"), std::string::npos);
  EXPECT_EQ(r.profile.tunables.gemm_mr, pt::defaults().gemm_mr);
}

TEST(TuneProfile, MissingFileIsNamedWarningNotCrash) {
  const pt::LoadResult r = pt::load_profile_file("/nonexistent/peachy-tune.json");
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_NE(r.warnings.front().find("/nonexistent/peachy-tune.json"), std::string::npos);
}

TEST(TuneProfile, PartialProfileFillsGapsWithDefaults) {
  const pt::LoadResult r = pt::parse_profile(
      R"({"schema": "peachy-tune/1", "tunables": {"parallel_for_grain": 123}})");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.warnings.empty()) << r.warnings.front();
  EXPECT_EQ(r.profile.tunables.parallel_for_grain, 123u);
  EXPECT_EQ(r.profile.tunables.gemm_mr, pt::defaults().gemm_mr);
  EXPECT_EQ(r.profile.tunables.pool_max_parked, pt::defaults().pool_max_parked);
  EXPECT_TRUE(r.profile.tunables.coll_rules.empty());
}

TEST(TuneProfile, InvalidFieldValuesIndividuallyRejected) {
  // Unsupported gemm tile: warning, tile stays default, rest applies.
  const pt::LoadResult r = pt::parse_profile(R"({
    "schema": "peachy-tune/1",
    "tunables": {"gemm_mr": 3, "gemm_nr": 5, "pool_max_parked": 7},
    "collectives": [
      {"op": "allreduce", "algo": "ring"},
      {"op": "frobnicate", "algo": "ring"},
      {"op": "reduce", "algo": "warp_shuffle"}
    ]
  })");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.profile.tunables.gemm_mr, pt::defaults().gemm_mr);
  EXPECT_EQ(r.profile.tunables.gemm_nr, pt::defaults().gemm_nr);
  EXPECT_EQ(r.profile.tunables.pool_max_parked, 7u);
  ASSERT_EQ(r.profile.tunables.coll_rules.size(), 1u);  // two bad rules skipped
  EXPECT_EQ(r.profile.tunables.coll_rules[0].algo, pt::CollAlgo::kRing);
  EXPECT_GE(r.warnings.size(), 3u);  // tile + two rules
}

TEST(TuneProfile, RoundTripPreservesEverything) {
  pt::Profile p;
  p.isa = "avx2";
  p.tuned_for = "round-trip test";
  p.tunables.parallel_for_grain = 4096;
  p.tunables.gemm_mr = 8;
  p.tunables.gemm_nr = 4;
  p.tunables.distance_block_rows = 32;
  p.tunables.pool_max_parked = 16;
  pt::CollRule rule;
  rule.op = pt::CollOp::kAllreduce;
  rule.algo = pt::CollAlgo::kRecDouble;
  rule.p_min = 2;
  rule.p_max = 8;
  rule.bytes_min = 1;
  rule.bytes_max = 65536;
  p.tunables.coll_rules.push_back(rule);
  pt::CollRule open_rule;
  open_rule.op = pt::CollOp::kBroadcast;
  open_rule.algo = pt::CollAlgo::kLinear;
  p.tunables.coll_rules.push_back(open_rule);

  const pt::LoadResult r = pt::parse_profile(pt::to_json(p));
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.warnings.empty()) << r.warnings.front();
  EXPECT_EQ(r.profile.isa, p.isa);
  EXPECT_EQ(r.profile.tuned_for, p.tuned_for);
  const pt::Tunables& t = r.profile.tunables;
  EXPECT_EQ(t.parallel_for_grain, 4096u);
  EXPECT_EQ(t.gemm_mr, 8);
  EXPECT_EQ(t.gemm_nr, 4);
  EXPECT_EQ(t.distance_block_rows, 32u);
  EXPECT_EQ(t.pool_max_parked, 16u);
  ASSERT_EQ(t.coll_rules.size(), 2u);
  EXPECT_EQ(t.coll_rules[0].op, pt::CollOp::kAllreduce);
  EXPECT_EQ(t.coll_rules[0].algo, pt::CollAlgo::kRecDouble);
  EXPECT_EQ(t.coll_rules[0].p_min, 2);
  EXPECT_EQ(t.coll_rules[0].p_max, 8);
  EXPECT_EQ(t.coll_rules[0].bytes_min, 1);
  EXPECT_EQ(t.coll_rules[0].bytes_max, 65536);
  EXPECT_TRUE(t.coll_rules[1].byte_range_unconstrained());
}

TEST(TuneProfile, FileRoundTrip) {
  pt::Profile p;
  p.isa = "scalar";
  p.tuned_for = "file round-trip";
  p.tunables.distance_block_rows = 64;
  const std::string path = ::testing::TempDir() + "/peachy_tune_roundtrip.json";
  ASSERT_TRUE(pt::write_profile_file(p, path));
  const pt::LoadResult r = pt::load_profile_file(path);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.warnings.empty());
  EXPECT_EQ(r.profile.isa, "scalar");
  EXPECT_EQ(r.profile.tunables.distance_block_rows, 64u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tunable kernel constants: every legal setting is bit-identical to the
// scalar reference twins.

TEST(TuneKernels, GemmBitIdenticalAcrossRegisterTiles) {
  const ActiveGuard guard;
  const std::size_t n = 23, k = 17, m = 29;  // forces every tail path
  std::vector<double> a(n * k), b(k * m);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.25 + 1e-3 * static_cast<double>(i % 97);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = -0.5 + 1e-3 * static_cast<double>(i % 89);
  std::vector<double> want(n * m, 1.0);
  pk::ref::gemm_block(a.data(), b.data(), want.data(), n, k, m);
  for (const auto& [mr, nr] :
       std::vector<std::pair<int, int>>{{4, 8}, {2, 8}, {4, 4}, {8, 4}}) {
    pt::Tunables t;
    t.gemm_mr = mr;
    t.gemm_nr = nr;
    pt::set_active(t);
    std::vector<double> got(n * m, 1.0);
    pk::gemm_block(a.data(), b.data(), got.data(), n, k, m);
    ASSERT_EQ(0, std::memcmp(want.data(), got.data(), want.size() * sizeof(double)))
        << "tile " << mr << "x" << nr;
  }
}

TEST(TuneKernels, DistanceTileBitIdenticalAcrossRowBlocking) {
  const ActiveGuard guard;
  const std::size_t n = 37, d = 7, kcount = 13;
  const std::size_t kp = pk::padded_count(kcount);
  std::vector<double> pts(n * d), panel(kp * d, 1e30);  // sentinel padding
  for (std::size_t i = 0; i < pts.size(); ++i) pts[i] = 0.1 * static_cast<double>(i % 31);
  for (std::size_t g = 0; g * pk::kPanelLane < kp; ++g) {
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t lane = 0; lane < pk::kPanelLane; ++lane) {
        const std::size_t c = g * pk::kPanelLane + lane;
        if (c < kcount) {
          panel[(g * d + j) * pk::kPanelLane + lane] = 0.2 * static_cast<double>((c + j) % 23);
        }
      }
    }
  }
  std::vector<double> want(n * kcount, 0.0);
  pk::ref::squared_distances_tile(pts.data(), n, d, panel.data(), kcount, kp, want.data());
  for (const std::size_t block : {std::size_t{0}, std::size_t{3}, std::size_t{32},
                                  std::size_t{1000}}) {
    pt::Tunables t;
    t.distance_block_rows = block;
    pt::set_active(t);
    std::vector<double> got(n * kcount, 0.0);
    pk::squared_distances_tile(pts.data(), n, d, panel.data(), kcount, kp, got.data());
    ASSERT_EQ(0, std::memcmp(want.data(), got.data(), want.size() * sizeof(double)))
        << "block=" << block;
  }
}

TEST(TunePool, ParkingBoundZeroDisablesReuse) {
  const ActiveGuard guard;
  pm::BufferPool& pool = pm::BufferPool::instance();
  pool.trim();
  pt::Tunables t;
  t.pool_max_parked = 0;
  pt::set_active(t);
  { const pm::PayloadBuffer b = pool.acquire(1024); }
  { const pm::PayloadBuffer b = pool.acquire(1024); }
  EXPECT_EQ(pool.stats().free_bytes, 0u);  // nothing parked at bound 0

  pt::set_active(pt::defaults());
  const std::uint64_t hits_before = pool.stats().hits;
  { const pm::PayloadBuffer b = pool.acquire(1024); }  // parks on release
  { const pm::PayloadBuffer b = pool.acquire(1024); }  // freelist hit
  EXPECT_GT(pool.stats().hits, hits_before);
  pool.trim();
}

// ---------------------------------------------------------------------------
// Grain plumbing: a profile-set grain actually moves the inline/dispatch
// crossover (observable through identical results either way — this just
// pins that the knob is read, via the explicit-grain opt-out still
// working and results matching across settings).

TEST(TuneGrain, ParallelForCorrectUnderProfileGrain) {
  const ActiveGuard guard;
  for (const std::size_t grain : {std::size_t{1}, std::size_t{100000}}) {
    pt::Tunables t;
    t.parallel_for_grain = grain;
    pt::set_active(t);
    std::vector<int> hits(3000, 0);
    peachy::support::parallel_for(peachy::support::ThreadPool::shared(), 0, hits.size(),
                                  [&](std::size_t i) { hits[i] = static_cast<int>(i % 7); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], static_cast<int>(i % 7));
    }
  }
}
