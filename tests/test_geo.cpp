// Tests for peachy::geo — point-in-polygon against brute force, polygon
// metrics, the uniform-grid index, the synthetic city's tiling/ground
// truth, and the choropleth rasterizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <numeric>

#include "geo/city.hpp"
#include "geo/geometry.hpp"
#include "geo/raster.hpp"
#include "rng/distributions.hpp"
#include "rng/lcg.hpp"
#include "support/check.hpp"

namespace pg = peachy::geo;

namespace {

pg::Polygon unit_square() {
  return pg::Polygon{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
}

pg::Polygon triangle() {
  return pg::Polygon{{{0, 0}, {4, 0}, {0, 4}}};
}

}  // namespace

// ---- polygon ---------------------------------------------------------------------

TEST(Polygon, ContainsBasic) {
  const auto sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({-0.1, 0.5}));
  EXPECT_FALSE(sq.contains({0.5, 2.0}));
}

TEST(Polygon, ContainsTriangleEdgeCases) {
  const auto tri = triangle();
  EXPECT_TRUE(tri.contains({1.0, 1.0}));
  EXPECT_FALSE(tri.contains({3.0, 3.0}));  // outside the hypotenuse
  EXPECT_FALSE(tri.contains({4.1, 0.0}));
}

TEST(Polygon, ContainsNonConvex) {
  // An L-shape: the notch must be outside.
  pg::Polygon ell{{{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}}};
  EXPECT_TRUE(ell.contains({0.5, 2.5}));
  EXPECT_TRUE(ell.contains({2.5, 0.5}));
  EXPECT_FALSE(ell.contains({2.5, 2.5}));  // in the notch
}

TEST(Polygon, AreaAndCentroid) {
  EXPECT_DOUBLE_EQ(unit_square().signed_area(), 1.0);
  EXPECT_DOUBLE_EQ(triangle().signed_area(), 8.0);
  const auto c = unit_square().centroid();
  EXPECT_DOUBLE_EQ(c.x, 0.5);
  EXPECT_DOUBLE_EQ(c.y, 0.5);
}

TEST(Polygon, ClockwiseRingHasNegativeArea) {
  pg::Polygon cw{{{0, 0}, {0, 1}, {1, 1}, {1, 0}}};
  EXPECT_DOUBLE_EQ(cw.signed_area(), -1.0);
  EXPECT_TRUE(cw.contains({0.5, 0.5}));  // containment is orientation-free
}

TEST(Polygon, RejectsDegenerateRing) {
  EXPECT_THROW((pg::Polygon{{{0, 0}, {1, 1}}}), peachy::Error);
}

TEST(Polygon, BboxIsTight) {
  const auto tri = triangle();
  EXPECT_DOUBLE_EQ(tri.bbox().min_x, 0.0);
  EXPECT_DOUBLE_EQ(tri.bbox().max_x, 4.0);
  EXPECT_DOUBLE_EQ(tri.bbox().max_y, 4.0);
}

// ---- index -----------------------------------------------------------------------

TEST(PolygonIndex, AgreesWithBruteForceOnRandomPoints) {
  // A small city gives a realistic polygon soup.
  pg::CitySpec spec;
  spec.rows = 4;
  spec.cols = 4;
  const pg::SyntheticCity city{spec};
  const auto& index = city.index();

  peachy::rng::Lcg64 gen{77};
  for (int i = 0; i < 2000; ++i) {
    const pg::Point p{peachy::rng::uniform_real(gen, -1.0, 11.0),
                      peachy::rng::uniform_real(gen, -1.0, 11.0)};
    EXPECT_EQ(index.locate(p), index.locate_brute(p)) << "(" << p.x << "," << p.y << ")";
  }
}

TEST(PolygonIndex, PrunesCandidates) {
  pg::CitySpec spec;
  spec.rows = 8;
  spec.cols = 8;
  const pg::SyntheticCity city{spec};
  const auto& index = city.index();
  int located = 0;
  peachy::rng::Lcg64 gen{5};
  for (int i = 0; i < 500; ++i) {
    const pg::Point p{peachy::rng::uniform_real(gen, 0.0, 10.0),
                      peachy::rng::uniform_real(gen, 0.0, 10.0)};
    located += index.locate(p).has_value();
  }
  EXPECT_GT(located, 450);
  // 64 polygons; the grid must examine far fewer than 64 per query.
  EXPECT_LT(index.candidates_examined(), 500ull * 8);
}

TEST(PolygonIndex, RejectsEmptySet) {
  EXPECT_THROW((pg::PolygonIndex{{}}), peachy::Error);
}

TEST(PolygonIndex, OutsideExtentIsNullopt) {
  pg::PolygonIndex idx{{unit_square()}};
  EXPECT_FALSE(idx.locate({5.0, 5.0}).has_value());
  EXPECT_TRUE(idx.locate({0.5, 0.5}).has_value());
}

// ---- city ------------------------------------------------------------------------

TEST(City, TilesTheExtentAlmostEverywhere) {
  // Random interior points must land in exactly one NTA (tessellation).
  const pg::SyntheticCity city;
  peachy::rng::Lcg64 gen{3};
  int misses = 0;
  for (int i = 0; i < 2000; ++i) {
    const pg::Point p{peachy::rng::uniform_real(gen, 0.01, 9.99),
                      peachy::rng::uniform_real(gen, 0.01, 9.99)};
    misses += !city.locate(p).has_value();
  }
  // Edge-parity can drop points exactly on shared edges; random doubles
  // essentially never hit an edge.
  EXPECT_LE(misses, 2);
}

TEST(City, NtaCodesAreUniqueAndBoroughGrouped) {
  const pg::SyntheticCity city;
  std::set<std::string> codes;
  std::set<std::string> boroughs;
  for (const auto& nta : city.ntas()) {
    codes.insert(nta.code);
    boroughs.insert(nta.borough);
    EXPECT_GT(nta.population, 0);
  }
  EXPECT_EQ(codes.size(), city.ntas().size());
  EXPECT_EQ(boroughs.size(), 4u);
}

TEST(City, DeterministicForSeed) {
  pg::CitySpec spec;
  const pg::SyntheticCity a{spec};
  const pg::SyntheticCity b{spec};
  ASSERT_EQ(a.ntas().size(), b.ntas().size());
  for (std::size_t i = 0; i < a.ntas().size(); ++i) {
    EXPECT_EQ(a.ntas()[i].population, b.ntas()[i].population);
    EXPECT_EQ(a.ntas()[i].polygon.ring(), b.ntas()[i].polygon.ring());
  }
}

TEST(City, ArrestsFollowIntensity) {
  pg::CitySpec spec;
  spec.rows = 4;
  spec.cols = 4;
  const pg::SyntheticCity city{spec};
  const auto events = city.generate_arrests(20000, 11);
  EXPECT_EQ(events.size(), 20000u);
  const auto counts = city.count_by_nta(events);
  // Empirical share must track the intensity share (within sampling noise).
  const double total_intensity =
      std::accumulate(city.intensity().begin(), city.intensity().end(), 0.0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expect = city.intensity()[i] / total_intensity;
    const double got = static_cast<double>(counts[i]) / 20000.0;
    EXPECT_NEAR(got, expect, 0.02) << "nta " << i;
  }
}

TEST(City, ArrestYearsAndOffensesFromVocabulary) {
  const pg::SyntheticCity city;
  const auto events = city.generate_arrests(500, 9, {2019, 2021});
  const auto& vocab = pg::offense_categories();
  for (const auto& ev : events) {
    EXPECT_TRUE(ev.year == 2019 || ev.year == 2021);
    EXPECT_NE(std::find(vocab.begin(), vocab.end(), ev.offense), vocab.end());
  }
}

TEST(City, RejectsBadSpecs) {
  pg::CitySpec bad;
  bad.rows = 1;
  EXPECT_THROW((pg::SyntheticCity{bad}), peachy::Error);
  bad = {};
  bad.jitter = 0.7;
  EXPECT_THROW((pg::SyntheticCity{bad}), peachy::Error);
  const pg::SyntheticCity city;
  EXPECT_THROW((void)city.generate_arrests(5, 1, {}), peachy::Error);
}

// ---- raster ------------------------------------------------------------------------

TEST(Raster, PixelAccessAndBounds) {
  pg::Raster img{4, 3};
  img.at(3, 2) = 0.5;
  EXPECT_DOUBLE_EQ(img.at(3, 2), 0.5);
  EXPECT_THROW((void)img.at(4, 0), peachy::Error);
  EXPECT_THROW((pg::Raster{0, 5}), peachy::Error);
}

TEST(Raster, PgmHeaderAndSize) {
  pg::Raster img{10, 5};
  const auto pgm = img.to_pgm();
  EXPECT_EQ(pgm.rfind("P5\n10 5\n255\n", 0), 0u);
  EXPECT_EQ(pgm.size(), std::string{"P5\n10 5\n255\n"}.size() + 50);
}

TEST(Raster, AsciiShadesScaleWithValue) {
  pg::Raster img{2, 1};
  img.at(0, 0) = 0.0;
  img.at(1, 0) = 1.0;
  const auto art = img.to_ascii();
  EXPECT_EQ(art, " @\n");
}

TEST(Choropleth, HotPolygonIsBrighter) {
  // Two side-by-side unit squares; right one has the max value.
  pg::PolygonIndex idx{{pg::Polygon{{{0, 0}, {1, 0}, {1, 1}, {0, 1}}},
                        pg::Polygon{{{1, 0}, {2, 0}, {2, 1}, {1, 1}}}}};
  const std::vector<double> values{1.0, 10.0};
  const auto img = pg::rasterize_choropleth(idx, values, 20, 10);
  // Sample pixel centers well inside each square.
  const double left = img.at(5, 5);
  const double right = img.at(15, 5);
  EXPECT_GT(right, left);
  EXPECT_NEAR(right, 1.0, 1e-9);
  EXPECT_GT(left, 0.0);  // still visible
}

TEST(Choropleth, UniformValuesRenderMidGray) {
  pg::PolygonIndex idx{{unit_square()}};
  const std::vector<double> values{7.0};
  const auto img = pg::rasterize_choropleth(idx, values, 8, 8);
  EXPECT_NEAR(img.at(4, 4), 0.08 + 0.92 * 0.5, 1e-9);
}

TEST(Choropleth, RequiresOneValuePerPolygon) {
  pg::PolygonIndex idx{{unit_square()}};
  EXPECT_THROW((void)pg::rasterize_choropleth(idx, std::vector<double>{}, 4, 4), peachy::Error);
}
