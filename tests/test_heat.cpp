// Tests for the 1D heat assignment: the serial scheme against the exact
// discrete eigenmode solution, Part 1 (forall) and Part 2 (coforall)
// against the serial reference for several locale grids, boundary
// handling, and the task-spawn asymmetry between the two parts.

#include <gtest/gtest.h>

#include <cmath>

#include "heat/heat.hpp"
#include "support/check.hpp"

namespace ph = peachy::heat;
namespace pc = peachy::chapel;

namespace {

ph::Spec small_spec() {
  ph::Spec spec;
  spec.nx = 101;
  spec.nt = 50;
  spec.alpha = 0.25;
  return spec;
}

}  // namespace

// ---- serial reference ---------------------------------------------------------------

TEST(HeatSerial, MatchesDiscreteEigenmodeExactly) {
  // The sine mode is an exact eigenvector of the update matrix, so the
  // numerical solution must match λ^nt · sin(...) to round-off.
  for (int m : {1, 2, 3}) {
    const auto spec = small_spec();
    const auto got = ph::solve_serial(spec, ph::sine_mode(m));
    const auto exact = ph::discrete_sine_solution(spec, m);
    EXPECT_LT(ph::max_abs_diff(got, exact), 1e-12) << "mode " << m;
  }
}

TEST(HeatSerial, DecaysTowardZero) {
  ph::Spec spec = small_spec();
  // λ ≈ 0.999753 for mode 1 on 101 points → λ^60000 ≈ 4e-7.
  spec.nt = 60000;
  const auto u = ph::solve_serial(spec, ph::sine_mode(1));
  for (double v : u) EXPECT_NEAR(v, 0.0, 1e-5);
}

TEST(HeatSerial, DirichletBoundariesHeld) {
  ph::Spec spec = small_spec();
  spec.left_bc = 2.0;
  spec.right_bc = -1.0;
  const auto u = ph::solve_serial(spec, [](double) { return 0.0; });
  EXPECT_DOUBLE_EQ(u.front(), 2.0);
  EXPECT_DOUBLE_EQ(u.back(), -1.0);
}

TEST(HeatSerial, SteadyStateIsLinearProfile) {
  // With fixed unequal boundaries the solution converges to the linear
  // interpolation between them.
  ph::Spec spec;
  spec.nx = 21;
  spec.nt = 20000;
  spec.alpha = 0.5;
  spec.left_bc = 0.0;
  spec.right_bc = 1.0;
  const auto u = ph::solve_serial(spec, [](double) { return 0.0; });
  for (std::size_t j = 0; j < spec.nx; ++j) {
    EXPECT_NEAR(u[j], static_cast<double>(j) / 20.0, 1e-9);
  }
}

TEST(HeatSerial, ConservesEnergyWithZeroAlphaLimitBehaviour) {
  // Small alpha: after one step the change is proportional to alpha.
  ph::Spec spec = small_spec();
  spec.nt = 1;
  spec.alpha = 0.001;
  const auto u0 = ph::solve_serial({spec.nx, 0, 0.25, 0, 0}, ph::sine_mode(1));
  const auto u1 = ph::solve_serial(spec, ph::sine_mode(1));
  EXPECT_LT(ph::max_abs_diff(u0, u1), 4 * 0.001);
}

TEST(HeatSerial, ValidatesSpec) {
  ph::Spec spec = small_spec();
  spec.alpha = 0.6;
  EXPECT_THROW((void)ph::solve_serial(spec, ph::sine_mode(1)), peachy::Error);
  spec = small_spec();
  spec.nx = 2;
  EXPECT_THROW((void)ph::solve_serial(spec, ph::sine_mode(1)), peachy::Error);
  EXPECT_THROW((void)ph::sine_mode(0), peachy::Error);
}

// ---- distributed versions ----------------------------------------------------------

class HeatGrids : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(HeatGrids, ForallMatchesSerial) {
  const auto [locales, tpl] = GetParam();
  const auto spec = small_spec();
  const auto expect = ph::solve_serial(spec, ph::sine_mode(2));
  pc::LocaleGrid grid{locales, tpl};
  const auto got = ph::solve_forall(spec, ph::sine_mode(2), grid);
  EXPECT_LT(ph::max_abs_diff(got, expect), 1e-14);
}

TEST_P(HeatGrids, CoforallMatchesSerial) {
  const auto [locales, tpl] = GetParam();
  const auto spec = small_spec();
  const auto expect = ph::solve_serial(spec, ph::sine_mode(2));
  pc::LocaleGrid grid{locales, tpl};
  const auto got = ph::solve_coforall(spec, ph::sine_mode(2), grid);
  EXPECT_LT(ph::max_abs_diff(got, expect), 1e-14);
}

INSTANTIATE_TEST_SUITE_P(LocaleShapes, HeatGrids,
                         ::testing::Values(std::tuple{1u, 1u}, std::tuple{2u, 1u},
                                           std::tuple{3u, 2u}, std::tuple{4u, 1u},
                                           std::tuple{8u, 1u}));

TEST(HeatDistributed, NonuniformBoundariesMatchToo) {
  ph::Spec spec = small_spec();
  spec.left_bc = 5.0;
  spec.right_bc = -3.0;
  const auto initial = [](double s) { return s * (1 - s) * 4.0; };
  const auto expect = ph::solve_serial(spec, initial);
  pc::LocaleGrid grid{3, 1};
  EXPECT_LT(ph::max_abs_diff(ph::solve_forall(spec, initial, grid), expect), 1e-14);
  EXPECT_LT(ph::max_abs_diff(ph::solve_coforall(spec, initial, grid), expect), 1e-14);
}

TEST(HeatDistributed, CoforallSpawnsFarFewerTasks) {
  // T-HT-1's mechanism: Part 1 spawns tasks every step; Part 2 spawns one
  // per locale for the whole solve.
  const auto spec = small_spec();  // nt = 50
  pc::LocaleGrid grid1{4, 1};
  ph::SolveStats forall_stats;
  (void)ph::solve_forall(spec, ph::sine_mode(1), grid1, &forall_stats);

  pc::LocaleGrid grid2{4, 1};
  ph::SolveStats coforall_stats;
  (void)ph::solve_coforall(spec, ph::sine_mode(1), grid2, &coforall_stats);

  EXPECT_EQ(coforall_stats.tasks_spawned, 4u);
  EXPECT_EQ(forall_stats.tasks_spawned, spec.nt * 4u);
  EXPECT_GT(forall_stats.tasks_spawned, 10 * coforall_stats.tasks_spawned);
}

TEST(HeatDistributed, ForallCountsImplicitRemoteTraffic) {
  const auto spec = small_spec();
  pc::LocaleGrid grid{4, 1};
  ph::SolveStats stats;
  (void)ph::solve_forall(spec, ph::sine_mode(1), grid, &stats);
  // Each step, each internal block edge reads across a locale boundary.
  EXPECT_GT(stats.remote_accesses, 0u);
}

TEST(HeatDistributed, RejectsTooManyLocales) {
  ph::Spec spec;
  spec.nx = 5;  // 3 interior points
  pc::LocaleGrid grid{8, 1};
  EXPECT_THROW((void)ph::solve_coforall(spec, ph::sine_mode(1), grid), peachy::Error);
}

TEST(MaxAbsDiff, Validates) {
  EXPECT_THROW((void)ph::max_abs_diff({1.0}, {1.0, 2.0}), peachy::Error);
  EXPECT_DOUBLE_EQ(ph::max_abs_diff({1.0, 2.0}, {1.5, 2.0}), 0.5);
}
