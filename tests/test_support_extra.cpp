// Second-pass coverage for the support utilities: Table formatting
// branches, Cli duplicate/last-wins semantics, PRNG self-test acceptance
// bands, Status metadata, Frame display, and raster file I/O errors.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "data/frame.hpp"
#include "geo/raster.hpp"
#include "mpi/mpi.hpp"
#include "rng/lcg.hpp"
#include "rng/selftest.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ps = peachy::support;

// ---- table formatting branches ---------------------------------------------------

TEST(TableFormat, ScientificForExtremeDoubles) {
  ps::Table t;
  t.header({"v"});
  t.row({1.5e9});    // >= 1e6: scientific
  t.row({2.5e-7});   // < 1e-3: scientific
  t.row({0.0});      // exactly zero: "0"
  t.row({123.456});  // >= 100: one decimal
  const auto s = t.to_string();
  EXPECT_NE(s.find("e+09"), std::string::npos);
  EXPECT_NE(s.find("e-07"), std::string::npos);
  EXPECT_NE(s.find("123.5"), std::string::npos);
}

TEST(TableFormat, HeaderlessTableRenders) {
  ps::Table t;
  t.row({std::string{"a"}, std::int64_t{1}});
  t.row({std::string{"bb"}, std::int64_t{22}});
  const auto s = t.to_string();
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(s.find("---"), std::string::npos);  // no header rule
}

TEST(TableFormat, UnsignedCells) {
  ps::Table t;
  t.header({"count"});
  t.row({std::uint64_t{18446744073709551615ULL}});
  EXPECT_NE(t.to_string().find("18446744073709551615"), std::string::npos);
}

// ---- cli semantics ------------------------------------------------------------------

TEST(CliExtra, LastDuplicateWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  ps::Cli cli{3, argv};
  EXPECT_EQ(cli.get<int>("n", 0), 2);  // std::map keeps one entry; last parse wins
  EXPECT_NO_THROW(cli.finish());
}

TEST(CliExtra, NegativeNumbersAsValues) {
  const char* argv[] = {"prog", "--x=-5", "--y", "-3.5"};
  ps::Cli cli{4, argv};
  EXPECT_EQ(cli.get<int>("x", 0), -5);
  // "-3.5" does not start with "--", so it is consumed as y's value.
  EXPECT_DOUBLE_EQ(cli.get<double>("y", 0.0), -3.5);
  EXPECT_NO_THROW(cli.finish());
}

TEST(CliExtra, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW((ps::Cli{2, argv}), peachy::Error);
}

TEST(CliExtra, BooleanOptionParsing) {
  const char* argv[] = {"prog", "--on=true", "--off=false"};
  ps::Cli cli{3, argv};
  EXPECT_TRUE(cli.get<bool>("on", false));
  EXPECT_FALSE(cli.get<bool>("off", true));
}

// ---- self-test battery report --------------------------------------------------------

TEST(SelfTestReport, RendersPassAndFailLines) {
  peachy::rng::Lcg64 good{123};
  const auto rep = peachy::rng::self_test(good, 1u << 14);
  const auto text = rep.to_string();
  EXPECT_NE(text.find("[pass]"), std::string::npos);
  EXPECT_NE(text.find("chi2-uniformity"), std::string::npos);
  EXPECT_NE(text.find("lag1-correlation"), std::string::npos);
}

// ---- mpi status metadata ---------------------------------------------------------------

TEST(MpiStatus, ProbeReportsSourceTagBytes) {
  peachy::mpi::run(3, [](peachy::mpi::Comm& c) {
    if (c.rank() == 2) {
      const std::vector<double> payload(7, 1.0);
      c.send<double>(0, 42, payload);
      c.barrier();
    } else if (c.rank() == 0) {
      c.barrier();
      peachy::mpi::Status st;
      ASSERT_TRUE(c.probe(peachy::mpi::kAnySource, peachy::mpi::kAnyTag, &st));
      EXPECT_EQ(st.source, 2);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, 7 * sizeof(double));
      (void)c.recv<double>(st.source, st.tag);
    } else {
      c.barrier();
    }
  });
}

// ---- frame display ------------------------------------------------------------------------

TEST(FrameDisplay, TruncatesLongTables) {
  peachy::data::Frame f{{"i"}, {peachy::data::ColType::kInt}};
  for (std::int64_t i = 0; i < 30; ++i) f.push_row({i});
  const auto s = f.to_string(5);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
  EXPECT_EQ(s.find("29"), std::string::npos);  // truncated rows absent
}

// ---- raster file i/o ------------------------------------------------------------------------

TEST(RasterIo, WritesPgmFileAndRejectsBadPath) {
  peachy::geo::Raster img{4, 2};
  img.at(0, 0) = 1.0;
  const auto path = (std::filesystem::temp_directory_path() / "peachy_raster_io.pgm").string();
  img.write_pgm(path);
  EXPECT_GT(std::filesystem::file_size(path), 10u);
  std::remove(path.c_str());
  EXPECT_THROW(img.write_pgm("/nonexistent-dir/x.pgm"), peachy::Error);
}

// ---- stats acceptance edges ----------------------------------------------------------------

TEST(StatsExtra, SummaryOfSingleton) {
  const std::vector<double> one{5.0};
  const auto s = ps::summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p95, 5.0);
}

TEST(StatsExtra, ChiSquaredRejectsAllZero) {
  const std::vector<std::uint64_t> zeros(8, 0);
  EXPECT_THROW((void)ps::chi_squared_uniform(zeros), peachy::Error);
}

TEST(StatsExtra, SummaryToStringMentionsFields) {
  const std::vector<double> xs{1, 2, 3};
  const auto text = ps::to_string(ps::summarize(xs));
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
}

// ---- thread-pool placement statistics --------------------------------------------

TEST(ThreadPoolStats, CountersConsistentAfterExternalBurst) {
  // Statistics test, deliberately assertion-free about *which* queue each
  // task landed in: external submits pick the shortest/idle queue and
  // stealing rebalances the rest, so the only portable invariants are the
  // conservation laws on the counters.
  ps::ThreadPool pool{4};
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kTasks = 500;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), kTasks);
  // Every stolen task was executed; steals can never exceed executions.
  EXPECT_LE(pool.tasks_stolen(), pool.tasks_executed());
}

TEST(ThreadPoolStats, SlowWorkerDoesNotAbsorbBurst) {
  // Plug one worker with a long task, then burst-submit short tasks from
  // outside: shortest-queue placement must route them to the free
  // workers, so the burst completes even while the plug is running.
  ps::ThreadPool pool{3};
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  std::atomic<std::size_t> ran{0};
  for (std::size_t i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // Wait for the short tasks only; the plug still holds its worker.
  while (ran.load(std::memory_order_acquire) < 64) std::this_thread::yield();
  release.store(true, std::memory_order_release);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64u);
  EXPECT_EQ(pool.tasks_executed(), 65u);
}
