// Tests for the Chapel-analogue constructs: forall/coforall semantics,
// locale tracking, Block distribution layout (experiment T-HT-2), remote
// access accounting, and barrier-coordinated task teams.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "chapel/chapel.hpp"
#include "support/check.hpp"

namespace pc = peachy::chapel;

// ---- domains -------------------------------------------------------------------

TEST(Domain1D, SizeAndContains) {
  pc::Domain1D d{3, 10};
  EXPECT_EQ(d.size(), 7u);
  EXPECT_TRUE(d.contains(3));
  EXPECT_TRUE(d.contains(9));
  EXPECT_FALSE(d.contains(10));
  EXPECT_FALSE(d.contains(2));
}

// ---- forall ---------------------------------------------------------------------

TEST(Forall, VisitsEveryIndexExactlyOnce) {
  pc::LocaleGrid grid{3, 2};
  std::vector<std::atomic<int>> hits(500);
  grid.forall({0, 500}, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Forall, RespectsDomainOffset) {
  pc::LocaleGrid grid{2, 1};
  std::atomic<std::size_t> sum{0};
  grid.forall({10, 15}, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10u + 11 + 12 + 13 + 14);
}

TEST(Forall, EmptyDomainSpawnsNothing) {
  pc::LocaleGrid grid{2, 2};
  grid.reset_counters();
  grid.forall({5, 5}, [](std::size_t) { FAIL(); });
  EXPECT_EQ(grid.tasks_spawned(), 0u);
}

TEST(Forall, SpawnsTasksEveryCall) {
  // The Part-1 overhead: each forall call creates fresh tasks.
  pc::LocaleGrid grid{2, 2};
  grid.reset_counters();
  for (int step = 0; step < 10; ++step) {
    grid.forall({0, 100}, [](std::size_t) {});
  }
  EXPECT_EQ(grid.tasks_spawned(), 10u * 2 * 2);
}

TEST(Forall, IterationRunsOnOwnerLocale) {
  // forall over a block-distributed view must execute index i on
  // locale_of(i) — the affinity Chapel's Block distribution guarantees.
  pc::LocaleGrid grid{4, 1};
  pc::BlockDist1D<double> arr{grid, 103};
  std::atomic<bool> wrong{false};
  grid.forall(arr.domain(), [&](std::size_t i) {
    if (pc::LocaleGrid::here() != arr.locale_of(i)) wrong.store(true);
  });
  EXPECT_FALSE(wrong.load());
}

// ---- coforall -------------------------------------------------------------------

TEST(Coforall, OneTaskPerIteration) {
  pc::LocaleGrid grid{2, 3};
  grid.reset_counters();
  std::vector<std::atomic<int>> hits(6);
  grid.coforall(6, [&](std::size_t t) { hits[t].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(grid.tasks_spawned(), 6u);
}

TEST(Coforall, TasksRunConcurrentlyEnoughForBarriers) {
  // A barrier inside coforall tasks only works if all tasks are live at
  // once — this is the Part-2 execution model.
  constexpr std::size_t kTasks = 4;
  pc::LocaleGrid grid{kTasks, 1};
  pc::Barrier bar{kTasks};
  std::vector<int> phase_log(kTasks, -1);
  grid.coforall(kTasks, [&](std::size_t t) {
    phase_log[t] = 0;
    bar.arrive_and_wait();
    // After the barrier every task must have logged phase 0.
    for (std::size_t o = 0; o < kTasks; ++o) EXPECT_EQ(phase_log[o] >= 0, true);
    bar.arrive_and_wait();
  });
}

TEST(CoforallLocales, RunsOnEachLocale) {
  pc::LocaleGrid grid{5, 1};
  std::mutex mu;
  std::set<std::size_t> heres;
  grid.coforall_locales([&](std::size_t l) {
    EXPECT_EQ(pc::LocaleGrid::here(), l);
    std::lock_guard lock{mu};
    heres.insert(l);
  });
  EXPECT_EQ(heres.size(), 5u);
}

TEST(OnLocale, SetsAndRestoresHere) {
  pc::LocaleGrid grid{3, 1};
  EXPECT_EQ(pc::LocaleGrid::here(), 0u);
  grid.on_locale(2, [&] {
    EXPECT_EQ(pc::LocaleGrid::here(), 2u);
    grid.on_locale(1, [&] { EXPECT_EQ(pc::LocaleGrid::here(), 1u); });
    EXPECT_EQ(pc::LocaleGrid::here(), 2u);
  });
  EXPECT_EQ(pc::LocaleGrid::here(), 0u);
  EXPECT_THROW(grid.on_locale(7, [] {}), peachy::Error);
}

TEST(Foreach, SerialInOrder) {
  std::vector<std::size_t> order;
  pc::foreach({2, 6}, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 3, 4, 5}));
}

// ---- grid validation ----------------------------------------------------------------

TEST(LocaleGrid, RejectsDegenerateShapes) {
  EXPECT_THROW((pc::LocaleGrid{0, 1}), peachy::Error);
  EXPECT_THROW((pc::LocaleGrid{1, 0}), peachy::Error);
}

// ---- block distribution ---------------------------------------------------------------

class BlockDistShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BlockDistShapes, LocaleOfMatchesLocalSubdomain) {
  const auto [n, locales] = GetParam();
  pc::LocaleGrid grid{locales, 1};
  pc::BlockDist1D<int> arr{grid, n};
  // Every index belongs to exactly the locale whose subdomain contains it.
  std::size_t covered = 0;
  for (std::size_t l = 0; l < locales; ++l) {
    const auto sub = arr.local_subdomain(l);
    covered += sub.size();
    for (std::size_t i = sub.lo; i < sub.hi; ++i) EXPECT_EQ(arr.locale_of(i), l);
    EXPECT_EQ(arr.local_block(l).size(), sub.size());
  }
  EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockDistShapes,
                         ::testing::Values(std::tuple{100u, 4u}, std::tuple{103u, 4u},
                                           std::tuple{7u, 3u}, std::tuple{5u, 8u},
                                           std::tuple{1u, 1u}, std::tuple{64u, 64u}));

TEST(BlockDist, ElementAccessReadsAndWrites) {
  pc::LocaleGrid grid{3, 1};
  pc::BlockDist1D<double> arr{grid, 10, 1.5};
  EXPECT_DOUBLE_EQ(arr[9], 1.5);
  arr[4] = 42.0;
  EXPECT_DOUBLE_EQ(arr[4], 42.0);
  EXPECT_THROW((void)arr[10], peachy::Error);
}

TEST(BlockDist, CountsRemoteAccesses) {
  pc::LocaleGrid grid{2, 1};
  pc::BlockDist1D<int> arr{grid, 10};  // locale 0 owns 0..4, locale 1 owns 5..9
  arr.reset_counters();
  grid.on_locale(0, [&] {
    (void)arr[0];  // local
    (void)arr[7];  // remote
    (void)arr[9];  // remote
  });
  grid.on_locale(1, [&] {
    (void)arr[7];  // local
    (void)arr[0];  // remote
  });
  EXPECT_EQ(arr.remote_accesses(), 3u);
}

TEST(BlockDist, LocalBlockBypassesAccounting) {
  pc::LocaleGrid grid{2, 1};
  pc::BlockDist1D<int> arr{grid, 8};
  arr.reset_counters();
  auto blk = arr.local_block(1);
  for (auto& x : blk) x = 3;
  EXPECT_EQ(arr.remote_accesses(), 0u);
  EXPECT_EQ(arr[4], 3);  // index 4 is locale 1's first element
}

TEST(BlockDist, SwapExchangesContents) {
  pc::LocaleGrid grid{2, 1};
  pc::BlockDist1D<int> a{grid, 6, 1};
  pc::BlockDist1D<int> b{grid, 6, 2};
  a.swap(b);
  EXPECT_EQ(a[0], 2);
  EXPECT_EQ(b[0], 1);
  pc::BlockDist1D<int> c{grid, 7};
  EXPECT_THROW(a.swap(c), peachy::Error);
}

TEST(BlockDist, InteriorExcludesBoundary) {
  pc::LocaleGrid grid{2, 1};
  pc::BlockDist1D<int> arr{grid, 10};
  EXPECT_EQ(arr.interior(), (pc::Domain1D{1, 9}));
  pc::BlockDist1D<int> tiny{grid, 1};
  EXPECT_EQ(tiny.interior().size(), 0u);
}

// ---- the Part-1 vs Part-2 structural contrast -------------------------------------------

TEST(TaskCounters, CoforallReusesTasksAcrossSteps) {
  // Part 1 (forall per step) spawns O(steps × tasks); Part 2 (one coforall
  // with an internal step loop + barrier) spawns O(tasks).  This asymmetry
  // is experiment T-HT-1's mechanism.
  constexpr std::size_t kSteps = 50;
  constexpr std::size_t kLocales = 4;

  pc::LocaleGrid grid1{kLocales, 1};
  std::vector<double> data(200, 0.0);
  for (std::size_t s = 0; s < kSteps; ++s) {
    grid1.forall({0, data.size()}, [&](std::size_t i) { data[i] += 1.0; });
  }
  const auto spawned_forall = grid1.tasks_spawned();

  pc::LocaleGrid grid2{kLocales, 1};
  pc::Barrier bar{kLocales};
  grid2.coforall(kLocales, [&](std::size_t t) {
    const auto blk = peachy::support::static_block(data.size(), kLocales, t);
    for (std::size_t s = 0; s < kSteps; ++s) {
      for (std::size_t i = blk.begin; i < blk.end; ++i) data[i] += 1.0;
      bar.arrive_and_wait();
    }
  });
  const auto spawned_coforall = grid2.tasks_spawned();

  EXPECT_EQ(spawned_forall, kSteps * kLocales);
  EXPECT_EQ(spawned_coforall, kLocales);
  for (double x : data) EXPECT_DOUBLE_EQ(x, 2.0 * kSteps);
}
