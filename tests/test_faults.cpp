/// \file test_faults.cpp
/// \brief peachy::faults — fault plans, injection, failure detection,
/// recovery (retry / shrink / checkpoint), and the satellite regressions
/// (non-consuming recv_into, ThreadPool exception capture, wildcard recv
/// racing a crash).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <thread>

#include "faults/checkpoint.hpp"
#include "faults/detect.hpp"
#include "faults/faults.hpp"
#include "faults/plan.hpp"
#include "faults/retry.hpp"
#include "kernels/crc32c.hpp"
#include "heat/heat.hpp"
#include "mpi/mpi.hpp"
#include "support/thread_pool.hpp"
#include "traffic/mpi_traffic.hpp"

namespace pf = peachy::faults;
namespace pm = peachy::mpi;

using namespace std::chrono_literals;

// ---- FaultPlan parsing -------------------------------------------------------

TEST(FaultPlan, ParsesSpecAndRoundTrips) {
  const auto plan = pf::FaultPlan::parse(
      "seed=99; crash@rank=1,step=40; drop@rank=0,dest=2,tag=7,step=3; "
      "dup@rank=3,step=9; delay@rank=1,step=5,ns=2000000; drop@prob=0.01");
  EXPECT_EQ(plan.seed(), 99u);
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_EQ(plan.events()[0].kind, pf::FaultKind::crash);
  EXPECT_EQ(plan.events()[0].rank, 1);
  EXPECT_EQ(plan.events()[0].step, 40u);
  EXPECT_EQ(plan.events()[1].dest, 2);
  EXPECT_EQ(plan.events()[1].tag, 7);
  EXPECT_DOUBLE_EQ(plan.events()[4].prob, 0.01);

  // Canonical rendering reparses to the identical plan.
  EXPECT_EQ(pf::FaultPlan::parse(plan.to_string()), plan);
}

TEST(FaultPlan, ParsesFileContentsWhenSpecNamesAReadableFile) {
  const std::string path = ::testing::TempDir() + "faultplan_test.txt";
  {
    std::ofstream f{path};
    f << "# a comment line\nseed=5\ncrash@rank=0,step=2\n";
  }
  const auto plan = pf::FaultPlan::parse(path);
  std::remove(path.c_str());
  EXPECT_EQ(plan.seed(), 5u);
  ASSERT_EQ(plan.events().size(), 1u);
  EXPECT_EQ(plan.events()[0].kind, pf::FaultKind::crash);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)pf::FaultPlan::parse("crash@step=1"), peachy::Error);  // no rank
  EXPECT_THROW((void)pf::FaultPlan::parse("drop@rank=0"), peachy::Error);   // no step/prob
  EXPECT_THROW((void)pf::FaultPlan::parse("delay@rank=0,step=1"), peachy::Error);  // no ns
  EXPECT_THROW((void)pf::FaultPlan::parse("explode@rank=0,step=1"), peachy::Error);
  EXPECT_THROW((void)pf::FaultPlan::parse("drop@prob=1.5"), peachy::Error);
  EXPECT_THROW((void)pf::FaultPlan::parse("drop@rank=0,step=1,prob=0.5"), peachy::Error);
}

// ---- FaultInjector determinism ----------------------------------------------

TEST(FaultInjector, SameSeedReplaysIdenticalEventLog) {
  auto plan = pf::FaultPlan::parse("seed=1234; drop@prob=0.05; stall@prob=0.02,ns=1");
  const auto drive = [&plan] {
    pf::FaultInjector inj{plan, 4};
    for (int step = 0; step < 200; ++step) {
      for (int r = 0; r < 4; ++r) (void)inj.on_send(r, (r + 1) % 4, 5);
    }
    return inj.log_string();
  };
  const std::string a = drive();
  const std::string b = drive();
  EXPECT_FALSE(a.empty());  // 4 ranks x 200 steps at p=0.05: firing is certain-ish
  EXPECT_EQ(a, b);

  // A different seed produces a different schedule.
  plan.set_seed(4321);
  EXPECT_NE(drive(), a);
}

TEST(FaultInjector, DeterministicStepEventsFireExactlyOnce) {
  const auto plan = pf::FaultPlan::parse("dup@rank=2,step=7");
  pf::FaultInjector inj{plan, 4};
  int fired = 0;
  for (int step = 0; step < 20; ++step) {
    for (int r = 0; r < 4; ++r) {
      if (inj.on_send(r, 0, 1).duplicate) ++fired;
    }
  }
  EXPECT_EQ(fired, 1);
  const auto log = inj.log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].rank, 2);
  EXPECT_EQ(log[0].step, 7u);
}

// ---- injected behaviors through the transport -------------------------------

namespace {

pm::RunOptions with_plan(const pf::FaultPlan& plan) {
  pm::RunOptions opts;
  opts.plan = &plan;
  opts.op_timeout_ns = 5'000'000'000;  // tests must fail, not hang
  return opts;
}

}  // namespace

TEST(Injection, DroppedMessageNeverArrives) {
  const auto plan = pf::FaultPlan::parse("drop@rank=0,tag=1,step=0");
  std::atomic<bool> got_second{false};
  pm::run(2,
          [&](pm::Comm& comm) {
            if (comm.rank() == 0) {
              comm.send_value<int>(1, 1, 111);  // step 0: dropped
              comm.send_value<int>(1, 2, 222);  // step 1: delivered
            } else {
              EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
              got_second = true;
              EXPECT_FALSE(comm.probe(0, 1));  // the dropped one is simply gone
            }
          },
          with_plan(plan));
  EXPECT_TRUE(got_second.load());
}

TEST(Injection, DuplicatedMessageArrivesTwice) {
  const auto plan = pf::FaultPlan::parse("dup@rank=0,step=0");
  pm::run(2,
          [&](pm::Comm& comm) {
            if (comm.rank() == 0) {
              comm.send_value<int>(1, 3, 42);
            } else {
              EXPECT_EQ(comm.recv_value<int>(0, 3), 42);
              EXPECT_EQ(comm.recv_value<int>(0, 3), 42);  // the duplicate
              EXPECT_FALSE(comm.probe(0, 3));
            }
          },
          with_plan(plan));
}

TEST(Injection, DelayAndStallPreserveSemantics) {
  const auto plan =
      pf::FaultPlan::parse("delay@rank=0,step=0,ns=2000000; stall@rank=1,step=0,ns=2000000");
  std::string log;
  auto opts = with_plan(plan);
  opts.fault_log = &log;
  pm::run(2,
          [&](pm::Comm& comm) {
            if (comm.rank() == 0) {
              comm.send_value<int>(1, 1, 7);
              EXPECT_EQ(comm.recv_value<int>(1, 2), 8);
            } else {
              EXPECT_EQ(comm.recv_value<int>(0, 1), 7);
              comm.send_value<int>(0, 2, 8);
            }
          },
          opts);
  EXPECT_NE(log.find("delay rank=0"), std::string::npos);
  EXPECT_NE(log.find("stall rank=1"), std::string::npos);
}

TEST(Injection, CrashRaisesRankFailedErrorNamingTheDeadRank) {
  const auto plan = pf::FaultPlan::parse("crash@rank=1,step=0");
  std::atomic<bool> diagnosed{false};
  pm::run(2,
          [&](pm::Comm& comm) {
            if (comm.rank() == 1) {
              comm.send_value<int>(0, 1, 5);  // dies here; never delivered
              ADD_FAILURE() << "crashed rank kept running";
            } else {
              try {
                (void)comm.recv_value<int>(1, 1);
                ADD_FAILURE() << "recv from a crashed rank completed";
              } catch (const pf::RankFailedError& e) {
                EXPECT_EQ(e.rank(), 1);
                EXPECT_NE(std::string{e.what()}.find("rank 1 failed"), std::string::npos);
                diagnosed = true;
              }
            }
          },
          with_plan(plan));
  EXPECT_TRUE(diagnosed.load());
}

// Satellite (c): a wildcard ANY_SOURCE receive racing a rank crash must
// fail fast with the crashed rank's name — not hang waiting for a message
// that can never come.
TEST(Injection, WildcardRecvRacingCrashNamesTheCrashedRank) {
  const auto plan = pf::FaultPlan::parse("crash@rank=2,step=0");
  std::atomic<bool> diagnosed{false};
  pm::run(3,
          [&](pm::Comm& comm) {
            if (comm.rank() == 2) {
              comm.send_value<int>(0, 4, 1);  // dies at its first operation
            } else if (comm.rank() == 0) {
              try {
                (void)comm.recv_value<int>(pm::kAnySource, 4);
                ADD_FAILURE() << "wildcard recv completed though the only sender crashed";
              } catch (const pf::RankFailedError& e) {
                EXPECT_EQ(e.rank(), 2);
                EXPECT_NE(std::string{e.what()}.find("rank 2 failed"), std::string::npos);
                diagnosed = true;
              }
            }
            // rank 1 exits immediately.
          },
          with_plan(plan));
  EXPECT_TRUE(diagnosed.load());
}

TEST(Injection, MachineLevelReplayIsDeterministic) {
  const auto plan = pf::FaultPlan::parse("seed=77; drop@prob=0.2; dup@prob=0.1");
  const auto drive = [&plan] {
    std::string log;
    auto opts = with_plan(plan);
    opts.fault_log = &log;
    pm::run(3,
            [](pm::Comm& comm) {
              // A lossy-tolerant workload: every rank streams to its ring
              // neighbor, receiving whatever actually arrives.
              const int next = (comm.rank() + 1) % comm.size();
              const int prev = (comm.rank() + comm.size() - 1) % comm.size();
              for (int i = 0; i < 40; ++i) comm.send_value<int>(next, 1, i);
              comm.send_value<int>(next, 2, -1);  // not dropped forever w.h.p.
              int drained = 0;
              while (comm.probe(prev, 1)) {
                (void)comm.recv_value<int>(prev, 1);
                ++drained;
              }
              (void)drained;
            },
            opts);
    return log;
  };
  // The sentinel/drain shape above is racy on purpose (drops change what
  // arrives) — but the *injection schedule* must not be: it depends only
  // on (seed, kind, rank, step).
  EXPECT_EQ(drive(), drive());
}

// ---- deadlines ---------------------------------------------------------------

TEST(Deadlines, RecvTimeoutRaisesNamedTimeoutError) {
  pm::run(2, [](pm::Comm& comm) {
    if (comm.rank() == 0) {
      try {
        (void)comm.recv<int>(1, 9, 20ms);
        ADD_FAILURE() << "recv returned without a sender";
      } catch (const pf::TimeoutError& e) {
        EXPECT_NE(std::string{e.what()}.find("timed out"), std::string::npos);
      }
    }
  });
}

TEST(Deadlines, CommWideOpTimeoutAppliesToEveryRecv) {
  pm::run(2, [](pm::Comm& comm) {
    comm.set_op_timeout(20ms);
    EXPECT_EQ(comm.op_timeout(), std::chrono::nanoseconds{20ms});
    if (comm.rank() == 1) {
      EXPECT_THROW((void)comm.recv_bytes(0, 5), pf::TimeoutError);
    }
  });
}

TEST(Deadlines, TimeoutIsTransientButRankFailureIsNot) {
  static_assert(std::is_base_of_v<pf::TransientError, pf::TimeoutError>);
  static_assert(!std::is_base_of_v<pf::TransientError, pf::RankFailedError>);
  static_assert(std::is_base_of_v<pf::RankFailedError, pf::CommRevokedError>);
  static_assert(std::is_base_of_v<peachy::Error, pf::TimeoutError>);
}

// ---- revoke / shrink ---------------------------------------------------------

TEST(Recovery, RevokeWakesARankBlockedInRecv) {
  std::atomic<bool> woke{false};
  pm::run(2, [&](pm::Comm& comm) {
    comm.set_op_timeout(5s);
    if (comm.rank() == 0) {
      try {
        (void)comm.recv_value<int>(1, 1);
        ADD_FAILURE() << "recv completed on a revoked communicator";
      } catch (const pf::CommRevokedError&) {
        woke = true;
      }
    } else {
      std::this_thread::sleep_for(5ms);  // let rank 0 block first
      comm.revoke();
    }
  });
  EXPECT_TRUE(woke.load());
}

TEST(Recovery, ShrinkRenumbersSurvivorsAndCollectivesWork) {
  const auto plan = pf::FaultPlan::parse("crash@rank=2,step=0");
  std::array<int, 4> sum{};      // indexed by world rank
  std::array<int, 4> newrank{};  // local rank on the shrunken comm
  pm::run(4,
          [&](pm::Comm& world) {
            const int wr = world.rank();
            pm::Comm comm = world;
            for (;;) {
              try {
                sum[static_cast<std::size_t>(wr)] =
                    comm.allreduce_value<int>(1, std::plus<>{});
                newrank[static_cast<std::size_t>(wr)] = comm.rank();
                return;
              } catch (const pf::CommRevokedError&) {
              } catch (const pf::RankFailedError&) {
                comm.revoke();
              }
              comm = comm.shrink();
              EXPECT_EQ(comm.size(), 3);
              EXPECT_EQ(comm.group(), (std::vector<int>{0, 1, 3}));
              EXPECT_EQ(comm.world_rank(), wr);
            }
          },
          with_plan(plan));
  // Survivors 0,1,3 allreduced over the shrunken comm: sum == 3 each, and
  // they were renumbered compactly in world-rank order.
  EXPECT_EQ(sum[0], 3);
  EXPECT_EQ(sum[1], 3);
  EXPECT_EQ(sum[3], 3);
  EXPECT_EQ(newrank[0], 0);
  EXPECT_EQ(newrank[1], 1);
  EXPECT_EQ(newrank[3], 2);
}

TEST(Recovery, ShrunkenCommDoesNotSeeStaleWorldMessages) {
  const auto plan = pf::FaultPlan::parse("crash@rank=2,step=0");
  std::atomic<bool> checked{false};
  pm::run(3,
          [&](pm::Comm& world) {
            pm::Comm comm = world;
            if (world.rank() == 0) {
              comm.send_value<int>(1, 7, 123);  // world-comm message, never received
            }
            if (world.rank() == 2) {
              comm.send_value<int>(0, 1, 0);  // dies here
              return;
            }
            try {
              (void)comm.recv_value<int>(2, 1);  // both survivors block on the dead rank
            } catch (const pf::RankFailedError&) {
              comm.revoke();
            }
            try {
              comm = comm.shrink();
            } catch (const pf::CommRevokedError&) {
              comm = comm.shrink();
            }
            if (world.rank() == 1) {
              // The world-comm message from rank 0 is queued in this rank's
              // mailbox, but the shrunken comm's probe must not match it.
              EXPECT_FALSE(comm.probe(0, 7));
              checked = true;
            }
          },
          with_plan(plan));
  EXPECT_TRUE(checked.load());
}

// ---- analysis classification -------------------------------------------------

TEST(Analysis, RankFailureIsAWarningFindingAndTheReportStaysClean) {
  const auto plan = pf::FaultPlan::parse("crash@rank=1,step=0");
  auto opts = with_plan(plan);
  const auto run = pm::run_checked(
      2,
      [](pm::Comm& comm) {
        if (comm.rank() == 1) {
          comm.send_value<int>(0, 1, 5);  // dies
        } else {
          EXPECT_THROW((void)comm.recv_value<int>(1, 1), pf::RankFailedError);
        }
      },
      opts);
  EXPECT_EQ(run.report.count(peachy::analysis::FindingKind::rank_failure), 1u);
  EXPECT_TRUE(run.report.mentions("rank 1 failed"));
  // "peer crashed" is a distinct diagnosis from "deadlock", and a run that
  // handled the failure grades clean.
  EXPECT_EQ(run.report.count(peachy::analysis::FindingKind::deadlock), 0u);
  EXPECT_TRUE(run.report.clean());
}

TEST(Analysis, DeadlineBoundedWaitIsNotADeadlock) {
  pm::RunOptions opts;
  opts.op_timeout_ns = 50'000'000;
  const auto run = pm::run_checked(
      2,
      [](pm::Comm& comm) {
        // Rank 1 exits immediately — the classic "source already finished"
        // deadlock shape, except rank 0's wait carries a deadline, so the
        // checker must let the timeout fire instead of diagnosing it.
        if (comm.rank() == 0) {
          EXPECT_THROW((void)comm.recv_value<int>(1, 9), pf::TimeoutError);
        }
      },
      opts);
  EXPECT_EQ(run.report.count(peachy::analysis::FindingKind::deadlock), 0u);
  EXPECT_TRUE(run.report.clean());
}

TEST(Analysis, InjectedDuplicateIsNotAMessageLeak) {
  const auto plan = pf::FaultPlan::parse("dup@rank=0,step=0");
  auto opts = with_plan(plan);
  const auto run = pm::run_checked(
      2,
      [](pm::Comm& comm) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 1, 7);
        } else {
          EXPECT_EQ(comm.recv_value<int>(0, 1), 7);
          // The injected duplicate stays queued: debris of the plan, not a
          // program bug, so the leak scan must not indict it.
        }
      },
      opts);
  EXPECT_EQ(run.report.count(peachy::analysis::FindingKind::message_leak), 0u);
  EXPECT_TRUE(run.report.clean());
}

// ---- RetryPolicy -------------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicAndExponential) {
  const pf::RetryPolicy a{5, 1000, 2.0, 0.1, 42};
  const pf::RetryPolicy b{5, 1000, 2.0, 0.1, 42};
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(a.delay_ns(attempt), b.delay_ns(attempt)) << "attempt " << attempt;
  }
  // Zero jitter: exact exponential schedule.
  const pf::RetryPolicy exact{4, 1000, 2.0, 0.0, 0};
  EXPECT_EQ(exact.delay_ns(1), 1000u);
  EXPECT_EQ(exact.delay_ns(2), 2000u);
  EXPECT_EQ(exact.delay_ns(3), 4000u);
  // 10% jitter stays within the band.
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double base = 1000.0 * std::pow(2.0, attempt - 1);
    EXPECT_GE(a.delay_ns(attempt), static_cast<std::uint64_t>(base * 0.9));
    EXPECT_LE(a.delay_ns(attempt), static_cast<std::uint64_t>(base * 1.1));
  }
  // Different seeds disagree somewhere (jitter is actually seeded).
  const pf::RetryPolicy c{5, 1000, 2.0, 0.1, 43};
  bool differs = false;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    differs = differs || a.delay_ns(attempt) != c.delay_ns(attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryPolicy, RetriesTransientErrorsUntilSuccess) {
  const pf::RetryPolicy policy{5, 1000, 2.0, 0.0, 0};
  int attempts = 0;
  const int result = policy.run([&] {
    if (++attempts < 3) throw pf::TimeoutError{"transient"};
    return 7;
  });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryPolicy, ExhaustionRethrowsTheLastTransientError) {
  const pf::RetryPolicy policy{3, 100, 2.0, 0.0, 0};
  int attempts = 0;
  EXPECT_THROW(policy.run([&]() -> int {
    ++attempts;
    throw pf::TimeoutError{"always"};
  }),
               pf::TimeoutError);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryPolicy, NonTransientErrorsPropagateWithoutRetry) {
  const pf::RetryPolicy policy{5, 100, 2.0, 0.0, 0};
  int attempts = 0;
  EXPECT_THROW(policy.run([&]() -> int {
    ++attempts;
    throw pf::RankFailedError{0, "permanent"};
  }),
               pf::RankFailedError);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryPolicy, RejectsNonsenseParameters) {
  EXPECT_THROW(pf::RetryPolicy(0), peachy::Error);
  EXPECT_THROW(pf::RetryPolicy(3, 100, 0.5), peachy::Error);
  EXPECT_THROW(pf::RetryPolicy(3, 100, 2.0, 1.0), peachy::Error);
}

// ---- checkpoint / restart ----------------------------------------------------

TEST(Checkpoint, BlobRoundTripsExactBits) {
  pf::BlobWriter w;
  w.put<std::uint64_t>(31);
  w.put<double>(0.1 + 0.2);  // a value with untidy bits
  w.put_vec(std::vector<std::int32_t>{1, -2, 3});
  w.put_vec(std::vector<double>{1e-300, -0.0, 5.5});
  const auto blob = std::move(w).take();

  pf::BlobReader r{blob};
  EXPECT_EQ(r.get<std::uint64_t>(), 31u);
  const double d = r.get<double>();
  const double expect = 0.1 + 0.2;
  EXPECT_EQ(std::memcmp(&d, &expect, sizeof d), 0);
  EXPECT_EQ(r.get_vec<std::int32_t>(), (std::vector<std::int32_t>{1, -2, 3}));
  const auto doubles = r.get_vec<double>();
  EXPECT_EQ(doubles.size(), 3u);
  EXPECT_TRUE(std::signbit(doubles[1]));
  EXPECT_TRUE(r.exhausted());
}

TEST(Checkpoint, ReaderThrowsOnTruncatedBlob) {
  pf::BlobWriter w;
  w.put<std::uint64_t>(100);  // length prefix promising 100 elements
  auto blob = std::move(w).take();
  pf::BlobReader r{blob};
  EXPECT_THROW((void)r.get_vec<double>(), peachy::Error);
}

TEST(Checkpoint, StoreKeepsOnlyTheLatestSnapshotPerKey) {
  pf::CheckpointStore store;
  EXPECT_FALSE(store.has("k"));
  store.save("k", pf::Snapshot{10, {std::byte{1}}});
  store.save("k", pf::Snapshot{20, {std::byte{2}}});
  const auto snap = store.load("k");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->next_step, 20u);
  EXPECT_EQ(snap->blob, (std::vector<std::byte>{std::byte{2}}));
  EXPECT_FALSE(store.load("other").has_value());
}

TEST(Checkpoint, HeatRestartIsBitIdentical) {
  peachy::heat::Spec spec;
  spec.nx = 64;
  spec.nt = 50;
  const auto initial = peachy::heat::sine_mode(2);
  const auto reference = peachy::heat::solve_serial(spec, initial);

  // Interrupt at step 30: a shorter run leaves its snapshot behind, then
  // the full-length run resumes from it.
  pf::CheckpointStore store;
  peachy::heat::Spec partial = spec;
  partial.nt = 30;
  (void)peachy::heat::solve_serial(partial, initial, {10, &store, "heat"});
  ASSERT_TRUE(store.has("heat"));
  EXPECT_EQ(store.load("heat")->next_step, 30u);

  const auto resumed = peachy::heat::solve_serial(spec, initial, {10, &store, "heat"});
  EXPECT_EQ(resumed, reference);  // element-wise bit equality via operator==
}

TEST(Checkpoint, TrafficMpiRestartIsBitIdenticalAcrossRankCounts) {
  peachy::traffic::Spec spec;
  spec.cars = 40;
  spec.road_length = 200;
  spec.seed = 9;
  const std::size_t steps = 60;
  const auto reference = peachy::traffic::run_serial(spec, steps);

  // Run to step 35 on 3 ranks (snapshot lands at step 30), then resume the
  // full run on 2 ranks — the restart crosses rank counts.
  pf::CheckpointStore store;
  pm::run(3, [&](pm::Comm& comm) {
    (void)peachy::traffic::run_mpi(comm, spec, 35, nullptr, {10, &store, "t"});
  });
  ASSERT_TRUE(store.has("t"));
  EXPECT_EQ(store.load("t")->next_step, 30u);

  std::array<peachy::traffic::State, 2> finals;
  pm::run(2, [&](pm::Comm& comm) {
    finals[static_cast<std::size_t>(comm.rank())] =
        peachy::traffic::run_mpi(comm, spec, steps, nullptr, {10, &store, "t"});
  });
  EXPECT_EQ(finals[0], reference);
  EXPECT_EQ(finals[1], reference);
}

// ---- satellite (a): non-consuming recv_into ---------------------------------

TEST(RecvInto, SizeMismatchLeavesTheMessageQueuedAndRecoverable) {
  pm::run(2, [](pm::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload{1.5, 2.5, 3.5, 4.5};
      comm.send<double>(1, 3, payload);
    } else {
      // Too-small buffer: named error, message NOT consumed.
      std::array<double, 2> small{};
      try {
        (void)comm.recv_into<double>(small, 0, 3);
        ADD_FAILURE() << "oversized payload was accepted";
      } catch (const peachy::Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("would be truncated"), std::string::npos) << what;
        EXPECT_NE(what.find("message left queued"), std::string::npos) << what;
      }
      // Still queued and peekable: probe reports the true size...
      pm::Status st;
      ASSERT_TRUE(comm.probe(0, 3, &st));
      EXPECT_EQ(st.bytes, 4 * sizeof(double));
      // Too-large buffer: also refused, also non-consuming.
      std::array<double, 8> big{};
      try {
        (void)comm.recv_into<double>(big, 0, 3);
        ADD_FAILURE() << "undersized payload was accepted";
      } catch (const peachy::Error& e) {
        EXPECT_NE(std::string{e.what()}.find("is shorter than"), std::string::npos);
      }
      // ...and the right-size receive still gets the intact payload.
      std::array<double, 4> right{};
      const auto status = comm.recv_into<double>(right, 0, 3);
      EXPECT_EQ(status.bytes, 4 * sizeof(double));
      EXPECT_EQ(right[0], 1.5);
      EXPECT_EQ(right[3], 4.5);
    }
  });
}

// ---- satellite (b): ThreadPool exception capture ----------------------------

TEST(ThreadPoolFaults, RawSubmitExceptionSurfacesAtWaitIdleAndPoolSurvives) {
  peachy::support::ThreadPool pool{2};
  pool.submit([] { throw std::runtime_error{"boom"}; });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The error was cleared and every worker survived: the pool is usable.
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();  // must not rethrow the old exception
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolFaults, OnlyTheFirstExceptionIsReported) {
  peachy::support::ThreadPool pool{2};
  for (int i = 0; i < 4; ++i) {
    pool.submit([] { throw std::runtime_error{"task failed"}; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // later exceptions were dropped, not queued
}

TEST(ThreadPoolFaults, SubmitFutureExceptionsGoThroughTheFutureNotWaitIdle) {
  peachy::support::ThreadPool pool{2};
  auto fut = pool.submit_future([]() -> int { throw std::runtime_error{"via future"}; });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
  pool.wait_idle();  // the future consumed the exception; nothing to rethrow
}

// ---- obs integration ---------------------------------------------------------

TEST(FaultObs, InjectionAndRecoveryExportCounters) {
  peachy::obs::reset();
  peachy::obs::enable();
  const auto plan = pf::FaultPlan::parse("crash@rank=1,step=0");
  pm::run(2,
          [](pm::Comm& world) {
            pm::Comm comm = world;
            if (world.rank() == 1) {
              comm.send_value<int>(0, 1, 5);
              return;
            }
            try {
              (void)comm.recv_value<int>(1, 1);
            } catch (const pf::RankFailedError&) {
              comm.revoke();
              comm = comm.shrink();
              EXPECT_EQ(comm.size(), 1);
            }
          },
          with_plan(plan));
  EXPECT_GE(peachy::obs::counter("faults.injected.crash").value(), 1);
  EXPECT_GE(peachy::obs::counter("faults.rank_failed").value(), 1);
  EXPECT_GE(peachy::obs::counter("faults.revokes").value(), 1);
  EXPECT_GE(peachy::obs::histogram("faults.recovery_ns").count(), 1u);
  peachy::obs::disable();
  peachy::obs::reset();
}

// ---- wire fault plans --------------------------------------------------------

TEST(WirePlan, ParsesWireClausesAndRoundTrips) {
  const auto plan = pf::FaultPlan::parse(
      "seed=7; wire_drop@prob=0.01; wire_corrupt@rank=1,step=3,frame=ping; "
      "wire_delay@prob=0.02,ns=1000; wire_truncate@rank=0,dest=1,step=2; "
      "wire_dup@frame=failed,step=0");
  EXPECT_EQ(plan.seed(), 7u);
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_EQ(plan.events()[0].kind, pf::FaultKind::wire_drop);
  EXPECT_EQ(plan.events()[0].frame, pf::kAnyScope);  // default: data frames only
  EXPECT_EQ(plan.events()[1].frame, pf::kWireFramePing);
  EXPECT_EQ(plan.events()[2].ns, 1000u);
  EXPECT_EQ(plan.events()[3].dest, 1);
  EXPECT_EQ(plan.events()[4].frame, pf::kWireFrameFailed);

  // Canonical rendering reparses to the identical plan, frame names included.
  EXPECT_EQ(pf::FaultPlan::parse(plan.to_string()), plan);
}

TEST(WirePlan, RejectsMalformedWireClauses) {
  // frame= is wire-level; tag= is machine-level — each is rejected on the
  // other side of the boundary, and wire_delay needs a duration.
  EXPECT_THROW((void)pf::FaultPlan::parse("drop@step=0,frame=data"), peachy::Error);
  EXPECT_THROW((void)pf::FaultPlan::parse("wire_drop@step=0,tag=7"), peachy::Error);
  EXPECT_THROW((void)pf::FaultPlan::parse("wire_delay@prob=0.5"), peachy::Error);
  EXPECT_THROW((void)pf::FaultPlan::parse("wire_corrupt@step=0,frame=bogus"), peachy::Error);
}

// ---- wire injector -----------------------------------------------------------

TEST(WireInjector, ArmedOnlyWhenThePlanHasWireEvents) {
  EXPECT_FALSE(pf::WireInjector{pf::FaultPlan::parse("crash@rank=0,step=1")}.armed());
  EXPECT_TRUE(pf::WireInjector{pf::FaultPlan::parse("wire_drop@prob=0.1")}.armed());
}

TEST(WireInjector, SameSeedReplaysIdenticalLog) {
  const auto drive = [](std::uint64_t seed) {
    auto plan = pf::FaultPlan::parse("wire_drop@prob=0.3; wire_dup@prob=0.2");
    plan.set_seed(seed);
    pf::WireInjector inj{plan};
    for (int src = 0; src < 2; ++src)
      for (std::uint64_t step = 0; step < 200; ++step)
        (void)inj.on_frame(src, 1 - src, pf::kWireFrameData);
    return inj.log_string();
  };
  const std::string a = drive(11);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, drive(11));   // bit-for-bit replay
  EXPECT_NE(a, drive(12));   // and the seed actually matters
}

TEST(WireInjector, DefaultScopeMatchesOnlyDataFrames) {
  pf::WireInjector inj{pf::FaultPlan::parse("wire_drop@step=0")};
  // Step counters are per (source, frame kind): the first hello and ping
  // are step 0 of their own kinds yet must not match a data-scoped event.
  EXPECT_FALSE(inj.on_frame(0, 1, pf::kWireFrameHello).any());
  EXPECT_FALSE(inj.on_frame(0, 1, pf::kWireFramePing).any());
  EXPECT_TRUE(inj.on_frame(0, 1, pf::kWireFrameData).drop);
  EXPECT_FALSE(inj.on_frame(0, 1, pf::kWireFrameData).any());  // step 1: past it
}

TEST(WireInjector, FrameFieldWidensScopeToControlFrames) {
  pf::WireInjector inj{pf::FaultPlan::parse("wire_corrupt@step=0,frame=ping")};
  EXPECT_FALSE(inj.on_frame(0, 1, pf::kWireFrameData).any());
  EXPECT_TRUE(inj.on_frame(0, 1, pf::kWireFramePing).corrupt);
}

TEST(WireInjector, SourceAndDestScopesSelectFrames) {
  // Steps count per (source, frame kind) — a dest-scoped event still
  // indexes by the sender's own frame counter.
  pf::WireInjector inj{
      pf::FaultPlan::parse("wire_drop@rank=1,step=0; wire_dup@dest=2,step=1")};
  EXPECT_FALSE(inj.on_frame(0, 1, pf::kWireFrameData).drop);  // src 0: out of scope
  EXPECT_TRUE(inj.on_frame(1, 0, pf::kWireFrameData).drop);   // src 1, its step 0
  EXPECT_TRUE(inj.on_frame(0, 2, pf::kWireFrameData).duplicate);  // src 0's step 1
  EXPECT_FALSE(inj.on_frame(1, 2, pf::kWireFrameData).drop);  // src 1 step 1: past drop

  // The log renders in canonical order with frame names.
  const std::string log = inj.log_string();
  EXPECT_NE(log.find("wire_drop rank=1 step=0 dest=0 frame=data"), std::string::npos);
  EXPECT_NE(log.find("wire_dup"), std::string::npos);
}

// ---- heartbeat failure detection ---------------------------------------------

namespace {

/// 100ms timeout → 50ms floor interval → 50ms grace; small enough to
/// reason about in nanosecond literals.
pf::HeartbeatConfig tiny_hb() { return pf::HeartbeatConfig{100'000'000}; }

}  // namespace

TEST(Heartbeat, ConfigFromEnvGatesOnLaunchedMultiProcess) {
  const char* saved = std::getenv("PEACHY_HEARTBEAT_TIMEOUT");
  const std::string saved_val = saved != nullptr ? saved : "";
  ::unsetenv("PEACHY_HEARTBEAT_TIMEOUT");

  EXPECT_EQ(pf::HeartbeatConfig::from_env(true, 4).timeout_ns, 10'000'000'000u);
  EXPECT_FALSE(pf::HeartbeatConfig::from_env(true, 1).enabled());   // no peers
  EXPECT_FALSE(pf::HeartbeatConfig::from_env(false, 4).enabled());  // in-process world

  ::setenv("PEACHY_HEARTBEAT_TIMEOUT", "2000", 1);
  EXPECT_EQ(pf::HeartbeatConfig::from_env(true, 4).timeout_ns, 2'000'000'000u);
  EXPECT_FALSE(pf::HeartbeatConfig::from_env(false, 4).enabled());  // env never widens
  ::setenv("PEACHY_HEARTBEAT_TIMEOUT", "0", 1);
  EXPECT_FALSE(pf::HeartbeatConfig::from_env(true, 4).enabled());   // explicit off

  if (saved != nullptr)
    ::setenv("PEACHY_HEARTBEAT_TIMEOUT", saved_val.c_str(), 1);
  else
    ::unsetenv("PEACHY_HEARTBEAT_TIMEOUT");

  // Interval floors at 50ms so tiny timeouts do not busy-spin the pump.
  EXPECT_EQ(tiny_hb().interval_ns(), 50'000'000u);
  EXPECT_EQ(pf::HeartbeatConfig{40'000'000'000}.interval_ns(), 10'000'000'000u);
}

TEST(Heartbeat, SuspectThenConfirmEachReportedExactlyOnce) {
  using V = pf::HeartbeatMonitor::Verdict;
  pf::HeartbeatMonitor mon{2, tiny_hb()};
  const std::uint64_t t0 = 1'000'000'000;
  mon.alive(0, t0);

  EXPECT_EQ(mon.check(0, t0 + 100'000'000), V::kAlive);      // exactly at timeout
  EXPECT_EQ(mon.check(0, t0 + 100'000'001), V::kSuspected);  // just past it
  EXPECT_EQ(mon.check(0, t0 + 110'000'000), V::kAlive);      // transition reported once
  EXPECT_EQ(mon.check(0, t0 + 150'000'000), V::kAlive);      // still inside grace
  EXPECT_EQ(mon.check(0, t0 + 150'000'001), V::kConfirmed);  // past timeout + grace
  EXPECT_EQ(mon.check(0, t0 + 200'000'000), V::kAlive);      // confirm reported once
  EXPECT_TRUE(mon.confirmed(0));
  EXPECT_FALSE(mon.confirmed(1));
}

TEST(Heartbeat, ProofOfLifeRehabilitatesASuspect) {
  using V = pf::HeartbeatMonitor::Verdict;
  pf::HeartbeatMonitor mon{1, tiny_hb()};
  const std::uint64_t t0 = 1'000'000'000;
  mon.alive(0, t0);
  EXPECT_EQ(mon.check(0, t0 + 120'000'000), V::kSuspected);
  mon.alive(0, t0 + 130'000'000);  // it was merely descheduled
  EXPECT_EQ(mon.check(0, t0 + 140'000'000), V::kAlive);
  EXPECT_FALSE(mon.confirmed(0));
  // Fresh silence restarts the whole suspect → confirm ladder.
  EXPECT_EQ(mon.check(0, t0 + 230'000'001), V::kSuspected);
}

TEST(Heartbeat, FirstCheckAnchorsANeverHeardPeer) {
  // A peer wedged before it ever spoke must still be confirmed: the first
  // check anchors its clock, and the normal ladder runs from there.
  using V = pf::HeartbeatMonitor::Verdict;
  pf::HeartbeatMonitor mon{1, tiny_hb()};
  const std::uint64_t t0 = 5'000'000'000;
  EXPECT_EQ(mon.check(0, t0), V::kAlive);  // anchor, not a verdict
  EXPECT_EQ(mon.check(0, t0 + 100'000'001), V::kSuspected);
  EXPECT_EQ(mon.check(0, t0 + 150'000'001), V::kConfirmed);
  EXPECT_TRUE(mon.confirmed(0));
}

TEST(Heartbeat, ConfirmIsStickyAndStaleStampsAreIgnored) {
  using V = pf::HeartbeatMonitor::Verdict;
  pf::HeartbeatMonitor mon{1, tiny_hb()};
  const std::uint64_t t0 = 1'000'000'000;
  mon.alive(0, t0);
  mon.alive(0, t0 - 500'000'000);  // stale stamp must not rewind the clock
  EXPECT_EQ(mon.check(0, t0 + 100'000'001), V::kSuspected);
  EXPECT_EQ(mon.check(0, t0 + 150'000'001), V::kConfirmed);
  mon.alive(0, t0 + 200'000'000);  // too late: death is sticky, like peer_failed
  EXPECT_TRUE(mon.confirmed(0));
  EXPECT_EQ(mon.check(0, t0 + 300'000'000), V::kAlive);
}

TEST(Heartbeat, DisabledConfigNeverSuspects) {
  using V = pf::HeartbeatMonitor::Verdict;
  pf::HeartbeatMonitor mon{1, pf::HeartbeatConfig{0}};
  EXPECT_EQ(mon.check(0, 1), V::kAlive);
  EXPECT_EQ(mon.check(0, 1'000'000'000'000), V::kAlive);
  EXPECT_FALSE(mon.confirmed(0));
}

// ---- durable checkpoints -----------------------------------------------------

namespace {

/// Fresh scratch directory per test; removed on destruction.
struct CkptDir {
  std::string path;
  explicit CkptDir(const std::string& name) : path{::testing::TempDir() + name} {
    std::filesystem::remove_all(path);
  }
  ~CkptDir() { std::filesystem::remove_all(path); }
};

pf::Snapshot sample_snapshot() {
  pf::BlobWriter w;
  w.put<std::uint64_t>(42);
  w.put_vec(std::vector<double>{1.5, -2.25, 1e-300, 3.0});
  return pf::Snapshot{7, std::move(w).take()};
}

}  // namespace

TEST(DurableCheckpoint, RoundTripsAcrossStoreInstances) {
  const CkptDir dir{"peachy_ckpt_rt"};
  const pf::Snapshot snap = sample_snapshot();
  {
    pf::DurableCheckpointStore store{dir.path};
    store.save("traffic", snap);
    EXPECT_TRUE(store.has("traffic"));
    EXPECT_FALSE(store.has("kmeans"));
  }
  // A new store over the same directory — the "survivor restores what the
  // dead owner wrote" path — sees the exact bytes.
  pf::DurableCheckpointStore store{dir.path};
  const auto got = store.load("traffic");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->next_step, snap.next_step);
  EXPECT_EQ(got->blob, snap.blob);
  EXPECT_FALSE(store.load("kmeans").has_value());
}

TEST(DurableCheckpoint, KeepsOnlyTheLatestSnapshotPerKey) {
  const CkptDir dir{"peachy_ckpt_latest"};
  pf::DurableCheckpointStore store{dir.path};
  store.save("k", pf::Snapshot{1, {std::byte{0xAA}}});
  store.save("k", pf::Snapshot{2, {std::byte{0xBB}, std::byte{0xCC}}});
  const auto got = store.load("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->next_step, 2u);
  ASSERT_EQ(got->blob.size(), 2u);
  EXPECT_EQ(got->blob[0], std::byte{0xBB});
}

TEST(DurableCheckpoint, SanitizesKeysToFilesystemSafeNames) {
  const CkptDir dir{"peachy_ckpt_keys"};
  pf::DurableCheckpointStore store{dir.path};
  EXPECT_EQ(store.path_for("a/b c"), dir.path + "/a_b_c.ckpt");
  store.save("a/b c", pf::Snapshot{3, {std::byte{1}}});
  ASSERT_TRUE(store.load("a/b c").has_value());
  EXPECT_EQ(store.load("a/b c")->next_step, 3u);
}

TEST(DurableCheckpoint, TruncatedFileIsNamedCorruptionAndFallsBackFresh) {
  const CkptDir dir{"peachy_ckpt_trunc"};
  pf::DurableCheckpointStore store{dir.path};
  store.save("k", sample_snapshot());
  std::filesystem::resize_file(store.path_for("k"), 10);

  EXPECT_THROW((void)store.load_strict("k"), pf::CheckpointCorruptError);

  // The paranoid loader maps the same damage to "no snapshot" + a counter
  // so recovery falls back to a fresh start instead of crashing.
  peachy::obs::reset();
  peachy::obs::enable();
  EXPECT_FALSE(store.load("k").has_value());
  EXPECT_EQ(peachy::obs::counter("faults.ckpt.corrupt").value(), 1);
  peachy::obs::disable();
  peachy::obs::reset();
}

TEST(DurableCheckpoint, BitFlipAnywhereFailsTheCrc) {
  const CkptDir dir{"peachy_ckpt_flip"};
  pf::DurableCheckpointStore store{dir.path};
  store.save("k", sample_snapshot());
  const std::string path = store.path_for("k");
  {
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    const char byte = static_cast<char>(f.peek() ^ 0x01);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  try {
    (void)store.load_strict("k");
    FAIL() << "bit flip must fail validation";
  } catch (const pf::CheckpointCorruptError& e) {
    EXPECT_NE(std::string{e.what()}.find("CRC"), std::string::npos);
  }
  EXPECT_FALSE(store.load("k").has_value());
}

TEST(DurableCheckpoint, VersionMismatchIsNamedNotMisreadAsCrcDamage) {
  const CkptDir dir{"peachy_ckpt_ver"};
  pf::DurableCheckpointStore store{dir.path};
  store.save("k", sample_snapshot());
  const std::string path = store.path_for("k");

  // Forge a future-version file with a *valid* CRC: bump the version word
  // and re-seal, so the loader must blame the version, not the checksum.
  std::vector<char> bytes;
  {
    std::ifstream f{path, std::ios::binary};
    bytes.assign(std::istreambuf_iterator<char>{f}, std::istreambuf_iterator<char>{});
  }
  ASSERT_GT(bytes.size(), 28u);
  bytes[4] = 2;  // version lives at offset 4, little-endian
  const std::uint32_t crc =
      peachy::kernels::crc32c(0, bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  {
    std::ofstream f{path, std::ios::binary | std::ios::trunc};
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    (void)store.load_strict("k");
    FAIL() << "version mismatch must be named";
  } catch (const pf::CheckpointCorruptError& e) {
    EXPECT_NE(std::string{e.what()}.find("version"), std::string::npos);
  }
  EXPECT_FALSE(store.load("k").has_value());
}
