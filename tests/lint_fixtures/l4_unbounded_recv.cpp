// Fixture: L4 untimed recv in fault-tolerant code.
#include "faults/faults.hpp"
#include "mpi/mpi.hpp"

#include <chrono>

namespace fx {

double bad_untimed(peachy::mpi::Comm& comm, peachy::faults::CheckpointStore& store) {
  peachy::faults::FtOptions ft{4, &store, "job"};
  const auto xs = comm.recv<double>(0, 7);  // BAD: a dead peer hangs this
  return xs.empty() ? 0.0 : xs[0] + static_cast<double>(ft.every);
}

double ok_timed_arg(peachy::mpi::Comm& comm, peachy::faults::CheckpointStore& store) {
  using namespace std::chrono_literals;
  peachy::faults::FtOptions ft{4, &store, "job"};
  const auto xs = comm.recv<double>(0, 7, 200ms);  // bounded: fine
  return xs.empty() ? 0.0 : xs[0] + static_cast<double>(ft.every);
}

double ok_comm_timeout(peachy::mpi::Comm& comm, peachy::faults::CheckpointStore& store) {
  peachy::faults::FtOptions ft{4, &store, "job"};
  comm.set_op_timeout(std::chrono::milliseconds{50});  // bounded globally: fine
  const auto xs = comm.recv<double>(0, 7);
  return xs.empty() ? 0.0 : xs[0] + static_cast<double>(ft.every);
}

double ok_no_ft(peachy::mpi::Comm& comm) {
  const auto xs = comm.recv<double>(0, 7);  // no fault tolerance here: fine
  return xs.empty() ? 0.0 : xs[0];
}

}  // namespace fx
