// Fixture: suppression comments.  Two violations are allowed away (one
// trailing, one on the line above); a third must still be reported.
#include "mpi/mpi.hpp"

namespace fx {

void lecture_example(peachy::mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // peachy-lint: allow(L2) — shown in class on purpose
  }
}

void lecture_example_two(peachy::mpi::Comm& comm) {
  // peachy-lint: allow(L2, L6)
  if (comm.rank() == 0) comm.barrier();
  comm.shrink();  // BAD: the allow() above does not reach this line
}

}  // namespace fx
