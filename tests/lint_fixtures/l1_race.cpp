// Fixture: L1 capture-race.  Seeded violations are marked "BAD"; the rest
// of the file is the safe idioms the rule must NOT flag.
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace fx {

void bad_accumulators(peachy::support::ThreadPool& pool, const std::vector<double>& xs) {
  double sum = 0.0;
  long hits = 0;
  std::vector<double> big;
  peachy::support::parallel_for(pool, 0, xs.size(), [&](std::size_t i) {
    sum += xs[i];                  // BAD: unlocked by-ref accumulation
    if (xs[i] > 0.5) ++hits;       // BAD: unlocked by-ref increment
    if (xs[i] > 2.0) big.push_back(xs[i]);  // BAD: unlocked container growth
  });
}

void ok_locked(peachy::support::ThreadPool& pool, const std::vector<double>& xs) {
  double sum = 0.0;
  std::mutex mu;
  peachy::support::parallel_for(pool, 0, xs.size(), [&](std::size_t i) {
    const std::lock_guard guard{mu};
    sum += xs[i];  // guarded: fine
  });
}

void ok_atomic(peachy::support::ThreadPool& pool, const std::vector<double>& xs) {
  std::atomic<long> ticks{0};
  peachy::support::parallel_for(pool, 0, xs.size(), [&](std::size_t i) {
    if (xs[i] > 0.5) ++ticks;  // atomic: fine
  });
}

void ok_disjoint_writes(peachy::support::ThreadPool& pool, std::vector<double>& out) {
  peachy::support::parallel_for(pool, 0, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;  // per-index slot: fine
  });
}

void ok_locals(peachy::support::ThreadPool& pool, const std::vector<double>& xs) {
  peachy::support::parallel_for(pool, 0, xs.size(), [&](std::size_t i) {
    double local = 0.0, other = 1.0;  // lambda-locals, multi-declarator
    local += xs[i];
    other *= 2.0;
    (void)local;
    (void)other;
  });
}

void ok_by_value(peachy::support::ThreadPool& pool, const std::vector<double>& xs) {
  double bias = 1.0;
  peachy::support::parallel_for(pool, 0, xs.size(), [&, bias](std::size_t i) mutable {
    bias += xs[i];  // mutates the lambda's own copy: fine
  });
}

}  // namespace fx
