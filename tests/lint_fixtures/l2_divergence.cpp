// Fixture: L2 collective-divergence.  "BAD" lines call collectives that
// only a rank-dependent subset of the group can reach.
#include "mpi/mpi.hpp"

#include <iostream>
#include <vector>

namespace fx {

void bad_branch(peachy::mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // BAD: only rank 0 arrives
  }
}

void bad_else_chain(peachy::mpi::Comm& comm, std::vector<double>& data) {
  const int me = comm.rank();
  if (me == 0) {
    comm.broadcast(data, 0);  // BAD: divergent broadcast
  } else if (me == 1) {
    std::cout << "worker\n";
  } else {
    comm.barrier();  // BAD: else of a rank-dependent if
  }
}

int bad_early_return(peachy::mpi::Comm& comm, std::vector<double>& data) {
  const int rank = comm.rank();
  if (rank != 0) return 0;
  comm.broadcast(data, 0);  // BAD: the other ranks already returned
  return 1;
}

void ok_guarded_io(peachy::mpi::Comm& comm, const std::vector<double>& data) {
  if (comm.rank() == 0) {
    std::cout << "rows: " << data.size() << '\n';  // I/O only: fine
  }
  comm.barrier();  // outside the branch: fine
}

void ok_uniform_branch(peachy::mpi::Comm& comm, std::vector<double>& data, bool verbose) {
  if (verbose) {
    comm.broadcast(data, 0);  // condition is rank-uniform: fine
  }
}

void ok_early_return_then_sends(peachy::mpi::Comm& comm) {
  if (comm.rank() != 0) return;
  comm.send_value<int>(1, 1, 42);  // point-to-point after return: fine
}

}  // namespace fx
