// Fixture: L3 use-after-move of pooled buffers.
#include "mpi/mpi.hpp"

#include <vector>

namespace fx {

void bad_reuse(peachy::mpi::Comm& comm, std::vector<int> buf) {
  comm.send_move<int>(1, 7, std::move(buf));
  buf.push_back(1);  // BAD: the transport owns that storage now
}

void bad_read(peachy::mpi::Comm& comm, std::vector<std::byte> payload) {
  comm.send_bytes_move(1, 8, std::move(payload));
  const auto n = payload.size();  // BAD: read of moved-from buffer
  (void)n;
}

void ok_reassigned(peachy::mpi::Comm& comm, std::vector<int> buf) {
  comm.send_move<int>(1, 7, std::move(buf));
  buf = std::vector<int>(16);  // reinitialized: fine
  buf.push_back(1);
}

void ok_refilled(peachy::mpi::Comm& comm, std::vector<int> buf) {
  comm.send_move<int>(1, 7, std::move(buf));
  buf.clear();  // moved-from vector is valid-but-empty; clear() resets: fine
  buf.push_back(1);
}

void ok_plain_move(std::vector<int> src) {
  std::vector<int> dst = std::move(src);  // not a transport sink: fine
  (void)src.size();
  (void)dst;
}

}  // namespace fx
