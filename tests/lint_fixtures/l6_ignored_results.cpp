// Fixture: L6 ignored results.
#include "faults/faults.hpp"
#include "mpi/mpi.hpp"

namespace fx {

void bad_discards(peachy::mpi::Comm& comm, peachy::mpi::detail::Machine& m,
                  peachy::faults::RetryPolicy& policy,
                  peachy::faults::CheckpointStore& store) {
  peachy::mpi::Status st;
  m.try_peek(0, 1, 2, st);  // BAD: did it find a message or not?
  comm.shrink();            // BAD: the shrunken communicator is dropped
  policy.delay_ns(2);       // BAD: computed backoff discarded
  store.load("job");        // BAD: the snapshot is thrown away
}

void ok_used(peachy::mpi::Comm& comm, peachy::mpi::detail::Machine& m) {
  peachy::mpi::Status st;
  if (m.try_peek(0, 1, 2, st)) {
    comm.send_value<int>(1, 3, 1);
  }
  auto survivors = comm.shrink();  // bound: fine
  (void)survivors;
}

void ok_void_cast(peachy::mpi::Comm& comm) {
  (void)comm.probe(0, 1);  // explicit discard: fine
}

}  // namespace fx
