// Fixture: L5 magic tags.
#include "mpi/mpi.hpp"

namespace fx {

constexpr int kTagWork = 7;
constexpr int kTagDone = 8;

void bad_raw_tag(peachy::mpi::Comm& comm) {
  comm.send_value<int>(1, 7, 42);  // BAD: 7 is kTagWork, spelled as a literal
  const int done = comm.recv_value<int>(1, 8);  // BAD: 8 is kTagDone
  (void)done;
}

void bad_tag_reuse(peachy::mpi::Comm& comm) {
  comm.send_value<double>(1, 900, 1.5);
  comm.send_value<long>(1, 900, 7L);  // BAD: tag 900 now carries two types
}

void ok_named(peachy::mpi::Comm& comm) {
  comm.send_value<int>(1, kTagWork, 42);  // named constant: fine
  const int done = comm.recv_value<int>(1, kTagDone);
  (void)done;
}

void ok_unrelated_literal(peachy::mpi::Comm& comm) {
  comm.send_value<int>(1, 3, 1);  // no constant names tag 3: tolerated
}

}  // namespace fx
