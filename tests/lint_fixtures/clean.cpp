// Fixture: idiomatic peachy code — every rule's near-miss patterns in one
// file.  peachy-lint must report nothing here.
#include "analysis/race.hpp"
#include "faults/faults.hpp"
#include "mpi/mpi.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

#include <chrono>
#include <mutex>
#include <vector>

namespace fx {

constexpr int kTagRow = 11;

double locked_reduction(peachy::support::ThreadPool& pool, const std::vector<double>& xs) {
  double sum = 0.0;
  std::mutex mu;
  peachy::support::parallel_for(pool, 0, xs.size(), [&](std::size_t i) {
    const std::lock_guard guard{mu};
    sum += xs[i];
  });
  return sum;
}

std::vector<double> exchange(peachy::mpi::Comm& comm, std::vector<double> mine) {
  if (comm.rank() == 0) {
    mine[0] += 1.0;  // rank-dependent compute, no collectives
  }
  auto all = comm.allgather<double>(mine);
  comm.send_move<double>((comm.rank() + 1) % comm.size(), kTagRow, std::move(mine));
  mine = comm.recv<double>((comm.rank() + comm.size() - 1) % comm.size(), kTagRow);
  return all.empty() ? mine : all;
}

double bounded_wait(peachy::mpi::Comm& comm, peachy::faults::CheckpointStore& store) {
  using namespace std::chrono_literals;
  peachy::faults::FtOptions ft{8, &store, "clean"};
  const auto xs = comm.recv<double>(0, kTagRow, 50ms);
  if (const auto snap = store.load("clean")) {
    return static_cast<double>(snap->next_step) + static_cast<double>(ft.every);
  }
  return xs.empty() ? 0.0 : xs[0];
}

}  // namespace fx
