#pragma once
/// \file lint.hpp
/// \brief peachy::lint — source-level static analyzer for the parallel-
/// correctness mistakes students actually make in the peachy assignments.
///
/// The runtime checkers (src/analysis) diagnose what one *execution*
/// exercised; the linter diagnoses what the *source* says, in
/// milliseconds, before an autograder spends a run slot.  It is a
/// three-layer pipeline specialized to the peachy APIs:
///
///   tokenizer (lexer.hpp)  →  scope/capture tracker  →  rule engine
///
/// Rule catalog (each rule's runtime twin in parentheses):
///
///   L1 capture-race          by-`&` captured variable mutated inside a
///                            parallel_for / forall / coforall body with
///                            no lock or SharedArray/atomic protection
///                            (twin: the lockset race detector)
///   L2 collective-divergence mini-MPI collective called under a
///                            rank-dependent branch, or after a
///                            rank-dependent early return
///                            (twin: the collective-matching checker)
///   L3 use-after-move        a buffer handed to send_move / post_move /
///                            adopt / rvalue-alltoall is read again
///                            before reassignment
///   L4 unbounded-recv        code that configures FtOptions / FaultPlan
///                            but then blocks in recv with no deadline
///                            (fault-tolerant drivers must bound waits)
///   L5 magic-tag             a raw integer message tag where a named
///                            constant exists, or one tag value reused
///                            across differently-typed message streams
///   L6 ignored-result        the result of try_peek / probe / shrink /
///                            checkpoint-load is discarded
///
/// Findings are plain data (`Finding` below), rendered as human text, as
/// machine-readable `peachy-lint/1` JSON, or folded into the existing
/// `analysis::Report` so grading pipelines see one findings stream.
///
/// Suppressions: a comment `// peachy-lint: allow(L2)` (several rules:
/// `allow(L2, L5)`) on the finding's line or the line above silences that
/// rule there.  Suppressed findings are counted, not reported.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/report.hpp"

namespace peachy::lint {

enum class Rule {
  L1_capture_race,
  L2_collective_divergence,
  L3_use_after_move,
  L4_unbounded_recv,
  L5_magic_tag,
  L6_ignored_result,
};

inline constexpr std::size_t kRuleCount = 6;

/// "L1" … "L6".
[[nodiscard]] std::string_view rule_id(Rule r) noexcept;
/// Short hyphenated name ("capture-race", …).
[[nodiscard]] std::string_view rule_name(Rule r) noexcept;
/// Parse "L1"…"L6" (case-insensitive); returns false on anything else.
[[nodiscard]] bool parse_rule(std::string_view id, Rule& out) noexcept;

/// One lint diagnosis, anchored to a source location.
struct Finding {
  Rule rule;
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;
};

/// Result of linting one file or one tree.
struct Result {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings silenced by allow() comments

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  [[nodiscard]] std::size_t count(Rule r) const noexcept;
  void merge(Result&& other);
};

/// Which rules run (all by default).
struct Options {
  bool enabled[kRuleCount] = {true, true, true, true, true, true};

  [[nodiscard]] bool on(Rule r) const noexcept {
    return enabled[static_cast<std::size_t>(r)];
  }
};

/// Lint one in-memory translation unit.  `path` is used only for finding
/// locations (and may be a fixture pseudo-path).
[[nodiscard]] Result lint_source(const std::string& path, const std::string& source,
                                 const Options& opts = {});

/// Lint one file on disk; throws peachy::Error if it cannot be read.
[[nodiscard]] Result lint_file(const std::string& path, const Options& opts = {});

/// Lint a file, or recurse over a directory picking up *.cpp / *.cc /
/// *.hpp / *.h; throws peachy::Error on a nonexistent path.
[[nodiscard]] Result lint_path(const std::string& path, const Options& opts = {});

/// Human rendering: one "file:line:col: [Lk] message" line per finding
/// plus a summary tail.
[[nodiscard]] std::string to_text(const Result& r);

/// Machine rendering: the `peachy-lint/1` JSON document.
[[nodiscard]] std::string to_json(const Result& r);

/// Fold lint findings into the shared analysis report stream (kind
/// `FindingKind::lint`, severity warning — the static layer advises, the
/// runtime layer convicts).
[[nodiscard]] analysis::Report to_analysis_report(const Result& r);

}  // namespace peachy::lint
