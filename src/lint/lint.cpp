#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <fstream>
#include <sstream>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "support/check.hpp"

namespace peachy::lint {

namespace {

constexpr std::string_view kIds[kRuleCount] = {"L1", "L2", "L3", "L4", "L5", "L6"};
constexpr std::string_view kNames[kRuleCount] = {
    "capture-race", "collective-divergence", "use-after-move",
    "unbounded-recv", "magic-tag", "ignored-result",
};

/// Per-line suppression sets: allowed[line][rule] == true means a
/// `// peachy-lint: allow(...)` comment covers that rule on that line.
class Suppressions {
 public:
  explicit Suppressions(const std::vector<Comment>& comments) {
    for (const Comment& cm : comments) {
      const std::size_t mark = cm.text.find("peachy-lint:");
      if (mark == std::string::npos) continue;
      const std::size_t open = cm.text.find("allow(", mark);
      if (open == std::string::npos) continue;
      const std::size_t close = cm.text.find(')', open);
      if (close == std::string::npos) continue;
      std::array<bool, kRuleCount> rules{};
      std::string id;
      const std::string list = cm.text.substr(open + 6, close - open - 6);
      const auto flush = [&] {
        Rule r{};
        if (parse_rule(id, r)) rules[static_cast<std::size_t>(r)] = true;
        id.clear();
      };
      for (const char c : list) {
        if (c == ',') {
          flush();
        } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          id.push_back(c);
        }
      }
      flush();
      // The comment silences its own line span plus the line below it —
      // both trailing comments and a comment on the preceding line work.
      for (int line = cm.line; line <= cm.end_line + 1; ++line) {
        auto& slot = allowed_[line];
        for (std::size_t k = 0; k < kRuleCount; ++k) slot[k] = slot[k] || rules[k];
      }
    }
  }

  [[nodiscard]] bool covers(int line, Rule r) const {
    const auto it = allowed_.find(line);
    return it != allowed_.end() && it->second[static_cast<std::size_t>(r)];
  }

 private:
  std::map<int, std::array<bool, kRuleCount>> allowed_;
};

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

[[nodiscard]] bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

}  // namespace

std::string_view rule_id(Rule r) noexcept { return kIds[static_cast<std::size_t>(r)]; }
std::string_view rule_name(Rule r) noexcept { return kNames[static_cast<std::size_t>(r)]; }

bool parse_rule(std::string_view id, Rule& out) noexcept {
  if (id.size() != 2 || (id[0] != 'L' && id[0] != 'l')) return false;
  if (id[1] < '1' || id[1] > '6') return false;
  out = static_cast<Rule>(id[1] - '1');
  return true;
}

std::size_t Result::count(Rule r) const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == r) ++n;
  }
  return n;
}

void Result::merge(Result&& other) {
  findings.insert(findings.end(), std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
  files_scanned += other.files_scanned;
  suppressed += other.suppressed;
}

Result lint_source(const std::string& path, const std::string& source, const Options& opts) {
  const TokenStream ts = tokenize(source);
  std::vector<Finding> raw;
  run_rules(path, ts, opts, raw);

  // Deterministic order, and dedup — two rule passes may anchor the same
  // diagnosis to the same token (e.g. a collective both inside a branch
  // and after an early return).
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.rule == b.rule && a.line == b.line && a.col == b.col;
                        }),
            raw.end());

  Result r;
  r.files_scanned = 1;
  const Suppressions allow{ts.comments};
  for (Finding& f : raw) {
    if (allow.covers(f.line, f.rule)) {
      ++r.suppressed;
    } else {
      r.findings.push_back(std::move(f));
    }
  }
  return r;
}

Result lint_file(const std::string& path, const Options& opts) {
  std::ifstream in{path, std::ios::binary};
  PEACHY_CHECK(in.good(), "peachy-lint: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), opts);
}

Result lint_path(const std::string& path, const Options& opts) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  PEACHY_CHECK(!ec && st.type() != fs::file_type::not_found,
               "peachy-lint: no such file or directory: '" + path + "'");
  if (st.type() != fs::file_type::directory) return lint_file(path, opts);

  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(path)) {
    if (entry.is_regular_file() && lintable_extension(entry.path())) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  Result all;
  for (const std::string& f : files) all.merge(lint_file(f, opts));
  return all;
}

std::string to_text(const Result& r) {
  std::ostringstream os;
  for (const Finding& f : r.findings) {
    os << f.file << ':' << f.line << ':' << f.col << ": [" << rule_id(f.rule) << "] "
       << f.message << '\n';
  }
  os << "peachy-lint: " << r.findings.size() << " finding(s) in " << r.files_scanned
     << " file(s)";
  if (r.suppressed != 0) os << ", " << r.suppressed << " suppressed";
  os << '\n';
  return os.str();
}

std::string to_json(const Result& r) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"peachy-lint/1\",\n";
  os << "  \"files_scanned\": " << r.files_scanned << ",\n";
  os << "  \"suppressed\": " << r.suppressed << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << rule_id(f.rule) << "\", \"name\": \"" << rule_name(f.rule)
       << "\", \"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (r.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

analysis::Report to_analysis_report(const Result& r) {
  analysis::Report rep;
  for (const Finding& f : r.findings) {
    analysis::Finding af;
    af.kind = analysis::FindingKind::lint;
    af.severity = analysis::Severity::warning;
    af.message.append("[").append(rule_id(f.rule)).append("] ").append(f.message);
    af.details.push_back(f.file + ":" + std::to_string(f.line) + ":" + std::to_string(f.col));
    rep.add(std::move(af));
  }
  return rep;
}

}  // namespace peachy::lint
