#include "lint/lexer.hpp"

#include <cctype>

namespace peachy::lint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// The multi-character punctuators, longest first within each family —
/// scanned by prefix match so `<<=` never lexes as `<` `<=`.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", ".*",
};

}  // namespace

TokenStream tokenize(const std::string& src) {
  TokenStream out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  int col = 1;

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  bool at_line_start = true;  // only whitespace seen since the last newline

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      advance(1);
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }

    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations.  Macro bodies and include paths are not rule input.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    // Comments (collected, not emitted).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      Comment cm;
      cm.line = line;
      const std::size_t start = i;
      while (i < n && src[i] != '\n') advance(1);
      cm.end_line = line;
      cm.text = src.substr(start, i - start);
      out.comments.push_back(std::move(cm));
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      Comment cm;
      cm.line = line;
      const std::size_t start = i;
      advance(2);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) advance(1);
      advance(2);  // closing */ (no-op at EOF)
      cm.end_line = line;
      cm.text = src.substr(start, std::min(i, n) - start);
      out.comments.push_back(std::move(cm));
      continue;
    }

    // Raw string literal: R"delim( ... )delim" — with optional encoding
    // prefix already consumed by the identifier path below, so handle the
    // bare R"… form here and prefixed forms via lookahead from identifiers.
    const auto lex_raw_string = [&](std::size_t prefix_len) -> bool {
      // src[i + prefix_len] == 'R', then '"'.
      std::size_t p = i + prefix_len + 1;
      if (p >= n || src[p] != '"') return false;
      ++p;
      std::string delim;
      while (p < n && src[p] != '(' && delim.size() < 16) delim.push_back(src[p++]);
      if (p >= n || src[p] != '(') return false;
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = src.find(closer, p + 1);
      const std::size_t end = close == std::string::npos ? n : close + closer.size();
      Token t{TokKind::string_lit, src.substr(i, end - i), line, col};
      advance(end - i);
      out.tokens.push_back(std::move(t));
      return true;
    };

    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      if (lex_raw_string(0)) continue;
    }

    // Identifier / keyword (and encoding-prefixed string literals).
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      const std::string word = src.substr(i, j - i);
      // u8R"(...)", LR"(...)", uR / UR raw strings; u8"...", L"..." etc.
      if (j < n && (src[j] == '"' || src[j] == '\'') &&
          (word == "u8" || word == "u" || word == "U" || word == "L")) {
        // fall through to quoted-literal lexing below with prefix attached
      } else if (j + 1 < n && src[j] == '"' && !word.empty() && word.back() == 'R' &&
                 (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
                  word == "LR")) {
        if (lex_raw_string(word.size() - 1)) continue;
      } else {
        out.tokens.push_back({TokKind::identifier, word, line, col});
        advance(word.size());
        continue;
      }
      // Prefixed plain literal: emit prefix+literal as one string token.
      const char quote = src[j];
      std::size_t p = j + 1;
      while (p < n && src[p] != quote && src[p] != '\n') {
        if (src[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      if (p < n && src[p] == quote) ++p;
      Token t{TokKind::string_lit, src.substr(i, p - i), line, col};
      advance(p - i);
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Plain string / char literal.
    if (c == '"' || c == '\'') {
      std::size_t p = i + 1;
      while (p < n && src[p] != c && src[p] != '\n') {
        if (src[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      if (p < n && src[p] == c) ++p;
      // Literal suffix (operator"" names like 10ms attach to numbers, but
      // string literals can carry suffixes too: "..."sv).
      while (p < n && ident_char(src[p])) ++p;
      Token t{TokKind::string_lit, src.substr(i, p - i), line, col};
      advance(p - i);
      out.tokens.push_back(std::move(t));
      continue;
    }

    // pp-number: digits, digit separators, hex, exponents, and any
    // trailing literal suffix (`20ms`, `1'000'000`, `0x1Fu`, `1.5e-3`).
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      std::size_t p = i;
      while (p < n) {
        const char d = src[p];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++p;
          continue;
        }
        // exponent signs: 1e+5, 0x1p-3
        if ((d == '+' || d == '-') && p > i &&
            (src[p - 1] == 'e' || src[p - 1] == 'E' || src[p - 1] == 'p' ||
             src[p - 1] == 'P')) {
          ++p;
          continue;
        }
        break;
      }
      Token t{TokKind::number, src.substr(i, p - i), line, col};
      advance(p - i);
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Punctuators: longest match first.
    bool matched = false;
    for (const char* punct : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(punct);
      if (src.compare(i, len, punct) == 0) {
        out.tokens.push_back({TokKind::punct, punct, line, col});
        advance(len);
        matched = true;
        break;
      }
    }
    if (matched) continue;

    out.tokens.push_back({TokKind::punct, std::string(1, c), line, col});
    advance(1);
  }

  return out;
}

}  // namespace peachy::lint
