#pragma once
/// \file rules.hpp
/// \brief Internal interface between the lint driver and the rule engine.
///
/// Not installed with the public API: the driver (lint.cpp) owns
/// tokenization, suppression filtering, ordering and dedup; the rules
/// (rules.cpp) only append raw findings.

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace peachy::lint {

/// Run every enabled rule over one tokenized translation unit, appending
/// raw (unfiltered, possibly duplicated) findings to `out`.
void run_rules(const std::string& path, const TokenStream& ts, const Options& opts,
               std::vector<Finding>& out);

}  // namespace peachy::lint
