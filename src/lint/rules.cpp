/// \file rules.cpp
/// \brief The six peachy-lint rules.
///
/// Every rule is a pattern over the token stream plus just enough scope
/// tracking to keep the clean tree clean.  The rules deliberately trade
/// recall for precision: a static finding interrupts a student *before*
/// their first run slot, so a false positive here costs more trust than a
/// false negative (the runtime checkers are the backstop).

#include "lint/rules.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace peachy::lint {

namespace {

using Toks = std::vector<Token>;

[[nodiscard]] bool is(const Toks& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].text == s;
}
[[nodiscard]] bool is_ident(const Toks& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::identifier;
}
[[nodiscard]] const std::string& text(const Toks& t, std::size_t i) {
  static const std::string kEmpty;
  return i < t.size() ? t[i].text : kEmpty;
}

/// Index of the closer matching the `(`/`{`/`[` at `open` (or t.size()).
/// Counts only the one bracket family, which suffices: bracket kinds nest
/// in a balanced way in any code that parses.
[[nodiscard]] std::size_t close_of(const Toks& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char* c = o == "(" ? ")" : o == "{" ? "}" : o == "[" ? "]" : "";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text == c) {
      if (--depth == 0) return i;
    }
  }
  return t.size();
}

/// Walk back from `i` to the first token after the previous `;`, `{`, `}`.
[[nodiscard]] std::size_t stmt_start(const Toks& t, std::size_t i) {
  while (i > 0) {
    const std::string& s = t[i - 1].text;
    if (s == ";" || s == "{" || s == "}") break;
    --i;
  }
  return i;
}

/// Index just past the statement (to `;`) or brace block starting at `k`.
[[nodiscard]] std::size_t skip_stmt_or_block(const Toks& t, std::size_t k) {
  if (k >= t.size()) return k;
  if (t[k].text == "{") return close_of(t, k) + 1;
  int depth = 0;
  for (std::size_t i = k; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "{" || s == "[") {
      ++depth;
    } else if (s == ")" || s == "}" || s == "]") {
      --depth;
    } else if (s == ";" && depth <= 0) {
      return i + 1;
    }
  }
  return t.size();
}

/// Comma-separated argument ranges ([begin,end) token indices) between the
/// call parens (`open` is the `(`, `close` its `)`).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(const Toks& t,
                                                                          std::size_t open,
                                                                          std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  if (open + 1 >= close) return args;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "{" || s == "[") {
      ++depth;
    } else if (s == ")" || s == "}" || s == "]") {
      --depth;
    } else if (s == "," && depth == 0) {
      args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  args.emplace_back(begin, close);
  return args;
}

void add(std::vector<Finding>& out, Rule r, const std::string& path, const Token& at,
         std::string msg) {
  out.push_back(Finding{r, path, at.line, at.col, std::move(msg)});
}

/// Brace-balanced bodies of things that look like functions: a `{` whose
/// preceding tokens walk back (over cv/ref/noexcept/trailing-return
/// spellings) to a `)` whose matching `(` follows a plain identifier that
/// is not a control keyword.  Lambdas are excluded on purpose — a lambda
/// belongs to its enclosing function's scope.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> function_bodies(const Toks& t) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "{") continue;
    std::size_t j = i;
    bool saw_paren = false;
    for (int steps = 0; j > 0 && steps < 16; ++steps) {
      const Token& p = t[j - 1];
      if (p.text == ")") {
        saw_paren = true;
        break;
      }
      const bool glue = p.text == "->" || p.text == "::" || p.text == "&" || p.text == "&&" ||
                        p.text == "*" || p.text == "<" || p.text == ">" ||
                        p.kind == TokKind::identifier;
      if (!glue) break;
      --j;
    }
    if (!saw_paren) continue;
    int depth = 0;
    std::size_t p = j - 1;
    while (true) {
      if (t[p].text == ")") {
        ++depth;
      } else if (t[p].text == "(") {
        if (--depth == 0) break;
      }
      if (p == 0) break;
      --p;
    }
    if (depth != 0 || p == 0) continue;
    const Token& before = t[p - 1];
    if (before.kind != TokKind::identifier) continue;
    if (before.text == "if" || before.text == "while" || before.text == "for" ||
        before.text == "switch" || before.text == "catch" || before.text == "return") {
      continue;
    }
    out.emplace_back(i, close_of(t, i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// L1 — capture-race
// ---------------------------------------------------------------------------

const std::set<std::string>& parallel_free_fns() {
  static const std::set<std::string> k{"parallel_for", "parallel_for_threads",
                                       "parallel_reduce"};
  return k;
}
const std::set<std::string>& parallel_members() {
  static const std::set<std::string> k{"forall", "coforall", "coforall_locales"};
  return k;
}

struct Captures {
  bool default_ref = false;
  bool default_val = false;
  std::set<std::string> by_ref;
  std::set<std::string> by_val;
};

[[nodiscard]] Captures parse_captures(const Toks& t, std::size_t open, std::size_t close) {
  Captures c;
  for (const auto& [b, e] : split_args(t, open, close)) {
    if (b >= e) continue;
    if (t[b].text == "&" && e == b + 1) {
      c.default_ref = true;
    } else if (t[b].text == "=" && e == b + 1) {
      c.default_val = true;
    } else if (t[b].text == "&" && is_ident(t, b + 1)) {
      c.by_ref.insert(t[b + 1].text);  // `&x` and init-capture `&x = expr`
    } else if (is_ident(t, b) && t[b].text != "this") {
      c.by_val.insert(t[b].text);  // `x` and init-capture `x = expr`
    }
  }
  return c;
}

/// Identifiers declared with std::atomic anywhere in the file — their
/// mutations are synchronized by definition.
[[nodiscard]] std::set<std::string> atomic_names(const Toks& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is(t, i, "atomic") && !is(t, i, "atomic_flag")) continue;
    std::size_t j = i + 1;
    if (is(t, j, "<")) {
      int depth = 0;
      for (; j < t.size() && j < i + 16; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (is_ident(t, j)) names.insert(t[j].text);
  }
  return names;
}

const std::set<std::string>& mutating_ops() {
  static const std::set<std::string> k{"=",  "+=", "-=",  "*=",  "/=", "%=", "&=",
                                       "|=", "^=", "<<=", ">>=", "++", "--"};
  return k;
}
const std::set<std::string>& mutating_members() {
  static const std::set<std::string> k{"push_back", "emplace_back", "pop_back", "insert",
                                       "erase", "append"};
  return k;
}
/// Keywords that can precede an identifier without declaring it.
const std::set<std::string>& expr_keywords() {
  static const std::set<std::string> k{"return",   "co_return", "co_yield", "case",
                                       "goto",     "new",       "delete",   "throw",
                                       "operator", "sizeof",    "typename", "else",
                                       "do",       "co_await"};
  return k;
}

void scan_lambda_body(const Toks& t, std::size_t body_open, std::size_t body_end,
                      const Captures& caps, const std::set<std::string>& params,
                      const std::set<std::string>& atomics, const std::string& path,
                      const std::string& construct, std::vector<Finding>& out) {
  if (caps.default_val && !caps.default_ref && caps.by_ref.empty()) return;
  std::set<std::string> locals = params;
  std::vector<bool> lock_at_depth{false};
  for (std::size_t i = body_open + 1; i < body_end; ++i) {
    const std::string& s = t[i].text;
    if (s == "{") {
      lock_at_depth.push_back(false);
      continue;
    }
    if (s == "}") {
      if (lock_at_depth.size() > 1) lock_at_depth.pop_back();
      continue;
    }
    if (t[i].kind != TokKind::identifier) continue;
    if (s == "lock_guard" || s == "scoped_lock" || s == "unique_lock" || s == "shared_lock") {
      lock_at_depth.back() = true;
      continue;
    }
    const std::string& prev = text(t, i - 1);
    const std::string& next = text(t, i + 1);
    // Declaration heuristic: `auto x`, `int x`, `std::vector<T> x` — the
    // identifier right after another identifier or a closing `>`.
    const bool prev_is_type = (t[i - 1].kind == TokKind::identifier &&
                               expr_keywords().count(prev) == 0) ||
                              prev == ">" || prev == "*" || prev == "&" || prev == "&&";
    if (prev_is_type && (next == "=" || next == ";" || next == "{" || next == "(" ||
                         next == "," || next == ":" || next == ")" || next == "[")) {
      locals.insert(s);
      // Multi-declarator statements (`std::vector<double> u(n), un(n);`)
      // declare every `, name` sibling at the statement's top level too.
      int ddepth = 0;
      for (std::size_t j = i + 1; j < body_end; ++j) {
        const std::string& ds = t[j].text;
        if (ds == "(" || ds == "{" || ds == "[") ++ddepth;
        if (ds == ")" || ds == "}" || ds == "]") --ddepth;
        if (ddepth < 0 || (ddepth == 0 && ds == ";")) break;
        if (ddepth == 0 && ds == "," && is_ident(t, j + 1)) locals.insert(t[j + 1].text);
      }
      continue;
    }
    // Mutation of a bare identifier: `x op= ...`, `x++`, `++x`.
    const bool postfix_mut = mutating_ops().count(next) != 0;
    const bool prefix_mut = (prev == "++" || prev == "--");
    const bool mutating_call = next == "." && mutating_members().count(text(t, i + 2)) != 0 &&
                               is(t, i + 3, "(");
    if (!postfix_mut && !prefix_mut && !mutating_call) continue;
    if (prev == "." || prev == "->" || prev == "::") continue;  // member, not a capture
    if (locals.count(s) != 0 || atomics.count(s) != 0) continue;
    if (caps.by_val.count(s) != 0) continue;
    const bool by_ref = caps.default_ref || caps.by_ref.count(s) != 0;
    if (!by_ref) continue;
    bool locked = false;
    for (const bool l : lock_at_depth) locked = locked || l;
    if (locked) continue;
    add(out, Rule::L1_capture_race, path, t[i],
        "'" + s + "' is captured by reference and mutated inside a " + construct +
            " body with no lock; every iteration may run concurrently — use "
            "SharedArray/std::atomic, a TrackedMutex guard, or a reduction");
  }
}

void rule_l1(const std::string& path, const Toks& t, std::vector<Finding>& out) {
  const std::set<std::string> atomics = atomic_names(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::string construct;
    std::size_t call_open = 0;
    if (is_ident(t, i) && parallel_free_fns().count(t[i].text) != 0 && is(t, i + 1, "(")) {
      construct = t[i].text;
      call_open = i + 1;
    } else if ((is(t, i, ".") || is(t, i, "->")) && is_ident(t, i + 1) &&
               parallel_members().count(t[i + 1].text) != 0 && is(t, i + 2, "(")) {
      construct = t[i + 1].text;
      call_open = i + 2;
    } else {
      continue;
    }
    const std::size_t call_close = close_of(t, call_open);
    for (std::size_t j = call_open + 1; j < call_close; ++j) {
      if (!is(t, j, "[")) continue;
      const std::string& before = text(t, j - 1);
      if (before != "(" && before != ",") continue;  // subscript, not a lambda
      const std::size_t cap_close = close_of(t, j);
      if (cap_close >= call_close) break;
      const Captures caps = parse_captures(t, j, cap_close);
      std::size_t k = cap_close + 1;
      std::set<std::string> params;
      if (is(t, k, "(")) {
        const std::size_t pc = close_of(t, k);
        for (const auto& [b, e] : split_args(t, k, pc)) {
          if (e > b && t[e - 1].kind == TokKind::identifier) params.insert(t[e - 1].text);
        }
        k = pc + 1;
      }
      while (k < call_close && !is(t, k, "{")) ++k;
      if (k >= call_close) break;
      const std::size_t body_end = close_of(t, k);
      scan_lambda_body(t, k, body_end, caps, params, atomics, path, construct, out);
      j = body_end;
    }
  }
}

// ---------------------------------------------------------------------------
// L2 — collective-divergence
// ---------------------------------------------------------------------------

const std::set<std::string>& collective_members() {
  static const std::set<std::string> k{
      "barrier",        "broadcast",      "broadcast_bytes",   "broadcast_value",
      "broadcast_into", "reduce",         "reduce_inplace",    "allreduce",
      "allreduce_inplace", "allreduce_value", "gather",         "allgather",
      "allgather_into", "scatter_blocks", "alltoall",          "shrink",
  };
  return k;
}

[[nodiscard]] bool is_rank_name(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (const char c : s) lower.push_back(static_cast<char>(std::tolower(c)));
  return lower.find("rank") != std::string::npos && lower.find("ranks") == std::string::npos;
}

/// Identifiers assigned from `.rank()` / `.world_rank()` anywhere in the
/// file (plus anything *named* like a rank).
[[nodiscard]] std::set<std::string> tainted_idents(const Toks& t) {
  std::set<std::string> tainted;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is(t, i, ".") || !is(t, i + 2, "(")) continue;
    if (!is(t, i + 1, "rank") && !is(t, i + 1, "world_rank")) continue;
    const std::size_t s = stmt_start(t, i);
    for (std::size_t j = s + 1; j < i; ++j) {
      if (t[j].text == "=" && t[j - 1].kind == TokKind::identifier) {
        tainted.insert(t[j - 1].text);
        break;
      }
    }
  }
  return tainted;
}

[[nodiscard]] bool cond_is_rank_dep(const Toks& t, std::size_t b, std::size_t e,
                                    const std::set<std::string>& tainted) {
  for (std::size_t j = b; j < e; ++j) {
    if (is(t, j, ".") && (is(t, j + 1, "rank") || is(t, j + 1, "world_rank")) &&
        is(t, j + 2, "(")) {
      return true;
    }
    if (t[j].kind == TokKind::identifier && text(t, j - 1) != "." && text(t, j - 1) != "->" &&
        (tainted.count(t[j].text) != 0 || is_rank_name(t[j].text))) {
      return true;
    }
  }
  return false;
}

void flag_collectives_in(const Toks& t, std::size_t b, std::size_t e, const std::string& path,
                         const char* where, std::vector<Finding>& out) {
  for (std::size_t j = b; j + 2 < e; ++j) {
    if ((is(t, j, ".") || is(t, j, "->")) && is_ident(t, j + 1) &&
        collective_members().count(t[j + 1].text) != 0 && is(t, j + 2, "(")) {
      add(out, Rule::L2_collective_divergence, path, t[j + 1],
          "collective '" + t[j + 1].text + "' is called " + where +
              "; every rank of the communicator must reach the same collective "
              "sequence or the group deadlocks");
    }
  }
}

void rule_l2(const std::string& path, const Toks& t, std::vector<Finding>& out) {
  const std::set<std::string> tainted = tainted_idents(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i)) continue;
    const std::string& kw = t[i].text;
    if ((kw != "if" && kw != "while" && kw != "switch") || !is(t, i + 1, "(")) continue;
    const std::size_t cond_close = close_of(t, i + 1);
    if (!cond_is_rank_dep(t, i + 2, cond_close, tainted)) continue;
    std::size_t body_begin = cond_close + 1;
    std::size_t body_end = skip_stmt_or_block(t, body_begin);
    flag_collectives_in(t, body_begin, body_end, path, "inside a rank-dependent branch", out);
    bool has_else = false;
    if (kw == "if") {
      std::size_t e = body_end;
      while (is(t, e, "else")) {
        has_else = true;
        if (is(t, e + 1, "if") && is(t, e + 2, "(")) {
          const std::size_t c2 = close_of(t, e + 2);
          const std::size_t b2 = skip_stmt_or_block(t, c2 + 1);
          flag_collectives_in(t, c2 + 1, b2, path, "inside a rank-dependent branch", out);
          e = b2;
        } else {
          const std::size_t b2 = skip_stmt_or_block(t, e + 1);
          flag_collectives_in(t, e + 1, b2, path, "inside a rank-dependent branch", out);
          e = b2;
        }
      }
      // A rank-dependent `if` that returns makes everything after it
      // rank-dependent too (only some ranks get there).
      if (!has_else) {
        bool returns = false;
        for (std::size_t j = body_begin; j < body_end; ++j) {
          // A `return` inside a nested lambda returns from the lambda, not
          // from this branch — skip lambda bodies wholesale.
          if (is(t, j, "[") && j > 0 && t[j - 1].kind != TokKind::identifier &&
              text(t, j - 1) != "]" && text(t, j - 1) != ")") {
            std::size_t k = close_of(t, j) + 1;
            if (is(t, k, "(")) k = close_of(t, k) + 1;
            for (int steps = 0; steps < 4 && k < body_end; ++steps, ++k) {
              if (is(t, k, "{")) {
                j = close_of(t, k);
                break;
              }
            }
            continue;
          }
          if (is(t, j, "return")) {
            returns = true;
            break;
          }
        }
        if (returns) {
          int depth = 0;
          for (std::size_t j = body_end; j < t.size(); ++j) {
            if (t[j].text == "{") {
              ++depth;
            } else if (t[j].text == "}") {
              if (depth == 0) break;
              --depth;
            }
            if ((is(t, j, ".") || is(t, j, "->")) && is_ident(t, j + 1) &&
                collective_members().count(t[j + 1].text) != 0 && is(t, j + 2, "(")) {
              add(out, Rule::L2_collective_divergence, path, t[j + 1],
                  "collective '" + t[j + 1].text +
                      "' is reached after a rank-dependent early return; the ranks "
                      "that returned will never arrive");
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L3 — use-after-move
// ---------------------------------------------------------------------------

const std::set<std::string>& move_sinks() {
  static const std::set<std::string> k{"send_move",      "post_move", "send_bytes_move",
                                       "adopt",          "adopt_typed", "alltoall"};
  return k;
}
const std::set<std::string>& reinit_members() {
  static const std::set<std::string> k{"assign", "clear", "resize", "reserve", "swap",
                                       "emplace"};
  return k;
}

void rule_l3(const std::string& path, const Toks& t, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 5 < t.size(); ++i) {
    // std :: move ( name )
    if (!is(t, i, "std") || !is(t, i + 1, "::") || !is(t, i + 2, "move") || !is(t, i + 3, "(") ||
        !is_ident(t, i + 4) || !is(t, i + 5, ")")) {
      continue;
    }
    const std::string& name = t[i + 4].text;
    // Only flag moves handed to a pooled-buffer sink.
    const std::size_t s = stmt_start(t, i);
    bool sunk = false;
    for (std::size_t j = s; j + 2 < i + 1; ++j) {
      if ((is(t, j, ".") || is(t, j, "->")) && is_ident(t, j + 1) &&
          move_sinks().count(t[j + 1].text) != 0) {
        sunk = true;
        break;
      }
    }
    if (!sunk) continue;
    // Scan the rest of the enclosing block for the next use of `name`.
    std::size_t semi = i + 5;
    while (semi < t.size() && t[semi].text != ";") ++semi;
    int depth = 0;
    for (std::size_t j = semi + 1; j < t.size(); ++j) {
      const std::string& s2 = t[j].text;
      if (s2 == "{") {
        ++depth;
        continue;
      }
      if (s2 == "}") {
        if (depth == 0) break;
        --depth;
        continue;
      }
      if (t[j].kind != TokKind::identifier || s2 != name) continue;
      const std::string& prev = text(t, j - 1);
      const std::string& next = text(t, j + 1);
      if (prev == "." || prev == "->" || prev == "::") continue;  // member of something else
      // Reinitialization ends the moved-from window.
      const bool redecl = (t[j - 1].kind == TokKind::identifier &&
                           expr_keywords().count(prev) == 0) ||
                          prev == ">";
      const bool reassign = next == "=";
      const bool refill = next == "." && reinit_members().count(text(t, j + 2)) != 0 &&
                          is(t, j + 3, "(");
      if (redecl || reassign || refill) break;
      add(out, Rule::L3_use_after_move, path, t[j],
          "'" + name + "' was moved into a pooled-buffer send (line " +
              std::to_string(t[i + 4].line) +
              ") and is read again before being reassigned; the buffer now "
              "belongs to the transport");
      break;  // one finding per move is enough
    }
  }
}

// ---------------------------------------------------------------------------
// L4 — unbounded-recv
// ---------------------------------------------------------------------------

[[nodiscard]] bool range_has(const Toks& t, std::size_t b, std::size_t e, std::string_view s) {
  for (std::size_t j = b; j < e; ++j) {
    if (t[j].text == s) return true;
  }
  return false;
}

[[nodiscard]] bool is_chrono_number(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])) == 0) return false;
  // a pp-number whose tail is letters that are not a plain int/float suffix
  std::size_t k = s.size();
  while (k > 0 && std::isalpha(static_cast<unsigned char>(s[k - 1])) != 0) --k;
  const std::string suffix = s.substr(k);
  if (suffix.empty()) return false;
  static const std::set<std::string> int_suffixes{"u",  "U",  "l",   "L",   "ul", "UL",
                                                  "ll", "LL", "ull", "ULL", "f",  "F",
                                                  "uz", "z",  "lu",  "LU"};
  return int_suffixes.count(suffix) == 0;
}

[[nodiscard]] bool looks_like_timeout_ident(const std::string& s) {
  std::string lower;
  for (const char c : s) lower.push_back(static_cast<char>(std::tolower(c)));
  return lower.find("timeout") != std::string::npos ||
         lower.find("deadline") != std::string::npos;
}

void rule_l4(const std::string& path, const Toks& t, std::vector<Finding>& out) {
  for (const auto& [b, e] : function_bodies(t)) {
    // Scope: only functions that *construct* fault-tolerance options —
    // `FtOptions`/`FaultPlan` followed by a binding — opt into the rule.
    bool configures_ft = false;
    for (std::size_t j = b; j < e; ++j) {
      if ((is(t, j, "FtOptions") || is(t, j, "FaultPlan")) &&
          (is_ident(t, j + 1) || is(t, j + 1, "{"))) {
        configures_ft = true;
        break;
      }
    }
    if (!configures_ft) continue;
    // A function that also bounds its ops is configured correctly.
    if (range_has(t, b, e, "set_op_timeout") || range_has(t, b, e, "op_timeout_ns")) continue;
    for (std::size_t j = b; j + 2 < e; ++j) {
      if (!is(t, j, ".") && !is(t, j, "->")) continue;
      if (!is_ident(t, j + 1) || t[j + 1].text.rfind("recv", 0) != 0) continue;
      std::size_t open = j + 2;
      if (is(t, open, "<")) {  // explicit template argument list
        int depth = 0;
        std::size_t k = open;
        for (; k < e && k < open + 16; ++k) {
          if (t[k].text == "<") ++depth;
          if (t[k].text == ">" && --depth == 0) {
            ++k;
            break;
          }
        }
        open = k;
      }
      if (!is(t, open, "(")) continue;
      const std::size_t close = close_of(t, open);
      bool timed = false;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (t[k].kind == TokKind::number && is_chrono_number(t[k].text)) timed = true;
        if (t[k].kind == TokKind::identifier && looks_like_timeout_ident(t[k].text)) timed = true;
      }
      if (timed) continue;
      add(out, Rule::L4_unbounded_recv, path, t[j + 1],
          "'" + t[j + 1].text +
              "' blocks forever, but this function configures fault tolerance "
              "(FtOptions/FaultPlan); a failed peer would hang it — pass a "
              "timeout or set RunOptions::op_timeout_ns");
    }
  }
}

// ---------------------------------------------------------------------------
// L5 — magic-tag
// ---------------------------------------------------------------------------

/// Member → index of its tag parameter.
const std::map<std::string, std::size_t>& tag_positions() {
  static const std::map<std::string, std::size_t> k{
      {"send", 1},          {"send_value", 1},      {"send_move", 1},
      {"send_bytes", 1},    {"send_bytes_move", 1}, {"recv", 1},
      {"recv_value", 1},    {"recv_bytes", 1},      {"recv_buffer", 1},
      {"probe", 1},         {"recv_into", 2},       {"recv_bytes_into", 2},
      {"post", 2},          {"post_move", 2},       {"take", 2},
      {"try_peek", 2},
  };
  return k;
}

[[nodiscard]] bool parse_int(const std::string& s, long long& out) {
  std::string clean;
  for (const char c : s) {
    if (c != '\'') clean.push_back(c);
  }
  char* end = nullptr;
  const long long v = std::strtoll(clean.c_str(), &end, 0);
  if (end == clean.c_str()) return false;
  // allow integer suffixes, reject float-looking remainders
  for (const char* p = end; *p != '\0'; ++p) {
    if (*p == '.' || *p == 'e' || *p == 'E') return false;
  }
  out = v;
  return true;
}

/// Named integer constants: `constexpr int kTag = 7;` → 7 → "kTag".
[[nodiscard]] std::map<long long, std::string> named_int_consts(const Toks& t) {
  std::map<long long, std::string> consts;
  for (std::size_t i = 2; i + 2 < t.size(); ++i) {
    if (!is(t, i, "=") || t[i + 1].kind != TokKind::number || !is(t, i + 2, ";")) continue;
    if (t[i - 1].kind != TokKind::identifier) continue;
    const std::size_t s = stmt_start(t, i - 1);
    bool is_const = false;
    for (std::size_t j = s; j < i; ++j) {
      if (is(t, j, "const") || is(t, j, "constexpr")) {
        is_const = true;
        break;
      }
    }
    if (!is_const) continue;
    // Only constants that *name a tag* count — matching any integer
    // constant of equal value would indict unrelated numbers.
    std::string lower;
    for (const char ch : t[i - 1].text) lower.push_back(static_cast<char>(std::tolower(ch)));
    if (lower.find("tag") == std::string::npos) continue;
    long long v = 0;
    if (parse_int(t[i + 1].text, v)) consts.emplace(v, t[i - 1].text);
  }
  return consts;
}

void rule_l5(const std::string& path, const Toks& t, std::vector<Finding>& out) {
  const std::map<long long, std::string> consts = named_int_consts(t);
  std::map<long long, std::map<std::string, int>> tag_types;  // value → type → first line
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is(t, i, ".") && !is(t, i, "->")) continue;
    if (!is_ident(t, i + 1)) continue;
    const auto pos = tag_positions().find(t[i + 1].text);
    if (pos == tag_positions().end()) continue;
    std::size_t open = i + 2;
    std::string template_arg;
    if (is(t, open, "<")) {
      int depth = 0;
      std::size_t k = open;
      for (; k < t.size() && k < open + 16; ++k) {
        if (t[k].text == "<") ++depth;
        if (t[k].text == ">" && --depth == 0) break;
        if (depth >= 1 && k > open) template_arg += t[k].text;
      }
      if (!is(t, k, ">")) continue;
      open = k + 1;
    }
    if (!is(t, open, "(")) continue;
    const std::size_t close = close_of(t, open);
    const auto args = split_args(t, open, close);
    if (args.size() <= pos->second) continue;
    const auto [ab, ae] = args[pos->second];
    if (ae != ab + 1 || t[ab].kind != TokKind::number) continue;  // not a lone literal
    long long v = 0;
    if (!parse_int(t[ab].text, v)) continue;
    const auto named = consts.find(v);
    if (named != consts.end()) {
      add(out, Rule::L5_magic_tag, path, t[ab],
          "raw tag " + t[ab].text + " in '" + t[i + 1].text + "' — this file names that tag '" +
              named->second + "'; use the constant so senders and receivers cannot drift");
    }
    if (!template_arg.empty()) {
      auto& types = tag_types[v];
      const auto [it, inserted] = types.emplace(template_arg, t[ab].line);
      (void)it;
      if (!inserted) continue;
      if (types.size() == 2) {
        add(out, Rule::L5_magic_tag, path, t[ab],
            "tag " + t[ab].text + " carries payload type '" + template_arg +
                "' here but a different type elsewhere in this file; reusing one tag "
                "for two message streams invites type-confused matches");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L6 — ignored-result
// ---------------------------------------------------------------------------

const std::set<std::string>& discardable_members() {
  static const std::set<std::string> k{"try_peek", "probe", "shrink", "delay_ns", "load",
                                       "has"};
  return k;
}

void rule_l6(const std::string& path, const Toks& t, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool at_start = i == 0 || is(t, i - 1, ";") || is(t, i - 1, "{") || is(t, i - 1, "}") ||
                          is(t, i - 1, ":");
    if (!at_start || !is_ident(t, i)) continue;
    std::size_t j = i;
    std::string last = t[j].text;
    ++j;
    while (j + 1 < t.size() &&
           (is(t, j, ".") || is(t, j, "->") || is(t, j, "::")) && is_ident(t, j + 1)) {
      last = t[j + 1].text;
      j += 2;
    }
    if (!is(t, j, "(")) continue;
    const std::size_t close = close_of(t, j);
    if (!is(t, close + 1, ";")) continue;
    if (discardable_members().count(last) == 0) continue;
    add(out, Rule::L6_ignored_result, path, t[i],
        "result of '" + last +
            "' is discarded; it reports whether the operation found/did anything "
            "— check it or cast to void to state the intent");
  }
}

}  // namespace

void run_rules(const std::string& path, const TokenStream& ts, const Options& opts,
               std::vector<Finding>& out) {
  const Toks& t = ts.tokens;
  if (opts.on(Rule::L1_capture_race)) rule_l1(path, t, out);
  if (opts.on(Rule::L2_collective_divergence)) rule_l2(path, t, out);
  if (opts.on(Rule::L3_use_after_move)) rule_l3(path, t, out);
  if (opts.on(Rule::L4_unbounded_recv)) rule_l4(path, t, out);
  if (opts.on(Rule::L5_magic_tag)) rule_l5(path, t, out);
  if (opts.on(Rule::L6_ignored_result)) rule_l6(path, t, out);
}

}  // namespace peachy::lint
