#pragma once
/// \file lexer.hpp
/// \brief C++ tokenizer for peachy::lint.
///
/// The lint rules (lint.hpp) reason about token streams, not characters:
/// "a collective member call inside a rank-dependent branch" is a pattern
/// over identifiers and punctuators.  This lexer produces exactly the
/// stream those rules need —
///
///   * identifiers and keywords (one kind; rules match on spelling),
///   * pp-numbers with their suffixes kept attached (`20ms` is one token,
///     which is how rule L4 recognizes a chrono literal),
///   * string/char literals collapsed to single tokens (including raw
///     strings), so quoted text can never fake a match,
///   * multi-character punctuators as single tokens (`+=`, `==`, `::`,
///     `->`) so rules can tell assignment from comparison,
///
/// and deliberately does NOT emit comments or preprocessor directives as
/// tokens.  Comments are collected separately with their line numbers —
/// that is where `// peachy-lint: allow(<rule>)` suppressions live — and
/// preprocessor lines are skipped wholesale (an #include path or a macro
/// body is not code the rules should see).
///
/// Every token carries its 1-based line and column for diagnostics.

#include <cstddef>
#include <string>
#include <vector>

namespace peachy::lint {

enum class TokKind {
  identifier,  ///< identifiers and keywords alike
  number,      ///< pp-number, suffix attached (0x1F, 1'000, 20ms, 1.5e-3)
  string_lit,  ///< "..." / R"(...)" / '...' (prefixes attached)
  punct,       ///< one punctuator, longest-match (`<<=`, `->`, `::`, ...)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based
};

/// One comment, for suppression scanning (text includes the delimiters).
struct Comment {
  std::string text;
  int line = 0;       ///< line the comment starts on
  int end_line = 0;   ///< line it ends on (== line for `//` comments)
};

/// A tokenized translation unit.
struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `source`.  Never throws on malformed input: an unterminated
/// literal or comment simply ends at EOF (linting must degrade gracefully
/// on student code that does not even compile).
[[nodiscard]] TokenStream tokenize(const std::string& source);

}  // namespace peachy::lint
