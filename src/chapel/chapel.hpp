#pragma once
/// \file chapel.hpp
/// \brief Library-level analogues of the Chapel constructs used by the 1D
/// heat assignment (paper §6).
///
/// Chapel is a language; this container has no Chapel compiler, so peachy
/// reproduces the assignment's constructs as a C++ library with the same
/// cost model and the same teaching contrasts:
///
///  * `LocaleGrid`    — a set of L "locales" (simulated compute nodes); each
///                      owns memory blocks, and a thread-local "here" tracks
///                      which locale the current task executes on.
///  * `forall`        — data-parallel loop over a domain: the runtime splits
///                      iterations across tasks *and spawns those tasks anew
///                      at every call* (the Part-1 overhead the assignment
///                      asks students to notice).
///  * `coforall`      — one task per iteration, exactly (the Part-2 building
///                      block for persistent tasks).
///  * `foreach`       — order-independent serial loop (vectorization hint).
///  * `BlockDist1D`   — a 1-D array block-distributed across locales, with a
///                      remote-access counter standing in for implicit
///                      communication.
///  * `Barrier`       — reusable synchronization for coforall tasks.
///
/// Task-spawn and remote-access counters feed experiment T-HT-1.

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "analysis/hooks.hpp"
#include "obs/obs.hpp"
#include "support/barrier.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

namespace peachy::chapel {

/// Half-open index range [lo, hi) — a 1-D Chapel domain.
struct Domain1D {
  std::size_t lo = 0;
  std::size_t hi = 0;

  [[nodiscard]] std::size_t size() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(std::size_t i) const noexcept { return i >= lo && i < hi; }
  friend bool operator==(const Domain1D&, const Domain1D&) = default;
};

/// A set of simulated locales sharing one thread pool.
///
/// `threads_per_locale` models each node's cores; the pool is sized
/// locales × threads_per_locale so a fully subscribed coforall-per-locale
/// can make progress on every "node" concurrently.
class LocaleGrid {
 public:
  explicit LocaleGrid(std::size_t nlocales, std::size_t threads_per_locale = 1);

  [[nodiscard]] std::size_t size() const noexcept { return nlocales_; }
  [[nodiscard]] std::size_t threads_per_locale() const noexcept { return threads_per_locale_; }
  [[nodiscard]] support::ThreadPool& pool() noexcept { return pool_; }

  /// The locale the calling task runs on (Chapel's `here.id`).  Tasks
  /// spawned outside any on-statement report locale 0.
  [[nodiscard]] static std::size_t here() noexcept { return tls_here_; }

  /// Total tasks spawned through forall/coforall on this grid.
  [[nodiscard]] std::uint64_t tasks_spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }
  void reset_counters() noexcept { spawned_.store(0, std::memory_order_relaxed); }

  // -- execution constructs ---------------------------------------------------

  /// `coforall tid in 0..<n`: spawn exactly one task per iteration, run
  /// body(tid), join.  Each task inherits the caller's locale.
  template <typename F>
  void coforall(std::size_t n, F&& body) {
    const obs::SpanScope span{"chapel", "coforall", "n",
                              static_cast<std::int64_t>(n)};
    const std::size_t parent = tls_here_;
    const std::uint64_t epoch = analysis::begin_parallel_region();
    spawned_.fetch_add(n, std::memory_order_relaxed);
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      futs.push_back(pool_.submit_future([&body, parent, t, epoch] {
        const HereScope scope{parent};
        const analysis::TaskScope task{t, epoch};
        body(t);
      }));
    }
    for (auto& f : futs) f.get();
  }

  /// `coforall loc in Locales do on loc { body(loc.id) }`: one task per
  /// locale, each executing "on" its locale.
  template <typename F>
  void coforall_locales(F&& body) {
    const obs::SpanScope span{"chapel", "coforall_locales", "n",
                              static_cast<std::int64_t>(nlocales_)};
    const std::uint64_t epoch = analysis::begin_parallel_region();
    spawned_.fetch_add(nlocales_, std::memory_order_relaxed);
    std::vector<std::future<void>> futs;
    futs.reserve(nlocales_);
    for (std::size_t l = 0; l < nlocales_; ++l) {
      futs.push_back(pool_.submit_future([&body, l, epoch] {
        const HereScope scope{l};
        const analysis::TaskScope task{l, epoch};
        body(l);
      }));
    }
    for (auto& f : futs) f.get();
  }

  /// `forall i in dom`: data-parallel loop.  The runtime spawns one task
  /// per locale × threads_per_locale over a *block-distributed* view of
  /// the domain (the same index→locale mapping BlockDist1D uses), runs
  /// body(i) for owned indices, and joins.  Fresh tasks every call — the
  /// overhead Part 2 of the heat assignment eliminates.
  template <typename F>
  void forall(Domain1D dom, F&& body) {
    const std::size_t n = dom.size();
    if (n == 0) return;
    const obs::SpanScope span{"chapel", "forall", "n",
                              static_cast<std::int64_t>(n)};
    const std::uint64_t epoch = analysis::begin_parallel_region();
    std::size_t task_id = 0;
    std::vector<std::future<void>> futs;
    for (std::size_t l = 0; l < nlocales_; ++l) {
      const auto lb = support::static_block(n, nlocales_, l);
      const std::size_t len = lb.end - lb.begin;
      if (len == 0) continue;
      const std::size_t tasks = std::min(threads_per_locale_, len);
      for (std::size_t t = 0; t < tasks; ++t) {
        const auto tb = support::static_block(len, tasks, t);
        const std::size_t lo = dom.lo + lb.begin + tb.begin;
        const std::size_t hi = dom.lo + lb.begin + tb.end;
        spawned_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t id = task_id++;
        futs.push_back(pool_.submit_future([&body, l, lo, hi, id, epoch] {
          const HereScope scope{l};
          const analysis::TaskScope task{id, epoch};
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }));
      }
    }
    for (auto& f : futs) f.get();
  }

  /// `on loc { body() }`: run body with `here() == locale` (synchronous —
  /// models execution migration, not concurrency).
  template <typename F>
  void on_locale(std::size_t locale, F&& body) {
    PEACHY_CHECK(locale < nlocales_, "on_locale: bad locale id");
    const HereScope scope{locale};
    body();
  }

 private:
  struct HereScope {
    explicit HereScope(std::size_t l) noexcept : saved{tls_here_} { tls_here_ = l; }
    ~HereScope() { tls_here_ = saved; }
    HereScope(const HereScope&) = delete;
    HereScope& operator=(const HereScope&) = delete;
    std::size_t saved;
  };

  static thread_local std::size_t tls_here_;

  std::size_t nlocales_;
  std::size_t threads_per_locale_;
  support::ThreadPool pool_;
  std::atomic<std::uint64_t> spawned_{0};
};

/// `foreach`: order-independent loop executed serially on the calling task
/// (Chapel's vectorization construct).
template <typename F>
void foreach (Domain1D dom, F&& body) {
  for (std::size_t i = dom.lo; i < dom.hi; ++i) body(i);
}

/// Reusable barrier for coforall task teams (Chapel's Barrier).
using Barrier = support::CyclicBarrier;

/// A 1-D array block-distributed across a LocaleGrid.
///
/// Storage is genuinely split into per-locale blocks.  Element access from
/// a task whose `here()` differs from the owner increments the
/// remote-access counter — the library's stand-in for Chapel's implicit
/// PUT/GET communication, and the quantity the assignment teaches students
/// to reason about.
template <typename T>
class BlockDist1D {
 public:
  BlockDist1D(LocaleGrid& grid, std::size_t n, T init = T{})
      : grid_{&grid}, n_{n}, blocks_(grid.size()) {
    for (std::size_t l = 0; l < grid.size(); ++l) {
      const auto b = support::static_block(n, grid.size(), l);
      blocks_[l].assign(b.end - b.begin, init);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] Domain1D domain() const noexcept { return {0, n_}; }

  /// Interior domain (excludes the two boundary points) — the heat
  /// solver's update set Ω̂.
  [[nodiscard]] Domain1D interior() const noexcept {
    return n_ >= 2 ? Domain1D{1, n_ - 1} : Domain1D{0, 0};
  }

  /// Owner locale of global index i (block distribution rule).
  [[nodiscard]] std::size_t locale_of(std::size_t i) const {
    PEACHY_CHECK(i < n_, "BlockDist1D: index out of range");
    // Invert the static block rule: first `extra` blocks have base+1 elems.
    const std::size_t L = blocks_.size();
    const std::size_t base = n_ / L;
    const std::size_t extra = n_ % L;
    const std::size_t big = extra * (base + 1);
    if (i < big) return i / (base + 1);
    return base == 0 ? L - 1 : extra + (i - big) / base;
  }

  /// The index range owned by a locale (Chapel's localSubdomain).
  [[nodiscard]] Domain1D local_subdomain(std::size_t locale) const {
    PEACHY_CHECK(locale < blocks_.size(), "BlockDist1D: bad locale");
    const auto b = support::static_block(n_, blocks_.size(), locale);
    return {b.begin, b.end};
  }

  /// Element access.  Counts a remote access when the calling task's
  /// locale is not the owner.
  [[nodiscard]] T& operator[](std::size_t i) {
    return const_cast<T&>(std::as_const(*this)[i]);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    const std::size_t owner = locale_of(i);
    if (owner != LocaleGrid::here()) remote_.fetch_add(1, std::memory_order_relaxed);
    const auto sub = local_subdomain(owner);
    return blocks_[owner][i - sub.lo];
  }

  /// Direct view of a locale's block (no remote accounting) — the escape
  /// hatch Part 2's explicit code path uses after copying halos.
  [[nodiscard]] std::span<T> local_block(std::size_t locale) {
    PEACHY_CHECK(locale < blocks_.size(), "BlockDist1D: bad locale");
    return blocks_[locale];
  }
  [[nodiscard]] std::span<const T> local_block(std::size_t locale) const {
    PEACHY_CHECK(locale < blocks_.size(), "BlockDist1D: bad locale");
    return blocks_[locale];
  }

  /// Remote (non-owner) element accesses so far.
  [[nodiscard]] std::uint64_t remote_accesses() const noexcept {
    return remote_.load(std::memory_order_relaxed);
  }
  void reset_counters() noexcept { remote_.store(0, std::memory_order_relaxed); }

  /// O(1) content swap with another array over the same grid/size — the
  /// heat solver's u/un double-buffer swap.
  void swap(BlockDist1D& other) {
    PEACHY_CHECK(grid_ == other.grid_ && n_ == other.n_,
                 "BlockDist1D: swap shape mismatch");
    blocks_.swap(other.blocks_);
  }

  [[nodiscard]] LocaleGrid& grid() const noexcept { return *grid_; }

 private:
  LocaleGrid* grid_;
  std::size_t n_;
  std::vector<std::vector<T>> blocks_;
  mutable std::atomic<std::uint64_t> remote_{0};
};

}  // namespace peachy::chapel
