#include "chapel/chapel.hpp"

namespace peachy::chapel {

thread_local std::size_t LocaleGrid::tls_here_ = 0;

LocaleGrid::LocaleGrid(std::size_t nlocales, std::size_t threads_per_locale)
    : nlocales_{nlocales},
      threads_per_locale_{threads_per_locale},
      pool_{nlocales * threads_per_locale} {
  PEACHY_CHECK(nlocales >= 1, "locale grid needs at least one locale");
  PEACHY_CHECK(threads_per_locale >= 1, "need at least one thread per locale");
}

}  // namespace peachy::chapel
