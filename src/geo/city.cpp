#include "geo/city.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "rng/splitmix.hpp"

namespace peachy::geo {

const std::vector<std::string>& offense_categories() {
  static const std::vector<std::string> kOffenses{
      "ASSAULT", "BURGLARY", "LARCENY", "ROBBERY", "FRAUD", "MISCHIEF",
  };
  return kOffenses;
}

SyntheticCity::SyntheticCity(const CitySpec& spec) : spec_{spec} {
  PEACHY_CHECK(spec.rows >= 2 && spec.cols >= 2, "city: need at least a 2x2 NTA grid");
  PEACHY_CHECK(spec.width > 0 && spec.height > 0, "city: degenerate extent");
  PEACHY_CHECK(spec.jitter >= 0.0 && spec.jitter < 0.5,
               "city: jitter must be in [0,0.5) to keep cells simple polygons");

  rng::SplitMix64 gen{spec.seed};
  const std::size_t R = spec.rows, C = spec.cols;
  const double cw = spec.width / static_cast<double>(C);
  const double ch = spec.height / static_cast<double>(R);

  // Jittered lattice of (R+1)x(C+1) corner points; boundary corners stay
  // on the boundary so the cells exactly tile the city rectangle.
  std::vector<Point> corners((R + 1) * (C + 1));
  for (std::size_t r = 0; r <= R; ++r) {
    for (std::size_t c = 0; c <= C; ++c) {
      double x = static_cast<double>(c) * cw;
      double y = static_cast<double>(r) * ch;
      if (r != 0 && r != R && c != 0 && c != C) {
        x += rng::uniform_real(gen, -spec.jitter * cw, spec.jitter * cw);
        y += rng::uniform_real(gen, -spec.jitter * ch, spec.jitter * ch);
      }
      corners[r * (C + 1) + c] = {x, y};
    }
  }

  static const std::vector<std::pair<std::string, std::string>> kBoroughs{
      {"BX", "Bronx"}, {"BK", "Brooklyn"}, {"MN", "Manhattan"}, {"QN", "Queens"},
  };

  ntas_.reserve(R * C);
  intensity_.reserve(R * C);
  std::vector<Polygon> polys;
  std::vector<int> borough_counter(kBoroughs.size(), 0);
  for (std::size_t r = 0; r < R; ++r) {
    // Boroughs are horizontal bands of rows.
    const std::size_t b = std::min(kBoroughs.size() - 1, r * kBoroughs.size() / R);
    for (std::size_t c = 0; c < C; ++c) {
      Nta nta;
      const int num = ++borough_counter[b];
      nta.code = kBoroughs[b].first + (num < 10 ? "0" : "") + std::to_string(num);
      nta.borough = kBoroughs[b].second;
      nta.polygon = Polygon{{
          corners[r * (C + 1) + c],
          corners[r * (C + 1) + c + 1],
          corners[(r + 1) * (C + 1) + c + 1],
          corners[(r + 1) * (C + 1) + c],
      }};
      // Population: 20k–140k, log-uniform-ish.
      nta.population = static_cast<std::int64_t>(
          20000.0 * std::exp(rng::uniform_real(gen, 0.0, 1.95)));
      polys.push_back(nta.polygon);
      ntas_.push_back(std::move(nta));
      // Intensity: lognormal — a few hotspot NTAs dominate.
      intensity_.push_back(std::exp(rng::normal(gen, 0.0, 1.0)));
    }
  }
  index_ = std::make_unique<PolygonIndex>(std::move(polys));
}

std::vector<ArrestEvent> SyntheticCity::generate_arrests(
    std::size_t n, std::uint64_t seed, std::vector<std::int32_t> years) const {
  PEACHY_CHECK(!years.empty(), "city: need at least one year");
  rng::SplitMix64 gen{seed};

  // Intensity CDF for NTA selection.
  std::vector<double> cdf(intensity_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < intensity_.size(); ++i) {
    acc += intensity_[i];
    cdf[i] = acc;
  }

  const auto& offenses = offense_categories();
  std::vector<ArrestEvent> events;
  events.reserve(n);
  while (events.size() < n) {
    const double u = rng::uniform01(gen) * acc;
    const auto nta_id = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const Polygon& poly = ntas_[nta_id].polygon;
    // Rejection-sample a point inside the (near-convex quad) polygon.
    Point p;
    int tries = 0;
    do {
      p.x = rng::uniform_real(gen, poly.bbox().min_x, poly.bbox().max_x);
      p.y = rng::uniform_real(gen, poly.bbox().min_y, poly.bbox().max_y);
    } while (!poly.contains(p) && ++tries < 64);
    if (!poly.contains(p)) continue;  // pathological cell; resample NTA

    ArrestEvent ev;
    ev.location = p;
    ev.year = years[static_cast<std::size_t>(rng::uniform_below(gen, years.size()))];
    ev.offense = offenses[static_cast<std::size_t>(rng::uniform_below(gen, offenses.size()))];
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<std::int64_t> SyntheticCity::count_by_nta(
    const std::vector<ArrestEvent>& events) const {
  std::vector<std::int64_t> counts(ntas_.size(), 0);
  for (const auto& ev : events) {
    const auto id = index_->locate(ev.location);
    if (id) ++counts[*id];
  }
  return counts;
}

}  // namespace peachy::geo
