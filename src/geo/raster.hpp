#pragma once
/// \file raster.hpp
/// \brief Choropleth heat-map rendering (Fig. 2's final pipeline stage).
///
/// The crime pipeline's deliverable is "a spatial heat map displaying the
/// number of arrests per 100,000 citizens" per NTA.  This renderer
/// rasterizes a polygon set colored by a per-polygon value to a grayscale
/// image, writable as binary PGM (portable, viewable anywhere) or ASCII
/// art (viewable in a terminal — the teaching default).

#include <span>
#include <string>
#include <vector>

#include "geo/geometry.hpp"

namespace peachy::geo {

/// A grayscale image with values in [0,1].
class Raster {
 public:
  Raster(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const noexcept { return w_; }
  [[nodiscard]] std::size_t height() const noexcept { return h_; }

  [[nodiscard]] double& at(std::size_t x, std::size_t y);
  [[nodiscard]] double at(std::size_t x, std::size_t y) const;

  /// Binary PGM (P5) encoding.
  [[nodiscard]] std::string to_pgm() const;

  /// ASCII-art rendering (one char per pixel, darker = larger value).
  [[nodiscard]] std::string to_ascii() const;

  /// Write a PGM file.  Throws peachy::Error on I/O failure.
  void write_pgm(const std::string& path) const;

 private:
  std::size_t w_, h_;
  std::vector<double> px_;
};

/// Rasterize polygons colored by `values` (one per polygon, any range —
/// normalized to [0,1] internally; min→0, max→1).  Pixels outside every
/// polygon are 0.  y axis points up (row 0 is the top of the image).
[[nodiscard]] Raster rasterize_choropleth(const PolygonIndex& index,
                                          std::span<const double> values, std::size_t width,
                                          std::size_t height);

}  // namespace peachy::geo
