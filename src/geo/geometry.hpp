#pragma once
/// \file geometry.hpp
/// \brief 2-D geometry for the crime-pipeline's spatial join (paper §4).
///
/// The Fig. 2 pipeline "identifies the spatial positions of all arrests"
/// by locating each arrest point inside a Neighborhood Tabulation Area
/// polygon.  This module provides the point-in-polygon primitive
/// (ray casting with bounding-box pre-filter) and a uniform-grid spatial
/// index so the join is sub-linear in the polygon count.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace peachy::geo {

/// A 2-D point (longitude/latitude-like planar coordinates).
struct Point {
  double x = 0.0;
  double y = 0.0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Axis-aligned bounding box.
struct Bbox {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  [[nodiscard]] bool contains(Point p) const noexcept {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  [[nodiscard]] double width() const noexcept { return max_x - min_x; }
  [[nodiscard]] double height() const noexcept { return max_y - min_y; }
};

/// Simple polygon (implicitly closed ring; no self-intersection expected).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> ring);

  [[nodiscard]] const std::vector<Point>& ring() const noexcept { return ring_; }
  [[nodiscard]] const Bbox& bbox() const noexcept { return bbox_; }

  /// Even-odd ray-casting test, with a bbox pre-filter.  Boundary points
  /// are classified by the ray parity (consistent, not symmetric).
  [[nodiscard]] bool contains(Point p) const noexcept;

  /// Signed shoelace area (positive for counter-clockwise rings).
  [[nodiscard]] double signed_area() const noexcept;

  /// Ring centroid (area-weighted).
  [[nodiscard]] Point centroid() const;

 private:
  std::vector<Point> ring_;
  Bbox bbox_;
};

/// Uniform-grid index over a set of polygons: locate(p) returns the id of
/// the polygon containing p (first match in id order), or nullopt.
class PolygonIndex {
 public:
  /// Build over the polygons (ids are their positions).  `cells_per_axis`
  /// controls grid resolution.
  explicit PolygonIndex(std::vector<Polygon> polygons, std::size_t cells_per_axis = 32);

  [[nodiscard]] std::size_t size() const noexcept { return polygons_.size(); }
  [[nodiscard]] const Polygon& polygon(std::size_t id) const;
  [[nodiscard]] const Bbox& extent() const noexcept { return extent_; }

  /// Polygon containing p, or nullopt.
  [[nodiscard]] std::optional<std::size_t> locate(Point p) const;

  /// Brute-force reference (for tests/benches).
  [[nodiscard]] std::optional<std::size_t> locate_brute(Point p) const;

  /// Candidate polygons examined by the last locate() — telemetry showing
  /// the index prunes work.
  [[nodiscard]] std::uint64_t candidates_examined() const noexcept { return candidates_; }
  void reset_counters() noexcept { candidates_ = 0; }

 private:
  [[nodiscard]] std::size_t cell_of(Point p) const noexcept;

  std::vector<Polygon> polygons_;
  Bbox extent_;
  std::size_t cells_;
  std::vector<std::vector<std::uint32_t>> grid_;  // cell -> candidate polygon ids
  mutable std::uint64_t candidates_ = 0;
};

}  // namespace peachy::geo
