#include "geo/raster.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace peachy::geo {

Raster::Raster(std::size_t width, std::size_t height)
    : w_{width}, h_{height}, px_(width * height, 0.0) {
  PEACHY_CHECK(width > 0 && height > 0, "raster: degenerate size");
}

double& Raster::at(std::size_t x, std::size_t y) {
  PEACHY_CHECK(x < w_ && y < h_, "raster: pixel out of range");
  return px_[y * w_ + x];
}

double Raster::at(std::size_t x, std::size_t y) const {
  PEACHY_CHECK(x < w_ && y < h_, "raster: pixel out of range");
  return px_[y * w_ + x];
}

std::string Raster::to_pgm() const {
  std::ostringstream os;
  os << "P5\n" << w_ << ' ' << h_ << "\n255\n";
  for (double v : px_) {
    os.put(static_cast<char>(static_cast<unsigned char>(std::clamp(v, 0.0, 1.0) * 255.0)));
  }
  return os.str();
}

std::string Raster::to_ascii() const {
  static constexpr char kShades[] = " .:-=+*#%@";
  std::string out;
  out.reserve((w_ + 1) * h_);
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) {
      const double v = std::clamp(px_[y * w_ + x], 0.0, 1.0);
      out.push_back(kShades[static_cast<std::size_t>(v * 9.999)]);
    }
    out.push_back('\n');
  }
  return out;
}

void Raster::write_pgm(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  PEACHY_CHECK(out.is_open(), "raster: cannot open " + path);
  const std::string pgm = to_pgm();
  out.write(pgm.data(), static_cast<std::streamsize>(pgm.size()));
  PEACHY_CHECK(out.good(), "raster: i/o error writing " + path);
}

Raster rasterize_choropleth(const PolygonIndex& index, std::span<const double> values,
                            std::size_t width, std::size_t height) {
  PEACHY_CHECK(values.size() == index.size(), "choropleth: one value per polygon required");
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double span = hi - lo;

  Raster img{width, height};
  const Bbox& e = index.extent();
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      // Pixel center in world coordinates; row 0 = top = max y.
      const Point p{
          e.min_x + (static_cast<double>(x) + 0.5) / static_cast<double>(width) * e.width(),
          e.max_y - (static_cast<double>(y) + 0.5) / static_cast<double>(height) * e.height()};
      const auto id = index.locate(p);
      if (!id) continue;
      const double v = span > 0 ? (values[*id] - lo) / span : 0.5;
      // Keep fully inside [0.08, 1]: polygons stay visible against the
      // zero background even at the minimum value.
      img.at(x, y) = 0.08 + 0.92 * v;
    }
  }
  return img;
}

}  // namespace peachy::geo
