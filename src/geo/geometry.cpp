#include "geo/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace peachy::geo {

Polygon::Polygon(std::vector<Point> ring) : ring_{std::move(ring)} {
  PEACHY_CHECK(ring_.size() >= 3, "polygon needs at least 3 vertices");
  bbox_ = {ring_[0].x, ring_[0].y, ring_[0].x, ring_[0].y};
  for (const Point& p : ring_) {
    bbox_.min_x = std::min(bbox_.min_x, p.x);
    bbox_.min_y = std::min(bbox_.min_y, p.y);
    bbox_.max_x = std::max(bbox_.max_x, p.x);
    bbox_.max_y = std::max(bbox_.max_y, p.y);
  }
}

bool Polygon::contains(Point p) const noexcept {
  if (!bbox_.contains(p)) return false;
  // Even-odd rule: count ring edges crossing the horizontal ray to +x.
  bool inside = false;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring_[i];
    const Point& b = ring_[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area() const noexcept {
  double a = 0.0;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    a += (ring_[j].x + ring_[i].x) * (ring_[i].y - ring_[j].y);
  }
  return a / 2.0;
}

Point Polygon::centroid() const {
  const double a = signed_area();
  PEACHY_CHECK(std::fabs(a) > 1e-300, "centroid of degenerate polygon");
  double cx = 0.0, cy = 0.0;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double cross = ring_[j].x * ring_[i].y - ring_[i].x * ring_[j].y;
    cx += (ring_[j].x + ring_[i].x) * cross;
    cy += (ring_[j].y + ring_[i].y) * cross;
  }
  return {cx / (6.0 * a), cy / (6.0 * a)};
}

PolygonIndex::PolygonIndex(std::vector<Polygon> polygons, std::size_t cells_per_axis)
    : polygons_{std::move(polygons)}, cells_{cells_per_axis} {
  PEACHY_CHECK(!polygons_.empty(), "polygon index over empty set");
  PEACHY_CHECK(cells_ >= 1, "polygon index needs at least one cell per axis");
  extent_ = polygons_[0].bbox();
  for (const auto& poly : polygons_) {
    extent_.min_x = std::min(extent_.min_x, poly.bbox().min_x);
    extent_.min_y = std::min(extent_.min_y, poly.bbox().min_y);
    extent_.max_x = std::max(extent_.max_x, poly.bbox().max_x);
    extent_.max_y = std::max(extent_.max_y, poly.bbox().max_y);
  }
  grid_.assign(cells_ * cells_, {});
  const double cw = extent_.width() / static_cast<double>(cells_);
  const double ch = extent_.height() / static_cast<double>(cells_);
  PEACHY_CHECK(cw > 0 && ch > 0, "polygon index extent is degenerate");
  for (std::uint32_t id = 0; id < polygons_.size(); ++id) {
    const Bbox& b = polygons_[id].bbox();
    const auto cx0 = static_cast<std::size_t>((b.min_x - extent_.min_x) / cw);
    const auto cy0 = static_cast<std::size_t>((b.min_y - extent_.min_y) / ch);
    const auto cx1 = std::min(cells_ - 1, static_cast<std::size_t>((b.max_x - extent_.min_x) / cw));
    const auto cy1 = std::min(cells_ - 1, static_cast<std::size_t>((b.max_y - extent_.min_y) / ch));
    for (std::size_t cy = cy0; cy <= cy1; ++cy) {
      for (std::size_t cx = std::min(cx0, cells_ - 1); cx <= cx1; ++cx) {
        grid_[cy * cells_ + cx].push_back(id);
      }
    }
  }
}

const Polygon& PolygonIndex::polygon(std::size_t id) const {
  PEACHY_CHECK(id < polygons_.size(), "polygon id out of range");
  return polygons_[id];
}

std::size_t PolygonIndex::cell_of(Point p) const noexcept {
  const double cw = extent_.width() / static_cast<double>(cells_);
  const double ch = extent_.height() / static_cast<double>(cells_);
  auto cx = static_cast<std::size_t>((p.x - extent_.min_x) / cw);
  auto cy = static_cast<std::size_t>((p.y - extent_.min_y) / ch);
  cx = std::min(cx, cells_ - 1);
  cy = std::min(cy, cells_ - 1);
  return cy * cells_ + cx;
}

std::optional<std::size_t> PolygonIndex::locate(Point p) const {
  if (!extent_.contains(p)) return std::nullopt;
  const auto& cands = grid_[cell_of(p)];
  for (std::uint32_t id : cands) {
    ++candidates_;
    if (polygons_[id].contains(p)) return id;
  }
  return std::nullopt;
}

std::optional<std::size_t> PolygonIndex::locate_brute(Point p) const {
  for (std::size_t id = 0; id < polygons_.size(); ++id) {
    if (polygons_[id].contains(p)) return id;
  }
  return std::nullopt;
}

}  // namespace peachy::geo
