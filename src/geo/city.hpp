#pragma once
/// \file city.hpp
/// \brief Synthetic city generator (paper §4 substitution for NYC Open Data).
///
/// The Fig. 2 pipeline combines four NYC datasets: arrests (historic +
/// current year), NTA boundaries, and NTA populations.  This container has
/// no network access, so peachy generates an equivalent city: a jittered
/// rectangular tessellation of "Neighborhood Tabulation Areas" grouped
/// into boroughs, per-NTA populations, and arrest events with spatially
/// varying intensity (hotspot neighborhoods) — everything the pipeline's
/// ingest→join→aggregate→normalize→render stages need, with a known
/// ground truth for validation.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geo/geometry.hpp"

namespace peachy::geo {

/// One Neighborhood Tabulation Area.
struct Nta {
  std::string code;      ///< e.g. "BK03"
  std::string borough;   ///< e.g. "Brooklyn"
  Polygon polygon;
  std::int64_t population = 0;
};

/// One arrest event (the synthetic analogue of an NYPD arrest record).
struct ArrestEvent {
  Point location;
  std::int32_t year = 0;
  std::string offense;   ///< small categorical vocabulary
};

/// City generation parameters.
struct CitySpec {
  std::size_t rows = 8;      ///< NTA grid rows (grouped into 4 boroughs)
  std::size_t cols = 8;      ///< NTA grid columns
  double width = 10.0;       ///< city extent (arbitrary planar units)
  double height = 10.0;
  double jitter = 0.25;      ///< interior corner perturbation (fraction of a cell)
  std::uint64_t seed = 2023;
};

/// Deterministic synthetic city.
class SyntheticCity {
 public:
  explicit SyntheticCity(const CitySpec& spec = {});

  [[nodiscard]] const std::vector<Nta>& ntas() const noexcept { return ntas_; }
  [[nodiscard]] const PolygonIndex& index() const noexcept { return *index_; }
  [[nodiscard]] const CitySpec& spec() const noexcept { return spec_; }

  /// Arrest-intensity weight of each NTA (hotspots have large weights).
  [[nodiscard]] const std::vector<double>& intensity() const noexcept { return intensity_; }

  /// Generate `n` arrest events across `years` (uniformly per event), with
  /// NTA choice proportional to intensity and location uniform within the
  /// chosen NTA.  Deterministic in `seed`.
  [[nodiscard]] std::vector<ArrestEvent> generate_arrests(
      std::size_t n, std::uint64_t seed, std::vector<std::int32_t> years = {2020, 2021}) const;

  /// Ground-truth arrest counts per NTA for an event list (computed via
  /// the spatial index — the oracle the pipeline output is checked against).
  [[nodiscard]] std::vector<std::int64_t> count_by_nta(
      const std::vector<ArrestEvent>& events) const;

  /// NTA id containing a point, if any.
  [[nodiscard]] std::optional<std::size_t> locate(Point p) const { return index_->locate(p); }

 private:
  CitySpec spec_;
  std::vector<Nta> ntas_;
  std::vector<double> intensity_;
  std::unique_ptr<PolygonIndex> index_;
};

/// The offense vocabulary used by the generator.
[[nodiscard]] const std::vector<std::string>& offense_categories();

}  // namespace peachy::geo
