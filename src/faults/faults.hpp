#pragma once
/// \file faults.hpp
/// \brief peachy::faults — error taxonomy of the fault-tolerance layer.
///
/// Every substrate in peachy originally assumed a fault-free world: a rank
/// that stops posting makes its peers block in `recv` forever.  The faults
/// layer (DESIGN.md §12) makes failures *injectable* (plan.hpp),
/// *detectable* (the errors below, raised by the mini-MPI machine instead
/// of hanging), and *survivable* (retry.hpp, checkpoint.hpp, and
/// `Comm::shrink()`).
///
/// The hierarchy encodes what a handler may safely do:
///
///   peachy::Error
///    ├─ TransientError          retry is reasonable (RetryPolicy's filter)
///    │   └─ TimeoutError        a recv/collective deadline expired
///    └─ RankFailedError         a peer crashed; retrying the same op on the
///        │                      same communicator cannot succeed — revoke
///        │                      and shrink() instead
///        └─ CommRevokedError    another survivor revoked the communicator
///                               (it observed a failure first); treat
///                               exactly like RankFailedError
///
/// `RankKilled` is the *injection* vehicle, not an error to handle: it is
/// thrown inside the crashed rank itself to unwind its stack, and the
/// mini-MPI runner absorbs it (the rank simply stops, as a killed process
/// would).  It deliberately does not derive from peachy::Error so that
/// rank code catching Error for its own purposes cannot resurrect itself.

#include <string>

#include "support/check.hpp"

namespace peachy::faults {

/// Base of every recoverable-by-retry condition (see RetryPolicy).
class TransientError : public peachy::Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A blocking receive (or a collective riding on one) exceeded its
/// deadline.  Raised only when a timeout was configured — by default the
/// machine blocks forever, as real MPI does.
class TimeoutError : public TransientError {
 public:
  explicit TimeoutError(const std::string& what) : TransientError(what) {}
};

/// A frame failed its integrity check at a wire receive boundary: CRC32C
/// mismatch, bad magic, or a desynchronized stream (DESIGN.md §17).
/// Transient by classification — the damage is to one frame or one
/// connection, not to the world; the transports translate an
/// unrecoverable instance (socket stream desync) into peer failure.
class WireIntegrityError : public TransientError {
 public:
  explicit WireIntegrityError(const std::string& what) : TransientError(what) {}
};

/// A durable checkpoint file failed validation (truncated, bit-flipped,
/// wrong version/magic).  Raised by DurableCheckpointStore::load_strict;
/// the default load() maps it to "no snapshot" so recovery falls back to
/// a fresh start instead of restoring garbage.
class CheckpointCorruptError : public peachy::Error {
 public:
  explicit CheckpointCorruptError(const std::string& what) : Error(what) {}
};

/// Socket-transport rendezvous failed permanently: every bounded
/// connect() retry was exhausted (RetryPolicy-backed; transient refusals
/// from slow-starting peers are retried before this is raised).
class RendezvousError : public peachy::Error {
 public:
  explicit RendezvousError(const std::string& what) : Error(what) {}
};

/// A peer rank crashed.  `rank()` is the failed rank in *world* numbering
/// (matching the fault plan's scope), so handlers can log/exclude it even
/// when operating through a shrunken communicator.
class RankFailedError : public peachy::Error {
 public:
  RankFailedError(int rank, const std::string& what) : Error(what), rank_{rank} {}
  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

/// The communicator was revoked by a survivor that observed a failure
/// first (`Comm::revoke()`), interrupting every rank still blocked in the
/// abandoned operation so all survivors reach their recovery path.
class CommRevokedError : public RankFailedError {
 public:
  CommRevokedError(int rank, const std::string& what) : RankFailedError(rank, what) {}
};

/// Thrown inside a rank at its scheduled crash point (and on every MPI
/// operation it attempts afterwards — dead ranks cannot talk).  Not a
/// peachy::Error on purpose; see the file comment.  mpi::run() recognizes
/// it and retires the rank without aborting the machine.
class RankKilled {
 public:
  explicit RankKilled(int rank) noexcept : rank_{rank} {}
  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

}  // namespace peachy::faults
