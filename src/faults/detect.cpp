/// \file detect.cpp
/// \brief Heartbeat failure detection policy (detect.hpp).

#include "faults/detect.hpp"

#include <cstdlib>
#include <string>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::faults {

HeartbeatConfig HeartbeatConfig::from_env(bool launched, int nprocs) {
  constexpr std::uint64_t kDefaultMs = 10'000;
  std::uint64_t ms = launched && nprocs > 1 ? kDefaultMs : 0;
  if (const char* env = std::getenv("PEACHY_HEARTBEAT_TIMEOUT");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    PEACHY_CHECK(end != nullptr && *end == '\0',
                 "PEACHY_HEARTBEAT_TIMEOUT must be a timeout in milliseconds (0 "
                 "disables), got '" +
                     std::string{env} + "'");
    // An explicit value wins, but only where heartbeats exist at all:
    // single-process and unlaunched worlds have no peers to monitor.
    ms = launched && nprocs > 1 ? v : 0;
  }
  return HeartbeatConfig{ms * 1'000'000};
}

HeartbeatMonitor::HeartbeatMonitor(int npeers, HeartbeatConfig cfg)
    : cfg_{cfg}, peers_(static_cast<std::size_t>(npeers)) {}

void HeartbeatMonitor::alive(int peer, std::uint64_t now_ns) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.state == State::kConfirmed) return;  // death is sticky, like peer_failed
  if (now_ns <= p.last_alive_ns && p.state != State::kUnknown) return;
  p.last_alive_ns = now_ns;
  p.state = State::kAlive;  // rehabilitates a suspect
}

HeartbeatMonitor::Verdict HeartbeatMonitor::check(int peer, std::uint64_t now_ns) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (!cfg_.enabled() || p.state == State::kConfirmed) return Verdict::kAlive;
  if (p.state == State::kUnknown) {
    // First sighting of this peer by the monitor: anchor its clock here.
    // A peer that *never* proves life — wedged before it ever spoke — is
    // then confirmed like any other silence; without the anchor it would
    // be unmonitorable and its peers would block on it forever.  The
    // flip side: a peer must finish starting up within timeout + grace
    // of our first beat, which is why the default timeout is generous.
    p.last_alive_ns = now_ns;
    p.state = State::kAlive;
    return Verdict::kAlive;
  }
  const std::uint64_t silence = now_ns > p.last_alive_ns ? now_ns - p.last_alive_ns : 0;
  if (p.state == State::kAlive) {
    if (silence <= cfg_.timeout_ns) return Verdict::kAlive;
    p.state = State::kSuspected;
    if (obs::enabled()) obs::counter("mpi.transport.heartbeat.suspected").add(1);
    return Verdict::kSuspected;
  }
  // Suspected: confirm after the grace period on top of the timeout.
  if (silence <= cfg_.timeout_ns + cfg_.grace_ns()) return Verdict::kAlive;
  p.state = State::kConfirmed;
  if (obs::enabled()) obs::counter("mpi.transport.heartbeat.confirmed").add(1);
  return Verdict::kConfirmed;
}

bool HeartbeatMonitor::confirmed(int peer) const noexcept {
  return peers_[static_cast<std::size_t>(peer)].state == State::kConfirmed;
}

}  // namespace peachy::faults
