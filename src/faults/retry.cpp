#include "faults/retry.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "obs/obs.hpp"
#include "rng/splitmix.hpp"
#include "support/check.hpp"

namespace peachy::faults {

RetryPolicy::RetryPolicy(int max_attempts, std::uint64_t base_delay_ns, double multiplier,
                         double jitter, std::uint64_t seed)
    : max_attempts_{max_attempts},
      base_delay_ns_{base_delay_ns},
      multiplier_{multiplier},
      jitter_{jitter},
      seed_{seed} {
  PEACHY_CHECK(max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
  PEACHY_CHECK(multiplier >= 1.0, "RetryPolicy: multiplier must be >= 1");
  PEACHY_CHECK(jitter >= 0.0 && jitter < 1.0, "RetryPolicy: jitter must be in [0,1)");
}

std::uint64_t RetryPolicy::delay_ns(int attempt) const noexcept {
  if (attempt < 1) attempt = 1;
  double d = static_cast<double>(base_delay_ns_) *
             std::pow(multiplier_, static_cast<double>(attempt - 1));
  if (jitter_ > 0.0) {
    // Jitter drawn from (seed, attempt), not from a shared stream, so the
    // n-th retry of a given policy always sleeps the same duration.
    rng::SplitMix64 g{rng::derive_seed(seed_, static_cast<std::uint64_t>(attempt))};
    d *= 1.0 + jitter_ * (2.0 * g.next_double() - 1.0);
  }
  return static_cast<std::uint64_t>(d);
}

void RetryPolicy::note_retry(std::uint64_t delay) const {
  if (obs::enabled()) {
    obs::counter("faults.retries").add(1);
    obs::histogram("faults.retry_backoff_ns").note(delay);
  }
  if (delay > 0) std::this_thread::sleep_for(std::chrono::nanoseconds{delay});
}

}  // namespace peachy::faults
