#pragma once
/// \file checkpoint.hpp
/// \brief In-memory checkpoint/restart for the iterative assignments.
///
/// The recovery path for *permanent* faults: an iterative driver
/// periodically serializes its full state into a `CheckpointStore`; after
/// a rank failure the survivors `shrink()` the communicator, reload the
/// latest snapshot, and resume from that iteration with fewer ranks.
///
/// Snapshots are byte blobs built with `BlobWriter`/`BlobReader` — a tiny
/// tagged-field serializer (u64 sizes, raw little-endian PODs) chosen over
/// a textual format because restart equality is *bit* equality: a restored
/// double must be the exact bits that were saved.
///
/// The default store is in-memory and process-wide-shared: the mini-MPI
/// ranks are threads of one process, so "stable storage that survives a
/// rank crash" is simply memory owned by the Machine's controller rather
/// than by any rank.  That stops being true in *launched* worlds — a
/// SIGKILLed process takes its in-memory store with it — so
/// `DurableCheckpointStore` adds an opt-in file backend (atomic
/// tmp+rename, CRC32C-validated, latest-only per key) that survivors or a
/// respawned process read to restore the dead rank's snapshot
/// (DESIGN.md §17).
///
/// Checkpoint discipline for the drivers (kmeans/traffic/heat): the
/// snapshot is taken at an iteration boundary, *after* the collectives of
/// iteration s complete, and records `next_step = s+1`.  Every rank
/// carries the replicated state, but only rank 0 writes (the state is
/// identical by construction — asserted in tests).

#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "support/check.hpp"

namespace peachy::faults {

/// Append-only little serializer for checkpoint blobs.
class BlobWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(const T* data, std::size_t n) {
    put(static_cast<std::uint64_t>(n));
    const auto* p = reinterpret_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + n * sizeof(T));
  }

  template <typename T>
  void put_vec(const std::vector<T>& v) {
    put_span(v.data(), v.size());
  }

  [[nodiscard]] std::vector<std::byte> take() && { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Sequential reader over a blob; throws peachy::Error on truncation.
class BlobReader {
 public:
  explicit BlobReader(const std::vector<std::byte>& bytes) : bytes_{bytes} {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    T v;
    PEACHY_CHECK(pos_ + sizeof(T) <= bytes_.size(), "checkpoint blob truncated");
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> get_vec() {
    const auto n = static_cast<std::size_t>(get<std::uint64_t>());
    PEACHY_CHECK(pos_ + n * sizeof(T) <= bytes_.size(), "checkpoint blob truncated");
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::byte>& bytes_;
  std::size_t pos_ = 0;
};

/// One saved state: the iteration to resume *from* plus the blob.
struct Snapshot {
  std::uint64_t next_step = 0;
  std::vector<std::byte> blob;
};

/// Thread-safe keyed snapshot storage.  Keys name the computation
/// ("kmeans", "traffic", …); `save` overwrites — only the latest snapshot
/// per key is retained (the drivers checkpoint at a fixed cadence and
/// restart wants the most recent state).  The base class *is* the
/// in-memory store; DurableCheckpointStore overrides the three virtuals
/// with a file backend.
class CheckpointStore {
 public:
  CheckpointStore() = default;
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;
  virtual ~CheckpointStore() = default;

  virtual void save(const std::string& key, Snapshot snap) {
    const std::scoped_lock lock{mu_};
    store_[key] = std::move(snap);
  }

  [[nodiscard]] virtual std::optional<Snapshot> load(const std::string& key) const {
    const std::scoped_lock lock{mu_};
    const auto it = store_.find(key);
    if (it == store_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] virtual bool has(const std::string& key) const {
    const std::scoped_lock lock{mu_};
    return store_.contains(key);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Snapshot> store_;
};

/// File-backed CheckpointStore: one file per key under `dir`
/// (`<sanitized key>.ckpt`), written atomically (unique temp file +
/// rename) so a crash mid-save leaves the previous snapshot intact, never
/// a torn file.  The format carries magic, version, and a trailing CRC32C
/// over everything before it; `load()` treats any validation failure like
/// tune's paranoid profile loading — warn, count
/// (`faults.ckpt.corrupt`), and report "no snapshot" so the caller falls
/// back to a fresh start.  `load_strict()` names the problem instead
/// (CheckpointCorruptError) for callers and tests that must distinguish
/// "absent" from "damaged".  Safe for concurrent processes sharing `dir`:
/// rename is atomic and readers see either the old or the new file.
class DurableCheckpointStore final : public CheckpointStore {
 public:
  /// Creates `dir` if missing (one level; parent must exist).
  explicit DurableCheckpointStore(std::string dir);

  void save(const std::string& key, Snapshot snap) override;
  [[nodiscard]] std::optional<Snapshot> load(const std::string& key) const override;
  [[nodiscard]] bool has(const std::string& key) const override;

  /// Like load(), but a file that exists and fails validation throws
  /// CheckpointCorruptError instead of falling back.
  [[nodiscard]] std::optional<Snapshot> load_strict(const std::string& key) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// The file a key maps to (sanitized; exposed for tests and cleanup).
  [[nodiscard]] std::string path_for(const std::string& key) const;

 private:
  std::string dir_;
};

/// Fault-tolerance options threaded through the iterative drivers.  The
/// default ({}) means "no checkpointing" and costs one pointer test per
/// iteration.
struct FtOptions {
  /// Checkpoint every `every` iterations (0 = never).
  int every = 0;
  /// Where snapshots go; owned by the caller (the demo's controller).
  CheckpointStore* store = nullptr;
  /// Snapshot key; also the obs counter suffix.
  std::string key;
  /// Which rank writes snapshots: -1 keeps each driver's default
  /// discipline (rank 0, or every process in launched worlds); >= 0 pins
  /// writing to that single rank — with a shared DurableCheckpointStore
  /// this is how a demo proves survivors can restore a snapshot only the
  /// (now dead) owner ever wrote.
  int owner = -1;

  [[nodiscard]] bool active() const noexcept { return every > 0 && store != nullptr; }
};

}  // namespace peachy::faults
