#include "faults/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "obs/obs.hpp"
#include "rng/splitmix.hpp"
#include "support/check.hpp"

namespace peachy::faults {

namespace {

constexpr std::string_view kKindNames[] = {"crash",        "drop",       "dup",
                                           "delay",        "stall",      "wire_drop",
                                           "wire_dup",     "wire_delay", "wire_corrupt",
                                           "wire_truncate"};

constexpr std::string_view kFrameNames[] = {"data",   "hello", "bye", "failed",
                                            "revoke", "abort", "ping"};

std::optional<FaultKind> kind_from(std::string_view s) noexcept {
  for (std::size_t i = 0; i < std::size(kKindNames); ++i) {
    if (s == kKindNames[i]) return static_cast<FaultKind>(i);
  }
  return std::nullopt;
}

std::optional<int> frame_from(std::string_view s) noexcept {
  for (std::size_t i = 0; i < std::size(kFrameNames); ++i) {
    if (s == kFrameNames[i]) return static_cast<int>(i);
  }
  return std::nullopt;
}

// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint64_t parse_u64(std::string_view v, std::string_view clause) {
  std::uint64_t out = 0;
  PEACHY_CHECK(!v.empty(), "faults: empty number in clause '" + std::string{clause} + "'");
  for (char c : v) {
    PEACHY_CHECK(c >= '0' && c <= '9',
                 "faults: bad number '" + std::string{v} + "' in clause '" + std::string{clause} +
                     "'");
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

double parse_prob(std::string_view v, std::string_view clause) {
  std::string s{v};
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  PEACHY_CHECK(pos == s.size() && p > 0.0 && p <= 1.0,
               "faults: prob must be in (0,1], got '" + s + "' in clause '" + std::string{clause} +
                   "'");
  return p;
}

FaultEvent parse_event(std::string_view clause) {
  const auto at = clause.find('@');
  PEACHY_CHECK(at != std::string_view::npos,
               "faults: expected '<kind>@<fields>' in clause '" + std::string{clause} + "'");
  const auto kind = kind_from(trim(clause.substr(0, at)));
  PEACHY_CHECK(kind.has_value(),
               "faults: unknown fault kind in clause '" + std::string{clause} +
                   "' (want crash|drop|dup|delay|stall|wire_drop|wire_dup|wire_delay|"
                   "wire_corrupt|wire_truncate)");

  FaultEvent e;
  e.kind = *kind;
  std::string_view rest = clause.substr(at + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    std::string_view field = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (field.empty()) continue;
    const auto eq = field.find('=');
    PEACHY_CHECK(eq != std::string_view::npos,
                 "faults: expected 'key=value' in clause '" + std::string{clause} + "'");
    const std::string_view key = trim(field.substr(0, eq));
    const std::string_view val = trim(field.substr(eq + 1));
    if (key == "rank") {
      e.rank = static_cast<int>(parse_u64(val, clause));
    } else if (key == "dest") {
      e.dest = static_cast<int>(parse_u64(val, clause));
    } else if (key == "tag") {
      e.tag = static_cast<int>(parse_u64(val, clause));
    } else if (key == "step") {
      e.step = parse_u64(val, clause);
    } else if (key == "prob") {
      e.prob = parse_prob(val, clause);
    } else if (key == "ns") {
      e.ns = parse_u64(val, clause);
    } else if (key == "frame") {
      const auto f = frame_from(val);
      PEACHY_CHECK(f.has_value(), "faults: unknown frame kind '" + std::string{val} +
                                      "' in clause '" + std::string{clause} +
                                      "' (want data|hello|bye|failed|revoke|abort|ping)");
      e.frame = *f;
    } else {
      PEACHY_CHECK(false, "faults: unknown field '" + std::string{key} + "' in clause '" +
                              std::string{clause} + "'");
    }
  }

  PEACHY_CHECK(e.step != kAnyStep || e.prob > 0.0,
               "faults: clause '" + std::string{clause} + "' needs step=N or prob=P");
  PEACHY_CHECK(e.step == kAnyStep || e.prob == 0.0,
               "faults: clause '" + std::string{clause} + "' cannot have both step and prob");
  if (e.kind == FaultKind::crash) {
    PEACHY_CHECK(e.rank != kAnyScope,
                 "faults: crash needs rank=N in clause '" + std::string{clause} + "'");
  }
  if (e.kind == FaultKind::delay || e.kind == FaultKind::stall ||
      e.kind == FaultKind::wire_delay) {
    PEACHY_CHECK(e.ns > 0, "faults: " + std::string{to_string(e.kind)} +
                               " needs ns=N in clause '" + std::string{clause} + "'");
  }
  PEACHY_CHECK(e.frame == kAnyScope || is_wire_kind(e.kind),
               "faults: frame= only applies to wire_* kinds in clause '" + std::string{clause} +
                   "'");
  PEACHY_CHECK(e.tag == kAnyScope || !is_wire_kind(e.kind),
               "faults: tag= does not apply to wire_* kinds (the wire sees frames, "
               "not tags) in clause '" + std::string{clause} + "'");
  return e;
}

}  // namespace

std::string_view to_string(FaultKind k) noexcept {
  return kKindNames[static_cast<std::size_t>(k)];
}

std::string_view wire_frame_name(int frame) noexcept {
  if (frame < 0 || static_cast<std::size_t>(frame) >= std::size(kFrameNames)) return "?";
  return kFrameNames[static_cast<std::size_t>(frame)];
}

FaultPlan FaultPlan::parse(const std::string& spec_or_file) {
  std::string spec = spec_or_file;
  if (std::ifstream file{spec_or_file}; file.good()) {
    std::ostringstream os;
    os << file.rdbuf();
    spec = os.str();
  }

  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const auto sep = rest.find_first_of(";\n");
    std::string_view clause = trim(rest.substr(0, sep));
    rest = sep == std::string_view::npos ? std::string_view{} : rest.substr(sep + 1);
    if (clause.empty() || clause.front() == '#') continue;
    if (clause.substr(0, 5) == "seed=") {
      plan.seed_ = parse_u64(trim(clause.substr(5)), clause);
    } else {
      plan.events_.push_back(parse_event(clause));
    }
  }
  return plan;
}

const FaultPlan* FaultPlan::from_env() {
  static const std::optional<FaultPlan> plan = []() -> std::optional<FaultPlan> {
    const char* env = std::getenv("PEACHY_FAULTS");
    if (env == nullptr || *env == '\0') return std::nullopt;
    return FaultPlan::parse(env);
  }();
  return plan.has_value() ? &*plan : nullptr;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  for (const FaultEvent& e : events_) {
    os << "; " << faults::to_string(e.kind) << '@';
    bool first = true;
    const auto field = [&](std::string_view key, auto value) {
      if (!first) os << ',';
      first = false;
      os << key << '=' << value;
    };
    if (e.rank != kAnyScope) field("rank", e.rank);
    if (e.dest != kAnyScope) field("dest", e.dest);
    if (e.tag != kAnyScope) field("tag", e.tag);
    if (e.step != kAnyStep) field("step", e.step);
    if (e.prob > 0.0) field("prob", e.prob);
    if (e.ns > 0) field("ns", e.ns);
    if (e.frame != kAnyScope) field("frame", wire_frame_name(e.frame));
  }
  return os.str();
}

FaultPlan& FaultPlan::add(const FaultEvent& e) {
  events_.push_back(e);
  return *this;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int nranks)
    : plan_{plan}, steps_(static_cast<std::size_t>(nranks), 0) {}

bool FaultInjector::fires(const FaultEvent& e, int rank, std::uint64_t step) const {
  if (e.rank != kAnyScope && e.rank != rank) return false;
  if (e.step != kAnyStep) return e.step == step;
  // Probabilistic: a draw that is a pure function of (seed, kind, rank,
  // step), so replay is schedule-independent.
  rng::SplitMix64 g{rng::derive_seed(
      plan_.seed(), (static_cast<std::uint64_t>(e.kind) << 40) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 44) ^
                        step)};
  return g.next_double() < e.prob;
}

void FaultInjector::record(FaultKind kind, int rank, std::uint64_t step, int dest, int tag) {
  if (obs::enabled()) {
    obs::counter("faults.injected." + std::string{to_string(kind)}).add(1);
  }
  const std::scoped_lock lock{log_mu_};
  log_.push_back(Record{kind, rank, step, dest, tag});
}

SendAction FaultInjector::on_send(int source, int dest, int tag) {
  const std::uint64_t step = steps_[static_cast<std::size_t>(source)]++;
  SendAction a;
  for (const FaultEvent& e : plan_.events()) {
    if (is_wire_kind(e.kind)) continue;  // handled by WireInjector, below the machine
    if (e.kind != FaultKind::crash &&
        ((e.dest != kAnyScope && e.dest != dest) || (e.tag != kAnyScope && e.tag != tag))) {
      continue;
    }
    if (!fires(e, source, step)) continue;
    switch (e.kind) {
      case FaultKind::crash: a.crash = true; break;
      case FaultKind::drop: a.drop = true; break;
      case FaultKind::duplicate: a.duplicate = true; break;
      case FaultKind::delay: a.delay_ns += e.ns; break;
      case FaultKind::stall: a.stall_ns += e.ns; break;
      default: break;  // wire kinds filtered above
    }
    record(e.kind, source, step, dest, tag);
    if (a.crash) break;  // the rank dies before this send takes effect
  }
  return a;
}

RecvAction FaultInjector::on_recv(int rank) {
  const std::uint64_t step = steps_[static_cast<std::size_t>(rank)]++;
  RecvAction a;
  for (const FaultEvent& e : plan_.events()) {
    // Only rank-scoped kinds apply at a receive.
    if (e.kind != FaultKind::crash && e.kind != FaultKind::stall) continue;
    if (!fires(e, rank, step)) continue;
    if (e.kind == FaultKind::crash) {
      a.crash = true;
    } else {
      a.stall_ns += e.ns;
    }
    record(e.kind, rank, step, kAnyScope, kAnyScope);
    if (a.crash) break;
  }
  return a;
}

std::vector<FaultInjector::Record> FaultInjector::log() const {
  std::vector<Record> out;
  {
    const std::scoped_lock lock{log_mu_};
    out = log_;
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.step != b.step) return a.step < b.step;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return out;
}

std::string FaultInjector::log_string() const {
  std::ostringstream os;
  for (const Record& r : log()) {
    os << to_string(r.kind) << " rank=" << r.rank << " step=" << r.step;
    if (r.dest != kAnyScope) os << " dest=" << r.dest;
    if (r.tag != kAnyScope) os << " tag=" << r.tag;
    os << '\n';
  }
  return os.str();
}

WireInjector::WireInjector(const FaultPlan& plan) : plan_{plan} {
  for (const FaultEvent& e : plan_.events()) {
    if (is_wire_kind(e.kind)) armed_ = true;
  }
}

bool WireInjector::fires(const FaultEvent& e, int src, std::uint64_t step) const {
  // Same pure-function-of-(seed, kind, src, step) scheme as FaultInjector —
  // the kind is folded in, so a wire event and a machine event at the same
  // (rank, step) draw independently.
  if (e.rank != kAnyScope && e.rank != src) return false;
  if (e.step != kAnyStep) return e.step == step;
  rng::SplitMix64 g{rng::derive_seed(
      plan_.seed(), (static_cast<std::uint64_t>(e.kind) << 40) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 44) ^
                        step)};
  return g.next_double() < e.prob;
}

WireAction WireInjector::on_frame(int src, int dst, int frame) {
  if (!armed_) return {};
  WireAction a;
  std::uint64_t step = 0;
  {
    const std::scoped_lock lock{mu_};
    step = steps_[{src, frame}]++;
  }
  for (const FaultEvent& e : plan_.events()) {
    if (!is_wire_kind(e.kind)) continue;
    // Unscoped events touch only data frames; the control protocol
    // (failed/revoke/bye) is chaos-tested on explicit frame= request only.
    if (e.frame == kAnyScope ? frame != kWireFrameData : e.frame != frame) continue;
    if (e.dest != kAnyScope && e.dest != dst) continue;
    if (!fires(e, src, step)) continue;
    switch (e.kind) {
      case FaultKind::wire_drop: a.drop = true; break;
      case FaultKind::wire_dup: a.duplicate = true; break;
      case FaultKind::wire_delay: a.delay_ns += e.ns; break;
      case FaultKind::wire_corrupt: a.corrupt = true; break;
      case FaultKind::wire_truncate: a.truncate = true; break;
      default: break;
    }
    if (obs::enabled()) {
      // faults.wire.drop / dup / delay / corrupt / truncate.
      constexpr std::string_view kPrefix = "wire_";
      obs::counter("faults.wire." +
                   std::string{to_string(e.kind).substr(kPrefix.size())})
          .add(1);
    }
    const std::scoped_lock lock{mu_};
    log_.push_back(Record{e.kind, src, step, dst, frame});
  }
  return a;
}

std::vector<WireInjector::Record> WireInjector::log() const {
  std::vector<Record> out;
  {
    const std::scoped_lock lock{mu_};
    out = log_;
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.frame != b.frame) return a.frame < b.frame;
    if (a.step != b.step) return a.step < b.step;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return out;
}

std::string WireInjector::log_string() const {
  std::ostringstream os;
  for (const Record& r : log()) {
    os << to_string(r.kind) << " rank=" << r.src << " step=" << r.step;
    if (r.dst != kAnyScope) os << " dest=" << r.dst;
    os << " frame=" << wire_frame_name(r.frame) << '\n';
  }
  return os.str();
}

namespace wire {

namespace {
// Readers (transport send paths) go through the atomic; the owner slots
// keep the current injector alive, plus the previously retired one for a
// one-generation grace period — a send straggling out of an earlier run's
// teardown that loaded the old pointer just before a reconfigure must not
// dereference freed memory.  configure() itself races with nothing by
// contract (run entry is single-threaded).
std::mutex g_wire_mu;
std::shared_ptr<WireInjector> g_wire_owner;    // NOLINT(cert-err58-cpp)
std::shared_ptr<WireInjector> g_wire_retired;  // NOLINT(cert-err58-cpp)
std::atomic<WireInjector*> g_wire_active{nullptr};
}  // namespace

void configure(const FaultPlan* plan) {
  const std::scoped_lock lock{g_wire_mu};
  std::shared_ptr<WireInjector> next;
  if (plan != nullptr) {
    auto candidate = std::make_shared<WireInjector>(*plan);
    if (candidate->armed()) next = std::move(candidate);
  }
  g_wire_active.store(next.get(), std::memory_order_release);
  g_wire_retired = std::move(g_wire_owner);
  g_wire_owner = std::move(next);
}

WireInjector* injector() noexcept {
  return g_wire_active.load(std::memory_order_acquire);
}

}  // namespace wire

}  // namespace peachy::faults
