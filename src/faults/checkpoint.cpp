/// \file checkpoint.cpp
/// \brief DurableCheckpointStore — the file-backed checkpoint backend
/// (checkpoint.hpp, DESIGN.md §17).
///
/// File format (little-endian, fixed):
///
///   u32 magic "PCK1"  u32 version  u64 next_step  u64 blob_bytes
///   [blob]  u32 crc32c(everything before the crc)
///
/// Writes go to a unique temp file in the same directory, fsync, then
/// rename over the destination — the only publication step is atomic, so
/// a reader (same process, another survivor, or a respawned rank) sees
/// either the previous complete snapshot or the new complete snapshot,
/// never a torn one.  A crash between write and rename leaves a stray
/// .tmp file that is never read.

#include "faults/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "faults/faults.hpp"
#include "kernels/crc32c.hpp"
#include "obs/obs.hpp"

namespace peachy::faults {

namespace {

constexpr std::uint32_t kCkptMagic = 0x504B4331;  // "PCK1"
constexpr std::uint32_t kCkptVersion = 1;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void write_all(int fd, const std::byte* data, std::size_t n, const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      PEACHY_CHECK(false, "durable checkpoint: write to '" + path +
                              "' failed: " + std::strerror(err));
    }
    off += static_cast<std::size_t>(w);
  }
}

/// Read a whole file; nullopt when it does not exist.  I/O errors other
/// than ENOENT are corruption-for-our-purposes (caller maps them).
std::optional<std::vector<std::byte>> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw CheckpointCorruptError{"durable checkpoint: cannot open '" + path +
                                 "': " + std::strerror(errno)};
  }
  std::vector<std::byte> bytes;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw CheckpointCorruptError{"durable checkpoint: read of '" + path +
                                   "' failed: " + std::strerror(err)};
    }
    if (r == 0) break;
    bytes.insert(bytes.end(), buf, buf + r);
  }
  ::close(fd);
  return bytes;
}

}  // namespace

DurableCheckpointStore::DurableCheckpointStore(std::string dir) : dir_{std::move(dir)} {
  PEACHY_CHECK(!dir_.empty(), "durable checkpoint: empty directory");
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    const int err = errno;
    PEACHY_CHECK(false,
                 "durable checkpoint: cannot create '" + dir_ + "': " + std::strerror(err));
  }
}

std::string DurableCheckpointStore::path_for(const std::string& key) const {
  // Keys name computations ("traffic"); keep them filesystem-safe without
  // surprising the caller: alnum . _ - pass through, anything else maps
  // to '_'.
  std::string name;
  name.reserve(key.size());
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    name.push_back(ok ? c : '_');
  }
  if (name.empty()) name.push_back('_');
  return dir_ + "/" + name + ".ckpt";
}

void DurableCheckpointStore::save(const std::string& key, Snapshot snap) {
  const std::string path = path_for(key);
  std::vector<std::byte> out;
  out.reserve(28 + snap.blob.size() + 4);
  put_u32(out, kCkptMagic);
  put_u32(out, kCkptVersion);
  put_u64(out, snap.next_step);
  put_u64(out, static_cast<std::uint64_t>(snap.blob.size()));
  out.insert(out.end(), snap.blob.begin(), snap.blob.end());
  put_u32(out, kernels::crc32c(0, out.data(), out.size()));

  // Unique temp name per process: concurrent savers (distinct ranks
  // pointed at one dir) never clobber each other's in-progress file, and
  // the rename decides who published last.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    const int err = errno;
    PEACHY_CHECK(false, "durable checkpoint: cannot create '" + tmp +
                            "': " + std::strerror(err));
  }
  write_all(fd, out.data(), out.size(), tmp);
  ::fsync(fd);  // the blob must hit stable storage before it is published
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    PEACHY_CHECK(false, "durable checkpoint: rename '" + tmp + "' -> '" + path +
                            "' failed: " + std::strerror(err));
  }
  if (obs::enabled()) obs::counter("faults.ckpt.saved").add(1);
}

std::optional<Snapshot> DurableCheckpointStore::load_strict(const std::string& key) const {
  const std::string path = path_for(key);
  const auto bytes = read_file(path);
  if (!bytes.has_value()) return std::nullopt;

  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
  constexpr std::size_t kCrcBytes = 4;
  if (bytes->size() < kHeaderBytes + kCrcBytes) {
    throw CheckpointCorruptError{"durable checkpoint '" + path + "' truncated (" +
                                 std::to_string(bytes->size()) + " bytes)"};
  }

  const auto get_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    std::memcpy(&v, bytes->data() + off, sizeof v);
    return v;
  };
  const auto get_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes->data() + off, sizeof v);
    return v;
  };

  // CRC first: a bit flip anywhere (magic and version included) is
  // reported as corruption, not misdiagnosed from the damaged field.
  const std::size_t body = bytes->size() - kCrcBytes;
  const std::uint32_t want = get_u32(body);
  const std::uint32_t got = kernels::crc32c(0, bytes->data(), body);
  if (want != got) {
    throw CheckpointCorruptError{"durable checkpoint '" + path + "' failed CRC32C"};
  }
  if (get_u32(0) != kCkptMagic) {
    throw CheckpointCorruptError{"durable checkpoint '" + path + "' has bad magic"};
  }
  if (const std::uint32_t ver = get_u32(4); ver != kCkptVersion) {
    throw CheckpointCorruptError{"durable checkpoint '" + path + "' version mismatch: got " +
                                 std::to_string(ver) + ", this build reads " +
                                 std::to_string(kCkptVersion)};
  }
  const std::uint64_t blob_bytes = get_u64(16);
  if (blob_bytes != body - kHeaderBytes) {
    throw CheckpointCorruptError{"durable checkpoint '" + path +
                                 "' length field disagrees with file size"};
  }

  Snapshot snap;
  snap.next_step = get_u64(8);
  snap.blob.assign(bytes->begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
                   bytes->begin() + static_cast<std::ptrdiff_t>(body));
  return snap;
}

std::optional<Snapshot> DurableCheckpointStore::load(const std::string& key) const {
  try {
    return load_strict(key);
  } catch (const CheckpointCorruptError& e) {
    // Paranoid-load discipline (like tune's profile loader): a damaged
    // snapshot must never crash recovery or restore garbage — warn, count,
    // fresh start.
    std::cerr << "peachy: " << e.what() << " — ignoring it (fresh start)\n";
    if (obs::enabled()) obs::counter("faults.ckpt.corrupt").add(1);
    return std::nullopt;
  }
}

bool DurableCheckpointStore::has(const std::string& key) const {
  struct stat st {};
  return ::stat(path_for(key).c_str(), &st) == 0;
}

}  // namespace peachy::faults
