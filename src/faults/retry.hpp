#pragma once
/// \file retry.hpp
/// \brief RetryPolicy — bounded retries with deterministic backoff.
///
/// The recovery knob for *transient* faults (dropped or timed-out
/// messages): retry the operation up to `max_attempts` times, sleeping
/// `base_delay * multiplier^attempt` between tries, with a jitter fraction
/// drawn deterministically from peachy::rng (seeded per policy, so two
/// runs with the same seed back off identically — replay stays
/// bit-reproducible even through recovery).
///
/// Only `TransientError` (and subclasses, e.g. TimeoutError) is retried:
/// a `RankFailedError` means the peer is gone and retrying the same
/// operation cannot succeed — that belongs to the shrink()/checkpoint
/// path, so it propagates immediately.

#include <cstdint>
#include <functional>

#include "faults/faults.hpp"

namespace peachy::faults {

class RetryPolicy {
 public:
  /// `seed` feeds the jitter stream; everything else is the usual
  /// exponential-backoff tuple.  `jitter` is the +/- fraction applied to
  /// each delay (0 disables it; 0.1 = up to ±10%).
  explicit RetryPolicy(int max_attempts = 3, std::uint64_t base_delay_ns = 100'000,
                       double multiplier = 2.0, double jitter = 0.1, std::uint64_t seed = 0);

  [[nodiscard]] int max_attempts() const noexcept { return max_attempts_; }

  /// The backoff before retry number `attempt` (1-based: the sleep after
  /// the attempt-th failure).  Pure function of (policy, attempt) — used
  /// directly by tests to assert determinism.
  [[nodiscard]] std::uint64_t delay_ns(int attempt) const noexcept;

  /// Run `op` (attempt 1), retrying on TransientError with backoff until
  /// it succeeds or attempts are exhausted (the last error is rethrown).
  /// Retries/latency are exported via obs (`faults.retries`,
  /// `faults.retry_backoff_ns`).  Non-transient exceptions propagate
  /// immediately without retry.
  template <typename F>
  auto run(F&& op) const -> decltype(op()) {
    for (int attempt = 1;; ++attempt) {
      try {
        return op();
      } catch (const TransientError&) {
        if (attempt >= max_attempts_) throw;
        note_retry(delay_ns(attempt));
      }
    }
  }

 private:
  /// Record the retry in obs and sleep the backoff.
  void note_retry(std::uint64_t delay) const;

  int max_attempts_;
  std::uint64_t base_delay_ns_;
  double multiplier_;
  double jitter_;
  std::uint64_t seed_;
};

}  // namespace peachy::faults
