#pragma once
/// \file plan.hpp
/// \brief FaultPlan + FaultInjector — deterministic, seeded fault injection.
///
/// A `FaultPlan` is a serializable schedule of injectable events, scoped
/// by world rank, tag, and per-rank operation step.  The mini-MPI machine
/// consults it inside `post` and `take` — the single choke points every
/// transport path (copy, move, pooled, collective-internal) funnels
/// through — so an injected fault covers them all.
///
/// **Determinism.**  An event fires as a pure function of
/// (plan seed, event kind, rank, step): deterministic events fire when the
/// rank's operation counter reaches `step`; probabilistic events hash
/// (seed, kind, rank, step) through SplitMix64 and fire when the resulting
/// uniform draw is below `prob`.  A rank's operation counter advances in
/// its own program order, so the same plan + seed replays the identical
/// event sequence bit-for-bit regardless of thread scheduling.  The
/// injector records every fired event; `log_string()` renders the record
/// in canonical (rank, step) order for replay diffing.
///
/// **Spec grammar** (`PEACHY_FAULTS=<spec|file>`; if the value names a
/// readable file, its contents are parsed instead):
///
///   spec    := clause (';' clause)*            (newlines count as ';')
///   clause  := 'seed=' N | event
///   event   := kind '@' field (',' field)*
///   kind    := 'crash' | 'drop' | 'dup' | 'delay' | 'stall'
///            | 'wire_drop' | 'wire_dup' | 'wire_delay'
///            | 'wire_corrupt' | 'wire_truncate'
///   field   := 'rank='N | 'dest='N | 'tag='N | 'step='N
///            | 'prob='F | 'ns='N | 'frame='NAME (omitted field = wildcard;
///                                                frame and tag are wire-/
///                                                machine-level respectively)
///
/// Examples:
///   crash@rank=2,step=40          rank 2 dies at its 40th MPI operation
///   drop@rank=0,tag=7,step=3      rank 0's send at step 3 (tag 7) vanishes
///   drop@prob=0.01                every send is dropped with p=1%
///   delay@rank=1,step=5,ns=2e6    (integers only; 2000000) delivery delay
///   dup@rank=3,step=9             message delivered twice
///   stall@rank=2,step=10,ns=5000000  rank 2 sleeps 5ms before the op
///
/// Semantics per kind:
///   crash — the rank throws RankKilled at the matching operation and is
///           marked failed (requires rank and either step or prob);
///   drop  — the posted message is destroyed instead of enqueued;
///   dup   — the message is enqueued twice (the duplicate shares payload);
///   delay — the poster sleeps `ns` before enqueueing (models a slow link;
///           per-sender ordering is preserved);
///   stall — the rank sleeps `ns` before executing the operation (models a
///           slow rank / OS jitter).
///
/// drop/dup/delay match send operations; stall and crash match both sends
/// and receives (the step counter covers every MPI operation of a rank).
///
/// **Wire events** (`wire_*`) inject *below* the machine, at the transport
/// send boundary of the cross-process backends (shm ring push, socket
/// write) — the paths a production deployment actually loses frames on.
/// They are consulted by `WireInjector` (one per process, armed by
/// `faults::wire::configure`), not by `FaultInjector`, and their step
/// counter is *per (source, frame kind)*: the n-th data frame a rank puts
/// on the wire, in that rank's program order, so replay is deterministic
/// exactly like the machine-level events.  `rank=` scopes the sender,
/// `dest=` the receiving process, `frame=` the frame kind by name
/// (`data|hello|bye|failed|revoke|abort|ping`).  An event with *no*
/// `frame=` field matches **only data frames** — control frames carry the
/// failure/revocation protocol itself and are chaos-tested only on
/// explicit request.  Semantics per kind:
///   wire_drop     — the frame is never written to the wire;
///   wire_dup      — the frame is written twice;
///   wire_delay    — the sender sleeps `ns` before the write;
///   wire_corrupt  — a payload byte (or the CRC, for empty payloads) is
///                   flipped *after* the CRC seal, so the receiver's
///                   integrity check must catch it;
///   wire_truncate — only a prefix reaches the wire (socket: short write
///                   desyncs the stream; shm: the tail is zeroed).
///
/// Note on `frame=ping`: heartbeat frames are emitted by the pump on a
/// timer, so their step counters are timing-dependent — injecting on them
/// works but is not replay-deterministic.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace peachy::faults {

enum class FaultKind : std::uint8_t {
  crash,
  drop,
  duplicate,
  delay,
  stall,
  wire_drop,
  wire_dup,
  wire_delay,
  wire_corrupt,
  wire_truncate,
};

/// True for the transport-level kinds handled by WireInjector (skipped by
/// FaultInjector, and vice versa).
[[nodiscard]] constexpr bool is_wire_kind(FaultKind k) noexcept {
  return k == FaultKind::wire_drop || k == FaultKind::wire_dup || k == FaultKind::wire_delay ||
         k == FaultKind::wire_corrupt || k == FaultKind::wire_truncate;
}

/// Frame-kind scope values for wire events.  These mirror
/// `mpi::detail::WireKind` numerically — the faults layer sits below mpi
/// and cannot include wire.hpp; a static_assert there pins the pairing.
inline constexpr int kWireFrameData = 0;
inline constexpr int kWireFrameHello = 1;
inline constexpr int kWireFrameBye = 2;
inline constexpr int kWireFrameFailed = 3;
inline constexpr int kWireFrameRevoke = 4;
inline constexpr int kWireFrameAbort = 5;
inline constexpr int kWireFramePing = 6;

/// Canonical frame-kind name ("data", "failed", ...); "?" when out of range.
[[nodiscard]] std::string_view wire_frame_name(int frame) noexcept;

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// Matches any rank / tag / destination.
inline constexpr int kAnyScope = -1;
/// Matches any step (the event must then carry `prob`).
inline constexpr std::uint64_t kAnyStep = ~std::uint64_t{0};

/// One injectable event.  Unset scope fields are wildcards.
struct FaultEvent {
  FaultKind kind = FaultKind::drop;
  int rank = kAnyScope;            ///< acting rank (sender for send faults)
  int dest = kAnyScope;            ///< destination scope (send faults only)
  int tag = kAnyScope;             ///< tag scope (send faults only)
  std::uint64_t step = kAnyStep;   ///< the rank's operation index, 0-based
  double prob = 0.0;               ///< >0: fire probabilistically instead
  std::uint64_t ns = 0;            ///< delay/stall duration
  int frame = kAnyScope;           ///< wire events: frame-kind scope (kWireFrame*);
                                   ///< kAnyScope = data frames only

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A seeded, serializable schedule of fault events.
class FaultPlan {
 public:
  /// Parse a spec string, or the contents of the file it names.  Throws
  /// peachy::Error with the offending clause on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec_or_file);

  /// The process-wide plan from `PEACHY_FAULTS`, parsed once; nullptr when
  /// the variable is unset or empty.
  [[nodiscard]] static const FaultPlan* from_env();

  /// Canonical rendering; `parse(to_string())` reproduces the plan.
  [[nodiscard]] std::string to_string() const;

  FaultPlan& set_seed(std::uint64_t seed) noexcept {
    seed_ = seed;
    return *this;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  FaultPlan& add(const FaultEvent& e);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultEvent> events_;
};

/// What the transport must do to one send (combinable: a message can be
/// both delayed and duplicated by distinct events).
struct SendAction {
  bool crash = false;
  bool drop = false;
  bool duplicate = false;
  std::uint64_t delay_ns = 0;
  std::uint64_t stall_ns = 0;
};

/// What the transport must do at one receive entry.
struct RecvAction {
  bool crash = false;
  std::uint64_t stall_ns = 0;
};

/// Per-machine runtime state of a plan: per-rank operation counters plus
/// the record of fired events.  on_send/on_recv are called by the acting
/// rank's own thread (the mini-MPI calling discipline), so the counters
/// advance in program order; the fired-event log is mutex-protected.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int nranks);

  /// Consult the plan for rank `source`'s next operation, a send to
  /// `dest` with `tag`.  Advances the rank's step counter.
  [[nodiscard]] SendAction on_send(int source, int dest, int tag);

  /// Consult the plan for rank `rank`'s next operation, a receive.
  /// Advances the rank's step counter.
  [[nodiscard]] RecvAction on_recv(int rank);

  /// One fired event, as recorded.
  struct Record {
    FaultKind kind;
    int rank;
    std::uint64_t step;
    int dest;  ///< kAnyScope for recv-side events
    int tag;   ///< kAnyScope for recv-side events

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// Every fired event so far, in canonical (rank, step, kind) order —
  /// deterministic for a given plan + seed regardless of scheduling.
  [[nodiscard]] std::vector<Record> log() const;

  /// `log()` rendered one event per line (`crash rank=2 step=40`), the
  /// replay-determinism artifact scripts diff.
  [[nodiscard]] std::string log_string() const;

 private:
  [[nodiscard]] bool fires(const FaultEvent& e, int rank, std::uint64_t step) const;
  void record(FaultKind kind, int rank, std::uint64_t step, int dest, int tag);

  const FaultPlan plan_;  ///< copied: the injector outlives caller-built plans
  std::vector<std::uint64_t> steps_;  ///< per-rank op counters (owner-thread only)
  mutable std::mutex log_mu_;
  std::vector<Record> log_;
};

/// What the wire must do to one outbound frame (combinable, like
/// SendAction: one frame can be delayed *and* duplicated).  corrupt and
/// truncate are mutually destructive; when both fire, truncate wins.
struct WireAction {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  bool truncate = false;
  std::uint64_t delay_ns = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop || duplicate || corrupt || truncate || delay_ns != 0;
  }
};

/// Runtime state of a plan's wire events: per-(source, frame kind) frame
/// counters plus the fired-event record.  Unlike FaultInjector, on_frame
/// may be called from any thread (rank threads and the transport pump), so
/// the counters live under the log mutex — acceptable because transports
/// consult the injector only while a plan with wire events is armed.
class WireInjector {
 public:
  explicit WireInjector(const FaultPlan& plan);

  /// True when the plan contains at least one wire event.
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Consult the plan for the next frame of kind `frame` from process/rank
  /// `src` to process `dst`.  Advances the (src, frame) counter.
  [[nodiscard]] WireAction on_frame(int src, int dst, int frame);

  /// One fired wire event, as recorded.
  struct Record {
    FaultKind kind;
    int src;
    std::uint64_t step;
    int dst;
    int frame;

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// Fired events in canonical (src, frame, step, kind) order —
  /// deterministic for a given plan + seed regardless of scheduling.
  [[nodiscard]] std::vector<Record> log() const;

  /// `log()` rendered one event per line
  /// (`wire_drop rank=0 step=12 dest=1 frame=data`), matching
  /// FaultInjector::log_string for replay diffing.
  [[nodiscard]] std::string log_string() const;

 private:
  [[nodiscard]] bool fires(const FaultEvent& e, int src, std::uint64_t step) const;

  const FaultPlan plan_;
  bool armed_ = false;
  mutable std::mutex mu_;
  std::map<std::pair<int, int>, std::uint64_t> steps_;  ///< (src, frame) -> next step
  std::vector<Record> log_;
};

namespace wire {

/// Install the process-wide wire injector from `plan` (nullptr or a plan
/// with no wire events disarms).  Called by mpi::run at run entry — the
/// transports are engine-level singletons that outlive any one run, so the
/// active plan is process state, not machine state.  Replaces any previous
/// injector and resets its log.  Not thread-safe against concurrent sends;
/// run entry is single-threaded by construction.
void configure(const FaultPlan* plan);

/// The armed injector, or nullptr when wire injection is off (the common
/// case — transports check this one atomic load per frame).
[[nodiscard]] WireInjector* injector() noexcept;

}  // namespace wire

}  // namespace peachy::faults
