#pragma once
/// \file plan.hpp
/// \brief FaultPlan + FaultInjector — deterministic, seeded fault injection.
///
/// A `FaultPlan` is a serializable schedule of injectable events, scoped
/// by world rank, tag, and per-rank operation step.  The mini-MPI machine
/// consults it inside `post` and `take` — the single choke points every
/// transport path (copy, move, pooled, collective-internal) funnels
/// through — so an injected fault covers them all.
///
/// **Determinism.**  An event fires as a pure function of
/// (plan seed, event kind, rank, step): deterministic events fire when the
/// rank's operation counter reaches `step`; probabilistic events hash
/// (seed, kind, rank, step) through SplitMix64 and fire when the resulting
/// uniform draw is below `prob`.  A rank's operation counter advances in
/// its own program order, so the same plan + seed replays the identical
/// event sequence bit-for-bit regardless of thread scheduling.  The
/// injector records every fired event; `log_string()` renders the record
/// in canonical (rank, step) order for replay diffing.
///
/// **Spec grammar** (`PEACHY_FAULTS=<spec|file>`; if the value names a
/// readable file, its contents are parsed instead):
///
///   spec    := clause (';' clause)*            (newlines count as ';')
///   clause  := 'seed=' N | event
///   event   := kind '@' field (',' field)*
///   kind    := 'crash' | 'drop' | 'dup' | 'delay' | 'stall'
///   field   := 'rank='N | 'dest='N | 'tag='N | 'step='N
///            | 'prob='F | 'ns='N                (omitted field = wildcard)
///
/// Examples:
///   crash@rank=2,step=40          rank 2 dies at its 40th MPI operation
///   drop@rank=0,tag=7,step=3      rank 0's send at step 3 (tag 7) vanishes
///   drop@prob=0.01                every send is dropped with p=1%
///   delay@rank=1,step=5,ns=2e6    (integers only; 2000000) delivery delay
///   dup@rank=3,step=9             message delivered twice
///   stall@rank=2,step=10,ns=5000000  rank 2 sleeps 5ms before the op
///
/// Semantics per kind:
///   crash — the rank throws RankKilled at the matching operation and is
///           marked failed (requires rank and either step or prob);
///   drop  — the posted message is destroyed instead of enqueued;
///   dup   — the message is enqueued twice (the duplicate shares payload);
///   delay — the poster sleeps `ns` before enqueueing (models a slow link;
///           per-sender ordering is preserved);
///   stall — the rank sleeps `ns` before executing the operation (models a
///           slow rank / OS jitter).
///
/// drop/dup/delay match send operations; stall and crash match both sends
/// and receives (the step counter covers every MPI operation of a rank).

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace peachy::faults {

enum class FaultKind : std::uint8_t { crash, drop, duplicate, delay, stall };

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// Matches any rank / tag / destination.
inline constexpr int kAnyScope = -1;
/// Matches any step (the event must then carry `prob`).
inline constexpr std::uint64_t kAnyStep = ~std::uint64_t{0};

/// One injectable event.  Unset scope fields are wildcards.
struct FaultEvent {
  FaultKind kind = FaultKind::drop;
  int rank = kAnyScope;            ///< acting rank (sender for send faults)
  int dest = kAnyScope;            ///< destination scope (send faults only)
  int tag = kAnyScope;             ///< tag scope (send faults only)
  std::uint64_t step = kAnyStep;   ///< the rank's operation index, 0-based
  double prob = 0.0;               ///< >0: fire probabilistically instead
  std::uint64_t ns = 0;            ///< delay/stall duration

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A seeded, serializable schedule of fault events.
class FaultPlan {
 public:
  /// Parse a spec string, or the contents of the file it names.  Throws
  /// peachy::Error with the offending clause on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec_or_file);

  /// The process-wide plan from `PEACHY_FAULTS`, parsed once; nullptr when
  /// the variable is unset or empty.
  [[nodiscard]] static const FaultPlan* from_env();

  /// Canonical rendering; `parse(to_string())` reproduces the plan.
  [[nodiscard]] std::string to_string() const;

  FaultPlan& set_seed(std::uint64_t seed) noexcept {
    seed_ = seed;
    return *this;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  FaultPlan& add(const FaultEvent& e);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultEvent> events_;
};

/// What the transport must do to one send (combinable: a message can be
/// both delayed and duplicated by distinct events).
struct SendAction {
  bool crash = false;
  bool drop = false;
  bool duplicate = false;
  std::uint64_t delay_ns = 0;
  std::uint64_t stall_ns = 0;
};

/// What the transport must do at one receive entry.
struct RecvAction {
  bool crash = false;
  std::uint64_t stall_ns = 0;
};

/// Per-machine runtime state of a plan: per-rank operation counters plus
/// the record of fired events.  on_send/on_recv are called by the acting
/// rank's own thread (the mini-MPI calling discipline), so the counters
/// advance in program order; the fired-event log is mutex-protected.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int nranks);

  /// Consult the plan for rank `source`'s next operation, a send to
  /// `dest` with `tag`.  Advances the rank's step counter.
  [[nodiscard]] SendAction on_send(int source, int dest, int tag);

  /// Consult the plan for rank `rank`'s next operation, a receive.
  /// Advances the rank's step counter.
  [[nodiscard]] RecvAction on_recv(int rank);

  /// One fired event, as recorded.
  struct Record {
    FaultKind kind;
    int rank;
    std::uint64_t step;
    int dest;  ///< kAnyScope for recv-side events
    int tag;   ///< kAnyScope for recv-side events

    friend bool operator==(const Record&, const Record&) = default;
  };

  /// Every fired event so far, in canonical (rank, step, kind) order —
  /// deterministic for a given plan + seed regardless of scheduling.
  [[nodiscard]] std::vector<Record> log() const;

  /// `log()` rendered one event per line (`crash rank=2 step=40`), the
  /// replay-determinism artifact scripts diff.
  [[nodiscard]] std::string log_string() const;

 private:
  [[nodiscard]] bool fires(const FaultEvent& e, int rank, std::uint64_t step) const;
  void record(FaultKind kind, int rank, std::uint64_t step, int dest, int tag);

  const FaultPlan plan_;  ///< copied: the injector outlives caller-built plans
  std::vector<std::uint64_t> steps_;  ///< per-rank op counters (owner-thread only)
  mutable std::mutex log_mu_;
  std::vector<Record> log_;
};

}  // namespace peachy::faults
