#pragma once
/// \file detect.hpp
/// \brief Heartbeat failure detection policy (DESIGN.md §17).
///
/// The wire transports made failure detection launcher-mediated: only the
/// parent that forked a rank notices its SIGKILL, and a *wedged* rank —
/// alive but not scheduling, e.g. SIGSTOPped or spinning in a signal
/// handler — is never noticed at all.  The heartbeat layer makes detection
/// peer-to-peer: every process periodically proves liveness (kPing frames
/// on the socket pump; last-alive timestamp words in the shm segment
/// header), and every process independently monitors its peers' proofs.
/// A peer silent past the timeout is *suspected*; still silent past a
/// grace period, it is *confirmed* dead and fed into the existing
/// kFailed → RankFailedError → revoke()/shrink() machinery.
///
/// This header holds the pure policy — a per-peer state machine over
/// timestamps — so both transports share one tested implementation and
/// the tests need no processes, clocks, or wires.
///
/// Heartbeat frames are endpoint-level, like kHello/kBye: they are
/// consumed by the transport pump and never routed into a Machine, so
/// they cannot perturb the deadlock checker's wire-in-flight accounting
/// (mpi_checker defers deadlock verdicts while frames are in flight; a
/// periodic ping stream would otherwise defer them forever).  The
/// config's launched-worlds-only gate additionally keeps heartbeats out
/// of every in-process world, where the checker actually runs.

#include <cstdint>
#include <vector>

namespace peachy::faults {

/// Heartbeat tuning, resolved once per endpoint from the environment.
struct HeartbeatConfig {
  /// Silence threshold in nanoseconds; 0 disables the detector.
  std::uint64_t timeout_ns = 0;

  [[nodiscard]] bool enabled() const noexcept { return timeout_ns != 0; }

  /// Beat/scan period: a peer gets several chances to prove liveness per
  /// timeout window, but never busier than 50ms.
  [[nodiscard]] std::uint64_t interval_ns() const noexcept {
    constexpr std::uint64_t kFloorNs = 50'000'000;
    const std::uint64_t quarter = timeout_ns / 4;
    return quarter < kFloorNs ? kFloorNs : quarter;
  }

  /// Suspected → confirmed grace: one more full beat interval, so a peer
  /// that was merely descheduled across the threshold gets a final chance.
  [[nodiscard]] std::uint64_t grace_ns() const noexcept { return interval_ns(); }

  /// Resolve from `PEACHY_HEARTBEAT_TIMEOUT` (milliseconds; 0 disables).
  /// Unset: defaults to 10000ms in launched multi-process worlds and 0
  /// (off) everywhere else — in-process worlds have the launcher-less
  /// checker and no wire to lose, and a single process has no peers.
  [[nodiscard]] static HeartbeatConfig from_env(bool launched, int nprocs);
};

/// Per-peer suspicion state machine.  Feed it observed proof-of-life
/// timestamps (`alive`) and poll it (`check`); it reports each suspected /
/// confirmed *transition* exactly once, and un-suspects a peer that comes
/// back before confirmation.  Not thread-safe — each endpoint drives its
/// monitor from one thread (the socket pump / the shm beat thread).
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(int npeers, HeartbeatConfig cfg);

  enum class Verdict : std::uint8_t {
    kAlive,      ///< no transition (includes "never heard from yet")
    kSuspected,  ///< crossed the timeout just now
    kConfirmed,  ///< crossed timeout + grace just now — treat as dead
  };

  /// Record proof of life from `peer` stamped at `now_ns`.  Stale stamps
  /// (≤ the last recorded) are ignored.  A peer that was suspected but
  /// not yet confirmed is rehabilitated.
  void alive(int peer, std::uint64_t now_ns);

  /// Evaluate `peer` at `now_ns`; returns the transition taken (kAlive if
  /// none).  The first check anchors a never-heard-from peer's clock at
  /// `now_ns` — so a peer wedged before it ever spoke is still confirmed
  /// after timeout + grace, at the price that startup slower than the
  /// timeout reads as death (hence the generous default timeout).  A
  /// confirmed peer stays confirmed.
  Verdict check(int peer, std::uint64_t now_ns);

  /// True once `peer` has been confirmed dead.
  [[nodiscard]] bool confirmed(int peer) const noexcept;

 private:
  enum class State : std::uint8_t { kUnknown, kAlive, kSuspected, kConfirmed };
  struct Peer {
    std::uint64_t last_alive_ns = 0;
    State state = State::kUnknown;
  };
  HeartbeatConfig cfg_;
  std::vector<Peer> peers_;
};

}  // namespace peachy::faults
