#pragma once
/// \file halving.hpp
/// \brief Successive halving — the paper's suggested variation.
///
/// "Interesting variations of this assignment include adding the ability
/// to check the accuracy of the model at regular intervals or killing
/// some of the lowest performing nodes and reassign their resources."
///
/// Successive halving does exactly that: every round, each surviving
/// model trains for a few more epochs (peachy's Mlp::train is
/// incremental), is re-evaluated, and the bottom half is killed, its
/// compute budget implicitly reassigned to the survivors' later rounds.

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/mlp.hpp"
#include "support/thread_pool.hpp"

namespace peachy::hpo {

/// One survivor's trajectory through the rounds.
struct HalvingEntry {
  std::size_t config = 0;              ///< index into the config list
  std::vector<double> accuracy_per_round;  ///< after each round it survived
  bool survived_to_end = false;
};

/// Result of a successive-halving run.
struct HalvingResult {
  std::vector<HalvingEntry> history;   ///< one entry per starting config
  std::vector<std::size_t> final_ranking;  ///< surviving configs, best first
  std::size_t rounds = 0;
  std::size_t total_epochs_trained = 0;    ///< across all models (the budget)
};

/// Run successive halving: all configs start; each round trains
/// `epochs_per_round` more epochs (in parallel on `pool`), evaluates on
/// `val`, and keeps the top half (ties: lower config id).  Stops after
/// `rounds` rounds or when one model remains.
[[nodiscard]] HalvingResult successive_halving(const nn::Dataset& train, const nn::Dataset& val,
                                               const std::vector<nn::TrainConfig>& configs,
                                               std::size_t rounds, std::size_t epochs_per_round,
                                               support::ThreadPool& pool);

/// Measurement callback for the generic overload below: score candidate
/// `index` using `reps` repetitions and return the score.  Lower is
/// better (think nanoseconds).  Called sequentially — timing one
/// candidate while another runs would corrupt both measurements.
using MeasureFn = std::function<double(std::size_t index, std::size_t reps)>;

/// One candidate's trajectory through a measured halving run.
struct MeasuredEntry {
  std::size_t candidate = 0;               ///< index in [0, candidates)
  std::vector<double> score_per_round;     ///< after each round it survived
  bool survived_to_end = false;
};

/// Result of the generic (measurement-driven) successive-halving run.
struct MeasuredHalvingResult {
  std::vector<MeasuredEntry> history;      ///< one entry per candidate
  std::vector<std::size_t> final_ranking;  ///< survivors, best (lowest) first
  std::size_t rounds = 0;
  std::size_t total_reps = 0;              ///< measurement budget actually spent
};

/// Generic successive halving over `candidates` opaque configurations
/// scored by `measure` (lower is better).  Same economics as the model
/// variant: every round re-measures the survivors and kills the bottom
/// half (ties: lower index survives), so the repetition budget freed by
/// the losers is spent measuring the finalists more precisely — round r
/// uses base_reps << r repetitions, cheap noisy screening first, deep
/// low-variance timing only for the configurations that earned it.
/// This is what tools/peachy-tune drives the kernel/collective
/// benchmark space with.
[[nodiscard]] MeasuredHalvingResult successive_halving_measured(std::size_t candidates,
                                                                std::size_t rounds,
                                                                std::size_t base_reps,
                                                                const MeasureFn& measure);

}  // namespace peachy::hpo
