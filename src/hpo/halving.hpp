#pragma once
/// \file halving.hpp
/// \brief Successive halving — the paper's suggested variation.
///
/// "Interesting variations of this assignment include adding the ability
/// to check the accuracy of the model at regular intervals or killing
/// some of the lowest performing nodes and reassign their resources."
///
/// Successive halving does exactly that: every round, each surviving
/// model trains for a few more epochs (peachy's Mlp::train is
/// incremental), is re-evaluated, and the bottom half is killed, its
/// compute budget implicitly reassigned to the survivors' later rounds.

#include <cstdint>
#include <vector>

#include "nn/mlp.hpp"
#include "support/thread_pool.hpp"

namespace peachy::hpo {

/// One survivor's trajectory through the rounds.
struct HalvingEntry {
  std::size_t config = 0;              ///< index into the config list
  std::vector<double> accuracy_per_round;  ///< after each round it survived
  bool survived_to_end = false;
};

/// Result of a successive-halving run.
struct HalvingResult {
  std::vector<HalvingEntry> history;   ///< one entry per starting config
  std::vector<std::size_t> final_ranking;  ///< surviving configs, best first
  std::size_t rounds = 0;
  std::size_t total_epochs_trained = 0;    ///< across all models (the budget)
};

/// Run successive halving: all configs start; each round trains
/// `epochs_per_round` more epochs (in parallel on `pool`), evaluates on
/// `val`, and keeps the top half (ties: lower config id).  Stops after
/// `rounds` rounds or when one model remains.
[[nodiscard]] HalvingResult successive_halving(const nn::Dataset& train, const nn::Dataset& val,
                                               const std::vector<nn::TrainConfig>& configs,
                                               std::size_t rounds, std::size_t epochs_per_round,
                                               support::ThreadPool& pool);

}  // namespace peachy::hpo
