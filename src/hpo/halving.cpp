#include "hpo/halving.hpp"

#include <algorithm>
#include <memory>

#include "support/check.hpp"
#include "support/parallel_for.hpp"

namespace peachy::hpo {

HalvingResult successive_halving(const nn::Dataset& train, const nn::Dataset& val,
                                 const std::vector<nn::TrainConfig>& configs,
                                 std::size_t rounds, std::size_t epochs_per_round,
                                 support::ThreadPool& pool) {
  PEACHY_CHECK(!configs.empty(), "halving: no configurations");
  PEACHY_CHECK(rounds >= 1, "halving: need at least one round");
  PEACHY_CHECK(epochs_per_round >= 1, "halving: need at least one epoch per round");

  HalvingResult out;
  out.history.resize(configs.size());

  // Live models, one per config, trained incrementally round by round.
  struct Live {
    std::size_t config;
    std::unique_ptr<nn::Mlp> model;
    double accuracy = 0.0;
  };
  std::vector<Live> live;
  live.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out.history[c].config = c;
    nn::TrainConfig cfg = configs[c];
    cfg.epochs = epochs_per_round;  // each call to train() = one round
    live.push_back({c, std::make_unique<nn::Mlp>(train.features(), train.classes, cfg), 0.0});
  }

  for (std::size_t round = 0; round < rounds && !live.empty(); ++round) {
    ++out.rounds;
    // Train all survivors for this round's budget, in parallel.  Grain 0:
    // each iteration is a whole training round — always worth a task, no
    // matter how few survivors remain.
    support::parallel_for(
        pool, 0, live.size(),
        [&](std::size_t i) {
          (void)live[i].model->train(train);
          live[i].accuracy = live[i].model->accuracy(val);
        },
        /*grain=*/0);
    out.total_epochs_trained += live.size() * epochs_per_round;
    for (const Live& m : live) out.history[m.config].accuracy_per_round.push_back(m.accuracy);

    if (live.size() == 1 || round + 1 == rounds) break;
    // Kill the bottom half (ties: lower config id survives).
    std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
      if (a.accuracy != b.accuracy) return a.accuracy > b.accuracy;
      return a.config < b.config;
    });
    const std::size_t keep = (live.size() + 1) / 2;
    live.resize(keep);
    // Restore config order so the next parallel round is deterministic.
    std::sort(live.begin(), live.end(),
              [](const Live& a, const Live& b) { return a.config < b.config; });
  }

  // Final ranking: survivors by last accuracy (ties: lower id).
  std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
    if (a.accuracy != b.accuracy) return a.accuracy > b.accuracy;
    return a.config < b.config;
  });
  for (const Live& m : live) {
    out.final_ranking.push_back(m.config);
    out.history[m.config].survived_to_end = true;
  }
  return out;
}

MeasuredHalvingResult successive_halving_measured(std::size_t candidates, std::size_t rounds,
                                                  std::size_t base_reps,
                                                  const MeasureFn& measure) {
  PEACHY_CHECK(candidates >= 1, "halving: no candidates");
  PEACHY_CHECK(rounds >= 1, "halving: need at least one round");
  PEACHY_CHECK(base_reps >= 1, "halving: need at least one repetition per round");
  PEACHY_CHECK(static_cast<bool>(measure), "halving: measure callback is empty");

  MeasuredHalvingResult out;
  out.history.resize(candidates);
  struct Live {
    std::size_t candidate;
    double score = 0.0;
  };
  std::vector<Live> live;
  live.reserve(candidates);
  for (std::size_t c = 0; c < candidates; ++c) {
    out.history[c].candidate = c;
    live.push_back({c, 0.0});
  }

  for (std::size_t round = 0; round < rounds && !live.empty(); ++round) {
    ++out.rounds;
    // Doubling reps per round: survivors are re-measured from scratch at
    // the deeper budget, so early noisy rounds only decide who advances,
    // never the final score.
    const std::size_t reps = base_reps << round;
    for (Live& m : live) {
      m.score = measure(m.candidate, reps);
      out.total_reps += reps;
      out.history[m.candidate].score_per_round.push_back(m.score);
    }
    if (live.size() == 1 || round + 1 == rounds) break;
    // Kill the bottom half (ties: lower index survives).
    std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
      if (a.score != b.score) return a.score < b.score;
      return a.candidate < b.candidate;
    });
    const std::size_t keep = (live.size() + 1) / 2;
    live.resize(keep);
    // Restore index order so measurement order stays deterministic.
    std::sort(live.begin(), live.end(),
              [](const Live& a, const Live& b) { return a.candidate < b.candidate; });
  }

  std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.candidate < b.candidate;
  });
  for (const Live& m : live) {
    out.final_ranking.push_back(m.candidate);
    out.history[m.candidate].survived_to_end = true;
  }
  return out;
}

}  // namespace peachy::hpo
