#include "hpo/hpo.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/parallel_for.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace peachy::hpo {

namespace {

// Dynamic-scheduler message tags.
constexpr int kTagRequest = 100;
constexpr int kTagAssign = 101;
constexpr int kTagResult = 102;

TaskResult run_task(const nn::Dataset& train, const nn::Dataset& val,
                    const nn::TrainConfig& cfg, std::uint64_t task, int rank) {
  support::Stopwatch sw;
  nn::Mlp model{train.features(), train.classes, cfg};
  TaskResult r;
  r.task = task;
  r.rank = rank;
  r.train_loss = model.train(train);
  r.val_accuracy = model.accuracy(val);
  r.seconds = sw.elapsed_s();
  return r;
}

void validate(const nn::Dataset& train, const nn::Dataset& val,
              const std::vector<nn::TrainConfig>& configs) {
  PEACHY_CHECK(!configs.empty(), "hpo: no configurations to search");
  PEACHY_CHECK(train.size() > 0 && val.size() > 0, "hpo: empty train or validation set");
  PEACHY_CHECK(train.features() == val.features(), "hpo: train/val feature mismatch");
  PEACHY_CHECK(train.classes == val.classes, "hpo: train/val class-count mismatch");
}

}  // namespace

std::string to_string(Schedule s) {
  switch (s) {
    case Schedule::kBlock: return "block";
    case Schedule::kCyclic: return "cyclic";
    case Schedule::kDynamic: return "dynamic";
  }
  return "?";
}

std::vector<nn::TrainConfig> SearchSpace::enumerate() const {
  PEACHY_CHECK(!hidden_layouts.empty() && !learning_rates.empty() && !momenta.empty(),
               "hpo: empty search space axis");
  std::vector<nn::TrainConfig> configs;
  std::uint64_t i = 0;
  for (const auto& hidden : hidden_layouts) {
    for (double lr : learning_rates) {
      for (double mom : momenta) {
        nn::TrainConfig cfg;
        cfg.hidden = hidden;
        cfg.learning_rate = lr;
        cfg.momentum = mom;
        cfg.epochs = epochs;
        cfg.batch_size = batch_size;
        cfg.seed = base_seed + i++;
        configs.push_back(std::move(cfg));
      }
    }
  }
  return configs;
}

int static_owner(Schedule schedule, std::size_t task, std::size_t ntasks, int nranks) {
  PEACHY_CHECK(task < ntasks, "static_owner: task out of range");
  PEACHY_CHECK(nranks >= 1, "static_owner: need at least one rank");
  if (schedule == Schedule::kCyclic) {
    return static_cast<int>(task % static_cast<std::size_t>(nranks));
  }
  PEACHY_CHECK(schedule == Schedule::kBlock, "static_owner: dynamic schedule has no static map");
  for (int r = 0; r < nranks; ++r) {
    const auto blk =
        support::static_block(ntasks, static_cast<std::size_t>(nranks), static_cast<std::size_t>(r));
    if (task >= blk.begin && task < blk.end) return r;
  }
  return nranks - 1;  // unreachable
}

std::vector<TaskResult> serial_search(const nn::Dataset& train, const nn::Dataset& val,
                                      const std::vector<nn::TrainConfig>& configs) {
  validate(train, val, configs);
  std::vector<TaskResult> results;
  results.reserve(configs.size());
  for (std::size_t t = 0; t < configs.size(); ++t) {
    results.push_back(run_task(train, val, configs[t], t, 0));
  }
  return results;
}

std::vector<TaskResult> distributed_search(mpi::Comm& comm, const nn::Dataset& train,
                                           const nn::Dataset& val,
                                           const std::vector<nn::TrainConfig>& configs,
                                           Schedule schedule, RunStats* stats) {
  validate(train, val, configs);
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t ntasks = configs.size();

  std::vector<TaskResult> mine;
  double my_busy = 0.0;

  if (schedule != Schedule::kDynamic || p == 1) {
    // Static schedules: every rank derives its own task list.
    for (std::size_t t = 0; t < ntasks; ++t) {
      const int owner = schedule == Schedule::kDynamic
                            ? 0  // p == 1 fallback
                            : static_owner(schedule, t, ntasks, p);
      if (owner != me) continue;
      support::Stopwatch sw;
      mine.push_back(run_task(train, val, configs[t], t, me));
      my_busy += sw.elapsed_s();
    }
  } else if (me == 0) {
    // Dynamic master: hand out tasks on request, collect results.
    std::size_t next = 0;
    std::size_t results_pending = 0;
    int stops_sent = 0;
    while (stops_sent < p - 1) {
      mpi::Status st;
      (void)comm.recv_bytes(mpi::kAnySource, kTagRequest, &st);
      const std::int64_t assignment = next < ntasks ? static_cast<std::int64_t>(next) : -1;
      comm.send_value<std::int64_t>(st.source, kTagAssign, assignment);
      if (assignment >= 0) {
        ++next;
        ++results_pending;
      } else {
        ++stops_sent;
      }
    }
    for (std::size_t i = 0; i < results_pending; ++i) {
      mine.push_back(comm.recv_value<TaskResult>(mpi::kAnySource, kTagResult));
    }
  } else {
    // Dynamic worker: request → train → report, until told to stop.
    for (;;) {
      comm.send_value<std::uint8_t>(0, kTagRequest, 1);
      const auto task = comm.recv_value<std::int64_t>(0, kTagAssign);
      if (task < 0) break;
      support::Stopwatch sw;
      const TaskResult r =
          run_task(train, val, configs[static_cast<std::size_t>(task)], static_cast<std::uint64_t>(task), me);
      my_busy += sw.elapsed_s();
      comm.send_value<TaskResult>(0, kTagResult, r);
    }
  }

  // Exchange results so every rank holds the full sorted list.
  auto all = comm.allgather<TaskResult>(mine);
  std::sort(all.begin(), all.end(),
            [](const TaskResult& a, const TaskResult& b) { return a.task < b.task; });
  PEACHY_CHECK(all.size() == ntasks, "hpo: lost task results");

  if (stats != nullptr) {
    const auto busys = comm.allgather<double>(std::span<const double>{&my_busy, 1});
    stats->busy_seconds = busys;
    stats->tasks_per_rank.assign(static_cast<std::size_t>(p), 0);
    for (const auto& r : all) ++stats->tasks_per_rank[static_cast<std::size_t>(r.rank)];
    stats->makespan_seconds = *std::max_element(busys.begin(), busys.end());
    // Imbalance is measured over the ranks that actually execute tasks:
    // the dynamic schedule's coordinator (rank 0) trains nothing by
    // design, and counting its idle time would misstate worker balance.
    std::vector<double> worker_busys;
    for (std::size_t r = 0; r < busys.size(); ++r) {
      if (stats->tasks_per_rank[r] > 0) worker_busys.push_back(busys[r]);
    }
    stats->imbalance_cv =
        worker_busys.empty() ? 0.0 : support::load_imbalance_cv(worker_busys);
  }
  return all;
}

nn::EnsembleClassifier build_ensemble(const nn::Dataset& train,
                                      const std::vector<nn::TrainConfig>& configs,
                                      std::vector<TaskResult> results, std::size_t size) {
  PEACHY_CHECK(size >= 1, "ensemble: size must be positive");
  PEACHY_CHECK(size <= results.size(), "ensemble: size exceeds result count");
  std::sort(results.begin(), results.end(), [](const TaskResult& a, const TaskResult& b) {
    if (a.val_accuracy != b.val_accuracy) return a.val_accuracy > b.val_accuracy;
    return a.task < b.task;
  });
  nn::EnsembleClassifier ens;
  for (std::size_t i = 0; i < size; ++i) {
    const auto& cfg = configs.at(results[i].task);
    auto model = std::make_shared<nn::Mlp>(train.features(), train.classes, cfg);
    (void)model->train(train);  // deterministic re-materialization
    ens.add(std::move(model));
  }
  return ens;
}

}  // namespace peachy::hpo
