#pragma once
/// \file hpo.hpp
/// \brief Hyper-parameter optimization with ensembles (paper §7).
///
/// "We generate these intermediate models while performing
/// Hyper-parameter Optimization so uncertainty evaluation is essentially
/// free ... the idea is to run each model as a task; this results in
/// independent tasks whose results must then be aggregated."
///
/// The PDC concept being taught is *task distribution when the task count
/// does not divide the rank count*: three schedulers are provided —
/// static block, static cyclic, and dynamic master–worker — and the bench
/// harness compares their load balance (experiment T-HPO-1).
///
/// Training is deterministic in (config, seed), so only small result
/// records cross ranks; the winning models are re-materialized
/// deterministically wherever the ensemble is assembled.

#include <cstdint>
#include <vector>

#include "mpi/mpi.hpp"
#include "nn/ensemble.hpp"
#include "nn/mlp.hpp"
#include "support/thread_pool.hpp"

namespace peachy::hpo {

/// Hyper-parameter grid (the search space the assignment hands students).
struct SearchSpace {
  std::vector<std::vector<std::size_t>> hidden_layouts{{16}, {32}, {32, 16}};
  std::vector<double> learning_rates{0.05, 0.1, 0.2};
  std::vector<double> momenta{0.0, 0.9};
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  std::uint64_t base_seed = 1;  ///< task i trains with seed base_seed + i

  /// Cartesian product, in a fixed order (identical on every rank).
  [[nodiscard]] std::vector<nn::TrainConfig> enumerate() const;
};

/// How tasks map to ranks.
enum class Schedule { kBlock, kCyclic, kDynamic };

[[nodiscard]] std::string to_string(Schedule s);

/// Outcome of one training task (trivially copyable — crosses ranks).
struct TaskResult {
  std::uint64_t task = 0;       ///< index into the enumerated configs
  std::int32_t rank = -1;       ///< rank that trained it
  double val_accuracy = 0.0;
  double train_loss = 0.0;
  double seconds = 0.0;
};

/// Load-balance telemetry (experiment T-HPO-1).
struct RunStats {
  std::vector<double> busy_seconds;        ///< per rank
  std::vector<std::size_t> tasks_per_rank;
  double makespan_seconds = 0.0;           ///< max busy time
  double imbalance_cv = 0.0;               ///< stddev/mean of busy times
};

/// Run the search across the communicator with the given schedule.
/// Every rank returns the full result list sorted by task id; results are
/// identical (bit-for-bit accuracies) for every schedule and rank count.
/// `stats`, if non-null, is filled by the calling rank (identical content
/// everywhere) — pass a rank-local object, never one shared across rank
/// lambdas (data race).
[[nodiscard]] std::vector<TaskResult> distributed_search(mpi::Comm& comm,
                                                         const nn::Dataset& train,
                                                         const nn::Dataset& val,
                                                         const std::vector<nn::TrainConfig>& configs,
                                                         Schedule schedule,
                                                         RunStats* stats = nullptr);

/// Serial oracle (what one rank would do alone).
[[nodiscard]] std::vector<TaskResult> serial_search(const nn::Dataset& train,
                                                    const nn::Dataset& val,
                                                    const std::vector<nn::TrainConfig>& configs);

/// Assemble the deep ensemble from the top-`size` tasks by validation
/// accuracy (ties: lower task id).  Models are re-trained
/// deterministically from their configs.
[[nodiscard]] nn::EnsembleClassifier build_ensemble(const nn::Dataset& train,
                                                    const std::vector<nn::TrainConfig>& configs,
                                                    std::vector<TaskResult> results,
                                                    std::size_t size);

/// The task→rank map used by the static schedules (exposed for tests).
[[nodiscard]] int static_owner(Schedule schedule, std::size_t task, std::size_t ntasks,
                               int nranks);

}  // namespace peachy::hpo
