#pragma once
/// \file points.hpp
/// \brief Dense point-set container and synthetic dataset generators.
///
/// The kNN and k-means assignments both operate on "n objects represented
/// as d-dimensional points" (paper §2, §3).  `PointSet` is the shared
/// row-major container; `LabeledPoints` adds a class label per point.
/// Because the container has no external datasets, `gaussian_blobs` /
/// `two_moons` generate datahub.io-style classification instances with a
/// controllable difficulty (cluster spread), and CSV import/export
/// round-trips them through the §2 "parse the database from a CSV file"
/// code path.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/csv.hpp"
#include "rng/lcg.hpp"
#include "support/aligned.hpp"

namespace peachy::data {

/// SoA-transposed centroid panel in the peachy::kernels layout: centroids
/// grouped kernels::kPanelLane at a time, each group dimension-major —
/// `values[(g*dims + j)*lane_width + lane]` is coordinate j of centroid
/// `g*lane_width + lane`.  Padded tail lanes hold +infinity so they can
/// never win an argmin.  Built by PointSet::transposed_panel(); consumed
/// by kernels::squared_distances_batch / argmin_batch / argmin_assign.
struct TransposedPanel {
  std::size_t count = 0;   ///< real centroids
  std::size_t dims = 0;    ///< coordinates per centroid
  std::size_t padded = 0;  ///< count rounded up to whole lane groups
  support::aligned_vector<double> values;

  [[nodiscard]] const double* data() const noexcept { return values.data(); }
};

/// Row-major dense matrix of n points in d dimensions.
class PointSet {
 public:
  PointSet() = default;

  /// Allocate n×d zeros.
  PointSet(std::size_t n, std::size_t d);

  /// Wrap existing row-major values (size must be n*d).
  PointSet(std::size_t n, std::size_t d, std::vector<double> values);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t dims() const noexcept { return d_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// The i-th point as a span of d coordinates.
  [[nodiscard]] std::span<const double> point(std::size_t i) const;
  [[nodiscard]] std::span<double> point(std::size_t i);

  [[nodiscard]] double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Backing storage: row-major, 64-byte aligned (kernel-layer contract).
  [[nodiscard]] const support::aligned_vector<double>& values() const noexcept {
    return values_;
  }

  /// Build the SoA-transposed panel of these points for the batched
  /// distance kernels (centroid role: k-means calls this per iteration
  /// on the current centroids).
  [[nodiscard]] TransposedPanel transposed_panel() const;

  /// Append one point (dimension must match; first append fixes d for an
  /// empty set).
  void push_back(std::span<const double> p);

  /// Squared Euclidean distance between point i and an external point q.
  [[nodiscard]] double squared_distance(std::size_t i, std::span<const double> q) const;

 private:
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  support::aligned_vector<double> values_;
};

/// Points plus one integer class label per point.
struct LabeledPoints {
  PointSet points;
  std::vector<std::int32_t> labels;

  [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
  [[nodiscard]] std::size_t dims() const noexcept { return points.dims(); }
  [[nodiscard]] std::size_t num_classes() const;
};

/// Parameters for the Gaussian-mixture generator.
struct BlobsSpec {
  std::size_t points_per_class = 100;
  std::size_t classes = 3;
  std::size_t dims = 2;
  double center_box = 10.0;  ///< class centers drawn uniformly in [-box, box]^d
  double spread = 1.0;       ///< per-class isotropic stddev; larger = harder
  std::uint64_t seed = 1;
};

/// Gaussian blobs: `classes` isotropic clusters — the classic kNN /
/// k-means training instance.  Points are emitted class-by-class.
[[nodiscard]] LabeledPoints gaussian_blobs(const BlobsSpec& spec);

/// Two interleaving half-moons in 2-D (binary classification, non-convex
/// decision boundary) — exercises kNN where linear models fail.
[[nodiscard]] LabeledPoints two_moons(std::size_t points_per_class, double noise,
                                      std::uint64_t seed);

/// Uniform noise points in [lo,hi]^d (background/stress workloads).
[[nodiscard]] PointSet uniform_points(std::size_t n, std::size_t d, double lo, double hi,
                                      std::uint64_t seed);

/// Split into train/test by shuffling with `seed`; test_fraction in (0,1).
struct TrainTestSplit {
  LabeledPoints train;
  LabeledPoints test;
};
[[nodiscard]] TrainTestSplit train_test_split(const LabeledPoints& all, double test_fraction,
                                              std::uint64_t seed);

/// Z-score normalize each dimension in-place using mean/stddev computed
/// from `fit`; applies the same transform to `apply` (test data must be
/// scaled with train statistics).  Constant dimensions are left unscaled.
void zscore_normalize(PointSet& fit, PointSet* apply = nullptr);

/// Export as CSV rows: d coordinate columns then a "label" column.
[[nodiscard]] std::vector<CsvRow> to_csv(const LabeledPoints& data, bool header = true);

/// Import from CSV rows produced by to_csv (or hand-written files in the
/// same layout).  Throws peachy::Error on ragged rows or non-numeric
/// coordinates.
[[nodiscard]] LabeledPoints from_csv(const std::vector<CsvRow>& rows, bool header = true);

}  // namespace peachy::data
