#pragma once
/// \file csv.hpp
/// \brief CSV reading and writing (RFC-4180 quoting).
///
/// The kNN assignment's "early course" adaptation asks students to parse
/// databases and queries from CSV files (paper §2); the pipeline
/// assignment ingests CSV datasets (§4).  This is the shared parser: it
/// handles quoted fields, embedded commas/newlines/quotes, and optional
/// headers, and reports the line number of any malformed record.

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace peachy::data {

/// One parsed CSV record.
using CsvRow = std::vector<std::string>;

/// Parse a whole stream.  Rows may have varying arity; empty trailing line
/// is ignored.  Throws peachy::Error with a line number on malformed
/// quoting (e.g. unterminated quote).
[[nodiscard]] std::vector<CsvRow> read_csv(std::istream& in);

/// Parse a string (convenience for tests and generated data).
[[nodiscard]] std::vector<CsvRow> read_csv_string(const std::string& text);

/// Parse a file by path.  Throws peachy::Error if the file cannot be opened.
[[nodiscard]] std::vector<CsvRow> read_csv_file(const std::string& path);

/// Serialize rows; fields containing comma/quote/newline are quoted, with
/// inner quotes doubled, so write→read round-trips exactly.
void write_csv(std::ostream& out, const std::vector<CsvRow>& rows);

/// Serialize to a string.
[[nodiscard]] std::string write_csv_string(const std::vector<CsvRow>& rows);

/// Serialize to a file.  Throws peachy::Error on I/O failure.
void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows);

}  // namespace peachy::data
