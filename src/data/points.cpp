#include "data/points.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <set>

#include "kernels/kernels.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix.hpp"
#include "support/check.hpp"

namespace peachy::data {

PointSet::PointSet(std::size_t n, std::size_t d) : n_{n}, d_{d}, values_(n * d, 0.0) {
  PEACHY_CHECK(d > 0 || n == 0, "points need at least one dimension");
}

PointSet::PointSet(std::size_t n, std::size_t d, std::vector<double> values)
    : n_{n}, d_{d}, values_{values.begin(), values.end()} {
  // Copied, not moved: the backing store is re-homed into aligned memory
  // so the kernel layer can assume 64-byte-aligned rows.
  PEACHY_CHECK(values_.size() == n * d, "PointSet: values size != n*d");
  PEACHY_CHECK(d > 0 || n == 0, "points need at least one dimension");
}

std::span<const double> PointSet::point(std::size_t i) const {
  PEACHY_CHECK(i < n_, "point index out of range");
  return {values_.data() + i * d_, d_};
}

std::span<double> PointSet::point(std::size_t i) {
  PEACHY_CHECK(i < n_, "point index out of range");
  return {values_.data() + i * d_, d_};
}

double& PointSet::at(std::size_t i, std::size_t j) {
  PEACHY_CHECK(i < n_ && j < d_, "PointSet::at out of range");
  return values_[i * d_ + j];
}

double PointSet::at(std::size_t i, std::size_t j) const {
  PEACHY_CHECK(i < n_ && j < d_, "PointSet::at out of range");
  return values_[i * d_ + j];
}

void PointSet::push_back(std::span<const double> p) {
  if (n_ == 0 && d_ == 0) d_ = p.size();
  PEACHY_CHECK(p.size() == d_, "push_back: dimension mismatch");
  PEACHY_CHECK(d_ > 0, "push_back: zero-dimensional point");
  values_.insert(values_.end(), p.begin(), p.end());
  ++n_;
}

double PointSet::squared_distance(std::size_t i, std::span<const double> q) const {
  PEACHY_CHECK(q.size() == d_, "squared_distance: dimension mismatch");
  return kernels::squared_distance(values_.data() + i * d_, q.data(), d_);
}

TransposedPanel PointSet::transposed_panel() const {
  TransposedPanel panel;
  panel.count = n_;
  panel.dims = d_;
  panel.padded = kernels::padded_count(n_);
  // +inf padding: padded lanes are "centroids at infinity" that can never
  // win a strict-< argmin, so kernels need no per-lane masking.
  panel.values.assign(panel.padded * d_, std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < n_; ++c) {
    const std::size_t g = c / kernels::kPanelLane;
    const std::size_t lane = c % kernels::kPanelLane;
    const double* src = values_.data() + c * d_;
    double* grp = panel.values.data() + g * d_ * kernels::kPanelLane;
    for (std::size_t j = 0; j < d_; ++j) grp[j * kernels::kPanelLane + lane] = src[j];
  }
  return panel;
}

std::size_t LabeledPoints::num_classes() const {
  std::set<std::int32_t> classes(labels.begin(), labels.end());
  return classes.size();
}

LabeledPoints gaussian_blobs(const BlobsSpec& spec) {
  PEACHY_CHECK(spec.classes > 0 && spec.dims > 0, "blobs: classes and dims must be positive");
  PEACHY_CHECK(spec.spread >= 0.0, "blobs: negative spread");
  rng::Lcg64 gen{spec.seed};

  // Class centers first, then points, so the layout is reproducible.
  PointSet centers(spec.classes, spec.dims);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t j = 0; j < spec.dims; ++j) {
      centers.at(c, j) = rng::uniform_real(gen, -spec.center_box, spec.center_box);
    }
  }

  const std::size_t n = spec.points_per_class * spec.classes;
  LabeledPoints out;
  out.points = PointSet(n, spec.dims);
  out.labels.resize(n);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t i = 0; i < spec.points_per_class; ++i, ++idx) {
      for (std::size_t j = 0; j < spec.dims; ++j) {
        out.points.at(idx, j) = centers.at(c, j) + rng::normal(gen, 0.0, spec.spread);
      }
      out.labels[idx] = static_cast<std::int32_t>(c);
    }
  }
  return out;
}

LabeledPoints two_moons(std::size_t points_per_class, double noise, std::uint64_t seed) {
  PEACHY_CHECK(points_per_class > 0, "two_moons: need at least one point per class");
  PEACHY_CHECK(noise >= 0.0, "two_moons: negative noise");
  rng::Lcg64 gen{seed};
  constexpr double kPi = 3.14159265358979323846;

  LabeledPoints out;
  out.points = PointSet(2 * points_per_class, 2);
  out.labels.resize(2 * points_per_class);
  for (std::size_t i = 0; i < points_per_class; ++i) {
    const double t = kPi * rng::uniform01(gen);
    // Upper moon.
    out.points.at(i, 0) = std::cos(t) + rng::normal(gen, 0.0, noise);
    out.points.at(i, 1) = std::sin(t) + rng::normal(gen, 0.0, noise);
    out.labels[i] = 0;
    // Lower moon, shifted to interleave.
    const std::size_t k = points_per_class + i;
    const double u = kPi * rng::uniform01(gen);
    out.points.at(k, 0) = 1.0 - std::cos(u) + rng::normal(gen, 0.0, noise);
    out.points.at(k, 1) = 0.5 - std::sin(u) + rng::normal(gen, 0.0, noise);
    out.labels[k] = 1;
  }
  return out;
}

PointSet uniform_points(std::size_t n, std::size_t d, double lo, double hi, std::uint64_t seed) {
  PEACHY_CHECK(d > 0, "uniform_points: dims must be positive");
  rng::Lcg64 gen{seed};
  PointSet out(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) out.at(i, j) = rng::uniform_real(gen, lo, hi);
  }
  return out;
}

TrainTestSplit train_test_split(const LabeledPoints& all, double test_fraction,
                                std::uint64_t seed) {
  PEACHY_CHECK(test_fraction > 0.0 && test_fraction < 1.0, "test_fraction must be in (0,1)");
  PEACHY_CHECK(all.size() >= 2, "need at least 2 points to split");
  PEACHY_CHECK(all.labels.size() == all.size(), "labels/points size mismatch");

  std::vector<std::size_t> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with our own generator for cross-platform determinism.
  rng::SplitMix64 gen{seed};
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng::uniform_below(gen, i + 1));
    std::swap(order[i], order[j]);
  }

  auto n_test = static_cast<std::size_t>(std::round(test_fraction * static_cast<double>(all.size())));
  n_test = std::clamp<std::size_t>(n_test, 1, all.size() - 1);

  TrainTestSplit split;
  for (std::size_t k = 0; k < order.size(); ++k) {
    LabeledPoints& dst = k < n_test ? split.test : split.train;
    dst.points.push_back(all.points.point(order[k]));
    dst.labels.push_back(all.labels[order[k]]);
  }
  return split;
}

void zscore_normalize(PointSet& fit, PointSet* apply) {
  if (fit.empty()) return;
  const std::size_t d = fit.dims();
  PEACHY_CHECK(apply == nullptr || apply->dims() == d, "zscore: dimension mismatch");
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < fit.size(); ++i) sum += fit.at(i, j);
    const double m = sum / static_cast<double>(fit.size());
    double ss = 0.0;
    for (std::size_t i = 0; i < fit.size(); ++i) {
      const double c = fit.at(i, j) - m;
      ss += c * c;
    }
    const double sd = std::sqrt(ss / static_cast<double>(fit.size()));
    if (sd == 0.0) continue;  // constant dimension: leave unscaled
    for (std::size_t i = 0; i < fit.size(); ++i) fit.at(i, j) = (fit.at(i, j) - m) / sd;
    if (apply != nullptr) {
      for (std::size_t i = 0; i < apply->size(); ++i) {
        apply->at(i, j) = (apply->at(i, j) - m) / sd;
      }
    }
  }
}

std::vector<CsvRow> to_csv(const LabeledPoints& data, bool header) {
  PEACHY_CHECK(data.labels.size() == data.size(), "labels/points size mismatch");
  std::vector<CsvRow> rows;
  rows.reserve(data.size() + 1);
  if (header) {
    CsvRow h;
    for (std::size_t j = 0; j < data.dims(); ++j) h.push_back("x" + std::to_string(j));
    h.push_back("label");
    rows.push_back(std::move(h));
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    CsvRow r;
    r.reserve(data.dims() + 1);
    for (std::size_t j = 0; j < data.dims(); ++j) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", data.points.at(i, j));
      r.emplace_back(buf);
    }
    r.push_back(std::to_string(data.labels[i]));
    rows.push_back(std::move(r));
  }
  return rows;
}

LabeledPoints from_csv(const std::vector<CsvRow>& rows, bool header) {
  LabeledPoints out;
  const std::size_t first = header ? 1 : 0;
  PEACHY_CHECK(rows.size() > first, "csv has no data rows");
  const std::size_t arity = rows[first].size();
  PEACHY_CHECK(arity >= 2, "csv rows need at least one coordinate and a label");
  std::vector<double> coords(arity - 1);
  for (std::size_t r = first; r < rows.size(); ++r) {
    const auto& row = rows[r];
    PEACHY_CHECK(row.size() == arity,
                 "csv row " + std::to_string(r + 1) + ": ragged arity");
    for (std::size_t j = 0; j + 1 < arity; ++j) {
      std::size_t used = 0;
      try {
        coords[j] = std::stod(row[j], &used);
      } catch (const std::exception&) {
        throw Error{"csv row " + std::to_string(r + 1) + ": non-numeric coordinate '" + row[j] +
                    "'"};
      }
      PEACHY_CHECK(used == row[j].size(),
                   "csv row " + std::to_string(r + 1) + ": trailing junk in '" + row[j] + "'");
    }
    try {
      out.labels.push_back(static_cast<std::int32_t>(std::stol(row[arity - 1])));
    } catch (const std::exception&) {
      throw Error{"csv row " + std::to_string(r + 1) + ": non-integer label '" + row[arity - 1] +
                  "'"};
    }
    out.points.push_back(coords);
  }
  return out;
}

}  // namespace peachy::data
