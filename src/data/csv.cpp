#include "data/csv.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace peachy::data {

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool after_quote = false;  // a quoted field just closed; only , \r \n may follow
  bool field_started = false;  // row has at least one field boundary
  std::size_t line = 1;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = true;
    after_quote = false;
  };
  const auto end_row = [&] {
    if (field_started || !field.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
      field_started = false;
    }
  };

  for (int ci = in.get(); ci != std::char_traits<char>::eof(); ci = in.get()) {
    const char c = static_cast<char>(ci);
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          field.push_back('"');
          in.get();
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        PEACHY_CHECK(!after_quote, "csv line " + std::to_string(line) +
                                       ": garbage after closing quote");
        PEACHY_CHECK(field.empty(), "csv line " + std::to_string(line) +
                                        ": quote in the middle of an unquoted field");
        in_quotes = true;
        field_started = true;  // "" is a legal empty field
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        ++line;
        break;
      default:
        // RFC 4180: once a quoted field closes, only a separator or end of
        // record may follow.  `"a"b` used to parse silently as `ab`.
        PEACHY_CHECK(!after_quote, "csv line " + std::to_string(line) +
                                       ": garbage after closing quote");
        field.push_back(c);
        break;
    }
  }
  PEACHY_CHECK(!in_quotes, "csv line " + std::to_string(line) + ": unterminated quoted field");
  end_row();  // final record without trailing newline
  return rows;
}

std::vector<CsvRow> read_csv_string(const std::string& text) {
  std::istringstream in{text};
  return read_csv(in);
}

std::vector<CsvRow> read_csv_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  PEACHY_CHECK(in.is_open(), "cannot open csv file: " + path);
  return read_csv(in);
}

namespace {

void write_field(std::ostream& out, const std::string& f) {
  const bool needs_quotes =
      f.find_first_of(",\"\n\r") != std::string::npos || f.empty();
  if (!needs_quotes) {
    out << f;
    return;
  }
  out << '"';
  for (char c : f) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_csv(std::ostream& out, const std::vector<CsvRow>& rows) {
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      write_field(out, row[i]);
    }
    out << '\n';
  }
}

std::string write_csv_string(const std::vector<CsvRow>& rows) {
  std::ostringstream os;
  write_csv(os, rows);
  return os.str();
}

void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out{path, std::ios::binary};
  PEACHY_CHECK(out.is_open(), "cannot open csv file for writing: " + path);
  write_csv(out, rows);
  PEACHY_CHECK(out.good(), "i/o error writing csv file: " + path);
}

}  // namespace peachy::data
