#include "data/frame.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>

#include "support/check.hpp"

namespace peachy::data {

std::string value_to_string(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using X = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<X, std::string>) {
          return x;
        } else if constexpr (std::is_same_v<X, double>) {
          std::ostringstream os;
          os.precision(12);
          os << x;
          return os.str();
        } else {
          return std::to_string(x);
        }
      },
      v);
}

Frame::Frame(std::vector<std::string> names, std::vector<ColType> types)
    : names_{std::move(names)}, types_{std::move(types)}, columns_(names_.size()) {
  PEACHY_CHECK(names_.size() == types_.size(), "frame: names/types size mismatch");
  PEACHY_CHECK(!names_.empty(), "frame needs at least one column");
  std::vector<std::string> sorted = names_;
  std::sort(sorted.begin(), sorted.end());
  PEACHY_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
               "frame: duplicate column names");
}

std::size_t Frame::col_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw Error{"frame: no such column '" + name + "'"};
}

bool Frame::has_col(const std::string& name) const noexcept {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

void Frame::check_value_type(const Value& v, ColType t, std::size_t col) const {
  const bool ok = (t == ColType::kDouble && std::holds_alternative<double>(v)) ||
                  (t == ColType::kInt && std::holds_alternative<std::int64_t>(v)) ||
                  (t == ColType::kString && std::holds_alternative<std::string>(v));
  PEACHY_CHECK(ok, "frame: wrong value type for column '" + names_[col] + "'");
}

void Frame::push_row(std::vector<Value> row) {
  PEACHY_CHECK(row.size() == cols(), "frame: row arity mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) check_value_type(row[c], types_[c], c);
  for (std::size_t c = 0; c < row.size(); ++c) columns_[c].push_back(std::move(row[c]));
  ++nrows_;
}

const Value& Frame::cell(std::size_t row, std::size_t col) const {
  PEACHY_CHECK(row < nrows_ && col < cols(), "frame: cell out of range");
  return columns_[col][row];
}

double Frame::num(std::size_t row, const std::string& col) const {
  const Value& v = cell(row, col_index(col));
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  throw Error{"frame: column '" + col + "' is not numeric"};
}

std::int64_t Frame::integer(std::size_t row, const std::string& col) const {
  const Value& v = cell(row, col_index(col));
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw Error{"frame: column '" + col + "' is not integer"};
}

const std::string& Frame::str(std::size_t row, const std::string& col) const {
  const Value& v = cell(row, col_index(col));
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw Error{"frame: column '" + col + "' is not string"};
}

std::vector<Value> Frame::row_values(std::size_t r) const {
  std::vector<Value> out;
  out.reserve(cols());
  for (std::size_t c = 0; c < cols(); ++c) out.push_back(columns_[c][r]);
  return out;
}

Frame Frame::select(const std::vector<std::string>& cols) const {
  std::vector<std::size_t> idx;
  std::vector<ColType> t;
  for (const auto& name : cols) {
    idx.push_back(col_index(name));
    t.push_back(types_[idx.back()]);
  }
  Frame out{cols, t};
  for (std::size_t r = 0; r < nrows_; ++r) {
    std::vector<Value> row;
    row.reserve(idx.size());
    for (std::size_t i : idx) row.push_back(columns_[i][r]);
    out.push_row(std::move(row));
  }
  return out;
}

Frame Frame::filter(const std::function<bool(std::size_t)>& pred) const {
  Frame out{names_, types_};
  for (std::size_t r = 0; r < nrows_; ++r) {
    if (pred(r)) out.push_row(row_values(r));
  }
  return out;
}

Frame Frame::group_by(const std::string& key_col, Agg agg, const std::string& value_col) const {
  const std::size_t kc = col_index(key_col);
  const std::size_t vc = col_index(value_col);
  PEACHY_CHECK(agg == Agg::kCount || types_[vc] != ColType::kString,
               "group_by: cannot aggregate a string column with " +
                   std::string{agg == Agg::kSum ? "sum" : "a numeric aggregate"});

  struct Acc {
    std::size_t order;
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Acc> groups;  // keyed by rendered key (type-stable)
  std::vector<std::pair<std::string, Value>> key_order;  // rendered -> original

  for (std::size_t r = 0; r < nrows_; ++r) {
    const std::string k = value_to_string(columns_[kc][r]);
    auto [it, inserted] = groups.try_emplace(k);
    if (inserted) {
      it->second.order = key_order.size();
      key_order.emplace_back(k, columns_[kc][r]);
    }
    Acc& a = it->second;
    double x = 0.0;
    if (agg != Agg::kCount) {
      const Value& v = columns_[vc][r];
      x = std::holds_alternative<double>(v) ? std::get<double>(v)
                                            : static_cast<double>(std::get<std::int64_t>(v));
    }
    if (a.count == 0) {
      a.min = x;
      a.max = x;
    } else {
      a.min = std::min(a.min, x);
      a.max = std::max(a.max, x);
    }
    ++a.count;
    a.sum += x;
  }

  const std::string agg_name = [&] {
    switch (agg) {
      case Agg::kCount: return std::string{"count"};
      case Agg::kSum: return std::string{"sum_" + value_col};
      case Agg::kMean: return std::string{"mean_" + value_col};
      case Agg::kMin: return std::string{"min_" + value_col};
      case Agg::kMax: return std::string{"max_" + value_col};
    }
    return std::string{"agg"};
  }();
  const ColType out_type = agg == Agg::kCount ? ColType::kInt : ColType::kDouble;
  Frame out{{key_col, agg_name}, {types_[kc], out_type}};
  for (const auto& [rendered, original] : key_order) {
    const Acc& a = groups.at(rendered);
    Value result;
    switch (agg) {
      case Agg::kCount: result = a.count; break;
      case Agg::kSum: result = a.sum; break;
      case Agg::kMean: result = a.sum / static_cast<double>(a.count); break;
      case Agg::kMin: result = a.min; break;
      case Agg::kMax: result = a.max; break;
    }
    out.push_row({original, result});
  }
  return out;
}

Frame Frame::join(const Frame& other, const std::string& key_col) const {
  const std::size_t lk = col_index(key_col);
  const std::size_t rk = other.col_index(key_col);
  PEACHY_CHECK(types_[lk] == other.types_[rk], "join: key column types differ");

  // Output schema: all of ours + other's non-key columns.
  std::vector<std::string> names = names_;
  std::vector<ColType> types = types_;
  std::vector<std::size_t> rcols;
  for (std::size_t c = 0; c < other.cols(); ++c) {
    if (c == rk) continue;
    PEACHY_CHECK(!has_col(other.names_[c]),
                 "join: duplicate non-key column '" + other.names_[c] + "'");
    names.push_back(other.names_[c]);
    types.push_back(other.types_[c]);
    rcols.push_back(c);
  }
  Frame out{names, types};

  // Hash other side by rendered key.
  std::multimap<std::string, std::size_t> index;
  for (std::size_t r = 0; r < other.nrows_; ++r) {
    index.emplace(value_to_string(other.columns_[rk][r]), r);
  }
  for (std::size_t r = 0; r < nrows_; ++r) {
    const std::string k = value_to_string(columns_[lk][r]);
    auto [lo, hi] = index.equal_range(k);
    for (auto it = lo; it != hi; ++it) {
      std::vector<Value> row = row_values(r);
      for (std::size_t c : rcols) row.push_back(other.columns_[c][it->second]);
      out.push_row(std::move(row));
    }
  }
  return out;
}

Frame Frame::sort_by(const std::string& col, bool desc) const {
  const std::size_t c = col_index(col);
  std::vector<std::size_t> order(nrows_);
  std::iota(order.begin(), order.end(), 0);
  const auto less = [&](std::size_t a, std::size_t b) {
    const Value& va = columns_[c][a];
    const Value& vb = columns_[c][b];
    if (types_[c] == ColType::kString) return std::get<std::string>(va) < std::get<std::string>(vb);
    const double xa = std::holds_alternative<double>(va)
                          ? std::get<double>(va)
                          : static_cast<double>(std::get<std::int64_t>(va));
    const double xb = std::holds_alternative<double>(vb)
                          ? std::get<double>(vb)
                          : static_cast<double>(std::get<std::int64_t>(vb));
    return xa < xb;
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return desc ? less(b, a) : less(a, b);
  });
  Frame out{names_, types_};
  for (std::size_t r : order) out.push_row(row_values(r));
  return out;
}

Frame Frame::head(std::size_t n) const {
  Frame out{names_, types_};
  for (std::size_t r = 0; r < std::min(n, nrows_); ++r) out.push_row(row_values(r));
  return out;
}

std::vector<CsvRow> Frame::to_csv() const {
  std::vector<CsvRow> rows;
  rows.reserve(nrows_ + 1);
  rows.push_back(names_);
  for (std::size_t r = 0; r < nrows_; ++r) {
    CsvRow row;
    row.reserve(cols());
    for (std::size_t c = 0; c < cols(); ++c) row.push_back(value_to_string(columns_[c][r]));
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

bool parse_int(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  std::size_t used = 0;
  try {
    out = std::stoll(s, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == s.size();
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::size_t used = 0;
  try {
    out = std::stod(s, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == s.size();
}

}  // namespace

Frame Frame::from_csv(const std::vector<CsvRow>& rows) {
  PEACHY_CHECK(rows.size() >= 1, "frame from_csv: missing header");
  const CsvRow& header = rows.front();
  const std::size_t ncols = header.size();
  PEACHY_CHECK(ncols > 0, "frame from_csv: empty header");

  // Infer each column's type from the data rows.
  std::vector<ColType> types(ncols, ColType::kInt);
  for (std::size_t c = 0; c < ncols; ++c) {
    bool all_int = true, all_num = true;
    for (std::size_t r = 1; r < rows.size(); ++r) {
      PEACHY_CHECK(rows[r].size() == ncols,
                   "frame from_csv: row " + std::to_string(r + 1) + " is ragged");
      std::int64_t i;
      double d;
      if (!parse_int(rows[r][c], i)) all_int = false;
      if (!parse_double(rows[r][c], d)) all_num = false;
    }
    types[c] = all_int ? ColType::kInt : (all_num ? ColType::kDouble : ColType::kString);
    if (rows.size() == 1) types[c] = ColType::kString;  // no data: default to string
  }

  Frame out{header, types};
  for (std::size_t r = 1; r < rows.size(); ++r) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (std::size_t c = 0; c < ncols; ++c) {
      switch (types[c]) {
        case ColType::kInt: {
          std::int64_t i = 0;
          parse_int(rows[r][c], i);
          row.emplace_back(i);
          break;
        }
        case ColType::kDouble: {
          double d = 0;
          parse_double(rows[r][c], d);
          row.emplace_back(d);
          break;
        }
        case ColType::kString:
          row.emplace_back(rows[r][c]);
          break;
      }
    }
    out.push_row(std::move(row));
  }
  return out;
}

std::string Frame::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  for (std::size_t c = 0; c < cols(); ++c) os << (c ? " | " : "") << names_[c];
  os << '\n';
  for (std::size_t r = 0; r < std::min(nrows_, max_rows); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      os << (c ? " | " : "") << value_to_string(columns_[c][r]);
    }
    os << '\n';
  }
  if (nrows_ > max_rows) os << "... (" << nrows_ - max_rows << " more rows)\n";
  return os.str();
}

}  // namespace peachy::data
