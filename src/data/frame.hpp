#pragma once
/// \file frame.hpp
/// \brief Columnar mini-dataframe for the data-science-pipeline assignment.
///
/// The pipeline project (paper §4) walks students through "data
/// aggregation, cleaning, analysis" steps.  `Frame` is the tabular
/// intermediate those steps operate on outside the RDD engine: typed
/// columns (double / int64 / string), filter, select, group-by aggregate,
/// inner join, and sort — enough to express the NYC-arrests pipeline's
/// relational portions and to validate the spark implementation against a
/// straightforward serial engine.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "data/csv.hpp"

namespace peachy::data {

/// One cell value.
using Value = std::variant<double, std::int64_t, std::string>;

/// Column type tag.
enum class ColType { kDouble, kInt, kString };

/// Render a Value as text (CSV export / display).
[[nodiscard]] std::string value_to_string(const Value& v);

/// A typed, named, columnar table.
class Frame {
 public:
  Frame() = default;

  /// Create with a schema; all columns start empty.
  Frame(std::vector<std::string> names, std::vector<ColType> types);

  [[nodiscard]] std::size_t rows() const noexcept { return nrows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }
  [[nodiscard]] const std::vector<ColType>& types() const noexcept { return types_; }

  /// Column index by name; throws peachy::Error if absent.
  [[nodiscard]] std::size_t col_index(const std::string& name) const;
  [[nodiscard]] bool has_col(const std::string& name) const noexcept;

  /// Append a row; arity and cell types must match the schema.
  void push_row(std::vector<Value> row);

  /// Cell accessors (checked).
  [[nodiscard]] const Value& cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] double num(std::size_t row, const std::string& col) const;
  [[nodiscard]] std::int64_t integer(std::size_t row, const std::string& col) const;
  [[nodiscard]] const std::string& str(std::size_t row, const std::string& col) const;

  /// New frame with only the named columns, in the given order.
  [[nodiscard]] Frame select(const std::vector<std::string>& cols) const;

  /// New frame with rows where pred(row_index) is true.
  [[nodiscard]] Frame filter(const std::function<bool(std::size_t)>& pred) const;

  /// Aggregations available to group_by.
  enum class Agg { kCount, kSum, kMean, kMin, kMax };

  /// Group rows by a key column and aggregate a value column per group.
  /// For kCount the value column may equal the key column.  Output columns:
  /// [key, <agg name>].  Groups appear in first-encounter order.
  [[nodiscard]] Frame group_by(const std::string& key_col, Agg agg,
                               const std::string& value_col) const;

  /// Inner join on equality of a key column present in both frames.
  /// Output columns: this frame's columns then other's non-key columns.
  [[nodiscard]] Frame join(const Frame& other, const std::string& key_col) const;

  /// New frame sorted by a column (stable).  Descending if `desc`.
  [[nodiscard]] Frame sort_by(const std::string& col, bool desc = false) const;

  /// First n rows (or all if fewer).
  [[nodiscard]] Frame head(std::size_t n) const;

  /// CSV export with header row.
  [[nodiscard]] std::vector<CsvRow> to_csv() const;

  /// Build from CSV rows with a header; column types are inferred per
  /// column (int64 if every cell parses as integer, else double if every
  /// cell parses as number, else string).
  [[nodiscard]] static Frame from_csv(const std::vector<CsvRow>& rows);

  /// Render as an aligned text table (debugging / reports).
  [[nodiscard]] std::string to_string(std::size_t max_rows = 20) const;

 private:
  [[nodiscard]] std::vector<Value> row_values(std::size_t r) const;
  void check_value_type(const Value& v, ColType t, std::size_t col) const;

  std::vector<std::string> names_;
  std::vector<ColType> types_;
  std::vector<std::vector<Value>> columns_;  // columns_[c][r]
  std::size_t nrows_ = 0;
};

}  // namespace peachy::data
