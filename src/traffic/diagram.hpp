#pragma once
/// \file diagram.hpp
/// \brief Space–time diagrams and flow measurements (Fig. 3 reproduction).
///
/// Fig. 3 shows a "one-dimensional simulation of the Nagel–Schreckenberg
/// traffic model (200 cars, length 1000, probability p = 0.13 and maximum
/// velocity 5) that shows irregularities ('traffic jams') in the flow of
/// vehicles and how they propagate".  `spacetime_*` render exactly that
/// picture (time on the vertical axis, road position horizontal, one row
/// per step); `fundamental_diagram` sweeps density and measures flow,
/// and `jam_fraction` quantifies the jams the figure shows.

#include <string>
#include <vector>

#include "traffic/traffic.hpp"

namespace peachy::traffic {

/// ASCII space–time diagram: one output row per recorded step; cars are
/// marked (stopped cars '#', slow cars 'o', free-flowing '.'), empty road
/// is ' '.  `stride` downsamples the road for terminal width.
[[nodiscard]] std::string spacetime_ascii(const Spec& spec, const std::vector<State>& snapshots,
                                          std::size_t stride = 1);

/// Binary PGM space–time diagram (darker = slower), one pixel per cell
/// per step — the publication-quality version of Fig. 3.
[[nodiscard]] std::string spacetime_pgm(const Spec& spec, const std::vector<State>& snapshots);

/// One row of the fundamental diagram.
struct FlowPoint {
  double density = 0.0;        ///< cars / road length
  double mean_velocity = 0.0;  ///< time-averaged after warmup
  double flow = 0.0;           ///< density × mean velocity
};

/// Measure flow across a density sweep (the model's classic validation:
/// flow rises linearly in free flow, collapses past the critical
/// density).  Each density runs `steps` steps, averaging velocity over
/// the second half.
[[nodiscard]] std::vector<FlowPoint> fundamental_diagram(const Spec& base,
                                                         const std::vector<double>& densities,
                                                         std::size_t steps);

/// Fraction of cars with velocity 0, averaged over the given snapshots —
/// the jam metric used by tests ("without randomness, these do not occur").
[[nodiscard]] double jam_fraction(const std::vector<State>& snapshots);

}  // namespace peachy::traffic
