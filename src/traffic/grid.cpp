#include "traffic/grid.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peachy::traffic {

State run_grid(const Spec& spec, std::size_t steps) {
  // Build the grid from the canonical initial state.
  State init = initial_state(spec);
  const std::size_t n = init.pos.size();
  const auto L = static_cast<std::int64_t>(spec.road_length);

  // cell[x] = car id occupying x, or -1.  Velocities are indexed by car.
  std::vector<std::int32_t> cell(spec.road_length, -1);
  std::vector<int> vel(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell[static_cast<std::size_t>(init.pos[i])] = static_cast<std::int32_t>(i);
    vel[i] = init.vel[i];
  }

  const rng::SharedStream<rng::Lcg64> stream{spec.seed};
  std::vector<std::int64_t> pos(init.pos);  // car id -> position (kept in sync)

  for (std::size_t s = 0; s < steps; ++s) {
    auto gen = stream.cursor(static_cast<std::uint64_t>(s) * n);
    // The canonical draw assignment is by position rank (the agent
    // representation's index order), and the road scan visits cars in
    // exactly that order — so draws are consumed as cars are encountered.
    std::vector<double> draws(n);
    for (auto& d : draws) d = gen.next_double();
    std::size_t rank = 0;

    // Scan every cell (the Θ(L) cost of this representation) computing
    // new velocities from gaps found by looking ahead through the grid.
    std::vector<int> new_vel(n);
    for (std::size_t x = 0; x < spec.road_length; ++x) {
      const std::int32_t car = cell[x];
      if (car < 0) continue;
      // Find the gap by scanning ahead (bounded by v_max+1 cells).
      std::int64_t gap = 0;
      for (int look = 1; look <= spec.v_max + 1; ++look) {
        const auto nx = static_cast<std::size_t>((static_cast<std::int64_t>(x) + look) % L);
        if (cell[nx] >= 0) break;
        ++gap;
      }
      int v = std::min(vel[car] + 1, spec.v_max);
      v = static_cast<int>(std::min<std::int64_t>(v, gap));
      if (draws[rank++] < spec.p_slow && v > 0) --v;
      new_vel[static_cast<std::size_t>(car)] = v;
    }

    // Synchronous move: rebuild the grid.
    std::fill(cell.begin(), cell.end(), -1);
    for (std::size_t car = 0; car < n; ++car) {
      vel[car] = new_vel[car];
      pos[car] = (pos[car] + new_vel[car]) % L;
      PEACHY_CHECK(cell[static_cast<std::size_t>(pos[car])] < 0,
                   "grid: two cars in one cell (model invariant violated)");
      cell[static_cast<std::size_t>(pos[car])] = static_cast<std::int32_t>(car);
    }
  }

  // Return in canonical form: sorted by position (cars never overtake, so
  // this is a rotation of the id order).
  State out;
  out.pos.resize(n);
  out.vel.resize(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return pos[a] < pos[b]; });
  for (std::size_t i = 0; i < n; ++i) {
    out.pos[i] = pos[order[i]];
    out.vel[i] = vel[order[i]];
  }
  return out;
}

}  // namespace peachy::traffic
