#include "traffic/traffic.hpp"

#include <algorithm>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/splitmix.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"
#include "support/timer.hpp"

namespace peachy::traffic {

namespace {

void validate(const Spec& spec) {
  PEACHY_CHECK(spec.road_length >= 1, "traffic: empty road");
  PEACHY_CHECK(spec.cars >= 1, "traffic: need at least one car");
  PEACHY_CHECK(spec.cars <= spec.road_length, "traffic: more cars than cells");
  PEACHY_CHECK(spec.v_max >= 1, "traffic: v_max must be at least 1");
  PEACHY_CHECK(spec.p_slow >= 0.0 && spec.p_slow <= 1.0, "traffic: p outside [0,1]");
}

/// New velocity of car i given the gap ahead and its random draw.
int nasch_velocity(const Spec& spec, int v, std::int64_t gap, double draw) {
  v = std::min(v + 1, spec.v_max);                          // 1. accelerate
  v = static_cast<int>(std::min<std::int64_t>(v, gap));     // 2. brake to the gap
  if (draw < spec.p_slow && v > 0) --v;                     // 3. random slowdown
  return v;
}

/// Rotate the (rotation-of-sorted) position array so index order equals
/// ascending-position order again, carrying velocities along.
void canonicalize(State& state) {
  if (state.pos.size() < 2) return;
  const auto min_it = std::min_element(state.pos.begin(), state.pos.end());
  if (min_it == state.pos.begin()) return;
  const auto k = min_it - state.pos.begin();
  std::rotate(state.pos.begin(), state.pos.begin() + k, state.pos.end());
  std::rotate(state.vel.begin(), state.vel.begin() + k, state.vel.end());
}

}  // namespace

State initial_state(const Spec& spec) {
  validate(spec);
  // Seeded partial Fisher–Yates over cell indices: the first `cars`
  // entries are distinct uniform cells.  A separate generator keeps the
  // simulation stream's indexing at exactly one draw per car per step.
  std::vector<std::int64_t> cells(spec.road_length);
  std::iota(cells.begin(), cells.end(), 0);
  rng::SplitMix64 gen{rng::derive_seed(spec.seed, 0xCA25u)};
  for (std::size_t i = 0; i < spec.cars; ++i) {
    const auto j = i + static_cast<std::size_t>(
                           rng::uniform_below(gen, spec.road_length - i));
    std::swap(cells[i], cells[j]);
  }
  State st;
  st.pos.assign(cells.begin(), cells.begin() + static_cast<std::ptrdiff_t>(spec.cars));
  std::sort(st.pos.begin(), st.pos.end());
  st.vel.assign(spec.cars, 0);
  return st;
}

std::int64_t gap_ahead(const Spec& spec, const State& state, std::size_t i) {
  PEACHY_CHECK(i < state.pos.size(), "traffic: car index out of range");
  const std::size_t n = state.pos.size();
  if (n == 1) return static_cast<std::int64_t>(spec.road_length) - 1;
  const std::size_t ahead = (i + 1) % n;
  std::int64_t gap = state.pos[ahead] - state.pos[i] - 1;
  if (ahead == 0) gap += static_cast<std::int64_t>(spec.road_length);
  return gap;
}

void step_reference(const Spec& spec, State& state, const rng::SharedStream<rng::Lcg64>& stream,
                    std::size_t step) {
  const std::size_t n = state.pos.size();
  auto gen = stream.cursor(static_cast<std::uint64_t>(step) * n);
  std::vector<int> new_vel(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double draw = gen.next_double();  // exactly one draw per car
    new_vel[i] = nasch_velocity(spec, state.vel[i], gap_ahead(spec, state, i), draw);
  }
  for (std::size_t i = 0; i < n; ++i) {
    state.vel[i] = new_vel[i];
    state.pos[i] += new_vel[i];
    if (state.pos[i] >= static_cast<std::int64_t>(spec.road_length)) {
      state.pos[i] -= static_cast<std::int64_t>(spec.road_length);
    }
  }
  // Keep car 0 the minimum position so the index order always equals the
  // ascending-position order.  Cars cannot overtake, so after a step the
  // array is a rotation of a sorted array (several tail cars may wrap in
  // one step); rotate the unique minimum back to the front.
  canonicalize(state);
}

State run_serial(const Spec& spec, std::size_t steps, std::vector<State>* snapshots) {
  validate(spec);
  State st = initial_state(spec);
  const rng::SharedStream<rng::Lcg64> stream{spec.seed};
  for (std::size_t s = 0; s < steps; ++s) {
    step_reference(spec, st, stream, s);
    if (snapshots != nullptr) snapshots->push_back(st);
  }
  return st;
}

State run_parallel(const Spec& spec, std::size_t steps, support::ThreadPool& pool,
                   std::size_t threads, ParallelStats* stats, std::vector<State>* snapshots) {
  validate(spec);
  PEACHY_CHECK(threads >= 1, "traffic: threads must be at least 1");
  support::Stopwatch sw;
  State st = initial_state(spec);
  const rng::SharedStream<rng::Lcg64> stream{spec.seed};
  const std::size_t n = st.pos.size();
  std::vector<int> new_vel(n);

  for (std::size_t s = 0; s < steps; ++s) {
    // Phase A (parallel, read-only on state): each thread owns a car
    // block, fast-forwards the shared stream to its first draw, and
    // computes new velocities.
    support::parallel_for_threads(
        pool, n, threads, [&](std::size_t, std::size_t lo, std::size_t hi) {
          if (lo >= hi) return;
          auto gen = stream.cursor(static_cast<std::uint64_t>(s) * n + lo);
          for (std::size_t i = lo; i < hi; ++i) {
            const double draw = gen.next_double();
            new_vel[i] = nasch_velocity(spec, st.vel[i], gap_ahead(spec, st, i), draw);
          }
        });
    // Phase B (parallel, disjoint writes): move.
    support::parallel_for_threads(
        pool, n, threads, [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            st.vel[i] = new_vel[i];
            st.pos[i] += new_vel[i];
            if (st.pos[i] >= static_cast<std::int64_t>(spec.road_length)) {
              st.pos[i] -= static_cast<std::int64_t>(spec.road_length);
            }
          }
        });
    canonicalize(st);
    if (snapshots != nullptr) snapshots->push_back(st);
  }

  if (stats != nullptr) {
    stats->fast_forwards = stream.ff_calls();
    stats->seconds = sw.elapsed_s();
  }
  return st;
}

State run_parallel_independent_rngs(const Spec& spec, std::size_t steps,
                                    support::ThreadPool& pool, std::size_t threads) {
  validate(spec);
  PEACHY_CHECK(threads >= 1, "traffic: threads must be at least 1");
  State st = initial_state(spec);
  const std::size_t n = st.pos.size();
  std::vector<int> new_vel(n);
  // One private generator per thread, seeded differently — the tempting
  // shortcut whose output depends on the thread count.
  std::vector<rng::Lcg64> gens;
  gens.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    gens.emplace_back(rng::derive_seed(spec.seed, t));
  }

  for (std::size_t s = 0; s < steps; ++s) {
    support::parallel_for_threads(
        pool, n, threads, [&](std::size_t t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const double draw = gens[t].next_double();
            new_vel[i] = nasch_velocity(spec, st.vel[i], gap_ahead(spec, st, i), draw);
          }
        });
    for (std::size_t i = 0; i < n; ++i) {
      st.vel[i] = new_vel[i];
      st.pos[i] += new_vel[i];
      if (st.pos[i] >= static_cast<std::int64_t>(spec.road_length)) {
        st.pos[i] -= static_cast<std::int64_t>(spec.road_length);
      }
    }
    canonicalize(st);
  }
  return st;
}

double mean_velocity(const State& state) {
  PEACHY_CHECK(!state.vel.empty(), "traffic: empty state");
  double sum = 0.0;
  for (int v : state.vel) sum += v;
  return sum / static_cast<double>(state.vel.size());
}

std::size_t stopped_cars(const State& state) {
  std::size_t n = 0;
  for (int v : state.vel) n += v == 0;
  return n;
}

}  // namespace peachy::traffic
