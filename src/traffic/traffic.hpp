#pragma once
/// \file traffic.hpp
/// \brief Nagel–Schreckenberg traffic model (paper §5).
///
/// A stochastic cellular automaton on a circular single-lane road: each
/// car, synchronously per time step, (1) accelerates by one up to v_max,
/// (2) brakes to the gap ahead, (3) with probability p slows by one
/// (the randomization that creates spontaneous jams), (4) advances.
///
/// The assignment's core requirement: "managing the PRNG in parallel so
/// that the output of the parallel code is exactly the same as the serial
/// code" for *any* thread count.  peachy's canonical draw assignment makes
/// that structural: the random number for car i at step s is element
/// s·N + i of one logical LCG sequence, so a thread owning cars [lo,hi)
/// fast-forwards to s·N + lo — O(log) with the Lcg64 jump — and streams
/// from there.  Every implementation (serial, parallel, grid) consumes
/// exactly one draw per car per step, drawn in car order.
///
/// Both representations from the paper are provided: the agent-based one
/// (positions+velocities of N cars — "significantly simplifies the
/// parallelization of PRNG") in this header, and the grid one in
/// grid.hpp.

#include <cstdint>
#include <vector>

#include "rng/lcg.hpp"
#include "rng/shared_stream.hpp"
#include "support/thread_pool.hpp"

namespace peachy::traffic {

/// Model parameters.  Defaults are Fig. 3's caption: 200 cars, road
/// length 1000, p = 0.13, v_max = 5.
struct Spec {
  std::size_t road_length = 1000;
  std::size_t cars = 200;
  int v_max = 5;
  double p_slow = 0.13;
  std::uint64_t seed = 1;

  [[nodiscard]] double density() const noexcept {
    return static_cast<double>(cars) / static_cast<double>(road_length);
  }
};

/// Car state, index-aligned: car i is at pos[i] moving at vel[i].  Cars
/// never overtake, so ascending-position order (mod wrap) is preserved.
struct State {
  std::vector<std::int64_t> pos;
  std::vector<int> vel;

  friend bool operator==(const State&, const State&) = default;
};

/// Initial configuration: cars on distinct cells (uniformly chosen via a
/// seeded shuffle), sorted ascending, all velocities 0.  Deterministic in
/// spec.seed; consumes no draws from the simulation stream.
[[nodiscard]] State initial_state(const Spec& spec);

/// Gap (empty cells) in front of car i in the current state.
[[nodiscard]] std::int64_t gap_ahead(const Spec& spec, const State& state, std::size_t i);

/// Advance `state` by one synchronous step, drawing car draws from
/// `stream` positions [step·N, (step+1)·N).  Shared by every
/// implementation; exposed for tests.
void step_reference(const Spec& spec, State& state, const rng::SharedStream<rng::Lcg64>& stream,
                    std::size_t step);

/// Run `steps` steps serially from the initial state.  Returns the final
/// state.  `snapshots`, if non-null, receives the state after every step
/// (for space–time diagrams).
[[nodiscard]] State run_serial(const Spec& spec, std::size_t steps,
                               std::vector<State>* snapshots = nullptr);

/// Telemetry for the fast-forward-cost experiment (T-TR-1).
struct ParallelStats {
  std::uint64_t fast_forwards = 0;  ///< PRNG cursor jumps issued
  double seconds = 0.0;
};

/// Reproducible parallel run: cars are block-partitioned over `threads`;
/// each thread fast-forwards the shared stream to its block's first draw
/// each step.  Output is bit-identical to run_serial for ANY thread
/// count — the assignment's requirement.
[[nodiscard]] State run_parallel(const Spec& spec, std::size_t steps,
                                 support::ThreadPool& pool, std::size_t threads,
                                 ParallelStats* stats = nullptr,
                                 std::vector<State>* snapshots = nullptr);

/// The counter-example the paper warns about: "one could parallelize the
/// code by giving each thread its own PRNG, starting from different
/// seeds.  However, this gives different results when the number of
/// threads changes."  Provided so the non-reproducibility is demonstrable.
[[nodiscard]] State run_parallel_independent_rngs(const Spec& spec, std::size_t steps,
                                                  support::ThreadPool& pool,
                                                  std::size_t threads);

/// Mean velocity of a state (flow = mean velocity × density).
[[nodiscard]] double mean_velocity(const State& state);

/// Cars standing still — the jam indicator used by the tests.
[[nodiscard]] std::size_t stopped_cars(const State& state);

}  // namespace peachy::traffic
