#pragma once
/// \file grid.hpp
/// \brief Grid (cell-array) representation of the Nagel–Schreckenberg
/// model (paper §5's alternative representation).
///
/// "The grid representation assigns a value to every point on the
/// circular road, while the agent-based implementation stores the
/// positions and velocities of the N cars."  The grid simulation stores
/// one cell per road position (car id or empty) and scans the road each
/// step — Θ(L) per step versus the agent representation's Θ(N).  To stay
/// bit-compatible with the canonical model, draws are still assigned by
/// car index, which the grid recovers from the stored ids (this is
/// exactly why the paper says the agent approach "significantly
/// simplifies the parallelization of PRNG").

#include "traffic/traffic.hpp"

namespace peachy::traffic {

/// Run `steps` steps with the grid data structure.  Returns the final
/// state in the same (canonical agent) form — bit-identical to
/// run_serial for the same spec.
[[nodiscard]] State run_grid(const Spec& spec, std::size_t steps);

}  // namespace peachy::traffic
