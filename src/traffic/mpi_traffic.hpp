#pragma once
/// \file mpi_traffic.hpp
/// \brief Distributed-memory Nagel–Schreckenberg (paper §5's variation:
/// "Students could implement a distributed-memory parallel code using
/// MPI").
///
/// The classic first distributed solution: state is replicated (every
/// rank holds the full position/velocity arrays from the previous step's
/// exchange), *computation* is distributed — each rank updates only its
/// static block of canonical car indices, fast-forwarding the shared LCG
/// stream to its block's first draw (the same reproducibility discipline
/// as the shared-memory version).  A ring allgather then rebuilds the
/// replicated state for the next step.  Compute is Θ(N/P) per rank per
/// step; communication is Θ(N) per step — the trade-off students are
/// asked to discover and discuss (and the stepping stone to a halo-only
/// design).
///
/// Output is bit-identical to run_serial for ANY rank count.

#include "faults/checkpoint.hpp"
#include "mpi/mpi.hpp"
#include "traffic/traffic.hpp"

namespace peachy::traffic {

/// Telemetry for the distributed run.
struct MpiTrafficStats {
  std::uint64_t messages = 0;       ///< mini-MPI messages for the whole run
  std::uint64_t bytes = 0;
  std::uint64_t fast_forwards = 0;  ///< PRNG cursor jumps issued by this rank
};

/// Run `steps` steps with computation distributed over the communicator.
/// Every rank returns the full final state, bit-identical to
/// run_serial(spec, steps).  `stats`, if non-null, is filled by the
/// calling rank — pass a rank-local object, never one shared across rank
/// lambdas (data race).
///
/// When `ft.active()`, rank 0 snapshots {step, pos, vel} into `ft.store`
/// every `ft.every` steps, and a run that finds an existing snapshot under
/// `ft.key` resumes from it instead of step 0.  Because the PRNG cursor is
/// absolute in (step, car index), a resumed run is bit-identical to an
/// uninterrupted one for ANY rank count — this is the property
/// examples/fault_demo verifies after a crash + shrink + restart cycle.
[[nodiscard]] State run_mpi(mpi::Comm& comm, const Spec& spec, std::size_t steps,
                            MpiTrafficStats* stats = nullptr,
                            const faults::FtOptions& ft = {});

}  // namespace peachy::traffic
