#include "traffic/diagram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace peachy::traffic {

std::string spacetime_ascii(const Spec& spec, const std::vector<State>& snapshots,
                            std::size_t stride) {
  PEACHY_CHECK(stride >= 1, "spacetime: stride must be positive");
  std::string out;
  const std::size_t width = (spec.road_length + stride - 1) / stride;
  out.reserve(snapshots.size() * (width + 1));
  for (const State& st : snapshots) {
    std::string row(width, ' ');
    for (std::size_t i = 0; i < st.pos.size(); ++i) {
      const auto x = static_cast<std::size_t>(st.pos[i]) / stride;
      const char mark = st.vel[i] == 0 ? '#' : (st.vel[i] < spec.v_max ? 'o' : '.');
      // Keep the most congested marker when downsampling collapses cells.
      if (row[x] == ' ' || mark == '#' || (mark == 'o' && row[x] == '.')) row[x] = mark;
    }
    out += row;
    out += '\n';
  }
  return out;
}

std::string spacetime_pgm(const Spec& spec, const std::vector<State>& snapshots) {
  PEACHY_CHECK(!snapshots.empty(), "spacetime: no snapshots");
  std::ostringstream os;
  os << "P5\n" << spec.road_length << ' ' << snapshots.size() << "\n255\n";
  for (const State& st : snapshots) {
    std::string row(spec.road_length, static_cast<char>(255));  // empty road = white
    for (std::size_t i = 0; i < st.pos.size(); ++i) {
      // Stopped cars black; faster cars lighter gray.
      const double shade =
          160.0 * static_cast<double>(st.vel[i]) / static_cast<double>(spec.v_max);
      row[static_cast<std::size_t>(st.pos[i])] = static_cast<char>(
          static_cast<unsigned char>(shade));
    }
    os.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  return os.str();
}

std::vector<FlowPoint> fundamental_diagram(const Spec& base, const std::vector<double>& densities,
                                           std::size_t steps) {
  PEACHY_CHECK(!densities.empty(), "fundamental_diagram: no densities");
  PEACHY_CHECK(steps >= 2, "fundamental_diagram: need at least 2 steps");
  std::vector<FlowPoint> out;
  out.reserve(densities.size());
  for (double rho : densities) {
    PEACHY_CHECK(rho > 0.0 && rho <= 1.0, "fundamental_diagram: density outside (0,1]");
    Spec spec = base;
    spec.cars = std::max<std::size_t>(1, static_cast<std::size_t>(
                                             std::round(rho * static_cast<double>(
                                                                  spec.road_length))));
    std::vector<State> snapshots;
    (void)run_serial(spec, steps, &snapshots);
    double v_sum = 0.0;
    std::size_t rows = 0;
    for (std::size_t s = steps / 2; s < snapshots.size(); ++s) {  // skip warmup
      v_sum += mean_velocity(snapshots[s]);
      ++rows;
    }
    FlowPoint pt;
    pt.density = spec.density();
    pt.mean_velocity = v_sum / static_cast<double>(rows);
    pt.flow = pt.density * pt.mean_velocity;
    out.push_back(pt);
  }
  return out;
}

double jam_fraction(const std::vector<State>& snapshots) {
  PEACHY_CHECK(!snapshots.empty(), "jam_fraction: no snapshots");
  double total = 0.0;
  for (const State& st : snapshots) {
    total += static_cast<double>(stopped_cars(st)) / static_cast<double>(st.vel.size());
  }
  return total / static_cast<double>(snapshots.size());
}

}  // namespace peachy::traffic
