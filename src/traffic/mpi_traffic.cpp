#include "traffic/mpi_traffic.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::traffic {

State run_mpi(mpi::Comm& comm, const Spec& spec, std::size_t steps, MpiTrafficStats* stats,
              const faults::FtOptions& ft) {
  // Every rank derives the identical initial state (deterministic in the
  // seed), as if root had broadcast the input file.
  State st = initial_state(spec);
  const std::size_t n = st.pos.size();
  const auto p = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  const rng::SharedStream<rng::Lcg64> stream{spec.seed};
  const auto L = static_cast<std::int64_t>(spec.road_length);

  // Per-step working buffers, hoisted so the step loop allocates nothing:
  // the block partition is identical every step, and the velocity
  // exchange lands in a reused int32 staging vector.
  const auto blk = support::static_block(n, p, me);
  std::vector<std::int64_t> my_pos(blk.end - blk.begin);
  std::vector<std::int32_t> my_vel(blk.end - blk.begin);
  std::vector<std::int32_t> all_vel(n);

  // Restart: every rank reloads the same snapshot (the store is shared
  // memory), so the replicated state stays replicated.  The PRNG cursor is
  // absolute in (step, car), so resuming at `first` consumes exactly the
  // draws an uninterrupted run would — bit-identical for any rank count.
  std::size_t first = 0;
  if (ft.active()) {
    if (const auto snap = ft.store->load(ft.key)) {
      faults::BlobReader r{snap->blob};
      st.pos = r.get_vec<std::int64_t>();
      st.vel = r.get_vec<int>();
      PEACHY_CHECK(st.pos.size() == n && st.vel.size() == n,
                   "traffic restart: snapshot car count does not match the spec");
      first = static_cast<std::size_t>(snap->next_step);
      if (obs::enabled()) obs::counter("faults.restores").add(1);
    }
  }

  for (std::size_t s = first; s < steps; ++s) {
    if (blk.begin < blk.end) {
      auto gen = stream.cursor(static_cast<std::uint64_t>(s) * n + blk.begin);
      for (std::size_t i = blk.begin; i < blk.end; ++i) {
        const double draw = gen.next_double();
        int v = std::min(st.vel[i] + 1, spec.v_max);
        v = static_cast<int>(std::min<std::int64_t>(v, gap_ahead(spec, st, i)));
        if (draw < spec.p_slow && v > 0) --v;
        std::int64_t pos = st.pos[i] + v;
        if (pos >= L) pos -= L;
        my_pos[i - blk.begin] = pos;
        my_vel[i - blk.begin] = v;
      }
    }

    // Exchange: rebuild the replicated state (ring allgather keeps rank
    // order, which is canonical-index order).  allgather_into lands the
    // blocks straight into the replicated arrays — the local phase is
    // complete, so st.pos can be overwritten in place — and its layout
    // checks are the "exchange lost cars" guard.
    comm.allgather_into<std::int64_t>(my_pos, std::span<std::int64_t>{st.pos});
    comm.allgather_into<std::int32_t>(my_vel, std::span<std::int32_t>{all_vel});
    st.vel.assign(all_vel.begin(), all_vel.end());

    // Canonicalize identically on every rank (pure local computation on
    // identical replicated data -> identical result everywhere).
    if (n > 1) {
      const auto min_it = std::min_element(st.pos.begin(), st.pos.end());
      const auto k = min_it - st.pos.begin();
      if (k != 0) {
        std::rotate(st.pos.begin(), st.pos.begin() + k, st.pos.end());
        std::rotate(st.vel.begin(), st.vel.begin() + k, st.vel.end());
      }
    }

    // Iteration-boundary checkpoint: state is replicated and identical on
    // every rank, so only rank 0 writes (checkpoint.hpp's discipline).
    // Across processes the store is per-process memory, not shared — a
    // rank-0-only write would leave every other process unable to restart
    // — so there every rank checkpoints its own (identical) copy.  An
    // explicit ft.owner pins the writer instead (durable shared stores:
    // one rank writing the file is enough for every survivor to restore).
    const bool i_checkpoint = ft.owner >= 0
                                  ? comm.rank() == ft.owner
                                  : (comm.spans_processes() || comm.rank() == 0);
    if (ft.active() && (s + 1) % static_cast<std::size_t>(ft.every) == 0 && i_checkpoint) {
      faults::BlobWriter w;
      w.put_vec(st.pos);
      w.put_vec(st.vel);
      ft.store->save(ft.key, faults::Snapshot{s + 1, std::move(w).take()});
      if (obs::enabled()) obs::counter("faults.checkpoints").add(1);
    }
  }

  if (stats != nullptr) {
    stats->messages = comm.traffic().messages;
    stats->bytes = comm.traffic().bytes;
    stats->fast_forwards = stream.ff_calls();
  }
  return st;
}

}  // namespace peachy::traffic
