/// \file tune.cpp
/// \brief Profile parsing/serialization and the active-snapshot registry.
///
/// The JSON handling is a self-contained recursive-descent parser over a
/// tiny value model — the container bakes in no JSON library, and the
/// profile grammar is small enough that a dependency would cost more
/// than these ~150 lines.  Parsing is strict about structure (it is a
/// versioned artifact, not a config DSL) but deliberately lenient about
/// *unknown* keys, so a newer tuner can add fields without breaking an
/// older loader — the versioned schema string gates real incompatibility.

#include "tune/tune.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PEACHY_TUNE_HAS_LSAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define PEACHY_TUNE_HAS_LSAN 1
#endif
#if defined(PEACHY_TUNE_HAS_LSAN)
#include <sanitizer/lsan_interface.h>
#endif

namespace peachy::tune {

namespace {

/// The active-snapshot registry leaks each installed Tunables on purpose
/// (readers during static destruction; see resolve_from_env).  Tell
/// LeakSanitizer so the asan-ubsan CI matrix doesn't flag the design.
const Tunables* leak_on_purpose(const Tunables* t) {
#if defined(PEACHY_TUNE_HAS_LSAN)
  __lsan_ignore_object(t);
#endif
  return t;
}

constexpr std::string_view kSchema = "peachy-tune/1";

// ---- minimal JSON value model + parser --------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;  // order kept

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::shared_ptr<JsonArray> arr;
  std::shared_ptr<JsonObject> obj;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject || !obj) return nullptr;
    for (const auto& [k, v] : *obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  /// Parses one document; on failure `error()` names the problem and the
  /// byte offset where it was detected.
  [[nodiscard]] bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why + " at byte " + std::to_string(pos_);
    return false;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return at_end() ? '\0' : text_[pos_]; }
  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (depth_ > 32) return fail("nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.s);
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.b = true;
        return true;
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.b = false;
        return true;
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++depth_;
    consume('{');
    out.kind = JsonValue::Kind::kObject;
    out.obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (peek() != '"' || !parse_string(key)) return fail("expected object key string");
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj->emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    ++depth_;
    consume('[');
    out.kind = JsonValue::Kind::kArray;
    out.arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr->push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            // Profiles are ASCII artifacts; accept \uXXXX but only map
            // the Basic Latin range — anything else is a parse error.
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            if (code > 0x7F) return fail("non-ASCII \\u escape in profile");
            out.push_back(static_cast<char>(code));
            break;
          }
          default:
            return fail("unknown escape in string");
        }
        continue;
      }
      out.push_back(c);
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    bool is_double = false;
    if (peek() == '.') {
      is_double = true;
      ++pos_;
      while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_double = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("expected a JSON value");
    }
    const std::string tok{text_.substr(start, pos_ - start)};
    if (is_double) {
      out.kind = JsonValue::Kind::kDouble;
      out.d = std::strtod(tok.c_str(), nullptr);
    } else {
      out.kind = JsonValue::Kind::kInt;
      errno = 0;
      out.i = std::strtoll(tok.c_str(), nullptr, 10);
      if (errno == ERANGE) return fail("integer out of range");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

// ---- field extraction helpers ----------------------------------------------

/// Reads a non-negative integer field into `out`; absent is fine (keeps
/// the default), present-but-invalid keeps the default and records a
/// named warning.
template <typename T>
void read_nonneg(const JsonValue& obj, std::string_view key, T& out,
                 std::vector<std::string>& warnings) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return;
  if (v->kind != JsonValue::Kind::kInt || v->i < 0) {
    warnings.push_back("field '" + std::string(key) +
                       "' must be a non-negative integer; keeping default");
    return;
  }
  out = static_cast<T>(v->i);
}

}  // namespace

// ---- names ------------------------------------------------------------------

const char* coll_op_name(CollOp op) noexcept {
  switch (op) {
    case CollOp::kBroadcast: return "broadcast";
    case CollOp::kReduce: return "reduce";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAllgather: return "allgather";
  }
  return "?";
}

const char* coll_algo_name(CollAlgo algo) noexcept {
  switch (algo) {
    case CollAlgo::kAuto: return "auto";
    case CollAlgo::kLinear: return "linear";
    case CollAlgo::kBinomial: return "binomial";
    case CollAlgo::kRing: return "ring";
    case CollAlgo::kRecDouble: return "recdouble";
  }
  return "?";
}

bool parse_coll_op(std::string_view name, CollOp& out) noexcept {
  for (const CollOp op : {CollOp::kBroadcast, CollOp::kReduce, CollOp::kAllreduce,
                          CollOp::kAllgather}) {
    if (name == coll_op_name(op)) {
      out = op;
      return true;
    }
  }
  return false;
}

bool parse_coll_algo(std::string_view name, CollAlgo& out) noexcept {
  for (const CollAlgo a : {CollAlgo::kAuto, CollAlgo::kLinear, CollAlgo::kBinomial,
                           CollAlgo::kRing, CollAlgo::kRecDouble}) {
    if (name == coll_algo_name(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

bool gemm_tile_supported(int mr, int nr) noexcept {
  return (mr == 4 && nr == 8) || (mr == 2 && nr == 8) || (mr == 4 && nr == 4) ||
         (mr == 8 && nr == 4);
}

// ---- selection ---------------------------------------------------------------

CollAlgo Tunables::coll_algo(CollOp op, int p, std::int64_t bytes) const noexcept {
  for (const CollRule& r : coll_rules) {
    if (r.op != op) continue;
    if (p < r.p_min || p > r.p_max) continue;
    if (bytes == kBytesUnknown) {
      // Unknown sizes may only match rules that cannot split ranks by
      // size — see the header's communication-free selection contract.
      if (!r.byte_range_unconstrained()) continue;
    } else {
      if (bytes < r.bytes_min || bytes > r.bytes_max) continue;
    }
    // Recursive doubling exists only for power-of-two rank counts; a
    // rule that names it elsewhere silently takes the default path.
    if (r.algo == CollAlgo::kRecDouble && (p <= 0 || (p & (p - 1)) != 0)) {
      return CollAlgo::kAuto;
    }
    return r.algo;
  }
  return CollAlgo::kAuto;
}

// ---- serialization -----------------------------------------------------------

std::string to_json(const Profile& profile) {
  const Tunables& t = profile.tunables;
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"";
  out += kSchema;
  out += "\",\n";
  out += "  \"isa\": ";
  append_escaped(out, profile.isa);
  out += ",\n  \"tuned_for\": ";
  append_escaped(out, profile.tuned_for);
  out += ",\n  \"tunables\": {\n";
  out += "    \"parallel_for_grain\": " + std::to_string(t.parallel_for_grain) + ",\n";
  out += "    \"gemm_mr\": " + std::to_string(t.gemm_mr) + ",\n";
  out += "    \"gemm_nr\": " + std::to_string(t.gemm_nr) + ",\n";
  out += "    \"distance_block_rows\": " + std::to_string(t.distance_block_rows) + ",\n";
  out += "    \"pool_max_parked\": " + std::to_string(t.pool_max_parked) + "\n";
  out += "  },\n";
  out += "  \"collectives\": [";
  for (std::size_t i = 0; i < t.coll_rules.size(); ++i) {
    const CollRule& r = t.coll_rules[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"op\": \"";
    out += coll_op_name(r.op);
    out += "\", \"algo\": \"";
    out += coll_algo_name(r.algo);
    out += "\"";
    if (r.p_min != 1) out += ", \"p_min\": " + std::to_string(r.p_min);
    if (r.p_max != std::numeric_limits<int>::max()) {
      out += ", \"p_max\": " + std::to_string(r.p_max);
    }
    if (r.bytes_min != 0) out += ", \"bytes_min\": " + std::to_string(r.bytes_min);
    if (r.bytes_max != kBytesMax) out += ", \"bytes_max\": " + std::to_string(r.bytes_max);
    out += "}";
  }
  out += t.coll_rules.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// ---- parsing -----------------------------------------------------------------

LoadResult parse_profile(std::string_view json_text) {
  LoadResult res;
  JsonValue doc;
  JsonParser parser{json_text};
  if (!parser.parse(doc)) {
    res.warnings.push_back("malformed JSON: " + parser.error());
    return res;
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    res.warnings.push_back("top-level value is not an object");
    return res;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString) {
    res.warnings.push_back("missing 'schema' field (expected \"" + std::string(kSchema) + "\")");
    return res;
  }
  if (schema->s != kSchema) {
    res.warnings.push_back("schema version mismatch: got \"" + schema->s + "\", this build reads \"" +
                           std::string(kSchema) + "\"");
    return res;
  }
  res.ok = true;

  if (const JsonValue* isa = doc.find("isa");
      isa != nullptr && isa->kind == JsonValue::Kind::kString) {
    res.profile.isa = isa->s;
  }
  if (const JsonValue* tf = doc.find("tuned_for");
      tf != nullptr && tf->kind == JsonValue::Kind::kString) {
    res.profile.tuned_for = tf->s;
  }

  Tunables& t = res.profile.tunables;
  if (const JsonValue* tv = doc.find("tunables"); tv != nullptr) {
    if (tv->kind != JsonValue::Kind::kObject) {
      res.warnings.push_back("'tunables' is not an object; keeping all defaults");
    } else {
      read_nonneg(*tv, "parallel_for_grain", t.parallel_for_grain, res.warnings);
      int mr = t.gemm_mr;
      int nr = t.gemm_nr;
      read_nonneg(*tv, "gemm_mr", mr, res.warnings);
      read_nonneg(*tv, "gemm_nr", nr, res.warnings);
      if (gemm_tile_supported(mr, nr)) {
        t.gemm_mr = mr;
        t.gemm_nr = nr;
      } else {
        res.warnings.push_back("gemm tile " + std::to_string(mr) + "x" + std::to_string(nr) +
                               " is not an instantiated micro-kernel; keeping default " +
                               std::to_string(t.gemm_mr) + "x" + std::to_string(t.gemm_nr));
      }
      read_nonneg(*tv, "distance_block_rows", t.distance_block_rows, res.warnings);
      read_nonneg(*tv, "pool_max_parked", t.pool_max_parked, res.warnings);
    }
  }

  if (const JsonValue* rules = doc.find("collectives"); rules != nullptr) {
    if (rules->kind != JsonValue::Kind::kArray) {
      res.warnings.push_back("'collectives' is not an array; keeping no rules");
    } else {
      for (std::size_t i = 0; i < rules->arr->size(); ++i) {
        const JsonValue& rv = (*rules->arr)[i];
        const std::string where = "collectives[" + std::to_string(i) + "]";
        if (rv.kind != JsonValue::Kind::kObject) {
          res.warnings.push_back(where + " is not an object; rule skipped");
          continue;
        }
        CollRule rule;
        const JsonValue* opv = rv.find("op");
        const JsonValue* algov = rv.find("algo");
        if (opv == nullptr || opv->kind != JsonValue::Kind::kString ||
            !parse_coll_op(opv->s, rule.op)) {
          res.warnings.push_back(where + ": unknown or missing 'op'; rule skipped");
          continue;
        }
        if (algov == nullptr || algov->kind != JsonValue::Kind::kString ||
            !parse_coll_algo(algov->s, rule.algo)) {
          res.warnings.push_back(where + ": unknown or missing 'algo'; rule skipped");
          continue;
        }
        read_nonneg(rv, "p_min", rule.p_min, res.warnings);
        read_nonneg(rv, "p_max", rule.p_max, res.warnings);
        read_nonneg(rv, "bytes_min", rule.bytes_min, res.warnings);
        read_nonneg(rv, "bytes_max", rule.bytes_max, res.warnings);
        if (rule.p_min > rule.p_max || rule.bytes_min > rule.bytes_max) {
          res.warnings.push_back(where + ": empty p/bytes range; rule skipped");
          continue;
        }
        t.coll_rules.push_back(rule);
      }
    }
  }
  return res;
}

LoadResult load_profile_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    LoadResult res;
    res.warnings.push_back("cannot open '" + path + "'");
    return res;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  LoadResult res = parse_profile(buf.str());
  for (std::string& w : res.warnings) w = path + ": " + w;
  return res;
}

bool write_profile_file(const Profile& profile, const std::string& path) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    std::fprintf(stderr, "peachy-tune: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << to_json(profile);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "peachy-tune: write to '%s' failed\n", path.c_str());
    return false;
  }
  return true;
}

// ---- the active snapshot -----------------------------------------------------

namespace {

/// Resolve the startup snapshot from PEACHY_TUNE.  Returns a pointer into
/// storage that lives forever (leaked on purpose: Machines constructed
/// during static destruction must still be able to read it).
const Tunables* resolve_from_env() {
  const char* env = std::getenv("PEACHY_TUNE");
  if (env == nullptr || *env == '\0') return &defaults();
  LoadResult res = load_profile_file(env);
  if (!res.ok) {
    std::fprintf(stderr,
                 "peachy-tune: PEACHY_TUNE profile rejected, using compiled-in defaults:\n");
    for (const std::string& w : res.warnings) {
      std::fprintf(stderr, "peachy-tune:   %s\n", w.c_str());
    }
    return &defaults();
  }
  for (const std::string& w : res.warnings) {
    std::fprintf(stderr, "peachy-tune: warning: %s\n", w.c_str());
  }
  return leak_on_purpose(new Tunables{std::move(res.profile.tunables)});
}

std::atomic<const Tunables*> g_active{nullptr};
std::mutex g_resolve_mu;

}  // namespace

const Tunables& defaults() noexcept {
  static const Tunables kDefaults{};
  return kDefaults;
}

const Tunables& active() noexcept {
  const Tunables* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  const std::lock_guard<std::mutex> lk{g_resolve_mu};
  t = g_active.load(std::memory_order_relaxed);
  if (t == nullptr) {
    t = resolve_from_env();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

void set_active(const Tunables& t) {
  g_active.store(leak_on_purpose(new Tunables{t}), std::memory_order_release);
}

void reset_active() {
  const std::lock_guard<std::mutex> lk{g_resolve_mu};
  g_active.store(resolve_from_env(), std::memory_order_release);
}

}  // namespace peachy::tune
