#pragma once
/// \file tune.hpp
/// \brief peachy::tune — the self-tuning substrate's profile layer.
///
/// The paper's HPO assignment (§7) is a search harness; this module turns
/// it inward.  Every performance-sensitive constant that used to be a
/// compile-time literal — the collective algorithm per (op, p, bytes),
/// the parallel_for inline grain, the gemm register tile, the distance
/// panel row blocking, the BufferPool parking bound — is now read from a
/// process-wide `Tunables` snapshot.  The compiled-in defaults are
/// exactly the pre-tune constants, so a build that never loads a profile
/// behaves (and performs) identically to one that predates this module.
///
/// Profiles are versioned JSON artifacts (`peachy-tune/1`) produced by
/// `tools/peachy-tune` (a successive-halving search over the config
/// space, reusing peachy::hpo) and loaded at startup from the file named
/// by `PEACHY_TUNE=<file>` — or installed explicitly via set_active() /
/// mpi::RunOptions.  A missing, corrupt, or version-mismatched profile
/// falls back to the defaults with a named warning on stderr; it never
/// crashes and never half-applies.
///
/// **Selection must be communication-free.**  Collective algorithm choice
/// happens independently on every rank, so the lookup key must be
/// rank-symmetric.  p always is.  Bytes are part of the key only for
/// operations whose API contract forces equal sizes on every rank
/// (reduce/allreduce contributions, broadcast_into spans); operations
/// where non-roots cannot know the payload size in advance (plain
/// broadcast, variable-size allgather) query with `kBytesUnknown` and
/// match only rules that leave the byte range unconstrained.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace peachy::tune {

/// Collective operations with selectable algorithms.
enum class CollOp : int { kBroadcast = 0, kReduce = 1, kAllreduce = 2, kAllgather = 3 };
inline constexpr int kCollOpCount = 4;

/// Algorithm choices.  kAuto means "the compiled-in default for this op"
/// (binomial tree for broadcast/reduce, reduce+bcast for allreduce, ring
/// for allgather) — the exact pre-tune code paths, byte for byte.
/// kRecDouble requires a power-of-two rank count; selection falls back to
/// the default on other p (never an error — a profile tuned at p=8 must
/// stay loadable at p=6).
enum class CollAlgo : int { kAuto = 0, kLinear = 1, kBinomial = 2, kRing = 3, kRecDouble = 4 };

[[nodiscard]] const char* coll_op_name(CollOp op) noexcept;
[[nodiscard]] const char* coll_algo_name(CollAlgo algo) noexcept;
[[nodiscard]] bool parse_coll_op(std::string_view name, CollOp& out) noexcept;
[[nodiscard]] bool parse_coll_algo(std::string_view name, CollAlgo& out) noexcept;

/// Byte-count placeholder for collectives whose payload size is not known
/// symmetrically on every rank before the operation runs.
inline constexpr std::int64_t kBytesUnknown = -1;
inline constexpr std::int64_t kBytesMax = std::numeric_limits<std::int64_t>::max();

/// One selection rule: `algo` applies to `op` when p ∈ [p_min, p_max] and
/// the (symmetric) payload byte count ∈ [bytes_min, bytes_max], all
/// inclusive.  Rules are consulted in profile order; first match wins.  A
/// query with kBytesUnknown matches only rules whose byte range is the
/// full [0, kBytesMax] — an unconstrained rule can't disagree across
/// ranks, a constrained one could.
struct CollRule {
  CollOp op = CollOp::kBroadcast;
  int p_min = 1;
  int p_max = std::numeric_limits<int>::max();
  std::int64_t bytes_min = 0;
  std::int64_t bytes_max = kBytesMax;
  CollAlgo algo = CollAlgo::kAuto;

  [[nodiscard]] bool byte_range_unconstrained() const noexcept {
    return bytes_min <= 0 && bytes_max == kBytesMax;
  }
};

/// The full tunable-constant snapshot.  Default-constructed values ARE
/// the pre-tune compiled-in constants; an empty rule list means every
/// collective takes its historical default path.
struct Tunables {
  /// parallel_for loops of at most this many iterations run inline
  /// (support/parallel_for.hpp; historical kInlineGrain).
  std::size_t parallel_for_grain = 2048;
  /// gemm register tile (rows × cols of C accumulated in registers) for
  /// the AVX2 micro-kernel.  Only the instantiated shapes are legal —
  /// see gemm_tile_supported(); anything else loads as the default.
  int gemm_mr = 4;
  int gemm_nr = 8;
  /// Row-block height for the batched squared-distance panel kernel;
  /// 0 = unblocked (the historical single pass over all rows).
  std::size_t distance_block_rows = 0;
  /// BufferPool per-size-class parked-slab bound (buffer_pool.cpp).
  std::size_t pool_max_parked = 64;
  /// Collective algorithm selection rules, first match wins.
  std::vector<CollRule> coll_rules;

  /// Resolve the algorithm for `op` at rank count `p` with symmetric
  /// payload `bytes` (or kBytesUnknown).  Returns kAuto when no rule
  /// matches.  Also demotes kRecDouble to kAuto when p is not a power of
  /// two — the algorithm is only defined there.
  [[nodiscard]] CollAlgo coll_algo(CollOp op, int p, std::int64_t bytes) const noexcept;
};

/// True for the gemm register tiles the kernel layer instantiates.
[[nodiscard]] bool gemm_tile_supported(int mr, int nr) noexcept;

/// A loadable/saveable profile: tunables plus provenance metadata.
struct Profile {
  std::string isa;          ///< ISA the profile was tuned on (informational)
  std::string tuned_for;    ///< free-form provenance, e.g. "p=2,4,8 n=1..64Ki"
  Tunables tunables;
};

/// Outcome of parsing/loading a profile.  `ok == false` means the input
/// was unusable (corrupt, wrong schema) and `profile` holds pure
/// defaults; `warnings` carries one named message per problem either way
/// (a partially-specified profile loads ok with its gaps defaulted, but
/// invalid field *values* are individually rejected with a warning).
struct LoadResult {
  bool ok = false;
  Profile profile;
  std::vector<std::string> warnings;
};

/// Serialize to the versioned `peachy-tune/1` JSON document.
[[nodiscard]] std::string to_json(const Profile& profile);

/// Parse a `peachy-tune/1` JSON document (never throws on bad input).
[[nodiscard]] LoadResult parse_profile(std::string_view json_text);

/// Load a profile file; a missing/unreadable file is an `ok == false`
/// result with a named warning, exactly like corrupt content.
[[nodiscard]] LoadResult load_profile_file(const std::string& path);

/// Write `to_json(profile)` to `path`; false (with a stderr warning) on
/// I/O failure.
bool write_profile_file(const Profile& profile, const std::string& path);

/// The process-wide active tunables.  First call resolves `PEACHY_TUNE`:
/// set and loadable → that profile; set but broken → defaults plus one
/// named stderr warning; unset → defaults.  Subsequent calls are one
/// atomic load.  The reference stays valid forever (storage is leaked,
/// like the obs registry, so static-destruction order can't bite).
[[nodiscard]] const Tunables& active() noexcept;

/// Compiled-in defaults (what active() returns with no profile).
[[nodiscard]] const Tunables& defaults() noexcept;

/// Install `t` as the active snapshot (tests, benchmarks, peachy-tune).
/// Copies; the caller's object need not outlive the call.
void set_active(const Tunables& t);

/// Drop any set_active() override and re-resolve from the environment.
void reset_active();

}  // namespace peachy::tune
