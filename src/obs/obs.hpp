#pragma once
/// \file obs.hpp
/// \brief peachy::obs — the tracing + metrics layer.
///
/// The paper's assignments are graded on *observed* parallel behaviour —
/// where time goes, how many messages move, how long tasks wait — so every
/// substrate in peachy is instrumented with this layer:
///
///   * **Spans**: nestable timed scopes (`SpanScope`) recorded into
///     per-thread lock-free buffers and exported as Chrome `trace_event`
///     JSON, viewable in `chrome://tracing` or https://ui.perfetto.dev.
///   * **Counters**: named monotonic totals (`counter("mpi.messages")`)
///     summarized as plain text at exit and embedded in the trace JSON.
///   * **Gauges**: timestamped value samples (`gauge(name, v)`) that
///     render as counter tracks in the trace (e.g. mailbox queue depth).
///   * **Histograms**: log2-bucketed distributions (`histogram(name)`)
///     for latency-shaped quantities (task dwell time); the summary
///     reports approximate p50/p99/max.
///
/// **Gating.**  The layer is always compiled and enabled by the
/// environment variable `PEACHY_TRACE=<file>` (trace JSON is written to
/// `<file>` at process exit, the counter summary to stderr), or
/// programmatically via `enable()` for tests.  When disabled, every hook
/// costs one relaxed atomic load — measured at <2% on `bench_kernels`
/// (scripts/check.sh `obs-smoke` guards this).
///
/// **Buffer design.**  Each thread appends events to its own chain of
/// fixed-size blocks; the block's event count is published with a release
/// store and readers (the exit dump, `snapshot_events`) walk the chain
/// with acquire loads — single-writer/single-reader publication with no
/// locks on the hot path.  Buffers are owned by a process-lifetime
/// registry, so threads may exit before the dump.  A per-thread event cap
/// (~1M) bounds memory; overflow is counted, never blocks.
///
/// This module is self-contained (no peachy dependencies) so every other
/// module — including support itself — can hook into it.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace peachy::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// The hook gate: one relaxed load.  Every instrumentation site checks
/// this before touching anything else.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds since the trace clock's origin (process start, roughly).
/// Monotonic; shared by every event so spans from different threads align.
[[nodiscard]] std::uint64_t now_ns() noexcept;

// ---- control surface --------------------------------------------------------

/// Enable recording.  With a non-empty `path`, the trace JSON is written
/// there at process exit (the `PEACHY_TRACE=<file>` env var does exactly
/// this before main); with an empty path nothing is dumped automatically
/// — tests call `write_trace` themselves.
void enable(const std::string& path = {});

/// Stop recording (buffers and counters are retained for inspection).
void disable() noexcept;

/// Write everything recorded so far as Chrome trace-event JSON
/// (schema "peachy-trace/1").  Returns false (and prints to stderr) if
/// the file cannot be written.  Safe while other threads keep tracing.
bool write_trace(const std::string& path);

/// Plain-text rendering of every counter and histogram (the exit summary).
[[nodiscard]] std::string summary_text();

/// Test isolation: zero all counters/histograms and exclude previously
/// recorded events from future snapshots/dumps (a timestamp watermark —
/// buffers are not touched, so concurrent tracing threads are safe).
void reset();

// ---- counters ---------------------------------------------------------------

/// A named monotonic total.  Obtain via `counter(name)` once (e.g. a
/// function-local static reference) and `add` on the hot path.
class Counter {
 public:
  void add(std::int64_t delta) noexcept { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend void reset();
  std::atomic<std::int64_t> v_{0};
};

/// Registry lookup (creates on first use; the reference is stable for the
/// process lifetime).  Look up once per call site, not per event.
[[nodiscard]] Counter& counter(const std::string& name);

/// Current value of a named counter (0 if never registered).
[[nodiscard]] std::int64_t counter_value(const std::string& name);

// ---- histograms -------------------------------------------------------------

/// Log2-bucketed distribution: bucket b counts values in [2^(b-1), 2^b).
/// Percentiles are reported as the upper bound of the bucket where the
/// cumulative count crosses — exact enough for latency tails.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void note(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Upper bound (a power of two) of the bucket holding the p-quantile,
  /// p in [0,1].  0 when empty.
  [[nodiscard]] std::uint64_t percentile_upper_bound(double p) const noexcept;

 private:
  friend void reset();
  friend std::string summary_text();
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

[[nodiscard]] Histogram& histogram(const std::string& name);

// ---- gauges -----------------------------------------------------------------

/// Record a timestamped value sample (a Chrome "C" counter event).  The
/// name must outlive the trace — a string literal, or a pointer obtained
/// from intern_name().
void gauge(const char* name, std::int64_t value);

/// Return a process-lifetime copy of `name` (interned in the leaked
/// registry, deduplicated).  Use for dynamically built event names —
/// e.g. a per-mailbox gauge name — so the pointer stays valid after the
/// object that built the string is destroyed.  Takes a lock; call once
/// at setup, not per event.
[[nodiscard]] const char* intern_name(const std::string& name);

// ---- spans ------------------------------------------------------------------

/// RAII timed scope.  Records one Chrome complete ("X") event on
/// destruction: category + name + begin/duration, with an optional single
/// integer argument (payload bytes, iteration count, blocked time…).
/// `cat`/`name`/`arg_key` must be string literals (or otherwise outlive
/// the trace).  When tracing is disabled the constructor is one relaxed
/// load and the destructor a plain branch.
class SpanScope {
 public:
  SpanScope(const char* cat, const char* name) noexcept
      : SpanScope{cat, name, nullptr, 0} {}
  SpanScope(const char* cat, const char* name, const char* arg_key,
            std::int64_t arg_val) noexcept
      : cat_{cat}, name_{name}, arg_key_{arg_key}, arg_val_{arg_val}, active_{enabled()} {
    if (active_) begin_ns_ = now_ns();
  }
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Set (or overwrite) the argument after construction — for values only
  /// known at scope end, e.g. time spent blocked inside the span.
  void arg(const char* key, std::int64_t value) noexcept {
    arg_key_ = key;
    arg_val_ = value;
  }

 private:
  const char* cat_;
  const char* name_;
  const char* arg_key_;
  std::int64_t arg_val_;
  bool active_;
  std::uint64_t begin_ns_ = 0;
};

// ---- structured introspection (tests) ---------------------------------------

/// One recorded event, resolved for inspection.
struct EventView {
  enum class Kind { kSpan, kGauge };
  Kind kind;
  std::uint32_t tid;       ///< trace-local thread id (registration order)
  std::string cat;         ///< span category ("" for gauges)
  std::string name;
  std::uint64_t ts_ns;     ///< begin (spans) / sample time (gauges)
  std::uint64_t dur_ns;    ///< spans only
  std::string arg_key;     ///< "" when absent
  std::int64_t arg_val;    ///< gauge value, or span argument
};

/// Every event recorded since the last reset(), in per-thread order.
[[nodiscard]] std::vector<EventView> snapshot_events();

}  // namespace peachy::obs
