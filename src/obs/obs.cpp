#include "obs/obs.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace peachy::obs {

namespace detail {
std::atomic<bool> g_enabled{false};  // constant-initialized: safe before dynamic init
}  // namespace detail

namespace {

// ---- clock ------------------------------------------------------------------

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t origin_ns() noexcept {
  static const std::uint64_t origin = steady_ns();
  return origin;
}

// ---- per-thread event buffers -----------------------------------------------

struct Event {
  enum class Kind : std::uint8_t { kSpan, kGauge };
  Kind kind;
  const char* cat;      // spans only
  const char* name;
  const char* arg_key;  // nullptr when absent
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;  // spans only
  std::int64_t arg_val;  // gauge value, or span argument
};

constexpr std::size_t kBlockEvents = 4096;
constexpr std::size_t kMaxBlocksPerThread = 256;  // ~1M events per thread

// Single-writer (owning thread) / multi-reader block.  The writer fills
// slots [0, count) and publishes count with a release store; readers load
// count with acquire and may then read those slots.
struct Block {
  std::atomic<std::size_t> count{0};
  std::atomic<Block*> next{nullptr};
  Event events[kBlockEvents];
};

struct ThreadBuffer {
  Block* head;                      // first block (never null)
  std::atomic<Block*> tail;         // writer's current block
  std::size_t blocks = 1;
  std::uint32_t tid = 0;            // registration order
  std::atomic<std::uint64_t> dropped{0};

  ThreadBuffer() : head{new Block}, tail{head} {}
};

// ---- process-lifetime registry ----------------------------------------------
//
// Leaked on purpose: worker threads (and their thread_local cleanups) may
// still be running during static destruction, and the atexit dump walks
// these structures.  Counter/Histogram references handed out by
// counter()/histogram() are stable for the process lifetime.

struct Registry {
  std::mutex mu;  // guards registration + name maps, not the hot paths
  std::vector<ThreadBuffer*> buffers;
  std::map<std::string, Counter*> counters;
  std::map<std::string, Histogram*> histograms;
  std::set<std::string> interned_names;  // stable storage for dynamic event names
  std::string trace_path;               // non-empty => dump at exit
  std::atomic<std::uint64_t> watermark{0};  // reset(): hide events older than this
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked (see above)
  return *r;
}

ThreadBuffer& thread_buffer() {
  // The buffer itself outlives the thread (owned by the registry); the
  // thread_local pointer just caches the lookup.
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = static_cast<std::uint32_t>(r.buffers.size());
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void record(const Event& ev) {
  ThreadBuffer& tb = thread_buffer();
  Block* blk = tb.tail.load(std::memory_order_relaxed);
  std::size_t n = blk->count.load(std::memory_order_relaxed);
  if (n == kBlockEvents) {
    if (tb.blocks >= kMaxBlocksPerThread) {
      tb.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto* fresh = new Block;
    blk->next.store(fresh, std::memory_order_release);
    tb.tail.store(fresh, std::memory_order_release);
    ++tb.blocks;
    blk = fresh;
    n = 0;
  }
  blk->events[n] = ev;
  blk->count.store(n + 1, std::memory_order_release);
}

// Walk every buffer and invoke fn on each event at or past the watermark.
// Safe concurrently with writers: only published slots are read.
template <typename Fn>
void for_each_event(Fn&& fn) {
  Registry& r = registry();
  std::vector<ThreadBuffer*> bufs;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    bufs = r.buffers;
  }
  const std::uint64_t mark = r.watermark.load(std::memory_order_relaxed);
  for (ThreadBuffer* tb : bufs) {
    for (Block* blk = tb->head; blk != nullptr;
         blk = blk->next.load(std::memory_order_acquire)) {
      const std::size_t n = blk->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        const Event& ev = blk->events[i];
        if (ev.ts_ns >= mark) fn(*tb, ev);
      }
    }
  }
}

// ---- JSON helpers -----------------------------------------------------------

void json_escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// µs with ns precision, as a plain decimal (trace_event ts/dur unit).
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

void write_trace_events(std::ostream& os) {
  bool first = true;
  for_each_event([&](const ThreadBuffer& tb, const Event& ev) {
    if (!first) os << ",\n";
    first = false;
    if (ev.kind == Event::Kind::kSpan) {
      os << R"(  {"ph":"X","pid":1,"tid":)" << tb.tid << R"(,"cat":")";
      json_escape(os, ev.cat);
      os << R"(","name":")";
      json_escape(os, ev.name);
      os << R"(","ts":)";
      write_us(os, ev.ts_ns);
      os << R"(,"dur":)";
      write_us(os, ev.dur_ns);
      if (ev.arg_key != nullptr) {
        os << R"(,"args":{")";
        json_escape(os, ev.arg_key);
        os << R"(":)" << ev.arg_val << '}';
      }
      os << '}';
    } else {
      os << R"(  {"ph":"C","pid":1,"tid":)" << tb.tid << R"(,"name":")";
      json_escape(os, ev.name);
      os << R"(","ts":)";
      write_us(os, ev.ts_ns);
      os << R"(,"args":{"value":)" << ev.arg_val << "}}";
    }
  });
  if (!first) os << '\n';
}

// ---- exit dump --------------------------------------------------------------

void dump_at_exit() {
  Registry& r = registry();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    path = r.trace_path;
  }
  if (path.empty()) return;
  if (write_trace(path)) {
    std::fprintf(stderr, "peachy::obs: trace written to %s\n", path.c_str());
  }
  const std::string summary = summary_text();
  if (!summary.empty()) {
    std::fprintf(stderr, "peachy::obs summary\n%s", summary.c_str());
  }
}

bool init_from_env() {
  const char* path = std::getenv("PEACHY_TRACE");
  if (path != nullptr && *path != '\0') enable(path);
  return true;
}

// Dynamic initializer: reads PEACHY_TRACE once, before main in practice
// (and harmlessly on first odr-use otherwise).
const bool g_env_inited = init_from_env();

}  // namespace

// ---- public surface ---------------------------------------------------------

std::uint64_t now_ns() noexcept {
  // Pin the origin before sampling: on the very first call the origin is
  // initialized *during* this function, and sampling the clock first
  // would underflow (steady < origin) into a huge bogus timestamp.
  const std::uint64_t origin = origin_ns();
  const std::uint64_t t = steady_ns();
  return t >= origin ? t - origin : 0;
}

void enable(const std::string& path) {
  (void)g_env_inited;
  origin_ns();  // pin the clock origin before any event
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (!path.empty()) {
      static std::once_flag once;
      std::call_once(once, [] { std::atexit(dump_at_exit); });
      r.trace_path = path;
    }
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() noexcept {
  detail::g_enabled.store(false, std::memory_order_release);
}

void reset() {
  Registry& r = registry();
  r.watermark.store(now_ns(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->v_.store(0, std::memory_order_relaxed);
  for (auto& [name, h] : r.histograms) {
    for (auto& b : h->buckets_) b.store(0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
    h->sum_.store(0, std::memory_order_relaxed);
    h->max_.store(0, std::memory_order_relaxed);
  }
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Counter*& slot = r.counters[name];
  if (slot == nullptr) slot = new Counter;  // leaked with the registry
  return *slot;
}

std::int64_t counter_value(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second->value();
}

void Histogram::note(std::uint64_t v) noexcept {
  // Bucket b holds values in [2^(b-1), 2^b); v==0 lands in bucket 0.
  std::size_t b = 0;
  for (std::uint64_t x = v; x != 0; x >>= 1) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::percentile_upper_bound(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank || seen == total) {
      return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    }
  }
  return max();
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Histogram*& slot = r.histograms[name];
  if (slot == nullptr) slot = new Histogram;  // leaked with the registry
  return *slot;
}

const char* intern_name(const std::string& name) {
  // Events store raw char pointers; an interned copy lives as long as the
  // (leaked) registry, so names built from short-lived strings stay
  // readable by the atexit exporter.  std::set nodes never move.
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.interned_names.insert(name).first->c_str();
}

void gauge(const char* name, std::int64_t value) {
  if (!enabled()) return;
  Event ev{};
  ev.kind = Event::Kind::kGauge;
  ev.cat = "";
  ev.name = name;
  ev.arg_key = nullptr;
  ev.ts_ns = now_ns();
  ev.dur_ns = 0;
  ev.arg_val = value;
  record(ev);
}

SpanScope::~SpanScope() {
  if (!active_) return;
  Event ev{};
  ev.kind = Event::Kind::kSpan;
  ev.cat = cat_;
  ev.name = name_;
  ev.arg_key = arg_key_;
  ev.ts_ns = begin_ns_;
  ev.dur_ns = now_ns() - begin_ns_;
  ev.arg_val = arg_val_;
  record(ev);
}

bool write_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "peachy::obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << "{\n\"schema\": \"peachy-trace/1\",\n\"displayTimeUnit\": \"ms\",\n"
         "\"traceEvents\": [\n";
  write_trace_events(out);
  out << "],\n\"counters\": {";
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    bool first = true;
    for (const auto& [name, c] : r.counters) {
      if (!first) out << ',';
      first = false;
      out << "\n  \"";
      json_escape(out, name.c_str());
      out << "\": " << c->value();
    }
    out << (first ? "" : "\n") << "},\n\"histograms\": {";
    first = true;
    for (const auto& [name, h] : r.histograms) {
      if (!first) out << ',';
      first = false;
      out << "\n  \"";
      json_escape(out, name.c_str());
      out << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
          << ", \"max\": " << h->max()
          << ", \"p50_ub\": " << h->percentile_upper_bound(0.50)
          << ", \"p99_ub\": " << h->percentile_upper_bound(0.99) << '}';
    }
    out << (first ? "" : "\n") << "}\n}\n";
  }
  return out.good();
}

std::string summary_text() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::ostringstream os;
  for (const auto& [name, c] : r.counters) {
    if (c->value() != 0) os << "  " << name << " = " << c->value() << '\n';
  }
  for (const auto& [name, h] : r.histograms) {
    if (h->count() == 0) continue;
    os << "  " << name << ": n=" << h->count()
       << " mean=" << (h->sum() / h->count()) << "ns"
       << " p50<=" << h->percentile_upper_bound(0.50) << "ns"
       << " p99<=" << h->percentile_upper_bound(0.99) << "ns"
       << " max=" << h->max() << "ns\n";
  }
  std::uint64_t dropped = 0;
  for (const ThreadBuffer* tb : r.buffers) {
    dropped += tb->dropped.load(std::memory_order_relaxed);
  }
  if (dropped != 0) os << "  (dropped " << dropped << " events: buffer cap)\n";
  return os.str();
}

std::vector<EventView> snapshot_events() {
  std::vector<EventView> out;
  for_each_event([&](const ThreadBuffer& tb, const Event& ev) {
    EventView v;
    v.kind = ev.kind == Event::Kind::kSpan ? EventView::Kind::kSpan
                                           : EventView::Kind::kGauge;
    v.tid = tb.tid;
    v.cat = ev.cat;
    v.name = ev.name;
    v.ts_ns = ev.ts_ns;
    v.dur_ns = ev.dur_ns;
    v.arg_key = ev.arg_key == nullptr ? "" : ev.arg_key;
    v.arg_val = ev.arg_val;
    out.push_back(std::move(v));
  });
  return out;
}

}  // namespace peachy::obs
