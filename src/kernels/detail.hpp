#pragma once
/// \file detail.hpp
/// \brief Internal ISA-path declarations for the kernel dispatcher.
///
/// Each ISA backend is its own translation unit compiled with that ISA's
/// flags (kernels_avx2.cpp gets -mavx2); this header is the only place
/// the dispatcher and the backends meet.  PEACHY_HAVE_AVX2 is defined by
/// the build system when the AVX2 TU is compiled in (PEACHY_NATIVE_ARCH
/// on an x86-64 toolchain) — on other targets the dispatcher simply
/// never sees the declarations and falls back to the reference path.

#include <cstddef>
#include <cstdint>

namespace peachy::kernels::detail {

#if PEACHY_HAVE_AVX2
namespace avx2 {

double squared_distance(const double* a, const double* b, std::size_t d);
double dot(const double* a, const double* b, std::size_t n);
void squared_distances_rows(const double* pts, std::size_t n, std::size_t d, const double* q,
                            double* out);
void axpy(double* y, const double* x, double a, std::size_t n);
void squared_distances_batch(const double* q, std::size_t d, const double* panel,
                             std::size_t k, std::size_t kp, double* out);
void squared_distances_tile(const double* pts, std::size_t n, std::size_t d,
                            const double* panel, std::size_t k, std::size_t kp, double* out);
std::size_t argmin_batch(const double* q, std::size_t d, const double* panel, std::size_t k,
                         std::size_t kp, double* best_d2);
std::size_t argmin_assign(const double* pts, std::size_t n, std::size_t d, const double* panel,
                          std::size_t k, std::size_t kp, std::int32_t* assignment, double* sums,
                          std::int64_t* counts);
void stencil_row(double* dst, const double* src, std::size_t n, double alpha);
void gemm_block(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
                std::size_t m);

}  // namespace avx2
#endif  // PEACHY_HAVE_AVX2

}  // namespace peachy::kernels::detail
