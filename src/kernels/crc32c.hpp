#pragma once
/// \file crc32c.hpp
/// \brief CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the frame-integrity
/// checksum of the wire transports (DESIGN.md §17).
///
/// Same contract as the rest of the kernel layer (kernels.hpp): the scalar
/// reference in `ref::` *defines* the semantics, and the hardware path
/// (SSE4.2 `crc32` instructions, its own TU compiled with -msse4.2) must be
/// bit-exact against it — asserted in tests over every length and alignment.
/// Dispatch is runtime: the binary carries both paths and picks per CPU, so
/// a build from an SSE4.2 host still runs everywhere.
///
/// The CRC is *reflected* with conventional pre/post inversion, seeded so
/// results chain: `crc32c(crc32c(0, a, n), b, m) == crc32c(0, ab, n+m)`.
/// That chaining is what lets the wire seal a header and its payload in two
/// calls without a gather copy.

#include <cstddef>
#include <cstdint>

namespace peachy::kernels {

namespace ref {
/// Scalar (table-driven) CRC32C — the semantic definition.
[[nodiscard]] std::uint32_t crc32c(std::uint32_t seed, const void* data,
                                   std::size_t n) noexcept;
}  // namespace ref

/// True when the CPU executes the SSE4.2 path (compiled in and supported).
[[nodiscard]] bool crc32c_hw_available() noexcept;

/// Testing hook: when forced, the dispatcher takes the scalar path even on
/// SSE4.2 hardware (the bit-exactness test runs both sides on one machine).
void force_crc32c_scalar(bool force) noexcept;

/// Runtime-dispatched CRC32C (hardware when available, scalar otherwise).
[[nodiscard]] std::uint32_t crc32c(std::uint32_t seed, const void* data,
                                   std::size_t n) noexcept;

namespace detail {
/// SSE4.2 hardware path (crc32c_sse42.cpp); call only when
/// crc32c_hw_available().
[[nodiscard]] std::uint32_t crc32c_sse42(std::uint32_t seed, const void* data,
                                         std::size_t n) noexcept;
}  // namespace detail

}  // namespace peachy::kernels
