/// \file kernels_ref.cpp
/// \brief Scalar reference twins — the semantics oracle and measurement
/// baseline for every kernel.
///
/// This translation unit is compiled with the auto-vectorizer disabled
/// (see the set_source_files_properties in CMakeLists.txt): it stands in
/// for the element-at-a-time consumer loops the dispatched kernels
/// replaced, so bench speedups measure "kernel layer vs. what the repo
/// used to do", not "GCC vs. GCC".
///
/// The fixed summation trees (4-lane partials for reductions, ascending
/// dimension order for panel distances) are the contract the intrinsic
/// paths must reproduce bit-for-bit — change them here and every ISA
/// path must change in lockstep.

#include "kernels/kernels.hpp"

#include <limits>

namespace peachy::kernels::ref {

double squared_distance(const double* a, const double* b, std::size_t d) {
  // 4 independent partial sums, lane = i mod 4.  The AVX2 pair kernel
  // keeps the identical tree (one register of partials, same combine),
  // so both paths produce the same bits.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  if (i < d) {
    const double d0 = a[i] - b[i];
    s0 += d0 * d0;
  }
  if (i + 1 < d) {
    const double d1 = a[i + 1] - b[i + 1];
    s1 += d1 * d1;
  }
  if (i + 2 < d) {
    const double d2 = a[i + 2] - b[i + 2];
    s2 += d2 * d2;
  }
  return (s0 + s1) + (s2 + s3);
}

double dot(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  if (i < n) s0 += a[i] * b[i];
  if (i + 1 < n) s1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) s2 += a[i + 2] * b[i + 2];
  return (s0 + s1) + (s2 + s3);
}

void squared_distances_rows(const double* pts, std::size_t n, std::size_t d, const double* q,
                            double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = squared_distance(pts + i * d, q, d);
  }
}

void axpy(double* y, const double* x, double a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void squared_distances_batch(const double* q, std::size_t d, const double* panel,
                             std::size_t k, std::size_t kp, double* out) {
  // Per centroid, accumulate dimensions in ascending order — a single
  // running sum, exactly what the per-lane AVX2 accumulator computes.
  for (std::size_t g = 0; g * kPanelLane < kp; ++g) {
    const double* grp = panel + g * d * kPanelLane;
    for (std::size_t lane = 0; lane < kPanelLane; ++lane) {
      const std::size_t c = g * kPanelLane + lane;
      if (c >= k) break;
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = q[j] - grp[j * kPanelLane + lane];
        acc += diff * diff;
      }
      out[c] = acc;
    }
  }
}

void squared_distances_tile(const double* pts, std::size_t n, std::size_t d,
                            const double* panel, std::size_t k, std::size_t kp, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    squared_distances_batch(pts + i * d, d, panel, k, kp, out + i * k);
  }
}

std::size_t argmin_batch(const double* q, std::size_t d, const double* panel, std::size_t k,
                         std::size_t kp, double* best_d2) {
  // Start from +inf with strict < so NaN distances never win and ties
  // break to the lower index.  Padded lanes hold +inf coordinates, so
  // their distances are +inf (or NaN) and also never win.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t g = 0; g * kPanelLane < kp; ++g) {
    const double* grp = panel + g * d * kPanelLane;
    for (std::size_t lane = 0; lane < kPanelLane; ++lane) {
      const std::size_t c = g * kPanelLane + lane;
      if (c >= k) break;
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = q[j] - grp[j * kPanelLane + lane];
        acc += diff * diff;
      }
      if (acc < best) {
        best = acc;
        best_idx = c;
      }
    }
  }
  if (best_d2 != nullptr) *best_d2 = best;
  return best_idx;
}

std::size_t argmin_assign(const double* pts, std::size_t n, std::size_t d, const double* panel,
                          std::size_t k, std::size_t kp, std::int32_t* assignment, double* sums,
                          std::int64_t* counts) {
  std::size_t changes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = pts + i * d;
    const std::size_t best = argmin_batch(p, d, panel, k, kp);
    if (assignment[i] != static_cast<std::int32_t>(best)) {
      assignment[i] = static_cast<std::int32_t>(best);
      ++changes;
    }
    double* dst = sums + best * d;
    for (std::size_t j = 0; j < d; ++j) dst[j] += p[j];
    ++counts[best];
  }
  return changes;
}

void stencil_row(double* dst, const double* src, std::size_t n, double alpha) {
  // Fixed association: (left - 2*mid) + right, then one multiply-add.
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i] + alpha * ((src[i - 1] - 2.0 * src[i]) + src[i + 1]);
  }
}

void gemm_block(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
                std::size_t m) {
  // i-k-j order: for each C row, rank-1 updates in ascending k.  Each
  // C[i][j] therefore accumulates a[i][0]*b[0][j] + a[i][1]*b[1][j] + …
  // as a single running sum — the order the blocked path preserves.
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      const double* brow = b + kk * m;
      for (std::size_t j = 0; j < m; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

}  // namespace peachy::kernels::ref
