/// \file crc32c.cpp
/// \brief Scalar CRC32C reference + runtime dispatcher (crc32c.hpp).

#include "kernels/crc32c.hpp"

#include <array>
#include <atomic>

namespace peachy::kernels {

namespace {

/// Reflected CRC32C polynomial (x^32+x^28+x^27+...+1, bit-reversed).
constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (c >> 1) ^ kPolyReflected : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

std::atomic<bool> g_force_scalar{false};

}  // namespace

namespace ref {

std::uint32_t crc32c(std::uint32_t seed, const void* data, std::size_t n) noexcept {
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ref

bool crc32c_hw_available() noexcept {
#if defined(PEACHY_HAVE_SSE42)
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
#else
  return false;
#endif
}

void force_crc32c_scalar(bool force) noexcept {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

std::uint32_t crc32c(std::uint32_t seed, const void* data, std::size_t n) noexcept {
#if defined(PEACHY_HAVE_SSE42)
  if (crc32c_hw_available() && !g_force_scalar.load(std::memory_order_relaxed)) {
    return detail::crc32c_sse42(seed, data, n);
  }
#endif
  return ref::crc32c(seed, data, n);
}

}  // namespace peachy::kernels
