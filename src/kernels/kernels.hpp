#pragma once
/// \file kernels.hpp
/// \brief peachy::kernels — vectorized compute primitives for the
/// assignment hot paths.
///
/// Every assignment in the paper bottoms out in one of four dense
/// kernels: point-to-centroid distances (k-means §3, kNN §2), the
/// explicit heat stencil (§6), and the MLP matrix product (§7).  This
/// module provides those kernels once, in three tiers:
///
///   * `kernels::ref::*` — scalar reference twins.  Element-at-a-time,
///     compiled with auto-vectorization disabled; they define the exact
///     floating-point semantics (operation order, tie-breaking, NaN
///     handling) and are the baseline every speedup is measured against.
///   * the dispatched entry points (`kernels::*`) — at runtime they select
///     the widest available ISA path; today that is AVX2 (compiled behind
///     the PEACHY_NATIVE_ARCH build option, taken only when the CPU
///     reports the feature) with the reference as the portable fallback.
///
/// **Bit-reproducibility contract.**  Every ISA path performs the *same*
/// floating-point operations in the *same* order as its reference twin
/// (the module is built with FP contraction off, and the intrinsic paths
/// mirror the reference summation trees exactly), so results are
/// bit-identical across ISAs and across runs.  The k-means equivalence
/// tests — sequential vs. threaded vs. mini-MPI vs. SIMT — depend on
/// this: all implementations share these kernels, so they agree exactly.
///
/// **Panel layout.**  The batched distance kernels read centroids from a
/// SoA-transposed *panel* (see data::TransposedPanel): centroids are
/// grouped in blocks of kPanelLane, each group storing its coordinates
/// dimension-major —
///
///     panel[(g * d + j) * kPanelLane + lane]  =  coordinate j of
///                                                centroid g*kPanelLane+lane
///
/// with the padded tail lanes of the last group holding +infinity so they
/// never win an argmin.  The group is exactly one AVX2 register of
/// doubles, making the inner loop a contiguous aligned stream.
///
/// **Argmin semantics.**  Smallest distance wins; ties break to the lower
/// centroid index; NaN distances compare as +infinity (never selected; an
/// all-NaN row returns index 0).
///
/// The module depends only on peachy::support and takes raw pointers, so
/// higher layers (data, kmeans, knn, heat, nn) can layer container types
/// on top without dependency cycles.

#include <cstddef>
#include <cstdint>

namespace peachy::kernels {

/// Centroids per panel group — one AVX2 register of doubles.  The panel
/// layout is ISA-independent: the scalar paths use the same grouping.
inline constexpr std::size_t kPanelLane = 4;

/// Centroid count rounded up to whole panel groups.
[[nodiscard]] constexpr std::size_t padded_count(std::size_t k) noexcept {
  return (k + kPanelLane - 1) / kPanelLane * kPanelLane;
}

/// Instruction-set path a kernel call executes.
enum class Isa { kScalar, kAvx2 };

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Whether this build + CPU can execute the given path.
[[nodiscard]] bool isa_available(Isa isa) noexcept;

/// The path the dispatcher currently selects (widest available, unless
/// overridden by force_isa).
[[nodiscard]] Isa active_isa() noexcept;

/// Pin dispatch to one path (throws peachy::Error if unavailable).  For
/// tests and A/B benchmarking; not thread-safe against concurrent kernel
/// calls that race the switch.
void force_isa(Isa isa);

/// Undo force_isa: return to automatic selection.
void clear_forced_isa() noexcept;

/// RAII force_isa for test scopes.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) { force_isa(isa); }
  ~ScopedIsa() { clear_forced_isa(); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

// ---- pairwise (row-major) kernels -------------------------------------------------

/// Squared Euclidean distance between two d-vectors.  Fixed 4-lane
/// summation tree: partial sums indexed i mod 4, combined as
/// (s0+s1)+(s2+s3) — identical on every ISA path.
[[nodiscard]] double squared_distance(const double* a, const double* b, std::size_t d);

/// Dot product with the same 4-lane summation tree.
[[nodiscard]] double dot(const double* a, const double* b, std::size_t n);

/// out[i] = squared distance between q and row i of the row-major n×d
/// matrix pts.  Same per-row semantics as squared_distance.
void squared_distances_rows(const double* pts, std::size_t n, std::size_t d, const double* q,
                            double* out);

/// y[i] += a * x[i].
void axpy(double* y, const double* x, double a, std::size_t n);

// ---- panel (SoA-transposed) kernels -----------------------------------------------

/// out[c] = squared distance from the d-vector q to centroid c of the
/// panel (layout in the file comment).  Per centroid, dimensions
/// accumulate in ascending order — matching a plain scalar loop exactly.
void squared_distances_batch(const double* q, std::size_t d, const double* panel,
                             std::size_t k, std::size_t kp, double* out);

/// Tiled n×k block form: out[i*k + c] = squared distance from row i of
/// the row-major n×d matrix pts to centroid c.
void squared_distances_tile(const double* pts, std::size_t n, std::size_t d,
                            const double* panel, std::size_t k, std::size_t kp, double* out);

/// Index of the nearest panel centroid to q (argmin semantics in the file
/// comment).  If best_d2 is non-null it receives the winning distance.
[[nodiscard]] std::size_t argmin_batch(const double* q, std::size_t d, const double* panel,
                                       std::size_t k, std::size_t kp,
                                       double* best_d2 = nullptr);

/// Fused k-means assignment step over n row-major points: for each point
/// find the nearest panel centroid, write it to assignment[i], accumulate
/// the point into sums[c*d..] and counts[c], and count points whose
/// assignment changed.  sums/counts are accumulated into (callers zero
/// them); the accumulation order is point order then dimension order —
/// the sequential reference order.  Returns the change count.
std::size_t argmin_assign(const double* pts, std::size_t n, std::size_t d,
                          const double* panel, std::size_t k, std::size_t kp,
                          std::int32_t* assignment, double* sums, std::int64_t* counts);

// ---- stencil ----------------------------------------------------------------------

/// Explicit heat update over a contiguous row with no per-element bounds
/// checks: dst[i] = src[i] + alpha*((src[i-1] - 2*src[i]) + src[i+1]) for
/// i in [0, n).  src[-1] and src[n] must be valid halo/boundary cells.
void stencil_row(double* dst, const double* src, std::size_t n, double alpha);

// ---- gemm -------------------------------------------------------------------------

/// C += A·B for row-major A (n×k), B (k×m), C (n×m): register-tiled and
/// cache-blocked.  Per output element the k-dimension accumulates in
/// ascending order, matching the reference i-k-j loop exactly.
void gemm_block(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
                std::size_t m);

// ---- scalar reference twins -------------------------------------------------------

/// The semantics oracle and measurement baseline: portable scalar code,
/// built with auto-vectorization off (deliberately element-at-a-time,
/// like the consumer loops the dispatched kernels replaced).
namespace ref {

[[nodiscard]] double squared_distance(const double* a, const double* b, std::size_t d);
[[nodiscard]] double dot(const double* a, const double* b, std::size_t n);
void squared_distances_rows(const double* pts, std::size_t n, std::size_t d, const double* q,
                            double* out);
void axpy(double* y, const double* x, double a, std::size_t n);
void squared_distances_batch(const double* q, std::size_t d, const double* panel,
                             std::size_t k, std::size_t kp, double* out);
void squared_distances_tile(const double* pts, std::size_t n, std::size_t d,
                            const double* panel, std::size_t k, std::size_t kp, double* out);
[[nodiscard]] std::size_t argmin_batch(const double* q, std::size_t d, const double* panel,
                                       std::size_t k, std::size_t kp,
                                       double* best_d2 = nullptr);
std::size_t argmin_assign(const double* pts, std::size_t n, std::size_t d,
                          const double* panel, std::size_t k, std::size_t kp,
                          std::int32_t* assignment, double* sums, std::int64_t* counts);
void stencil_row(double* dst, const double* src, std::size_t n, double alpha);
void gemm_block(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
                std::size_t m);

}  // namespace ref

}  // namespace peachy::kernels
