/// \file kernels_avx2.cpp
/// \brief AVX2 (4-wide double) backend.
///
/// Compiled with -mavx2 (and only this TU — the dispatcher probes the
/// CPU before ever calling in here).  Bit-equivalence with the reference
/// twins is load-bearing, not best-effort: every kernel vectorizes
/// across *independent* output elements (centroids, grid cells, matrix
/// columns) or keeps the reference's fixed 4-lane summation tree, so
/// each scalar FP chain executes the same operations in the same order
/// as kernels_ref.cpp.  The module is built with FP contraction off and
/// without FMA codegen, so mul+add never fuses behind our back.

#include "kernels/detail.hpp"

// Without the build-level opt-in this TU compiles to nothing, keeping
// non-x86 builds working with no CMake special-casing beyond the flag.
#if PEACHY_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <limits>

#include "kernels/kernels.hpp"
#include "tune/tune.hpp"

namespace peachy::kernels::detail::avx2 {

namespace {

/// Lane-wise extract of a ymm register of partial sums.
struct Lanes {
  alignas(32) double v[4];
  explicit Lanes(__m256d r) { _mm256_store_pd(v, r); }
};

}  // namespace

double squared_distance(const double* a, const double* b, std::size_t d) {
  // One register holds the reference's four partial sums (lane = i mod 4).
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  const Lanes s{acc};
  double s0 = s.v[0], s1 = s.v[1], s2 = s.v[2], s3 = s.v[3];
  if (i < d) {
    const double d0 = a[i] - b[i];
    s0 += d0 * d0;
  }
  if (i + 1 < d) {
    const double d1 = a[i + 1] - b[i + 1];
    s1 += d1 * d1;
  }
  if (i + 2 < d) {
    const double d2 = a[i + 2] - b[i + 2];
    s2 += d2 * d2;
  }
  return (s0 + s1) + (s2 + s3);
}

double dot(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  const Lanes s{acc};
  double s0 = s.v[0], s1 = s.v[1], s2 = s.v[2], s3 = s.v[3];
  if (i < n) s0 += a[i] * b[i];
  if (i + 1 < n) s1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) s2 += a[i + 2] * b[i + 2];
  return (s0 + s1) + (s2 + s3);
}

void squared_distances_rows(const double* pts, std::size_t n, std::size_t d, const double* q,
                            double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = squared_distance(pts + i * d, q, d);
  }
}

void axpy(double* y, const double* x, double a, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

namespace {

/// Distances from q to the 4 centroids of panel group g, as one register.
/// Per lane this is the reference's single running sum over ascending j.
/// always_inline: with three call sites (batch, blocked tile, argmin) the
/// inliner otherwise outlines this into a real call inside every hot
/// distance loop — a measured ~20% hit on the d8/d32 distance kernels.
[[gnu::always_inline]] inline __m256d group_distances(const double* q, std::size_t d,
                                                      const double* grp) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t j = 0; j < d; ++j) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_set1_pd(q[j]), _mm256_loadu_pd(grp + j * kPanelLane));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  return acc;
}

}  // namespace

void squared_distances_batch(const double* q, std::size_t d, const double* panel,
                             std::size_t k, std::size_t kp, double* out) {
  for (std::size_t g = 0; g * kPanelLane < kp; ++g) {
    const __m256d dist = group_distances(q, d, panel + g * d * kPanelLane);
    const std::size_t c0 = g * kPanelLane;
    if (c0 + kPanelLane <= k) {
      _mm256_storeu_pd(out + c0, dist);
    } else {
      const Lanes s{dist};
      for (std::size_t lane = 0; c0 + lane < k; ++lane) out[c0 + lane] = s.v[lane];
    }
  }
}

void squared_distances_tile(const double* pts, std::size_t n, std::size_t d,
                            const double* panel, std::size_t k, std::size_t kp, double* out) {
  // Panel blocking (tunable): when the centroid panel is bigger than the
  // cache, streaming all of it per point evicts it n times over.  With a
  // row block of height B, the loop order becomes (row block, panel
  // group, row): each d×4 group is loaded once per block instead of once
  // per row, cutting panel traffic by ~B×.  Bit-identical to the
  // unblocked loop — every out[i*k+c] is an independent chain computed by
  // the same group_distances call, only the (i, group) visit order moves.
  const std::size_t block = tune::active().distance_block_rows;
  if (block == 0) {  // compiled-in default: the historical unblocked loop
    for (std::size_t i = 0; i < n; ++i) {
      squared_distances_batch(pts + i * d, d, panel, k, kp, out + i * k);
    }
    return;
  }
  for (std::size_t r0 = 0; r0 < n; r0 += block) {
    const std::size_t r1 = std::min(n, r0 + block);
    for (std::size_t g = 0; g * kPanelLane < kp; ++g) {
      const double* grp = panel + g * d * kPanelLane;
      const std::size_t c0 = g * kPanelLane;
      for (std::size_t i = r0; i < r1; ++i) {
        const __m256d dist = group_distances(pts + i * d, d, grp);
        double* orow = out + i * k;
        if (c0 + kPanelLane <= k) {
          _mm256_storeu_pd(orow + c0, dist);
        } else {
          const Lanes s{dist};
          for (std::size_t lane = 0; c0 + lane < k; ++lane) orow[c0 + lane] = s.v[lane];
        }
      }
    }
  }
}

std::size_t argmin_batch(const double* q, std::size_t d, const double* panel, std::size_t k,
                         std::size_t kp, double* best_d2) {
  // The d-loop (the hot part) is vectorized per group; the 4-lane scan
  // stays scalar so the reference's ascending-index strict-< tie-break
  // is preserved verbatim.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t g = 0; g * kPanelLane < kp; ++g) {
    const Lanes s{group_distances(q, d, panel + g * d * kPanelLane)};
    const std::size_t c0 = g * kPanelLane;
    for (std::size_t lane = 0; lane < kPanelLane && c0 + lane < k; ++lane) {
      if (s.v[lane] < best) {
        best = s.v[lane];
        best_idx = c0 + lane;
      }
    }
  }
  if (best_d2 != nullptr) *best_d2 = best;
  return best_idx;
}

std::size_t argmin_assign(const double* pts, std::size_t n, std::size_t d, const double* panel,
                          std::size_t k, std::size_t kp, std::int32_t* assignment, double* sums,
                          std::int64_t* counts) {
  std::size_t changes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = pts + i * d;
    const std::size_t best = argmin_batch(p, d, panel, k, kp, nullptr);
    if (assignment[i] != static_cast<std::int32_t>(best)) {
      assignment[i] = static_cast<std::int32_t>(best);
      ++changes;
    }
    double* dst = sums + best * d;
    std::size_t j = 0;
    for (; j + 4 <= d; j += 4) {
      _mm256_storeu_pd(dst + j,
                       _mm256_add_pd(_mm256_loadu_pd(dst + j), _mm256_loadu_pd(p + j)));
    }
    for (; j < d; ++j) dst[j] += p[j];
    ++counts[best];
  }
  return changes;
}

void stencil_row(double* dst, const double* src, std::size_t n, double alpha) {
  const __m256d av = _mm256_set1_pd(alpha);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d left = _mm256_loadu_pd(src + i - 1);
    const __m256d mid = _mm256_loadu_pd(src + i);
    const __m256d right = _mm256_loadu_pd(src + i + 1);
    const __m256d lap =
        _mm256_add_pd(_mm256_sub_pd(left, _mm256_mul_pd(two, mid)), right);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(mid, _mm256_mul_pd(av, lap)));
  }
  for (; i < n; ++i) {
    dst[i] = src[i] + alpha * ((src[i - 1] - 2.0 * src[i]) + src[i + 1]);
  }
}

namespace {

/// MR×NR register-tile micro-kernel: MR×(NR/4) ymm accumulators per
/// tile, k ascending, so each C element's chain is exactly the reference
/// i-k-j running sum — true for *any* tile shape, which is what makes
/// the tile a tunable rather than a contract change.  Tails fall back to
/// the reference loop structure (innermost j elementwise, k ascending)
/// which keeps the same per-element chains.  MR/NR are compile-time so
/// the accumulator array lives entirely in registers; the constexpr
/// loops below fully unroll.
template <std::size_t MR, std::size_t NR>
void gemm_tile(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
               std::size_t m) {
  static_assert(NR % 4 == 0, "gemm tile width must be a whole number of ymm lanes");
  constexpr std::size_t kCols = NR / 4;
  std::size_t i0 = 0;
  for (; i0 + MR <= n; i0 += MR) {
    std::size_t j0 = 0;
    for (; j0 + NR <= m; j0 += NR) {
      __m256d acc[MR][kCols];
      for (std::size_t r = 0; r < MR; ++r) {
        for (std::size_t cc = 0; cc < kCols; ++cc) {
          acc[r][cc] = _mm256_loadu_pd(c + (i0 + r) * m + j0 + cc * 4);
        }
      }
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double* brow = b + kk * m + j0;
        __m256d bv[kCols];
        for (std::size_t cc = 0; cc < kCols; ++cc) bv[cc] = _mm256_loadu_pd(brow + cc * 4);
        for (std::size_t r = 0; r < MR; ++r) {
          const __m256d av = _mm256_set1_pd(a[(i0 + r) * k + kk]);
          for (std::size_t cc = 0; cc < kCols; ++cc) {
            acc[r][cc] = _mm256_add_pd(acc[r][cc], _mm256_mul_pd(av, bv[cc]));
          }
        }
      }
      for (std::size_t r = 0; r < MR; ++r) {
        for (std::size_t cc = 0; cc < kCols; ++cc) {
          _mm256_storeu_pd(c + (i0 + r) * m + j0 + cc * 4, acc[r][cc]);
        }
      }
    }
    if (j0 < m) {
      for (std::size_t r = 0; r < MR; ++r) {
        const double* arow = a + (i0 + r) * k;
        double* crow = c + (i0 + r) * m;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double aik = arow[kk];
          const double* brow = b + kk * m;
          for (std::size_t j = j0; j < m; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
  for (; i0 < n; ++i0) {
    const double* arow = a + i0 * k;
    double* crow = c + i0 * m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      const double* brow = b + kk * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace

void gemm_block(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
                std::size_t m) {
  // Tile shape comes from the active tuning profile.  Only the shapes in
  // tune::gemm_tile_supported() are instantiated; anything else (already
  // warned about at profile load) lands on the compiled-in 4×8 default.
  const tune::Tunables& t = tune::active();
  if (t.gemm_mr == 2 && t.gemm_nr == 8) return gemm_tile<2, 8>(a, b, c, n, k, m);
  if (t.gemm_mr == 4 && t.gemm_nr == 4) return gemm_tile<4, 4>(a, b, c, n, k, m);
  if (t.gemm_mr == 8 && t.gemm_nr == 4) return gemm_tile<8, 4>(a, b, c, n, k, m);
  return gemm_tile<4, 8>(a, b, c, n, k, m);
}

}  // namespace peachy::kernels::detail::avx2

#endif  // PEACHY_HAVE_AVX2
