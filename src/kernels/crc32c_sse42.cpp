/// \file crc32c_sse42.cpp
/// \brief SSE4.2 hardware CRC32C path.  This TU alone is compiled with
/// -msse4.2 (CMake source property, mirroring kernels_avx2.cpp); the
/// dispatcher in crc32c.cpp guards every call with __builtin_cpu_supports.

#if defined(PEACHY_HAVE_SSE42)

#include <cstddef>
#include <cstdint>
#include <cstring>

#include <nmmintrin.h>

namespace peachy::kernels::detail {

std::uint32_t crc32c_sse42(std::uint32_t seed, const void* data, std::size_t n) noexcept {
  // The crc32 instruction family updates the *inverted* running state with
  // the same reflected polynomial as the scalar table — identical pre/post
  // inversion keeps the two paths bit-exact and chainable.
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);

  // Align to 8 bytes, then eat 8-byte words, then the tail.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof word);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

}  // namespace peachy::kernels::detail

#else  // !PEACHY_HAVE_SSE42

#include "kernels/crc32c.hpp"

namespace peachy::kernels::detail {

// Builds without the SSE4.2 TU still link the symbol (tests reference it
// unconditionally); the dispatcher never selects it here.
std::uint32_t crc32c_sse42(std::uint32_t seed, const void* data, std::size_t n) noexcept {
  return ref::crc32c(seed, data, n);
}

}  // namespace peachy::kernels::detail

#endif  // PEACHY_HAVE_SSE42
