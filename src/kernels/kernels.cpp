/// \file kernels.cpp
/// \brief Runtime ISA dispatch for the kernel layer.
///
/// Selection happens once (first call) by probing the CPU, and can be
/// pinned with force_isa for tests and A/B benchmarking.  Dispatch is a
/// single relaxed atomic load plus a predictable branch per kernel call
/// — noise next to any kernel body that matters.

#include "kernels/kernels.hpp"

#include <atomic>
#include <string>

#include "kernels/detail.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::kernels {

namespace {

bool cpu_has_avx2() {
#if PEACHY_HAVE_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Isa detect_isa() { return cpu_has_avx2() ? Isa::kAvx2 : Isa::kScalar; }

// kScalar / kAvx2 map to 0 / 1; kAuto below means "not forced".
constexpr int kAuto = -1;

std::atomic<int>& forced_slot() {
  static std::atomic<int> forced{kAuto};
  return forced;
}

Isa current_isa() {
  const int forced = forced_slot().load(std::memory_order_relaxed);
  if (forced != kAuto) return static_cast<Isa>(forced);
  static const Isa detected = detect_isa();
  return detected;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool isa_available(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return cpu_has_avx2();
  }
  return false;
}

Isa active_isa() noexcept { return current_isa(); }

void force_isa(Isa isa) {
  PEACHY_CHECK(isa_available(isa),
               std::string{"ISA path not available in this build/CPU: "} + isa_name(isa));
  forced_slot().store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_forced_isa() noexcept { forced_slot().store(kAuto, std::memory_order_relaxed); }

// Each entry point branches once on the selected path.  With
// PEACHY_HAVE_AVX2 off the branch folds away entirely.

// Per-kernel invocation counter, split by the ISA path actually taken
// ("kern.<fn>[scalar]" / "kern.<fn>[avx2]").  One relaxed load when
// tracing is off; lookups resolve once per call site.
#define PEACHY_KERN_COUNT(fn)                                              \
  do {                                                                     \
    if (obs::enabled()) {                                                  \
      static obs::Counter& scalar_c = obs::counter("kern." fn "[scalar]"); \
      static obs::Counter& avx2_c = obs::counter("kern." fn "[avx2]");     \
      (current_isa() == Isa::kAvx2 ? avx2_c : scalar_c).add(1);            \
    }                                                                      \
  } while (false)

double squared_distance(const double* a, const double* b, std::size_t d) {
  PEACHY_KERN_COUNT("squared_distance");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) return detail::avx2::squared_distance(a, b, d);
#endif
  return ref::squared_distance(a, b, d);
}

double dot(const double* a, const double* b, std::size_t n) {
  PEACHY_KERN_COUNT("dot");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) return detail::avx2::dot(a, b, n);
#endif
  return ref::dot(a, b, n);
}

void squared_distances_rows(const double* pts, std::size_t n, std::size_t d, const double* q,
                            double* out) {
  PEACHY_KERN_COUNT("squared_distances_rows");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    detail::avx2::squared_distances_rows(pts, n, d, q, out);
    return;
  }
#endif
  ref::squared_distances_rows(pts, n, d, q, out);
}

void axpy(double* y, const double* x, double a, std::size_t n) {
  PEACHY_KERN_COUNT("axpy");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    detail::avx2::axpy(y, x, a, n);
    return;
  }
#endif
  ref::axpy(y, x, a, n);
}

void squared_distances_batch(const double* q, std::size_t d, const double* panel,
                             std::size_t k, std::size_t kp, double* out) {
  PEACHY_KERN_COUNT("squared_distances_batch");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    detail::avx2::squared_distances_batch(q, d, panel, k, kp, out);
    return;
  }
#endif
  ref::squared_distances_batch(q, d, panel, k, kp, out);
}

void squared_distances_tile(const double* pts, std::size_t n, std::size_t d,
                            const double* panel, std::size_t k, std::size_t kp, double* out) {
  PEACHY_KERN_COUNT("squared_distances_tile");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    detail::avx2::squared_distances_tile(pts, n, d, panel, k, kp, out);
    return;
  }
#endif
  ref::squared_distances_tile(pts, n, d, panel, k, kp, out);
}

std::size_t argmin_batch(const double* q, std::size_t d, const double* panel, std::size_t k,
                         std::size_t kp, double* best_d2) {
  PEACHY_KERN_COUNT("argmin_batch");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    return detail::avx2::argmin_batch(q, d, panel, k, kp, best_d2);
  }
#endif
  return ref::argmin_batch(q, d, panel, k, kp, best_d2);
}

std::size_t argmin_assign(const double* pts, std::size_t n, std::size_t d, const double* panel,
                          std::size_t k, std::size_t kp, std::int32_t* assignment, double* sums,
                          std::int64_t* counts) {
  PEACHY_KERN_COUNT("argmin_assign");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    return detail::avx2::argmin_assign(pts, n, d, panel, k, kp, assignment, sums, counts);
  }
#endif
  return ref::argmin_assign(pts, n, d, panel, k, kp, assignment, sums, counts);
}

void stencil_row(double* dst, const double* src, std::size_t n, double alpha) {
  PEACHY_KERN_COUNT("stencil_row");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    detail::avx2::stencil_row(dst, src, n, alpha);
    return;
  }
#endif
  ref::stencil_row(dst, src, n, alpha);
}

void gemm_block(const double* a, const double* b, double* c, std::size_t n, std::size_t k,
                std::size_t m) {
  PEACHY_KERN_COUNT("gemm_block");
#if PEACHY_HAVE_AVX2
  if (current_isa() == Isa::kAvx2) {
    detail::avx2::gemm_block(a, b, c, n, k, m);
    return;
  }
#endif
  ref::gemm_block(a, b, c, n, k, m);
}

}  // namespace peachy::kernels
