#include "mapreduce/wordcount.hpp"

#include <algorithm>
#include <cctype>

#include "mapreduce/mapreduce.hpp"
#include "rng/distributions.hpp"
#include "rng/lcg.hpp"
#include "support/check.hpp"

namespace peachy::mapreduce {

namespace {

/// Invoke `fn(word)` for every lower-cased word in text.
template <typename Fn>
void for_each_word(const std::string& text, Fn&& fn) {
  std::string word;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      word.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!word.empty()) {
      fn(word);
      word.clear();
    }
  }
  if (!word.empty()) fn(word);
}

}  // namespace

std::vector<std::string> split_corpus(const std::string& text, std::size_t chunks) {
  PEACHY_CHECK(chunks > 0, "split_corpus: need at least one chunk");
  std::vector<std::string> out;
  out.reserve(chunks);
  const std::size_t n = text.size();
  std::size_t start = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t end = c + 1 == chunks ? n : std::min(n, start + (n - start) / (chunks - c));
    // Advance end to the next word boundary so no token is cut in half.
    while (end < n && std::isalnum(static_cast<unsigned char>(text[end]))) ++end;
    out.push_back(text.substr(start, end - start));
    start = end;
  }
  return out;
}

std::vector<WordCount> word_count_serial(const std::string& text) {
  std::map<std::string, std::uint64_t> counts;
  for_each_word(text, [&](const std::string& w) { ++counts[w]; });
  std::vector<WordCount> out;
  out.reserve(counts.size());
  for (const auto& [w, c] : counts) out.push_back({w, c});
  return out;
}

std::vector<WordCount> word_count(mpi::Comm& comm, const std::string& text,
                                  const WordCountOptions& opts) {
  const auto chunks = split_corpus(text, opts.chunks);

  MapReduce mr{comm};
  mr.map(chunks.size(), [&](std::size_t task, KvEmitter& out) {
    for_each_word(chunks[task],
                  [&](const std::string& w) { out.emit_record<std::uint64_t>(w, 1); });
  });

  const MapReduce::ReduceFn sum = [](const std::string& key,
                                     std::span<const std::string> values, KvEmitter& out) {
    std::uint64_t total = 0;
    for (const auto& v : values) total += unpack_record<std::uint64_t>(v);
    out.emit_record<std::uint64_t>(key, total);
  };

  if (opts.local_combine) mr.combine(sum);
  mr.collate();
  mr.reduce(sum);

  auto pairs = mr.gather(0);
  std::vector<WordCount> result;
  if (comm.rank() == 0) {
    result.reserve(pairs.size());
    for (const auto& kv : pairs) result.push_back({kv.key, unpack_record<std::uint64_t>(kv.value)});
    std::sort(result.begin(), result.end(),
              [](const WordCount& a, const WordCount& b) { return a.word < b.word; });
  }
  // Broadcast so every rank returns the same table (simplifies callers).
  std::vector<KeyValue> flat;
  if (comm.rank() == 0) {
    for (const auto& r : result) flat.push_back({r.word, std::to_string(r.count)});
  }
  auto bytes = serialize_pairs(flat);
  comm.broadcast(bytes, 0);
  if (comm.rank() != 0) {
    result.clear();
    for (const auto& kv : deserialize_pairs(bytes)) {
      result.push_back({kv.key, std::stoull(kv.value)});
    }
  }
  return result;
}

std::string synthetic_corpus(std::size_t words, std::uint64_t seed) {
  // Zipf-ish vocabulary: word k has weight 1/(k+1); 500 distinct words.
  constexpr std::size_t kVocab = 500;
  std::vector<double> cdf(kVocab);
  double acc = 0.0;
  for (std::size_t k = 0; k < kVocab; ++k) {
    acc += 1.0 / static_cast<double>(k + 1);
    cdf[k] = acc;
  }
  rng::Lcg64 gen{seed};
  std::string text;
  text.reserve(words * 7);
  for (std::size_t i = 0; i < words; ++i) {
    const double u = rng::uniform01(gen) * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto k = static_cast<std::size_t>(it - cdf.begin());
    text += "w" + std::to_string(k);
    text += (i % 12 == 11) ? '\n' : ' ';
  }
  return text;
}

}  // namespace peachy::mapreduce
