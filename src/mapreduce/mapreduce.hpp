#pragma once
/// \file mapreduce.hpp
/// \brief MapReduce over mini-MPI, after Plimpton & Devine's MapReduce-MPI.
///
/// The kNN assignment (paper §2) is written against MapReduce-MPI: a C++
/// library that layers map / collate / reduce phases over MPI.  peachy's
/// engine mirrors that phase structure:
///
///   MapReduce mr{comm};
///   mr.map(ntasks, [&](std::size_t task, KvEmitter& out) { ... });
///   mr.combine(combiner);   // optional local pre-reduction (the paper's
///                           // "local reductions ... noticeably improves
///                           // the communication cost")
///   mr.collate();           // hash shuffle + group by key
///   mr.reduce([&](key, values, KvEmitter& out) { ... });
///   auto pairs = mr.gather(0);
///
/// Keys and values are binary-safe byte strings; typed helpers pack/unpack
/// trivially copyable records.  The engine counts pairs and bytes moved by
/// the shuffle so experiment T-kNN-3 can report the local-combine ablation.

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"

namespace peachy::mapreduce {

/// One key-value pair.  Both fields are binary-safe.
struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
  friend auto operator<=>(const KeyValue&, const KeyValue&) = default;
};

/// Sink passed to map and reduce callbacks.
class KvEmitter {
 public:
  explicit KvEmitter(std::vector<KeyValue>& out) noexcept : out_{&out} {}

  void emit(std::string key, std::string value) {
    out_->push_back({std::move(key), std::move(value)});
  }

  /// Emit with a trivially copyable value payload.
  template <typename T>
  void emit_record(std::string key, const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::string v(sizeof(T), '\0');
    std::memcpy(v.data(), &record, sizeof(T));
    emit(std::move(key), std::move(v));
  }

 private:
  std::vector<KeyValue>* out_;
};

/// Decode a value emitted with emit_record.
template <typename T>
[[nodiscard]] T unpack_record(const std::string& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  PEACHY_CHECK(value.size() == sizeof(T), "unpack_record: value size mismatch");
  T out;
  std::memcpy(&out, value.data(), sizeof(T));
  return out;
}

/// Shuffle telemetry from the most recent collate().
struct ShuffleStats {
  std::uint64_t pairs_sent = 0;    ///< pairs leaving this run's ranks (total)
  std::uint64_t bytes_sent = 0;    ///< serialized bytes moved by the shuffle
  std::uint64_t pairs_before = 0;  ///< pairs that existed before the shuffle
};

/// The MapReduce engine.  One instance per rank, driven collectively: all
/// ranks must call each phase in the same order (like MR-MPI).
class MapReduce {
 public:
  /// Callback for map: produce pairs for one task.
  using MapFn = std::function<void(std::size_t task, KvEmitter& out)>;
  /// Callback for reduce/combine: fold one key's value list into output pairs.
  using ReduceFn = std::function<void(const std::string& key,
                                      std::span<const std::string> values, KvEmitter& out)>;

  explicit MapReduce(mpi::Comm& comm) noexcept : comm_{&comm} {}

  /// Run `ntasks` map tasks, distributed cyclically over ranks (MR-MPI's
  /// default task assignment).  Returns the global number of pairs emitted.
  std::uint64_t map(std::size_t ntasks, const MapFn& fn);

  /// Local pre-reduction: group this rank's pairs by key and fold each
  /// group with `fn` — no communication.  Returns the global pair count
  /// after combining.
  std::uint64_t combine(const ReduceFn& fn);

  /// Hash-shuffle pairs so all values of a key land on rank
  /// hash(key) % size, then group by key.  Returns the global number of
  /// distinct keys.
  std::uint64_t collate();

  /// Fold each local key group; must follow collate().  Returns the global
  /// number of pairs produced.
  std::uint64_t reduce(const ReduceFn& fn);

  /// Collect every rank's pairs at `root` (rank order, key-sorted within
  /// rank); other ranks get {}.
  [[nodiscard]] std::vector<KeyValue> gather(int root);

  /// This rank's current pairs (after map/combine/reduce).
  [[nodiscard]] const std::vector<KeyValue>& local_pairs() const noexcept { return kv_; }

  /// Telemetry from the most recent collate().
  [[nodiscard]] const ShuffleStats& shuffle_stats() const noexcept { return shuffle_stats_; }

  /// The rank that owns a key under the shuffle hash.
  [[nodiscard]] int owner_of(const std::string& key) const noexcept {
    return static_cast<int>(support::fnv1a64(key) % static_cast<std::uint64_t>(comm_->size()));
  }

 private:
  enum class Phase { kEmpty, kMapped, kCollated };

  mpi::Comm* comm_;
  std::vector<KeyValue> kv_;                                   // flat pairs
  std::vector<std::pair<std::string, std::vector<std::string>>> kmv_;  // grouped
  Phase phase_ = Phase::kEmpty;
  ShuffleStats shuffle_stats_;
};

/// Serialize pairs into a byte buffer (length-prefixed) and back — exposed
/// for tests.
[[nodiscard]] std::vector<std::byte> serialize_pairs(std::span<const KeyValue> pairs);
[[nodiscard]] std::vector<KeyValue> deserialize_pairs(std::span<const std::byte> bytes);

}  // namespace peachy::mapreduce
