#pragma once
/// \file wordcount.hpp
/// \brief The word-count warm-up from the kNN assignment materials.
///
/// Paper §2: "These include a classic problem, Word Counting, to
/// familiarize the students with programming using MapReduce MPI."  This
/// is that program: split a corpus into chunks, map each chunk to
/// (word, 1) pairs, optionally combine locally, shuffle, and reduce to
/// per-word totals.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"

namespace peachy::mapreduce {

/// Result row: word and its total count.
struct WordCount {
  std::string word;
  std::uint64_t count = 0;

  friend bool operator==(const WordCount&, const WordCount&) = default;
};

/// Options for the distributed word count.
struct WordCountOptions {
  std::size_t chunks = 16;        ///< number of map tasks the corpus is split into
  bool local_combine = false;     ///< pre-reduce per rank before the shuffle
};

/// Count words in `text` using MapReduce over `comm`.  Words are maximal
/// runs of alphanumeric characters, lower-cased.  Every rank receives the
/// full result (sorted by word).  Deterministic for any rank count.
[[nodiscard]] std::vector<WordCount> word_count(mpi::Comm& comm, const std::string& text,
                                                const WordCountOptions& opts = {});

/// Serial reference implementation for validation.
[[nodiscard]] std::vector<WordCount> word_count_serial(const std::string& text);

/// Split text into `chunks` pieces on word boundaries (no word is cut in
/// half).  Exposed for tests.
[[nodiscard]] std::vector<std::string> split_corpus(const std::string& text, std::size_t chunks);

/// Deterministic synthetic corpus: `words` tokens drawn from a Zipf-like
/// vocabulary — exercises skewed key distributions in the shuffle.
[[nodiscard]] std::string synthetic_corpus(std::size_t words, std::uint64_t seed);

}  // namespace peachy::mapreduce
