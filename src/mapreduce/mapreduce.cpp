#include "mapreduce/mapreduce.hpp"

#include <algorithm>
#include <cstring>

#include "obs/obs.hpp"

namespace peachy::mapreduce {

namespace {

void append_u32(std::vector<std::byte>& buf, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

void append_str(std::vector<std::byte>& buf, const std::string& s) {
  append_u32(buf, static_cast<std::uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buf.insert(buf.end(), p, p + s.size());
}

std::uint32_t read_u32(std::span<const std::byte> bytes, std::size_t& pos) {
  PEACHY_CHECK(pos + sizeof(std::uint32_t) <= bytes.size(), "corrupt pair buffer: truncated u32");
  std::uint32_t v;
  std::memcpy(&v, bytes.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

std::string read_str(std::span<const std::byte> bytes, std::size_t& pos) {
  const std::uint32_t len = read_u32(bytes, pos);
  PEACHY_CHECK(pos + len <= bytes.size(), "corrupt pair buffer: truncated string");
  std::string s(reinterpret_cast<const char*>(bytes.data() + pos), len);
  pos += len;
  return s;
}

/// Group a sorted-by-key pair list into (key, values) entries.
std::vector<std::pair<std::string, std::vector<std::string>>> group_sorted(
    std::vector<KeyValue>&& pairs) {
  std::vector<std::pair<std::string, std::vector<std::string>>> grouped;
  for (auto& p : pairs) {
    if (grouped.empty() || grouped.back().first != p.key) {
      grouped.emplace_back(std::move(p.key), std::vector<std::string>{});
    }
    grouped.back().second.push_back(std::move(p.value));
  }
  return grouped;
}

}  // namespace

std::vector<std::byte> serialize_pairs(std::span<const KeyValue> pairs) {
  std::vector<std::byte> buf;
  std::size_t total = 0;
  for (const auto& p : pairs) total += 8 + p.key.size() + p.value.size();
  buf.reserve(total);
  for (const auto& p : pairs) {
    append_str(buf, p.key);
    append_str(buf, p.value);
  }
  return buf;
}

std::vector<KeyValue> deserialize_pairs(std::span<const std::byte> bytes) {
  std::vector<KeyValue> pairs;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    KeyValue kv;
    kv.key = read_str(bytes, pos);
    kv.value = read_str(bytes, pos);
    pairs.push_back(std::move(kv));
  }
  return pairs;
}

std::uint64_t MapReduce::map(std::size_t ntasks, const MapFn& fn) {
  PEACHY_CHECK(fn != nullptr, "map: null callback");
  const obs::SpanScope span{"mr", "map", "tasks",
                            static_cast<std::int64_t>(ntasks)};
  kv_.clear();
  kmv_.clear();
  KvEmitter emitter{kv_};
  // Cyclic task assignment (MR-MPI default): task t runs on rank t % p.
  const auto p = static_cast<std::size_t>(comm_->size());
  for (std::size_t t = static_cast<std::size_t>(comm_->rank()); t < ntasks; t += p) {
    fn(t, emitter);
  }
  phase_ = Phase::kMapped;
  return comm_->allreduce_value<std::uint64_t>(kv_.size(), std::plus<>{});
}

std::uint64_t MapReduce::combine(const ReduceFn& fn) {
  PEACHY_CHECK(fn != nullptr, "combine: null callback");
  PEACHY_CHECK(phase_ == Phase::kMapped, "combine must follow map");
  const obs::SpanScope span{"mr", "combine"};
  std::stable_sort(kv_.begin(), kv_.end(),
                   [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  auto grouped = group_sorted(std::move(kv_));
  kv_.clear();
  KvEmitter emitter{kv_};
  for (auto& [key, values] : grouped) fn(key, values, emitter);
  return comm_->allreduce_value<std::uint64_t>(kv_.size(), std::plus<>{});
}

std::uint64_t MapReduce::collate() {
  PEACHY_CHECK(phase_ == Phase::kMapped, "collate must follow map (or combine)");
  obs::SpanScope span{"mr", "collate"};
  const int p = comm_->size();

  // Partition local pairs by destination rank.
  std::vector<std::vector<KeyValue>> outgoing(static_cast<std::size_t>(p));
  for (auto& kv : kv_) {
    outgoing[static_cast<std::size_t>(owner_of(kv.key))].push_back(std::move(kv));
  }
  kv_.clear();

  // Serialize per destination and exchange.
  std::uint64_t pairs_out = 0, bytes_out = 0, pairs_before = 0;
  std::vector<std::vector<std::byte>> sendbufs(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& dst = outgoing[static_cast<std::size_t>(r)];
    pairs_before += dst.size();
    sendbufs[static_cast<std::size_t>(r)] = serialize_pairs(dst);
    if (r != comm_->rank()) {
      pairs_out += dst.size();
      bytes_out += sendbufs[static_cast<std::size_t>(r)].size();
    }
  }
  // Move the buffers into the exchange: the self-bucket lands in the
  // result without a copy and every outgoing buffer rides the transport's
  // zero-copy adoption path (the receive side steals the vector back, so
  // shuffled bytes are serialized exactly once).
  auto recvbufs = comm_->alltoall(std::move(sendbufs));

  // Deserialize, sort by key for deterministic grouping, group.
  std::vector<KeyValue> incoming;
  for (const auto& buf : recvbufs) {
    auto part = deserialize_pairs(buf);
    incoming.insert(incoming.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
  }
  std::stable_sort(incoming.begin(), incoming.end(),
                   [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  kmv_ = group_sorted(std::move(incoming));
  phase_ = Phase::kCollated;

  shuffle_stats_.pairs_sent = comm_->allreduce_value<std::uint64_t>(pairs_out, std::plus<>{});
  shuffle_stats_.bytes_sent = comm_->allreduce_value<std::uint64_t>(bytes_out, std::plus<>{});
  shuffle_stats_.pairs_before =
      comm_->allreduce_value<std::uint64_t>(pairs_before, std::plus<>{});
  span.arg("pairs_sent", static_cast<std::int64_t>(pairs_out));
  if (obs::enabled()) {
    static obs::Counter& sp = obs::counter("mr.shuffle_pairs");
    static obs::Counter& sb = obs::counter("mr.shuffle_bytes");
    sp.add(static_cast<std::int64_t>(pairs_out));
    sb.add(static_cast<std::int64_t>(bytes_out));
  }
  return comm_->allreduce_value<std::uint64_t>(kmv_.size(), std::plus<>{});
}

std::uint64_t MapReduce::reduce(const ReduceFn& fn) {
  PEACHY_CHECK(fn != nullptr, "reduce: null callback");
  PEACHY_CHECK(phase_ == Phase::kCollated, "reduce must follow collate");
  const obs::SpanScope span{"mr", "reduce", "keys",
                            static_cast<std::int64_t>(kmv_.size())};
  kv_.clear();
  KvEmitter emitter{kv_};
  for (auto& [key, values] : kmv_) fn(key, values, emitter);
  kmv_.clear();
  phase_ = Phase::kMapped;  // output pairs may be collated/reduced again
  return comm_->allreduce_value<std::uint64_t>(kv_.size(), std::plus<>{});
}

std::vector<KeyValue> MapReduce::gather(int root) {
  const obs::SpanScope span{"mr", "gather"};
  std::vector<KeyValue> sorted = kv_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  const auto bytes = serialize_pairs(sorted);
  const auto all = comm_->gather<std::byte>(bytes, root);
  if (comm_->rank() != root) return {};
  return deserialize_pairs(all);
}

}  // namespace peachy::mapreduce
