#include "mpi/shm_ring.hpp"

#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string_view>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::mpi::detail {

namespace test_hooks {
std::atomic<bool> g_die_between_claim_and_publish{false};
}  // namespace test_hooks

namespace {

constexpr std::size_t kAlign = 64;

/// Spin iterations before a waiter falls back to the futex.  Modest on
/// purpose: the protocol's win is avoiding wake *syscalls* and lock
/// round-trips, not burning a core — on an oversubscribed host the
/// futex path is reached almost immediately and still beats the old
/// broadcast-per-operation regime.
constexpr int kSpinIters = 128;

[[nodiscard]] constexpr std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

[[nodiscard]] std::size_t ring_stride(std::size_t spill_bytes) noexcept {
  return align_up(sizeof(ShmRing), kAlign) + align_up(spill_bytes, kAlign);
}

[[nodiscard]] std::size_t ring_offset(int proc, std::size_t spill_bytes) noexcept {
  return align_up(sizeof(ShmSegHeader), kAlign) +
         static_cast<std::size_t>(proc) * ring_stride(spill_bytes);
}

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

// ---- futex parking ----------------------------------------------------------
//
// The futex words are wake *generations*: a waker bumps the word and
// issues FUTEX_WAKE, a waiter re-reads the generation before its final
// condition check so a bump that races the check turns the wait into an
// immediate EAGAIN instead of a lost wakeup.  All waits carry a 100ms
// timeout — the same safety poll the locked protocol uses — so a wakeup
// lost to a peer death costs one poll interval, never a hang.  The ops
// are deliberately *not* FUTEX_PRIVATE: the words live in shared memory.

void count_futex_wait() noexcept {
  if (obs::enabled()) {
    static obs::Counter& c = obs::counter("mpi.transport.shm.futex_wait");
    c.add(1);
  }
}

void count_futex_wake() noexcept {
  if (obs::enabled()) {
    static obs::Counter& c = obs::counter("mpi.transport.shm.futex_wake");
    c.add(1);
  }
}

#if defined(__linux__)
void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected) noexcept {
  timespec ts{};
  ts.tv_nsec = 100'000'000;  // relative, the 100ms safety poll
  count_futex_wait();
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT, expected, &ts, nullptr,
          0);
}

void futex_wake_all(std::atomic<std::uint32_t>* word) noexcept {
  count_futex_wake();
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE, INT_MAX, nullptr,
          nullptr, 0);
}
#else
// Non-Linux never selects the fast protocol (shm_create falls back to
// locked), so these exist only to keep the fast functions compiling.
void futex_wait(std::atomic<std::uint32_t>*, std::uint32_t) noexcept {
  timespec ts{0, 1'000'000};
  count_futex_wait();
  nanosleep(&ts, nullptr);
}
void futex_wake_all(std::atomic<std::uint32_t>*) noexcept { count_futex_wake(); }
#endif

/// Wake the ring's consumer after publishing slot `pos`, but only on
/// the transition that needs it: the consumer is parked AND parked on
/// *this* slot (its cursor `tail` equals `pos` — a publication further
/// ahead will be found without sleeping).  The seq_cst fence pairs with
/// the one in park_consumer: either our post-fence loads see the parked
/// flag and cursor (we wake), or the consumer's post-flag recheck sees
/// our publication (it never sleeps) — the store-buffer race loses
/// exactly one of the two ways.  Without the cursor check a burst of
/// publications pays one wake syscall *each* until the slow consumer
/// gets scheduled; with it, one per empty→non-empty transition.
void wake_consumer_if_needed(ShmRing* r, std::uint64_t pos) noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (r->consumer_parked.load(std::memory_order_relaxed) != 0 &&
      r->tail.load(std::memory_order_relaxed) == pos) {
    r->futex_empty.fetch_add(1, std::memory_order_relaxed);
    futex_wake_all(&r->futex_empty);
  }
}

/// Unconditional producer wake (spill frees, death notification): any
/// parked producer gets a kick.
void wake_producers_if_parked(ShmRing* r) noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (r->producers_parked.load(std::memory_order_relaxed) != 0) {
    r->futex_full.fetch_add(1, std::memory_order_relaxed);
    futex_wake_all(&r->futex_full);
  }
}

/// Wake parked producers after recycling slot `pos`, but only on the
/// full→non-full transition: the claim cursor sits exactly one ring
/// past the slot we just freed.  Producers parked against a ring that
/// already has space re-check after their pre-sleep fence (or ride the
/// 100ms backstop), so skipping the syscall here is safe — same fence
/// pairing as the consumer side.
void wake_producers_if_was_full(ShmRing* r, std::uint64_t pos) noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (r->producers_parked.load(std::memory_order_relaxed) != 0 &&
      r->head.load(std::memory_order_relaxed) == pos + kShmRingSlots) {
    r->futex_full.fetch_add(1, std::memory_order_relaxed);
    futex_wake_all(&r->futex_full);
  }
}

/// Park the consumer until `slot` publishes sequence `pos + 1`, the
/// generation moves, or the 100ms backstop fires.
void park_consumer(ShmRing* r, ShmSlot* slot, std::uint64_t pos) noexcept {
  const std::uint32_t gen = r->futex_empty.load(std::memory_order_relaxed);
  r->consumer_parked.store(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (slot->seq.load(std::memory_order_acquire) != pos + 1) {
    futex_wait(&r->futex_empty, gen);
  }
  r->consumer_parked.store(0, std::memory_order_relaxed);
}

// ---- spill free list --------------------------------------------------------

/// Spillover free-list node, stored *in the spill arena itself* at the
/// block's offset.  Read/written via memcpy: blocks are 16-aligned but
/// the aliasing rules are easier to satisfy than to argue about.
struct FreeBlock {
  std::uint64_t size;
  std::uint64_t next;
};
static_assert(sizeof(FreeBlock) == 16);

[[nodiscard]] FreeBlock load_block(const std::byte* spill, std::uint64_t off) noexcept {
  FreeBlock b;
  std::memcpy(&b, spill + off, sizeof b);
  return b;
}

void store_block(std::byte* spill, std::uint64_t off, FreeBlock b) noexcept {
  std::memcpy(spill + off, &b, sizeof b);
}

[[nodiscard]] constexpr std::uint64_t round16(std::uint64_t v) noexcept {
  return (v + 15) / 16 * 16;
}

/// Lock a ring mutex, absorbing the death of a previous owner.  The
/// push/pop protocol commits state with the final head/tail bump (locked
/// mode) or the slot seq publication (fast mode; the mutex then guards
/// only the spill free list), so a lock recovered via EOWNERDEAD always
/// guards consistent data.
void lock_robust(pthread_mutex_t* mu) {
  int rc = pthread_mutex_lock(mu);
  if (rc == EOWNERDEAD) rc = pthread_mutex_consistent(mu);
  PEACHY_CHECK(rc == 0, "shm ring: mutex lock failed (" + std::string{std::strerror(rc)} + ")");
}

/// ~100ms bounded wait: a wakeup lost to a peer death (no robust
/// condvars exist) costs one poll interval, never a hang.
void timed_wait(pthread_cond_t* cv, pthread_mutex_t* mu) {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  ts.tv_nsec += 100'000'000;
  if (ts.tv_nsec >= 1'000'000'000) {
    ts.tv_nsec -= 1'000'000'000;
    ++ts.tv_sec;
  }
  int rc = pthread_cond_timedwait(cv, mu, &ts);
  if (rc == EOWNERDEAD) rc = pthread_mutex_consistent(mu);
  PEACHY_CHECK(rc == 0 || rc == ETIMEDOUT,
               "shm ring: condvar wait failed (" + std::string{std::strerror(rc)} + ")");
}

/// First-fit allocation from the offset-sorted free list.  Returns
/// {offset, granted size} or {kShmSpillNull, 0}.  A tail remainder
/// smaller than 32 bytes is granted along with the block rather than
/// left as an unusable sliver.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> alloc_spill(ShmRing* r, std::byte* spill,
                                                                  std::uint64_t need) {
  std::uint64_t prev = kShmSpillNull;
  std::uint64_t cur = r->free_head;
  while (cur != kShmSpillNull) {
    const FreeBlock b = load_block(spill, cur);
    if (b.size >= need) {
      std::uint64_t granted = need;
      std::uint64_t next = b.next;
      if (b.size - need >= 32) {
        store_block(spill, cur + need, FreeBlock{b.size - need, b.next});
        next = cur + need;
      } else {
        granted = b.size;
      }
      if (prev == kShmSpillNull) {
        r->free_head = next;
      } else {
        FreeBlock pb = load_block(spill, prev);
        pb.next = next;
        store_block(spill, prev, pb);
      }
      return {cur, granted};
    }
    prev = cur;
    cur = b.next;
  }
  return {kShmSpillNull, 0};
}

/// Return a block to the free list, keeping it offset-sorted and
/// coalescing with both neighbors.
void free_spill(ShmRing* r, std::byte* spill, std::uint64_t off, std::uint64_t size) {
  std::uint64_t prev = kShmSpillNull;
  std::uint64_t cur = r->free_head;
  while (cur != kShmSpillNull && cur < off) {
    prev = cur;
    cur = load_block(spill, cur).next;
  }
  std::uint64_t next = cur;
  if (cur != kShmSpillNull && off + size == cur) {  // merge with the block after
    const FreeBlock nb = load_block(spill, cur);
    size += nb.size;
    next = nb.next;
  }
  if (prev != kShmSpillNull) {
    FreeBlock pb = load_block(spill, prev);
    if (prev + pb.size == off) {  // merge into the block before
      pb.size += size;
      pb.next = next;
      store_block(spill, prev, pb);
      return;
    }
    pb.next = off;
    store_block(spill, prev, pb);
  } else {
    r->free_head = off;
  }
  store_block(spill, off, FreeBlock{size, next});
}

void count_spill_hit() noexcept {
  if (obs::enabled()) {
    static obs::Counter& c = obs::counter("mpi.transport.shm.spill_hits");
    c.add(1);
  }
}

/// Allocate a spill block as a fast-mode producer, parking on the
/// producers' futex while the arena is exhausted.  Returns
/// {kShmSpillNull, 0} only on give_up.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> alloc_spill_fast(
    ShmRing* r, std::byte* spill, std::uint64_t need, const std::atomic<bool>* give_up) {
  for (;;) {
    if (give_up != nullptr && give_up->load(std::memory_order_relaxed)) {
      return {kShmSpillNull, 0};
    }
    lock_robust(&r->mu);
    const auto got = alloc_spill(r, spill, need);
    pthread_mutex_unlock(&r->mu);
    if (got.first != kShmSpillNull) return got;

    // Exhausted: announce the park *before* the confirming re-try so the
    // consumer's free→check-parked sequence can't miss us (it frees and
    // checks in the opposite order — one side always sees the other).
    const std::uint32_t gen = r->futex_full.load(std::memory_order_relaxed);
    r->producers_parked.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    lock_robust(&r->mu);
    const auto retry = alloc_spill(r, spill, need);
    pthread_mutex_unlock(&r->mu);
    if (retry.first != kShmSpillNull) {
      r->producers_parked.fetch_sub(1, std::memory_order_relaxed);
      return retry;
    }
    futex_wait(&r->futex_full, gen);
    r->producers_parked.fetch_sub(1, std::memory_order_relaxed);
  }
}

/// Process-local serialization of fast-mode pushes *from this process*
/// into one ring: it makes the per-process claim register single-writer
/// (several rank threads of one process share one register) without any
/// cross-process cost.  Hashed so unrelated rings rarely collide.
std::mutex& local_push_mutex(const ShmRing* r) noexcept {
  static std::array<std::mutex, 16> mus;
  return mus[(reinterpret_cast<std::uintptr_t>(r) >> 6) % mus.size()];
}

// ---- fast protocol ----------------------------------------------------------

bool push_fast(const ShmView& view, int proc, int me, const FrameHeader& h,
               const std::byte* payload, const std::atomic<bool>* give_up) {
  ShmRing* r = view.ring(proc);
  std::byte* spill = view.spill(proc);

  std::uint64_t spill_off = kShmSpillNull;
  std::uint64_t spill_cap = 0;
  if (h.bytes > kShmInlineBytes) {
    const auto got = alloc_spill_fast(r, spill, round16(h.bytes), give_up);
    if (got.first == kShmSpillNull) return false;
    spill_off = got.first;
    spill_cap = got.second;
    std::memcpy(spill + spill_off, payload, h.bytes);
    count_spill_hit();
  }

  std::mutex& lm = local_push_mutex(r);
  for (;;) {
    if (give_up != nullptr && give_up->load(std::memory_order_relaxed)) {
      if (spill_off != kShmSpillNull) {
        lock_robust(&r->mu);
        free_spill(r, spill, spill_off, spill_cap);
        pthread_mutex_unlock(&r->mu);
      }
      return false;
    }

    bool published = false;
    std::uint64_t published_pos = 0;
    {
      const std::lock_guard<std::mutex> g(lm);
      std::uint64_t pos = r->head.load(std::memory_order_relaxed);
      for (;;) {
        ShmSlot* slot = &r->slots[pos % kShmRingSlots];
        const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
        if (seq == pos) {
          // Claim register first, CAS second: the release CAS orders the
          // register store before the head bump, so any consumer that
          // observes head > pos can also observe who claimed pos.
          r->claim[me].store(pos, std::memory_order_relaxed);
          if (r->head.compare_exchange_weak(pos, pos + 1, std::memory_order_release,
                                            std::memory_order_relaxed)) {
            if (test_hooks::g_die_between_claim_and_publish.load(std::memory_order_relaxed)) {
              raise(SIGKILL);  // the crashed-peer-mid-slot scenario
            }
            slot->hdr = h;
            slot->spill_off = spill_off;
            slot->spill_cap = spill_cap;
            if (spill_off == kShmSpillNull && h.bytes != 0) {
              std::memcpy(slot->inline_bytes, payload, h.bytes);
            }
            slot->seq.store(pos + 1, std::memory_order_release);  // the publication
            r->claim[me].store(kShmClaimNone, std::memory_order_release);
            published = true;
            published_pos = pos;
            break;
          }
          // Lost the race; `pos` now holds the current head.  Clear the
          // register so a parked loser never pins the consumer's
          // dead-hole scan on a stale position.
          r->claim[me].store(kShmClaimNone, std::memory_order_relaxed);
          continue;
        }
        if (seq > pos) {  // stale head snapshot — someone claimed past us
          pos = r->head.load(std::memory_order_relaxed);
          continue;
        }
        break;  // seq < pos: slot not yet recycled → ring full
      }
    }
    if (published) {
      wake_consumer_if_needed(r, published_pos);
      return true;
    }

    // Ring full: spin briefly for the consumer, then park (outside the
    // local mutex so sibling threads aren't held hostage).
    std::uint64_t pos = r->head.load(std::memory_order_relaxed);
    ShmSlot* slot = &r->slots[pos % kShmRingSlots];
    bool freed = false;
    for (int i = 0; i < kSpinIters; ++i) {
      if (slot->seq.load(std::memory_order_acquire) >= pos) {
        freed = true;
        break;
      }
      cpu_relax();
    }
    if (!freed) {
      const std::uint32_t gen = r->futex_full.load(std::memory_order_relaxed);
      r->producers_parked.fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      pos = r->head.load(std::memory_order_relaxed);
      if (r->slots[pos % kShmRingSlots].seq.load(std::memory_order_acquire) < pos) {
        futex_wait(&r->futex_full, gen);
      }
      r->producers_parked.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

/// The consumer found `pos` claimed (head moved past it) but
/// unpublished.  Skip it iff the claim provably belongs to a dead
/// process: the winning producer stored its register before the head
/// CAS and clears it only after publication, so while the hole exists
/// exactly the claimant's register names `pos`.  If every register
/// naming `pos` belongs to a dead_mask process — and a final seq
/// re-check still shows no publication — the claimant died mid-slot and
/// the slot is recycled (its spill block, if it got that far, leaks:
/// bounded, and the world is about to shrink).  Any *live* register
/// naming `pos` vetoes the skip — it may be the real claimant still
/// copying.
bool try_skip_dead_hole(const ShmView& view, ShmRing* r, ShmSlot* slot, std::uint64_t pos) {
  const std::uint64_t mask =
      view.header()->dead_mask.load(std::memory_order_acquire);
  if (mask == 0) return false;
  bool dead_match = false;
  for (int q = 0; q <= kShmLauncherProc; ++q) {
    if (r->claim[q].load(std::memory_order_acquire) != pos) continue;
    const bool dead = q < kShmMaxFastProcs && ((mask >> q) & 1U) != 0;
    if (!dead) return false;  // a live process names this position
    dead_match = true;
  }
  if (!dead_match) return false;
  // The claimant may have published and died before clearing its
  // register; seeing the cleared/unchanged register above does not
  // order against the seq store, so re-check before declaring a hole.
  if (slot->seq.load(std::memory_order_acquire) != pos) return false;
  slot->seq.store(pos + kShmRingSlots, std::memory_order_release);
  r->tail.store(pos + 1, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& c = obs::counter("mpi.transport.shm.holes_skipped");
    c.add(1);
  }
  return true;
}

bool consume_fast(const ShmView& view, int proc, const std::atomic<bool>& stop,
                  const std::function<void(const FrameHeader&, const std::byte*)>& consume,
                  bool* waited) {
  ShmRing* r = view.ring(proc);
  std::byte* spill = view.spill(proc);
  bool did_wait = false;

  std::uint64_t pos = r->tail.load(std::memory_order_relaxed);
  ShmSlot* slot = &r->slots[pos % kShmRingSlots];
  for (;;) {
    bool ready = slot->seq.load(std::memory_order_acquire) == pos + 1;
    for (int i = 0; !ready && i < kSpinIters; ++i) {
      cpu_relax();
      ready = slot->seq.load(std::memory_order_acquire) == pos + 1;
    }
    if (ready) break;
    did_wait = true;
    if (r->head.load(std::memory_order_acquire) > pos) {
      // Claimed but unpublished: a producer is mid-slot — or died there.
      if (try_skip_dead_hole(view, r, slot, pos)) {
        pos = r->tail.load(std::memory_order_relaxed);
        slot = &r->slots[pos % kShmRingSlots];
        continue;
      }
    } else if (stop.load(std::memory_order_relaxed)) {
      if (waited != nullptr) *waited = did_wait;
      return false;
    }
    park_consumer(r, slot, pos);
  }

  const FrameHeader h = slot->hdr;
  const std::uint64_t spill_off = slot->spill_off;
  const std::uint64_t spill_cap = slot->spill_cap;
  const std::byte* src = spill_off == kShmSpillNull ? slot->inline_bytes : spill + spill_off;
  consume(h, src);  // single copy: straight out of the segment

  if (spill_off != kShmSpillNull) {
    lock_robust(&r->mu);
    free_spill(r, spill, spill_off, spill_cap);
    pthread_mutex_unlock(&r->mu);
    wake_producers_if_parked(r);  // spill waiters park on the same futex
  }
  slot->seq.store(pos + kShmRingSlots, std::memory_order_release);  // recycle
  r->tail.store(pos + 1, std::memory_order_relaxed);
  wake_producers_if_was_full(r, pos);
  if (waited != nullptr) *waited = did_wait;
  return true;
}

// ---- locked protocol (the PEACHY_SHM_RING=locked fallback) ------------------

bool push_locked(const ShmView& view, int proc, const FrameHeader& h, const std::byte* payload,
                 const std::atomic<bool>* give_up) {
  ShmRing* r = view.ring(proc);
  std::byte* spill = view.spill(proc);

  lock_robust(&r->mu);
  ShmSlot* slot = nullptr;
  for (;;) {
    if (give_up != nullptr && give_up->load(std::memory_order_relaxed)) {
      pthread_mutex_unlock(&r->mu);
      return false;
    }
    const std::uint64_t head = r->head.load(std::memory_order_relaxed);
    if (head - r->tail.load(std::memory_order_relaxed) < kShmRingSlots) {
      slot = &r->slots[head % kShmRingSlots];
      if (h.bytes <= kShmInlineBytes) {
        if (h.bytes != 0) std::memcpy(slot->inline_bytes, payload, h.bytes);
        slot->spill_off = kShmSpillNull;
        slot->spill_cap = 0;
        break;
      }
      const auto [off, cap] = alloc_spill(r, spill, round16(h.bytes));
      if (off != kShmSpillNull) {
        std::memcpy(spill + off, payload, h.bytes);
        slot->spill_off = off;
        slot->spill_cap = cap;
        count_spill_hit();
        break;
      }
    }
    timed_wait(&r->not_full, &r->mu);
  }
  slot->hdr = h;
  // The commit point: nothing above is visible until this bump.
  r->head.fetch_add(1, std::memory_order_relaxed);
  pthread_cond_broadcast(&r->not_empty);
  pthread_mutex_unlock(&r->mu);
  return true;
}

bool consume_locked(const ShmView& view, int proc, const std::atomic<bool>& stop,
                    const std::function<void(const FrameHeader&, const std::byte*)>& consume,
                    bool* waited) {
  ShmRing* r = view.ring(proc);
  std::byte* spill = view.spill(proc);
  bool did_wait = false;

  lock_robust(&r->mu);
  while (r->head.load(std::memory_order_relaxed) == r->tail.load(std::memory_order_relaxed)) {
    if (stop.load(std::memory_order_relaxed)) {
      pthread_mutex_unlock(&r->mu);
      if (waited != nullptr) *waited = did_wait;
      return false;
    }
    did_wait = true;
    timed_wait(&r->not_empty, &r->mu);
  }
  const std::uint64_t tail = r->tail.load(std::memory_order_relaxed);
  ShmSlot* slot = &r->slots[tail % kShmRingSlots];
  const FrameHeader h = slot->hdr;
  const std::byte* src =
      slot->spill_off == kShmSpillNull ? slot->inline_bytes : spill + slot->spill_off;
  consume(h, src);
  if (slot->spill_off != kShmSpillNull) free_spill(r, spill, slot->spill_off, slot->spill_cap);
  r->tail.fetch_add(1, std::memory_order_relaxed);
  pthread_cond_broadcast(&r->not_full);
  pthread_mutex_unlock(&r->mu);
  if (waited != nullptr) *waited = did_wait;
  return true;
}

// ---- segment lifecycle ------------------------------------------------------

void init_ring(ShmRing* r, std::byte* spill, std::uint64_t spill_bytes) {
  pthread_mutexattr_t ma;
  PEACHY_CHECK(pthread_mutexattr_init(&ma) == 0, "shm ring: mutexattr init failed");
  pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
  pthread_mutexattr_setrobust(&ma, PTHREAD_MUTEX_ROBUST);
  PEACHY_CHECK(pthread_mutex_init(&r->mu, &ma) == 0, "shm ring: mutex init failed");
  pthread_mutexattr_destroy(&ma);

  pthread_condattr_t ca;
  PEACHY_CHECK(pthread_condattr_init(&ca) == 0, "shm ring: condattr init failed");
  pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
  pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
  PEACHY_CHECK(pthread_cond_init(&r->not_empty, &ca) == 0, "shm ring: condvar init failed");
  PEACHY_CHECK(pthread_cond_init(&r->not_full, &ca) == 0, "shm ring: condvar init failed");
  pthread_condattr_destroy(&ca);

  r->head.store(0, std::memory_order_relaxed);
  r->tail.store(0, std::memory_order_relaxed);
  r->free_head = 0;
  for (auto& c : r->claim) c.store(kShmClaimNone, std::memory_order_relaxed);
  r->consumer_parked.store(0, std::memory_order_relaxed);
  r->producers_parked.store(0, std::memory_order_relaxed);
  r->futex_empty.store(0, std::memory_order_relaxed);
  r->futex_full.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kShmRingSlots; ++i) {
    r->slots[i].seq.store(i, std::memory_order_relaxed);
  }
  store_block(spill, 0, FreeBlock{spill_bytes, kShmSpillNull});
}

[[nodiscard]] ShmRingMode pick_mode(int nprocs) {
  const char* e = std::getenv("PEACHY_SHM_RING");
  if (e != nullptr) {
    const std::string_view v{e};
    if (v == "locked") return ShmRingMode::kLocked;
    // A typo ("lock", "LOCKED") must not silently select the fast
    // protocol when the user asked for the robustness fallback.
    PEACHY_CHECK(v == "fast", "PEACHY_SHM_RING='" + std::string{v} +
                                  "' is not a ring protocol (expected 'fast' or 'locked')");
  }
#if !defined(__linux__)
  if (e != nullptr) {
    std::fprintf(stderr,
                 "peachy-mpi: PEACHY_SHM_RING=fast unavailable without futex; using locked\n");
  }
  return ShmRingMode::kLocked;  // no futex — the fast path's parking primitive
#else
  if (nprocs > kShmMaxFastProcs) {  // claim-register width
    if (e != nullptr) {
      std::fprintf(stderr,
                   "peachy-mpi: PEACHY_SHM_RING=fast covers <= %d procs; world of %d uses locked\n",
                   kShmMaxFastProcs, nprocs);
    }
    return ShmRingMode::kLocked;
  }
  return ShmRingMode::kFast;
#endif
}

}  // namespace

ShmRing* ShmView::ring(int proc) const noexcept {
  const std::size_t off = ring_offset(proc, header()->spill_bytes);
  return reinterpret_cast<ShmRing*>(static_cast<std::byte*>(base) + off);
}

std::byte* ShmView::spill(int proc) const noexcept {
  const std::size_t off =
      ring_offset(proc, header()->spill_bytes) + align_up(sizeof(ShmRing), kAlign);
  return static_cast<std::byte*>(base) + off;
}

std::size_t shm_segment_bytes(int nprocs, std::size_t spill_bytes) {
  return ring_offset(nprocs, spill_bytes);
}

ShmView shm_create(const std::string& name, int nprocs, std::size_t spill_bytes) {
  PEACHY_CHECK(nprocs > 0, "shm_create: nprocs must be positive");
  // Resolve the protocol first: a bad PEACHY_SHM_RING value fails the
  // launch before any segment exists to leak.
  const ShmRingMode mode = pick_mode(nprocs);
  int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Leftover from a crashed earlier run with the same pid-derived
    // name: reclaim it once rather than failing the launch.
    shm_unlink(name.c_str());
    fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  PEACHY_CHECK(fd >= 0, "shm_create: shm_open('" + name + "') failed (" +
                            std::string{std::strerror(errno)} + ")");
  const std::size_t bytes = shm_segment_bytes(nprocs, spill_bytes);
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    close(fd);
    shm_unlink(name.c_str());
    PEACHY_CHECK(false, "shm_create: ftruncate to " + std::to_string(bytes) + " bytes failed (" +
                            std::string{std::strerror(err)} + ")");
  }
  void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  PEACHY_CHECK(base != MAP_FAILED,
               "shm_create: mmap failed (" + std::string{std::strerror(errno)} + ")");

  ShmView view{base, bytes};
  ShmSegHeader* hdr = view.header();
  hdr->nprocs = static_cast<std::uint32_t>(nprocs);
  hdr->spill_bytes = spill_bytes;
  hdr->mode = mode;
  hdr->dead_mask.store(0, std::memory_order_relaxed);
  for (int p = 0; p < nprocs; ++p) init_ring(view.ring(p), view.spill(p), spill_bytes);
  // Magic is written last: an attacher that sees it sees initialized rings.
  hdr->magic = kShmMagic;
  return view;
}

ShmView shm_attach(const std::string& name) {
  const int fd = shm_open(name.c_str(), O_RDWR, 0);
  PEACHY_CHECK(fd >= 0, "shm_attach: shm_open('" + name + "') failed (" +
                            std::string{std::strerror(errno)} + ")");
  struct stat st{};
  PEACHY_CHECK(fstat(fd, &st) == 0, "shm_attach: fstat failed");
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  PEACHY_CHECK(base != MAP_FAILED,
               "shm_attach: mmap failed (" + std::string{std::strerror(errno)} + ")");
  ShmView view{base, bytes};
  PEACHY_CHECK(view.header()->magic == kShmMagic,
               "shm_attach: '" + name + "' is not a peachy shm segment");
  return view;
}

void shm_detach(ShmView& view) noexcept {
  if (view.base != nullptr) munmap(view.base, view.bytes);
  view = ShmView{};
}

void shm_mark_dead(const ShmView& view, int proc) noexcept {
  if (proc < 0 || proc >= kShmMaxFastProcs) return;
  ShmSegHeader* hdr = view.header();
  hdr->dead_mask.fetch_or(std::uint64_t{1} << proc, std::memory_order_release);
  if (hdr->mode != ShmRingMode::kFast) return;
  // Kick every consumer: one stuck on the victim's unpublished slot
  // re-runs its dead-hole scan now instead of on the 100ms backstop.
  for (int p = 0; p < static_cast<int>(hdr->nprocs); ++p) {
    ShmRing* r = view.ring(p);
    r->futex_empty.fetch_add(1, std::memory_order_relaxed);
    futex_wake_all(&r->futex_empty);
  }
}

bool ring_push(const ShmView& view, int proc, int me, const FrameHeader& h,
               const std::byte* payload, const std::atomic<bool>* give_up) {
  if (h.bytes > kShmInlineBytes) {
    const std::uint64_t spill_bytes = view.header()->spill_bytes;
    PEACHY_CHECK(round16(h.bytes) <= spill_bytes,
                 "shm transport: " + std::to_string(h.bytes) +
                     "-byte message exceeds the spillover arena (" + std::to_string(spill_bytes) +
                     " bytes) and can never be delivered");
  }
  if (view.header()->mode == ShmRingMode::kFast) {
    // Only the fast protocol indexes the claim register with `me`; the
    // locked fallback (auto-selected for worlds wider than
    // kShmMaxFastProcs) ignores the pusher index entirely.
    PEACHY_CHECK(me >= 0 && me <= kShmLauncherProc, "ring_push: bad pusher index");
    return push_fast(view, proc, me, h, payload, give_up);
  }
  return push_locked(view, proc, h, payload, give_up);
}

bool ring_consume(const ShmView& view, int proc, const std::atomic<bool>& stop,
                  const std::function<void(const FrameHeader&, const std::byte*)>& consume,
                  bool* waited) {
  if (view.header()->mode == ShmRingMode::kFast) {
    return consume_fast(view, proc, stop, consume, waited);
  }
  return consume_locked(view, proc, stop, consume, waited);
}

bool ring_pop(const ShmView& view, int proc, FrameHeader& h, std::vector<std::byte>& payload,
              const std::atomic<bool>& stop) {
  return ring_consume(
      view, proc, stop,
      [&](const FrameHeader& hh, const std::byte* src) {
        h = hh;
        payload.resize(static_cast<std::size_t>(hh.bytes));
        if (hh.bytes != 0) std::memcpy(payload.data(), src, hh.bytes);
      },
      nullptr);
}

}  // namespace peachy::mpi::detail
