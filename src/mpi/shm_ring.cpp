#include "mpi/shm_ring.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include "support/check.hpp"

namespace peachy::mpi::detail {

namespace {

constexpr std::size_t kAlign = 64;

[[nodiscard]] constexpr std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

[[nodiscard]] std::size_t ring_stride(std::size_t spill_bytes) noexcept {
  return align_up(sizeof(ShmRing), kAlign) + align_up(spill_bytes, kAlign);
}

[[nodiscard]] std::size_t ring_offset(int proc, std::size_t spill_bytes) noexcept {
  return align_up(sizeof(ShmSegHeader), kAlign) +
         static_cast<std::size_t>(proc) * ring_stride(spill_bytes);
}

/// Spillover free-list node, stored *in the spill arena itself* at the
/// block's offset.  Read/written via memcpy: blocks are 16-aligned but
/// the aliasing rules are easier to satisfy than to argue about.
struct FreeBlock {
  std::uint64_t size;
  std::uint64_t next;
};
static_assert(sizeof(FreeBlock) == 16);

[[nodiscard]] FreeBlock load_block(const std::byte* spill, std::uint64_t off) noexcept {
  FreeBlock b;
  std::memcpy(&b, spill + off, sizeof b);
  return b;
}

void store_block(std::byte* spill, std::uint64_t off, FreeBlock b) noexcept {
  std::memcpy(spill + off, &b, sizeof b);
}

[[nodiscard]] constexpr std::uint64_t round16(std::uint64_t v) noexcept {
  return (v + 15) / 16 * 16;
}

/// Lock a ring mutex, absorbing the death of a previous owner.  The
/// push/pop protocol commits state with the final head/tail bump, so a
/// lock recovered via EOWNERDEAD always guards consistent data.
void lock_robust(pthread_mutex_t* mu) {
  int rc = pthread_mutex_lock(mu);
  if (rc == EOWNERDEAD) rc = pthread_mutex_consistent(mu);
  PEACHY_CHECK(rc == 0, "shm ring: mutex lock failed (" + std::string{std::strerror(rc)} + ")");
}

/// ~100ms bounded wait: a wakeup lost to a peer death (no robust
/// condvars exist) costs one poll interval, never a hang.
void timed_wait(pthread_cond_t* cv, pthread_mutex_t* mu) {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  ts.tv_nsec += 100'000'000;
  if (ts.tv_nsec >= 1'000'000'000) {
    ts.tv_nsec -= 1'000'000'000;
    ++ts.tv_sec;
  }
  int rc = pthread_cond_timedwait(cv, mu, &ts);
  if (rc == EOWNERDEAD) rc = pthread_mutex_consistent(mu);
  PEACHY_CHECK(rc == 0 || rc == ETIMEDOUT,
               "shm ring: condvar wait failed (" + std::string{std::strerror(rc)} + ")");
}

/// First-fit allocation from the offset-sorted free list.  Returns
/// {offset, granted size} or {kShmSpillNull, 0}.  A tail remainder
/// smaller than 32 bytes is granted along with the block rather than
/// left as an unusable sliver.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> alloc_spill(ShmRing* r, std::byte* spill,
                                                                  std::uint64_t need) {
  std::uint64_t prev = kShmSpillNull;
  std::uint64_t cur = r->free_head;
  while (cur != kShmSpillNull) {
    const FreeBlock b = load_block(spill, cur);
    if (b.size >= need) {
      std::uint64_t granted = need;
      std::uint64_t next = b.next;
      if (b.size - need >= 32) {
        store_block(spill, cur + need, FreeBlock{b.size - need, b.next});
        next = cur + need;
      } else {
        granted = b.size;
      }
      if (prev == kShmSpillNull) {
        r->free_head = next;
      } else {
        FreeBlock pb = load_block(spill, prev);
        pb.next = next;
        store_block(spill, prev, pb);
      }
      return {cur, granted};
    }
    prev = cur;
    cur = b.next;
  }
  return {kShmSpillNull, 0};
}

/// Return a block to the free list, keeping it offset-sorted and
/// coalescing with both neighbors.
void free_spill(ShmRing* r, std::byte* spill, std::uint64_t off, std::uint64_t size) {
  std::uint64_t prev = kShmSpillNull;
  std::uint64_t cur = r->free_head;
  while (cur != kShmSpillNull && cur < off) {
    prev = cur;
    cur = load_block(spill, cur).next;
  }
  std::uint64_t next = cur;
  if (cur != kShmSpillNull && off + size == cur) {  // merge with the block after
    const FreeBlock nb = load_block(spill, cur);
    size += nb.size;
    next = nb.next;
  }
  if (prev != kShmSpillNull) {
    FreeBlock pb = load_block(spill, prev);
    if (prev + pb.size == off) {  // merge into the block before
      pb.size += size;
      pb.next = next;
      store_block(spill, prev, pb);
      return;
    }
    pb.next = off;
    store_block(spill, prev, pb);
  } else {
    r->free_head = off;
  }
  store_block(spill, off, FreeBlock{size, next});
}

void init_ring(ShmRing* r, std::byte* spill, std::uint64_t spill_bytes) {
  pthread_mutexattr_t ma;
  PEACHY_CHECK(pthread_mutexattr_init(&ma) == 0, "shm ring: mutexattr init failed");
  pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
  pthread_mutexattr_setrobust(&ma, PTHREAD_MUTEX_ROBUST);
  PEACHY_CHECK(pthread_mutex_init(&r->mu, &ma) == 0, "shm ring: mutex init failed");
  pthread_mutexattr_destroy(&ma);

  pthread_condattr_t ca;
  PEACHY_CHECK(pthread_condattr_init(&ca) == 0, "shm ring: condattr init failed");
  pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
  pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
  PEACHY_CHECK(pthread_cond_init(&r->not_empty, &ca) == 0, "shm ring: condvar init failed");
  PEACHY_CHECK(pthread_cond_init(&r->not_full, &ca) == 0, "shm ring: condvar init failed");
  pthread_condattr_destroy(&ca);

  r->head = 0;
  r->tail = 0;
  r->free_head = 0;
  store_block(spill, 0, FreeBlock{spill_bytes, kShmSpillNull});
}

}  // namespace

ShmRing* ShmView::ring(int proc) const noexcept {
  const std::size_t off = ring_offset(proc, header()->spill_bytes);
  return reinterpret_cast<ShmRing*>(static_cast<std::byte*>(base) + off);
}

std::byte* ShmView::spill(int proc) const noexcept {
  const std::size_t off =
      ring_offset(proc, header()->spill_bytes) + align_up(sizeof(ShmRing), kAlign);
  return static_cast<std::byte*>(base) + off;
}

std::size_t shm_segment_bytes(int nprocs, std::size_t spill_bytes) {
  return ring_offset(nprocs, spill_bytes);
}

ShmView shm_create(const std::string& name, int nprocs, std::size_t spill_bytes) {
  PEACHY_CHECK(nprocs > 0, "shm_create: nprocs must be positive");
  int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Leftover from a crashed earlier run with the same pid-derived
    // name: reclaim it once rather than failing the launch.
    shm_unlink(name.c_str());
    fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  PEACHY_CHECK(fd >= 0, "shm_create: shm_open('" + name + "') failed (" +
                            std::string{std::strerror(errno)} + ")");
  const std::size_t bytes = shm_segment_bytes(nprocs, spill_bytes);
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    close(fd);
    shm_unlink(name.c_str());
    PEACHY_CHECK(false, "shm_create: ftruncate to " + std::to_string(bytes) + " bytes failed (" +
                            std::string{std::strerror(err)} + ")");
  }
  void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  PEACHY_CHECK(base != MAP_FAILED,
               "shm_create: mmap failed (" + std::string{std::strerror(errno)} + ")");

  ShmView view{base, bytes};
  ShmSegHeader* hdr = view.header();
  hdr->nprocs = static_cast<std::uint32_t>(nprocs);
  hdr->spill_bytes = spill_bytes;
  for (int p = 0; p < nprocs; ++p) init_ring(view.ring(p), view.spill(p), spill_bytes);
  // Magic is written last: an attacher that sees it sees initialized rings.
  hdr->magic = kShmMagic;
  return view;
}

ShmView shm_attach(const std::string& name) {
  const int fd = shm_open(name.c_str(), O_RDWR, 0);
  PEACHY_CHECK(fd >= 0, "shm_attach: shm_open('" + name + "') failed (" +
                            std::string{std::strerror(errno)} + ")");
  struct stat st{};
  PEACHY_CHECK(fstat(fd, &st) == 0, "shm_attach: fstat failed");
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  PEACHY_CHECK(base != MAP_FAILED,
               "shm_attach: mmap failed (" + std::string{std::strerror(errno)} + ")");
  ShmView view{base, bytes};
  PEACHY_CHECK(view.header()->magic == kShmMagic,
               "shm_attach: '" + name + "' is not a peachy shm segment");
  return view;
}

void shm_detach(ShmView& view) noexcept {
  if (view.base != nullptr) munmap(view.base, view.bytes);
  view = ShmView{};
}

bool ring_push(const ShmView& view, int proc, const FrameHeader& h, const std::byte* payload,
               const std::atomic<bool>* give_up) {
  ShmRing* r = view.ring(proc);
  std::byte* spill = view.spill(proc);
  const std::uint64_t spill_bytes = view.header()->spill_bytes;
  if (h.bytes > kShmInlineBytes) {
    PEACHY_CHECK(round16(h.bytes) <= spill_bytes,
                 "shm transport: " + std::to_string(h.bytes) +
                     "-byte message exceeds the spillover arena (" + std::to_string(spill_bytes) +
                     " bytes) and can never be delivered");
  }

  lock_robust(&r->mu);
  ShmSlot* slot = nullptr;
  for (;;) {
    if (give_up != nullptr && give_up->load(std::memory_order_relaxed)) {
      pthread_mutex_unlock(&r->mu);
      return false;
    }
    if (r->head - r->tail < kShmRingSlots) {
      slot = &r->slots[r->head % kShmRingSlots];
      if (h.bytes <= kShmInlineBytes) {
        if (h.bytes != 0) std::memcpy(slot->inline_bytes, payload, h.bytes);
        slot->spill_off = kShmSpillNull;
        slot->spill_cap = 0;
        break;
      }
      const auto [off, cap] = alloc_spill(r, spill, round16(h.bytes));
      if (off != kShmSpillNull) {
        std::memcpy(spill + off, payload, h.bytes);
        slot->spill_off = off;
        slot->spill_cap = cap;
        break;
      }
    }
    timed_wait(&r->not_full, &r->mu);
  }
  slot->hdr = h;
  ++r->head;  // the commit point: nothing above is visible until this line
  pthread_cond_broadcast(&r->not_empty);
  pthread_mutex_unlock(&r->mu);
  return true;
}

bool ring_pop(const ShmView& view, int proc, FrameHeader& h, std::vector<std::byte>& payload,
              const std::atomic<bool>& stop) {
  ShmRing* r = view.ring(proc);
  std::byte* spill = view.spill(proc);

  lock_robust(&r->mu);
  while (r->head == r->tail) {
    if (stop.load(std::memory_order_relaxed)) {
      pthread_mutex_unlock(&r->mu);
      return false;
    }
    timed_wait(&r->not_empty, &r->mu);
  }
  ShmSlot* slot = &r->slots[r->tail % kShmRingSlots];
  h = slot->hdr;
  payload.resize(static_cast<std::size_t>(h.bytes));
  if (h.bytes != 0) {
    const std::byte* src =
        slot->spill_off == kShmSpillNull ? slot->inline_bytes : spill + slot->spill_off;
    std::memcpy(payload.data(), src, h.bytes);
  }
  if (slot->spill_off != kShmSpillNull) free_spill(r, spill, slot->spill_off, slot->spill_cap);
  ++r->tail;
  pthread_cond_broadcast(&r->not_full);
  pthread_mutex_unlock(&r->mu);
  return true;
}

}  // namespace peachy::mpi::detail
