#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/mman.h>
#include <unistd.h>

#include "faults/detect.hpp"
#include "faults/plan.hpp"
#include "mpi/frame_router.hpp"
#include "mpi/launch.hpp"
#include "mpi/shm_ring.hpp"
#include "mpi/transport.hpp"
#include "mpi/wire.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::mpi::detail {

namespace {

/// One process-wide endpoint over the world's shm segment: the launcher
/// created it (launched runs) or we create a private single-process one
/// and unlink it immediately (the mapping survives; nothing leaks into
/// /dev/shm past process exit).  The pump drains this process's inbound
/// ring and routes frames; sends push into the destination process's
/// ring (shm_ring.hpp has the slot/spillover protocol).
///
/// Failure mapping: shared memory has no EOF, so the *launcher* is the
/// failure detector — it reaps a signal death and posts a kFailed frame
/// into every survivor's ring (launch.cpp).  The endpoint additionally
/// remembers dead processes so sends to them are dropped (and a sender
/// already blocked on a dead process's full ring gives up) instead of
/// piling into a ring nobody will ever drain.
class ShmEndpoint {
 public:
  static ShmEndpoint& instance() {
    (void)BufferPool::instance();  // constructed first → outlives the endpoint
    static ShmEndpoint ep;
    return ep;
  }

  void ensure_started() {
    std::lock_guard lock{start_mu_};
    if (started_) return;
    const LaunchInfo& li = launch_info();
    if (li.launched) {
      PEACHY_CHECK(li.kind == TransportKind::kShm && !li.shm_name.empty(),
                   "shm transport: launched without a PEACHY_SHM segment to attach");
      launched_ = true;
      my_proc_ = li.rank;
      nprocs_ = li.nranks;
      view_ = shm_attach(li.shm_name);
      PEACHY_CHECK(static_cast<int>(view_.header()->nprocs) == nprocs_,
                   "shm transport: segment was created for " +
                       std::to_string(view_.header()->nprocs) + " processes, not " +
                       std::to_string(nprocs_));
    } else {
      const std::string name = "/peachy." + std::to_string(getpid()) + ".self";
      view_ = shm_create(name, 1, kShmSpillBytes);
      shm_unlink(name.c_str());
    }
    dead_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(nprocs_));
    pump_ = std::thread{[this] { pump_main(); }};
    // Heartbeat: launched multi-process worlds only (from_env gates), and
    // only while the alive-word array covers every process — wide worlds
    // past kShmMaxFastProcs keep the launcher-only failure detector.
    hb_ = faults::HeartbeatConfig::from_env(launched_, nprocs_);
    if (hb_.enabled() && nprocs_ <= kShmMaxFastProcs) {
      beat_ = std::thread{[this] { beat_main(); }};
    }
    started_ = true;
  }

  [[nodiscard]] FrameRouter& router() noexcept { return router_; }
  [[nodiscard]] bool launched() const noexcept { return launched_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] int my_proc() const noexcept { return my_proc_; }
  [[nodiscard]] int proc_of(int rank) const noexcept { return launched_ ? rank : 0; }

  void send_frame(int proc, FrameHeader h, const std::byte* payload) {
    std::atomic<bool>& dead = dead_[static_cast<std::size_t>(proc)];
    if (dead.load(std::memory_order_relaxed)) return;
    if (faults::WireInjector* wi = faults::wire::injector(); wi != nullptr) {
      if (inject_and_push(*wi, proc, h, payload, dead)) return;
    }
    seal_frame(h, payload);
    (void)ring_push(view_, proc, my_proc_, h, payload, &dead);
  }

 private:
  ShmEndpoint() = default;

  ~ShmEndpoint() {
    if (!started_) return;
    stop_.store(true);
    if (beat_.joinable()) {
      {
        const std::lock_guard lock{beat_mu_};  // pairs with the cv wait
      }
      beat_cv_.notify_all();
      beat_.join();
    }
    // A self-addressed goodbye wakes the pump out of its condvar wait
    // immediately (the 100ms safety poll would get there anyway).
    FrameHeader bye = make_ctrl_header(WireKind::kBye, 0, my_proc_, 0);
    seal_frame(bye, nullptr);
    (void)ring_push(view_, my_proc_, my_proc_, bye, nullptr);
    pump_.join();
    shm_detach(view_);
  }

  /// Apply a fired wire action to one outbound frame.  Returns true when
  /// the frame was fully handled here (dropped, or pushed in mutated
  /// form); false sends it down the normal path.  The CRC is sealed over
  /// the *true* content before any mutation, so the receiver's integrity
  /// check must catch what we damaged.
  bool inject_and_push(faults::WireInjector& wi, int proc, FrameHeader& h,
                       const std::byte* payload, std::atomic<bool>& dead) {
    const int src =
        static_cast<WireKind>(h.kind) == WireKind::kData ? h.source : my_proc_;
    const faults::WireAction a = wi.on_frame(src, proc, h.kind);
    if (!a.any()) return false;
    if (a.delay_ns != 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(a.delay_ns));
    }
    if (a.drop) return true;
    seal_frame(h, payload);
    const int copies = a.duplicate ? 2 : 1;
    if (a.corrupt || a.truncate) {
      // Mutate a private copy: duplicates and machine-level fan-out share
      // `payload`, and a clean copy of this same buffer may still be in
      // flight elsewhere.
      std::vector<std::byte> scratch(static_cast<std::size_t>(h.bytes));
      if (h.bytes != 0) std::memcpy(scratch.data(), payload, h.bytes);
      if (h.bytes == 0) {
        h.crc ^= 1;  // nothing to damage but the header
      } else if (a.truncate) {
        // The ring has no short writes, so "truncated" means the tail
        // never made it: zeros where content should be.
        const std::size_t keep = static_cast<std::size_t>(h.bytes) / 2;
        std::memset(scratch.data() + keep, 0, scratch.size() - keep);
      } else {
        scratch[scratch.size() / 2] ^= std::byte{0x01};
      }
      for (int c = 0; c < copies; ++c) {
        (void)ring_push(view_, proc, my_proc_, h, scratch.data(), &dead);
      }
      return true;
    }
    for (int c = 0; c < copies; ++c) {
      (void)ring_push(view_, proc, my_proc_, h, payload, &dead);
    }
    return true;
  }

  /// Dispatch one frame whose payload still lives in the segment (inline
  /// slot or spill block): kData copies exactly once, segment → pooled
  /// message buffer.  Nothing in here pushes back into our own ring —
  /// the ring_consume contract — because routing only ever touches
  /// mailboxes and router state.
  void dispatch(const FrameHeader& h, const std::byte* payload) {
    if (!frame_crc_ok(h, payload)) {
      if (obs::enabled()) obs::counter("mpi.transport.crc_fail").add(1);
      // A corrupt data frame is dropped — to its receiver it is a lost
      // frame, and the timeout/recovery machinery takes over.  Control
      // frames are *never* silently dropped: losing a kFailed/kRevoke
      // wedges every survivor, and the protocol they carry is sticky and
      // idempotent, so delivering a damaged one is strictly safer.
      if (static_cast<WireKind>(h.kind) == WireKind::kData) return;
    }
    switch (static_cast<WireKind>(h.kind)) {
      case WireKind::kData:
        router_.route_data(h.seq, h.dest, frame_to_message(h, payload));
        break;
      case WireKind::kFailed:
        if (h.source >= 0 && h.source < nprocs_) {
          dead_[static_cast<std::size_t>(h.source)].store(true, std::memory_order_relaxed);
        }
        router_.peer_failed(static_cast<std::uint32_t>(h.source),
                            "rank " + std::to_string(h.source) +
                                "'s process died (reported by the launcher)");
        break;
      case WireKind::kRevoke:
        router_.route_ctrl(h.seq, CtrlKind::kRevoke, h.comm, {});
        break;
      case WireKind::kAbort:
        router_.route_ctrl(h.seq, CtrlKind::kAbort, 0,
                           std::string{reinterpret_cast<const char*>(payload),
                                       static_cast<std::size_t>(h.bytes)});
        break;
      case WireKind::kHello:
      case WireKind::kBye:
        break;  // rendezvous is the launcher's job; bye is just a wakeup
      case WireKind::kPing:
        // Endpoint-level liveness only (the shm detector reads alive
        // words, not pings, but a socket-style ping must still never
        // reach a machine or the checker's in-flight accounting).
        break;
    }
  }

  static void note_batch(std::uint64_t batch) {
    if (batch != 0 && obs::enabled()) {
      static obs::Histogram& hist = obs::histogram("mpi.transport.shm.pump_batch");
      hist.note(batch);
    }
  }

  void pump_main() {
    const std::function<void(const FrameHeader&, const std::byte*)> consume =
        [this](const FrameHeader& h, const std::byte* payload) { dispatch(h, payload); };
    // Batch = frames drained between two waits: the histogram that shows
    // whether steady-state traffic amortizes its wakeups.
    std::uint64_t batch = 0;
    bool waited = false;
    while (ring_consume(view_, my_proc_, stop_, consume, &waited)) {
      if (waited) {
        note_batch(batch);
        batch = 0;
      }
      ++batch;
    }
    note_batch(batch);
  }

  [[nodiscard]] static std::uint64_t monotonic_ns() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000u +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  /// Heartbeat thread (DESIGN.md §17): every interval, store our
  /// CLOCK_MONOTONIC timestamp into the segment's alive word — shared
  /// memory is the ping; no frames, no ring traffic — and scan the
  /// peers' words.  CLOCK_MONOTONIC is system-wide, so the words of
  /// different processes are directly comparable.  A peer already in
  /// dead_mask is the launcher's kill; we skip it.  A peer whose word
  /// stays stale past the timeout (+ grace) is confirmed dead — SIGKILL
  /// with no launcher alive to notice, or wedged (SIGSTOP, runaway
  /// handler) — and fed to the router exactly like a launcher report.
  void beat_main() {
    ShmSegHeader* hdr = view_.header();
    faults::HeartbeatMonitor mon{nprocs_, hb_};
    const auto interval = std::chrono::nanoseconds{hb_.interval_ns()};
    for (;;) {
      const std::uint64_t now = monotonic_ns();
      hdr->alive_ns[my_proc_].store(now, std::memory_order_relaxed);
      const std::uint64_t dead_mask = hdr->dead_mask.load(std::memory_order_relaxed);
      for (int p = 0; p < nprocs_; ++p) {
        if (p == my_proc_) continue;
        if ((dead_mask >> p) & 1u) continue;  // launcher already reported it
        std::atomic<bool>& dead = dead_[static_cast<std::size_t>(p)];
        if (dead.load(std::memory_order_relaxed)) continue;
        const std::uint64_t w =
            hdr->alive_ns[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
        if (w != 0) mon.alive(p, w);
        if (mon.check(p, now) == faults::HeartbeatMonitor::Verdict::kConfirmed) {
          dead.store(true, std::memory_order_relaxed);
          router_.peer_failed(
              static_cast<std::uint32_t>(p),
              "rank " + std::to_string(p) + "'s process went silent: no heartbeat for " +
                  std::to_string((now - w) / 1'000'000) + "ms (peer-to-peer detection)");
        }
      }
      std::unique_lock lock{beat_mu_};
      if (beat_cv_.wait_for(lock, interval,
                            [this] { return stop_.load(std::memory_order_relaxed); })) {
        return;
      }
    }
  }

  std::mutex start_mu_;
  bool started_ = false;
  bool launched_ = false;
  int my_proc_ = 0;
  int nprocs_ = 1;
  ShmView view_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
  FrameRouter router_;
  std::atomic<bool> stop_{false};
  std::thread pump_;
  faults::HeartbeatConfig hb_;
  std::mutex beat_mu_;
  std::condition_variable beat_cv_;
  std::thread beat_;
};

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(const TransportConfig& cfg) : ep_{ShmEndpoint::instance()} {
    ep_.ensure_started();
    if (ep_.launched()) {
      PEACHY_CHECK(cfg.nranks == ep_.nprocs(),
                   "shm transport: a launched world runs one rank per process, so "
                   "mpi::run(nranks=" +
                       std::to_string(cfg.nranks) + ") must match the " +
                       std::to_string(ep_.nprocs()) + " launched processes");
    }
    seq_ = ep_.router().attach(cfg.sink);
  }

  ~ShmTransport() override { shutdown(); }

  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kShm; }
  [[nodiscard]] bool spans_processes() const noexcept override {
    return ep_.launched() && ep_.nprocs() > 1;
  }
  [[nodiscard]] bool is_local(int rank) const noexcept override {
    return !ep_.launched() || rank == ep_.my_proc();
  }

  void send(int dest, Message&& m, int copies) override {
    const FrameHeader h = make_data_header(seq_, m, dest);
    const int proc = ep_.proc_of(dest);
    for (int c = 0; c < copies; ++c) ep_.send_frame(proc, h, m.payload.data());
  }

  void broadcast_ctrl(CtrlKind k, std::uint32_t arg, const std::string& why) override {
    if (!spans_processes()) return;
    FrameHeader h;
    const std::byte* payload = nullptr;
    switch (k) {
      case CtrlKind::kFailed:
        h = make_ctrl_header(WireKind::kFailed, seq_, static_cast<std::int32_t>(arg), 0);
        break;
      case CtrlKind::kRevoke:
        h = make_ctrl_header(WireKind::kRevoke, seq_, ep_.my_proc(), arg);
        break;
      case CtrlKind::kAbort:
        h = make_ctrl_header(WireKind::kAbort, seq_, ep_.my_proc(), 0, why.size());
        payload = reinterpret_cast<const std::byte*>(why.data());
        break;
    }
    for (int p = 0; p < ep_.nprocs(); ++p) {
      if (p != ep_.my_proc()) ep_.send_frame(p, h, payload);
    }
  }

  void shutdown() override {
    if (attached_) {
      attached_ = false;
      ep_.router().detach(seq_);
    }
  }

 private:
  ShmEndpoint& ep_;
  std::uint32_t seq_ = 0;
  bool attached_ = true;
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(const TransportConfig& cfg) {
  return std::make_unique<ShmTransport>(cfg);
}

}  // namespace peachy::mpi::detail
