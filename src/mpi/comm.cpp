#include "mpi/mpi.hpp"
#include "obs/obs.hpp"

namespace peachy::mpi {

namespace detail {

const char* coll_algo_counter_name(tune::CollAlgo algo) noexcept {
  switch (algo) {
    case tune::CollAlgo::kAuto: return "mpi.coll.algo.auto";
    case tune::CollAlgo::kLinear: return "mpi.coll.algo.linear";
    case tune::CollAlgo::kBinomial: return "mpi.coll.algo.binomial";
    case tune::CollAlgo::kRing: return "mpi.coll.algo.ring";
    case tune::CollAlgo::kRecDouble: return "mpi.coll.algo.recdouble";
  }
  return "mpi.coll.algo.auto";
}

const char* coll_span_name(tune::CollOp op, tune::CollAlgo algo) noexcept {
  // obs keeps span-name pointers until export, so every (op, algo) pair
  // maps to a string literal here instead of a formatted string.
  switch (op) {
    case tune::CollOp::kBroadcast:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "broadcast[linear]";
        case tune::CollAlgo::kBinomial: return "broadcast[binomial]";
        case tune::CollAlgo::kRing: return "broadcast[ring]";
        case tune::CollAlgo::kRecDouble: return "broadcast[recdouble]";
        case tune::CollAlgo::kAuto: return "broadcast[auto]";
      }
      return "broadcast[auto]";
    case tune::CollOp::kReduce:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "reduce[linear]";
        case tune::CollAlgo::kBinomial: return "reduce[binomial]";
        case tune::CollAlgo::kRing: return "reduce[ring]";
        case tune::CollAlgo::kRecDouble: return "reduce[recdouble]";
        case tune::CollAlgo::kAuto: return "reduce[auto]";
      }
      return "reduce[auto]";
    case tune::CollOp::kAllreduce:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "allreduce[linear]";
        case tune::CollAlgo::kBinomial: return "allreduce[binomial]";
        case tune::CollAlgo::kRing: return "allreduce[ring]";
        case tune::CollAlgo::kRecDouble: return "allreduce[recdouble]";
        case tune::CollAlgo::kAuto: return "allreduce[auto]";
      }
      return "allreduce[auto]";
    case tune::CollOp::kAllgather:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "allgather[linear]";
        case tune::CollAlgo::kBinomial: return "allgather[binomial]";
        case tune::CollAlgo::kRing: return "allgather[ring]";
        case tune::CollAlgo::kRecDouble: return "allgather[recdouble]";
        case tune::CollAlgo::kAuto: return "allgather[auto]";
      }
      return "allgather[auto]";
  }
  return "coll[auto]";
}

}  // namespace detail

void Comm::barrier() {
  const int tag = begin_collective({"barrier", -1, 1, -1});
  const int p = size();
  const std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dest = (rank_ + dist) % p;
    const int src = (rank_ - dist + p) % p;
    // Round-distinct sub-tag: token from round k must not satisfy round k+1.
    machine_->post(world_rank(), to_world(dest), tag, std::span<const std::byte>{&token, 1},
                   comm_id_);
    (void)recv_bytes(src, tag);
    // NOTE: dissemination rounds reuse the same tag but distinct (src,dist)
    // pairs, and recv matches on source, so rounds cannot cross-match
    // unless p is a power of two *and* two rounds share a source — which
    // cannot happen since distances are distinct powers of two < p.
  }
}

void Comm::broadcast_bytes(std::vector<std::byte>& data, int root) {
  PEACHY_CHECK(root >= 0 && root < size(), "broadcast: bad root");
  const int tag = begin_collective(
      {"broadcast", root, 1,
       rank_ == root ? static_cast<std::int64_t>(data.size()) : std::int64_t{-1}});
  // Non-roots don't know the payload size in advance, so only
  // byte-unconstrained rules can select an algorithm here.
  const tune::CollAlgo algo = pick_algo_(tune::CollOp::kBroadcast, tune::kBytesUnknown);
  const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kBroadcast, algo),
                            "algo", static_cast<std::int64_t>(algo)};
  PayloadBuffer buf;
  if (rank_ == root) {
    buf = BufferPool::instance().acquire(data.size());
    if (!data.empty()) std::memcpy(buf.mutable_data(), data.data(), data.size());
  }
  bcast_payload_algo(buf, root, tag, algo);
  if (rank_ != root) data = buf.release_bytes();
}

void Comm::bcast_payload(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Receive phase: find the lowest set bit position where we get our copy.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      const int src = (vsrc + root) % p;
      buf = recv_buffer(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to the subtree below us.  Forwarding is a
  // refcount bump on the pooled payload — each edge is counted as a full
  // message, but its bytes are never copied again.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < p) {
      const int dest = (vrank + mask + root) % p;
      machine_->post_move(world_rank(), to_world(dest), tag, buf.share(), comm_id_);
    }
    mask >>= 1;
  }
}

void Comm::bcast_payload_algo(PayloadBuffer& buf, int root, int tag, tune::CollAlgo algo) {
  switch (algo) {
    case tune::CollAlgo::kLinear:
      bcast_payload_linear(buf, root, tag);
      return;
    case tune::CollAlgo::kRing:
      bcast_payload_chain(buf, root, tag);
      return;
    default:
      // kAuto, kBinomial — and kRecDouble, which has no broadcast form —
      // all take the historical binomial tree.
      bcast_payload(buf, root, tag);
      return;
  }
}

void Comm::bcast_payload_linear(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  if (rank_ == root) {
    // One round: p−1 refcount bumps of the same pooled payload.  On the
    // in-process transport there is no serialization to overlap, so the
    // tree's extra hops buy nothing — this is the latency-optimal shape
    // the tuner usually picks at small p.
    for (int k = 1; k < p; ++k) {
      const int dest = (root + k) % p;
      machine_->post_move(world_rank(), to_world(dest), tag, buf.share(), comm_id_);
    }
    return;
  }
  buf = recv_buffer(root, tag);
}

void Comm::bcast_payload_chain(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  if (vrank != 0) buf = recv_buffer((rank_ - 1 + p) % p, tag);
  if (vrank + 1 < p) {
    machine_->post_move(world_rank(), to_world((rank_ + 1) % p), tag, buf.share(), comm_id_);
  }
}

void Comm::allgather_blocks_ring(std::vector<PayloadBuffer>& blocks, int tag) {
  const int p = size();
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const int send_block = (rank_ - step + p) % p;
    const int recv_block = (rank_ - step - 1 + p) % p;
    machine_->post_move(world_rank(), to_world(right), tag,
                        blocks[static_cast<std::size_t>(send_block)].share(), comm_id_);
    blocks[static_cast<std::size_t>(recv_block)] = recv_buffer(left, tag);
  }
}

void Comm::allgather_blocks_linear(std::vector<PayloadBuffer>& blocks, int tag) {
  // Direct exchange: everyone posts its own block to everyone (buffered
  // sends never block), then drains p−1 receives.  Same total message
  // count as the ring, one round of latency instead of p−1.
  const int p = size();
  for (int k = 1; k < p; ++k) {
    const int dest = (rank_ + k) % p;
    machine_->post_move(world_rank(), to_world(dest), tag,
                        blocks[static_cast<std::size_t>(rank_)].share(), comm_id_);
  }
  for (int k = 1; k < p; ++k) {
    const int src = (rank_ - k + p) % p;
    blocks[static_cast<std::size_t>(src)] = recv_buffer(src, tag);
  }
}

void Comm::allgather_blocks_recdouble(std::vector<PayloadBuffer>& blocks, int tag) {
  // Recursive doubling (power-of-two p, enforced at selection): at round
  // k this rank holds the 2^k blocks of its mask-aligned group and
  // trades them all with its partner in the paired group.  Blocks travel
  // in ascending index order both ways, and FIFO matching per
  // (source, tag) keeps them in order — same total message count as the
  // ring, log2(p) rounds of latency.
  const int p = size();
  for (int mask = 1; mask < p; mask <<= 1) {
    const int partner = rank_ ^ mask;
    const int my_base = rank_ & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    for (int b = my_base; b < my_base + mask; ++b) {
      machine_->post_move(world_rank(), to_world(partner), tag,
                          blocks[static_cast<std::size_t>(b)].share(), comm_id_);
    }
    for (int b = partner_base; b < partner_base + mask; ++b) {
      blocks[static_cast<std::size_t>(b)] = recv_buffer(partner, tag);
    }
  }
}

void Comm::revoke() { machine_->revoke(comm_id_); }

Comm Comm::shrink() {
  const obs::SpanScope span{"faults", "shrink"};
  const std::uint64_t t0 = obs::now_ns();
  const std::vector<int> members = group();
  // ULFM's iterate-until-stable discipline, with the machine's shared
  // agreement table standing in for a cross-process agreement protocol:
  // propose the survivors we observe; the first proposal stored under the
  // key wins and every survivor adopts it.  If an adopted group member
  // fails before everyone adopted, all survivors iterate to the next key
  // (deterministic: same keys, same table, same winner on every rank).
  //
  // Across processes (wire transports) each process has its own table
  // with exactly one caller per key, so "agreement" degenerates to: all
  // processes observe the same failed set (kFailed frames precede the
  // revoke that triggers shrink) and compute identical groups + comm ids
  // independently.  DESIGN.md §15 records the convergence argument.
  detail::Machine::Agreement agreed;
  for (;;) {
    const std::vector<int> survivors = machine_->survivors_of(members);
    PEACHY_CHECK(!survivors.empty(), "shrink: no surviving ranks");
    const std::uint64_t key = (static_cast<std::uint64_t>(comm_id_) << 32) | shrink_seq_;
    ++shrink_seq_;
    agreed = machine_->agree_group(key, survivors);
    if (machine_->first_failed_in(&agreed.group) < 0) break;
  }
  // Stale traffic from the dead rank(s) must not satisfy post-recovery
  // receives on the old communicator; each survivor scrubs its own box.
  machine_->purge_failed_senders(world_rank());
  const int my_world = world_rank();
  int new_rank = -1;
  for (std::size_t i = 0; i < agreed.group.size(); ++i) {
    if (agreed.group[i] == my_world) new_rank = static_cast<int>(i);
  }
  PEACHY_CHECK(new_rank >= 0, "shrink: calling rank is not a survivor");
  if (obs::enabled()) {
    static obs::Histogram& recovery = obs::histogram("faults.recovery_ns");
    recovery.note(obs::now_ns() - t0);
  }
  return Comm{*machine_, new_rank, agreed.group, agreed.comm_id, timeout_ns_};
}

}  // namespace peachy::mpi
